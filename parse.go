package prophet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"prophet/internal/omprt"
	"prophet/internal/synth"
)

// This file is the one vocabulary for spelling requests as text: the
// CLIs' flag values, the JSON encodings of Request/Estimate and the
// String() methods all round-trip through these parsers —
// ParseX(x.String()) == x for every Method, Paradigm and Sched.

// ParseMethod parses a prediction-method name. It accepts the exact
// String() spellings — "ff", "synthesizer", "suitability", "amdahl",
// "critical-path" — plus the short CLI aliases "syn", "suit" and
// "kismet".
func ParseMethod(s string) (Method, error) {
	switch s {
	case "ff":
		return FastForward, nil
	case "synthesizer", "syn":
		return Synthesizer, nil
	case "suitability", "suit":
		return Suitability, nil
	case "amdahl":
		return AmdahlLaw, nil
	case "critical-path", "kismet":
		return CriticalPathBound, nil
	}
	return 0, fmt.Errorf("prophet: unknown method %q (want ff | synthesizer | suitability | amdahl | critical-path)", s)
}

// MarshalText encodes the method as its String() name, so Method fields
// marshal to stable JSON strings like "ff".
func (m Method) MarshalText() ([]byte, error) {
	return []byte(m.String()), nil
}

// UnmarshalText parses any spelling ParseMethod accepts.
func (m *Method) UnmarshalText(text []byte) error {
	parsed, err := ParseMethod(string(text))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// ParseParadigm parses a paradigm name: "openmp" (or "omp") and "cilk".
func ParseParadigm(s string) (Paradigm, error) {
	return synth.ParseParadigm(s)
}

// ParseSched parses an OpenMP schedule. It accepts the exact String()
// spellings — "(static)", "(static,4)", "(dynamic,1)", "(guided)" — and
// the bare CLI forms "static", "static1", "static,N", "dynamic",
// "dynamic1", "dynamic,N" and "guided".
func ParseSched(s string) (Sched, error) {
	return omprt.ParseSched(s)
}

// ParseCores parses a comma-separated list of CPU counts, e.g.
// "2,4,6,8,10,12" (spaces around entries are allowed). Every entry must
// be a positive integer. The result is normalized: duplicates collapse
// to one entry and the counts come back sorted ascending, so "4,4,2"
// parses to [2 4] — sweeps built from the list visit each core count
// exactly once, in curve order.
func ParseCores(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("prophet: empty core list")
	}
	seen := make(map[int]bool)
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("prophet: bad core count %q", part)
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}
