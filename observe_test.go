package prophet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
)

// TestObserverEndToEnd drives the full pipeline with an Observer attached:
// profile, estimate (both emulators) and ground truth, then checks that
// the trace exports as valid Chrome trace-event JSON with one lane per
// simulated core and that the metrics registry saw every stage.
func TestObserverEndToEnd(t *testing.T) {
	buf := &TraceBuffer{}
	reg := &Metrics{}
	p, err := ProfileProgram(balancedProgram(16, 50_000), &Options{
		Machine:            testMachine(4),
		DisableMemoryModel: true,
		Observer:           Observer{Trace: buf, Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Threads: 4, Sched: Static}
	for _, m := range []Method{FastForward, Synthesizer} {
		r := req
		r.Method = m
		if est := p.Estimate(r); est.Err != nil {
			t.Fatalf("%v: %v", m, est.Err)
		}
	}
	if _, err := p.RealSpeedupCtx(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	if buf.Len() == 0 {
		t.Fatal("observer saw no execution events")
	}
	var out bytes.Buffer
	if err := buf.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(out.Bytes()); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	// One lane per simulated core: the synthesizer and ground-truth runs
	// on a 4-core machine must produce machine lanes 0..3.
	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	lanes := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" && ev.PID == 0 {
			lanes[ev.Args["name"].(string)] = true
		}
	}
	for _, want := range []string{"core 0", "core 1", "core 2", "core 3"} {
		if !lanes[want] {
			t.Errorf("trace missing lane %q (lanes: %v)", want, lanes)
		}
	}

	snap := reg.Snapshot()
	for _, h := range []string{"stage.profile_ns", "stage.compress_ns", "stage.emulate_ns"} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("histogram %s not recorded (snapshot: %+v)", h, snap.Histograms)
		}
	}
	if snap.Counters["sim.runs"] == 0 || snap.Counters["sim.events"] == 0 {
		t.Errorf("sim counters not recorded: %v", snap.Counters)
	}
}

// TestExplainBurdenDisabledGate pins the disabled-model contract: with the
// memory model off, a known section explains as a gated β = 1, and an
// unknown section reports not-found.
func TestExplainBurdenDisabledGate(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(8, 10_000), &Options{
		Machine:            testMachine(2),
		DisableMemoryModel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := p.ExplainBurden("loop", 8)
	if !ok {
		t.Fatal("known section not found")
	}
	if e.Gate != "memory model disabled" {
		t.Errorf("gate = %q, want \"memory model disabled\"", e.Gate)
	}
	if e.Burden != 1 {
		t.Errorf("burden = %g, want 1 (disabled model must not scale)", e.Burden)
	}
	if e.Threads != 8 {
		t.Errorf("threads = %d, want 8", e.Threads)
	}
	if _, ok := p.ExplainBurden("no-such-section", 8); ok {
		t.Error("unknown section reported found")
	}
}

// countdownCtx cancels itself after Err has been consulted n times: a
// deterministic way to cancel between two points of a curve sweep.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestCurveCtxPartialOnCancel pins the cancellation contract of CurveCtx:
// points evaluated before the cancellation are returned alongside the
// error, and the point that observed the cancellation carries it in Err.
func TestCurveCtxPartialOnCancel(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(8, 10_000), &Options{
		Machine:            testMachine(4),
		DisableMemoryModel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Suitability consults ctx exactly once per estimate (at entry), so a
	// budget of one Err() call completes the first point and cancels the
	// second.
	ctx := &countdownCtx{Context: context.Background()}
	ctx.left.Store(1)
	out, err := p.CurveCtx(ctx, Request{Method: Suitability}, []int{2, 4, 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d points, want 2 (one computed, one canceled)", len(out))
	}
	if out[0].Err != nil || out[0].Speedup <= 0 {
		t.Errorf("first point should have completed: %+v", out[0])
	}
	if out[1].Err == nil {
		t.Errorf("second point should carry the cancellation: %+v", out[1])
	}

	// A context canceled before the sweep starts returns the first
	// (canceled) point and the error — never a silent empty success.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	out, err = p.CurveCtx(done, Request{Method: Suitability}, []int{2, 4, 8})
	if err == nil || len(out) != 1 || out[0].Err == nil {
		t.Fatalf("pre-canceled sweep: out=%d err=%v", len(out), err)
	}
}

// TestTimelineCtxReturnsError pins the fixed contract: the legacy Timeline
// swallowed ground-truth failures, TimelineCtx returns them.
func TestTimelineCtxReturnsError(t *testing.T) {
	mc := testMachine(2)
	mc.MaxEvents = 10 // far below what any real run needs
	p, err := ProfileProgram(balancedProgram(8, 10_000), &Options{
		Machine:            mc,
		DisableMemoryModel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = p.TimelineCtx(context.Background(), Request{Threads: 2, Sched: Static}, 40)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("TimelineCtx err = %v, want ErrBudgetExceeded", err)
	}
	// The documented wrapper still swallows it.
	gantt, _ := p.Timeline(Request{Threads: 2, Sched: Static}, 40)
	if gantt == "" {
		t.Error("Timeline returned empty output (should render the partial recording)")
	}
}
