package prophet_test

// This file consolidates the paper's headline claims into one suite, so a
// reviewer can check the reproduction's fidelity in a single place. Each
// test names the claim, the paper location, and what "reproduced" means
// here (exact number, or shape). Deeper variants live next to the
// implementing packages; EXPERIMENTS.md holds the full numbers.

import (
	"math"
	"math/rand"
	"testing"

	"prophet"
	"prophet/internal/compress"
	"prophet/internal/ff"
	"prophet/internal/memmodel"
	"prophet/internal/omprt"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/tree"
	"prophet/internal/workloads"
)

// Claim (Fig. 5): for the three-iteration loop with a lock on two cores,
// the FF emulates (static,1) to 1150 cycles, (static) to 1250 and
// (dynamic,1) to 900 (the paper's 950 includes its dispatch-overhead ε).
func TestClaimFig5ExactSchedules(t *testing.T) {
	i0 := tree.NewTask("i0", tree.NewU(150), tree.NewL(1, 450), tree.NewU(50))
	i1 := tree.NewTask("i1", tree.NewU(100), tree.NewL(1, 300), tree.NewU(200))
	i2 := tree.NewTask("i2", tree.NewU(150), tree.NewU(50), tree.NewU(50))
	root := tree.NewRoot(tree.NewSec("loop", i0, i1, i2))
	want := map[string]int64{"(static,1)": 1150, "(static)": 1250, "(dynamic,1)": 900}
	for _, sched := range []omprt.Sched{omprt.SchedStatic1, omprt.SchedStatic, omprt.SchedDynamic1} {
		e := &ff.Emulator{Threads: 2, Sched: sched}
		if got := int64(e.PredictTime(root)); got != want[sched.String()] {
			t.Errorf("%v: %d cycles, paper walkthrough says %d", sched, got, want[sched.String()])
		}
	}
}

// Claim (Fig. 7, §IV-D/E): a two-level nested loop on a dual-core really
// achieves ~2.0x; the FF and Suitability predict ~1.5x; the synthesizer
// matches reality.
func TestClaimFig7NestedLimitation(t *testing.T) {
	scale := prophet.Cycles(20_000)
	la := tree.NewSec("A", tree.NewTask("a0", tree.NewU(10*scale)), tree.NewTask("a1", tree.NewU(5*scale)))
	lb := tree.NewSec("B", tree.NewTask("b0", tree.NewU(5*scale)), tree.NewTask("b1", tree.NewU(10*scale)))
	root := tree.NewRoot(tree.NewSec("L1", tree.NewTask("t0", la), tree.NewTask("t1", lb)))
	mc := sim.Config{Cores: 2, Quantum: 10_000, ContextSwitch: -1}
	p, err := prophet.ProfileTree(root, &prophet.Options{Machine: mc, DisableMemoryModel: true, CompressTolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	ffS := (&ff.Emulator{Threads: 2, Sched: omprt.SchedStatic1}).Speedup(root)
	if math.Abs(ffS-1.5) > 1e-9 {
		t.Errorf("FF = %.3f, paper says exactly 1.5", ffS)
	}
	real := p.RealSpeedup(prophet.Request{Threads: 2, Sched: prophet.Static1})
	syn := p.Estimate(prophet.Request{Method: prophet.Synthesizer, Threads: 2, Sched: prophet.Static1}).Speedup
	if real < 1.9 || syn < 1.9 {
		t.Errorf("real %.2f / synthesizer %.2f, paper says ~2.0", real, syn)
	}
}

// Claim (§V-D, Eq. 7): the per-miss stall is a negative power law of the
// achieved traffic, ω = a·δ^b with b ≈ −1 (the paper fits −0.964 on real
// hardware; the streaming identity gives exactly −1).
func TestClaimEq7PowerLaw(t *testing.T) {
	m, _, err := memmodel.Calibrate(sim.Config{Cores: 12, Quantum: 10_000, ContextSwitch: -1},
		[]int{2, 4, 6, 8, 10, 12})
	if err != nil {
		t.Fatal(err)
	}
	if m.Phi.B > -0.9 || m.Phi.B < -1.1 {
		t.Errorf("Phi exponent = %.3f, want ~-1 (paper: -0.964)", m.Phi.B)
	}
}

// Claim (Fig. 2): NPB-FT's speedup saturates from memory traffic; without
// the memory model the prediction badly overestimates, with it the
// prediction tracks reality.
func TestClaimFig2FTSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	w, _ := workloads.ByName("NPB-FT")
	mc := sim.Config{Cores: 12, Quantum: 10_000, ContextSwitch: -1}
	p, err := prophet.ProfileProgram(w.Program, &prophet.Options{Machine: mc})
	if err != nil {
		t.Fatal(err)
	}
	base := prophet.Request{Threads: 12, Paradigm: w.Paradigm, Sched: w.Sched}
	real := p.RealSpeedup(base)
	predReq := base
	predReq.Method = prophet.Synthesizer
	pred := p.Estimate(predReq).Speedup
	predMReq := predReq
	predMReq.MemoryModel = true
	predM := p.Estimate(predMReq).Speedup
	if real > 9 {
		t.Errorf("FT real = %.1f on 12 cores; should saturate well below 12", real)
	}
	if pred < real*1.3 {
		t.Errorf("Pred = %.1f should clearly overestimate real %.1f", pred, real)
	}
	if e := math.Abs(predM-real) / real; e > 0.30 {
		t.Errorf("PredM %.1f vs real %.1f: %.0f%% (paper bound: ~30%%)", predM, real, 100*e)
	}
}

// Claim (§VI-B): regular benchmark trees compress almost entirely (the
// paper: 93% for CG, IS the largest tree); irregular recursion compresses
// less.
func TestClaimCompressionRegularVsIrregular(t *testing.T) {
	reduction := func(name string) float64 {
		w, _ := workloads.ByName(name)
		root, _, err := trace.Profile(w.Program, sim.Config{}.Normalized().DRAM)
		if err != nil {
			t.Fatal(err)
		}
		st := compress.Compress(root, compress.Options{Tolerance: compress.DefaultTolerance})
		return st.Reduction()
	}
	if r := reduction("NPB-IS"); r < 0.99 {
		t.Errorf("IS reduction = %.3f, want >= 0.99", r)
	}
	if r := reduction("NPB-CG"); r < 0.93 {
		t.Errorf("CG reduction = %.3f, want >= 0.93 (the paper's figure)", r)
	}
	if r := reduction("QSort-Cilk"); r > 0.90 {
		t.Errorf("QSort reduction = %.3f; irregular recursion should compress less", r)
	}
}

// Claim (§VII-B): the FF's average error on single-level random programs
// (Test1) is a few percent — small enough for interactive use.
func TestClaimTest1Accuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	mc := sim.Config{Cores: 12, Quantum: 10_000, ContextSwitch: -1}
	var sumErr float64
	n := 0
	// 20 samples keep the suite fast; cmd/ppexp runs the full 300.
	rng := rand.New(rand.NewSource(20120521))
	for i := 0; i < 20; i++ {
		prog := workloads.RandomTest1(rng).Program()
		p, err := prophet.ProfileProgram(prog, &prophet.Options{Machine: mc, DisableMemoryModel: true})
		if err != nil {
			t.Fatal(err)
		}
		req := prophet.Request{Threads: 8, Sched: prophet.Static1}
		real := p.RealSpeedup(req)
		pred := p.Estimate(req).Speedup
		sumErr += math.Abs(pred-real) / real
		n++
	}
	if avg := sumErr / float64(n); avg > 0.06 {
		t.Errorf("Test1 FF avg error = %.1f%%, paper reports <4%%", 100*avg)
	}
}
