// qsortcilk reproduces the paper's Fig. 1(b) scenario: recursive
// parallelism, which OpenMP 2.0 nested teams handle poorly but a
// work-stealing runtime (Cilk Plus) handles well. The synthesizer can
// emulate both paradigms from the same profile — this example compares
// them.
//
//	go run ./examples/qsortcilk
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prophet"
)

const (
	n      = 1 << 14
	cutoff = 256
	cPart  = 8
)

// qsortProgram annotates a real quicksort recursion: it actually
// partitions a random slice, so the recursion tree has authentic
// data-dependent imbalance.
func qsortProgram(ctx prophet.Context) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64()
	}
	var rec func(s []float64)
	rec = func(s []float64) {
		if len(s) <= cutoff {
			ctx.Compute(int64(len(s)*cPart*2), 0)
			return
		}
		p := partition(s)
		ctx.Compute(int64(len(s)*cPart), 0)
		ctx.SecBegin("halves") // cilk_spawn / cilk_sync pair
		ctx.TaskBegin("lo")
		rec(s[:p])
		ctx.TaskEnd()
		ctx.TaskBegin("hi")
		rec(s[p+1:])
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	ctx.SecBegin("qsort")
	ctx.TaskBegin("root")
	rec(data)
	ctx.TaskEnd()
	ctx.SecEnd(false)
}

func partition(s []float64) int {
	pivot := s[len(s)/2]
	s[len(s)/2], s[len(s)-1] = s[len(s)-1], s[len(s)/2]
	i := 0
	for j := 0; j < len(s)-1; j++ {
		if s[j] < pivot {
			s[i], s[j] = s[j], s[i]
			i++
		}
	}
	s[i], s[len(s)-1] = s[len(s)-1], s[i]
	return i
}

func main() {
	prof, err := prophet.ProfileProgram(qsortProgram, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quicksort of %d elements: serial %d cycles\n\n", n, prof.SerialCycles)
	fmt.Println("recursive parallelism, synthesizer predictions:")
	fmt.Println("cores   Cilk (work stealing)   OpenMP 2.0 (nested teams)")
	for _, cores := range []int{2, 4, 8, 12} {
		cilk := prof.Estimate(prophet.Request{
			Method: prophet.Synthesizer, Threads: cores, Paradigm: prophet.Cilk,
		})
		omp := prof.Estimate(prophet.Request{
			Method: prophet.Synthesizer, Threads: cores, Paradigm: prophet.OpenMP, Sched: prophet.Dynamic1,
		})
		fmt.Printf("%5d   %20.2f   %25.2f\n", cores, cilk.Speedup, omp.Speedup)
	}
	fmt.Println()
	fmt.Println("(the paper's §III: naive nested OpenMP spawns too many physical")
	fmt.Println(" threads; Cilk-style work stealing is the right paradigm here)")
}
