// iowait demonstrates the I/O-wait extension (the paper's §VIII lists I/O
// in annotated regions as a limitation; this reproduction models it): a
// loop whose tasks spend 70% of their time blocked on I/O can profitably
// use far more threads than cores — and only the machine-backed
// synthesizer predicts it.
//
//	go run ./examples/iowait
package main

import (
	"fmt"
	"log"

	"prophet"
)

func fetchComputeStore(ctx prophet.Context) {
	ctx.SecBegin("requests")
	for i := 0; i < 64; i++ {
		ctx.TaskBegin("request")
		ctx.Compute(15_000, 0) // parse / prepare
		ctx.IOWait(70_000)     // blocked on the backend, no CPU used
		ctx.Compute(15_000, 0) // post-process
		ctx.TaskEnd()
	}
	ctx.SecEnd(false)
}

func main() {
	machine := prophet.MachineConfig{Cores: 4}
	prof, err := prophet.ProfileProgram(fetchComputeStore, &prophet.Options{Machine: machine})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("64 requests, 70% of each blocked on I/O; machine has 4 cores")
	fmt.Println()
	fmt.Println("threads   synthesizer   FF (treats waits as compute)   real (machine)")
	for _, threads := range []int{2, 4, 8, 16} {
		syn := prof.Estimate(prophet.Request{
			Method: prophet.Synthesizer, Threads: threads, Sched: prophet.Dynamic1,
		})
		ffp := prof.Estimate(prophet.Request{
			Method: prophet.FastForward, Threads: threads, Sched: prophet.Dynamic1,
		})
		real := prof.RealSpeedup(prophet.Request{Threads: threads, Sched: prophet.Dynamic1})
		fmt.Printf("%7d   %11.2f   %28.2f   %14.2f\n", threads, syn.Speedup, ffp.Speedup, real)
	}
	fmt.Println()
	fmt.Println("oversubscription pays: with 16 threads on 4 cores, waits overlap and")
	fmt.Println("the real speedup beats the core count. The synthesizer nails it because")
	fmt.Println("it actually schedules the generated program on the machine; the")
	fmt.Println("analytical FF, with no machine underneath, over-promises (compute from")
	fmt.Println("16 threads can't really fit on 4 cores).")
}
