// memorybound reproduces the paper's Fig. 2 story: a bandwidth-bound
// program whose speedup saturates on a 12-core machine. Without the memory
// performance model the prediction badly overestimates; with burden
// factors it tracks the machine.
//
//	go run ./examples/memorybound
package main

import (
	"fmt"
	"log"

	"prophet"
)

// streamProgram is an FT-like workload: each task does a little compute
// and streams a lot of data (high LLC-miss rate).
func streamProgram(ctx prophet.Context) {
	ctx.SecBegin("stream")
	for i := 0; i < 96; i++ {
		ctx.TaskBegin("chunk")
		ctx.Compute(40_000, 9_000) // 40k compute cycles, 9k LLC misses
		ctx.TaskEnd()
	}
	ctx.SecEnd(false)
}

func main() {
	prof, err := prophet.ProfileProgram(streamProgram, nil)
	if err != nil {
		log.Fatal(err)
	}
	sec := prof.Tree.TopLevelSections()[0]
	fmt.Printf("serial: %d cycles; section traffic: %.0f MB/s, MPI %.4f\n\n",
		prof.SerialCycles, sec.Counters.TrafficMBps(0), sec.Counters.MPI())

	fmt.Println("burden factors computed by the memory model:")
	for _, t := range prophet.DefaultThreadCounts() {
		fmt.Printf("  beta_%-2d = %.2f\n", t, sec.BurdenFor(t))
	}

	fmt.Println("\ncores   Pred (no mem model)   PredM (with)   Real (machine)")
	for _, cores := range prophet.DefaultThreadCounts() {
		base := prophet.Request{Method: prophet.Synthesizer, Threads: cores, Sched: prophet.Static}
		pred := prof.Estimate(base)
		withMem := base
		withMem.MemoryModel = true
		predM := prof.Estimate(withMem)
		real := prof.RealSpeedup(base)
		fmt.Printf("%5d   %19.2f   %12.2f   %14.2f\n", cores, pred.Speedup, predM.Speedup, real)
	}
	fmt.Println("\n(the paper's Fig. 2: without a memory model, Kismet and Suitability")
	fmt.Println(" overestimate FT's speedup; burden factors predict the saturation)")
}
