// luloop reproduces the paper's Fig. 1(a) motivation: LU reduction, where
// only the *inner* loop is parallelizable and its per-iteration work
// shrinks every outer step (workload imbalance + inner-loop parallelism).
// The example shows why scheduling policy matters for the prediction.
//
//	go run ./examples/luloop
package main

import (
	"fmt"
	"log"

	"prophet"
)

const (
	size  = 192 // matrix dimension (kept small so the example is instant)
	cElim = 30  // cycles per eliminated element
)

// luProgram annotates the Fig. 1(a) loop nest:
//
//	for k in 0..size-1:                 // serial outer loop
//	    #pragma omp parallel for        // the annotated section
//	    for i in k+1..size-1:           // one task per row
//	        update row i (size-k work)  // shrinking, imbalanced work
func luProgram(ctx prophet.Context) {
	for k := 0; k < size-1; k++ {
		rowLen := size - k - 1
		if rowLen == 0 {
			continue
		}
		ctx.SecBegin("eliminate")
		for i := k + 1; i < size; i++ {
			ctx.TaskBegin("row")
			ctx.Compute(int64(rowLen*cElim), 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
}

func main() {
	prof, err := prophet.ProfileProgram(luProgram, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LU %dx%d: serial %d cycles, %d parallel sections\n\n",
		size, size, prof.SerialCycles, len(prof.Tree.TopLevelSections()))

	fmt.Println("frequent inner-loop parallelism: fork/join overhead eats small sections,")
	fmt.Println("and (static) suffers from the triangular imbalance:")
	fmt.Println()
	fmt.Println("cores  (static)  (static,1)  (dynamic,1)  suitability")
	for _, cores := range []int{2, 4, 8, 12} {
		row := fmt.Sprintf("%5d", cores)
		for _, sched := range []prophet.Sched{prophet.Static, prophet.Static1, prophet.Dynamic1} {
			est := prof.Estimate(prophet.Request{Method: prophet.FastForward, Threads: cores, Sched: sched})
			row += fmt.Sprintf("  %8.2f", est.Speedup)
		}
		suit := prof.Estimate(prophet.Request{Method: prophet.Suitability, Threads: cores})
		row += fmt.Sprintf("  %11.2f", suit.Speedup)
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("(the paper's Fig. 12(b): Suitability under-predicts LU because it")
	fmt.Println(" overestimates the overhead of the frequently invoked inner loop)")
}
