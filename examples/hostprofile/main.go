// hostprofile profiles REAL computation on the host clock: the annotated
// program actually factorizes a matrix (no cost model, no simulator on the
// profiling side — the original tool flow of the paper, with Go's
// monotonic clock standing in for rdtsc and annotation overhead excluded
// per §VI-A). Prediction then runs on the simulated 12-core machine.
//
//	go run ./examples/hostprofile
package main

import (
	"fmt"
	"log"
	"math"

	"prophet"
)

const size = 384

// luProgram annotates a real in-place LU factorization (Fig. 1(a)'s loop
// nest) of a diagonally dominant matrix. Every Compute you'd expect is
// real arithmetic; the profiler only times it.
func luProgram(a [][]float64) prophet.Program {
	return func(ctx prophet.Context) {
		n := len(a)
		for k := 0; k < n-1; k++ {
			ctx.SecBegin("eliminate")
			for i := k + 1; i < n; i++ {
				ctx.TaskBegin("row")
				l := a[i][k] / a[k][k]
				a[i][k] = l
				for j := k + 1; j < n; j++ {
					a[i][j] -= l * a[k][j]
				}
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
		}
	}
}

func buildMatrix(n int) [][]float64 {
	a := make([][]float64, n)
	seed := uint64(42)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11)/float64(1<<53) - 0.5
	}
	for i := range a {
		a[i] = make([]float64, n)
		var rowSum float64
		for j := range a[i] {
			if i != j {
				a[i][j] = next()
				rowSum += math.Abs(a[i][j])
			}
		}
		a[i][i] = rowSum + 1
	}
	return a
}

func main() {
	a := buildMatrix(size)

	// Host-mode profiling: the program below really factorizes `a`,
	// timed by the monotonic clock at a nominal 2.4 GHz.
	hp := prophet.NewHostProfile()
	luProgram(a)(hp.Context())
	prof, err := hp.Finish(nil)
	if err != nil {
		log.Fatal(err)
	}

	// The factorization is real: spot-check a pivot.
	if a[size-1][size-1] == 0 {
		log.Fatal("factorization produced a zero pivot")
	}
	fmt.Printf("profiled a real %dx%d LU factorization on the host clock\n", size, size)
	fmt.Printf("measured serial time: ~%.2f ms (nominal cycles: %d)\n",
		float64(prof.SerialCycles)/2.4e6, prof.SerialCycles)
	fmt.Printf("tree: %s\n\n", prof.Compression)

	fmt.Println("predicted speedups for the measured tree (FF, simulated 12-core):")
	for _, cores := range []int{2, 4, 8, 12} {
		est := prof.Estimate(prophet.Request{
			Method: prophet.FastForward, Threads: cores, Sched: prophet.Static1,
		})
		fmt.Printf("  %2d cores: %.2fx\n", cores, est.Speedup)
	}
	fmt.Println("\nthe verdict is itself the product: at this matrix size the per-row")
	fmt.Println("work is so small that fork/join overhead eats most of the speedup —")
	fmt.Println("exactly what a programmer wants to know *before* parallelizing.")
	fmt.Println("(host timings vary with machine load; the tree shape — the")
	fmt.Println(" triangular imbalance of Fig. 1(a) — is what drives the prediction)")
}
