// pipeline demonstrates the §VIII extension: pipeline-parallel loops
// (after Thies et al.), predicted from annotations with PipeBegin /
// StageBreak. A three-stage read→process→write loop is bounded by its
// slowest stage, not by the core count — and the prediction shows it.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"prophet"
)

func pipelineProgram(ctx prophet.Context) {
	ctx.PipeBegin("transcode")
	for i := 0; i < 64; i++ {
		ctx.TaskBegin("frame")
		ctx.Compute(20_000, 0) // stage 0: read / decode header
		ctx.StageBreak()
		ctx.Compute(90_000, 0) // stage 1: transform (bottleneck)
		ctx.StageBreak()
		ctx.Compute(30_000, 0) // stage 2: encode / write
		ctx.TaskEnd()
	}
	ctx.PipeEnd()
}

func main() {
	prof, err := prophet.ProfileProgram(pipelineProgram, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-stage pipeline, 64 frames; serial %d cycles\n\n", prof.SerialCycles)
	fmt.Println("cores   FF prediction   machine ground truth")
	for _, cores := range []int{1, 2, 3, 4, 8} {
		req := prophet.Request{Method: prophet.FastForward, Threads: cores, Sched: prophet.Static}
		est := prof.Estimate(req)
		real := prof.RealSpeedup(prophet.Request{Threads: cores, Sched: prophet.Static})
		fmt.Printf("%5d   %13.2f   %20.2f\n", cores, est.Speedup, real)
	}
	fmt.Println()
	bound := 140_000.0 / 90_000.0
	fmt.Printf("throughput is bound by the 90k-cycle stage: max speedup ~%.2f\n", bound)
	fmt.Println("regardless of core count — worth knowing before parallelizing.")
}
