// Quickstart: annotate a serial loop, profile it, and ask Parallel Prophet
// how it would scale — the whole paper workflow in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prophet"
)

func main() {
	// An annotated serial program: a parallelizable loop of 32
	// iterations. Each iteration does 80k cycles of computation, and a
	// short region updates a shared accumulator under a lock.
	program := func(ctx prophet.Context) {
		ctx.Compute(50_000, 0) // serial setup

		ctx.SecBegin("main-loop") // PAR_SEC_BEGIN
		for i := 0; i < 32; i++ {
			ctx.TaskBegin("iteration") // PAR_TASK_BEGIN
			ctx.Compute(80_000, 0)     // the iteration's work
			ctx.LockBegin(1)           // LOCK_BEGIN
			ctx.Compute(2_000, 0)      // protected accumulator update
			ctx.LockEnd(1)             // LOCK_END
			ctx.TaskEnd()              // PAR_TASK_END
		}
		ctx.SecEnd(false) // PAR_SEC_END (implicit barrier)

		ctx.Compute(50_000, 0) // serial teardown
	}

	prof, err := prophet.ProfileProgram(program, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial execution: %d cycles\n", prof.SerialCycles)
	fmt.Printf("program tree: %s\n\n", prof.Compression)

	fmt.Println("predicted speedup (fast-forward emulator, OpenMP):")
	fmt.Println("cores  (static)  (static,1)  (dynamic,1)")
	for _, cores := range prophet.DefaultThreadCounts() {
		row := fmt.Sprintf("%5d", cores)
		for _, sched := range []prophet.Sched{prophet.Static, prophet.Static1, prophet.Dynamic1} {
			est := prof.Estimate(prophet.Request{
				Method:  prophet.FastForward,
				Threads: cores,
				Sched:   sched,
			})
			row += fmt.Sprintf("  %8.2f", est.Speedup)
		}
		fmt.Println(row)
	}

	// The synthesizer runs generated parallel code on the simulated
	// machine — slower, but it models the OS and runtime exactly.
	est := prof.Estimate(prophet.Request{
		Method:  prophet.Synthesizer,
		Threads: 12,
		Sched:   prophet.Dynamic1,
	})
	fmt.Printf("\nsynthesizer, 12 cores, (dynamic,1): %.2fx\n", est.Speedup)
}
