package prophet

import (
	"encoding/json"
	"reflect"
	"testing"
)

// Every Method, Paradigm and Sched must round-trip through its parser:
// ParseX(x.String()) == x. The JSON encodings ride on the same spellings
// (TextMarshaler), so these tests also pin the wire vocabulary.

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range []Method{FastForward, Synthesizer, Suitability, AmdahlLaw, CriticalPathBound} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v, want %v", m.String(), got, err, m)
		}
	}
}

func TestParseParadigmRoundTrip(t *testing.T) {
	for _, p := range []Paradigm{OpenMP, Cilk} {
		got, err := ParseParadigm(p.String())
		if err != nil || got != p {
			t.Errorf("ParseParadigm(%q) = %v, %v, want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParseParadigm("tbb"); err == nil {
		t.Error("unknown paradigm accepted")
	}
}

func TestParseSchedRoundTrip(t *testing.T) {
	scheds := []Sched{
		Static, Static1, Dynamic1, Guided,
		{Kind: Static1.Kind, Chunk: 7},  // (static,7)
		{Kind: Dynamic1.Kind, Chunk: 4}, // (dynamic,4)
	}
	for _, s := range scheds {
		got, err := ParseSched(s.String())
		if err != nil {
			t.Errorf("ParseSched(%q): %v", s.String(), err)
			continue
		}
		if got.String() != s.String() {
			t.Errorf("ParseSched(%q) = %v, want %v", s.String(), got, s)
		}
	}
}

// TestParseCoresNormalizes pins the documented normalization: duplicates
// collapse, the result is sorted ascending, surrounding whitespace is
// tolerated, and an empty list is rejected. Duplicate / descending input
// used to flow through verbatim and skew sweep cell counts.
func TestParseCoresNormalizes(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"2,4,6", []int{2, 4, 6}},
		{"4,4,2", []int{2, 4}},             // duplicates + descending
		{"12,8,4,8,12", []int{4, 8, 12}},   // repeated duplicates
		{" 2 , 4 ,\t12 ", []int{2, 4, 12}}, // surrounding whitespace
		{"7", []int{7}},
		{"7,7,7,7", []int{7}},
	}
	for _, c := range cases {
		got, err := ParseCores(c.in)
		if err != nil {
			t.Errorf("ParseCores(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseCores(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "   ", "a", "0", "-1", "2,,4", "2, ,4"} {
		if got, err := ParseCores(bad); err == nil {
			t.Errorf("ParseCores(%q) accepted: %v", bad, got)
		}
	}
}

func TestRequestJSONStableNames(t *testing.T) {
	req := Request{Method: Synthesizer, Threads: 8, Paradigm: Cilk, Sched: Dynamic1, MemoryModel: true}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"method":"synthesizer","threads":8,"paradigm":"cilk","sched":"(dynamic,1)","memory_model":true}`
	if string(data) != want {
		t.Fatalf("Request JSON = %s\nwant          %s", data, want)
	}
	var back Request
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != req {
		t.Fatalf("round-trip = %+v, want %+v", back, req)
	}
}

func TestEstimateJSONErrAsString(t *testing.T) {
	est := Estimate{
		Request: Request{Method: FastForward, Threads: 4},
		Err:     ErrDeadlock,
	}
	data, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if wire["err"] != ErrDeadlock.Error() {
		t.Fatalf("err field = %v, want %q", wire["err"], ErrDeadlock.Error())
	}
	var back Estimate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Err == nil || back.Err.Error() != ErrDeadlock.Error() {
		t.Fatalf("round-trip err = %v", back.Err)
	}
	if back.Method != FastForward || back.Threads != 4 {
		t.Fatalf("round-trip request = %+v", back.Request)
	}

	ok := Estimate{Request: Request{Threads: 2}, Speedup: 1.5, Time: 100}
	data, err = json.Marshal(ok)
	if err != nil {
		t.Fatal(err)
	}
	var okWire map[string]any
	if err := json.Unmarshal(data, &okWire); err != nil {
		t.Fatal(err)
	}
	if _, present := okWire["err"]; present {
		t.Fatalf("nil Err serialized: %s", data)
	}
}
