package prophet

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"prophet/internal/machine"
	"prophet/internal/profimport"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/tree"
)

// The prophet error family. Every error returned by the public API wraps
// exactly one of these sentinels, so callers dispatch with errors.Is
// against this package alone — the internal packages that produce the
// errors never need to be imported (and, being internal, cannot be).
//
//	errors.Is(err, prophet.ErrDeadlock)        // the emulated program deadlocked
//	errors.Is(err, prophet.ErrCanceled)        // the caller's context fired
//	errors.As(err, &de /* *prophet.DeadlockError */) // wait-graph diagnostics
var (
	// ErrAnnotationMismatch: the annotated program's BEGIN/END pairs do
	// not nest properly (trace-layer structural errors).
	ErrAnnotationMismatch = trace.ErrAnnotationMismatch
	// ErrMalformedTree: a program tree violates the structural invariants
	// of §IV-B (bad child kinds, non-leaf U/L nodes, negative lengths).
	ErrMalformedTree = tree.ErrMalformed
	// ErrDeadlock: the emulated parallel program deadlocked on the
	// simulated machine. errors.As to *DeadlockError for the wait graph.
	ErrDeadlock = sim.ErrDeadlock
	// ErrLockMisuse: the emulated program unlocked a mutex it did not
	// hold (double unlock, unlock of a free lock).
	ErrLockMisuse = sim.ErrLockMisuse
	// ErrBudgetExceeded: a simulation ran past the configured watchdog
	// budget (MachineConfig.MaxEvents / MaxVirtualTime).
	ErrBudgetExceeded = sim.ErrBudgetExceeded
	// ErrCanceled: the caller's context was canceled. Deadline expiry
	// surfaces as context.DeadlineExceeded, as usual.
	ErrCanceled = context.Canceled
	// ErrProfileCorrupt: an imported execution profile (pprof protobuf
	// or folded stacks) is not decodable.
	ErrProfileCorrupt = profimport.ErrCorrupt
	// ErrProfileEmpty: an imported profile decoded but carries no
	// samples with positive weight — there is nothing to predict over.
	ErrProfileEmpty = profimport.ErrEmpty
	// ErrProfileTooLarge: an imported profile exceeds the configured
	// size limit (raw or after gzip expansion).
	ErrProfileTooLarge = profimport.ErrTooLarge
	// ErrInvalidMachineSpec: a MachineSpec failed validation. errors.As
	// to *MachineSpecError for the offending field.
	ErrInvalidMachineSpec = machine.ErrInvalidSpec
	// ErrUnknownMachine: a machine name (Request.Machine, -machines, a
	// daemon request's machine field) resolves to no registered preset.
	ErrUnknownMachine = machine.ErrUnknownSpec
	// ErrDuplicateMachineSpec: RegisterMachineSpec (or POST /v1/machines)
	// named a spec that is already registered; specs are immutable after
	// publication, so names can never be rebound.
	ErrDuplicateMachineSpec = machine.ErrDuplicateSpec
)

// Diagnostic error types, re-exported so callers can errors.As without
// reaching into internal packages.
type (
	// DeadlockError carries the deadlock time and a wait-graph snapshot
	// of every live thread (what it holds, what it waits for).
	DeadlockError = sim.DeadlockError
	// LockMisuseError identifies the offending thread, lock and owner.
	LockMisuseError = sim.LockMisuseError
	// BudgetError reports which watchdog budget a run exhausted.
	BudgetError = sim.BudgetError
	// MachineSpecError pinpoints the field of an invalid MachineSpec.
	MachineSpecError = machine.SpecError
)

// PanicError is a panic recovered at the public API boundary: a bug in the
// library, a runtime layer, or the user's annotated program body. The
// original value and stack are preserved for reporting.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("prophet: recovered panic: %v", e.Value)
}

// recoverToError converts an in-flight panic into a *PanicError stored in
// *errp; call as `defer recoverToError(&err)` at public API boundaries.
// Panics that already carry one of the family's typed errors (a legacy
// panicking path escaping through new code) are unwrapped back to errors.
func recoverToError(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if err, ok := r.(error); ok && isProphetError(err) {
		if *errp == nil {
			*errp = err
		}
		return
	}
	if *errp == nil {
		*errp = &PanicError{Value: r, Stack: debug.Stack()}
	}
}

// isProphetError reports whether err belongs to the typed family.
func isProphetError(err error) bool {
	for _, sentinel := range []error{
		ErrAnnotationMismatch, ErrMalformedTree, ErrDeadlock,
		ErrLockMisuse, ErrBudgetExceeded, context.Canceled,
		context.DeadlineExceeded, ErrProfileCorrupt, ErrProfileEmpty,
		ErrProfileTooLarge, ErrInvalidMachineSpec, ErrUnknownMachine,
		ErrDuplicateMachineSpec,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	var ie *sim.InternalError
	return errors.As(err, &ie)
}
