package prophet

import (
	"io"

	"prophet/internal/obs"
)

// Observability: the inspection surface of the pipeline. An Observer
// attached to Options streams execution events out of every simulated
// machine run and emulation (Trace) and aggregates pipeline metrics —
// per-stage wall times, DES event counts, cache traffic, sweep outcomes —
// into a registry (Metrics). Both sinks are optional and cost nothing
// when unset: the instrumented code paths are benchmarked at zero
// allocations per operation with observability disabled.
//
// Observer replaces the earlier write-only Recorder plumbing
// (sim.Recorder threaded through realrun), which captured work slices
// only and offered no machine-readable export. The Recorder remains as
// the backend of the text Gantt rendering (Profile.Timeline).

// ExecTracer receives execution events from the simulated machine and
// the emulators. A *TraceBuffer is the standard implementation; custom
// implementations can stream events elsewhere. Nil disables tracing.
type ExecTracer = obs.ExecTracer

// ExecEvent is one execution event: a schedule/preempt/block/unblock,
// lock operation, work slice or fast-forward step, with virtual
// timestamps.
type ExecEvent = obs.ExecEvent

// TraceBuffer collects execution events in memory; its WriteChromeTrace
// method exports them as Chrome trace_event JSON (one lane per simulated
// core), loadable in chrome://tracing or Perfetto. The zero value is
// ready to use.
type TraceBuffer = obs.TraceBuffer

// Metrics is a registry of named monotonic counters and power-of-two
// histograms. The zero value is ready to use; a nil *Metrics is a valid
// disabled registry. Snapshot() returns a JSON-marshalable view.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time, JSON-marshalable view of a Metrics
// registry (counters and histogram summaries with stable field names).
type MetricsSnapshot = obs.Snapshot

// Observer bundles the observability sinks an Options can attach to
// profiling and prediction. The zero value disables observability.
type Observer struct {
	// Trace, when set, receives every execution event of the simulated
	// machine runs (ground truth, synthesizer emulations) and the
	// fast-forward emulator's step events.
	Trace ExecTracer
	// Metrics, when set, aggregates pipeline metrics: stage wall times
	// (stage.*), simulated-machine counters (sim.*), and — when the
	// profile is used through the experiment harness — cache and sweep
	// counters (cache.*, sweep.*).
	Metrics *Metrics
}

// ValidateChromeTrace checks serialized trace JSON against the Chrome
// trace-event schema (the format TraceBuffer.WriteChromeTrace emits):
// every event must carry a name, a known phase, pid/tid and sane
// timestamps. It returns nil for a loadable trace.
func ValidateChromeTrace(data []byte) error {
	return obs.ValidateChromeTrace(data)
}

// WriteMetricsJSON writes a snapshot of the registry as indented JSON
// with deterministic key order; a nil registry writes an empty snapshot.
func WriteMetricsJSON(w io.Writer, m *Metrics) error {
	return m.Snapshot().WriteJSON(w)
}
