package prophet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"prophet/internal/clock"
	"prophet/internal/counters"
	"prophet/internal/obs"
	"prophet/internal/sweep"
	"prophet/internal/tree"
)

// Region-candidate kinds: an existing parallel section of the profile
// tree, or a top-level serial computation run that could be wrapped in
// one.
const (
	RegionSection = "section"
	RegionSerial  = "serial"
)

// RegionAdvice is the outcome of one causal region experiment: the
// whole-program speedup with the region parallel vs serial (everything
// else unchanged), and their ratio — the marginal speedup parallelizing
// this one region unlocks at Advice.TargetThreads.
type RegionAdvice struct {
	// Region names the candidate: a top-level section's annotation name
	// (same-named sections are grouped, as the paper's §V policy groups
	// them), or "serial#N" for the N-th top-level serial run.
	Region string `json:"region"`
	// Kind is RegionSection or RegionSerial.
	Kind string `json:"kind"`
	// Work is the candidate's total serial work and Coverage its
	// fraction of the whole profile.
	Work     Cycles  `json:"work_cycles"`
	Coverage float64 `json:"coverage"`
	// WithSpeedup / WithoutSpeedup are the whole-program speedups with
	// the region parallelized vs serialized (the rest of the tree
	// unchanged in both).
	WithSpeedup    float64 `json:"with_speedup"`
	WithoutSpeedup float64 `json:"without_speedup"`
	// Marginal = WithSpeedup / WithoutSpeedup. Below 1.0 the experiment
	// predicts parallelizing this region alone would *slow the program
	// down* (burden factors outweigh the parallelism) — an explicit
	// anti-recommendation.
	Marginal float64 `json:"marginal"`
	// Recommend is Marginal > 1.
	Recommend bool `json:"recommend"`
	// Err is the experiment's failure, nil on success.
	Err error `json:"-"`
}

// regionAdviceJSON is the stable wire form of RegionAdvice.
type regionAdviceJSON struct {
	Region         string  `json:"region"`
	Kind           string  `json:"kind"`
	Work           Cycles  `json:"work_cycles"`
	Coverage       float64 `json:"coverage"`
	WithSpeedup    float64 `json:"with_speedup"`
	WithoutSpeedup float64 `json:"without_speedup"`
	Marginal       float64 `json:"marginal"`
	Recommend      bool    `json:"recommend"`
	Err            string  `json:"err,omitempty"`
}

// MarshalJSON writes the region advice with Err flattened to its
// message, like Estimate.
func (r RegionAdvice) MarshalJSON() ([]byte, error) {
	w := regionAdviceJSON{
		Region: r.Region, Kind: r.Kind, Work: r.Work, Coverage: r.Coverage,
		WithSpeedup: r.WithSpeedup, WithoutSpeedup: r.WithoutSpeedup,
		Marginal: r.Marginal, Recommend: r.Recommend,
	}
	if r.Err != nil {
		w.Err = r.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores a region advice; a non-empty err string becomes
// an opaque error carrying the same message.
func (r *RegionAdvice) UnmarshalJSON(data []byte) error {
	var w regionAdviceJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = RegionAdvice{
		Region: w.Region, Kind: w.Kind, Work: w.Work, Coverage: w.Coverage,
		WithSpeedup: w.WithSpeedup, WithoutSpeedup: w.WithoutSpeedup,
		Marginal: w.Marginal, Recommend: w.Recommend,
	}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	return nil
}

// regionCandidate is one enumerated experiment target: the Root-child
// indices it covers, so variant synthesis can replace exactly those
// children on a cloned tree.
type regionCandidate struct {
	name string
	kind string
	work Cycles
	idxs []int
}

// adviseCandidates enumerates the causal experiment targets of a profile
// tree in deterministic first-occurrence order: top-level sections
// grouped by annotation name (one experiment serializes every dynamic
// execution of the static section), and each non-empty top-level serial
// run as its own "serial#N" candidate.
func adviseCandidates(root *tree.Node) []regionCandidate {
	var out []regionCandidate
	secAt := map[string]int{}
	serial := 0
	for i, child := range root.Children {
		switch child.Kind {
		case tree.Sec:
			name := child.Name
			if name == "" {
				name = fmt.Sprintf("sec@%d", i)
			}
			if j, ok := secAt[name]; ok {
				out[j].work += child.TotalLen()
				out[j].idxs = append(out[j].idxs, i)
				continue
			}
			secAt[name] = len(out)
			out = append(out, regionCandidate{name: name, kind: RegionSection, work: child.TotalLen(), idxs: []int{i}})
		case tree.U:
			if child.TotalLen() == 0 {
				continue
			}
			serial++
			out = append(out, regionCandidate{name: fmt.Sprintf("serial#%d", serial), kind: RegionSerial, work: child.TotalLen(), idxs: []int{i}})
		}
	}
	return out
}

// adviseRegions runs one causal experiment per candidate region through
// the sweep engine: estimate the tree variant where the region's
// parallelism is flipped, and compare against the baseline at the same
// configuration. Cancellation mid-fanout returns the experiments that
// completed (partial results); per-region failures rank last with Err
// set.
func (p *Profile) adviseRegions(ctx context.Context, eng sweep.Engine, estFn AdviseEstimator, bestReq Request, targetThreads int, speedups map[Request]float64) []RegionAdvice {
	cands := adviseCandidates(p.Tree)
	met := p.opts.Observer.Metrics
	met.Counter(obs.MAdviseRegions).Add(int64(len(cands)))
	if len(cands) == 0 {
		return nil
	}
	baseReq := bestReq
	baseReq.Threads = targetThreads
	base, ok := speedups[baseReq]
	if !ok {
		e, err := estFn(ctx, "", p, baseReq)
		if err != nil || e.Err != nil {
			return nil
		}
		base = e.Speedup
	}
	if base <= 0 {
		return nil
	}

	outs := sweep.RunCtx(ctx, eng, len(cands), func(cctx context.Context, i int) (RegionAdvice, error) {
		return p.regionExperiment(cctx, estFn, cands[i], baseReq, base)
	})
	regions := make([]RegionAdvice, 0, len(outs))
	anti := 0
	for i, out := range outs {
		if out.Skipped {
			continue // canceled before the experiment ran: partial results
		}
		ra := out.Value
		if ra.Region == "" {
			// A panicking estimator leaves Value zero; keep the label so
			// the report can name what failed.
			c := cands[i]
			ra = RegionAdvice{Region: c.name, Kind: c.kind, Work: c.work, Coverage: p.coverageOf(c.work)}
		}
		if out.Err != nil && ra.Err == nil {
			ra.Err = out.Err
		}
		if ra.Err == nil && !ra.Recommend {
			anti++
		}
		regions = append(regions, ra)
	}
	met.Counter(obs.MAdviseAntiRecs).Add(int64(anti))
	sort.SliceStable(regions, func(i, j int) bool {
		ri, rj := regions[i], regions[j]
		if (ri.Err == nil) != (rj.Err == nil) {
			return ri.Err == nil
		}
		return ri.Marginal > rj.Marginal
	})
	return regions
}

// regionExperiment measures one region's marginal speedup. For a section
// candidate the baseline already has the region parallel, so the variant
// serializes it ("without"); for a serial-run candidate the variant
// wraps it in a synthesized section ("with"). Either way exactly one
// extra estimate per region beyond the shared baseline.
func (p *Profile) regionExperiment(ctx context.Context, estFn AdviseEstimator, c regionCandidate, baseReq Request, base float64) (RegionAdvice, error) {
	ra := RegionAdvice{Region: c.name, Kind: c.kind, Work: c.work, Coverage: p.coverageOf(c.work)}
	variant, err := p.regionVariant(c, baseReq.Threads)
	if err != nil {
		ra.Err = err
		return ra, err
	}
	e, err := estFn(ctx, "region:"+c.kind+":"+c.name, variant, baseReq)
	if err == nil && e.Err != nil {
		err = e.Err
	}
	if err != nil {
		ra.Err = err
		return ra, err
	}
	if c.kind == RegionSerial {
		ra.WithSpeedup, ra.WithoutSpeedup = e.Speedup, base
	} else {
		ra.WithSpeedup, ra.WithoutSpeedup = base, e.Speedup
	}
	if ra.WithoutSpeedup > 0 {
		ra.Marginal = ra.WithSpeedup / ra.WithoutSpeedup
	}
	ra.Recommend = ra.Marginal > 1
	return ra, nil
}

func (p *Profile) coverageOf(work Cycles) float64 {
	if p.SerialCycles == 0 {
		return 0
	}
	return float64(work) / float64(p.SerialCycles)
}

// regionVariant synthesizes the tree variant of one candidate on a clone
// of the profile tree — the baseline is never touched — and wraps it in
// a tree-only Profile sharing the calibrated model, the way
// Profile.forMachine builds machine variants. Total work is conserved
// exactly: only the region's parallel structure changes, so the
// with/without estimates answer a pure causal question.
func (p *Profile) regionVariant(c regionCandidate, targetThreads int) (*Profile, error) {
	clone := p.Tree.Clone()
	for _, idx := range c.idxs {
		if idx >= len(clone.Children) {
			return nil, fmt.Errorf("prophet: advise: region %s index %d out of range", c.name, idx)
		}
		n := clone.Children[idx]
		switch c.kind {
		case RegionSection:
			// Serialize: the section's entire work (repeats folded in) as
			// one top-level serial computation.
			clone.Children[idx] = &tree.Node{Kind: tree.U, Len: n.TotalLen()}
		case RegionSerial:
			clone.Children[idx] = parallelizeRun(n, c.name, targetThreads)
		default:
			return nil, fmt.Errorf("prophet: advise: unknown region kind %q", c.kind)
		}
	}
	if err := clone.Validate(); err != nil {
		return nil, err
	}
	vo := p.opts
	vo.Surrogate = nil // variant trees must not train or answer the surrogate
	v := &Profile{
		Tree:         clone,
		Counters:     p.Counters,
		Model:        p.Model,
		SerialCycles: clone.TotalLen(),
		opts:         vo,
	}
	if v.SerialCycles != p.SerialCycles {
		return nil, fmt.Errorf("prophet: advise: region %s variant changed total work: %d != %d",
			c.name, v.SerialCycles, p.SerialCycles)
	}
	// Recalibrate burden factors exactly as profiling would have:
	// synthesized sections get factors from their synthesized counters;
	// surviving sections recompute to the same values (same model, same
	// counters). Hand-assigned burdens on counter-less sections survive,
	// as everywhere else.
	if p.Model != nil {
		if vo.AverageBurdensByName {
			p.Model.AssignBurdensAveraged(clone, vo.ThreadCounts)
		} else {
			p.Model.AssignBurdens(clone, vo.ThreadCounts)
		}
	}
	return v, nil
}

// parallelizeRun wraps a top-level serial U run in a synthesized
// parallel section. A Repeat run becomes one task per repetition (the
// natural loop decomposition the profiler itself would have recorded); a
// single long computation splits into min(targetThreads, Len) near-equal
// tasks. Both conserve total work exactly. The section's counter sample
// is synthesized from the node's observed memory traits — per
// repetition, matching the profiler's per-section samples — so burden
// recalibration sees the intensive ratios (MPI, traffic) the real code
// exhibited; a run with no observed memory traffic gets no counters and
// hence burden 1.
func parallelizeRun(n *tree.Node, name string, targetThreads int) *tree.Node {
	sec := &tree.Node{Kind: tree.Sec, Name: name}
	if r := n.Reps(); r > 1 {
		sec.Children = []*tree.Node{{
			Kind: tree.Task, Name: "it", Repeat: r,
			Children: []*tree.Node{{Kind: tree.U, Len: n.Len, Mem: n.Mem}},
		}}
	} else {
		k := targetThreads
		if clock.Cycles(k) > n.Len {
			k = int(n.Len)
		}
		if k < 1 {
			k = 1
		}
		q := n.Len / clock.Cycles(k)
		rem := int(n.Len % clock.Cycles(k))
		// rem tasks of q+1 cycles plus k-rem of q: exact conservation.
		if rem > 0 {
			sec.Children = append(sec.Children, &tree.Node{
				Kind: tree.Task, Name: "it", Repeat: rem,
				Children: []*tree.Node{{Kind: tree.U, Len: q + 1}},
			})
		}
		if k-rem > 0 {
			sec.Children = append(sec.Children, &tree.Node{
				Kind: tree.Task, Name: "it", Repeat: k - rem,
				Children: []*tree.Node{{Kind: tree.U, Len: q}},
			})
		}
	}
	if n.Mem != (tree.MemTraits{}) {
		sec.Counters = &counters.Sample{
			Instructions: n.Mem.Instructions,
			Cycles:       n.Len,
			LLCMisses:    n.Mem.LLCMisses,
		}
	}
	return sec
}
