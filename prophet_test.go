package prophet

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"prophet/internal/sim"
	"prophet/internal/tree"
)

// testMachine is a small, overhead-free machine so assertions are tight.
func testMachine(cores int) MachineConfig {
	return MachineConfig{Cores: cores, Quantum: 10_000, ContextSwitch: -1}
}

// balancedProgram is a simple annotated loop: n tasks of `work` cycles.
func balancedProgram(n int, work int64) Program {
	return func(ctx Context) {
		ctx.SecBegin("loop")
		for i := 0; i < n; i++ {
			ctx.TaskBegin("it")
			ctx.Compute(work, 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
}

func TestProfileAndEstimateRoundTrip(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(48, 100_000), &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatalf("ProfileProgram: %v", err)
	}
	if p.SerialCycles != 4_800_000 {
		t.Fatalf("serial = %d", p.SerialCycles)
	}
	if p.Compression.NodesAfter >= p.Compression.NodesBefore {
		t.Error("uniform loop did not compress")
	}
	for _, m := range []Method{FastForward, Synthesizer} {
		est := p.Estimate(Request{Method: m, Threads: 8, Sched: Static})
		if est.Speedup < 6.5 || est.Speedup > 8.1 {
			t.Errorf("%v speedup = %.2f, want ~8", m, est.Speedup)
		}
		if est.Time <= 0 || est.Time >= p.SerialCycles {
			t.Errorf("%v predicted time %d out of range", m, est.Time)
		}
	}
}

func TestEstimateDefaultsToMachineCores(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(24, 50_000), &Options{Machine: testMachine(4)})
	if err != nil {
		t.Fatal(err)
	}
	est := p.Estimate(Request{Method: FastForward, Sched: Static})
	if est.Threads != 4 {
		t.Fatalf("defaulted threads = %d, want 4", est.Threads)
	}
}

func TestCurve(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(24, 50_000), &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	curve := p.Curve(Request{Method: FastForward, Sched: Static}, []int{1, 2, 4, 8})
	if len(curve) != 4 {
		t.Fatalf("curve length %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Speedup < curve[i-1].Speedup {
			t.Errorf("curve not monotone on balanced loop: %+v", curve)
		}
	}
}

func TestRealSpeedupMatchesPredictionOnSimpleLoop(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(48, 100_000), &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Threads: 6, Sched: Static}
	real := p.RealSpeedup(req)
	pred := p.Estimate(req).Speedup
	if e := math.Abs(pred-real) / real; e > 0.15 {
		t.Fatalf("pred %.2f vs real %.2f: %.0f%% error", pred, real, 100*e)
	}
}

func TestMemoryModelChangesMemoryBoundEstimate(t *testing.T) {
	// A streaming program: with the memory model the 12-thread estimate
	// must drop, without it it must not.
	streaming := func(ctx Context) {
		ctx.SecBegin("stream")
		for i := 0; i < 48; i++ {
			ctx.TaskBegin("it")
			ctx.Compute(10_000, 2_500) // heavy misses
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
	p, err := ProfileProgram(streaming, &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	plain := p.Estimate(Request{Method: FastForward, Threads: 12, Sched: Static})
	withMem := p.Estimate(Request{Method: FastForward, Threads: 12, Sched: Static, MemoryModel: true})
	if withMem.Speedup >= plain.Speedup {
		t.Fatalf("memory model did not reduce estimate: %.2f vs %.2f", withMem.Speedup, plain.Speedup)
	}
	real := p.RealSpeedup(Request{Threads: 12, Sched: Static})
	// PredM must be closer to reality than Pred (the Fig. 2/12 story).
	if math.Abs(withMem.Speedup-real) >= math.Abs(plain.Speedup-real) {
		t.Fatalf("PredM %.2f not closer to real %.2f than Pred %.2f", withMem.Speedup, real, plain.Speedup)
	}
}

func TestDisableMemoryModel(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(8, 200_000), &Options{Machine: testMachine(4), DisableMemoryModel: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != nil {
		t.Fatal("model present despite DisableMemoryModel")
	}
	est := p.Estimate(Request{Method: FastForward, Threads: 4, Sched: Static, MemoryModel: true})
	if est.Speedup < 3.5 {
		t.Fatalf("estimate should ignore missing model: %.2f", est.Speedup)
	}
}

func TestBaselineMethods(t *testing.T) {
	prog := func(ctx Context) {
		ctx.Compute(400_000, 0) // serial half
		ctx.SecBegin("par")
		for i := 0; i < 8; i++ {
			ctx.TaskBegin("t")
			ctx.Compute(50_000, 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
	p, err := ProfileProgram(prog, &Options{Machine: testMachine(8)})
	if err != nil {
		t.Fatal(err)
	}
	amdahl := p.Estimate(Request{Method: AmdahlLaw, Threads: 8})
	want := 1 / (0.5 + 0.5/8.0)
	if math.Abs(amdahl.Speedup-want) > 0.01 {
		t.Fatalf("Amdahl = %.3f, want %.3f", amdahl.Speedup, want)
	}
	cp := p.Estimate(Request{Method: CriticalPathBound, Threads: 8})
	if cp.Speedup < amdahl.Speedup-0.01 {
		t.Fatalf("critical-path bound %.3f below Amdahl %.3f", cp.Speedup, amdahl.Speedup)
	}
	suit := p.Estimate(Request{Method: Suitability, Threads: 8})
	if suit.Speedup <= 1 || suit.Speedup > 2 {
		t.Fatalf("suitability = %.3f", suit.Speedup)
	}
}

func TestAnnotationErrorsSurface(t *testing.T) {
	bad := func(ctx Context) { ctx.TaskBegin("orphan") }
	if _, err := ProfileProgram(bad, &Options{Machine: testMachine(2)}); err == nil {
		t.Fatal("annotation error not surfaced")
	}
}

func TestProfileTree(t *testing.T) {
	p1, err := ProfileProgram(balancedProgram(12, 20_000), &Options{Machine: testMachine(4)})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProfileTree(p1.Tree.Clone(), &Options{Machine: testMachine(4)})
	if err != nil {
		t.Fatal(err)
	}
	a := p1.Estimate(Request{Method: FastForward, Threads: 4, Sched: Static}).Speedup
	b := p2.Estimate(Request{Method: FastForward, Threads: 4, Sched: Static}).Speedup
	if a != b {
		t.Fatalf("tree round trip changed estimate: %g vs %g", a, b)
	}
	// Invalid trees are rejected.
	bad := tree.NewRoot(tree.NewTask("task-under-root"))
	if _, err := ProfileTree(bad, nil); err == nil {
		t.Fatal("invalid tree accepted")
	}
}

func TestMethodStrings(t *testing.T) {
	for m, want := range map[Method]string{
		FastForward: "ff", Synthesizer: "synthesizer", Suitability: "suitability",
		AmdahlLaw: "amdahl", CriticalPathBound: "critical-path",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestModelCacheReuse(t *testing.T) {
	mc := sim.Config{Cores: 4, Quantum: 10_000, ContextSwitch: -1}
	m1, err := modelFor(context.Background(), mc, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := modelFor(context.Background(), mc, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("calibration not cached")
	}
}

func TestEstimateOnHost(t *testing.T) {
	// Short tasks (~1ms of nominal cycles) so the host run is quick; on
	// an unknown host we only assert sanity, not speedup.
	prog := func(ctx Context) {
		ctx.SecBegin("loop")
		for i := 0; i < 4; i++ {
			ctx.TaskBegin("t")
			ctx.Compute(int64(2_400_000), 0) // 1 ms at 2.4 GHz
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
	p, err := ProfileProgram(prog, &Options{Machine: testMachine(4), DisableMemoryModel: true})
	if err != nil {
		t.Fatal(err)
	}
	est := p.EstimateOnHost(Request{Threads: 2, Sched: Dynamic1})
	if est.Speedup <= 0 || est.Time <= 0 {
		t.Fatalf("host estimate = %+v", est)
	}
	if est.Method != Synthesizer || est.Threads != 2 {
		t.Fatalf("host estimate metadata = %+v", est.Request)
	}
}

func TestExplainBurdenAndRegions(t *testing.T) {
	streaming := func(ctx Context) {
		ctx.SecBegin("hot")
		for i := 0; i < 16; i++ {
			ctx.TaskBegin("it")
			ctx.Compute(10_000, 2_000)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
		ctx.Compute(5_000, 0)
	}
	p, err := ProfileProgram(streaming, &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := p.ExplainBurden("hot", 12)
	if !ok {
		t.Fatal("section not found")
	}
	if e.Gate != "" {
		t.Fatalf("unexpected gate: %s", e.Gate)
	}
	if e.Burden <= 1 {
		t.Fatalf("hot section burden = %g, want > 1", e.Burden)
	}
	// Burden must agree with what the estimate actually uses.
	sec := p.Tree.TopLevelSections()[0]
	if e.Burden != sec.BurdenFor(12) {
		t.Fatalf("ExplainBurden %g != assigned %g", e.Burden, sec.BurdenFor(12))
	}
	if _, ok := p.ExplainBurden("nope", 4); ok {
		t.Fatal("unknown section found")
	}

	regs := p.Regions()
	if len(regs) != 1 || regs[0].Name != "hot" {
		t.Fatalf("regions = %+v", regs)
	}
	if regs[0].SelfParallelism < 15 || regs[0].SelfParallelism > 16.5 {
		t.Fatalf("self-parallelism = %g, want ~16", regs[0].SelfParallelism)
	}
}

// TestConcurrentUseOfLibrary: independent profiles and estimates may run
// from multiple goroutines (the calibration cache is shared).
func TestConcurrentUseOfLibrary(t *testing.T) {
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			prog := balancedProgram(8+g, 50_000)
			p, err := ProfileProgram(prog, &Options{Machine: testMachine(4)})
			if err != nil {
				done <- err
				return
			}
			est := p.Estimate(Request{Method: FastForward, Threads: 4, Sched: Static, MemoryModel: true})
			if est.Speedup <= 0 {
				done <- errNonPositive
				return
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errNonPositive = fmt.Errorf("non-positive speedup")

func TestAverageBurdensByNameOption(t *testing.T) {
	// Two dynamic executions of "mix": one memory-hot, one cold. The
	// averaged policy must give both the same factor.
	prog := func(ctx Context) {
		for exec := 0; exec < 2; exec++ {
			ctx.SecBegin("mix")
			for i := 0; i < 8; i++ {
				ctx.TaskBegin("t")
				if exec == 0 {
					ctx.Compute(10_000, 2_500) // hot
				} else {
					ctx.Compute(100_000, 0) // cold
				}
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
		}
	}
	avg, err := ProfileProgram(prog, &Options{Machine: testMachine(12), AverageBurdensByName: true, CompressTolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	secs := avg.Tree.TopLevelSections()
	if len(secs) != 2 {
		t.Fatalf("sections = %d", len(secs))
	}
	if secs[0].BurdenFor(12) != secs[1].BurdenFor(12) {
		t.Fatalf("averaged burdens differ: %g vs %g", secs[0].BurdenFor(12), secs[1].BurdenFor(12))
	}
	perExec, err := ProfileProgram(prog, &Options{Machine: testMachine(12), CompressTolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	pe := perExec.Tree.TopLevelSections()
	if pe[0].BurdenFor(12) == pe[1].BurdenFor(12) {
		t.Fatal("per-execution burdens unexpectedly equal")
	}
	// The average lies between the per-execution factors.
	lo, hi := pe[1].BurdenFor(12), pe[0].BurdenFor(12)
	if lo > hi {
		lo, hi = hi, lo
	}
	got := secs[0].BurdenFor(12)
	if got < lo-1e-9 || got > hi+1e-9 {
		t.Fatalf("average %g outside [%g, %g]", got, lo, hi)
	}
}

func TestHostProfilePublicAPI(t *testing.T) {
	hp := NewHostProfile()
	ctx := hp.Context()
	// A tiny real computation, annotated.
	data := make([]float64, 1<<14)
	ctx.SecBegin("fill")
	for b := 0; b < 8; b++ {
		ctx.TaskBegin("block")
		for i := b * len(data) / 8; i < (b+1)*len(data)/8; i++ {
			data[i] = float64(i) * 1.5
		}
		ctx.TaskEnd()
	}
	ctx.SecEnd(false)
	prof, err := hp.Finish(&Options{Machine: testMachine(4), DisableMemoryModel: true})
	if err != nil {
		t.Fatal(err)
	}
	if data[100] != 150 {
		t.Fatal("real computation did not run")
	}
	if prof.SerialCycles <= 0 {
		t.Fatal("no time measured")
	}
	sec := prof.Tree.TopLevelSections()
	if len(sec) != 1 || sec[0].Tasks() > 8 {
		t.Fatalf("tree shape: %d sections", len(sec))
	}
	est := prof.Estimate(Request{Method: FastForward, Threads: 4, Sched: Static})
	if est.Speedup <= 0 {
		t.Fatalf("estimate %+v", est)
	}
}

func TestHostProfileErrorsSurface(t *testing.T) {
	hp := NewHostProfileHz(1e9)
	hp.Context().TaskBegin("orphan")
	if _, err := hp.Finish(nil); err == nil {
		t.Fatal("annotation error not surfaced")
	}
}

func TestTimeline(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(8, 50_000), &Options{Machine: testMachine(4), DisableMemoryModel: true})
	if err != nil {
		t.Fatal(err)
	}
	gantt, util := p.Timeline(Request{Threads: 4, Sched: Static}, 60)
	if !strings.Contains(gantt, "core  0") || !strings.Contains(gantt, "core  3") {
		t.Fatalf("timeline missing cores:\n%s", gantt)
	}
	if len(util) == 0 {
		t.Fatal("no utilization")
	}
	for core, u := range util {
		if u <= 0 || u > 1.01 {
			t.Fatalf("core %d utilization %.2f out of range", core, u)
		}
	}
}
