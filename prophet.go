// Package prophet is a Go reproduction of Parallel Prophet (Kim, Kumar,
// Kim, Brett — "Predicting Potential Speedup of Serial Code via
// Lightweight Profiling and Emulations with Memory Performance Model",
// IPDPS 2012): it predicts the parallel speedup of an *annotated serial
// program* before anyone writes parallel code.
//
// # Workflow (the paper's Fig. 3)
//
//  1. Write the serial program against prophet.Context, wrapping
//     potentially parallel loops in SecBegin/SecEnd, their iterations in
//     TaskBegin/TaskEnd, and protected regions in LockBegin/LockEnd
//     (Table II of the paper). Computation goes through Compute with an
//     (instruction-cycles, LLC-misses) cost.
//  2. ProfileProgram runs the program serially under interval profiling,
//     builds and compresses the program tree, collects per-section
//     counters and calibrates the memory performance model (burden
//     factors β_t).
//  3. Estimate emulates the parallel behaviour for a chosen method (the
//     fast-forwarding emulator or the program-synthesis emulator),
//     threading paradigm (OpenMP or Cilk), schedule and thread count, and
//     returns the predicted speedup.
//
// The "machine" is a deterministic discrete-event simulation of a
// 12-core, two-socket Westmere-class system (internal/sim), standing in
// for the paper's testbed; see DESIGN.md for the substitution table.
package prophet

import (
	"context"
	"sort"
	"sync"

	"prophet/internal/clock"
	"prophet/internal/compress"
	"prophet/internal/counters"
	"prophet/internal/machine"
	"prophet/internal/memmodel"
	"prophet/internal/obs"
	"prophet/internal/sim"
	"prophet/internal/surrogate"
	"prophet/internal/sweep"
	"prophet/internal/trace"
	"prophet/internal/tree"
)

// Options configures profiling and prediction.
type Options struct {
	// Machine is the simulated target machine. The zero value is the
	// paper's 12-core configuration.
	Machine sim.Config
	// ThreadCounts are the CPU counts predictions will be requested for;
	// the memory model assigns one burden factor per count. Default:
	// 2, 4, 6, 8, 10, 12 (the paper's x-axis).
	ThreadCounts []int
	// CompressTolerance is the program-tree compression tolerance
	// (default 0.05, the paper's 5%; negative disables compression).
	CompressTolerance float64
	// MaxTreeNodes, when > 0, arms the lossy compression fallback.
	MaxTreeNodes int64
	// MemModel overrides the memory performance model; nil selects a
	// model calibrated against Machine (cached per machine config).
	MemModel *memmodel.Model
	// DisableMemoryModel skips calibration and burden assignment
	// entirely (every estimate behaves as MemoryModel: false).
	DisableMemoryModel bool
	// AverageBurdensByName applies the paper's exact §V policy: burden
	// factors of same-named top-level sections are averaged across their
	// dynamic executions. The default assigns per-execution factors,
	// which is strictly finer-grained.
	AverageBurdensByName bool
	// Observer attaches observability sinks: an execution tracer fed by
	// every simulated machine run and emulation made through the profile,
	// and a metrics registry aggregating stage wall times and DES
	// counters. The zero value disables observability at no cost.
	Observer Observer
	// Surrogate, when non-nil, arms the learned surrogate predictor:
	// EstimateCtx serves confident predictions from it in microseconds
	// instead of emulating, and feeds every real emulation result back
	// into its training store. Machine-variant profiles (Request.Machine)
	// share the same predictor. Nil (the default) changes nothing — all
	// estimates emulate exactly as before.
	Surrogate *Surrogate
}

// DefaultThreadCounts is the paper's evaluation grid.
func DefaultThreadCounts() []int { return []int{2, 4, 6, 8, 10, 12} }

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if len(out.ThreadCounts) == 0 {
		out.ThreadCounts = DefaultThreadCounts()
	}
	if out.CompressTolerance == 0 {
		out.CompressTolerance = compress.DefaultTolerance
	}
	return out
}

// Profile is the result of profiling an annotated serial program: the
// compressed program tree with per-section counters and burden factors.
type Profile struct {
	// Tree is the program tree (Fig. 4 of the paper).
	Tree *tree.Node
	// Counters are the whole-run totals.
	Counters counters.Sample
	// Compression reports the §VI-B tree compression.
	Compression compress.Stats
	// Model is the memory performance model used for burden factors
	// (nil when disabled).
	Model *memmodel.Model
	// SerialCycles is the profiled serial execution time.
	SerialCycles clock.Cycles

	opts Options
	// prog is the annotated program the profile came from, retained so
	// machine-variant requests (Request.Machine) can re-profile against
	// the variant's memory parameters; nil for tree-only profiles.
	prog Program
	// variants caches one derived profile per requested machine name.
	// Building a variant re-profiles and recalibrates, which is worth
	// sharing across the estimates of a -machines sweep; singleflight, so
	// concurrent requests for one machine do the work once.
	variants sweep.Cache[string, *Profile]

	// surrOnce lazily computes the surrogate feature inputs: the
	// request-independent tree stats and the partition key derived from
	// the tree fingerprint. Computed once per profile, whether the
	// surrogate is armed through Options.Surrogate or driven externally
	// (internal/server).
	surrOnce  sync.Once
	surrStats *surrogate.TreeStats
	surrKey   string
}

// MachineName returns the name of the profile's target machine: the spec
// name when profiled against a machine spec, the default preset's name
// when the flat knobs match the paper machine, and "" for an unnamed
// custom flat configuration.
func (p *Profile) MachineName() string {
	if s := p.opts.Machine.Spec; s != nil {
		return s.Name
	}
	n := p.opts.Machine.Normalized()
	d := sim.Config{Spec: machine.Default()}.Normalized()
	if n.Cores == d.Cores && n.Quantum == d.Quantum && n.ContextSwitch == d.ContextSwitch && n.DRAM == d.DRAM {
		return machine.DefaultName
	}
	return ""
}

// forMachine resolves a Request.Machine name to the profile to estimate
// against: the receiver itself when the name is empty or already the
// profile's machine, otherwise a cached variant profiled for the named
// preset. Program-backed profiles re-profile (segment lengths depend on
// the machine's unloaded memory latency); tree-only profiles keep the
// profiled lengths on a cloned tree and recalibrate burden factors only.
func (p *Profile) forMachine(ctx context.Context, name string) (*Profile, error) {
	if name == "" || name == p.MachineName() {
		return p, nil
	}
	spec, err := machine.ParseSpec(name)
	if err != nil {
		return nil, err
	}
	return p.variants.Get(name, func() (*Profile, error) {
		vo := p.opts
		vo.Machine = sim.Config{
			Spec:           spec,
			MaxEvents:      p.opts.Machine.MaxEvents,
			MaxVirtualTime: p.opts.Machine.MaxVirtualTime,
		}
		vo.MemModel = nil // calibrate against the variant machine
		if p.prog != nil {
			return ProfileProgramCtx(ctx, p.prog, &vo)
		}
		return ProfileTreeCtx(ctx, p.Tree.Clone(), &vo)
	})
}

// calibrated caches one memory model per machine configuration —
// calibration runs a microbenchmark sweep and is worth reusing. The
// singleflight cache matters under the parallel experiment sweeps:
// concurrent profiles of the same machine share one calibration run
// instead of racing to duplicate it.
var calibrated sweep.Cache[sim.Config, *memmodel.Model]

func modelFor(ctx context.Context, mc sim.Config, threads []int) (*memmodel.Model, error) {
	key := mc.Normalized()
	return calibrated.Get(key, func() (*memmodel.Model, error) {
		// Calibrate over a full ladder up to the core count, not just the
		// requested thread counts: the Φ power-law fit needs several
		// saturated operating points to be well-conditioned (§V-D).
		ladder := map[int]bool{}
		for _, t := range threads {
			if t >= 2 && t <= key.Cores {
				ladder[t] = true
			}
		}
		for t := 2; t <= key.Cores; t += 2 {
			ladder[t] = true
		}
		var ts []int
		for t := range ladder {
			ts = append(ts, t)
		}
		sort.Ints(ts)
		m, _, err := memmodel.CalibrateCtx(ctx, key, ts)
		return m, err
	})
}

// ProfileProgram profiles prog (serially, on the virtual cycle clock),
// compresses the tree, and attaches counters and burden factors.
func ProfileProgram(prog Program, opts *Options) (*Profile, error) {
	return ProfileProgramCtx(context.Background(), prog, opts)
}

// ProfileProgramCtx is ProfileProgram with cancellation: ctx gates the
// profiling run and the memory-model calibration (the expensive part; a
// canceled calibration is not cached, so a later call with a live context
// recalibrates). All errors are typed — errors.Is against the prophet
// sentinels — and panics anywhere below this boundary, including in the
// user's annotated program body, return as *PanicError instead of
// crashing the caller.
func ProfileProgramCtx(ctx context.Context, prog Program, opts *Options) (p *Profile, err error) {
	defer recoverToError(&err)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	tm := o.Observer.Metrics.StartTimer(obs.MStageProfile)
	// Normalize the machine first so spec-built configs (whose flat DRAM
	// knobs are zero) profile against the spec's memory parameters; for
	// legacy flat configs this matches the profiler's own defaulting.
	root, prof, err := trace.Profile(prog, o.Machine.Normalized().DRAM)
	tm.Stop()
	if err != nil {
		return nil, err
	}
	p = &Profile{
		Tree:         root,
		Counters:     prof.Counters(),
		SerialCycles: root.TotalLen(),
		opts:         o,
		prog:         prog,
	}
	if o.CompressTolerance >= 0 {
		tm := o.Observer.Metrics.StartTimer(obs.MStageCompress)
		p.Compression = compress.Compress(root, compress.Options{
			Tolerance: o.CompressTolerance,
			MaxNodes:  o.MaxTreeNodes,
		})
		tm.Stop()
	}
	if !o.DisableMemoryModel {
		m := o.MemModel
		if m == nil {
			tm := o.Observer.Metrics.StartTimer(obs.MStageCalibrate)
			m, err = modelFor(ctx, o.Machine, o.ThreadCounts)
			tm.Stop()
			if err != nil {
				return nil, err
			}
		}
		p.Model = m
		if o.AverageBurdensByName {
			m.AssignBurdensAveraged(root, o.ThreadCounts)
		} else {
			m.AssignBurdens(root, o.ThreadCounts)
		}
	}
	return p, nil
}

// CalibrateModel runs the §V-D microbenchmark against the given machine
// and returns the fitted memory performance model (the reproduction of
// Eq. 6/7). Results are cached per machine configuration; pass the model
// to Options.MemModel, or marshal it to JSON for reuse across processes.
func CalibrateModel(machine MachineConfig) (*MemModel, error) {
	return CalibrateModelCtx(context.Background(), machine)
}

// CalibrateModelCtx is CalibrateModel with cancellation.
func CalibrateModelCtx(ctx context.Context, machine MachineConfig) (m *MemModel, err error) {
	defer recoverToError(&err)
	return modelFor(ctx, machine, DefaultThreadCounts())
}

// ProfileTree wraps an already-built program tree (e.g. loaded from JSON)
// in a Profile so it can be estimated with the same API.
func ProfileTree(root *tree.Node, opts *Options) (*Profile, error) {
	return ProfileTreeCtx(context.Background(), root, opts)
}

// ProfileTreeCtx is ProfileTree with cancellation and panic containment.
func ProfileTreeCtx(ctx context.Context, root *tree.Node, opts *Options) (p *Profile, err error) {
	defer recoverToError(&err)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := root.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	p = &Profile{
		Tree:         root,
		SerialCycles: root.TotalLen(),
		opts:         o,
	}
	if !o.DisableMemoryModel {
		m := o.MemModel
		if m == nil {
			tm := o.Observer.Metrics.StartTimer(obs.MStageCalibrate)
			m, err = modelFor(ctx, o.Machine, o.ThreadCounts)
			tm.Stop()
			if err != nil {
				return nil, err
			}
		}
		p.Model = m
		m.AssignBurdens(root, o.ThreadCounts)
	}
	return p, nil
}
