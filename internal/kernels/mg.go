package kernels

import "math"

// MG is a 3-D multigrid V-cycle solver for the Poisson equation
// ∇²u = f with homogeneous Dirichlet boundaries on the unit cube — the
// structure of NPB MG: smoothing sweeps, residual computation, restriction
// to a coarser grid, recursive solve, prolongation and correction. Each
// sweep is a parallelizable triple loop over a grid level; the finest
// levels are bandwidth-bound, which is why MG saturates in the paper's
// Fig. 12(h).
type MG struct {
	// N is the finest grid size (interior points per dimension + 2 for
	// boundaries); must be 2^k + 1.
	N int
	U []float64 // solution, (N)³ row-major
	F []float64 // right-hand side
}

// NewMG builds a solver with a smooth manufactured right-hand side.
func NewMG(n int) *MG {
	m := &MG{N: n, U: make([]float64, n*n*n), F: make([]float64, n*n*n)}
	h := 1.0 / float64(n-1)
	for z := 1; z < n-1; z++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				px, py, pz := float64(x)*h, float64(y)*h, float64(z)*h
				// f for u* = sin(πx)sin(πy)sin(πz):
				// ∇²u* = -3π²·u*.
				m.F[m.idx(x, y, z)] = -3 * math.Pi * math.Pi *
					math.Sin(math.Pi*px) * math.Sin(math.Pi*py) * math.Sin(math.Pi*pz)
			}
		}
	}
	return m
}

func (m *MG) idx(x, y, z int) int { return x + m.N*(y+m.N*z) }

func gridIdx(n, x, y, z int) int { return x + n*(y+n*z) }

// smooth performs sweeps of damped Jacobi on (u, f) at grid size n with
// spacing h.
func smooth(u, f []float64, n int, h float64, sweeps int) {
	tmp := make([]float64, len(u))
	h2 := h * h
	const omega = 0.8
	for s := 0; s < sweeps; s++ {
		for z := 1; z < n-1; z++ {
			for y := 1; y < n-1; y++ {
				for x := 1; x < n-1; x++ {
					i := gridIdx(n, x, y, z)
					nb := u[gridIdx(n, x-1, y, z)] + u[gridIdx(n, x+1, y, z)] +
						u[gridIdx(n, x, y-1, z)] + u[gridIdx(n, x, y+1, z)] +
						u[gridIdx(n, x, y, z-1)] + u[gridIdx(n, x, y, z+1)]
					jac := (nb - h2*f[i]) / 6
					tmp[i] = u[i] + omega*(jac-u[i])
				}
			}
		}
		for z := 1; z < n-1; z++ {
			for y := 1; y < n-1; y++ {
				for x := 1; x < n-1; x++ {
					i := gridIdx(n, x, y, z)
					u[i] = tmp[i]
				}
			}
		}
	}
}

// residual computes r = f − ∇²u at grid size n.
func residual(u, f []float64, n int, h float64) []float64 {
	r := make([]float64, len(u))
	h2 := h * h
	for z := 1; z < n-1; z++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				i := gridIdx(n, x, y, z)
				lap := (u[gridIdx(n, x-1, y, z)] + u[gridIdx(n, x+1, y, z)] +
					u[gridIdx(n, x, y-1, z)] + u[gridIdx(n, x, y+1, z)] +
					u[gridIdx(n, x, y, z-1)] + u[gridIdx(n, x, y, z+1)] -
					6*u[i]) / h2
				r[i] = f[i] - lap
			}
		}
	}
	return r
}

// restrict3D injects the residual onto the next coarser grid (size
// (n+1)/2).
func restrict3D(r []float64, n int) []float64 {
	nc := (n + 1) / 2
	out := make([]float64, nc*nc*nc)
	for z := 1; z < nc-1; z++ {
		for y := 1; y < nc-1; y++ {
			for x := 1; x < nc-1; x++ {
				out[gridIdx(nc, x, y, z)] = r[gridIdx(n, 2*x, 2*y, 2*z)]
			}
		}
	}
	return out
}

// prolongAdd interpolates the coarse correction onto the fine grid and
// adds it to u.
func prolongAdd(u, c []float64, n int) {
	nc := (n + 1) / 2
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				// Trilinear interpolation from coarse nodes.
				cx, cy, cz := x/2, y/2, z/2
				fx, fy, fz := float64(x%2)/2, float64(y%2)/2, float64(z%2)/2
				var v float64
				for dz := 0; dz <= 1; dz++ {
					for dy := 0; dy <= 1; dy++ {
						for dx := 0; dx <= 1; dx++ {
							wx := 1 - fx
							if dx == 1 {
								wx = fx
							}
							wy := 1 - fy
							if dy == 1 {
								wy = fy
							}
							wz := 1 - fz
							if dz == 1 {
								wz = fz
							}
							xi, yi, zi := cx+dx, cy+dy, cz+dz
							if xi >= nc || yi >= nc || zi >= nc {
								continue
							}
							v += wx * wy * wz * c[gridIdx(nc, xi, yi, zi)]
						}
					}
				}
				u[gridIdx(n, x, y, z)] += v
			}
		}
	}
}

// vcycle runs one V-cycle on (u, f) at size n, spacing h.
func vcycle(u, f []float64, n int, h float64) {
	if n <= 3 {
		smooth(u, f, n, h, 30)
		return
	}
	smooth(u, f, n, h, 3)
	r := residual(u, f, n, h)
	fc := restrict3D(r, n)
	nc := (n + 1) / 2
	uc := make([]float64, nc*nc*nc)
	vcycle(uc, fc, nc, 2*h)
	prolongAdd(u, uc, n)
	smooth(u, f, n, h, 3)
}

// VCycle runs one multigrid V-cycle on the solver's fine grid.
func (m *MG) VCycle() {
	vcycle(m.U, m.F, m.N, 1.0/float64(m.N-1))
}

// ResidualNorm returns the RMS residual on the fine grid.
func (m *MG) ResidualNorm() float64 {
	r := residual(m.U, m.F, m.N, 1.0/float64(m.N-1))
	var s float64
	for _, v := range r {
		s += v * v
	}
	return math.Sqrt(s / float64(len(r)))
}

// SolutionError returns the max error against the manufactured solution
// sin(πx)sin(πy)sin(πz).
func (m *MG) SolutionError() float64 {
	h := 1.0 / float64(m.N-1)
	var worst float64
	for z := 0; z < m.N; z++ {
		for y := 0; y < m.N; y++ {
			for x := 0; x < m.N; x++ {
				exact := math.Sin(math.Pi*float64(x)*h) *
					math.Sin(math.Pi*float64(y)*h) *
					math.Sin(math.Pi*float64(z)*h)
				d := math.Abs(m.U[m.idx(x, y, z)] - exact)
				if d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}
