// Package kernels contains real Go implementations of the eight benchmarks
// the paper evaluates (§VII): MD, LU and FFT and QSort from OmpSCR, and
// EP, FT, MG and CG from the NAS Parallel Benchmarks. The kernels are the
// ground the annotated workload programs (internal/workloads) stand on:
// their loop structures define the task shapes and trip counts, and their
// array footprints (run through the LLC simulator in internal/mem) define
// the per-task miss counts. Each kernel is verified for numerical
// correctness in its tests, so the workload cost models derive from code
// that actually computes the right answer.
package kernels

import "math"

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }

// MD is the OmpSCR molecular-dynamics kernel: velocity-Verlet integration
// of N particles interacting through a soft pairwise potential in a cubic
// box. The OmpSCR original parallelizes the force loop (one iteration per
// particle, each doing O(N) work — a balanced parallel loop).
type MD struct {
	N    int
	Pos  []Vec3
	Vel  []Vec3
	F    []Vec3
	Box  float64
	Mass float64
}

// NewMD builds a deterministic particle system of n particles on a jittered
// lattice.
func NewMD(n int) *MD {
	m := &MD{N: n, Box: 10, Mass: 1}
	m.Pos = make([]Vec3, n)
	m.Vel = make([]Vec3, n)
	m.F = make([]Vec3, n)
	side := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := m.Box / float64(side)
	rng := newLCG(20260704)
	for i := 0; i < n; i++ {
		x := i % side
		y := (i / side) % side
		z := i / (side * side)
		jitter := func() float64 { return (rng.Float64() - 0.5) * 0.1 * spacing }
		m.Pos[i] = Vec3{
			float64(x)*spacing + jitter(),
			float64(y)*spacing + jitter(),
			float64(z)*spacing + jitter(),
		}
	}
	return m
}

// pairForce returns the force on particle i due to j: a soft 1/r⁴ repulsion
// with smooth cutoff (keeps the system numerically tame at any spacing).
func (m *MD) pairForce(i, j int) Vec3 {
	d := m.Pos[i].Sub(m.Pos[j])
	r2 := d.Norm2() + 1e-3
	inv := 1 / (r2 * r2)
	return d.Scale(inv)
}

// ForceOn computes the total force on particle i (the body of the OmpSCR
// parallel loop).
func (m *MD) ForceOn(i int) Vec3 {
	var f Vec3
	for j := 0; j < m.N; j++ {
		if j == i {
			continue
		}
		f = f.Add(m.pairForce(i, j))
	}
	return f
}

// ComputeForces fills m.F (the parallelizable O(N²) phase).
func (m *MD) ComputeForces() {
	for i := 0; i < m.N; i++ {
		m.F[i] = m.ForceOn(i)
	}
}

// Update advances positions and velocities by dt (the serial phase).
func (m *MD) Update(dt float64) {
	for i := 0; i < m.N; i++ {
		a := m.F[i].Scale(1 / m.Mass)
		m.Vel[i] = m.Vel[i].Add(a.Scale(dt))
		m.Pos[i] = m.Pos[i].Add(m.Vel[i].Scale(dt))
	}
}

// Step performs one force+update step.
func (m *MD) Step(dt float64) {
	m.ComputeForces()
	m.Update(dt)
}

// TotalForce returns the vector sum of all forces; by Newton's third law it
// must be ~0, which the tests verify.
func (m *MD) TotalForce() Vec3 {
	var s Vec3
	for _, f := range m.F {
		s = s.Add(f)
	}
	return s
}

// KineticEnergy returns ½·m·Σ|v|².
func (m *MD) KineticEnergy() float64 {
	var e float64
	for _, v := range m.Vel {
		e += v.Norm2()
	}
	return 0.5 * m.Mass * e
}

// lcg is a tiny deterministic linear congruential generator (also the core
// of the NPB EP kernel, see ep.go).
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed} }

func (r *lcg) next() uint64 {
	// Knuth's MMIX multiplier.
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}

// Float64 returns a uniform value in [0, 1).
func (r *lcg) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
