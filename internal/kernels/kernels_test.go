package kernels

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// --- MD ---

func TestMDNewtonThirdLaw(t *testing.T) {
	m := NewMD(64)
	m.ComputeForces()
	f := m.TotalForce()
	if math.Sqrt(f.Norm2()) > 1e-9 {
		t.Fatalf("net force = %+v, want ~0 (Newton's third law)", f)
	}
}

func TestMDDeterministic(t *testing.T) {
	a, b := NewMD(32), NewMD(32)
	for s := 0; s < 3; s++ {
		a.Step(1e-3)
		b.Step(1e-3)
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("positions diverged at particle %d", i)
		}
	}
}

func TestMDParticlesMove(t *testing.T) {
	m := NewMD(27)
	before := make([]Vec3, m.N)
	copy(before, m.Pos)
	for s := 0; s < 5; s++ {
		m.Step(1e-3)
	}
	moved := 0
	for i := range m.Pos {
		if m.Pos[i] != before[i] {
			moved++
		}
	}
	if moved < m.N/2 {
		t.Fatalf("only %d/%d particles moved", moved, m.N)
	}
	if m.KineticEnergy() <= 0 {
		t.Fatal("no kinetic energy after repulsive interaction")
	}
}

func TestVec3Ops(t *testing.T) {
	v := Vec3{1, 2, 3}.Add(Vec3{4, 5, 6}).Sub(Vec3{1, 1, 1}).Scale(2)
	if v != (Vec3{8, 12, 16}) {
		t.Fatalf("vector ops = %+v", v)
	}
	if (Vec3{3, 4, 0}).Norm2() != 25 {
		t.Fatal("Norm2 wrong")
	}
}

// --- LU ---

func TestLUReconstruct(t *testing.T) {
	a := NewDiagonallyDominant(40, 7)
	orig := a.Clone()
	if err := LUDecompose(a); err != nil {
		t.Fatalf("decompose: %v", err)
	}
	back := LUReconstruct(a)
	if d := MaxAbsDiff(orig, back); d > 1e-9 {
		t.Fatalf("L*U differs from A by %g", d)
	}
}

func TestLUSolve(t *testing.T) {
	n := 30
	a := NewDiagonallyDominant(n, 11)
	// Manufacture b = A·ones.
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i] += a.At(i, j)
		}
	}
	if err := LUDecompose(a); err != nil {
		t.Fatal(err)
	}
	x := LUSolve(a, b)
	for i, v := range x {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("x[%d] = %g, want 1", i, v)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(3) // all zeros
	if err := LUDecompose(a); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

// Property: LU round-trips for any seed.
func TestLURoundTripProperty(t *testing.T) {
	f := func(seed uint16) bool {
		a := NewDiagonallyDominant(12, uint64(seed)+1)
		orig := a.Clone()
		if err := LUDecompose(a); err != nil {
			return false
		}
		return MaxAbsDiff(orig, LUReconstruct(a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- FFT ---

func TestFFTMatchesDFT(t *testing.T) {
	rng := newLCG(3)
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	want := DFT(x)
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, DFT = %v", i, x[i], want[i])
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := newLCG(5)
	x := make([]complex128, 256)
	orig := make([]complex128, len(x))
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
		orig[i] = x[i]
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip broke at %d", i)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Fatal("length 12 accepted")
	}
	if !IsPowerOfTwo(1024) || IsPowerOfTwo(0) || IsPowerOfTwo(100) {
		t.Fatal("IsPowerOfTwo wrong")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 32)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v", i, v)
		}
	}
}

func TestFFT3DRoundTrip(t *testing.T) {
	g := NewGrid3D(8)
	g.FillDeterministic(9)
	orig := make([]complex128, len(g.Data))
	copy(orig, g.Data)
	if err := g.FFT3D(false); err != nil {
		t.Fatal(err)
	}
	if err := g.FFT3D(true); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("3D round trip broke at %d", i)
		}
	}
}

func TestFFT3DParsevalAndEvolve(t *testing.T) {
	g := NewGrid3D(8)
	g.FillDeterministic(13)
	var before float64
	for _, v := range g.Data {
		before += cmplx.Abs(v) * cmplx.Abs(v)
	}
	if err := g.FFT3D(false); err != nil {
		t.Fatal(err)
	}
	var after float64
	for _, v := range g.Data {
		after += cmplx.Abs(v) * cmplx.Abs(v)
	}
	n3 := float64(g.N * g.N * g.N)
	if math.Abs(after/n3-before)/before > 1e-9 {
		t.Fatalf("Parseval violated: %g vs %g", after/n3, before)
	}
	// Evolve damps high frequencies: energy must not grow.
	g.Evolve(1e-4)
	var damped float64
	for _, v := range g.Data {
		damped += cmplx.Abs(v) * cmplx.Abs(v)
	}
	if damped > after {
		t.Fatalf("Evolve increased energy: %g -> %g", after, damped)
	}
	if g.Checksum() == 0 {
		t.Fatal("checksum degenerate")
	}
}

// --- QSort ---

func TestQSortSorts(t *testing.T) {
	xs := RandomSlice(10_000, 21)
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	QSort(xs)
	if !IsSorted(xs) {
		t.Fatal("not sorted")
	}
	sum2 := 0.0
	for _, v := range xs {
		sum2 += v
	}
	if math.Abs(sum-sum2) > 1e-9 {
		t.Fatal("elements changed")
	}
}

func TestQSortEdgeCases(t *testing.T) {
	for _, xs := range [][]float64{
		{},
		{1},
		{2, 1},
		{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		{5, 4, 3, 2, 1, 0, -1, -2, -3, -4, -5, -6, -7, -8, -9, -10, -11, -12},
	} {
		cp := append([]float64(nil), xs...)
		QSort(cp)
		if !IsSorted(cp) {
			t.Fatalf("failed on %v", xs)
		}
	}
}

func TestQSortProperty(t *testing.T) {
	f := func(xs []float64) bool {
		cp := append([]float64(nil), xs...)
		QSort(cp)
		if !IsSorted(cp) {
			return false
		}
		return len(cp) == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQSortRecursionProfile(t *testing.T) {
	xs := RandomSlice(4096, 33)
	sizes := QSortRecursionProfile(xs)
	if len(sizes) == 0 {
		t.Fatal("no recursion recorded")
	}
	if sizes[0] != 4096 {
		t.Fatalf("first partition size = %d, want 4096", sizes[0])
	}
	for _, s := range sizes {
		if s <= QSortCutoff {
			t.Fatalf("recorded partition %d below cutoff", s)
		}
	}
	// Profiling must not disturb the input.
	if IsSorted(xs) {
		t.Fatal("profile sorted the input (should work on a copy)")
	}
}

// --- EP ---

func TestEPAcceptanceRate(t *testing.T) {
	e := RunEP(42, 32, 4096)
	got := e.AcceptanceRate()
	want := math.Pi / 4
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("acceptance rate = %g, want ~%g", got, want)
	}
}

func TestEPGaussianMoments(t *testing.T) {
	e := RunEP(7, 64, 4096)
	meanX := e.SumX / float64(e.Accepted)
	meanY := e.SumY / float64(e.Accepted)
	if math.Abs(meanX) > 0.02 || math.Abs(meanY) > 0.02 {
		t.Fatalf("Gaussian means = (%g, %g), want ~0", meanX, meanY)
	}
	// Nearly all samples land within 4 sigma.
	tail := e.Counts[4] + e.Counts[5] + e.Counts[6] + e.Counts[7] + e.Counts[8] + e.Counts[9]
	if float64(tail)/float64(e.Accepted) > 0.001 {
		t.Fatalf("heavy tail: %d of %d beyond 4", tail, e.Accepted)
	}
}

func TestEPBatchesOrderIndependent(t *testing.T) {
	// Merge in reverse order must give identical totals (the property
	// that makes EP embarrassingly parallel).
	var fwd, rev EP
	const nb = 16
	for b := 0; b < nb; b++ {
		p := EPBatch(99, b, 1000)
		fwd.Merge(p)
	}
	for b := nb - 1; b >= 0; b-- {
		p := EPBatch(99, b, 1000)
		rev.Merge(p)
	}
	if fwd.Accepted != rev.Accepted || fwd.Generated != rev.Generated || fwd.Counts != rev.Counts {
		t.Fatal("batch merge counts not order independent")
	}
	// Floating-point sums may differ only by rounding across orders.
	if math.Abs(fwd.SumX-rev.SumX) > 1e-9 || math.Abs(fwd.SumY-rev.SumY) > 1e-9 {
		t.Fatal("batch merge sums diverged beyond rounding")
	}
}

// --- MG ---

func TestMGConvergesToManufacturedSolution(t *testing.T) {
	m := NewMG(17)
	initial := m.ResidualNorm()
	for i := 0; i < 8; i++ {
		m.VCycle()
	}
	final := m.ResidualNorm()
	if final > initial/100 {
		t.Fatalf("residual %g -> %g; V-cycles not converging", initial, final)
	}
	if err := m.SolutionError(); err > 0.05 {
		t.Fatalf("solution error %g vs manufactured solution", err)
	}
}

func TestMGResidualDropsEveryCycle(t *testing.T) {
	m := NewMG(17)
	prev := m.ResidualNorm()
	for i := 0; i < 4; i++ {
		m.VCycle()
		cur := m.ResidualNorm()
		if cur >= prev {
			t.Fatalf("cycle %d: residual %g did not drop from %g", i, cur, prev)
		}
		prev = cur
	}
}

// --- CG ---

func TestCGSolvesSPDSystem(t *testing.T) {
	n := 500
	a := NewSparseSPD(n, 8, 17)
	// b = A·ones.
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	a.MulVec(ones, b)
	x := make([]float64, n)
	res := CGSolve(a, b, x, 200, 1e-10)
	if res.Residual > 1e-8 {
		t.Fatalf("CG residual %g after %d iterations", res.Residual, res.Iterations)
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %g, want 1", i, v)
		}
	}
}

func TestCGIterationCountReasonable(t *testing.T) {
	n := 300
	a := NewSparseSPD(n, 6, 23)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i % 7)
	}
	x := make([]float64, n)
	res := CGSolve(a, b, x, n, 1e-9)
	if res.Iterations == 0 || res.Iterations >= n {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestSparseMatrixSymmetric(t *testing.T) {
	a := NewSparseSPD(100, 6, 5)
	// Check xᵀAy == yᵀAx for random x, y (symmetry witness).
	x := RandomSlice(100, 1)
	y := RandomSlice(100, 2)
	ax := make([]float64, 100)
	ay := make([]float64, 100)
	a.MulVec(x, ax)
	a.MulVec(y, ay)
	if math.Abs(Dot(y, ax)-Dot(x, ay)) > 1e-9 {
		t.Fatal("matrix not symmetric")
	}
	if a.NNZ() <= 100 {
		t.Fatalf("suspiciously sparse: %d", a.NNZ())
	}
}

func TestDotAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatal("Dot wrong")
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("Axpy wrong: %v", y)
	}
}

// --- IS ---

func TestISRanksSortCorrectly(t *testing.T) {
	is := NewIS(50_000, 1<<11, 77)
	is.Run()
	if !is.VerifyRanks() {
		t.Fatal("ranks do not describe a sorted permutation")
	}
}

func TestISKeyDistributionGaussianish(t *testing.T) {
	// Averaging four uniforms concentrates keys near the middle: the
	// central half of the key space must hold well over half the keys.
	is := NewIS(100_000, 1<<10, 3)
	is.CountKeys()
	mid := 0
	for k := 256; k < 768; k++ {
		mid += is.buckets[k]
	}
	if frac := float64(mid) / float64(is.N); frac < 0.8 {
		t.Fatalf("central-half key fraction = %.2f, want >= 0.8 (NPB-style distribution)", frac)
	}
}

func TestISBlockCountingMatchesSerial(t *testing.T) {
	// The parallel decomposition (private histograms + merge) must give
	// the same buckets as the serial count.
	a := NewIS(10_000, 512, 9)
	b := NewIS(10_000, 512, 9)
	a.CountKeys()
	const blocks = 7
	for i := 0; i < blocks; i++ {
		lo := i * b.N / blocks
		hi := (i + 1) * b.N / blocks
		b.MergeCounts(b.CountBlock(lo, hi))
	}
	for k := 0; k < a.MaxKey; k++ {
		if a.buckets[k] != b.buckets[k] {
			t.Fatalf("bucket %d: serial %d vs merged %d", k, a.buckets[k], b.buckets[k])
		}
	}
	a.ComputeRanks()
	b.ComputeRanks()
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			t.Fatalf("rank %d differs", i)
		}
	}
}

func TestISDeterministic(t *testing.T) {
	a := NewIS(1_000, 128, 5)
	b := NewIS(1_000, 128, 5)
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			t.Fatal("key generation not deterministic")
		}
	}
}
