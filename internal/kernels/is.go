package kernels

// IS is the NPB integer-sort kernel: rank N keys drawn from an
// approximately Gaussian distribution (sum of four uniforms, as NPB's
// key generation does) into B buckets via counting sort. The paper singles
// IS out in §VI-B: profiling it produced the largest program tree (10 GB
// before compression) because its ranking loop runs for many iterations
// with near-identical lengths — exactly what RLE compression eats.
type IS struct {
	N       int
	MaxKey  int
	Keys    []int
	Ranks   []int
	buckets []int
}

// NewIS generates n keys in [0, maxKey) from the NPB-style pseudo-random
// Gaussian approximation.
func NewIS(n, maxKey int, seed uint64) *IS {
	is := &IS{N: n, MaxKey: maxKey, Keys: make([]int, n)}
	rng := newLCG(seed)
	for i := range is.Keys {
		// Average of 4 uniforms, scaled — NPB IS's key distribution.
		v := (rng.Float64() + rng.Float64() + rng.Float64() + rng.Float64()) / 4
		k := int(v * float64(maxKey))
		if k >= maxKey {
			k = maxKey - 1
		}
		is.Keys[i] = k
	}
	return is
}

// CountKeys builds the key histogram (the parallelizable counting loop:
// each thread counts a key block into a private histogram, then merges).
func (is *IS) CountKeys() {
	is.buckets = make([]int, is.MaxKey)
	for _, k := range is.Keys {
		is.buckets[k]++
	}
}

// CountBlock counts keys[lo:hi] into a private histogram (the per-thread
// body of the parallel version).
func (is *IS) CountBlock(lo, hi int) []int {
	h := make([]int, is.MaxKey)
	for _, k := range is.Keys[lo:hi] {
		h[k]++
	}
	return h
}

// MergeCounts folds a private histogram into the shared one.
func (is *IS) MergeCounts(h []int) {
	if is.buckets == nil {
		is.buckets = make([]int, is.MaxKey)
	}
	for i, v := range h {
		is.buckets[i] += v
	}
}

// ComputeRanks turns the histogram into key ranks (exclusive prefix sum,
// then per-key rank assignment).
func (is *IS) ComputeRanks() {
	sum := 0
	starts := make([]int, is.MaxKey)
	for k := 0; k < is.MaxKey; k++ {
		starts[k] = sum
		sum += is.buckets[k]
	}
	is.Ranks = make([]int, is.N)
	next := starts
	for i, k := range is.Keys {
		is.Ranks[i] = next[k]
		next[k]++
	}
}

// Run performs the full ranking (count + rank), as one NPB IS iteration.
func (is *IS) Run() {
	is.CountKeys()
	is.ComputeRanks()
}

// Sorted materializes the keys in rank order (for verification).
func (is *IS) Sorted() []int {
	out := make([]int, is.N)
	for i, r := range is.Ranks {
		out[r] = is.Keys[i]
	}
	return out
}

// VerifyRanks reports whether the ranks describe a stable non-decreasing
// ordering of the keys.
func (is *IS) VerifyRanks() bool {
	if len(is.Ranks) != is.N {
		return false
	}
	sorted := is.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			return false
		}
	}
	// Ranks must be a permutation.
	seen := make([]bool, is.N)
	for _, r := range is.Ranks {
		if r < 0 || r >= is.N || seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}
