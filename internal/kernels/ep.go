package kernels

import "math"

// EP is the NPB "embarrassingly parallel" kernel: generate batches of
// pseudo-random pairs, transform the accepted ones into Gaussian deviates
// with the Marsaglia polar method, and histogram them by annulus. Batches
// are fully independent — the perfectly scalable benchmark of the paper's
// Fig. 12(e).
type EP struct {
	// Accepted counts how many pairs fell inside the unit disk.
	Accepted int64
	// Generated counts all pairs.
	Generated int64
	// SumX, SumY accumulate the Gaussian deviates.
	SumX, SumY float64
	// Counts histograms max(|X|,|Y|) into unit annuli, as NPB does.
	Counts [10]int64
}

// EPBatch processes batch b of the given size and returns its partial
// results (pure function of (seed, b, size) — safe to run in any order).
func EPBatch(seed uint64, b int, size int) EP {
	var out EP
	rng := newLCG(seed + uint64(b)*0x9E3779B97F4A7C15)
	for i := 0; i < size; i++ {
		x := 2*rng.Float64() - 1
		y := 2*rng.Float64() - 1
		out.Generated++
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		out.Accepted++
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		out.SumX += gx
		out.SumY += gy
		a := math.Max(math.Abs(gx), math.Abs(gy))
		bucket := int(a)
		if bucket > 9 {
			bucket = 9
		}
		out.Counts[bucket]++
	}
	return out
}

// Merge folds another partial result into e.
func (e *EP) Merge(o EP) {
	e.Accepted += o.Accepted
	e.Generated += o.Generated
	e.SumX += o.SumX
	e.SumY += o.SumY
	for i := range e.Counts {
		e.Counts[i] += o.Counts[i]
	}
}

// RunEP processes nBatches batches of batchSize pairs serially.
func RunEP(seed uint64, nBatches, batchSize int) EP {
	var total EP
	for b := 0; b < nBatches; b++ {
		p := EPBatch(seed, b, batchSize)
		total.Merge(p)
	}
	return total
}

// AcceptanceRate returns accepted/generated; for uniform pairs on the
// square it converges to π/4.
func (e *EP) AcceptanceRate() float64 {
	if e.Generated == 0 {
		return 0
	}
	return float64(e.Accepted) / float64(e.Generated)
}
