package kernels

// QSort sorts xs in place with the plain recursive quicksort the OmpSCR
// benchmark parallelizes: each partition's two halves are independent
// (cilk_spawn-able) recursive calls. The pivot is median-of-three, and
// small partitions fall back to insertion sort, as the benchmark does.
func QSort(xs []float64) {
	qsortRec(xs, 0)
}

// QSortCutoff is the partition size below which insertion sort takes over
// (also the sequential grain the parallel version uses).
const QSortCutoff = 16

func qsortRec(xs []float64, depth int) {
	for len(xs) > QSortCutoff {
		p := partition(xs)
		// Recurse into the smaller half, loop on the larger: bounds
		// stack depth at O(log n).
		if p < len(xs)-p-1 {
			qsortRec(xs[:p], depth+1)
			xs = xs[p+1:]
		} else {
			qsortRec(xs[p+1:], depth+1)
			xs = xs[:p]
		}
	}
	insertion(xs)
}

// Partition rearranges xs around a median-of-three pivot and returns the
// pivot's final index. It is exported so the QSort workload model
// (internal/workloads) can replay the real recursion tree.
func Partition(xs []float64) int { return partition(xs) }

// partition rearranges xs around a median-of-three pivot and returns the
// pivot's final index.
func partition(xs []float64) int {
	n := len(xs)
	mid := n / 2
	// Median of three into xs[n-1].
	if xs[0] > xs[mid] {
		xs[0], xs[mid] = xs[mid], xs[0]
	}
	if xs[0] > xs[n-1] {
		xs[0], xs[n-1] = xs[n-1], xs[0]
	}
	if xs[mid] > xs[n-1] {
		xs[mid], xs[n-1] = xs[n-1], xs[mid]
	}
	xs[mid], xs[n-2] = xs[n-2], xs[mid]
	pivot := xs[n-2]
	i := 0
	for j := 0; j < n-2; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[n-2] = xs[n-2], xs[i]
	return i
}

func insertion(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// RandomSlice returns n deterministic pseudo-random values in [0, 1).
func RandomSlice(n int, seed uint64) []float64 {
	rng := newLCG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// IsSorted reports whether xs is non-decreasing.
func IsSorted(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// QSortRecursionProfile walks the same recursion as QSort without sorting
// and reports the partition sizes at each spawn point, ordered
// depth-first. The workload model uses it to build the recursive task
// tree with realistic (data-dependent) imbalance.
func QSortRecursionProfile(xs []float64) []int {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	var sizes []int
	var rec func(s []float64)
	rec = func(s []float64) {
		if len(s) <= QSortCutoff {
			return
		}
		p := partition(s)
		sizes = append(sizes, len(s))
		rec(s[:p])
		rec(s[p+1:])
	}
	rec(cp)
	return sizes
}
