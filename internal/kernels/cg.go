package kernels

import "math"

// SparseMatrix is a square CSR (compressed sparse row) matrix — the data
// structure NPB CG streams through on every iteration, which is what makes
// CG memory-bound (Fig. 12(g) of the paper).
type SparseMatrix struct {
	N      int
	RowPtr []int
	Cols   []int
	Vals   []float64
}

// NewSparseSPD builds a deterministic sparse symmetric positive-definite
// matrix of order n with roughly nnzPerRow off-diagonal entries per row
// (random pattern, symmetric, diagonally dominant).
func NewSparseSPD(n, nnzPerRow int, seed uint64) *SparseMatrix {
	rng := newLCG(seed)
	// Build symmetric pattern in a map-free way: collect (i, j) pairs
	// with i < j, then mirror.
	type entry struct {
		j int
		v float64
	}
	rows := make([][]entry, n)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow/2; k++ {
			j := int(rng.next() % uint64(n))
			if j == i {
				continue
			}
			v := rng.Float64() - 0.5
			rows[i] = append(rows[i], entry{j, v})
			rows[j] = append(rows[j], entry{i, v})
		}
	}
	m := &SparseMatrix{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		var diag float64
		for _, e := range rows[i] {
			diag += math.Abs(e.v)
		}
		// Off-diagonals first, then a dominant diagonal.
		for _, e := range rows[i] {
			m.Cols = append(m.Cols, e.j)
			m.Vals = append(m.Vals, e.v)
		}
		m.Cols = append(m.Cols, i)
		m.Vals = append(m.Vals, diag+1)
		m.RowPtr[i+1] = len(m.Cols)
	}
	return m
}

// MulVec computes y = A·x. The row loop is NPB CG's main parallel loop.
func (m *SparseMatrix) MulVec(x, y []float64) {
	for i := 0; i < m.N; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Vals[k] * x[m.Cols[k]]
		}
		y[i] = s
	}
}

// NNZ returns the number of stored entries.
func (m *SparseMatrix) NNZ() int { return len(m.Vals) }

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += a·x.
func Axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64
}

// CGSolve solves A·x = b with plain conjugate gradients, stopping at
// maxIter or when ‖r‖ < tol. x must be zero-initialized (or a warm
// start).
func CGSolve(a *SparseMatrix, b, x []float64, maxIter int, tol float64) CGResult {
	n := a.N
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	a.MulVec(x, ap)
	for i := 0; i < n; i++ {
		r[i] = b[i] - ap[i]
		p[i] = r[i]
	}
	rr := Dot(r, r)
	var it int
	for it = 0; it < maxIter && math.Sqrt(rr) > tol; it++ {
		a.MulVec(p, ap)
		alpha := rr / Dot(p, ap)
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rr2 := Dot(r, r)
		beta := rr2 / rr
		rr = rr2
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
	}
	return CGResult{Iterations: it, Residual: math.Sqrt(rr)}
}
