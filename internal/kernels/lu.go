package kernels

import (
	"errors"
	"math"
)

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix allocates an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// NewDiagonallyDominant builds a deterministic, well-conditioned test
// matrix (diagonally dominant, so LU without pivoting is stable).
func NewDiagonallyDominant(n int, seed uint64) *Matrix {
	m := NewMatrix(n)
	rng := newLCG(seed)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.Float64() - 0.5
			m.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		m.Set(i, i, rowSum+1)
	}
	return m
}

// ErrSingular reports a zero pivot during factorization.
var ErrSingular = errors.New("kernels: singular pivot in LU")

// LUDecompose factors A in place into L (unit lower, below the diagonal)
// and U (upper, on and above the diagonal) without pivoting — the exact
// loop nest of the paper's Fig. 1(a): for each pivot column k, the
// *inner* for-i loop over rows k+1..n-1 is the parallel loop, and its
// per-iteration work (the for-j update) shrinks as k grows, which is the
// workload-imbalance case the paper highlights.
func LUDecompose(a *Matrix) error {
	n := a.N
	for k := 0; k < n-1; k++ {
		pivot := a.At(k, k)
		if pivot == 0 {
			return ErrSingular
		}
		for i := k + 1; i < n; i++ {
			l := a.At(i, k) / pivot
			a.Set(i, k, l)
			for j := k + 1; j < n; j++ {
				a.Set(i, j, a.At(i, j)-l*a.At(k, j))
			}
		}
	}
	if a.At(n-1, n-1) == 0 {
		return ErrSingular
	}
	return nil
}

// LUReconstruct multiplies the packed L and U factors back into a full
// matrix (for verification).
func LUReconstruct(lu *Matrix) *Matrix {
	n := lu.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			// (L·U)ij = Σ_k L[i,k]·U[k,j], L unit-diagonal.
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				var l float64
				if k == i {
					l = 1
				} else {
					l = lu.At(i, k)
				}
				s += l * lu.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// MaxAbsDiff returns max |a-b| elementwise.
func MaxAbsDiff(a, b *Matrix) float64 {
	var worst float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > worst {
			worst = d
		}
	}
	return worst
}

// LUSolve solves A·x = b given the packed in-place factorization.
func LUSolve(lu *Matrix, b []float64) []float64 {
	n := lu.N
	y := make([]float64, n)
	// Forward substitution with unit L.
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= lu.At(i, j) * y[j]
		}
		y[i] = s
	}
	// Back substitution with U.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= lu.At(i, j) * x[j]
		}
		x[i] = s / lu.At(i, i)
	}
	return x
}
