package kernels

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrNotPowerOfTwo reports an FFT length that is not a power of two.
var ErrNotPowerOfTwo = errors.New("kernels: FFT length must be a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place radix-2 decimation-in-time FFT of x using the
// recursive Cooley–Tukey split — the same recursion the OmpSCR FFT
// benchmark parallelizes with two cilk_spawn-able half-size calls followed
// by a combine loop (the paper's Fig. 1(b)).
func FFT(x []complex128) error {
	if !IsPowerOfTwo(len(x)) {
		return ErrNotPowerOfTwo
	}
	fftRec(x, make([]complex128, len(x)))
	return nil
}

func fftRec(x, scratch []complex128) {
	n := len(x)
	if n == 1 {
		return
	}
	half := n / 2
	even := scratch[:half]
	odd := scratch[half:]
	for i := 0; i < half; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	copy(x[:half], even)
	copy(x[half:], odd)
	// The two recursive halves are the cilk_spawn / call pair of
	// Fig. 1(b); serially they just recurse.
	fftRec(x[:half], scratch[:half])
	fftRec(x[half:], scratch[half:])
	// Combine loop (the cilk_for of Fig. 1(b)).
	for k := 0; k < half; k++ {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		a, b := x[k], w*x[k+half]
		x[k], x[k+half] = a+b, a-b
	}
}

// IFFT computes the inverse FFT of x in place.
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
	return nil
}

// DFT is the naive O(n²) reference transform used to verify FFT.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			s += x[t] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*t)/float64(n)))
		}
		out[k] = s
	}
	return out
}

// Grid3D is a cubic complex grid for the NPB FT kernel.
type Grid3D struct {
	N    int
	Data []complex128 // x + N*(y + N*z)
}

// NewGrid3D allocates an n³ grid.
func NewGrid3D(n int) *Grid3D {
	return &Grid3D{N: n, Data: make([]complex128, n*n*n)}
}

// At returns the element at (x, y, z).
func (g *Grid3D) At(x, y, z int) complex128 { return g.Data[x+g.N*(y+g.N*z)] }

// Set writes the element at (x, y, z).
func (g *Grid3D) Set(x, y, z int, v complex128) { g.Data[x+g.N*(y+g.N*z)] = v }

// FillDeterministic seeds the grid with reproducible pseudo-random values
// (NPB FT initializes its grid from a sequential LCG stream the same way).
func (g *Grid3D) FillDeterministic(seed uint64) {
	rng := newLCG(seed)
	for i := range g.Data {
		g.Data[i] = complex(rng.Float64(), rng.Float64())
	}
}

// FFT3D transforms the grid along all three dimensions (inverse if inv).
// Each dimension is a bundle of N² independent 1-D FFTs — the parallel
// loops of NPB FT; the strided passes (y, z) are the memory-unfriendly
// phases that make FT bandwidth-bound (the paper's Fig. 2).
func (g *Grid3D) FFT3D(inv bool) error {
	if !IsPowerOfTwo(g.N) {
		return ErrNotPowerOfTwo
	}
	n := g.N
	line := make([]complex128, n)
	xform := FFT
	if inv {
		xform = IFFT
	}
	// Along x (unit stride).
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			base := n * (y + n*z)
			copy(line, g.Data[base:base+n])
			if err := xform(line); err != nil {
				return err
			}
			copy(g.Data[base:base+n], line)
		}
	}
	// Along y (stride n).
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				line[y] = g.At(x, y, z)
			}
			if err := xform(line); err != nil {
				return err
			}
			for y := 0; y < n; y++ {
				g.Set(x, y, z, line[y])
			}
		}
	}
	// Along z (stride n²).
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				line[z] = g.At(x, y, z)
			}
			if err := xform(line); err != nil {
				return err
			}
			for z := 0; z < n; z++ {
				g.Set(x, y, z, line[z])
			}
		}
	}
	return nil
}

// Evolve multiplies each mode by exp(-4π²·t·|k|²), the NPB FT time-step
// operator in frequency space.
func (g *Grid3D) Evolve(t float64) {
	n := g.N
	for z := 0; z < n; z++ {
		kz := freqIndex(z, n)
		for y := 0; y < n; y++ {
			ky := freqIndex(y, n)
			for x := 0; x < n; x++ {
				kx := freqIndex(x, n)
				k2 := float64(kx*kx + ky*ky + kz*kz)
				g.Set(x, y, z, g.At(x, y, z)*complex(math.Exp(-4*math.Pi*math.Pi*t*k2/float64(n*n)), 0))
			}
		}
	}
}

func freqIndex(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// Checksum returns the NPB-style complex checksum over a stride of modes.
func (g *Grid3D) Checksum() complex128 {
	var s complex128
	total := len(g.Data)
	for j := 1; j <= 1024; j++ {
		s += g.Data[(j*j)%total]
	}
	return s
}
