package faults

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// newLinePayloadBackend is a minimal TCP backend: per connection it
// reads one newline-terminated request, writes payload, and closes.
// One-shot connections keep the proxy's EOF semantics unambiguous.
func newLinePayloadBackend(t *testing.T, payload []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1)
				for {
					if _, err := c.Read(buf); err != nil || buf[0] == '\n' {
						break
					}
				}
				c.Write(payload)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// exchange dials the proxy, sends one request line, and reads the
// response to EOF/error, returning what arrived and the read error.
func exchange(t *testing.T, addr string) ([]byte, error) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte("hello\n")); err != nil {
		return nil, err
	}
	var got bytes.Buffer
	_, err = io.Copy(&got, c)
	return got.Bytes(), err
}

// TestChaosProxyTransparent: the zero config is a faithful relay.
func TestChaosProxyTransparent(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 512)
	backend := newLinePayloadBackend(t, payload)
	p, err := NewChaosProxy(backend, NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, err := exchange(t, p.Addr())
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("transparent relay: %d bytes, err=%v, want %d bytes clean", len(got), err, len(payload))
	}
	s := p.Stats()
	if s.Conns != 1 || s.Dropped+s.Resets+s.Truncated+s.Delayed != 0 {
		t.Errorf("stats = %+v, want one clean connection", s)
	}
}

// TestChaosProxyDropDeterministic: DropEveryN kills exactly every Nth
// accepted connection, and the pattern replays identically on a fresh
// proxy with the same config — the determinism contract.
func TestChaosProxyDropDeterministic(t *testing.T) {
	payload := []byte("response-body")
	backend := newLinePayloadBackend(t, payload)

	run := func() (outcomes []bool, stats NetStats) {
		p, err := NewChaosProxy(backend, NetConfig{Seed: 7, DropEveryN: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for i := 0; i < 9; i++ {
			got, err := exchange(t, p.Addr())
			outcomes = append(outcomes, err == nil && bytes.Equal(got, payload))
		}
		return outcomes, p.Stats()
	}

	first, stats := run()
	if stats.Conns != 9 || stats.Dropped != 3 {
		t.Fatalf("stats = %+v, want 9 conns / 3 dropped", stats)
	}
	wantOK := []bool{true, true, false, true, true, false, true, true, false}
	for i, ok := range first {
		if ok != wantOK[i] {
			t.Errorf("conn %d ok=%v, want %v", i+1, ok, wantOK[i])
		}
	}
	second, _ := run()
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("conn %d outcome differs between identical runs: %v vs %v", i+1, first[i], second[i])
		}
	}
}

// TestChaosProxyTruncateMidBody: the client receives exactly
// FaultAfterBytes of the response, then a clean EOF — the
// short-successful-reply shape that must be caught by body decoding,
// not by transport errors.
func TestChaosProxyTruncateMidBody(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 32) // 256 bytes
	backend := newLinePayloadBackend(t, payload)
	p, err := NewChaosProxy(backend, NetConfig{TruncateEveryN: 1, FaultAfterBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, readErr := exchange(t, p.Addr())
	if readErr != nil {
		t.Fatalf("truncated read should end in clean EOF, got %v", readErr)
	}
	if !bytes.Equal(got, payload[:100]) {
		t.Fatalf("got %d bytes, want exactly the first 100 of the payload", len(got))
	}
	if s := p.Stats(); s.Truncated != 1 {
		t.Errorf("stats = %+v, want Truncated=1", s)
	}
}

// TestChaosProxyResetMidBody: the connection dies with an error after
// at most FaultAfterBytes — an abortive close, not a clean short body.
func TestChaosProxyResetMidBody(t *testing.T) {
	payload := bytes.Repeat([]byte("z"), 4096)
	backend := newLinePayloadBackend(t, payload)
	p, err := NewChaosProxy(backend, NetConfig{ResetEveryN: 1, FaultAfterBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, readErr := exchange(t, p.Addr())
	// An RST may discard bytes already buffered client-side, so the exact
	// count is not guaranteed — but a full clean read is impossible.
	if readErr == nil && len(got) >= len(payload) {
		t.Fatal("reset connection delivered the full payload cleanly")
	}
	if len(got) > 64 {
		t.Errorf("client read %d bytes, fault should cap the relay at 64", len(got))
	}
	if s := p.Stats(); s.Resets != 1 {
		t.Errorf("stats = %+v, want Resets=1", s)
	}
}

// TestChaosProxyShortResponsePassesUnfaulted: a response that ends under
// FaultAfterBytes has nothing to cut — the fault must not fire and the
// client sees the complete body.
func TestChaosProxyShortResponsePassesUnfaulted(t *testing.T) {
	payload := []byte("tiny")
	backend := newLinePayloadBackend(t, payload)
	p, err := NewChaosProxy(backend, NetConfig{ResetEveryN: 1, FaultAfterBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, readErr := exchange(t, p.Addr())
	if readErr != nil || !bytes.Equal(got, payload) {
		t.Fatalf("short response: got %q err=%v, want full %q", got, readErr, payload)
	}
	if s := p.Stats(); s.Resets != 0 {
		t.Errorf("stats = %+v, want Resets=0 (nothing was cut)", s)
	}
}

// TestChaosProxyDelay: the configured stall is observed before the
// response arrives and counted once per connection.
func TestChaosProxyDelay(t *testing.T) {
	payload := []byte("slow")
	backend := newLinePayloadBackend(t, payload)
	p, err := NewChaosProxy(backend, NetConfig{Seed: 1, Delay: 50 * time.Millisecond, DelayJitter: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	got, readErr := exchange(t, p.Addr())
	if readErr != nil || !bytes.Equal(got, payload) {
		t.Fatalf("delayed relay: got %q err=%v", got, readErr)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("exchange finished in %v, before the 50ms injected delay", d)
	}
	if s := p.Stats(); s.Delayed != 1 {
		t.Errorf("stats = %+v, want Delayed=1", s)
	}
}
