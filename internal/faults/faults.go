// Package faults is the deterministic fault-injection harness of the
// prediction pipeline. The paper's tool lives on hostile inputs: noisy
// PAPI counters, rdtsc skew between cores (§VI-A), OS scheduling jitter
// under the emulated runs, memory buses that deliver less bandwidth than
// the spec sheet, and annotation macros that users misplace. This package
// turns each of those hazards into a *seeded, reproducible* perturbation
// so the robustness guarantees of the pipeline — typed errors out of
// every failure, bounded prediction drift under measurement noise — can
// be asserted in ordinary unit tests instead of waited for in the field.
//
// The injection points are no-op-by-default hooks owned by the layers
// themselves: trace.Hooks (annotation drop/duplication, counter noise),
// clock.Skewed (timestamp skew), sim.FaultHooks (quantum jitter) and the
// DRAM bandwidth hook (mem.DRAM.SetBandwidthHook). An Injector is just
// the seeded policy behind those hooks; with a zero Config every adapter
// returns a pass-through and the pipeline behaves exactly as without the
// harness.
//
// Determinism contract: all randomness comes from math/rand streams
// derived from Config.Seed, one independent stream per fault family, so
// the injected sequence does not depend on which families are enabled
// together. Hooks run on the serial goroutine of their layer (the
// profiling goroutine, the engine goroutine), so an Injector needs no
// locking — but it must not be shared across concurrent runs.
package faults

import (
	"math/rand"

	"prophet/internal/clock"
	"prophet/internal/counters"
	"prophet/internal/sim"
	"prophet/internal/trace"
)

// Config selects which faults to inject and how hard. The zero value
// injects nothing.
type Config struct {
	// Seed feeds every random stream; two injectors with equal configs
	// perturb identically, byte for byte.
	Seed int64

	// CounterNoise is the relative amplitude of multiplicative noise on
	// hardware-counter readings: 0.02 scales every cumulative sample by
	// an independent factor drawn from [0.98, 1.02].
	CounterNoise float64

	// ClockSkewCycles is the maximum magnitude, in cycles, of the offset
	// added to each clock reading (drawn uniformly from [-n, n]). The
	// clock layer clamps readings that would run backwards.
	ClockSkewCycles int64

	// QuantumJitter is the relative amplitude of jitter on the machine's
	// scheduling quantum: 0.25 draws each slice from [0.75q, 1.25q].
	QuantumJitter float64

	// BandwidthDegrade removes this fraction of the DRAM bandwidth seen
	// by the contention model (0.3 = the bus sustains 70% of spec).
	// Values are capped at 0.95 so the model keeps a positive bandwidth.
	BandwidthDegrade float64

	// DropEveryN drops every Nth annotation event (0 = never): the
	// tracer behaves as if that one macro had been compiled out.
	DropEveryN int

	// DupEveryN duplicates every Nth annotation event (0 = never).
	// Drop wins when both fire on the same event.
	DupEveryN int
}

// Injector is the seeded policy behind the pipeline's fault hooks. Not
// safe for concurrent use: create one per run.
type Injector struct {
	cfg Config

	counterRng *rand.Rand
	skewRng    *rand.Rand
	quantumRng *rand.Rand

	events int64 // annotation events seen, across all entry points
}

// New returns an injector for cfg. Each fault family gets its own stream
// derived from the seed, so enabling one family never shifts another's
// sequence.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:        cfg,
		counterRng: rand.New(rand.NewSource(cfg.Seed)),
		skewRng:    rand.New(rand.NewSource(cfg.Seed + 1)),
		quantumRng: rand.New(rand.NewSource(cfg.Seed + 2)),
	}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// pm draws a multiplicative factor from [1-amp, 1+amp].
func pm(rng *rand.Rand, amp float64) float64 {
	return 1 + amp*(2*rng.Float64()-1)
}

// action is the shared drop/duplicate policy: one counter across every
// entry point (tracer hooks and the Program middleware), so the event
// stream is perturbed identically whichever layer observes it.
func (in *Injector) action() trace.EventAction {
	in.events++
	if n := int64(in.cfg.DropEveryN); n > 0 && in.events%n == 0 {
		return trace.Drop
	}
	if n := int64(in.cfg.DupEveryN); n > 0 && in.events%n == 0 {
		return trace.Duplicate
	}
	return trace.Deliver
}

// noisy perturbs one cumulative counter value, never below zero.
func (in *Injector) noisy(v int64) int64 {
	out := int64(float64(v)*pm(in.counterRng, in.cfg.CounterNoise) + 0.5)
	if out < 0 {
		out = 0
	}
	return out
}

// TraceHooks returns the tracer hooks for the configured annotation and
// counter faults; install with Tracer.WithHooks. Pass-through entries are
// left nil so a zero config costs nothing.
func (in *Injector) TraceHooks() trace.Hooks {
	var h trace.Hooks
	if in.cfg.DropEveryN > 0 || in.cfg.DupEveryN > 0 {
		h.OnEvent = func(trace.Event) trace.EventAction { return in.action() }
	}
	if in.cfg.CounterNoise > 0 {
		h.CounterNoise = func(s counters.Sample) counters.Sample {
			s.Instructions = in.noisy(s.Instructions)
			s.Cycles = clock.Cycles(in.noisy(int64(s.Cycles)))
			s.LLCMisses = in.noisy(s.LLCMisses)
			return s
		}
	}
	return h
}

// SimFaults returns the machine-level hooks (scheduler quantum jitter,
// DRAM bandwidth degradation) for sim.RunOpts.Faults, or nil when neither
// fault is configured.
func (in *Injector) SimFaults() *sim.FaultHooks {
	var h sim.FaultHooks
	any := false
	if in.cfg.QuantumJitter > 0 {
		amp := in.cfg.QuantumJitter
		h.Quantum = func(_ int, q clock.Cycles) clock.Cycles {
			return clock.Cycles(float64(q) * pm(in.quantumRng, amp))
		}
		any = true
	}
	if in.cfg.BandwidthDegrade > 0 {
		deg := in.cfg.BandwidthDegrade
		if deg > 0.95 {
			deg = 0.95
		}
		h.DRAMBandwidth = func(base float64) float64 { return base * (1 - deg) }
		any = true
	}
	if !any {
		return nil
	}
	return &h
}

// Clock wraps base with the configured timestamp skew; with no skew
// configured it returns base unchanged.
func (in *Injector) Clock(base clock.Clock) clock.Clock {
	n := in.cfg.ClockSkewCycles
	if n <= 0 {
		return base
	}
	return &clock.Skewed{
		Base: base,
		Skew: func(clock.Cycles) clock.Cycles {
			return clock.Cycles(in.skewRng.Int63n(2*n+1) - n)
		},
	}
}

// Program wraps an annotated program so its annotation stream passes
// through the injector's drop/duplicate policy before reaching the
// profiling context — fault injection for pipelines that build their
// profiler internally (prophet.ProfileProgram). Compute and IOWait pass
// through untouched: they advance time, not tree structure, and dropping
// them would change the workload rather than the measurement.
func (in *Injector) Program(prog trace.Program) trace.Program {
	if in.cfg.DropEveryN <= 0 && in.cfg.DupEveryN <= 0 {
		return prog
	}
	return func(ctx trace.Context) { prog(&faultCtx{in: in, inner: ctx}) }
}

// faultCtx is the Program middleware: each annotation call is delivered
// zero, one or two times per the injector's shared event policy.
type faultCtx struct {
	in    *Injector
	inner trace.Context
}

func (c *faultCtx) apply(fn func()) {
	switch c.in.action() {
	case trace.Drop:
	case trace.Duplicate:
		fn()
		fn()
	default:
		fn()
	}
}

func (c *faultCtx) SecBegin(name string)  { c.apply(func() { c.inner.SecBegin(name) }) }
func (c *faultCtx) SecEnd(nowait bool)    { c.apply(func() { c.inner.SecEnd(nowait) }) }
func (c *faultCtx) TaskBegin(name string) { c.apply(func() { c.inner.TaskBegin(name) }) }
func (c *faultCtx) TaskEnd()              { c.apply(func() { c.inner.TaskEnd() }) }
func (c *faultCtx) LockBegin(id int)      { c.apply(func() { c.inner.LockBegin(id) }) }
func (c *faultCtx) LockEnd(id int)        { c.apply(func() { c.inner.LockEnd(id) }) }
func (c *faultCtx) PipeBegin(name string) { c.apply(func() { c.inner.PipeBegin(name) }) }
func (c *faultCtx) PipeEnd()              { c.apply(func() { c.inner.PipeEnd() }) }
func (c *faultCtx) StageBreak()           { c.apply(func() { c.inner.StageBreak() }) }

func (c *faultCtx) IOWait(cycles int64) { c.inner.IOWait(cycles) }
func (c *faultCtx) Compute(instrCycles, llcMisses int64) {
	c.inner.Compute(instrCycles, llcMisses)
}
