// The stability suite: under seeded fault injection the prediction
// pipeline must (a) stay byte-for-byte reproducible for a fixed seed,
// (b) drift only boundedly under measurement noise, and (c) fail only
// with typed errors — never a panic, never a hang — under structural
// faults. Run with -race in CI (the fault-injection job).
package faults_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"prophet"
	"prophet/internal/clock"
	"prophet/internal/faults"
	"prophet/internal/mem"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/tree"
)

// memProg is a memory-heavy annotated program: sections of parallel
// tasks whose counter deltas are large relative to ±2% noise, so the
// memory model has a real signal to perturb.
func memProg(sections, tasks int) trace.Program {
	return func(ctx trace.Context) {
		for s := 0; s < sections; s++ {
			ctx.Compute(50_000, 0)
			ctx.SecBegin("hot")
			for t := 0; t < tasks; t++ {
				ctx.TaskBegin("iter")
				ctx.Compute(200_000, 4_000)
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
		}
		ctx.Compute(50_000, 0)
	}
}

// profileNoisy profiles prog under the injector's tracer hooks and wraps
// the tree in a prophet Profile (burdens assigned from the per-section
// counters the noise perturbed).
func profileNoisy(t *testing.T, in *faults.Injector, prog trace.Program) *prophet.Profile {
	t.Helper()
	p := trace.NewSimProfiler(mem.DRAMConfig{})
	p.WithHooks(in.TraceHooks())
	prog(p)
	root, err := p.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	prof, err := prophet.ProfileTree(root, &prophet.Options{})
	if err != nil {
		t.Fatalf("ProfileTree: %v", err)
	}
	return prof
}

func estimate(t *testing.T, prof *prophet.Profile) float64 {
	t.Helper()
	est := prof.Estimate(prophet.Request{
		Method: prophet.FastForward, Threads: 8, MemoryModel: true,
	})
	if est.Err != nil {
		t.Fatalf("Estimate: %v", est.Err)
	}
	if est.Speedup <= 0 {
		t.Fatalf("Speedup = %v, want > 0", est.Speedup)
	}
	return est.Speedup
}

// TestSeededNoiseIsReproducible: the whole faulty pipeline — noisy
// counters, then burden assignment, then FF emulation — must be byte for
// byte identical across two injectors built from the same config: same
// tree, bit-identical speedup.
func TestSeededNoiseIsReproducible(t *testing.T) {
	cfg := faults.Config{Seed: 42, CounterNoise: 0.02}
	prog := memProg(4, 16)

	prof1 := profileNoisy(t, faults.New(cfg), prog)
	prof2 := profileNoisy(t, faults.New(cfg), prog)
	if !reflect.DeepEqual(prof1.Tree, prof2.Tree) {
		t.Fatal("same seed produced different program trees")
	}
	s1, s2 := estimate(t, prof1), estimate(t, prof2)
	if math.Float64bits(s1) != math.Float64bits(s2) {
		t.Fatalf("same seed: speedup %v vs %v (bits differ)", s1, s2)
	}

	// A different seed must be allowed to differ — the injector is not
	// secretly ignoring its stream.
	prof3 := profileNoisy(t, faults.New(faults.Config{Seed: 43, CounterNoise: 0.02}), prog)
	if reflect.DeepEqual(prof1.Tree, prof3.Tree) {
		// Trees hold counters; 2% noise on 4 sections changing nothing
		// would mean the hook never ran.
		t.Fatal("different seeds produced identical noisy trees")
	}
}

// TestCounterNoiseBoundedSpeedupDrift: ±2% counter noise may move the
// predicted speedup, but only boundedly — the memory model must not
// amplify measurement noise into a qualitatively different prediction.
func TestCounterNoiseBoundedSpeedupDrift(t *testing.T) {
	prog := memProg(4, 16)
	clean := estimate(t, profileNoisy(t, faults.New(faults.Config{}), prog))

	for seed := int64(1); seed <= 5; seed++ {
		in := faults.New(faults.Config{Seed: seed, CounterNoise: 0.02})
		noisy := estimate(t, profileNoisy(t, in, prog))
		drift := math.Abs(noisy-clean) / clean
		if drift > 0.10 {
			t.Errorf("seed %d: speedup %.4f vs clean %.4f — drift %.1f%% exceeds 10%%",
				seed, noisy, clean, 100*drift)
		}
	}
}

// TestDroppedAndDuplicatedEventsFailTyped: structural annotation faults
// must yield either a typed error (errors.Is against the prophet
// sentinels) or a tree that still validates — never a panic, never a
// silently corrupt profile.
func TestDroppedAndDuplicatedEventsFailTyped(t *testing.T) {
	prog := memProg(3, 8)
	cases := []faults.Config{
		{Seed: 1, DropEveryN: 3},
		{Seed: 2, DropEveryN: 5},
		{Seed: 3, DropEveryN: 7},
		{Seed: 4, DupEveryN: 3},
		{Seed: 5, DupEveryN: 5},
		{Seed: 6, DropEveryN: 4, DupEveryN: 9},
	}
	for _, cfg := range cases {
		in := faults.New(cfg)
		prof, err := prophet.ProfileProgram(in.Program(prog), &prophet.Options{
			DisableMemoryModel: true,
		})
		switch {
		case err == nil:
			if verr := prof.Tree.Validate(); verr != nil {
				t.Errorf("%+v: accepted profile with invalid tree: %v", cfg, verr)
			}
		case errors.Is(err, prophet.ErrAnnotationMismatch),
			errors.Is(err, prophet.ErrMalformedTree):
			// typed failure — the contract
		default:
			t.Errorf("%+v: untyped error %[2]T: %[2]v", cfg, err)
		}
	}
}

// TestQuantumJitterIsDeterministic: jittered machine runs reproduce
// exactly for a fixed seed; the jitter stream actually perturbs the
// schedule (different seeds may differ).
func TestQuantumJitterIsDeterministic(t *testing.T) {
	cfg := sim.Config{Cores: 2, Quantum: 10_000, ContextSwitch: -1, DRAM: mem.DefaultDRAM()}
	run := func(seed int64) clock.Cycles {
		in := faults.New(faults.Config{Seed: seed, QuantumJitter: 0.25})
		total, _, err := sim.RunOpt(cfg, sim.RunOpts{Faults: in.SimFaults()}, func(th *sim.Thread) {
			a := th.Spawn(func(th *sim.Thread) { th.Work(300_000) })
			b := th.Spawn(func(th *sim.Thread) { th.Work(300_000) })
			th.Work(300_000)
			th.Join(a)
			th.Join(b)
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return total
	}
	if a, b := run(7), run(7); a != b {
		t.Fatalf("same seed: makespan %d vs %d", a, b)
	}
}

// TestBandwidthDegradeSlowsMemoryBoundRun: halving DRAM bandwidth must
// not speed a memory-bound parallel run up, and should measurably slow
// it down.
func TestBandwidthDegradeSlowsMemoryBoundRun(t *testing.T) {
	cfg := sim.Config{Cores: 8, DRAM: mem.DefaultDRAM()}
	run := func(hooks *sim.FaultHooks) clock.Cycles {
		total, _, err := sim.RunOpt(cfg, sim.RunOpts{Faults: hooks}, func(th *sim.Thread) {
			var ts []*sim.Thread
			for i := 0; i < 7; i++ {
				ts = append(ts, th.Spawn(func(th *sim.Thread) {
					th.WorkMem(100_000, 10_000)
				}))
			}
			th.WorkMem(100_000, 10_000)
			for _, o := range ts {
				th.Join(o)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	clean := run(nil)
	degraded := run(faults.New(faults.Config{Seed: 1, BandwidthDegrade: 0.5}).SimFaults())
	if degraded <= clean {
		t.Fatalf("degraded bus finished in %d cycles, clean in %d — degradation had no effect", degraded, clean)
	}
}

// TestClockSkewStillProducesValidTree: a profiler reading a skewed clock
// (the paper's cross-core rdtsc hazard) must still emit a structurally
// valid tree — skew perturbs lengths, never structure, and the clock
// layer's monotonicity clamp keeps every gap non-negative.
func TestClockSkewStillProducesValidTree(t *testing.T) {
	in := faults.New(faults.Config{Seed: 11, ClockSkewCycles: 500})
	v := &clock.Virtual{}
	tr := trace.New(in.Clock(v), nil)

	const tasks = 10
	v.Advance(10_000)
	tr.SecBegin("sec")
	for i := 0; i < tasks; i++ {
		tr.TaskBegin("t")
		v.Advance(30_000)
		tr.TaskEnd()
	}
	tr.SecEnd(false)
	v.Advance(10_000)
	root, err := tr.Finish()
	if err != nil {
		t.Fatalf("Finish under clock skew: %v", err)
	}
	if err := root.Validate(); err != nil {
		t.Fatalf("skewed tree invalid: %v", err)
	}
	var secs int
	for _, c := range root.Children {
		if c.Kind == tree.Sec {
			secs++
			if len(c.Children) != tasks {
				t.Fatalf("section has %d tasks, want %d", len(c.Children), tasks)
			}
		}
	}
	if secs != 1 {
		t.Fatalf("%d sections, want 1", secs)
	}
}

// TestFaultsComposeWithTypedFailures: with jitter active, a deadlocked
// run still comes back as ErrDeadlock well inside its deadline, and a
// runaway loop still trips the event budget — fault injection must not
// degrade the failure taxonomy.
func TestFaultsComposeWithTypedFailures(t *testing.T) {
	in := faults.New(faults.Config{Seed: 3, QuantumJitter: 0.25})
	cfg := sim.Config{Cores: 2, Quantum: 10_000, ContextSwitch: -1, DRAM: mem.DefaultDRAM()}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	_, _, err := sim.RunOpt(cfg, sim.RunOpts{Ctx: ctx, Faults: in.SimFaults()}, func(th *sim.Thread) {
		o := th.Spawn(func(th *sim.Thread) {
			th.Lock(2)
			th.Work(10_000)
			th.Lock(1)
		})
		th.Lock(1)
		th.Work(10_000)
		th.Lock(2)
		th.Join(o)
	})
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("deadlock under jitter: err = %v, want ErrDeadlock", err)
	}
	if el := time.Since(start); el >= time.Second {
		t.Fatalf("deadlock detection took %v, want well under the 1s deadline", el)
	}

	budget := cfg
	budget.MaxEvents = 1_000
	_, _, err = sim.RunOpt(budget, sim.RunOpts{Faults: in.SimFaults()}, func(th *sim.Thread) {
		for {
			th.Work(1)
		}
	})
	if !errors.Is(err, sim.ErrBudgetExceeded) {
		t.Fatalf("runaway loop under jitter: err = %v, want ErrBudgetExceeded", err)
	}
}

// TestZeroConfigIsPassThrough: a zero config must return nil/pass-through
// adapters so the hooks cost nothing in production paths.
func TestZeroConfigIsPassThrough(t *testing.T) {
	in := faults.New(faults.Config{})
	if h := in.TraceHooks(); h.OnEvent != nil || h.CounterNoise != nil {
		t.Error("zero config produced non-nil trace hooks")
	}
	if in.SimFaults() != nil {
		t.Error("zero config produced non-nil sim hooks")
	}
	v := &clock.Virtual{}
	if in.Clock(v) != clock.Clock(v) {
		t.Error("zero config wrapped the clock")
	}
}
