package faults

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The network-layer extension of the harness: a chaos proxy that sits
// between a cluster client and one replica and injects the failures a
// fleet actually sees — connections refused, added latency, TCP resets
// mid-stream, and responses truncated mid-body — all seeded, so a
// failover test replays the exact same hostile network every run.
//
// Determinism contract: fault decisions are drawn per accepted
// connection, in accept order, from a single stream seeded by
// NetConfig.Seed. Tests that need an exactly reproducible fault
// sequence must serialize their connections (or use the every-Nth
// counters, which are order-dependent only on connection count).

// NetConfig selects the network faults. The zero value injects nothing
// and the proxy is a transparent TCP relay.
type NetConfig struct {
	// Seed feeds the proxy's random stream (delay jitter). Decisions are
	// drawn in connection-accept order.
	Seed int64

	// DropEveryN closes every Nth accepted connection immediately,
	// before any bytes flow — the client sees a connect-then-EOF, the
	// shape of a crashing replica (0 = never).
	DropEveryN int

	// ResetEveryN aborts every Nth connection with a TCP RST after
	// FaultAfterBytes of the backend's response have been relayed
	// (0 = never). Drop wins when both fire on the same connection.
	ResetEveryN int

	// TruncateEveryN half-closes every Nth connection cleanly after
	// FaultAfterBytes of the backend's response — a mid-body truncation
	// that looks like a successful but short reply (0 = never).
	// Drop and Reset win over Truncate on the same connection.
	TruncateEveryN int

	// FaultAfterBytes is how much of the backend's response a Reset or
	// Truncate lets through first (default 0: fault before any response
	// byte is relayed; headers are typically lost too).
	FaultAfterBytes int64

	// Delay stalls each connection before relaying begins; DelayJitter
	// adds a uniformly drawn extra in [0, DelayJitter].
	Delay       time.Duration
	DelayJitter time.Duration
}

// NetStats counts the faults a proxy injected (read with ChaosProxy.Stats).
type NetStats struct {
	Conns     int64 // connections accepted
	Dropped   int64 // closed immediately on accept
	Resets    int64 // aborted with RST mid-stream
	Truncated int64 // response cut short cleanly
	Delayed   int64 // connections stalled before relay
}

// ChaosProxy is a TCP proxy in front of one backend. Create with
// NewChaosProxy, point the client at Addr, Close when done.
type ChaosProxy struct {
	cfg     NetConfig
	backend string
	ln      net.Listener

	mu  sync.Mutex // guards rng draws (accept loop is serial, but Close races)
	rng *rand.Rand

	conns, dropped, resets, truncated, delayed atomic.Int64

	closed  atomic.Bool
	wg      sync.WaitGroup
	connsMu sync.Mutex
	open    map[net.Conn]struct{}
}

// NewChaosProxy listens on 127.0.0.1:0 and relays to backend
// (a host:port) with cfg's faults.
func NewChaosProxy(backend string, cfg NetConfig) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{
		cfg:     cfg,
		backend: backend,
		ln:      ln,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		open:    make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the injected-fault counters.
func (p *ChaosProxy) Stats() NetStats {
	return NetStats{
		Conns:     p.conns.Load(),
		Dropped:   p.dropped.Load(),
		Resets:    p.resets.Load(),
		Truncated: p.truncated.Load(),
		Delayed:   p.delayed.Load(),
	}
}

// Close stops accepting and severs every open relay.
func (p *ChaosProxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.connsMu.Lock()
	for c := range p.open {
		c.Close()
	}
	p.connsMu.Unlock()
	p.wg.Wait()
	return err
}

func (p *ChaosProxy) track(c net.Conn) {
	p.connsMu.Lock()
	p.open[c] = struct{}{}
	p.connsMu.Unlock()
}

func (p *ChaosProxy) untrack(c net.Conn) {
	p.connsMu.Lock()
	delete(p.open, c)
	p.connsMu.Unlock()
}

// connPlan is the fault decision for one accepted connection, fixed at
// accept time so the relay goroutines need no further coordination.
type connPlan struct {
	drop     bool
	reset    bool
	truncate bool
	delay    time.Duration
}

// plan draws connection n's faults (n is 1-based accept order).
func (p *ChaosProxy) plan(n int64) connPlan {
	var pl connPlan
	if k := int64(p.cfg.DropEveryN); k > 0 && n%k == 0 {
		pl.drop = true
		return pl
	}
	if k := int64(p.cfg.ResetEveryN); k > 0 && n%k == 0 {
		pl.reset = true
	}
	if k := int64(p.cfg.TruncateEveryN); k > 0 && n%k == 0 && !pl.reset {
		pl.truncate = true
	}
	if p.cfg.Delay > 0 || p.cfg.DelayJitter > 0 {
		pl.delay = p.cfg.Delay
		if p.cfg.DelayJitter > 0 {
			p.mu.Lock()
			pl.delay += time.Duration(p.rng.Int63n(int64(p.cfg.DelayJitter) + 1))
			p.mu.Unlock()
		}
	}
	return pl
}

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n := p.conns.Add(1)
		pl := p.plan(n)
		if pl.drop {
			p.dropped.Add(1)
			client.Close()
			continue
		}
		p.wg.Add(1)
		go p.relay(client, pl)
	}
}

// relay runs one proxied connection under its fault plan.
func (p *ChaosProxy) relay(client net.Conn, pl connPlan) {
	defer p.wg.Done()
	p.track(client)
	defer func() { p.untrack(client); client.Close() }()

	if pl.delay > 0 {
		p.delayed.Add(1)
		timer := time.NewTimer(pl.delay)
		defer timer.Stop()
		<-timer.C
		if p.closed.Load() {
			return
		}
	}
	backend, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return // client sees EOF, like a dead replica
	}
	p.track(backend)
	defer func() { p.untrack(backend); backend.Close() }()

	// Upstream: client → backend, unmodified.
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(backend, client)
		// Pass the client's EOF through so the backend finishes the
		// exchange instead of waiting for more request bytes.
		if tc, ok := backend.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	// Downstream: backend → client, where resets and truncations bite.
	switch {
	case pl.reset:
		if pl.limitCopy(client, backend, p.cfg.FaultAfterBytes) {
			p.resets.Add(1)
			if tc, ok := client.(*net.TCPConn); ok {
				tc.SetLinger(0) // unsent-data abort: RST, not FIN
			}
			client.Close()
		}
	case pl.truncate:
		if pl.limitCopy(client, backend, p.cfg.FaultAfterBytes) {
			p.truncated.Add(1)
			if tc, ok := client.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}
	default:
		io.Copy(client, backend)
	}
	// Propagate the backend's EOF (or the truncation point) to the client
	// so it stops reading; reset connections are already hard-closed, and
	// CloseWrite on them fails harmlessly.
	if tc, ok := client.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	<-done
}

// limitCopy relays up to limit response bytes and reports whether the
// backend still had more to say (i.e. the fault actually cut something
// off; a response shorter than the limit passes through unfaulted).
func (pl connPlan) limitCopy(dst, src net.Conn, limit int64) bool {
	if limit > 0 {
		if _, err := io.CopyN(dst, src, limit); err != nil {
			return false // backend finished (or died) under the limit
		}
	}
	// Probe one more byte: if it arrives, the cut is real. The byte is
	// deliberately not relayed — it is the first casualty of the fault.
	var one [1]byte
	n, err := src.Read(one[:])
	return n > 0 || err == nil
}
