package tree

import (
	"strings"
	"testing"
	"testing/quick"

	"prophet/internal/clock"
)

// figure4 builds the exact program tree of Fig. 4 in the paper: a top-level
// section ("loop1", 300 cycles) of two iterations with a lock, where the
// second iteration contains a nested section ("loop2", 190 cycles) of four
// iterations of 50/50/50/40 cycles:
//
//	Sec 300
//	├── Task 50   = U10 L20 U20
//	└── Task 250  = U25 L25 Sec190(50,50,50,40) U10
func figure4() *Node {
	inner := NewSec("loop2",
		NewTask("t2", NewU(50)),
		NewTask("t2", NewU(50)),
		NewTask("t2", NewU(50)),
		NewTask("t2", NewU(40)),
	)
	it0 := NewTask("t1", NewU(10), NewL(1, 20), NewU(20))
	it1 := NewTask("t1", NewU(25), NewL(1, 25), inner, NewU(10))
	return NewRoot(NewSec("loop1", it0, it1))
}

func TestFigure4TreeTotals(t *testing.T) {
	root := figure4()
	if err := root.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	secs := root.TopLevelSections()
	if len(secs) != 1 {
		t.Fatalf("top-level sections = %d, want 1", len(secs))
	}
	sec := secs[0]
	if got, want := sec.TotalLen(), clock.Cycles(300); got != want {
		t.Errorf("Sec total = %d, want %d (paper Fig. 4)", got, want)
	}
	if got := sec.Children[1].TotalLen(); got != 250 {
		t.Errorf("middle Task total = %d, want 250", got)
	}
	// The nested section is 190 cycles (50+50+50+40).
	inner := sec.Children[1].Children[2]
	if inner.Kind != Sec {
		t.Fatalf("expected nested Sec, got %v", inner.Kind)
	}
	if got := inner.TotalLen(); got != 190 {
		t.Errorf("nested Sec total = %d, want 190", got)
	}
	if got := sec.Tasks(); got != 2 {
		t.Errorf("Tasks() = %d, want 2", got)
	}
	if got := inner.Tasks(); got != 4 {
		t.Errorf("inner Tasks() = %d, want 4", got)
	}
}

func TestRepeatSemantics(t *testing.T) {
	// A run of 5 identical tasks of 100 cycles compressed into Repeat=5.
	task := NewTask("t", NewU(100))
	task.Repeat = 5
	sec := NewSec("s", task)
	if got := sec.TotalLen(); got != 500 {
		t.Errorf("TotalLen with repeat = %d, want 500", got)
	}
	if got := sec.Tasks(); got != 5 {
		t.Errorf("Tasks with repeat = %d, want 5", got)
	}
	phys, logical := sec.NodeCount()
	if phys != 3 { // Sec + Task + U
		t.Errorf("physical nodes = %d, want 3", phys)
	}
	if logical != 11 { // Sec + 5*(Task+U)
		t.Errorf("logical nodes = %d, want 11", logical)
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name string
		root *Node
	}{
		{"task under root", NewRoot(NewTask("t"))},
		{"u under sec", NewRoot(&Node{Kind: Sec, Children: []*Node{NewU(1)}})},
		{"sec under sec", NewRoot(&Node{Kind: Sec, Children: []*Node{NewSec("x")}})},
		{"u with children", NewRoot(NewSec("s", NewTask("t", &Node{Kind: U, Children: []*Node{NewU(1)}})))},
		{"negative len", NewRoot(NewSec("s", NewTask("t", NewU(-5))))},
	}
	for _, c := range cases {
		if err := c.root.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid tree", c.name)
		}
	}
}

func TestValidateWantsRoot(t *testing.T) {
	if err := NewSec("s").Validate(); err == nil {
		t.Fatal("Validate on non-root should fail")
	}
}

func TestSerialOutsideSections(t *testing.T) {
	root := NewRoot(NewU(40), NewSec("s", NewTask("t", NewU(60))), NewU(10))
	if got := root.SerialOutsideSections(); got != 50 {
		t.Errorf("SerialOutsideSections = %d, want 50", got)
	}
	if got := root.TotalLen(); got != 110 {
		t.Errorf("TotalLen = %d, want 110", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	root := figure4()
	sec := root.TopLevelSections()[0]
	sec.Burden = map[int]float64{2: 1.2}
	cp := root.Clone()
	// Mutate the original; the clone must not change.
	sec.Children[0].Children[0].Len = 999
	sec.Burden[2] = 9
	csec := cp.TopLevelSections()[0]
	if csec.Children[0].Children[0].Len != 10 {
		t.Error("clone shares U node with original")
	}
	if csec.Burden[2] != 1.2 {
		t.Error("clone shares burden map with original")
	}
	if !Equal(cp, figure4(), 0) {
		t.Error("clone not structurally equal to pristine tree")
	}
}

func TestEqualTolerance(t *testing.T) {
	a := NewRoot(NewSec("s", NewTask("t", NewU(100))))
	b := NewRoot(NewSec("s", NewTask("t", NewU(104))))
	if Equal(a, b, 0) {
		t.Error("exact Equal should fail on 100 vs 104")
	}
	if !Equal(a, b, 0.05) {
		t.Error("5%% tolerance should accept 100 vs 104")
	}
	if Equal(a, b, 0.01) {
		t.Error("1%% tolerance should reject 100 vs 104")
	}
	c := NewRoot(NewSec("s", NewTask("t", NewL(1, 100))))
	if Equal(a, c, 1) {
		t.Error("kind mismatch must never be equal")
	}
}

func TestBurdenFor(t *testing.T) {
	n := NewSec("s")
	if got := n.BurdenFor(4); got != 1 {
		t.Errorf("unassigned burden = %g, want 1", got)
	}
	n.Burden = map[int]float64{4: 1.4, 8: 0.5 /* invalid, below 1 */}
	if got := n.BurdenFor(4); got != 1.4 {
		t.Errorf("burden(4) = %g, want 1.4", got)
	}
	if got := n.BurdenFor(8); got != 1 {
		t.Errorf("burden(8) with invalid value = %g, want clamp to 1", got)
	}
	var nilNode *Node
	if got := nilNode.BurdenFor(2); got != 1 {
		t.Errorf("nil node burden = %g, want 1", got)
	}
}

func TestStringRendersStructure(t *testing.T) {
	s := figure4().String()
	for _, want := range []string{"Root", "Sec \"loop1\"", "L 25 lock=1", "Sec \"loop2\"", "U 40"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestWalkPreOrderAndPrune(t *testing.T) {
	root := figure4()
	var kinds []Kind
	root.Walk(func(n *Node) bool {
		kinds = append(kinds, n.Kind)
		return n.Kind != Sec || n.Name != "loop2" // prune inner section
	})
	// No inner-section tasks should appear after pruning.
	innerTasks := 0
	for i, k := range kinds {
		if k == Task && i > 0 && kinds[i-1] == Sec {
			_ = i
		}
		_ = k
	}
	_ = innerTasks
	if kinds[0] != Root || kinds[1] != Sec {
		t.Fatalf("pre-order violated: %v", kinds[:2])
	}
	// Full walk visits 16 physical nodes; pruned walk must visit fewer.
	full := 0
	root.Walk(func(*Node) bool { full++; return true })
	if len(kinds) >= full {
		t.Errorf("prune did not skip children: pruned=%d full=%d", len(kinds), full)
	}
}

// Property: TotalLen is invariant under Clone, and NodeCount logical >= physical.
func TestTreeProperties(t *testing.T) {
	f := func(lens []uint16, rep uint8) bool {
		if len(lens) == 0 {
			lens = []uint16{1}
		}
		var tasks []*Node
		for _, l := range lens {
			tk := NewTask("t", NewU(clock.Cycles(l)))
			tk.Repeat = int(rep%7) + 1
			tasks = append(tasks, tk)
		}
		root := NewRoot(NewSec("s", tasks...))
		if root.Validate() != nil {
			return false
		}
		cp := root.Clone()
		if cp.TotalLen() != root.TotalLen() {
			return false
		}
		p, l := root.NodeCount()
		return l >= p && p > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
