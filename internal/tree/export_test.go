package tree

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"prophet/internal/counters"
)

func TestJSONRoundTrip(t *testing.T) {
	root := figure4()
	sec := root.TopLevelSections()[0]
	sec.Counters = &counters.Sample{Instructions: 1000, Cycles: 300, LLCMisses: 7}
	sec.Burden = map[int]float64{2: 1.2, 4: 1.4}
	sec.Children[0].Repeat = 2
	sec.Children[0].Children[0].Mem = MemTraits{Instructions: 5, LLCMisses: 1}

	data, err := json.Marshal(root)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Node
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !Equal(root, &back, 0) {
		t.Fatalf("round trip changed the tree:\n%s\nvs\n%s", root, &back)
	}
	bsec := back.TopLevelSections()[0]
	if bsec.Counters == nil || bsec.Counters.Instructions != 1000 || bsec.Counters.Cycles != 300 {
		t.Errorf("counters lost in round trip: %+v", bsec.Counters)
	}
	if bsec.Burden[2] != 1.2 || bsec.Burden[4] != 1.4 {
		t.Errorf("burden lost in round trip: %v", bsec.Burden)
	}
	if got := bsec.Children[0].Children[0].Mem; got != (MemTraits{Instructions: 5, LLCMisses: 1}) {
		t.Errorf("mem traits lost: %+v", got)
	}
}

func TestJSONDeterministic(t *testing.T) {
	root := figure4()
	root.TopLevelSections()[0].Burden = map[int]float64{12: 1.45, 2: 1.0, 8: 1.3}
	a, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("marshal not deterministic")
	}
	// Burden entries must be in ascending thread order.
	i2 := bytes.Index(a, []byte(`"threads":2`))
	i8 := bytes.Index(a, []byte(`"threads":8`))
	i12 := bytes.Index(a, []byte(`"threads":12`))
	if !(i2 < i8 && i8 < i12) {
		t.Fatalf("burden order not ascending: %d %d %d", i2, i8, i12)
	}
}

func TestUnmarshalRejectsUnknownKind(t *testing.T) {
	var n Node
	if err := json.Unmarshal([]byte(`{"kind":"Bogus"}`), &n); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := figure4().WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "digraph programtree {") || !strings.HasSuffix(strings.TrimSpace(s), "}") {
		t.Error("DOT output not a digraph")
	}
	if !strings.Contains(s, "->") {
		t.Error("DOT output has no edges")
	}
	if !strings.Contains(s, "Sec\\nloop2") {
		t.Errorf("DOT output missing nested section label:\n%s", s)
	}
}

func TestApproxBytesGrowsWithTree(t *testing.T) {
	small := NewRoot(NewSec("s", NewTask("t", NewU(1))))
	big := figure4()
	sb, bb := small.ApproxBytes(), big.ApproxBytes()
	if sb <= 0 || bb <= sb {
		t.Fatalf("ApproxBytes small=%d big=%d; want 0 < small < big", sb, bb)
	}
}
