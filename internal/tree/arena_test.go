package tree

import (
	"testing"

	"prophet/internal/clock"
	"prophet/internal/counters"
)

// TestArenaPointerStability checks that nodes stay addressable and intact
// as the arena grows past many chunk boundaries.
func TestArenaPointerStability(t *testing.T) {
	a := NewArena()
	const n = 4*arenaChunkSize + 37
	ptrs := make([]*Node, n)
	for i := 0; i < n; i++ {
		p := a.New()
		p.Len = clock.Cycles(i)
		ptrs[i] = p
	}
	if got := a.Allocated(); got != n {
		t.Fatalf("Allocated() = %d, want %d", got, n)
	}
	for i, p := range ptrs {
		if p.Len != clock.Cycles(i) {
			t.Fatalf("node %d: Len = %d, want %d (pointer invalidated by growth?)", i, p.Len, i)
		}
	}
}

// TestArenaResetRecycles checks that Reset hands back zeroed nodes and
// that a warm build-discard cycle allocates nothing.
func TestArenaResetRecycles(t *testing.T) {
	a := NewArena()
	build := func() {
		for i := 0; i < 3*arenaChunkSize; i++ {
			p := a.New()
			p.Kind = U
			p.Len = 42
			p.Children = append(p.Children, a.New())
		}
		a.Reset()
	}
	build() // warm: chunks and Children arrays reach steady state
	if got := a.Allocated(); got != 0 {
		t.Fatalf("Allocated() after Reset = %d, want 0", got)
	}
	p := a.New()
	if p.Kind != Root || p.Len != 0 || len(p.Children) != 0 {
		t.Fatalf("recycled node not zeroed: %+v", *p)
	}
	a.Reset()
	if allocs := testing.AllocsPerRun(20, build); allocs != 0 {
		t.Errorf("warm build-discard cycle allocates %v objects per run, want 0", allocs)
	}
}

// TestArenaCloneEquivalent checks Arena.Clone against Node.Clone.
func TestArenaCloneEquivalent(t *testing.T) {
	orig := &Node{Kind: Root, Children: []*Node{
		{Kind: Sec, Name: "s", Counters: &counters.Sample{Instructions: 7}, Children: []*Node{
			{Kind: Task, Name: "t", Burden: map[int]float64{12: 1.5}, Children: []*Node{
				{Kind: U, Len: 100, Mem: MemTraits{Instructions: 90, LLCMisses: 2}},
				{Kind: L, Len: 10, LockID: 3},
			}},
		}},
	}}
	a := NewArena()
	for round := 0; round < 2; round++ { // round 1 exercises recycled nodes
		cp := a.Clone(orig)
		assertTreeEqual(t, orig, cp)
		if cp == orig || cp.Children[0] == orig.Children[0] {
			t.Fatal("Clone aliases the original")
		}
		if cp.Children[0].Counters == orig.Children[0].Counters {
			t.Fatal("Clone aliases Counters")
		}
		// Mutating the clone must not touch the original.
		cp.Children[0].Children[0].Children[0].Len = 999
		if orig.Children[0].Children[0].Children[0].Len != 100 {
			t.Fatal("clone mutation visible in original")
		}
		a.Reset()
	}
}

// assertTreeEqual compares two trees field by field, treating nil and
// empty Children the same (recycled arena nodes keep empty slices).
func assertTreeEqual(t *testing.T, want, got *Node) {
	t.Helper()
	if want.Kind != got.Kind || want.Name != got.Name || want.Len != got.Len ||
		want.LockID != got.LockID || want.NoWait != got.NoWait ||
		want.Pipeline != got.Pipeline || want.Repeat != got.Repeat ||
		want.Mem != got.Mem {
		t.Fatalf("node mismatch:\nwant %+v\ngot  %+v", *want, *got)
	}
	if (want.Counters == nil) != (got.Counters == nil) {
		t.Fatalf("Counters presence mismatch")
	}
	if want.Counters != nil && *want.Counters != *got.Counters {
		t.Fatalf("Counters mismatch: want %+v got %+v", *want.Counters, *got.Counters)
	}
	if len(want.Burden) != len(got.Burden) {
		t.Fatalf("Burden size mismatch")
	}
	for k, v := range want.Burden {
		if got.Burden[k] != v {
			t.Fatalf("Burden[%d] mismatch", k)
		}
	}
	if len(want.Children) != len(got.Children) {
		t.Fatalf("child count mismatch: want %d got %d", len(want.Children), len(got.Children))
	}
	for i := range want.Children {
		assertTreeEqual(t, want.Children[i], got.Children[i])
	}
}
