package tree

import (
	"encoding/json"
	"math/rand"
	"testing"

	"prophet/internal/clock"
	"prophet/internal/counters"
)

// randomValidTree builds a random structurally valid tree including
// nowait, pipeline flags, repeats, locks, counters and burden maps.
func randomValidTree(rng *rand.Rand) *Node {
	var buildTask func(depth int) *Node
	buildTask = func(depth int) *Node {
		task := NewTask("t")
		if rng.Intn(5) == 0 {
			task.Repeat = 1 + rng.Intn(9)
		}
		for s := 0; s < 1+rng.Intn(3); s++ {
			switch {
			case depth > 0 && rng.Intn(5) == 0:
				inner := NewSec("in")
				inner.NoWait = rng.Intn(2) == 0
				for k := 0; k < 1+rng.Intn(3); k++ {
					inner.Children = append(inner.Children, buildTask(depth-1))
				}
				task.Children = append(task.Children, inner)
			case rng.Intn(4) == 0:
				l := NewL(1+rng.Intn(3), clock.Cycles(rng.Intn(1_000)))
				l.Mem = MemTraits{Instructions: int64(rng.Intn(100)), LLCMisses: int64(rng.Intn(10))}
				task.Children = append(task.Children, l)
			default:
				u := NewU(clock.Cycles(rng.Intn(1_000)))
				u.Mem = MemTraits{Instructions: int64(rng.Intn(100))}
				task.Children = append(task.Children, u)
			}
		}
		return task
	}
	root := NewRoot()
	for i := 0; i < 1+rng.Intn(4); i++ {
		if rng.Intn(4) == 0 {
			root.Children = append(root.Children, NewU(clock.Cycles(rng.Intn(500))))
			continue
		}
		sec := NewSec("s")
		if rng.Intn(6) == 0 {
			// Pipeline sections: leaf-only tasks.
			sec.Pipeline = true
			for k := 0; k < 1+rng.Intn(5); k++ {
				task := NewTask("p", NewU(clock.Cycles(1+rng.Intn(300))), NewU(clock.Cycles(1+rng.Intn(300))))
				sec.Children = append(sec.Children, task)
			}
		} else {
			for k := 0; k < 1+rng.Intn(5); k++ {
				sec.Children = append(sec.Children, buildTask(2))
			}
			sec.Counters = &counters.Sample{
				Instructions: int64(rng.Intn(100_000)),
				Cycles:       clock.Cycles(rng.Intn(100_000) + 1),
				LLCMisses:    int64(rng.Intn(1_000)),
			}
			sec.Burden = map[int]float64{2: 1 + rng.Float64(), 12: 1 + rng.Float64()}
		}
		root.Children = append(root.Children, sec)
	}
	return root
}

// TestJSONRoundTripProperty: random trees survive marshal/unmarshal with
// structure, flags, lengths, counters and burdens intact.
func TestJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		root := randomValidTree(rng)
		if err := root.Validate(); err != nil {
			t.Fatalf("generator produced invalid tree: %v", err)
		}
		data, err := json.Marshal(root)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Node
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !Equal(root, &back, 0) {
			t.Fatalf("trial %d: round trip changed tree:\n%s\nvs\n%s", trial, root, &back)
		}
		if back.TotalLen() != root.TotalLen() {
			t.Fatalf("trial %d: TotalLen %d -> %d", trial, root.TotalLen(), back.TotalLen())
		}
		// Burden and counters on sections survive.
		origSecs := root.TopLevelSections()
		backSecs := back.TopLevelSections()
		if len(origSecs) != len(backSecs) {
			t.Fatalf("sections %d -> %d", len(origSecs), len(backSecs))
		}
		for i := range origSecs {
			if (origSecs[i].Counters == nil) != (backSecs[i].Counters == nil) {
				t.Fatalf("counters presence changed on section %d", i)
			}
			if origSecs[i].Pipeline != backSecs[i].Pipeline {
				t.Fatalf("pipeline flag changed on section %d", i)
			}
			for k, v := range origSecs[i].Burden {
				if backSecs[i].Burden[k] != v {
					t.Fatalf("burden[%d] changed", k)
				}
			}
		}
	}
}

// TestCloneEqualProperty: Clone is always Equal and fully detached.
func TestCloneEqualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 30; trial++ {
		root := randomValidTree(rng)
		cp := root.Clone()
		if !Equal(root, cp, 0) {
			t.Fatal("clone not equal")
		}
		// Mutate every leaf of the original; clone must not change.
		before := cp.TotalLen()
		root.Walk(func(n *Node) bool {
			if n.Kind == U || n.Kind == L {
				n.Len += 1_000_000
			}
			return true
		})
		if cp.TotalLen() != before {
			t.Fatal("clone shares leaves with original")
		}
	}
}

// TestApproxBytesScalesWithNodes: footprint estimate grows with the
// physical node count.
func TestApproxBytesScalesWithNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := randomValidTree(rand.New(rand.NewSource(1)))
	var big *Node
	for {
		big = randomValidTree(rng)
		ps, _ := small.NodeCount()
		pb, _ := big.NodeCount()
		if pb > 2*ps {
			break
		}
	}
	if big.ApproxBytes() <= small.ApproxBytes() {
		t.Fatalf("bytes: big %d <= small %d", big.ApproxBytes(), small.ApproxBytes())
	}
}
