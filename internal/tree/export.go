package tree

import (
	"encoding/json"
	"fmt"
	"io"
	"unsafe"

	"prophet/internal/clock"
	"prophet/internal/counters"
)

// jsonNode is the stable wire form of a Node. Pointers and maps are flattened
// so the output is deterministic and diff-friendly.
type jsonNode struct {
	Kind     string       `json:"kind"`
	Name     string       `json:"name,omitempty"`
	Len      int64        `json:"len,omitempty"`
	LockID   int          `json:"lock,omitempty"`
	NoWait   bool         `json:"nowait,omitempty"`
	Pipeline bool         `json:"pipeline,omitempty"`
	Repeat   int          `json:"repeat,omitempty"`
	Instr    int64        `json:"instr,omitempty"`
	Misses   int64        `json:"misses,omitempty"`
	Children []*jsonNode  `json:"children,omitempty"`
	Counters *jsonSample  `json:"counters,omitempty"`
	Burden   []burdenPair `json:"burden,omitempty"`
}

type jsonSample struct {
	Instructions int64 `json:"instr"`
	Cycles       int64 `json:"cycles"`
	LLCMisses    int64 `json:"misses"`
}

type burdenPair struct {
	Threads int     `json:"threads"`
	Beta    float64 `json:"beta"`
}

func toJSON(n *Node) *jsonNode {
	j := &jsonNode{
		Kind:     n.Kind.String(),
		Name:     n.Name,
		Len:      int64(n.Len),
		LockID:   n.LockID,
		NoWait:   n.NoWait,
		Pipeline: n.Pipeline,
		Repeat:   n.Repeat,
		Instr:    n.Mem.Instructions,
		Misses:   n.Mem.LLCMisses,
	}
	if n.Counters != nil {
		j.Counters = &jsonSample{
			Instructions: n.Counters.Instructions,
			Cycles:       int64(n.Counters.Cycles),
			LLCMisses:    n.Counters.LLCMisses,
		}
	}
	if len(n.Burden) > 0 {
		// Deterministic order: ascending thread counts.
		for t := 1; t <= 1024; t++ {
			if b, ok := n.Burden[t]; ok {
				j.Burden = append(j.Burden, burdenPair{Threads: t, Beta: b})
			}
		}
	}
	for _, c := range n.Children {
		j.Children = append(j.Children, toJSON(c))
	}
	return j
}

func fromJSON(j *jsonNode) (*Node, error) {
	var k Kind
	switch j.Kind {
	case "Root":
		k = Root
	case "Sec":
		k = Sec
	case "Task":
		k = Task
	case "U":
		k = U
	case "L":
		k = L
	case "W":
		k = W
	default:
		return nil, fmt.Errorf("tree: unknown node kind %q", j.Kind)
	}
	n := &Node{
		Kind:     k,
		Name:     j.Name,
		Len:      clock.Cycles(j.Len),
		LockID:   j.LockID,
		NoWait:   j.NoWait,
		Pipeline: j.Pipeline,
		Repeat:   j.Repeat,
		Mem:      MemTraits{Instructions: j.Instr, LLCMisses: j.Misses},
	}
	if j.Counters != nil {
		n.Counters = &counters.Sample{
			Instructions: j.Counters.Instructions,
			Cycles:       clock.Cycles(j.Counters.Cycles),
			LLCMisses:    j.Counters.LLCMisses,
		}
	}
	if len(j.Burden) > 0 {
		n.Burden = make(map[int]float64, len(j.Burden))
		for _, p := range j.Burden {
			n.Burden[p.Threads] = p.Beta
		}
	}
	for _, jc := range j.Children {
		c, err := fromJSON(jc)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}

// MarshalJSON encodes the subtree in a stable wire format.
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(toJSON(n))
}

// UnmarshalJSON decodes a subtree written by MarshalJSON.
func (n *Node) UnmarshalJSON(data []byte) error {
	var j jsonNode
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	dec, err := fromJSON(&j)
	if err != nil {
		return err
	}
	*n = *dec
	return nil
}

// WriteDOT renders the subtree as a Graphviz digraph (Fig. 4 style: node
// kind plus cycle length). Intended for debugging and documentation.
func (n *Node) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph programtree {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];"); err != nil {
		return err
	}
	id := 0
	var emit func(node *Node) (int, error)
	emit = func(node *Node) (int, error) {
		me := id
		id++
		label := node.Kind.String()
		if node.Name != "" {
			label += "\\n" + node.Name
		}
		switch node.Kind {
		case U, L:
			label += fmt.Sprintf("\\n%d", node.Len)
		default:
			label += fmt.Sprintf("\\n%d", node.TotalLen())
		}
		if node.Reps() > 1 {
			label += fmt.Sprintf(" x%d", node.Reps())
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\"];\n", me, label); err != nil {
			return 0, err
		}
		for _, c := range node.Children {
			cid, err := emit(c)
			if err != nil {
				return 0, err
			}
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", me, cid); err != nil {
				return 0, err
			}
		}
		return me, nil
	}
	if _, err := emit(n); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// ApproxBytes estimates the in-memory footprint of the physical tree (node
// structs plus child-slice headers). Used by the §VI-B memory-overhead
// report; the logical (uncompressed) footprint is ApproxBytes scaled by the
// logical/physical node ratio.
func (n *Node) ApproxBytes() int64 {
	var node Node
	per := int64(unsafe.Sizeof(node))
	var total int64
	n.Walk(func(m *Node) bool {
		total += per + int64(len(m.Children))*8 + int64(len(m.Name))
		return true
	})
	return total
}
