package tree

// Arena is a bump allocator for Nodes, for callers that build and discard
// many program trees in a row (repeated profiling runs, benchmarks,
// throwaway validation samples). Nodes are handed out from fixed-size
// chunks, so pointers returned by New stay valid as the arena grows, and
// Reset recycles all of them at once — including each node's Children
// backing array — so a steady-state profile-discard loop stops allocating
// node storage entirely.
//
// Lifetime contract: every Node obtained from an Arena (directly via New
// or transitively via Clone) is valid only until the next Reset. Do NOT
// hand arena-backed trees to anything that retains them beyond the
// caller's control — e.g. the experiments profile caches — unless the
// arena itself lives at least as long. The default profiling path
// (trace.Profile, prophet.ProfileProgram) never uses an arena; it is
// strictly opt-in.
//
// An Arena is not safe for concurrent use. A nil *Arena is valid and
// falls back to ordinary heap allocation, so call sites need no branches.
type Arena struct {
	chunks [][]Node
	ci     int // chunk currently being filled
	used   int // nodes handed out from chunks[ci]
	total  int // nodes handed out since the last Reset
}

// arenaChunkSize balances waste (last chunk partially used) against
// allocation frequency; 256 nodes ≈ 30 KiB per chunk.
const arenaChunkSize = 256

// NewArena returns an empty arena. Storage is allocated lazily on first
// use and retained across Reset.
func NewArena() *Arena { return &Arena{} }

// New returns a zeroed Node from the arena, valid until the next Reset.
// On a nil receiver it heap-allocates, so a nil *Arena behaves like "no
// arena" at every call site. A recycled node may carry a non-nil empty
// Children slice (retained capacity); callers must treat it exactly like
// a fresh zero Node and only append.
func (a *Arena) New() *Node {
	if a == nil {
		return &Node{}
	}
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Node, arenaChunkSize))
	}
	c := a.chunks[a.ci]
	n := &c[a.used]
	a.used++
	a.total++
	if a.used == len(c) {
		a.ci++
		a.used = 0
	}
	return n
}

// Clone deep-copies the subtree rooted at n with all copies drawn from
// the arena (Node.Clone's arena-backed equivalent). On a nil receiver it
// defers to n.Clone.
func (a *Arena) Clone(n *Node) *Node {
	if a == nil {
		return n.Clone()
	}
	cp := a.New()
	kids := cp.Children // recycled backing array, if any
	*cp = *n
	if n.Counters != nil {
		s := *n.Counters
		cp.Counters = &s
	}
	if n.Burden != nil {
		cp.Burden = make(map[int]float64, len(n.Burden))
		for k, v := range n.Burden {
			cp.Burden[k] = v
		}
	}
	kids = kids[:0]
	for _, c := range n.Children {
		kids = append(kids, a.Clone(c))
	}
	cp.Children = kids
	return cp
}

// Reset invalidates every node handed out so far and makes their storage
// available again. Chunks are kept, and each recycled node keeps its
// Children backing array (truncated to length zero), so a repeated
// build-discard cycle reaches a fixed point with no allocation. Safe on a
// nil receiver.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	for i := 0; i <= a.ci && i < len(a.chunks); i++ {
		c := a.chunks[i]
		limit := len(c)
		if i == a.ci {
			limit = a.used
		}
		for j := 0; j < limit; j++ {
			ch := c[j].Children
			if ch != nil {
				ch = ch[:0]
			}
			c[j] = Node{Children: ch}
		}
	}
	a.ci, a.used, a.total = 0, 0, 0
}

// Allocated reports the number of nodes handed out since the last Reset.
func (a *Arena) Allocated() int {
	if a == nil {
		return 0
	}
	return a.total
}
