package tree

import (
	"testing"

	"prophet/internal/clock"
)

// buildArbitraryNode decodes bytes into an arbitrary node graph — kinds,
// lengths, repeats, lock IDs and child nesting all come straight from
// the input, with no validity filtering (kinds may be out of range,
// lengths negative, containers may carry Len, leaves may get children).
// The decoder builds a finite DAG, never a cycle, so traversals
// terminate.
func buildArbitraryNode(data []byte, budget *int) *Node {
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return int(b)
	}
	var build func(depth int) *Node
	build = func(depth int) *Node {
		*budget--
		n := &Node{
			Kind:     Kind(next() % 9), // includes kinds beyond W
			Name:     "f",
			Len:      clock.Cycles(next()*73 - 4096), // may be negative
			LockID:   next()%5 - 1,
			NoWait:   next()%2 == 0,
			Pipeline: next()%4 == 0,
			Repeat:   next()%40 - 3, // may be zero or negative
		}
		if depth < 6 {
			kids := next() % 5
			for i := 0; i < kids && *budget > 0; i++ {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	return build(0)
}

// FuzzTreeValidate: arbitrary mutations must never panic Validate (or
// the read-only traversals) — invalid structure is reported as an error,
// mirroring the FuzzTracerAnnotations contract one layer down.
func FuzzTreeValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 2, 1, 0, 0, 1, 3})                  // Root-ish with children
	f.Add([]byte{3, 200, 4, 1, 9, 9, 9})                // leaf with children
	f.Add([]byte{8, 0, 0, 0, 255, 7, 6, 5, 4, 3, 2, 1}) // out-of-range kind
	f.Fuzz(func(t *testing.T, data []byte) {
		budget := 256
		n := buildArbitraryNode(data, &budget)
		// Validate on the node as-is (usually not a Root) and wrapped
		// under a proper Root, so both rejection paths are exercised.
		_ = n.Validate()
		root := &Node{Kind: Root, Children: []*Node{n}}
		_ = root.Validate()
		// Read-only traversals must tolerate arbitrary shapes too.
		_ = n.String()
		_ = n.TotalLen()
		n.NodeCount()
		_ = n.Tasks()
		n.Walk(func(*Node) bool { return true })
	})
}
