// Package tree implements the program tree produced by interval profiling
// (§IV-B of the paper, Fig. 4).
//
// A program tree records the dynamic execution trace of the parallel sections
// of an annotated serial program. Node kinds follow the paper exactly:
//
//	Root — holds the list of top-level parallel sections and top-level
//	       serial computations.
//	Sec  — a parallel section (a container whose Task children may run in
//	       parallel); carries an implicit barrier unless NoWait is set.
//	Task — a parallel task (e.g. one loop iteration); its children execute
//	       sequentially within the task.
//	U    — a computation performed without holding a lock.
//	L    — a computation performed while holding a lock.
//	W    — an I/O wait (extension; see the Kind constants).
//
// Each node that stands for a run of identical siblings carries Repeat > 1
// (the RLE form produced by package compress); every consumer in this repo
// understands Repeat, so compressed trees can be emulated without expansion.
package tree

import (
	"errors"
	"fmt"
	"strings"

	"prophet/internal/clock"
	"prophet/internal/counters"
)

// Kind identifies the role of a node in the program tree.
type Kind uint8

// Node kinds, in the paper's vocabulary.
const (
	Root Kind = iota
	Sec
	Task
	U
	L
	// W is an I/O wait: time during which the task blocks without
	// occupying a CPU. The paper lists I/O in annotated regions as a
	// limitation (§VIII); this reproduction models it as an extension.
	// The machine-backed emulators overlap W time with other threads'
	// computation under the real core limit; the FF, with no machine
	// model, simply charges W like computation on the worker's clock
	// (accurate without oversubscription, optimistic with it).
	W
)

// String returns the paper's one-letter/word name for the kind.
func (k Kind) String() string {
	switch k {
	case Root:
		return "Root"
	case Sec:
		return "Sec"
	case Task:
		return "Task"
	case U:
		return "U"
	case L:
		return "L"
	case W:
		return "W"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MemTraits carries the per-node memory behaviour observed while profiling on
// the simulated machine. It exists only so the ground-truth runner can
// replay the exact memory behaviour; the predictors never read it (they see
// only the per-top-level-section counter aggregates, as the paper's tool
// does).
type MemTraits struct {
	Instructions int64
	LLCMisses    int64
}

// Add accumulates o into m.
func (m *MemTraits) Add(o MemTraits) {
	m.Instructions += o.Instructions
	m.LLCMisses += o.LLCMisses
}

// Node is one node of a program tree.
type Node struct {
	Kind Kind
	// Name is the annotation name (sections and tasks).
	Name string
	// Len is the measured computation length in cycles for U and L nodes.
	// Container nodes (Root/Sec/Task) keep Len zero; use TotalLen.
	Len clock.Cycles
	// LockID identifies the mutex an L node holds.
	LockID int
	// NoWait suppresses the implicit barrier at the end of a Sec
	// (OpenMP's nowait).
	NoWait bool
	// Pipeline marks a Sec as pipeline-parallel (the paper's §VIII
	// extension, after Thies et al.): its Task children are loop
	// iterations whose U/L segments are pipeline stages; stage s of
	// iteration i depends on stage s-1 of iteration i and on stage s of
	// iteration i-1.
	Pipeline bool
	// Repeat is the run length: this node stands for Repeat consecutive
	// identical siblings. Zero is treated as one.
	Repeat int
	// Children are the node's ordered children.
	Children []*Node
	// Mem is the ground-truth memory behaviour of a U or L node.
	Mem MemTraits
	// Counters holds the per-section hardware-counter sample for
	// top-level Sec nodes (nil elsewhere).
	Counters *counters.Sample
	// Burden maps a thread count to the burden factor β_t computed by the
	// memory model for top-level Sec nodes (nil until assigned).
	Burden map[int]float64
}

// Reps returns the effective repeat count (at least 1).
func (n *Node) Reps() int {
	if n.Repeat < 1 {
		return 1
	}
	return n.Repeat
}

// BurdenFor returns the burden factor for t threads, defaulting to 1 when the
// memory model has not assigned one.
func (n *Node) BurdenFor(t int) float64 {
	if n == nil || n.Burden == nil {
		return 1
	}
	if b, ok := n.Burden[t]; ok && b >= 1 {
		return b
	}
	return 1
}

// TotalLen returns the serial length of the subtree in cycles: the sum of all
// U/L lengths below (and including) n, honouring Repeat counts.
func (n *Node) TotalLen() clock.Cycles {
	var sum clock.Cycles
	switch n.Kind {
	case U, L, W:
		sum = n.Len
	default:
		for _, c := range n.Children {
			sum += c.TotalLen()
		}
	}
	return sum * clock.Cycles(n.Reps())
}

// NodeCount returns (physical, logical) node counts: physical counts stored
// nodes; logical expands Repeat runs, i.e. the size the tree would have had
// without compression.
func (n *Node) NodeCount() (physical, logical int64) {
	physical = 1
	logical = 1
	for _, c := range n.Children {
		p, l := c.NodeCount()
		physical += p
		logical += l
	}
	logical *= int64(n.Reps())
	return physical, logical
}

// Tasks returns the logical number of Task children of a Sec node, expanding
// Repeat runs.
func (n *Node) Tasks() int {
	total := 0
	for _, c := range n.Children {
		if c.Kind == Task {
			total += c.Reps()
		}
	}
	return total
}

// Walk calls fn for every physical node in depth-first pre-order. If fn
// returns false the node's children are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// TopLevelSections returns the Sec children of a Root node in order.
func (n *Node) TopLevelSections() []*Node {
	var secs []*Node
	for _, c := range n.Children {
		if c.Kind == Sec {
			secs = append(secs, c)
		}
	}
	return secs
}

// SerialOutsideSections returns the total length of the Root's top-level U
// nodes (serial computation outside any parallel section). This is ΣLength(Uᵢ)
// in the paper's overall-speedup formula (§IV-E).
func (n *Node) SerialOutsideSections() clock.Cycles {
	var sum clock.Cycles
	for _, c := range n.Children {
		if c.Kind == U {
			sum += c.Len * clock.Cycles(c.Reps())
		}
	}
	return sum
}

// Clone returns a deep copy of the subtree.
func (n *Node) Clone() *Node {
	cp := *n
	if n.Counters != nil {
		s := *n.Counters
		cp.Counters = &s
	}
	if n.Burden != nil {
		cp.Burden = make(map[int]float64, len(n.Burden))
		for k, v := range n.Burden {
			cp.Burden[k] = v
		}
	}
	cp.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		cp.Children[i] = c.Clone()
	}
	return &cp
}

// ErrMalformed is the family sentinel for structural tree errors: every
// error Validate returns wraps it, so callers can errors.Is against one
// value without enumerating the specific invariant violated.
var ErrMalformed = errors.New("tree: malformed program tree")

// Errors reported by Validate; each wraps ErrMalformed.
var (
	ErrBadChild  = fmt.Errorf("%w: node kind not allowed under parent", ErrMalformed)
	ErrLeafChild = fmt.Errorf("%w: U/L nodes must be leaves", ErrMalformed)
	ErrNegLen    = fmt.Errorf("%w: negative node length", ErrMalformed)
)

// Validate checks the structural invariants of a program tree rooted at a
// Root node:
//
//   - Root children are Sec or U nodes.
//   - Sec children are Task nodes.
//   - Task children are U, L or Sec nodes.
//   - U and L nodes are leaves with non-negative lengths.
func (n *Node) Validate() error {
	if n.Kind != Root {
		return fmt.Errorf("%w: Validate called on %v node, want Root", ErrMalformed, n.Kind)
	}
	return n.validate(nil)
}

func (n *Node) validate(parent *Node) error {
	switch n.Kind {
	case U, L, W:
		if len(n.Children) != 0 {
			return fmt.Errorf("%w: %v %q has %d children", ErrLeafChild, n.Kind, n.Name, len(n.Children))
		}
		if n.Len < 0 {
			return fmt.Errorf("%w: %v %q len %d", ErrNegLen, n.Kind, n.Name, n.Len)
		}
	}
	if parent != nil && !allowed(parent.Kind, n.Kind) {
		return fmt.Errorf("%w: %v under %v (node %q)", ErrBadChild, n.Kind, parent.Kind, n.Name)
	}
	if n.Kind == Sec && n.Pipeline {
		// Pipeline stages are leaves: no nested sections inside a
		// pipeline iteration.
		for _, task := range n.Children {
			for _, seg := range task.Children {
				if seg.Kind == Sec {
					return fmt.Errorf("%w: Sec inside pipeline task %q", ErrBadChild, task.Name)
				}
			}
		}
	}
	for _, c := range n.Children {
		if err := c.validate(n); err != nil {
			return err
		}
	}
	return nil
}

func allowed(parent, child Kind) bool {
	switch parent {
	case Root:
		return child == Sec || child == U
	case Sec:
		return child == Task
	case Task:
		return child == U || child == L || child == Sec || child == W
	default:
		return false
	}
}

// Equal reports whether two subtrees are structurally identical, with U/L
// lengths compared within a relative tolerance tol (0 means exact). Repeat
// counts, kinds, lock IDs and NoWait flags must match exactly; names,
// counters and burden maps are ignored (they do not affect emulation).
func Equal(a, b *Node, tol float64) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Reps() != b.Reps() || a.LockID != b.LockID || a.NoWait != b.NoWait || a.Pipeline != b.Pipeline {
		return false
	}
	if (a.Kind == U || a.Kind == L || a.Kind == W) && !withinTol(a.Len, b.Len, tol) {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i], tol) {
			return false
		}
	}
	return true
}

func withinTol(a, b clock.Cycles, tol float64) bool {
	if a == b {
		return true
	}
	if tol <= 0 {
		return false
	}
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	m := float64(a)
	if float64(b) > m {
		m = float64(b)
	}
	return d <= tol*m
}

// String renders the subtree in a compact indented form (useful in tests and
// error messages; Fig. 4 of the paper rendered as text).
func (n *Node) String() string {
	var b strings.Builder
	n.dump(&b, 0)
	return b.String()
}

func (n *Node) dump(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	switch n.Kind {
	case U, L, W:
		fmt.Fprintf(b, "%v %d", n.Kind, n.Len)
		if n.Kind == L {
			fmt.Fprintf(b, " lock=%d", n.LockID)
		}
	default:
		fmt.Fprintf(b, "%v", n.Kind)
		if n.Name != "" {
			fmt.Fprintf(b, " %q", n.Name)
		}
		fmt.Fprintf(b, " total=%d", n.TotalLen())
	}
	if n.Reps() > 1 {
		fmt.Fprintf(b, " x%d", n.Reps())
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.dump(b, depth+1)
	}
}

// Convenience constructors used by tests, generators and documentation
// examples. They keep composite-literal noise out of call sites.

// NewRoot returns a Root node with the given children.
func NewRoot(children ...*Node) *Node {
	return &Node{Kind: Root, Children: children}
}

// NewSec returns a Sec node named name with the given Task children.
func NewSec(name string, children ...*Node) *Node {
	return &Node{Kind: Sec, Name: name, Children: children}
}

// NewTask returns a Task node named name with the given children.
func NewTask(name string, children ...*Node) *Node {
	return &Node{Kind: Task, Name: name, Children: children}
}

// NewU returns a U (unlocked computation) leaf of the given length.
func NewU(len clock.Cycles) *Node {
	return &Node{Kind: U, Len: len}
}

// NewL returns an L (locked computation) leaf of the given length holding
// lockID.
func NewL(lockID int, len clock.Cycles) *Node {
	return &Node{Kind: L, Len: len, LockID: lockID}
}

// NewW returns a W (I/O wait) leaf of the given length.
func NewW(len clock.Cycles) *Node {
	return &Node{Kind: W, Len: len}
}
