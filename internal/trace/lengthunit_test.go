package trace

import (
	"testing"

	"prophet/internal/ff"
	"prophet/internal/mem"
	"prophet/internal/omprt"
	"prophet/internal/realrun"
	"prophet/internal/sim"
	"prophet/internal/stats"
)

// mixedProgram has two task flavours of identical *duration* but opposite
// instruction mixes: compute-heavy (all ALU) and memory-heavy (mostly
// stalls). With ω0 = 40, 120k instruction-cycles == 40k instructions +
// 2000 misses in elapsed time.
func mixedProgram(ctx Context) {
	ctx.SecBegin("mix")
	for i := 0; i < 12; i++ {
		ctx.TaskBegin("t")
		if i%2 == 0 {
			ctx.Compute(120_000, 0) // compute-heavy
		} else {
			ctx.Compute(40_000, 2_000) // memory-heavy, same 120k cycles
		}
		ctx.TaskEnd()
	}
	ctx.SecEnd(false)
}

// TestInstructionUnitMispredictsMixes reproduces the §VI-A finding: with
// instruction-count lengths, segments with different instruction mixes get
// wrong relative durations, so the schedule emulation mispredicts — which
// is why the paper settled on time as the unit.
func TestInstructionUnitMispredictsMixes(t *testing.T) {
	mc := sim.Config{Cores: 4, Quantum: 10_000, ContextSwitch: -1}

	profileWith := func(unit LengthUnit) *SimProfiler {
		p := NewSimProfilerWithUnit(mem.DRAMConfig{}, unit)
		mixedProgram(p)
		return p
	}
	pc := profileWith(LengthCycles)
	rootC, err := pc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	pi := profileWith(LengthInstructions)
	rootI, err := pi.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Counters are identical regardless of the length unit.
	if pc.Counters() != pi.Counters() {
		t.Fatalf("counters depend on length unit: %+v vs %+v", pc.Counters(), pi.Counters())
	}
	// Cycle lengths are uniform (all tasks take 120k); instruction
	// lengths are 3x apart — the distorted view.
	secC := rootC.TopLevelSections()[0]
	if a, b := secC.Children[0].TotalLen(), secC.Children[1].TotalLen(); a != b {
		t.Fatalf("cycle-unit lengths differ: %d vs %d", a, b)
	}
	secI := rootI.TopLevelSections()[0]
	if a, b := secI.Children[0].TotalLen(), secI.Children[1].TotalLen(); a != 3*b {
		t.Fatalf("instruction-unit lengths = %d vs %d, want 3x apart", a, b)
	}

	// Ground truth: schedule(static) on 4 threads over the *real* (cycle)
	// tree — balanced, speedup ~4.
	real := realrun.Speedup(rootC, realrun.Config{
		Machine: mc, Threads: 4, Sched: omprt.SchedStatic, OmpOv: &omprt.Overheads{},
	})

	e := &ff.Emulator{Threads: 4, Sched: omprt.SchedStatic}
	cyclePred := e.Speedup(rootC)
	instrPred := e.Speedup(rootI)

	cycleErr := stats.RelErr(cyclePred, real)
	instrErr := stats.RelErr(instrPred, real)
	if cycleErr > 0.05 {
		t.Fatalf("cycle-unit prediction off by %.0f%% (pred %.2f, real %.2f)", 100*cycleErr, cyclePred, real)
	}
	// The paper's observation: the instruction unit causes "a lot of
	// prediction errors" on mixed code. With (static) blocks of 3
	// uniform-duration tasks, the instruction view sees 3x imbalance.
	if instrErr < 2*cycleErr+0.05 {
		t.Fatalf("instruction unit unexpectedly accurate: %.0f%% vs cycle %.0f%%", 100*instrErr, 100*cycleErr)
	}
}
