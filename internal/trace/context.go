package trace

import (
	"time"

	"prophet/internal/clock"
	"prophet/internal/counters"
	"prophet/internal/mem"
	"prophet/internal/tree"
)

// Context is the interface annotated serial programs are written against.
// It is the paper's Table II plus Compute, the cost-model hook that stands
// in for real computation when a program runs on the simulated machine
// (the substitution for profiling real binaries with Pin).
type Context interface {
	// SecBegin / SecEnd bracket a parallel section (PAR_SEC_*).
	SecBegin(name string)
	SecEnd(nowait bool)
	// TaskBegin / TaskEnd bracket a parallel task (PAR_TASK_*).
	TaskBegin(name string)
	TaskEnd()
	// LockBegin / LockEnd bracket computation under a mutex (LOCK_*).
	LockBegin(id int)
	LockEnd(id int)
	// PipeBegin / PipeEnd bracket a pipeline-parallel section (§VIII
	// extension); StageBreak separates the stages inside its tasks.
	PipeBegin(name string)
	PipeEnd()
	StageBreak()
	// IOWait marks time the task spends blocked on I/O without using a
	// CPU (§VIII extension); legal only inside a task.
	IOWait(cycles int64)
	// Compute performs work: instrCycles cycles of computation that
	// issue llcMisses last-level-cache misses.
	Compute(instrCycles, llcMisses int64)
}

// Program is an annotated serial program: it performs its computation
// through ctx, calling the annotation methods around potentially parallel
// regions.
type Program func(ctx Context)

// LengthUnit selects the unit in which interval lengths are recorded —
// the §VI-A design choice. The paper tried both: "If we use the unit of
// length as the number of executed instructions, the problem [of excluding
// profiling overhead] is easy to solve. However, we observed that
// different instruction mixes cause a lot of prediction errors. ...
// Instead, we use time as the unit." Both are implemented here so that
// finding can be reproduced (see TestInstructionUnitMispredictsMixes).
type LengthUnit uint8

const (
	// LengthCycles records elapsed cycles — the paper's choice.
	LengthCycles LengthUnit = iota
	// LengthInstructions records executed instructions, which
	// misrepresents segments whose instruction mixes differ (a
	// memory-stalled instruction takes far longer than an ALU one).
	LengthInstructions
)

// SimProfiler profiles a Program on a virtual clock with the given DRAM
// timing: Compute advances virtual time by instr + misses·ω₀ (a serial run
// never saturates the bus) and feeds the counter model. It implements
// Context and CounterSource.
type SimProfiler struct {
	*Tracer
	clk  *clock.Virtual
	dram mem.DRAMConfig
	unit LengthUnit

	instr  int64
	misses int64
	cycles clock.Cycles
}

// NewSimProfiler returns a profiler over a fresh virtual clock, recording
// lengths in cycles (the paper's unit).
func NewSimProfiler(dram mem.DRAMConfig) *SimProfiler {
	return NewSimProfilerWithUnit(dram, LengthCycles)
}

// NewSimProfilerWithUnit selects the interval-length unit (§VI-A).
func NewSimProfilerWithUnit(dram mem.DRAMConfig, unit LengthUnit) *SimProfiler {
	return NewSimProfilerArena(dram, unit, nil)
}

// NewSimProfilerArena is NewSimProfilerWithUnit with program-tree nodes
// drawn from a, for callers that profile repeatedly and discard each tree
// (benchmarks, validation sweeps that own their samples). The returned
// tree is valid only until a.Reset; see tree.Arena for the lifetime
// contract. A nil arena falls back to heap allocation.
func NewSimProfilerArena(dram mem.DRAMConfig, unit LengthUnit, a *tree.Arena) *SimProfiler {
	p := &SimProfiler{clk: &clock.Virtual{}, dram: *applyDRAMDefaults(&dram), unit: unit}
	p.Tracer = NewWithArena(p.clk, p, a)
	return p
}

func applyDRAMDefaults(d *mem.DRAMConfig) *mem.DRAMConfig {
	cfg := mem.NewDRAM(*d).Config()
	return &cfg
}

// Compute advances virtual time by the serial cost of the segment and
// records its memory traits. Under LengthInstructions only the
// instruction count advances the length clock; the true elapsed cycles
// are still tracked for the hardware counters.
func (p *SimProfiler) Compute(instrCycles, llcMisses int64) {
	if instrCycles < 0 {
		instrCycles = 0
	}
	if llcMisses < 0 {
		llcMisses = 0
	}
	d := clock.Cycles(float64(instrCycles) + float64(llcMisses)*p.dram.UnloadedLatency + 0.5)
	p.cycles += d
	if p.unit == LengthInstructions {
		p.clk.Advance(clock.Cycles(instrCycles))
	} else {
		p.clk.Advance(d)
	}
	p.instr += instrCycles
	p.misses += llcMisses
	p.AddMem(instrCycles, llcMisses)
}

// IOWait advances virtual time by the wait and records a W node.
func (p *SimProfiler) IOWait(cycles int64) {
	if cycles < 0 {
		cycles = 0
	}
	now := p.clk.Now()
	p.ioWait(now, cycles)
	p.clk.Advance(clock.Cycles(cycles))
	p.cycles += clock.Cycles(cycles)
}

// Counters implements CounterSource: cumulative instructions, cycles and
// LLC misses, as PAPI would report them (true cycles, independent of the
// length unit).
func (p *SimProfiler) Counters() counters.Sample {
	return counters.Sample{Instructions: p.instr, Cycles: p.cycles, LLCMisses: p.misses}
}

// Profile runs prog under a fresh SimProfiler and returns the program tree
// along with the profiler (whose Counters hold whole-run totals).
func Profile(prog Program, dram mem.DRAMConfig) (*tree.Node, *SimProfiler, error) {
	return ProfileArena(prog, dram, nil)
}

// ProfileArena is Profile with the tree allocated from a: repeated
// profile-discard cycles (a.Reset between them) stop allocating node
// storage once the arena is warm. The tree is only valid until a.Reset.
func ProfileArena(prog Program, dram mem.DRAMConfig, a *tree.Arena) (*tree.Node, *SimProfiler, error) {
	p := NewSimProfilerArena(dram, LengthCycles, a)
	prog(p)
	root, err := p.Finish()
	return root, p, err
}

// HostProfiler profiles a Program against the real monotonic clock:
// Compute spins for the requested number of nominal cycles (FakeDelay), so
// an annotated program can be profiled on the host machine, annotation
// overhead excluded, exactly as the paper's Pin-based tracer does. Memory
// traits are recorded for the tree but no cache traffic is generated.
type HostProfiler struct {
	*Tracer
	clk *clock.Host

	instr  int64
	misses int64
}

// NewHostProfiler returns a profiler over the host monotonic clock at hz
// nominal cycles per second (non-positive selects clock.DefaultHz).
func NewHostProfiler(hz float64) *HostProfiler {
	p := &HostProfiler{clk: clock.NewHost(hz)}
	p.Tracer = New(p.clk, p)
	return p
}

// Compute burns wall-clock time equivalent to instrCycles (+ misses at the
// default unloaded latency) on the host.
func (p *HostProfiler) Compute(instrCycles, llcMisses int64) {
	total := float64(instrCycles) + float64(llcMisses)*mem.DefaultDRAM().UnloadedLatency
	deadline := time.Duration(total / p.clk.Hz() * float64(time.Second))
	start := time.Now()
	for time.Since(start) < deadline {
		// spin: FakeDelay must not touch memory (§IV-E)
		spinSink++
	}
	p.instr += instrCycles
	p.misses += llcMisses
	p.AddMem(instrCycles, llcMisses)
}

// IOWait sleeps for the wait's wall-clock equivalent and records a W node
// (on the host the wait is real — time.Sleep releases the OS thread just
// as the annotated program's I/O would).
func (p *HostProfiler) IOWait(cycles int64) {
	if cycles < 0 {
		cycles = 0
	}
	now := p.clk.Now() - p.ExcludedOverhead()
	p.ioWait(now, cycles)
	time.Sleep(time.Duration(float64(cycles) / p.clk.Hz() * float64(time.Second)))
}

// Counters implements CounterSource for host profiling.
func (p *HostProfiler) Counters() counters.Sample {
	return counters.Sample{Instructions: p.instr, Cycles: p.clk.Now(), LLCMisses: p.misses}
}

// spinSink defeats dead-code elimination of the FakeDelay spin loop.
var spinSink int64
