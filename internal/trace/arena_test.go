package trace

import (
	"testing"

	"prophet/internal/mem"
	"prophet/internal/tree"
)

// TestProfileArenaEquivalent checks that an arena-backed profile run
// produces the same tree as the heap path, including after the arena has
// been reset and its nodes recycled.
func TestProfileArenaEquivalent(t *testing.T) {
	want, _, err := Profile(figure4Program, mem.DRAMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a := tree.NewArena()
	for round := 0; round < 3; round++ {
		got, _, err := ProfileArena(figure4Program, mem.DRAMConfig{}, a)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		assertSameTree(t, want, got)
		a.Reset()
	}
}

// TestProfileArenaSteadyState checks that repeated profile-discard cycles
// reach a fixed point: the warm arena hands out the same node count every
// round without growing.
func TestProfileArenaSteadyState(t *testing.T) {
	a := tree.NewArena()
	if _, _, err := ProfileArena(figure4Program, mem.DRAMConfig{}, a); err != nil {
		t.Fatal(err)
	}
	warm := a.Allocated()
	if warm == 0 {
		t.Fatal("arena unused by ProfileArena")
	}
	for round := 0; round < 5; round++ {
		a.Reset()
		if _, _, err := ProfileArena(figure4Program, mem.DRAMConfig{}, a); err != nil {
			t.Fatal(err)
		}
		if got := a.Allocated(); got != warm {
			t.Fatalf("round %d: arena handed out %d nodes, want %d", round, got, warm)
		}
	}
}

// assertSameTree compares trees structurally, treating nil and empty
// Children the same (recycled arena nodes keep empty slices).
func assertSameTree(t *testing.T, want, got *tree.Node) {
	t.Helper()
	if want.Kind != got.Kind || want.Name != got.Name || want.Len != got.Len ||
		want.LockID != got.LockID || want.NoWait != got.NoWait ||
		want.Pipeline != got.Pipeline || want.Repeat != got.Repeat ||
		want.Mem != got.Mem {
		t.Fatalf("node mismatch:\nwant %+v\ngot  %+v", *want, *got)
	}
	if len(want.Children) != len(got.Children) {
		t.Fatalf("child count mismatch under %v %q: want %d got %d",
			want.Kind, want.Name, len(want.Children), len(got.Children))
	}
	for i := range want.Children {
		assertSameTree(t, want.Children[i], got.Children[i])
	}
}

// BenchmarkProfileArena measures a profile-discard cycle through a warm
// arena; compare against BenchmarkProfileHeap for the node-storage win.
func BenchmarkProfileArena(b *testing.B) {
	a := tree.NewArena()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Reset()
		if _, _, err := ProfileArena(figure4Program, mem.DRAMConfig{}, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileHeap is the heap baseline for BenchmarkProfileArena.
func BenchmarkProfileHeap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Profile(figure4Program, mem.DRAMConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
