package trace

import (
	"errors"
	"math/rand"
	"testing"

	"prophet/internal/mem"
	"prophet/internal/tree"
)

// applyOp drives one annotation call from a fuzz byte.
func applyOp(p *SimProfiler, op byte, rng *rand.Rand) {
	switch op % 10 {
	case 0:
		p.SecBegin("s")
	case 1:
		p.SecEnd(rng.Intn(2) == 0)
	case 2:
		p.TaskBegin("t")
	case 3:
		p.TaskEnd()
	case 4:
		p.LockBegin(int(op) % 3)
	case 5:
		p.LockEnd(int(op) % 3)
	case 6:
		p.Compute(int64(rng.Intn(1_000)), int64(rng.Intn(10)))
	case 7:
		p.PipeBegin("p")
	case 8:
		p.StageBreak()
	case 9:
		p.IOWait(int64(rng.Intn(500)))
	}
}

// TestTracerNeverPanicsOnRandomAnnotations: arbitrary (mostly invalid)
// annotation sequences must produce an error from Finish, never a panic —
// the paper's "an error is reported" contract.
func TestTracerNeverPanicsOnRandomAnnotations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		ops := make([]byte, rng.Intn(40))
		for i := range ops {
			ops[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked on ops %v: %v", trial, ops, r)
				}
			}()
			p := NewSimProfiler(mem.DRAMConfig{})
			for _, op := range ops {
				applyOp(p, op, rng)
			}
			root, err := p.Finish()
			if err == nil {
				// A clean sequence must produce a valid tree.
				if verr := root.Validate(); verr != nil {
					t.Fatalf("trial %d: Finish ok but tree invalid: %v", trial, verr)
				}
			} else if !errors.Is(err, ErrAnnotationMismatch) && !errors.Is(err, tree.ErrMalformed) {
				t.Fatalf("trial %d: untyped error %T: %v", trial, err, err)
			}
		}()
	}
}

// FuzzTracerEvents is the native fuzz target with the same property:
// whatever annotation event stream arrives, the tracer either builds a
// tree that validates or fails with a typed error — errors.Is against
// ErrAnnotationMismatch or tree.ErrMalformed — and never panics.
// `go test -fuzz=FuzzTracerEvents ./internal/trace` explores further.
func FuzzTracerEvents(f *testing.F) {
	f.Add([]byte{0, 2, 6, 3, 1})       // valid: sec, task, compute, end, end
	f.Add([]byte{2})                   // orphan task
	f.Add([]byte{0, 2, 4, 5, 3, 1})    // with lock
	f.Add([]byte{7, 2, 6, 8, 6, 3, 1}) // pipeline with stage break
	f.Add([]byte{0, 0, 1, 1})          // nested sections (illegal at top)
	f.Add([]byte{0, 2, 4, 3, 1})       // lock left open across task end
	f.Fuzz(func(t *testing.T, ops []byte) {
		rng := rand.New(rand.NewSource(1))
		p := NewSimProfiler(mem.DRAMConfig{})
		for _, op := range ops {
			applyOp(p, op, rng)
		}
		root, err := p.Finish()
		if err == nil {
			if verr := root.Validate(); verr != nil {
				t.Fatalf("valid finish, invalid tree: %v", verr)
			}
		} else if !errors.Is(err, ErrAnnotationMismatch) && !errors.Is(err, tree.ErrMalformed) {
			t.Fatalf("untyped error %T: %v", err, err)
		}
	})
}
