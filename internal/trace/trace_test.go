package trace

import (
	"errors"
	"testing"

	"prophet/internal/clock"
	"prophet/internal/mem"
	"prophet/internal/tree"
)

// figure4Program is the paper's §IV-A annotated example (Fig. 4): a
// two-iteration parallel loop with a critical section, where the second
// iteration runs a nested four-iteration parallel loop.
func figure4Program(ctx Context) {
	ctx.SecBegin("loop1")
	// iteration 0: U10 L20 U20
	ctx.TaskBegin("t1")
	ctx.Compute(10, 0)
	ctx.LockBegin(1)
	ctx.Compute(20, 0)
	ctx.LockEnd(1)
	ctx.Compute(20, 0)
	ctx.TaskEnd()
	// iteration 1: U25 L25 Sec(50,50,50,40) U10
	ctx.TaskBegin("t1")
	ctx.Compute(25, 0)
	ctx.LockBegin(1)
	ctx.Compute(25, 0)
	ctx.LockEnd(1)
	ctx.SecBegin("loop2")
	for _, c := range []int64{50, 50, 50, 40} {
		ctx.TaskBegin("t2")
		ctx.Compute(c, 0)
		ctx.TaskEnd()
	}
	ctx.SecEnd(true)
	ctx.Compute(10, 0)
	ctx.TaskEnd()
	ctx.SecEnd(true)
}

func TestFigure4Tree(t *testing.T) {
	root, _, err := Profile(figure4Program, mem.DRAMConfig{})
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if err := root.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	secs := root.TopLevelSections()
	if len(secs) != 1 {
		t.Fatalf("sections = %d, want 1", len(secs))
	}
	sec := secs[0]
	if sec.Name != "loop1" || sec.TotalLen() != 300 {
		t.Fatalf("section %q total %d, want loop1/300\n%s", sec.Name, sec.TotalLen(), root)
	}
	if got := len(sec.Children); got != 2 {
		t.Fatalf("tasks = %d, want 2\n%s", got, root)
	}
	it0, it1 := sec.Children[0], sec.Children[1]
	if it0.TotalLen() != 50 {
		t.Errorf("iteration 0 total = %d, want 50", it0.TotalLen())
	}
	if it1.TotalLen() != 250 {
		t.Errorf("iteration 1 total = %d, want 250", it1.TotalLen())
	}
	// iteration 0 shape: U10 L20 U20
	want0 := []struct {
		k tree.Kind
		l clock.Cycles
	}{{tree.U, 10}, {tree.L, 20}, {tree.U, 20}}
	if len(it0.Children) != len(want0) {
		t.Fatalf("iteration 0 children = %d, want 3\n%s", len(it0.Children), root)
	}
	for i, w := range want0 {
		c := it0.Children[i]
		if c.Kind != w.k || c.Len != w.l {
			t.Errorf("it0 child %d = %v %d, want %v %d", i, c.Kind, c.Len, w.k, w.l)
		}
	}
	// iteration 1: U25 L25 Sec(190) U10
	if len(it1.Children) != 4 {
		t.Fatalf("iteration 1 children = %d, want 4\n%s", len(it1.Children), root)
	}
	inner := it1.Children[2]
	if inner.Kind != tree.Sec || inner.Name != "loop2" || inner.TotalLen() != 190 {
		t.Fatalf("inner section = %v %q total %d, want Sec loop2 190", inner.Kind, inner.Name, inner.TotalLen())
	}
	if !inner.NoWait {
		t.Error("inner section nowait flag lost")
	}
	if inner.Tasks() != 4 {
		t.Errorf("inner tasks = %d, want 4", inner.Tasks())
	}
	// L nodes carry the lock id.
	if it0.Children[1].LockID != 1 {
		t.Errorf("lock id = %d, want 1", it0.Children[1].LockID)
	}
}

func TestSerialGapsBecomeRootUNodes(t *testing.T) {
	prog := func(ctx Context) {
		ctx.Compute(100, 0) // leading serial
		ctx.SecBegin("s")
		ctx.TaskBegin("t")
		ctx.Compute(50, 0)
		ctx.TaskEnd()
		ctx.SecEnd(false)
		ctx.Compute(30, 0) // trailing serial
	}
	root, _, err := Profile(prog, mem.DRAMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := root.SerialOutsideSections(); got != 130 {
		t.Fatalf("serial outside sections = %d, want 130\n%s", got, root)
	}
	if got := root.TotalLen(); got != 180 {
		t.Fatalf("total = %d, want 180", got)
	}
}

func TestCountersPerTopLevelSection(t *testing.T) {
	prog := func(ctx Context) {
		ctx.Compute(1000, 5) // outside: must not be charged to the section
		ctx.SecBegin("s")
		ctx.TaskBegin("t")
		ctx.Compute(2000, 40)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	root, _, err := Profile(prog, mem.DRAMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sec := root.TopLevelSections()[0]
	if sec.Counters == nil {
		t.Fatal("no counters on top-level section")
	}
	if sec.Counters.Instructions != 2000 || sec.Counters.LLCMisses != 40 {
		t.Fatalf("counters = %+v, want N=2000 D=40", sec.Counters)
	}
	// Cycles = 2000 + 40*ω0(=40) = 3600.
	if sec.Counters.Cycles != 3600 {
		t.Fatalf("section cycles = %d, want 3600", sec.Counters.Cycles)
	}
}

func TestMemTraitsAttachedToLeaves(t *testing.T) {
	prog := func(ctx Context) {
		ctx.SecBegin("s")
		ctx.TaskBegin("t")
		ctx.Compute(500, 7)
		ctx.LockBegin(2)
		ctx.Compute(100, 3)
		ctx.LockEnd(2)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	root, _, err := Profile(prog, mem.DRAMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	task := root.TopLevelSections()[0].Children[0]
	u := task.Children[0]
	l := task.Children[1]
	if u.Mem != (tree.MemTraits{Instructions: 500, LLCMisses: 7}) {
		t.Errorf("U mem = %+v", u.Mem)
	}
	if l.Mem != (tree.MemTraits{Instructions: 100, LLCMisses: 3}) {
		t.Errorf("L mem = %+v", l.Mem)
	}
	// Lengths include the memory stall at ω0=40: U = 500+280, L = 100+120.
	if u.Len != 780 || l.Len != 220 {
		t.Errorf("lengths U=%d L=%d, want 780/220", u.Len, l.Len)
	}
}

func TestAnnotationErrors(t *testing.T) {
	cases := []struct {
		name string
		prog Program
	}{
		{"task outside section", func(c Context) { c.TaskBegin("t") }},
		{"secend without begin", func(c Context) { c.SecEnd(false) }},
		{"taskend without begin", func(c Context) { c.SecBegin("s"); c.TaskEnd() }},
		{"lock outside task", func(c Context) { c.LockBegin(1) }},
		{"lock id mismatch", func(c Context) {
			c.SecBegin("s")
			c.TaskBegin("t")
			c.LockBegin(1)
			c.LockEnd(2)
		}},
		{"lockend without begin", func(c Context) {
			c.SecBegin("s")
			c.TaskBegin("t")
			c.LockEnd(1)
		}},
		{"unclosed section", func(c Context) { c.SecBegin("s") }},
		{"sec inside sec", func(c Context) { c.SecBegin("a"); c.SecBegin("b") }},
	}
	for _, tc := range cases {
		_, _, err := Profile(tc.prog, mem.DRAMConfig{})
		if err == nil {
			t.Errorf("%s: no error reported", tc.name)
		} else if !errors.Is(err, ErrAnnotationMismatch) {
			t.Errorf("%s: error %v not an annotation mismatch", tc.name, err)
		}
	}
}

func TestFinishTwice(t *testing.T) {
	p := NewSimProfiler(mem.DRAMConfig{})
	if _, err := p.Finish(); err != nil {
		t.Fatalf("first Finish: %v", err)
	}
	if _, err := p.Finish(); err == nil {
		t.Fatal("second Finish should fail")
	}
}

func TestEmptyProgram(t *testing.T) {
	root, _, err := Profile(func(Context) {}, mem.DRAMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 0 {
		t.Fatalf("empty program produced %d nodes", len(root.Children))
	}
}

func TestRepeatedTopLevelSectionAccumulatesCounters(t *testing.T) {
	// The same section executed twice: the paper takes the average burden
	// over executions; the tracer accumulates counters per Sec node
	// instance. Each dynamic execution is its own Sec node.
	prog := func(ctx Context) {
		for i := 0; i < 2; i++ {
			ctx.SecBegin("s")
			ctx.TaskBegin("t")
			ctx.Compute(100, 2)
			ctx.TaskEnd()
			ctx.SecEnd(false)
		}
	}
	root, _, err := Profile(prog, mem.DRAMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	secs := root.TopLevelSections()
	if len(secs) != 2 {
		t.Fatalf("sections = %d, want 2", len(secs))
	}
	for i, s := range secs {
		if s.Counters == nil || s.Counters.Instructions != 100 {
			t.Errorf("section %d counters = %+v", i, s.Counters)
		}
	}
}

func TestHostProfilerExcludesOverhead(t *testing.T) {
	// Many annotations around tiny computations: with overhead exclusion
	// the tree's total must stay close to the pure compute time even
	// though the annotations themselves cost real time.
	p := NewHostProfiler(0)
	const iters = 200
	p.SecBegin("s")
	for i := 0; i < iters; i++ {
		p.TaskBegin("t")
		p.Compute(24_000, 0) // 10 µs at 2.4 GHz
		p.TaskEnd()
	}
	p.SecEnd(false)
	root, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got := float64(root.TotalLen())
	want := float64(iters * 24_000)
	// Wall-clock tests on a contended machine can overshoot: only
	// require the right order of magnitude; the precise claim — that
	// the profiler excluded its own overhead — is checked directly.
	if got < 0.9*want || got > 5*want {
		t.Fatalf("host-profiled total = %g, want ~%g", got, want)
	}
	if p.ExcludedOverhead() <= 0 {
		t.Fatal("no profiling overhead was excluded on the host clock")
	}
}

func TestHostProfilerCounters(t *testing.T) {
	p := NewHostProfiler(0)
	p.SecBegin("s")
	p.TaskBegin("t")
	p.Compute(1000, 10)
	p.TaskEnd()
	p.SecEnd(false)
	root, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	c := root.TopLevelSections()[0].Counters
	if c == nil || c.Instructions != 1000 || c.LLCMisses != 10 {
		t.Fatalf("host counters = %+v", c)
	}
}
