package trace

import "prophet/internal/counters"

// Event identifies one annotation call as seen by the tracer's fault
// hooks (internal/faults). Pipeline begins/ends report as their section
// counterparts: structurally they are the same event.
type Event uint8

// Annotation events.
const (
	EvSecBegin Event = iota
	EvSecEnd
	EvTaskBegin
	EvTaskEnd
	EvLockBegin
	EvLockEnd
	EvStageBreak
)

// String names the event after the paper's annotation macro.
func (e Event) String() string {
	switch e {
	case EvSecBegin:
		return "PAR_SEC_BEGIN"
	case EvSecEnd:
		return "PAR_SEC_END"
	case EvTaskBegin:
		return "PAR_TASK_BEGIN"
	case EvTaskEnd:
		return "PAR_TASK_END"
	case EvLockBegin:
		return "LOCK_BEGIN"
	case EvLockEnd:
		return "LOCK_END"
	case EvStageBreak:
		return "STAGE_BREAK"
	}
	return "Event(?)"
}

// EventAction is a fault hook's verdict on one annotation event.
type EventAction uint8

const (
	// Deliver passes the event through unchanged (the default).
	Deliver EventAction = iota
	// Drop swallows the event: the tracer never sees it, as if the
	// annotation macro had been compiled out of one call site.
	Drop
	// Duplicate applies the event twice, modeling a doubled macro.
	Duplicate
)

// Hooks are the tracer's no-op-by-default fault-injection points
// (internal/faults drives them; nothing else should). The tracer is
// serial, so hooks run on the profiling goroutine and need no locking,
// but they must be deterministic for reproducible runs.
type Hooks struct {
	// OnEvent, when set, is consulted before each annotation event and
	// may drop or duplicate it. Compute/IOWait are not events: they
	// advance time, not tree structure, and are never dropped.
	OnEvent func(ev Event) EventAction
	// CounterNoise, when set, perturbs every cumulative hardware-counter
	// reading the tracer takes around top-level sections (the paper's
	// PAPI reads, which on real hardware are noisy).
	CounterNoise func(s counters.Sample) counters.Sample
}

// WithHooks installs fault-injection hooks and returns t for chaining.
// The zero Hooks value restores pass-through behaviour.
func (t *Tracer) WithHooks(h Hooks) *Tracer {
	t.hooks = h
	return t
}

// dispatch routes one annotation event through the OnEvent hook: the
// event body runs zero, one or two times depending on the verdict.
func (t *Tracer) dispatch(ev Event, apply func()) {
	if t.hooks.OnEvent == nil {
		apply()
		return
	}
	switch t.hooks.OnEvent(ev) {
	case Drop:
	case Duplicate:
		apply()
		apply()
	default:
		apply()
	}
}

// readCounters reads the counter source through the noise hook.
func (t *Tracer) readCounters() counters.Sample {
	s := t.src.Counters()
	if t.hooks.CounterNoise != nil {
		s = t.hooks.CounterNoise(s)
	}
	return s
}
