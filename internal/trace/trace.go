// Package trace implements Parallel Prophet's annotation API (Table II of
// the paper) and the interval profiling that turns an annotated serial run
// into a program tree (§IV-B), excluding the profiler's own overhead from
// the measured lengths (§VI-A).
//
// The annotation calls mirror the paper's C macros:
//
//	PAR_SEC_BEGIN(name)  -> Tracer.SecBegin(name)
//	PAR_SEC_END(nowait)  -> Tracer.SecEnd(nowait)
//	PAR_TASK_BEGIN(name) -> Tracer.TaskBegin(name)
//	PAR_TASK_END()       -> Tracer.TaskEnd()
//	LOCK_BEGIN(id)       -> Tracer.LockBegin(id)
//	LOCK_END(id)         -> Tracer.LockEnd(id)
//
// Computation between annotation events becomes U nodes (or L nodes inside
// a lock pair); tasks, sections and the root serial regions are carved out
// by the stack-matching algorithm the paper describes: *_BEGIN pushes a
// cycle stamp, *_END matches the kind at the top of the stack and records
// the elapsed cycles, minus the profiling overhead accumulated in between.
package trace

import (
	"errors"
	"fmt"

	"prophet/internal/clock"
	"prophet/internal/counters"
	"prophet/internal/tree"
)

// CounterSource provides cumulative hardware-counter readings; deltas are
// taken around each top-level parallel section, as the paper's PAPI-based
// memory profiling does. A nil source disables counter collection.
type CounterSource interface {
	// Counters returns the current cumulative counter values.
	Counters() counters.Sample
}

// ErrAnnotationMismatch is wrapped by all annotation-structure errors.
var ErrAnnotationMismatch = errors.New("trace: annotation mismatch")

type frame struct {
	node         *tree.Node   // Sec or Task being built (nil for lock frames)
	kind         tree.Kind    // Sec, Task or L
	start        clock.Cycles // adjusted begin stamp
	lastEvent    clock.Cycles // adjusted stamp of the previous event in this frame
	lockID       int
	counterStart counters.Sample // top-level sections only
	topLevel     bool
}

// Tracer performs interval profiling. It is not safe for concurrent use;
// an annotated *serial* program drives it from one goroutine, exactly as
// the paper's tool profiles a serial run.
type Tracer struct {
	clk      clock.Clock
	src      CounterSource
	root     *tree.Node
	stack    []frame
	rootLast clock.Cycles // adjusted time of the last top-level event
	excluded clock.Cycles // accumulated profiling self-overhead
	err      error
	finished bool
	hooks    Hooks // fault-injection points; zero value = pass-through
	arena    *tree.Arena

	// pending memory traits to attach to the next U/L leaf (sim mode).
	pendingMem tree.MemTraits
}

// New returns a tracer reading cycle stamps from clk and (optionally)
// counters from src.
func New(clk clock.Clock, src CounterSource) *Tracer {
	return NewWithArena(clk, src, nil)
}

// NewWithArena is New with tree nodes drawn from a instead of the heap.
// The produced tree is valid only until a.Reset; see tree.Arena for the
// lifetime contract. A nil arena is equivalent to New.
func NewWithArena(clk clock.Clock, src CounterSource, a *tree.Arena) *Tracer {
	t := &Tracer{clk: clk, src: src, arena: a}
	t.root = t.newNode()
	t.root.Kind = tree.Root
	return t
}

// newNode allocates a tree node from the arena, or the heap when no arena
// is attached (a nil *tree.Arena handles the fallback).
func (t *Tracer) newNode() *tree.Node { return t.arena.New() }

// now returns the adjusted current time: raw clock minus the accumulated
// profiling overhead, so recorded lengths exclude the profiler itself.
func (t *Tracer) now() clock.Cycles { return t.clk.Now() - t.excluded }

// exclude attributes all cycles since rawEntry to profiling overhead.
func (t *Tracer) exclude(rawEntry clock.Cycles) {
	if d := t.clk.Now() - rawEntry; d > 0 {
		t.excluded += d
	}
}

func (t *Tracer) fail(format string, args ...interface{}) {
	if t.err == nil {
		t.err = fmt.Errorf("%w: %s", ErrAnnotationMismatch, fmt.Sprintf(format, args...))
	}
}

func (t *Tracer) top() *frame {
	if len(t.stack) == 0 {
		return nil
	}
	return &t.stack[len(t.stack)-1]
}

// AddMem accumulates memory traits for the computation segment currently in
// progress; they are attached to the next U or L leaf the tracer creates.
// The simulated profiling context calls this alongside advancing the
// virtual clock; host-mode profiling never does.
func (t *Tracer) AddMem(instructions, llcMisses int64) {
	t.pendingMem.Instructions += instructions
	t.pendingMem.LLCMisses += llcMisses
}

// closeGap emits the computation since the frame's last event as a U node
// (or an L node when closing a lock) into the given parent.
func (t *Tracer) closeGap(parent *tree.Node, f *frame, until clock.Cycles, kind tree.Kind, lockID int) {
	gap := until - f.lastEvent
	if gap < 0 {
		gap = 0
	}
	if gap == 0 && t.pendingMem == (tree.MemTraits{}) && kind != tree.L {
		return
	}
	n := t.newNode()
	n.Kind, n.Len, n.LockID, n.Mem = kind, gap, lockID, t.pendingMem
	t.pendingMem = tree.MemTraits{}
	parent.Children = append(parent.Children, n)
}

// SecBegin opens a parallel section (PAR_SEC_BEGIN). Sections are legal at
// the top level or inside a task (nested parallelism).
func (t *Tracer) SecBegin(name string) {
	t.dispatch(EvSecBegin, func() { t.secBegin(name, false) })
}

// PipeBegin opens a pipeline-parallel section (the §VIII extension after
// Thies et al.): its tasks are loop iterations and their U/L segments —
// delimited by StageBreak — are pipeline stages.
func (t *Tracer) PipeBegin(name string) {
	t.dispatch(EvSecBegin, func() { t.secBegin(name, true) })
}

func (t *Tracer) secBegin(name string, pipeline bool) {
	raw := t.clk.Now()
	defer t.exclude(raw)
	now := raw - t.excluded
	f := t.top()
	node := t.newNode()
	node.Kind, node.Name, node.Pipeline = tree.Sec, name, pipeline
	switch {
	case f == nil:
		// Top-level section: close the serial gap at root.
		rf := frame{lastEvent: t.rootLast}
		t.closeGap(t.root, &rf, now, tree.U, 0)
		t.root.Children = append(t.root.Children, node)
		nf := frame{node: node, kind: tree.Sec, start: now, lastEvent: now, topLevel: true}
		if t.src != nil {
			nf.counterStart = t.readCounters()
		}
		t.stack = append(t.stack, nf)
	case f.kind == tree.Task:
		t.closeGap(f.node, f, now, tree.U, 0)
		f.node.Children = append(f.node.Children, node)
		t.stack = append(t.stack, frame{node: node, kind: tree.Sec, start: now, lastEvent: now})
	default:
		t.fail("PAR_SEC_BEGIN(%q) inside %v", name, f.kind)
	}
}

// PipeEnd closes the current pipeline section (always with a barrier).
func (t *Tracer) PipeEnd() {
	t.SecEnd(false)
}

// StageBreak marks a pipeline-stage boundary inside a task: the
// computation since the previous boundary becomes one stage (one U node).
// It is also legal in ordinary tasks, where it merely splits the U node.
func (t *Tracer) StageBreak() {
	t.dispatch(EvStageBreak, t.stageBreak)
}

func (t *Tracer) stageBreak() {
	raw := t.clk.Now()
	defer t.exclude(raw)
	now := raw - t.excluded
	f := t.top()
	if f == nil || f.kind != tree.Task {
		t.fail("STAGE_BREAK outside a task")
		return
	}
	t.closeGap(f.node, f, now, tree.U, 0)
	f.lastEvent = now
}

// SecEnd closes the current parallel section (PAR_SEC_END). nowait records
// OpenMP's nowait: the section's implicit end barrier is suppressed.
func (t *Tracer) SecEnd(nowait bool) {
	t.dispatch(EvSecEnd, func() { t.secEnd(nowait) })
}

func (t *Tracer) secEnd(nowait bool) {
	raw := t.clk.Now()
	defer t.exclude(raw)
	now := raw - t.excluded
	f := t.top()
	if f == nil || f.kind != tree.Sec {
		t.fail("PAR_SEC_END with no open section")
		return
	}
	f.node.NoWait = nowait
	if f.topLevel {
		if t.src != nil {
			end := t.readCounters()
			s := end
			s.Instructions -= f.counterStart.Instructions
			s.Cycles -= f.counterStart.Cycles
			s.LLCMisses -= f.counterStart.LLCMisses
			if f.node.Counters == nil {
				f.node.Counters = &counters.Sample{}
			}
			f.node.Counters.Add(s)
		}
		t.rootLast = now
	}
	t.stack = t.stack[:len(t.stack)-1]
	if p := t.top(); p != nil {
		p.lastEvent = now
	}
	// Gaps between tasks inside a section are loop bookkeeping that
	// disappears under parallelization; they are deliberately dropped
	// (not modeled as computation), so nothing else to do here.
	t.pendingMem = tree.MemTraits{}
}

// TaskBegin opens a parallel task (PAR_TASK_BEGIN); legal only directly
// inside a section.
func (t *Tracer) TaskBegin(name string) {
	t.dispatch(EvTaskBegin, func() { t.taskBegin(name) })
}

func (t *Tracer) taskBegin(name string) {
	raw := t.clk.Now()
	defer t.exclude(raw)
	now := raw - t.excluded
	f := t.top()
	if f == nil || f.kind != tree.Sec {
		t.fail("PAR_TASK_BEGIN(%q) outside a section", name)
		return
	}
	node := t.newNode()
	node.Kind, node.Name = tree.Task, name
	f.node.Children = append(f.node.Children, node)
	t.stack = append(t.stack, frame{node: node, kind: tree.Task, start: now, lastEvent: now})
	t.pendingMem = tree.MemTraits{}
}

// TaskEnd closes the current task (PAR_TASK_END).
func (t *Tracer) TaskEnd() {
	t.dispatch(EvTaskEnd, t.taskEnd)
}

func (t *Tracer) taskEnd() {
	raw := t.clk.Now()
	defer t.exclude(raw)
	now := raw - t.excluded
	f := t.top()
	if f == nil || f.kind != tree.Task {
		t.fail("PAR_TASK_END with no open task")
		return
	}
	t.closeGap(f.node, f, now, tree.U, 0)
	t.stack = t.stack[:len(t.stack)-1]
	if p := t.top(); p != nil {
		p.lastEvent = now
	}
}

// LockBegin marks the acquisition of mutex id (LOCK_BEGIN); legal only
// inside a task, and lock regions may not nest (an L node is a leaf).
func (t *Tracer) LockBegin(id int) {
	t.dispatch(EvLockBegin, func() { t.lockBegin(id) })
}

func (t *Tracer) lockBegin(id int) {
	raw := t.clk.Now()
	defer t.exclude(raw)
	now := raw - t.excluded
	f := t.top()
	if f == nil || f.kind != tree.Task {
		t.fail("LOCK_BEGIN(%d) outside a task", id)
		return
	}
	t.closeGap(f.node, f, now, tree.U, 0)
	t.stack = append(t.stack, frame{node: f.node, kind: tree.L, start: now, lastEvent: now, lockID: id})
}

// LockEnd marks the release of mutex id (LOCK_END); the id must match the
// open LockBegin.
func (t *Tracer) LockEnd(id int) {
	t.dispatch(EvLockEnd, func() { t.lockEnd(id) })
}

func (t *Tracer) lockEnd(id int) {
	raw := t.clk.Now()
	defer t.exclude(raw)
	now := raw - t.excluded
	f := t.top()
	if f == nil || f.kind != tree.L {
		t.fail("LOCK_END(%d) with no open lock", id)
		return
	}
	if f.lockID != id {
		t.fail("LOCK_END(%d) does not match open LOCK_BEGIN(%d)", id, f.lockID)
		return
	}
	t.closeGap(f.node, f, now, tree.L, id)
	t.stack = t.stack[:len(t.stack)-1]
	if p := t.top(); p != nil {
		p.lastEvent = now
	}
}

// IOWait records an I/O wait of the given length inside the current task
// (the §VIII extension): the preceding computation is closed as a U node
// and a W node is appended. Machine-backed emulators let other threads run
// during W time; the FF treats it conservatively as computation.
func (t *Tracer) ioWait(now clock.Cycles, cycles int64) {
	f := t.top()
	if f == nil || f.kind != tree.Task {
		t.fail("IO_WAIT outside a task")
		return
	}
	t.closeGap(f.node, f, now, tree.U, 0)
	w := t.newNode()
	w.Kind, w.Len = tree.W, clock.Cycles(cycles)
	f.node.Children = append(f.node.Children, w)
	f.lastEvent = now + clock.Cycles(cycles)
}

// Err returns the first annotation error encountered, if any.
func (t *Tracer) Err() error { return t.err }

// ExcludedOverhead reports the total profiling self-overhead that was
// removed from the recorded lengths (§VI-A); it is zero under the virtual
// clock.
func (t *Tracer) ExcludedOverhead() clock.Cycles { return t.excluded }

// Finish closes profiling and returns the program tree. The trailing
// serial computation becomes the final top-level U node. Finish fails if
// any annotation pair is still open or was mismatched.
func (t *Tracer) Finish() (*tree.Node, error) {
	if t.finished {
		return nil, errors.New("trace: Finish called twice")
	}
	t.finished = true
	if t.err != nil {
		return nil, t.err
	}
	if len(t.stack) != 0 {
		f := t.top()
		return nil, fmt.Errorf("%w: %v still open at Finish", ErrAnnotationMismatch, f.kind)
	}
	now := t.now()
	rf := frame{lastEvent: t.rootLast}
	t.closeGap(t.root, &rf, now, tree.U, 0)
	if err := t.root.Validate(); err != nil {
		return nil, err
	}
	return t.root, nil
}
