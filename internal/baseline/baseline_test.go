package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"prophet/internal/clock"
	"prophet/internal/omprt"
	"prophet/internal/tree"
)

func TestAmdahlKnownValues(t *testing.T) {
	if got := Amdahl(1, 8); math.Abs(got-8) > 1e-12 {
		t.Errorf("fully parallel on 8 = %g, want 8", got)
	}
	if got := Amdahl(0, 8); got != 1 {
		t.Errorf("fully serial = %g, want 1", got)
	}
	// Classic: f=0.95, p=inf-ish -> bounded by 20.
	if got := Amdahl(0.95, 1_000_000); math.Abs(got-20) > 0.01 {
		t.Errorf("f=0.95 bound = %g, want ~20", got)
	}
	// Clamps.
	if got := Amdahl(1.5, 4); math.Abs(got-4) > 1e-12 {
		t.Errorf("clamped f: %g", got)
	}
	if got := Amdahl(0.5, 0); got != 1 {
		t.Errorf("p=0: %g", got)
	}
}

func TestGustafson(t *testing.T) {
	if got := Gustafson(1, 12); got != 12 {
		t.Errorf("f=1: %g", got)
	}
	if got := Gustafson(0.5, 10); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("f=0.5 p=10: %g, want 5.5", got)
	}
}

func TestKarpFlatt(t *testing.T) {
	// Perfect speedup => serial fraction 0.
	if got := KarpFlatt(8, 8); math.Abs(got) > 1e-12 {
		t.Errorf("perfect: %g, want 0", got)
	}
	// No speedup => serial fraction 1.
	if got := KarpFlatt(1, 8); math.Abs(got-1) > 1e-12 {
		t.Errorf("none: %g, want 1", got)
	}
	if got := KarpFlatt(2, 1); got != 1 {
		t.Errorf("p=1 degenerate: %g", got)
	}
}

// Property: Amdahl <= p always; Karp-Flatt inverts Amdahl.
func TestAmdahlKarpFlattInverse(t *testing.T) {
	f := func(fr uint8, p8 uint8) bool {
		fv := float64(fr%101) / 100
		p := int(p8%31) + 2
		s := Amdahl(fv, p)
		if s > float64(p)+1e-9 {
			return false
		}
		e := KarpFlatt(s, p)
		return math.Abs(e-(1-fv)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParallelFraction(t *testing.T) {
	root := tree.NewRoot(
		tree.NewU(300),
		tree.NewSec("s", tree.NewTask("t", tree.NewU(700))),
	)
	if got := ParallelFraction(root); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("fraction = %g, want 0.7", got)
	}
	if got := ParallelFraction(tree.NewRoot()); got != 0 {
		t.Fatalf("empty fraction = %g", got)
	}
	if got := AmdahlFromTree(root, 1000000); math.Abs(got-1/0.3) > 0.01 {
		t.Fatalf("Amdahl bound = %g, want ~3.33", got)
	}
}

func TestCriticalPath(t *testing.T) {
	// Section with tasks 100 and 300: T1=400, Tinf=300.
	root := tree.NewRoot(tree.NewSec("s",
		tree.NewTask("a", tree.NewU(100)),
		tree.NewTask("b", tree.NewU(300)),
	))
	t1, tinf := CriticalPath(root)
	if t1 != 400 || tinf != 300 {
		t.Fatalf("critical path = (%d, %d), want (400, 300)", t1, tinf)
	}
}

func TestCriticalPathNested(t *testing.T) {
	// Task = U100 then nested section of two 200-tasks: span = 100+200.
	inner := tree.NewSec("in",
		tree.NewTask("x", tree.NewU(200)),
		tree.NewTask("y", tree.NewU(200)),
	)
	root := tree.NewRoot(tree.NewSec("out",
		tree.NewTask("t", tree.NewU(100), inner),
	))
	t1, tinf := CriticalPath(root)
	if t1 != 500 {
		t.Fatalf("t1 = %d, want 500", t1)
	}
	if tinf != 300 {
		t.Fatalf("tinf = %d, want 300", tinf)
	}
}

func TestKismetBoundIsUpperBound(t *testing.T) {
	root := tree.NewRoot(tree.NewSec("s",
		tree.NewTask("a", tree.NewU(100)),
		tree.NewTask("b", tree.NewU(300)),
	))
	// p=2: bound = 400/max(300, 200) = 1.33.
	if got := KismetBound(root, 2); math.Abs(got-400.0/300) > 1e-12 {
		t.Fatalf("bound = %g, want %g", got, 400.0/300)
	}
	// p huge: bound -> T1/Tinf.
	if got := KismetBound(root, 1024); math.Abs(got-400.0/300) > 1e-12 {
		t.Fatalf("asymptotic bound = %g", got)
	}
	// Kismet can only bound from above: it ignores locks' serialization,
	// so a fully lock-bound loop still gets a bound of ~p.
	locked := tree.NewRoot(tree.NewSec("s",
		tree.NewTask("a", tree.NewL(1, 100)),
		tree.NewTask("b", tree.NewL(1, 100)),
	))
	if got := KismetBound(locked, 2); got < 1.99 {
		t.Fatalf("lock-blind bound = %g, want ~2 (Table I: upper bound only)", got)
	}
}

func TestSuitabilityIgnoresRequestedSchedule(t *testing.T) {
	// Suitability has one scheduling model; the paper found it close to
	// (dynamic,1). Its estimate must match the FF's dynamic,1 shape
	// rather than static's on an imbalanced loop.
	tasks := make([]*tree.Node, 16)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(clock.Cycles((i+1)*10_000)))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	s := &Suitability{Threads: 4}
	got := s.Speedup(root)
	if got < 3.0 || got > 4.0 {
		t.Fatalf("suitability on imbalanced loop = %g, want dynamic-like ~3.5+", got)
	}
	if s.PredictTime(root) <= 0 {
		t.Fatal("PredictTime not positive")
	}
}

func TestSuitabilityOverheadsCoarser(t *testing.T) {
	so := SuitabilityOverheads()
	// Must be strictly coarser than the calibrated runtime constants.
	base := omprt.DefaultOverheads()
	if so.ForkPerThread <= base.ForkPerThread || so.JoinBarrier <= base.JoinBarrier {
		t.Fatalf("suitability overheads not coarser: %+v", so)
	}
}

// TestSuitabilityPowerOfTwoInterpolation: the paper's Fig. 12 caption —
// Suitability only reports 2^N CPU counts; 6/10/12 are interpolated.
func TestSuitabilityPowerOfTwoInterpolation(t *testing.T) {
	tasks := make([]*tree.Node, 64)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(clock.Cycles(50_000)))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	s4 := (&Suitability{Threads: 4}).Speedup(root)
	s6 := (&Suitability{Threads: 6}).Speedup(root)
	s8 := (&Suitability{Threads: 8}).Speedup(root)
	// 6 is exactly the midpoint of the 4 and 8 estimates.
	if math.Abs(s6-(s4+s8)/2) > 1e-9 {
		t.Fatalf("interp(6) = %g, want midpoint of %g and %g", s6, s4, s8)
	}
	// 12 interpolates between 8 and 16.
	s12 := (&Suitability{Threads: 12}).Speedup(root)
	s16 := (&Suitability{Threads: 16}).Speedup(root)
	if math.Abs(s12-(s8+s16)/2) > 1e-9 {
		t.Fatalf("interp(12) = %g, want midpoint of %g and %g", s12, s8, s16)
	}
	// Powers of two are native (no interpolation artifacts).
	if s8 <= s4 {
		t.Fatalf("suitability not scaling: s4=%g s8=%g", s4, s8)
	}
	// PredictTime is consistent with Speedup.
	pt := (&Suitability{Threads: 6}).PredictTime(root)
	if math.Abs(float64(root.TotalLen())/float64(pt)-s6) > 0.01 {
		t.Fatalf("PredictTime inconsistent with Speedup")
	}
}
