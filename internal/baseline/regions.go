package baseline

import (
	"sort"

	"prophet/internal/clock"
	"prophet/internal/tree"
)

// This file implements a Kremlin-style region profile (Garcia et al.,
// "Kremlin: rethinking and rebooting gprof for the multicore age" — the
// paper's reference [11] and the analysis Kismet builds on): for every
// parallel section in the program tree, its work, its span (critical
// path) and its self-parallelism W/S, ranked by total work. This is the
// "which region should I parallelize first" view that complements
// Parallel Prophet's whole-program speedup predictions.

// Region is one parallel section's critical-path profile.
type Region struct {
	// Name is the section's annotation name.
	Name string
	// Nested reports whether the section is nested inside a task.
	Nested bool
	// Executions is the number of dynamic executions (Repeat-aware).
	Executions int
	// Work is the section's total computation over all executions.
	Work clock.Cycles
	// Span is the critical path of one execution.
	Span clock.Cycles
	// SelfParallelism is Work/(Executions·Span) — the parallelism
	// available inside one execution of the region.
	SelfParallelism float64
	// Coverage is Work as a fraction of the whole program.
	Coverage float64
}

// Regions profiles every parallel section of the tree, ranked by total
// work (descending). Sections with the same name are aggregated, as
// Kremlin aggregates dynamic regions by static site; for self-recursive
// regions (a section nested inside another instance of itself, e.g. a
// quicksort's halves) only the outermost instance contributes work, so
// inclusive work is never double-counted and coverage stays <= 100%.
func Regions(root *tree.Node) []Region {
	total := root.TotalLen()
	agg := map[string]*Region{}
	order := []string{}
	active := map[string]bool{}
	var visit func(n *tree.Node, nested bool, mult int)
	visit = func(n *tree.Node, nested bool, mult int) {
		for _, c := range n.Children {
			switch c.Kind {
			case tree.Sec:
				if !active[c.Name] {
					w, s := CriticalPath(c)
					// CriticalPath scales both by the node's
					// Repeat; the span of one execution is what
					// Kremlin's self-parallelism uses.
					s /= clock.Cycles(c.Reps())
					w *= clock.Cycles(mult)
					r, ok := agg[c.Name]
					if !ok {
						r = &Region{Name: c.Name, Nested: nested, Span: s}
						agg[c.Name] = r
						order = append(order, c.Name)
					}
					r.Executions += c.Reps() * mult
					r.Work += w
					if s > r.Span {
						r.Span = s
					}
				}
				// Recurse into tasks: differently named inner
				// sections still count; same-name recursive
				// instances are suppressed via the active set.
				wasActive := active[c.Name]
				active[c.Name] = true
				for _, task := range c.Children {
					visit(task, true, mult*c.Reps()*task.Reps())
				}
				active[c.Name] = wasActive
			case tree.Task:
				visit(c, nested, mult*c.Reps())
			}
		}
	}
	visit(root, false, 1)

	out := make([]Region, 0, len(order))
	for _, name := range order {
		r := agg[name]
		if r.Executions > 0 && r.Span > 0 {
			r.SelfParallelism = float64(r.Work) / float64(int64(r.Span)*int64(r.Executions))
		}
		if total > 0 {
			r.Coverage = float64(r.Work) / float64(total)
		}
		out = append(out, *r)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Work > out[j].Work })
	return out
}
