package baseline

import (
	"math"
	"testing"

	"prophet/internal/tree"
)

func TestRegionsSimpleSection(t *testing.T) {
	root := tree.NewRoot(
		tree.NewU(100),
		tree.NewSec("hot",
			tree.NewTask("a", tree.NewU(300)),
			tree.NewTask("b", tree.NewU(300)),
			tree.NewTask("c", tree.NewU(300)),
		),
	)
	regs := Regions(root)
	if len(regs) != 1 {
		t.Fatalf("regions = %d, want 1", len(regs))
	}
	r := regs[0]
	if r.Name != "hot" || r.Work != 900 || r.Span != 300 {
		t.Fatalf("region = %+v", r)
	}
	if math.Abs(r.SelfParallelism-3) > 1e-9 {
		t.Fatalf("self-parallelism = %g, want 3", r.SelfParallelism)
	}
	if math.Abs(r.Coverage-0.9) > 1e-9 {
		t.Fatalf("coverage = %g, want 0.9", r.Coverage)
	}
}

func TestRegionsRankedByWork(t *testing.T) {
	root := tree.NewRoot(
		tree.NewSec("small", tree.NewTask("t", tree.NewU(100))),
		tree.NewSec("big",
			tree.NewTask("t", tree.NewU(500)),
			tree.NewTask("t", tree.NewU(500)),
		),
	)
	regs := Regions(root)
	if len(regs) != 2 || regs[0].Name != "big" || regs[1].Name != "small" {
		t.Fatalf("ranking wrong: %+v", regs)
	}
}

func TestRegionsAggregateByName(t *testing.T) {
	// The same static section executed twice dynamically (the LU shape).
	mk := func() *tree.Node {
		return tree.NewSec("elim",
			tree.NewTask("r", tree.NewU(200)),
			tree.NewTask("r", tree.NewU(200)),
		)
	}
	root := tree.NewRoot(mk(), mk())
	regs := Regions(root)
	if len(regs) != 1 {
		t.Fatalf("regions = %d, want 1 aggregated", len(regs))
	}
	if regs[0].Executions != 2 || regs[0].Work != 800 {
		t.Fatalf("aggregate = %+v", regs[0])
	}
	// Self-parallelism per execution: 800 / (2 * 200) = 2.
	if math.Abs(regs[0].SelfParallelism-2) > 1e-9 {
		t.Fatalf("self-parallelism = %g", regs[0].SelfParallelism)
	}
}

func TestRegionsNestedFlagAndRecursion(t *testing.T) {
	inner := tree.NewSec("inner",
		tree.NewTask("i", tree.NewU(50)),
		tree.NewTask("i", tree.NewU(50)),
	)
	root := tree.NewRoot(tree.NewSec("outer",
		tree.NewTask("t", inner, tree.NewU(10)),
	))
	regs := Regions(root)
	if len(regs) != 2 {
		t.Fatalf("regions = %d, want 2", len(regs))
	}
	byName := map[string]Region{}
	for _, r := range regs {
		byName[r.Name] = r
	}
	if byName["outer"].Nested || !byName["inner"].Nested {
		t.Fatalf("nested flags wrong: %+v", regs)
	}
	if byName["inner"].Work != 100 {
		t.Fatalf("inner work = %d", byName["inner"].Work)
	}
}

func TestRegionsRepeatCompressed(t *testing.T) {
	task := tree.NewTask("t", tree.NewU(100))
	task.Repeat = 10
	sec := tree.NewSec("s", task)
	sec.Repeat = 3 // three dynamic executions, compressed
	root := tree.NewRoot(sec)
	regs := Regions(root)
	if len(regs) != 1 {
		t.Fatalf("regions = %d", len(regs))
	}
	r := regs[0]
	if r.Executions != 3 {
		t.Fatalf("executions = %d, want 3", r.Executions)
	}
	if r.Work != 3_000 {
		t.Fatalf("work = %d, want 3000", r.Work)
	}
	// 1000 work per execution over a 100 span => 10.
	if math.Abs(r.SelfParallelism-10) > 1e-9 {
		t.Fatalf("self-parallelism = %g, want 10", r.SelfParallelism)
	}
}

func TestRegionsEmpty(t *testing.T) {
	if regs := Regions(tree.NewRoot(tree.NewU(5))); len(regs) != 0 {
		t.Fatalf("regions on section-less tree: %+v", regs)
	}
}

func TestRegionsRecursiveNoDoubleCount(t *testing.T) {
	// Quicksort-shaped self-recursion: "halves" nested inside itself.
	var build func(depth int) *tree.Node
	build = func(depth int) *tree.Node {
		if depth == 0 {
			return tree.NewTask("leaf", tree.NewU(100))
		}
		return tree.NewTask("rec",
			tree.NewSec("halves", build(depth-1), build(depth-1)),
		)
	}
	root := tree.NewRoot(tree.NewSec("top", build(4)))
	regs := Regions(root)
	total := float64(root.TotalLen())
	for _, r := range regs {
		if r.Coverage > 1.0+1e-9 {
			t.Fatalf("region %q coverage %.2f > 100%%", r.Name, r.Coverage)
		}
		if float64(r.Work) > total {
			t.Fatalf("region %q work %d exceeds program %v", r.Name, r.Work, total)
		}
	}
	byName := map[string]Region{}
	for _, r := range regs {
		byName[r.Name] = r
	}
	// The outermost "halves" instance covers all the leaf work.
	if byName["halves"].Work != 1_600 {
		t.Fatalf("halves work = %d, want 1600", byName["halves"].Work)
	}
	if byName["halves"].Executions != 1 {
		t.Fatalf("halves executions = %d, want 1 (outermost only)", byName["halves"].Executions)
	}
}
