// Package baseline implements the comparison predictors of the paper's
// Table I and §II:
//
//   - Amdahl's law and Gustafson's law, the analytical bounds;
//   - the Karp–Flatt metric (experimentally determined serial fraction);
//   - a Kismet-style upper bound: hierarchical critical-path analysis of
//     the program tree, which (like Kismet) can only bound the speedup
//     from above and cannot predict saturation;
//   - a Suitability-style emulator modeling Intel Parallel Advisor's
//     Suitability analysis as the paper characterizes it (§II, §IV-D,
//     Fig. 11(f), Fig. 12 'Suit'): an FF-like emulator whose scheduling is
//     "close to OpenMP's (dynamic,1)", that cannot differentiate the
//     requested schedule, carries coarser overhead constants (the paper
//     observes it overestimates parallel overhead for frequent inner
//     loops), has the same non-preemptive nested limitation as the FF, and
//     has no memory model.
package baseline

import (
	"prophet/internal/clock"
	"prophet/internal/ff"
	"prophet/internal/omprt"
	"prophet/internal/tree"
)

// Amdahl returns Amdahl's-law speedup for a program whose parallelizable
// fraction is f, on p processors: 1 / ((1-f) + f/p).
func Amdahl(f float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return 1 / ((1 - f) + f/float64(p))
}

// Gustafson returns Gustafson's-law scaled speedup: (1-f) + f·p.
func Gustafson(f float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return (1 - f) + f*float64(p)
}

// KarpFlatt returns the experimentally determined serial fraction e from a
// measured speedup s on p processors: e = (1/s − 1/p) / (1 − 1/p).
func KarpFlatt(s float64, p int) float64 {
	if p <= 1 || s <= 0 {
		return 1
	}
	return (1/s - 1/float64(p)) / (1 - 1/float64(p))
}

// ParallelFraction returns the fraction of the program tree's serial time
// that lies inside parallel sections — the f to feed Amdahl's law.
func ParallelFraction(root *tree.Node) float64 {
	total := root.TotalLen()
	if total == 0 {
		return 0
	}
	var par clock.Cycles
	for _, sec := range root.TopLevelSections() {
		par += sec.TotalLen()
	}
	return float64(par) / float64(total)
}

// AmdahlFromTree applies Amdahl's law to a profiled tree.
func AmdahlFromTree(root *tree.Node, p int) float64 {
	return Amdahl(ParallelFraction(root), p)
}

// CriticalPath returns (T1, T∞) of the tree: total work and the length of
// the longest chain that must execute sequentially, assuming every task of
// every section can run in parallel (locks are kept on the chain as
// ordinary computation, which preserves the upper-bound property).
//
// Repeat counts are interpreted by the parent's semantics: a repeated Task
// under a Sec stands for parallel siblings (span = one instance), while
// repeated nodes inside a Task or at the Root are sequential (span
// multiplies).
func CriticalPath(n *tree.Node) (t1, tinf clock.Cycles) {
	w1, s1 := pathOne(n)
	r := clock.Cycles(n.Reps())
	return w1 * r, s1 * r
}

// pathOne returns (work, span) of a single instance of n, ignoring
// n.Repeat (the caller applies it per its own semantics).
func pathOne(n *tree.Node) (w, s clock.Cycles) {
	switch n.Kind {
	case tree.U, tree.L, tree.W:
		return n.Len, n.Len
	case tree.Sec:
		// Children are parallel tasks: work adds (times each task's
		// repeat run), span is the longest single task instance.
		for _, c := range n.Children {
			cw, cs := pathOne(c)
			w += cw * clock.Cycles(c.Reps())
			if cs > s {
				s = cs
			}
		}
		return w, s
	default: // Root, Task: children are sequential, repeats included.
		for _, c := range n.Children {
			cw, cs := pathOne(c)
			w += cw * clock.Cycles(c.Reps())
			s += cs * clock.Cycles(c.Reps())
		}
		return w, s
	}
}

// KismetBound returns the Kismet-style speedup upper bound on p cores:
// T1 / max(T∞, T1/p). Like Kismet it knows nothing about schedules,
// runtime overhead, or memory, so it only bounds from above (Table I).
func KismetBound(root *tree.Node, p int) float64 {
	if p < 1 {
		p = 1
	}
	t1, tinf := CriticalPath(root)
	if t1 == 0 {
		return 1
	}
	bound := float64(t1) / float64(p)
	if float64(tinf) > bound {
		bound = float64(tinf)
	}
	return float64(t1) / bound
}

// SuitabilityOverheads returns the coarse overhead constants of the
// Suitability model: region entry is expensive (the paper notes it
// overestimates the cost of frequently invoked inner parallel loops, which
// is why its LU prediction is low in Fig. 12(b)).
func SuitabilityOverheads() omprt.Overheads {
	ov := omprt.DefaultOverheads()
	ov.ForkPerThread *= 4
	ov.JoinBarrier *= 4
	ov.Dispatch *= 2
	return ov
}

// Suitability predicts speedup the way the paper models Intel Parallel
// Advisor's Suitability analysis.
type Suitability struct {
	// Threads is the CPU count to predict for. The out-of-the-box tool
	// only reports speedups for 2^N CPU numbers; as the paper's Fig. 12
	// caption describes ("The predictions of Suitability for 6/10/12
	// cores are interpolated"), non-power-of-two counts are linearly
	// interpolated between the neighbouring powers of two (and 12
	// extrapolated from 8 toward 16).
	Threads int
}

// atPowerOfTwo evaluates the underlying emulator at an exact CPU count.
func (s *Suitability) atPowerOfTwo(root *tree.Node, threads int) float64 {
	e := &ff.Emulator{
		Threads:   threads,
		Sched:     omprt.SchedDynamic1,
		Ov:        SuitabilityOverheads(),
		UseBurden: false,
	}
	return e.Speedup(root)
}

// Speedup returns the Suitability estimate: an FF emulation pinned to
// (dynamic,1) with coarse overheads, no burden factors, the
// non-preemptive nested limitation, and 2^N-only native outputs.
func (s *Suitability) Speedup(root *tree.Node) float64 {
	t := s.Threads
	if t < 1 {
		t = 1
	}
	if t&(t-1) == 0 { // native power-of-two output
		return s.atPowerOfTwo(root, t)
	}
	lo := 1
	for lo*2 < t {
		lo *= 2
	}
	hi := lo * 2
	sLo := s.atPowerOfTwo(root, lo)
	sHi := s.atPowerOfTwo(root, hi)
	frac := float64(t-lo) / float64(hi-lo)
	return sLo + frac*(sHi-sLo)
}

// PredictTime returns the Suitability estimate as an execution time
// (derived from the possibly interpolated speedup).
func (s *Suitability) PredictTime(root *tree.Node) clock.Cycles {
	sp := s.Speedup(root)
	if sp <= 0 {
		return root.TotalLen()
	}
	return clock.Cycles(float64(root.TotalLen())/sp + 0.5)
}
