// Package pipesim executes a pipeline-parallel section (tree.Node with
// Pipeline set) on the simulated machine — the runtime counterpart of the
// FF's pipeline schedule (internal/ff/pipeline.go) used by both the
// ground-truth runner and the synthesizer.
//
// Scheduling follows decoupled software pipelining: stage s is bound to
// worker s mod nt; each worker processes its stages in iteration order and
// blocks until stage s-1 of the same iteration has completed. The
// iteration-major order within a worker matches the FF model, so the two
// emulators agree on the schedule and differ only in machine effects.
package pipesim

import (
	"prophet/internal/sim"
	"prophet/internal/tree"
)

// Exec executes one stage segment (a U or L leaf) on the given thread.
// Implementations handle L-node locking themselves.
type Exec func(w *sim.Thread, seg *tree.Node)

// StageSlots flattens a task's (segment, repeat) positions into stage
// slots — slot k of every iteration belongs to pipeline stage k.
func StageSlots(task *tree.Node) []*tree.Node {
	var out []*tree.Node
	for _, seg := range task.Children {
		for r := 0; r < seg.Reps(); r++ {
			out = append(out, seg)
		}
	}
	return out
}

// Depth returns the pipeline depth of a section: the widest task's slot
// count.
func Depth(sec *tree.Node) int {
	depth := 0
	for _, c := range sec.Children {
		if c.Kind != tree.Task {
			continue
		}
		if d := len(StageSlots(c)); d > depth {
			depth = d
		}
	}
	return depth
}

// PartitionStages assigns the section's stages to nt workers as contiguous
// groups balanced by total stage weight (the classic linear-partition DP).
// Contiguity matters: a worker owning stages {0, 2} of the same iteration
// would serialize the whole pipeline, while fusing adjacent stages merely
// coarsens it — the decoupled-software-pipelining assignment. The result
// maps stage index to worker rank and is shared by the FF's pipeline
// schedule and the machine execution, so they model the same assignment.
func PartitionStages(sec *tree.Node, nt int) []int {
	depth := Depth(sec)
	if depth == 0 {
		return nil
	}
	if nt > depth {
		nt = depth
	}
	if nt < 1 {
		nt = 1
	}
	// Per-stage weight: total cycles across all iterations.
	weights := make([]float64, depth)
	for _, c := range sec.Children {
		if c.Kind != tree.Task {
			continue
		}
		for s, seg := range StageSlots(c) {
			weights[s] += float64(seg.Len) * float64(c.Reps())
		}
	}
	// DP: cost[g][s] = minimal max-group-sum partitioning stages [0, s]
	// into g+1 groups.
	prefix := make([]float64, depth+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	sum := func(a, b int) float64 { return prefix[b+1] - prefix[a] } // stages a..b
	const inf = 1e300
	cost := make([][]float64, nt)
	cut := make([][]int, nt)
	for g := range cost {
		cost[g] = make([]float64, depth)
		cut[g] = make([]int, depth)
	}
	for s := 0; s < depth; s++ {
		cost[0][s] = sum(0, s)
	}
	for g := 1; g < nt; g++ {
		for s := 0; s < depth; s++ {
			cost[g][s] = inf
			for k := g - 1; k < s; k++ {
				c := cost[g-1][k]
				if last := sum(k+1, s); last > c {
					c = last
				}
				if c < cost[g][s] {
					cost[g][s] = c
					cut[g][s] = k
				}
			}
			if cost[g][s] == inf { // fewer stages than groups
				cost[g][s] = cost[g-1][s]
				cut[g][s] = s
			}
		}
	}
	// Walk the cuts back into a stage->worker map.
	out := make([]int, depth)
	s := depth - 1
	for g := nt - 1; g >= 1; g-- {
		k := cut[g][s]
		for i := k + 1; i <= s; i++ {
			out[i] = g
		}
		s = k
	}
	// Stages 0..s stay in group 0 (already zero-valued).
	// Normalize: group ids must be ascending without gaps.
	next, seen := 0, map[int]int{}
	for i, g := range out {
		id, ok := seen[g]
		if !ok {
			id = next
			seen[g] = id
			next++
		}
		out[i] = id
	}
	return out
}

// Run executes the pipeline section on main's machine with up to threads
// workers, invoking exec for every stage instance. It returns when every
// iteration has drained through every stage (the section's barrier).
func Run(main *sim.Thread, sec *tree.Node, threads int, exec Exec) {
	// Expand the logical iteration list (Repeat-compressed tasks).
	var iters []*tree.Node
	for _, c := range sec.Children {
		if c.Kind != tree.Task {
			continue
		}
		for r := 0; r < c.Reps(); r++ {
			iters = append(iters, c)
		}
	}
	depth := Depth(sec)
	if len(iters) == 0 || depth == 0 {
		return
	}
	groups := PartitionStages(sec, threads)
	nt := 0
	for _, g := range groups {
		if g+1 > nt {
			nt = g + 1
		}
	}

	// stageDone[s] counts iterations whose stage s has completed; the
	// engine serializes all workers, so plain ints and slices suffice.
	stageDone := make([]int, depth)
	var parked []*sim.Thread

	wake := func(w *sim.Thread) {
		for _, p := range parked {
			w.Unpark(p)
		}
		parked = nil
	}

	worker := func(rank int) func(*sim.Thread) {
		return func(w *sim.Thread) {
			for i, task := range iters {
				slots := StageSlots(task)
				for s := 0; s < depth; s++ {
					if groups[s] != rank {
						continue
					}
					if s >= len(slots) {
						// This iteration is narrower than
						// the pipeline: the stage is a
						// no-op, but still retires in
						// order.
						stageDone[s] = i + 1
						wake(w)
						continue
					}
					// Wait for stage s-1 of this iteration.
					for s > 0 && stageDone[s-1] <= i {
						parked = append(parked, w)
						w.Park()
					}
					exec(w, slots[s])
					stageDone[s] = i + 1
					wake(w)
				}
			}
		}
	}

	helpers := make([]*sim.Thread, 0, nt-1)
	for r := 1; r < nt; r++ {
		helpers = append(helpers, main.Spawn(worker(r)))
	}
	worker(0)(main)
	for _, h := range helpers {
		main.Join(h)
	}
}
