package pipesim

import (
	"testing"

	"prophet/internal/clock"
	"prophet/internal/sim"
	"prophet/internal/tree"
)

func mcfg(cores int) sim.Config {
	return sim.Config{Cores: cores, Quantum: 10_000, ContextSwitch: -1}
}

// pipe builds a pipeline section of n iterations with the given stage
// lengths per iteration.
func pipe(n int, stages ...clock.Cycles) *tree.Node {
	tasks := make([]*tree.Node, n)
	for i := range tasks {
		segs := make([]*tree.Node, len(stages))
		for s, l := range stages {
			segs[s] = tree.NewU(l)
		}
		tasks[i] = tree.NewTask("it", segs...)
	}
	sec := tree.NewSec("pipe", tasks...)
	sec.Pipeline = true
	return sec
}

// run executes the section with a plain Work exec and returns the makespan.
func run(sec *tree.Node, cores, threads int) clock.Cycles {
	end, _ := sim.Run(mcfg(cores), func(main *sim.Thread) {
		Run(main, sec, threads, func(w *sim.Thread, seg *tree.Node) {
			w.Work(seg.Len)
		})
	})
	return end
}

func TestBalancedTwoStagePipeline(t *testing.T) {
	// 32 iterations, two 1000-cycle stages, 2 workers: steady-state
	// throughput one iteration per 1000 cycles => ~33k total.
	sec := pipe(32, 1_000, 1_000)
	got := run(sec, 2, 2)
	if got < 33_000 || got > 36_000 {
		t.Fatalf("2-stage pipeline makespan = %d, want ~33000", got)
	}
	// Serial: 64k. Speedup ~1.94.
	if serial := sec.TotalLen(); serial != 64_000 {
		t.Fatalf("serial = %d", serial)
	}
}

func TestBottleneckStageLimitsThroughput(t *testing.T) {
	// Stage 1 takes 3x stage 0: throughput bound by the slow stage.
	sec := pipe(20, 1_000, 3_000)
	got := run(sec, 2, 2)
	// Bound: 20 iterations through a 3000-cycle bottleneck + fill.
	if got < 60_000 {
		t.Fatalf("makespan %d below bottleneck bound 60000", got)
	}
	if got > 66_000 {
		t.Fatalf("makespan %d, want ~61000 (bottleneck-limited)", got)
	}
}

func TestSingleWorkerSerializes(t *testing.T) {
	sec := pipe(10, 500, 500, 500)
	got := run(sec, 4, 1)
	if got != 15_000 {
		t.Fatalf("1-worker pipeline = %d, want 15000 (serial)", got)
	}
}

func TestMoreWorkersThanStagesClamped(t *testing.T) {
	sec := pipe(16, 1_000, 1_000)
	a := run(sec, 8, 2)
	b := run(sec, 8, 8) // only 2 stages -> 2 workers used
	if a != b {
		t.Fatalf("extra workers changed makespan: %d vs %d", a, b)
	}
}

func TestDependenciesRespected(t *testing.T) {
	// Record stage completion order; stage 1 of iteration i must come
	// after stage 0 of iteration i.
	const n = 12
	done := make(map[[2]int]clock.Cycles)
	idx := map[*tree.Node][2]int{}
	tasks := make([]*tree.Node, n)
	for i := range tasks {
		s0 := tree.NewU(100)
		s1 := tree.NewU(100)
		idx[s0] = [2]int{i, 0}
		idx[s1] = [2]int{i, 1}
		tasks[i] = tree.NewTask("it", s0, s1)
	}
	sec := tree.NewSec("pipe", tasks...)
	sec.Pipeline = true
	sim.Run(mcfg(4), func(main *sim.Thread) {
		Run(main, sec, 2, func(w *sim.Thread, seg *tree.Node) {
			w.Work(seg.Len)
			done[idx[seg]] = w.Now()
		})
	})
	for i := 0; i < n; i++ {
		if done[[2]int{i, 1}] < done[[2]int{i, 0}]+100 {
			t.Fatalf("iter %d: stage 1 at %d before stage 0 at %d finished",
				i, done[[2]int{i, 1}], done[[2]int{i, 0}])
		}
		if i > 0 && done[[2]int{i, 0}] < done[[2]int{i - 1, 0}] {
			t.Fatalf("stage 0 out of iteration order at %d", i)
		}
	}
}

func TestRaggedIterations(t *testing.T) {
	// Iterations with fewer stages than the pipeline depth must drain
	// without deadlock.
	t0 := tree.NewTask("wide", tree.NewU(500), tree.NewU(500), tree.NewU(500))
	t1 := tree.NewTask("narrow", tree.NewU(500))
	t2 := tree.NewTask("wide", tree.NewU(500), tree.NewU(500), tree.NewU(500))
	sec := tree.NewSec("pipe", t0, t1, t2)
	sec.Pipeline = true
	got := run(sec, 4, 3)
	if got <= 0 || got > 3_500 {
		t.Fatalf("ragged pipeline makespan = %d", got)
	}
}

func TestRepeatCompressedIterations(t *testing.T) {
	task := tree.NewTask("it", tree.NewU(1_000), tree.NewU(1_000))
	task.Repeat = 32
	secC := tree.NewSec("pipe", task)
	secC.Pipeline = true
	secE := pipe(32, 1_000, 1_000)
	a := run(secC, 2, 2)
	b := run(secE, 2, 2)
	if a != b {
		t.Fatalf("compressed pipeline %d != expanded %d", a, b)
	}
}

func TestEmptySection(t *testing.T) {
	sec := tree.NewSec("pipe")
	sec.Pipeline = true
	if got := run(sec, 2, 2); got != 0 {
		t.Fatalf("empty pipeline makespan = %d", got)
	}
}

func TestDepthAndSlots(t *testing.T) {
	sec := pipe(3, 10, 20, 30)
	if Depth(sec) != 3 {
		t.Fatalf("depth = %d", Depth(sec))
	}
	seg := tree.NewU(5)
	seg.Repeat = 4
	task := tree.NewTask("t", seg)
	if got := len(StageSlots(task)); got != 4 {
		t.Fatalf("slots with repeat = %d, want 4", got)
	}
}

func TestPartitionStages(t *testing.T) {
	// Stage weights 20/90/30 over 64 iterations, 2 workers: optimal
	// contiguous partition is {20,90 | 30} (max 110), not {20 | 90,30}.
	sec := pipe(64, 20, 90, 30)
	g := PartitionStages(sec, 2)
	want := []int{0, 0, 1}
	if len(g) != 3 || g[0] != want[0] || g[1] != want[1] || g[2] != want[2] {
		t.Fatalf("partition = %v, want %v", g, want)
	}
	// One worker: all stages in group 0.
	g1 := PartitionStages(sec, 1)
	for _, v := range g1 {
		if v != 0 {
			t.Fatalf("single-worker partition = %v", g1)
		}
	}
	// Workers >= depth: one stage per group, ascending.
	g4 := PartitionStages(sec, 4)
	for s, v := range g4 {
		if v != s {
			t.Fatalf("wide partition = %v", g4)
		}
	}
	// Groups are contiguous and ascending for any worker count.
	wide := pipe(8, 10, 20, 30, 40, 50, 60, 70)
	for nt := 1; nt <= 9; nt++ {
		g := PartitionStages(wide, nt)
		for i := 1; i < len(g); i++ {
			if g[i] < g[i-1] || g[i] > g[i-1]+1 {
				t.Fatalf("nt=%d: non-contiguous groups %v", nt, g)
			}
		}
	}
	if PartitionStages(tree.NewSec("empty"), 2) != nil {
		t.Fatal("empty section should partition to nil")
	}
}

func TestImbalancedStagesBottleneckMatchesPartition(t *testing.T) {
	// Weights 20/90/30, 2 workers: bound = serial/maxgroup = 140/110.
	sec := pipe(64, 2_000, 9_000, 3_000)
	got := run(sec, 2, 2)
	// Group {s0,s1} does 11000 per iteration: ~64*11000.
	if got < 64*11_000 || got > 64*11_000+15_000 {
		t.Fatalf("makespan = %d, want ~%d", got, 64*11_000)
	}
}
