// Package workloads defines the annotated serial programs the evaluation
// runs: the Test1/Test2 random program generators of the paper's Fig. 9
// and Fig. 10 (§VII-B validation), and the eight OmpSCR/NPB benchmarks of
// §VII-C, modeled from the real kernels in internal/kernels.
//
// Every workload is a trace.Program — an annotated serial program in the
// sense of Table II — whose Compute calls carry an
// (instruction-cycles, LLC-misses) cost model. The loop structures and
// trip counts come from the real kernel implementations; the miss counts
// come from the kernels' array footprints versus the simulated 12 MB LLC
// (cross-checked against the cache simulator in the tests). Inputs are
// scaled down from the paper's (a discrete-event simulator is slower than
// silicon); footprint-to-LLC ratios are preserved so each benchmark stays
// in its class: compute-bound (MD, LU, QSort, EP) or bandwidth-bound
// (FFT, FT, MG, CG).
package workloads

import (
	"fmt"
	"sort"

	"prophet/internal/counters"
	"prophet/internal/mem"
	"prophet/internal/omprt"
	"prophet/internal/synth"
	"prophet/internal/trace"
)

// Workload couples an annotated serial program with the parallelization
// the paper applies to it.
type Workload struct {
	// Name is the paper's benchmark name, e.g. "NPB-FT".
	Name string
	// Desc is a one-line description including the scaled input.
	Desc string
	// Paradigm is the threading model the paper parallelizes with.
	Paradigm synth.Paradigm
	// Sched is the OpenMP schedule used by the paper's parallelization
	// (ignored for Cilk workloads).
	Sched omprt.Sched
	// Program is the annotated serial program.
	Program trace.Program
	// FootprintBytes is the dominant working-set size, for reports.
	FootprintBytes int64
}

// LLCBytes is the simulated machine's last-level cache size (12 MB, as on
// the paper's Westmere).
var LLCBytes = mem.DefaultLLC().SizeBytes

// streamMisses models the LLC misses of streaming `bytes` of data that
// belong to a working set of wsBytes: if the working set fits in the LLC
// the stream stays resident across passes (≈0 misses); otherwise every
// line must be refetched. The threshold behaviour is validated against
// the set-associative cache simulator in the tests.
func streamMisses(bytes, wsBytes int64) int64 {
	if wsBytes <= LLCBytes {
		return 0
	}
	return bytes / counters.LineSize
}

// registry of the eight paper benchmarks, built lazily.
var registry = map[string]func() *Workload{
	"MD-OMP":     NewMD,
	"LU-OMP":     NewLU,
	"FFT-Cilk":   NewFFT,
	"QSort-Cilk": NewQSort,
	"NPB-EP":     NewEP,
	"NPB-FT":     NewFT,
	"NPB-CG":     NewCG,
	"NPB-MG":     NewMG,
	"NPB-IS":     NewIS,
}

// Names returns the benchmark names in the paper's Fig. 12 order (the
// eight evaluated benchmarks; NPB-IS — the §VI-B compression stress case —
// is additionally available through ByName).
func Names() []string {
	return []string{"MD-OMP", "LU-OMP", "FFT-Cilk", "QSort-Cilk", "NPB-EP", "NPB-FT", "NPB-CG", "NPB-MG"}
}

// ByName builds the named benchmark workload.
func ByName(name string) (*Workload, error) {
	f, ok := registry[name]
	if !ok {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, names)
	}
	return f(), nil
}

// All builds every benchmark in Fig. 12 order.
func All() []*Workload {
	out := make([]*Workload, 0, len(registry))
	for _, n := range Names() {
		w, _ := ByName(n)
		out = append(out, w)
	}
	return out
}
