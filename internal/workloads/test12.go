package workloads

import (
	"math/rand"

	"prophet/internal/clock"
	"prophet/internal/trace"
)

// This file implements the paper's validation program generators
// (§VII-B): Test1 (Fig. 9) — a parallel loop with workload imbalance and
// up to two critical sections of arbitrary length and contention — and
// Test2 (Fig. 10) — Test1 plus frequent inner-loop and nested parallelism.
// The harness draws 300 random parameter samples per test case, exactly as
// the paper does, and compares predictions against the ground truth.

// Pattern shapes the per-iteration work (the paper's ComputeOverhead
// "generates various workload patterns, from a randomly distributed
// workload to a regular form of workload, or a mix of several cases").
type Pattern uint8

// Work patterns.
const (
	// PatternUniform gives every iteration MaxWork.
	PatternUniform Pattern = iota
	// PatternRandom draws each iteration uniformly in [MinWork, MaxWork].
	PatternRandom
	// PatternIncreasing ramps linearly from MinWork to MaxWork (the
	// regular diagonal of LU, Fig. 1(a)).
	PatternIncreasing
	// PatternDecreasing ramps linearly from MaxWork down to MinWork.
	PatternDecreasing
	// PatternBimodal mixes a short and a long mode.
	PatternBimodal
	numPatterns
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternUniform:
		return "uniform"
	case PatternRandom:
		return "random"
	case PatternIncreasing:
		return "increasing"
	case PatternDecreasing:
		return "decreasing"
	case PatternBimodal:
		return "bimodal"
	}
	return "?"
}

// workFor evaluates the pattern for iteration i of n (ComputeOverhead in
// Fig. 9/10).
func workFor(p Pattern, rng *rand.Rand, i, n int, minW, maxW clock.Cycles) clock.Cycles {
	span := maxW - minW
	switch p {
	case PatternRandom:
		return minW + clock.Cycles(rng.Int63n(int64(span)+1))
	case PatternIncreasing:
		return minW + span*clock.Cycles(i)/clock.Cycles(maxInt(n-1, 1))
	case PatternDecreasing:
		return maxW - span*clock.Cycles(i)/clock.Cycles(maxInt(n-1, 1))
	case PatternBimodal:
		if rng.Intn(4) == 0 {
			return maxW
		}
		return minW
	default:
		return maxW
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Test1Params parameterizes one Fig. 9 sample: a single parallel loop with
// imbalance and up to two critical sections.
type Test1Params struct {
	Iters   int
	Pattern Pattern
	// MinWork/MaxWork bound the per-iteration total work in cycles.
	MinWork, MaxWork clock.Cycles
	// Ratios split each iteration into delay1, lock1, delay2, lock2,
	// delay3 fractions (they are normalized internally; zero lock
	// fractions mean the lock region is skipped).
	Ratio1, RatioLock1, Ratio2, RatioLock2, Ratio3 float64
	// Lock1Prob / Lock2Prob are the per-iteration probabilities of
	// entering each critical section (do_lock1 / do_lock2 in Fig. 9).
	Lock1Prob, Lock2Prob float64
	// Seed drives the per-iteration randomness.
	Seed int64
}

// normalized returns the five fractions scaled to sum to 1.
func (p Test1Params) normalized() [5]float64 {
	f := [5]float64{p.Ratio1, p.RatioLock1, p.Ratio2, p.RatioLock2, p.Ratio3}
	var sum float64
	for _, v := range f {
		sum += v
	}
	if sum <= 0 {
		return [5]float64{1, 0, 0, 0, 0}
	}
	for i := range f {
		f[i] /= sum
	}
	return f
}

// RandomTest1 draws one random Test1 sample, mirroring §VII-B's "randomly
// selecting the arguments".
func RandomTest1(rng *rand.Rand) Test1Params {
	p := Test1Params{
		Iters:   16 + rng.Intn(200),
		Pattern: Pattern(rng.Intn(int(numPatterns))),
		MinWork: clock.Cycles(5_000 + rng.Intn(20_000)),
		Seed:    rng.Int63(),
	}
	p.MaxWork = p.MinWork * clock.Cycles(1+rng.Intn(12))
	p.Ratio1 = rng.Float64()
	p.Ratio2 = rng.Float64()
	p.Ratio3 = rng.Float64()
	// Half the samples have critical sections; lock time up to ~30% so
	// "high lock contention" cases occur but don't dominate every draw.
	if rng.Intn(2) == 0 {
		p.RatioLock1 = rng.Float64() * 0.6
		p.Lock1Prob = rng.Float64()
	}
	if rng.Intn(4) == 0 {
		p.RatioLock2 = rng.Float64() * 0.3
		p.Lock2Prob = rng.Float64()
	}
	return p
}

// Program returns the annotated Fig. 9 program for these parameters.
func (p Test1Params) Program() trace.Program {
	return func(ctx trace.Context) {
		p.run(ctx, "test1")
	}
}

// run emits the Test1 loop as a parallel section named name (Test2 reuses
// it for its nested inner loops).
func (p Test1Params) run(ctx trace.Context, name string) {
	rng := rand.New(rand.NewSource(p.Seed))
	f := p.normalized()
	ctx.SecBegin(name)
	for i := 0; i < p.Iters; i++ {
		work := workFor(p.Pattern, rng, i, p.Iters, p.MinWork, p.MaxWork)
		doL1 := p.RatioLock1 > 0 && rng.Float64() < p.Lock1Prob
		doL2 := p.RatioLock2 > 0 && rng.Float64() < p.Lock2Prob
		ctx.TaskBegin("it")
		ctx.Compute(int64(float64(work)*f[0]), 0)
		if doL1 {
			ctx.LockBegin(1)
			ctx.Compute(int64(float64(work)*f[1]), 0)
			ctx.LockEnd(1)
		}
		ctx.Compute(int64(float64(work)*f[2]), 0)
		if doL2 {
			ctx.LockBegin(2)
			ctx.Compute(int64(float64(work)*f[3]), 0)
			ctx.LockEnd(2)
		}
		ctx.Compute(int64(float64(work)*f[4]), 0)
		ctx.TaskEnd()
	}
	ctx.SecEnd(false)
}

// Test2Params parameterizes one Fig. 10 sample: an outer parallel loop
// whose iterations may invoke an inner Test1 parallel loop (nested
// parallelism) between two delays.
type Test2Params struct {
	Outer   int
	Pattern Pattern
	// MinWork/MaxWork bound the outer per-iteration delay work.
	MinWork, MaxWork clock.Cycles
	// RatioA/RatioB split the outer delay before/after the nested loop.
	RatioA, RatioB float64
	// NestedProb is the probability an outer iteration runs the inner
	// parallel loop (do_nested_parallelism in Fig. 10).
	NestedProb float64
	// Inner parameterizes the nested Test1 loop.
	Inner Test1Params
	Seed  int64
}

// RandomTest2 draws one random Fig. 10 sample. Outer-loop work dominates
// on average while nested inner loops stay frequent enough to exercise the
// FF's nested limitation — matching the error distribution the paper
// reports for its Test2 panels (FF average ~7% with a heavy tail up to
// ~68%, synthesizer ~3%).
func RandomTest2(rng *rand.Rand) Test2Params {
	inner := RandomTest1(rng)
	// Inner loops are frequent and fine-grained in Test2.
	inner.Iters = 4 + rng.Intn(16)
	inner.MinWork = clock.Cycles(2_000 + rng.Intn(8_000))
	inner.MaxWork = inner.MinWork * clock.Cycles(1+rng.Intn(4))
	return Test2Params{
		Outer:      8 + rng.Intn(48),
		Pattern:    Pattern(rng.Intn(int(numPatterns))),
		MinWork:    clock.Cycles(20_000 + rng.Intn(60_000)),
		MaxWork:    clock.Cycles(80_000 + rng.Intn(220_000)),
		RatioA:     rng.Float64(),
		RatioB:     rng.Float64(),
		NestedProb: 0.2 + 0.6*rng.Float64(),
		Inner:      inner,
		Seed:       rng.Int63(),
	}
}

// Program returns the annotated Fig. 10 program.
func (p Test2Params) Program() trace.Program {
	return func(ctx trace.Context) {
		rng := rand.New(rand.NewSource(p.Seed))
		ra, rb := p.RatioA, p.RatioB
		if ra+rb <= 0 {
			ra = 1
		}
		ctx.SecBegin("test2")
		for k := 0; k < p.Outer; k++ {
			work := workFor(p.Pattern, rng, k, p.Outer, p.MinWork, p.MaxWork)
			nested := rng.Float64() < p.NestedProb
			inner := p.Inner
			inner.Seed = p.Inner.Seed + int64(k)
			ctx.TaskBegin("outer")
			ctx.Compute(int64(float64(work)*ra/(ra+rb)), 0)
			if nested {
				inner.run(ctx, "inner")
			}
			ctx.Compute(int64(float64(work)*rb/(ra+rb)), 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
}
