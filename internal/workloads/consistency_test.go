package workloads

import (
	"testing"

	"prophet/internal/kernels"
	"prophet/internal/tree"
)

// These tests pin the workload cost models to the real kernels they are
// derived from: same loop structures, same trip counts, same recursion
// shapes — so the annotated programs can't silently drift away from the
// code they claim to model.

// TestLUWorkloadMatchesKernelLoopNest: the LU workload must have exactly
// the trip counts of kernels.LUDecompose's loop nest.
func TestLUWorkloadMatchesKernelLoopNest(t *testing.T) {
	// From the kernel: for k in [0, n-1), the inner parallel loop runs
	// over i in (k, n) — size-1 sections with n-1-k tasks each.
	const size = 512 // must match bench.go's LU size
	w, _ := ByName("LU-OMP")
	root := profile(t, w.Program)
	secs := root.TopLevelSections()
	if len(secs) != size-1 {
		t.Fatalf("sections = %d, want %d", len(secs), size-1)
	}
	for k, sec := range secs {
		want := size - 1 - k
		if got := sec.Tasks(); got != want {
			t.Fatalf("pivot %d: tasks = %d, want %d", k, got, want)
		}
	}
	// And the kernel itself factors correctly at a smaller size (the
	// structure the model mirrors is real, working code).
	a := kernels.NewDiagonallyDominant(32, 9)
	orig := a.Clone()
	if err := kernels.LUDecompose(a); err != nil {
		t.Fatal(err)
	}
	if d := kernels.MaxAbsDiff(orig, kernels.LUReconstruct(a)); d > 1e-9 {
		t.Fatalf("kernel LU wrong by %g", d)
	}
}

// TestQSortWorkloadMatchesKernelRecursion: the workload runs the real
// partition function, so its split tree must match the kernel's recursion
// profile on the same input.
func TestQSortWorkloadMatchesKernelRecursion(t *testing.T) {
	const (
		n      = 1 << 17
		cutoff = 512
		seed   = 20120523
	)
	// Kernel-side: recursion profile with the same cutoff.
	data := kernels.RandomSlice(n, seed)
	var kernelSplits []int
	var rec func(s []float64)
	rec = func(s []float64) {
		if len(s) <= cutoff {
			return
		}
		p := kernels.Partition(s)
		kernelSplits = append(kernelSplits, len(s))
		rec(s[:p])
		rec(s[p+1:])
	}
	rec(data)

	// Workload-side: count nested split sections.
	w, _ := ByName("QSort-Cilk")
	root := profile(t, w.Program)
	splits := 0
	root.Walk(func(nd *tree.Node) bool {
		if nd.Kind == tree.Sec && nd.Name == "qsort-halves" {
			splits += nd.Reps()
		}
		return true
	})
	if splits != len(kernelSplits) {
		t.Fatalf("workload splits = %d, kernel recursion = %d", splits, len(kernelSplits))
	}
}

// TestFTWorkloadSectionStructure: 2 steps x (3 dimension passes + evolve).
func TestFTWorkloadSectionStructure(t *testing.T) {
	w, _ := ByName("NPB-FT")
	root := profile(t, w.Program)
	counts := map[string]int{}
	for _, sec := range root.TopLevelSections() {
		counts[sec.Name] += sec.Reps()
	}
	for _, name := range []string{"ft-x", "ft-y", "ft-z", "ft-evolve"} {
		if counts[name] != 2 {
			t.Fatalf("%s sections = %d, want 2 (one per step)", name, counts[name])
		}
	}
	// Line passes have n^2 = 16384 tasks; the strided passes carry more
	// misses per task than the unit-stride x pass.
	var xMiss, yMiss int64
	for _, sec := range root.TopLevelSections() {
		var first *tree.Node
		for _, task := range sec.Children {
			if task.Kind == tree.Task {
				first = task.Children[0]
				break
			}
		}
		switch sec.Name {
		case "ft-x":
			if sec.Tasks() != 16384 {
				t.Fatalf("ft-x tasks = %d", sec.Tasks())
			}
			xMiss = first.Mem.LLCMisses
		case "ft-y":
			yMiss = first.Mem.LLCMisses
		}
	}
	if yMiss <= xMiss {
		t.Fatalf("strided pass misses (%d) not above unit-stride (%d)", yMiss, xMiss)
	}
	// The kernel really does a correct 3-D transform (round-trip).
	g := kernels.NewGrid3D(8)
	g.FillDeterministic(4)
	if err := g.FFT3D(false); err != nil {
		t.Fatal(err)
	}
	if err := g.FFT3D(true); err != nil {
		t.Fatal(err)
	}
}

// TestMDWorkloadForceLoopShape: one task per particle per step, and the
// serial update between steps matches the kernel's two-phase structure.
func TestMDWorkloadForceLoopShape(t *testing.T) {
	w, _ := ByName("MD-OMP")
	root := profile(t, w.Program)
	secs := root.TopLevelSections()
	if len(secs) != 4 { // 4 steps
		t.Fatalf("sections = %d, want 4", len(secs))
	}
	for _, sec := range secs {
		if sec.Tasks() != 512 {
			t.Fatalf("force tasks = %d, want 512", sec.Tasks())
		}
	}
	// Serial updates between sections exist (the kernel's Update phase).
	if root.SerialOutsideSections() == 0 {
		t.Fatal("no serial update phases recorded")
	}
}

// TestCGWorkloadIterationStructure: each of the 20 iterations contributes
// one SpMV, two dots and one axpy section.
func TestCGWorkloadIterationStructure(t *testing.T) {
	w, _ := ByName("NPB-CG")
	root := profile(t, w.Program)
	counts := map[string]int{}
	for _, sec := range root.TopLevelSections() {
		counts[sec.Name] += sec.Reps()
	}
	if counts["cg-spmv"] != 20 || counts["cg-dot"] != 40 || counts["cg-axpy"] != 20 {
		t.Fatalf("section counts = %v", counts)
	}
}

// TestMGWorkloadLevelsShrink: sweep sections exist for multiple grid
// levels with shrinking task counts (plane counts).
func TestMGWorkloadLevelsShrink(t *testing.T) {
	w, _ := ByName("NPB-MG")
	root := profile(t, w.Program)
	sizes := map[int]bool{}
	for _, sec := range root.TopLevelSections() {
		if sec.Name == "mg-sweep" {
			sizes[sec.Tasks()] = true
		}
	}
	// 129 -> plane loops of 127, 63, 31, 15, 7, 3 (levels >= 5 points).
	for _, want := range []int{127, 63, 31, 15} {
		if !sizes[want] {
			t.Fatalf("missing sweep level with %d planes (have %v)", want, sizes)
		}
	}
}
