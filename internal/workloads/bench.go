package workloads

import (
	"prophet/internal/counters"
	"prophet/internal/kernels"
	"prophet/internal/omprt"
	"prophet/internal/synth"
	"prophet/internal/trace"
)

// This file models the paper's eight §VII-C benchmarks as annotated
// programs. Loop structures and trip counts mirror the real kernels in
// internal/kernels; per-task costs are instruction-cycle counts for the
// kernel's inner loops plus LLC-miss counts for the arrays the loop
// streams (zero when the working set fits the 12 MB LLC).
//
// Input scales (vs. the paper's): MD 8192→512 particles, LU 3072→512,
// FFT 2048²-point→2²⁰-point, QSort to 2¹⁷ elements, EP class B→192
// batches, FT 'B' (850 MB)→128³ (32 MB), CG 'B' (400 MB)→80k rows
// (≈16 MB), MG 'B' (470 MB)→129³ (17 MB), IS 'B'→2²² keys (32 MB).
// The memory-bound benchmarks stay above the 12 MB LLC, the compute-bound
// ones below — preserving each benchmark's class and therefore the shape
// of Fig. 12.

// NewMD models OmpSCR MD: per time step, one parallel force loop with one
// task per particle (each O(N) work), then a serial position update.
func NewMD() *Workload {
	const (
		n         = 512
		steps     = 4
		cPair     = 24 // cycles per pair interaction
		cUpdate   = 12 // cycles per particle update
		footprint = n * 72
	)
	prog := func(ctx trace.Context) {
		for s := 0; s < steps; s++ {
			ctx.SecBegin("forces")
			for i := 0; i < n; i++ {
				ctx.TaskBegin("force")
				ctx.Compute(int64(n*cPair), streamMisses(n*24, footprint))
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
			ctx.Compute(int64(n*cUpdate), 0)
		}
	}
	return &Workload{
		Name:           "MD-OMP",
		Desc:           "OmpSCR molecular dynamics, 512 particles, 4 steps (paper: 8192/20MB)",
		Paradigm:       synth.OpenMP,
		Sched:          omprt.SchedStatic,
		Program:        prog,
		FootprintBytes: footprint,
	}
}

// NewLU models OmpSCR LU reduction, the paper's Fig. 1(a): the outer pivot
// loop is serial; for each pivot column the inner row-elimination loop is
// a parallel section whose per-task work shrinks as k grows — the
// inner-loop-parallelism and workload-imbalance case.
func NewLU() *Workload {
	const (
		size      = 512
		cElim     = 30 // cycles per updated element (divide+mul+sub, loads)
		footprint = size * size * 8
	)
	prog := func(ctx trace.Context) {
		for k := 0; k < size-1; k++ {
			rowLen := size - k - 1
			if rowLen == 0 {
				continue
			}
			ctx.SecBegin("elim")
			for i := k + 1; i < size; i++ {
				ctx.TaskBegin("row")
				bytes := int64(2 * rowLen * 8)
				ctx.Compute(int64(rowLen*cElim), streamMisses(bytes, footprint))
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
		}
	}
	return &Workload{
		Name:           "LU-OMP",
		Desc:           "OmpSCR LU reduction, 512x512 (paper: 3072/54MB); inner-loop parallelism",
		Paradigm:       synth.OpenMP,
		Sched:          omprt.SchedStatic1,
		Program:        prog,
		FootprintBytes: footprint,
	}
}

// NewFFT models OmpSCR FFT in its Cilk Plus form (the paper's Fig. 1(b)):
// two recursive half-size transforms (spawnable tasks) followed by a
// parallel combine loop. The 2²⁰-point complex signal (16 MB) exceeds the
// LLC, so the top combine levels stream memory.
func NewFFT() *Workload {
	const (
		n         = 1 << 20
		leaf      = 1 << 12
		chunk     = 1 << 12
		cComb     = 8 // cycles per point in the combine loop
		cLeaf     = 5 // cycles per point·log(point) at the leaves
		footprint = n * 16
	)
	var rec func(ctx trace.Context, size int)
	rec = func(ctx trace.Context, size int) {
		if size <= leaf {
			logs := 0
			for 1<<logs < size {
				logs++
			}
			ctx.Compute(int64(size*logs*cLeaf), streamMisses(int64(size*16), footprint))
			return
		}
		// cilk_spawn FFT(half); FFT(half); cilk_sync;
		ctx.SecBegin("fft-split")
		ctx.TaskBegin("half")
		rec(ctx, size/2)
		ctx.TaskEnd()
		ctx.TaskBegin("half")
		rec(ctx, size/2)
		ctx.TaskEnd()
		ctx.SecEnd(false)
		// cilk_for combine loop over size/2 points.
		ctx.SecBegin("fft-combine")
		for lo := 0; lo < size/2; lo += chunk {
			hi := lo + chunk
			if hi > size/2 {
				hi = size / 2
			}
			pts := hi - lo
			ctx.TaskBegin("comb")
			// Each point reads/writes both halves: 32 B of
			// complex data per point, twice.
			ctx.Compute(int64(pts*cComb), streamMisses(int64(pts*64), footprint))
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
	prog := func(ctx trace.Context) {
		// Top-level sections only: wrap the whole recursive transform
		// in one task of one section so the tree stays Root->Sec.
		ctx.SecBegin("fft")
		ctx.TaskBegin("root")
		rec(ctx, n)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	return &Workload{
		Name:           "FFT-Cilk",
		Desc:           "OmpSCR FFT (Cilk Plus), 2^20 points / 16MB (paper: 2048/118MB); recursive + nested",
		Paradigm:       synth.Cilk,
		Program:        prog,
		FootprintBytes: footprint,
	}
}

// NewQSort models OmpSCR QSort in Cilk form: the annotated program runs
// the real median-of-three partition from internal/kernels on a
// deterministic input, so the recursion tree carries authentic
// data-dependent imbalance.
func NewQSort() *Workload {
	const (
		n         = 1 << 17
		cutoff    = 512
		cPart     = 7 // cycles per element partitioned
		cLeafSort = 9 // cycles per element in the insertion/leaf sort
		footprint = n * 8
	)
	prog := func(ctx trace.Context) {
		data := kernels.RandomSlice(n, 20120523)
		var rec func(ctx trace.Context, s []float64)
		rec = func(ctx trace.Context, s []float64) {
			if len(s) <= cutoff {
				ctx.Compute(int64(len(s)*cLeafSort), streamMisses(int64(len(s)*8), footprint))
				return
			}
			p := kernels.Partition(s)
			ctx.Compute(int64(len(s)*cPart), streamMisses(int64(len(s)*8), footprint))
			ctx.SecBegin("qsort-halves")
			ctx.TaskBegin("lo")
			rec(ctx, s[:p])
			ctx.TaskEnd()
			ctx.TaskBegin("hi")
			rec(ctx, s[p+1:])
			ctx.TaskEnd()
			ctx.SecEnd(false)
		}
		ctx.SecBegin("qsort")
		ctx.TaskBegin("root")
		rec(ctx, data)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	return &Workload{
		Name:           "QSort-Cilk",
		Desc:           "OmpSCR quicksort (Cilk Plus), 2^17 elements / 1MB (paper: 2048/4MB); recursive",
		Paradigm:       synth.Cilk,
		Program:        prog,
		FootprintBytes: footprint,
	}
}

// NewEP models NPB EP: independent random-number batches, embarrassingly
// parallel, negligible memory traffic.
func NewEP() *Workload {
	const (
		batches   = 192
		batchSize = 4096
		cPair     = 55 // cycles per generated pair (LCG + polar transform)
	)
	prog := func(ctx trace.Context) {
		ctx.SecBegin("ep")
		for b := 0; b < batches; b++ {
			ctx.TaskBegin("batch")
			ctx.Compute(int64(batchSize*cPair), 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
		// Serial merge of the partial histograms.
		ctx.Compute(int64(batches*40), 0)
	}
	return &Workload{
		Name:           "NPB-EP",
		Desc:           "NPB EP, 192 batches x 4096 pairs (paper: class B/7MB); embarrassingly parallel",
		Paradigm:       synth.OpenMP,
		Sched:          omprt.SchedStatic,
		Program:        prog,
		FootprintBytes: 1 << 20,
	}
}

// NewFT models NPB FT: a 3-D FFT per step — three parallel line-transform
// sections (the y/z passes stride badly and stream the 32 MB grid) plus a
// pointwise evolve section. Bandwidth-bound: the paper's Fig. 2.
func NewFT() *Workload {
	const (
		n         = 128
		steps     = 2
		cLine     = 1 * 7 * n // cycles per line FFT: n·log2(n)·1 (strided FFTs are load-dominated)
		cEvolve   = 4         // cycles per point
		footprint = int64(n) * n * n * 16
	)
	prog := func(ctx trace.Context) {
		for s := 0; s < steps; s++ {
			for dim, name := range []string{"ft-x", "ft-y", "ft-z"} {
				ctx.SecBegin(name)
				for l := 0; l < n*n; l++ {
					// The x pass walks unit-stride lines
					// (2 KB each, 32 line fetches); the
					// strided y/z passes touch one cache
					// line per element.
					misses := int64(n * 16 / counters.LineSize)
					if dim > 0 {
						misses = n
					}
					ctx.TaskBegin("line")
					ctx.Compute(int64(cLine), misses)
					ctx.TaskEnd()
				}
				ctx.SecEnd(false)
			}
			ctx.SecBegin("ft-evolve")
			for z := 0; z < n; z++ {
				ctx.TaskBegin("plane")
				ctx.Compute(int64(n*n*cEvolve), streamMisses(int64(n*n*16), footprint))
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
		}
	}
	return &Workload{
		Name:           "NPB-FT",
		Desc:           "NPB FT, 128^3 grid / 32MB (paper: B/850MB); bandwidth-bound 3-D FFT",
		Paradigm:       synth.OpenMP,
		Sched:          omprt.SchedStatic,
		Program:        prog,
		FootprintBytes: footprint,
	}
}

// NewCG models NPB CG: per iteration one sparse mat-vec over row blocks
// (streaming the CSR arrays), two reduction-style dot products and three
// vector updates. The ~14 MB matrix does not fit the LLC.
func NewCG() *Workload {
	const (
		rows      = 80_000
		nnzPerRow = 14
		blocks    = 160
		iters     = 20
		cMul      = 4 // cycles per multiply-add in SpMV
		cVec      = 4 // cycles per element in dot/axpy
	)
	footprint := int64(rows*nnzPerRow*12 + 4*rows*8) // vals+cols + vectors
	rowsPerBlock := rows / blocks
	prog := func(ctx trace.Context) {
		for it := 0; it < iters; it++ {
			// q = A·p
			ctx.SecBegin("cg-spmv")
			for b := 0; b < blocks; b++ {
				nnz := rowsPerBlock * nnzPerRow
				bytes := int64(nnz * 12) // 8B value + 4B column index
				ctx.TaskBegin("rows")
				ctx.Compute(int64(nnz*cMul), streamMisses(bytes, footprint))
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
			// Two dot products (parallel partial sums + serial
			// combine).
			for d := 0; d < 2; d++ {
				ctx.SecBegin("cg-dot")
				for b := 0; b < blocks; b++ {
					ctx.TaskBegin("dot")
					ctx.Compute(int64(rowsPerBlock*cVec), streamMisses(int64(rowsPerBlock*16), footprint))
					ctx.TaskEnd()
				}
				ctx.SecEnd(false)
				ctx.Compute(int64(blocks*8), 0)
			}
			// Three axpy-style vector updates.
			ctx.SecBegin("cg-axpy")
			for b := 0; b < blocks; b++ {
				ctx.TaskBegin("axpy")
				ctx.Compute(int64(3*rowsPerBlock*cVec), streamMisses(int64(3*rowsPerBlock*24), footprint))
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
		}
	}
	return &Workload{
		Name:           "NPB-CG",
		Desc:           "NPB CG, 80k rows x 14 nnz / 16MB (paper: B/400MB); bandwidth-bound SpMV",
		Paradigm:       synth.OpenMP,
		Sched:          omprt.SchedStatic,
		Program:        prog,
		FootprintBytes: footprint,
	}
}

// NewIS models NPB IS (integer sort): per ranking iteration, a parallel
// counting loop over key blocks (streaming reads, private histograms), a
// serial histogram merge, and a parallel rank-assignment loop whose
// random scatter writes miss on nearly every key. IS is the paper's
// §VI-B stress case: its tree was the largest before compression (10 GB)
// precisely because the many block tasks are nearly identical — which is
// also why it compresses almost entirely.
func NewIS() *Workload {
	const (
		n       = 1 << 22 // keys: 16 MB of int32, beyond the LLC
		iters   = 10
		blocks  = 256
		cCount  = 3       // cycles per key counted
		cRank   = 5       // cycles per key ranked
		maxKeyB = 1 << 18 // histogram bytes (fits the LLC)
	)
	footprint := int64(n * 4 * 2) // keys + ranks
	keysPerBlock := n / blocks
	prog := func(ctx trace.Context) {
		for it := 0; it < iters; it++ {
			ctx.SecBegin("is-count")
			for b := 0; b < blocks; b++ {
				ctx.TaskBegin("count")
				// Stream the key block; the private histogram
				// stays cache-resident.
				ctx.Compute(int64(keysPerBlock*cCount), streamMisses(int64(keysPerBlock*4), footprint))
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
			// Serial merge of private histograms + prefix sum.
			ctx.Compute(int64(blocks*maxKeyB/1024), 0)
			ctx.SecBegin("is-rank")
			for b := 0; b < blocks; b++ {
				ctx.TaskBegin("rank")
				// Read the keys (streaming) and scatter the
				// ranks: random writes into a 16 MB array miss
				// on almost every key.
				ctx.Compute(int64(keysPerBlock*cRank),
					streamMisses(int64(keysPerBlock*4), footprint)+int64(keysPerBlock))
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
		}
	}
	return &Workload{
		Name:           "NPB-IS",
		Desc:           "NPB IS, 2^22 keys / 32MB (paper: B, 10GB tree pre-compression); scatter-bound",
		Paradigm:       synth.OpenMP,
		Sched:          omprt.SchedStatic,
		Program:        prog,
		FootprintBytes: footprint,
	}
}

// NewMG models NPB MG: multigrid V-cycles whose smoothing sweeps are
// parallel plane loops; the finest level (129³, 17 MB) streams memory,
// the coarser levels fit the LLC.
func NewMG() *Workload {
	const (
		n        = 129
		vcycles  = 2
		cStencil = 10 // cycles per 7-point stencil update
	)
	footprint := int64(n) * n * n * 8
	sweepSec := func(ctx trace.Context, level int, sweeps int) {
		size := n
		for l := 0; l < level; l++ {
			size = (size + 1) / 2
		}
		if size < 3 {
			return
		}
		ws := int64(size) * int64(size) * int64(size) * 8
		for s := 0; s < sweeps; s++ {
			ctx.SecBegin("mg-sweep")
			for z := 1; z < size-1; z++ {
				planeBytes := int64(4 * size * size * 8)
				ctx.TaskBegin("plane")
				ctx.Compute(int64(size*size*cStencil), streamMisses(planeBytes, ws))
				ctx.TaskEnd()
			}
			ctx.SecEnd(false)
		}
	}
	prog := func(ctx trace.Context) {
		levels := 0
		for s := n; s >= 3; s = (s + 1) / 2 {
			levels++
		}
		for v := 0; v < vcycles; v++ {
			// Down-sweep: smooth + residual/restrict per level.
			for l := 0; l < levels; l++ {
				sweepSec(ctx, l, 3)
				sweepSec(ctx, l, 1) // residual+restrict sweep
			}
			// Up-sweep: prolong + smooth.
			for l := levels - 1; l >= 0; l-- {
				sweepSec(ctx, l, 3)
			}
		}
	}
	return &Workload{
		Name:           "NPB-MG",
		Desc:           "NPB MG, 129^3 / 17MB (paper: B/470MB); multigrid V-cycles",
		Paradigm:       synth.OpenMP,
		Sched:          omprt.SchedStatic,
		Program:        prog,
		FootprintBytes: footprint,
	}
}
