package workloads

import (
	"math/rand"
	"testing"

	"prophet/internal/compress"
	"prophet/internal/mem"
	"prophet/internal/trace"
	"prophet/internal/tree"
)

func profile(t *testing.T, prog trace.Program) *tree.Node {
	t.Helper()
	root, _, err := trace.Profile(prog, mem.DRAMConfig{})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if err := root.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	return root
}

func TestAllBenchmarksProfileCleanly(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			root := profile(t, w.Program)
			if root.TotalLen() <= 0 {
				t.Fatal("zero-length program")
			}
			secs := root.TopLevelSections()
			if len(secs) == 0 {
				t.Fatal("no parallel sections")
			}
			for _, s := range secs {
				if s.Counters == nil {
					t.Fatalf("section %q missing counters", s.Name)
				}
			}
		})
	}
}

func TestNamesAndByName(t *testing.T) {
	if len(Names()) != 8 {
		t.Fatalf("Names() = %v, want 8 benchmarks", Names())
	}
	for _, n := range Names() {
		w, err := ByName(n)
		if err != nil || w.Name != n {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if w.Desc == "" || w.Program == nil {
			t.Fatalf("%s: incomplete workload", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestMemoryClasses checks the §VII-C classification: FT/CG/MG/FFT are
// bandwidth-bound (counter traffic above the model's 2000 MB/s floor on
// their hot sections), while MD/EP are not.
func TestMemoryClasses(t *testing.T) {
	heavy := map[string]bool{"NPB-FT": true, "NPB-CG": true, "NPB-MG": true, "FFT-Cilk": true}
	light := map[string]bool{"MD-OMP": true, "NPB-EP": true}
	for _, w := range All() {
		if !heavy[w.Name] && !light[w.Name] {
			continue
		}
		root := profile(t, w.Program)
		maxTraffic := 0.0
		for _, s := range root.TopLevelSections() {
			if tr := s.Counters.TrafficMBps(0); tr > maxTraffic {
				maxTraffic = tr
			}
		}
		if heavy[w.Name] && maxTraffic < 2000 {
			t.Errorf("%s: hottest section traffic %.0f MB/s, want >= 2000 (bandwidth-bound class)", w.Name, maxTraffic)
		}
		if light[w.Name] && maxTraffic > 2000 {
			t.Errorf("%s: traffic %.0f MB/s, want < 2000 (compute-bound class)", w.Name, maxTraffic)
		}
	}
}

func TestLUImbalanceShape(t *testing.T) {
	w, _ := ByName("LU-OMP")
	root := profile(t, w.Program)
	secs := root.TopLevelSections()
	if len(secs) != 511 {
		t.Fatalf("LU sections = %d, want 511 (one per pivot)", len(secs))
	}
	// Early sections have more and longer tasks than late ones.
	first, last := secs[0], secs[len(secs)-2]
	if first.Tasks() <= last.Tasks() {
		t.Errorf("task counts not shrinking: %d vs %d", first.Tasks(), last.Tasks())
	}
	if first.TotalLen() <= last.TotalLen()*10 {
		t.Errorf("work not triangular: first %d vs last %d", first.TotalLen(), last.TotalLen())
	}
}

func TestQSortRecursionAuthentic(t *testing.T) {
	w, _ := ByName("QSort-Cilk")
	root := profile(t, w.Program)
	// Count nested sections (recursion splits) and check imbalance: the
	// two halves of some split must differ (real partitions are uneven).
	splits := 0
	uneven := 0
	root.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.Sec && n.Name == "qsort-halves" {
			splits++
			if len(n.Children) == 2 {
				a, b := n.Children[0].TotalLen(), n.Children[1].TotalLen()
				if a != b {
					uneven++
				}
			}
		}
		return true
	})
	if splits < 100 {
		t.Fatalf("only %d recursion splits", splits)
	}
	if uneven < splits/2 {
		t.Fatalf("recursion suspiciously balanced: %d/%d uneven", uneven, splits)
	}
}

func TestBenchmarkTreesCompressWell(t *testing.T) {
	// §VI-B: regular benchmarks compress by large factors.
	for _, name := range []string{"NPB-FT", "NPB-EP", "MD-OMP", "NPB-CG"} {
		w, _ := ByName(name)
		root := profile(t, w.Program)
		st := compress.Compress(root, compress.Options{Tolerance: compress.DefaultTolerance})
		if st.Reduction() < 0.8 {
			t.Errorf("%s: compression %.1f%%, want >= 80%%", name, 100*st.Reduction())
		}
		if err := root.Validate(); err != nil {
			t.Errorf("%s: compressed tree invalid: %v", name, err)
		}
	}
}

func TestStreamMissesThresholdMatchesCacheSim(t *testing.T) {
	// Cross-check the streaming threshold model against the real cache
	// simulator: a 1 MB-working-set stream on a 64 KB cache misses every
	// line; inside a 16 KB set it hits.
	cfg := mem.CacheConfig{SizeBytes: 1 << 16, Ways: 8, LineBytes: 64}
	if r := mem.StreamMissRate(cfg, 1<<20, 64); r < 0.95 {
		t.Fatalf("cache sim: oversized stream miss rate %g, want ~1 (threshold model assumes 1)", r)
	}
	if r := mem.StreamMissRate(cfg, 1<<14, 64); r > 0.05 {
		t.Fatalf("cache sim: resident stream miss rate %g, want ~0", r)
	}
	// And the workload helper agrees at the LLC scale.
	if streamMisses(1<<20, LLCBytes/2) != 0 {
		t.Error("resident working set should not miss")
	}
	if streamMisses(1<<20, 2*LLCBytes) != (1<<20)/64 {
		t.Error("oversized working set should miss every line")
	}
}

func TestRandomTest1Deterministic(t *testing.T) {
	p := RandomTest1(rand.New(rand.NewSource(5)))
	a := profile(t, p.Program())
	b := profile(t, p.Program())
	if !tree.Equal(a, b, 0) {
		t.Fatal("same params produced different trees")
	}
	sec := a.TopLevelSections()
	if len(sec) != 1 || sec[0].Tasks() != p.Iters {
		t.Fatalf("test1 tree shape wrong: %d sections", len(sec))
	}
}

func TestRandomTest1CoversPatternsAndLocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	patterns := map[Pattern]bool{}
	locks := 0
	for i := 0; i < 200; i++ {
		p := RandomTest1(rng)
		patterns[p.Pattern] = true
		if p.RatioLock1 > 0 {
			locks++
		}
		if p.Iters < 16 || p.MaxWork < p.MinWork {
			t.Fatalf("bad sample: %+v", p)
		}
	}
	if len(patterns) < int(numPatterns) {
		t.Errorf("patterns drawn: %d of %d", len(patterns), numPatterns)
	}
	if locks < 50 {
		t.Errorf("only %d/200 samples have locks", locks)
	}
}

func TestTest1LocksAppearInTree(t *testing.T) {
	p := Test1Params{
		Iters: 10, Pattern: PatternUniform,
		MinWork: 1000, MaxWork: 1000,
		Ratio1: 0.4, RatioLock1: 0.3, Ratio3: 0.3,
		Lock1Prob: 1, Seed: 3,
	}
	root := profile(t, p.Program())
	lNodes := 0
	root.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.L {
			lNodes++
			if n.LockID != 1 {
				t.Errorf("lock id %d", n.LockID)
			}
		}
		return true
	})
	if lNodes != 10 {
		t.Fatalf("L nodes = %d, want 10", lNodes)
	}
}

func TestTest2HasNestedSections(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := RandomTest2(rng)
	p.NestedProb = 1
	root := profile(t, p.Program())
	nested := 0
	root.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.Sec && n.Name == "inner" {
			nested++
		}
		return true
	})
	if nested != p.Outer {
		t.Fatalf("nested sections = %d, want %d", nested, p.Outer)
	}
}

func TestPatternWorkBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for p := Pattern(0); p < numPatterns; p++ {
		if p.String() == "?" {
			t.Fatalf("pattern %d unnamed", p)
		}
		for i := 0; i < 50; i++ {
			w := workFor(p, rng, i, 50, 100, 1000)
			if w < 100 || w > 1000 {
				t.Fatalf("%v: work %d outside [100, 1000]", p, w)
			}
		}
	}
	// Increasing pattern is monotone.
	prev := workFor(PatternIncreasing, rng, 0, 10, 100, 1000)
	for i := 1; i < 10; i++ {
		w := workFor(PatternIncreasing, rng, i, 10, 100, 1000)
		if w < prev {
			t.Fatal("increasing pattern not monotone")
		}
		prev = w
	}
}

// TestISCompressionStressCase: the paper's §VI-B highlight — IS produces
// the biggest tree and compresses almost entirely (10 GB -> manageable).
func TestISCompressionStressCase(t *testing.T) {
	w, err := ByName("NPB-IS")
	if err != nil {
		t.Fatal(err)
	}
	root := profile(t, w.Program)
	st := compress.Compress(root, compress.Options{Tolerance: compress.DefaultTolerance})
	if st.NodesBefore < 10_000 {
		t.Fatalf("IS tree suspiciously small before compression: %d", st.NodesBefore)
	}
	if st.Reduction() < 0.99 {
		t.Fatalf("IS reduction = %.2f%%, want >= 99%% (the paper's RLE-friendly case)", 100*st.Reduction())
	}
	// The rank phase is scatter-bound: its traffic dominates counting's.
	var countTraffic, rankTraffic float64
	for _, sec := range root.TopLevelSections() {
		tr := sec.Counters.TrafficMBps(0)
		switch sec.Name {
		case "is-count":
			countTraffic = tr
		case "is-rank":
			rankTraffic = tr
		}
	}
	if rankTraffic <= countTraffic {
		t.Fatalf("rank traffic %.0f <= count traffic %.0f", rankTraffic, countTraffic)
	}
	// Memory-bound class: the hottest section crosses the model floor.
	if rankTraffic < 2000 {
		t.Fatalf("IS rank traffic %.0f MB/s below memory-bound class", rankTraffic)
	}
}

// TestISNotInFig12Names: IS is reachable by name but not part of the
// paper's Fig. 12 panel set.
func TestISNotInFig12Names(t *testing.T) {
	for _, n := range Names() {
		if n == "NPB-IS" {
			t.Fatal("NPB-IS should not be in the Fig. 12 list")
		}
	}
	if _, err := ByName("NPB-IS"); err != nil {
		t.Fatal(err)
	}
}
