package memmodel

import (
	"context"

	"prophet/internal/clock"
	"prophet/internal/counters"
	"prophet/internal/fit"
	"prophet/internal/sim"
)

// CalibrationPoint is one microbenchmark measurement.
type CalibrationPoint struct {
	// Threads that ran concurrently.
	Threads int
	// SerialDelta is the unconstrained single-thread traffic of this
	// intensity (MB/s) — the Ψ input.
	SerialDelta float64
	// PerThreadDelta is the achieved per-thread traffic (MB/s) — the Ψ
	// output and the Φ input.
	PerThreadDelta float64
	// Omega is the measured CPU stall per miss (cycles) — the Φ output.
	Omega float64
}

// CalibrationData holds every point measured during Calibrate, for reports
// and the Fig.-Eq.6/7 regeneration harness.
type CalibrationData struct {
	Points []CalibrationPoint
}

// intensities are the instruction-cycles-per-miss mixes swept by the
// microbenchmark, from pure streaming (0) to compute-heavy. The paper's
// microbenchmark "makes various degrees of DRAM traffic" the same way.
var intensities = []int64{0, 8, 16, 24, 40, 64, 96, 160, 256}

// measure runs t symmetric streaming threads of the given intensity on a
// fresh machine and returns (perThreadDelta MB/s, omega cycles/miss).
func measure(ctx context.Context, mc sim.Config, hz float64, t int, instrPerMiss int64) (float64, float64, error) {
	const missesPerThread = 20_000
	end, _, err := sim.RunCtx(ctx, mc, func(main *sim.Thread) {
		ws := make([]*sim.Thread, 0, t-1)
		body := func(w *sim.Thread) {
			w.WorkMem(clock.Cycles(instrPerMiss*missesPerThread), missesPerThread)
		}
		for i := 1; i < t; i++ {
			ws = append(ws, main.Spawn(body))
		}
		body(main)
		for _, w := range ws {
			main.Join(w)
		}
	})
	if err != nil {
		return 0, 0, err
	}
	if end <= 0 {
		return 0, 0, nil
	}
	bytesPerCycle := float64(missesPerThread) * counters.LineSize / float64(end)
	delta := bytesPerCycle * hz / 1e6
	omega := (float64(end) - float64(instrPerMiss*missesPerThread)) / missesPerThread
	if omega < 0 {
		omega = 0
	}
	return delta, omega, nil
}

// Calibrate runs the paper's §V-D microbenchmark against the simulated
// machine mc and fits Ψ for every thread count in threadCounts (linear for
// t = 2, a·ln δ + b otherwise, as Eq. (6) does) and Φ as a power law
// (Eq. (7), fitted on points with δ ≥ the traffic floor).
func Calibrate(mc sim.Config, threadCounts []int) (*Model, CalibrationData, error) {
	return CalibrateCtx(context.Background(), mc, threadCounts)
}

// CalibrateCtx is Calibrate with cancellation: the microbenchmark sweep
// checks ctx between machine runs and aborts with an error wrapping
// ctx.Err().
func CalibrateCtx(ctx context.Context, mc sim.Config, threadCounts []int) (*Model, CalibrationData, error) {
	// Context-switch noise would blur the symmetric measurement.
	mc.ContextSwitch = -1
	hz := clock.DefaultHz
	m := &Model{
		Hz:             hz,
		MinMPI:         DefaultMinMPI,
		MinTrafficMBps: DefaultMinTrafficMBps,
		Psi:            make(map[int]Psi),
	}
	var data CalibrationData

	// Single-thread sweep: the serial δ and the unloaded ω for each
	// intensity.
	serialDelta := make([]float64, len(intensities))
	serialOmega := make([]float64, len(intensities))
	for i, ipm := range intensities {
		d, w, err := measure(ctx, mc, hz, 1, ipm)
		if err != nil {
			return nil, data, err
		}
		serialDelta[i] = d
		serialOmega[i] = w
		data.Points = append(data.Points, CalibrationPoint{Threads: 1, SerialDelta: d, PerThreadDelta: d, Omega: w})
	}

	// Multi-thread sweeps: Ψ inputs/outputs and Φ points.
	var phiX, phiY []float64
	for _, t := range threadCounts {
		if t < 2 {
			continue
		}
		var xs, ys []float64
		for i, ipm := range intensities {
			d, w, err := measure(ctx, mc, hz, t, ipm)
			if err != nil {
				return nil, data, err
			}
			data.Points = append(data.Points, CalibrationPoint{
				Threads: t, SerialDelta: serialDelta[i], PerThreadDelta: d, Omega: w,
			})
			xs = append(xs, serialDelta[i])
			ys = append(ys, d)
			// Φ relates *achieved* traffic to the per-miss stall.
			// Like the paper's microbenchmark ("we manipulate
			// memory access patterns so that all memory
			// instructions miss L1 and L2"), only pure-streaming
			// points are used — mixed compute dilutes δ without
			// changing ω and would confound the fit — and only
			// saturated ones (ω above the unloaded floor), since
			// Eq. (7) is declared valid only for δ_t ≥ 2000 MB/s.
			if i == 0 && d > 0 && w > 1.05*serialOmega[i] {
				phiX = append(phiX, d)
				phiY = append(phiY, w)
			}
		}
		var psi Psi
		if t == 2 {
			l, err := fit.Linear(xs, ys)
			if err != nil {
				return nil, data, err
			}
			psi = Psi{Kind: PsiLinear, A: l.A, B: l.B}
		} else {
			l, err := fit.LogLinear(xs, ys)
			if err != nil {
				return nil, data, err
			}
			psi = Psi{Kind: PsiLog, A: l.A, B: l.B}
		}
		m.Psi[t] = psi
	}

	if len(phiX) < 2 {
		// Machine never saturated at these thread counts: fall back
		// to all measured points (Φ will be nearly flat, β ≈ 1, which
		// is the right answer for such a machine).
		for _, p := range data.Points {
			if p.PerThreadDelta > 0 && p.Omega > 0 {
				phiX = append(phiX, p.PerThreadDelta)
				phiY = append(phiY, p.Omega)
			}
		}
	}
	phi, err := fit.PowerLaw(phiX, phiY)
	if err != nil {
		return nil, data, err
	}
	m.Phi = phi
	return m, data, nil
}
