package memmodel

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"prophet/internal/clock"
	"prophet/internal/counters"
	"prophet/internal/mem"
	"prophet/internal/sim"
	"prophet/internal/tree"
)

func TestPaperModelPhiMatchesEq7(t *testing.T) {
	m := PaperModel()
	// Eq. (7): ω = 101481·δ^-0.964; spot-check δ = 2000 MB/s.
	want := 101481 * math.Pow(2000, -0.964)
	if got := m.Omega(2000); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("Omega(2000) = %g, want %g", got, want)
	}
}

func TestPaperModelPsiMatchesEq6(t *testing.T) {
	m := PaperModel()
	// Eq. (6): δ2 = (1.35·δ + 1758)/2 at δ = 4000 -> 3579.
	p := m.Psi[2]
	if got, want := p.Eval(4000), (1.35*4000+1758)/2; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Psi2(4000) = %g, want %g", got, want)
	}
	// δ12 = (6314·ln δ − 39621)/12 at δ = 8000.
	p12 := m.Psi[12]
	want := (6314*math.Log(8000) - 39621) / 12
	if got := p12.Eval(8000); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Psi12(8000) = %g, want %g", got, want)
	}
}

func TestPsiClampedToSerialTraffic(t *testing.T) {
	// Per-thread achieved traffic can never exceed the unconstrained
	// serial traffic.
	p := Psi{Kind: PsiLinear, A: 2, B: 1000} // nonsense fit that overshoots
	if got := p.Eval(500); got > 500 {
		t.Fatalf("Psi not clamped: %g > 500", got)
	}
	if got := p.Eval(0.0001); got < 1 {
		t.Fatalf("Psi floor broken: %g", got)
	}
}

// lowTrafficSample is EP-like: almost no misses.
func lowTrafficSample() counters.Sample {
	return counters.Sample{Instructions: 1_000_000, Cycles: 1_050_000, LLCMisses: 100}
}

// heavyTrafficSample is FT-like: one miss every 20 instructions.
func heavyTrafficSample() counters.Sample {
	n := int64(1_000_000)
	d := n / 20
	return counters.Sample{
		Instructions: n,
		Cycles:       clock.Cycles(float64(n) + 40*float64(d)),
		LLCMisses:    d,
	}
}

func TestBurdenGates(t *testing.T) {
	m := PaperModel()
	if b := m.Burden(lowTrafficSample(), 12); b != 1 {
		t.Fatalf("low-MPI burden = %g, want 1 (Assumption 5)", b)
	}
	if b := m.Burden(heavyTrafficSample(), 1); b != 1 {
		t.Fatalf("single-thread burden = %g, want 1", b)
	}
	if b := m.Burden(counters.Sample{}, 8); b != 1 {
		t.Fatalf("empty-sample burden = %g, want 1", b)
	}
}

func TestBurdenGrowsWithThreads(t *testing.T) {
	m := PaperModel()
	s := heavyTrafficSample()
	b2 := m.Burden(s, 2)
	b4 := m.Burden(s, 4)
	b12 := m.Burden(s, 12)
	if b2 < 1 || b4 < b2-1e-9 || b12 < b4-1e-9 {
		t.Fatalf("burden not monotone: b2=%g b4=%g b12=%g", b2, b4, b12)
	}
	if b12 <= 1.05 {
		t.Fatalf("heavy-traffic 12-thread burden = %g, want clearly > 1", b12)
	}
	if b12 > 6 {
		t.Fatalf("burden implausibly large: %g", b12)
	}
}

func TestBurdenAtLeastOne(t *testing.T) {
	m := PaperModel()
	samples := []counters.Sample{
		lowTrafficSample(),
		heavyTrafficSample(),
		{Instructions: 10, Cycles: 10_000, LLCMisses: 9},
	}
	for _, s := range samples {
		for _, th := range []int{2, 3, 4, 6, 8, 12, 16} {
			if b := m.Burden(s, th); b < 1 {
				t.Fatalf("burden < 1: %g for %+v x%d", b, s, th)
			}
		}
	}
}

func TestPsiInterpolationForUncalibratedCounts(t *testing.T) {
	m := PaperModel() // has 2, 4, 8, 12
	s := heavyTrafficSample()
	b6 := m.Burden(s, 6)
	b4 := m.Burden(s, 4)
	b8 := m.Burden(s, 8)
	lo, hi := math.Min(b4, b8), math.Max(b4, b8)
	if b6 < lo-0.2 || b6 > hi+0.2 {
		t.Fatalf("burden(6)=%g not near [%g, %g]", b6, lo, hi)
	}
	// Above the calibrated range: clamps to the largest.
	if b := m.Burden(s, 64); b < m.Burden(s, 12)-1e-9 {
		t.Fatalf("burden(64)=%g below burden(12)", b)
	}
}

func simCfg() sim.Config {
	return sim.Config{Cores: 12, Quantum: 50_000, ContextSwitch: -1, DRAM: mem.DefaultDRAM()}
}

func TestCalibrationShapes(t *testing.T) {
	m, data, err := Calibrate(simCfg(), []int{2, 4, 6, 8, 10, 12})
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if len(data.Points) == 0 {
		t.Fatal("no calibration points")
	}
	// Eq. (7) analogue: Φ must be decreasing in δ (negative exponent).
	if m.Phi.B >= 0 {
		t.Fatalf("Phi exponent = %g, want negative (paper: -0.964)", m.Phi.B)
	}
	if m.Phi.B < -1.3 {
		t.Fatalf("Phi exponent = %g, implausibly steep", m.Phi.B)
	}
	// Ψ forms as in Eq. (6).
	if m.Psi[2].Kind != PsiLinear {
		t.Error("Psi[2] should be linear")
	}
	for _, th := range []int{4, 8, 12} {
		if m.Psi[th].Kind != PsiLog {
			t.Errorf("Psi[%d] should be log-linear", th)
		}
	}
	// Saturation: at high serial traffic, per-thread achieved traffic
	// must fall as threads increase.
	d := 3500.0
	p2 := m.Psi[2].Eval(d)
	p12 := m.Psi[12].Eval(d)
	if p12 >= p2 {
		t.Fatalf("Psi not saturating: psi2(%g)=%g <= psi12=%g", d, p2, p12)
	}
}

// TestCalibrationPredictsSaturatedSPMD is the paper's §VII-C validation
// claim: "in more than 300 samples that show speedup saturation, we were
// able to predict the speedups mostly within a 30% error bound". Here,
// SPMD memory-bound programs are run for real on the simulated machine and
// compared against the burden-factor prediction.
func TestCalibrationPredictsSaturatedSPMD(t *testing.T) {
	mc := simCfg()
	m, _, err := Calibrate(mc, []int{2, 4, 6, 8, 10, 12})
	if err != nil {
		t.Fatal(err)
	}
	intensitiesUnderTest := []int64{4, 16, 48}
	threads := []int{4, 8, 12}
	checked, within := 0, 0
	for _, ipm := range intensitiesUnderTest {
		const d = 30_000 // misses per thread
		n := ipm * d
		serial := clock.Cycles(float64(n) + 40*float64(d))
		sample := counters.Sample{Instructions: n, Cycles: serial, LLCMisses: d}
		for _, th := range threads {
			// Real: th symmetric threads on the machine.
			end, _ := sim.Run(mc, func(main *sim.Thread) {
				var ws []*sim.Thread
				body := func(w *sim.Thread) {
					w.WorkMem(clock.Cycles(n), d)
				}
				for i := 1; i < th; i++ {
					ws = append(ws, main.Spawn(body))
				}
				body(main)
				for _, w := range ws {
					main.Join(w)
				}
			})
			realSpeedup := float64(serial) * float64(th) / float64(end)
			// Predicted: ideal division by th, dilated by β.
			beta := m.Burden(sample, th)
			predSpeedup := float64(th) / beta
			checked++
			relErr := math.Abs(predSpeedup-realSpeedup) / realSpeedup
			if relErr <= 0.30 {
				within++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cases checked")
	}
	if frac := float64(within) / float64(checked); frac < 0.75 {
		t.Fatalf("only %.0f%% of saturated SPMD predictions within 30%% (paper: 'mostly')", 100*frac)
	}
}

func TestAssignBurdens(t *testing.T) {
	m := PaperModel()
	sec1 := tree.NewSec("hot", tree.NewTask("t", tree.NewU(100)))
	s := heavyTrafficSample()
	sec1.Counters = &s
	sec2 := tree.NewSec("cold", tree.NewTask("t", tree.NewU(100)))
	root := tree.NewRoot(sec1, sec2)
	m.AssignBurdens(root, []int{2, 4, 8, 12})
	if sec1.Burden == nil || sec1.Burden[12] <= 1 {
		t.Fatalf("hot section burden not assigned: %v", sec1.Burden)
	}
	if sec2.Burden != nil {
		t.Fatalf("counter-less section got burdens: %v", sec2.Burden)
	}
	if sec1.BurdenFor(12) != sec1.Burden[12] {
		t.Fatal("BurdenFor disagrees with map")
	}
}

func TestModelString(t *testing.T) {
	s := PaperModel().String()
	for _, want := range []string{"Phi:", "Psi[ 2]", "Psi[12]", "ln(d)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

// TestAssignBurdensAveraged: §V — multiple executions of the same static
// section share one averaged burden factor.
func TestAssignBurdensAveraged(t *testing.T) {
	m := PaperModel()
	hot := heavyTrafficSample()
	// Two executions of section "x": one hot, one cold.
	sec1 := tree.NewSec("x", tree.NewTask("t", tree.NewU(100)))
	sec1.Counters = &hot
	cold := counters.Sample{Instructions: 1_000_000, Cycles: 1_050_000, LLCMisses: 10}
	sec2 := tree.NewSec("x", tree.NewTask("t", tree.NewU(100)))
	sec2.Counters = &cold
	// A differently named section keeps its own factor.
	other := tree.NewSec("y", tree.NewTask("t", tree.NewU(100)))
	oc := hot
	other.Counters = &oc
	root := tree.NewRoot(sec1, sec2, other)

	m.AssignBurdensAveraged(root, []int{12})
	bHot := m.Burden(hot, 12)
	bCold := m.Burden(cold, 12)
	wantAvg := (bHot + bCold) / 2
	if math.Abs(sec1.Burden[12]-wantAvg) > 1e-12 || math.Abs(sec2.Burden[12]-wantAvg) > 1e-12 {
		t.Fatalf("averaged burden = %g/%g, want %g", sec1.Burden[12], sec2.Burden[12], wantAvg)
	}
	if math.Abs(other.Burden[12]-bHot) > 1e-12 {
		t.Fatalf("independent section burden = %g, want %g", other.Burden[12], bHot)
	}
}

// TestAssignBurdensAveragedWeightsRepeats: a Repeat-compressed section
// counts as Reps executions in the average.
func TestAssignBurdensAveragedWeightsRepeats(t *testing.T) {
	m := PaperModel()
	hot := heavyTrafficSample()
	cold := counters.Sample{Instructions: 1_000_000, Cycles: 1_050_000, LLCMisses: 10}
	s1 := tree.NewSec("x", tree.NewTask("t", tree.NewU(100)))
	s1.Counters = &hot
	s1.Repeat = 3
	s2 := tree.NewSec("x", tree.NewTask("t", tree.NewU(100)))
	s2.Counters = &cold
	root := tree.NewRoot(s1, s2)
	m.AssignBurdensAveraged(root, []int{12})
	bHot := m.Burden(hot, 12)
	bCold := m.Burden(cold, 12)
	want := (3*bHot + bCold) / 4
	if math.Abs(s1.Burden[12]-want) > 1e-12 {
		t.Fatalf("weighted average = %g, want %g", s1.Burden[12], want)
	}
}

// TestModelJSONRoundTrip: calibrate once, save, reload, identical burdens.
func TestModelJSONRoundTrip(t *testing.T) {
	orig := PaperModel()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	s := heavyTrafficSample()
	for _, th := range []int{2, 4, 6, 8, 12} {
		a, b := orig.Burden(s, th), back.Burden(s, th)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("t=%d: burden %g != %g after round trip", th, a, b)
		}
	}
	if _, err := json.Marshal(&back); err != nil {
		t.Fatal(err)
	}
	var bad Model
	if err := json.Unmarshal([]byte(`{"psi":[{"threads":2,"kind":"bogus"}]}`), &bad); err == nil {
		t.Fatal("bogus Psi kind accepted")
	}
}
