package memmodel

import (
	"testing"

	"prophet/internal/clock"
	"prophet/internal/counters"
)

// TestTableIVClassification walks every cell of Table IV.
func TestTableIVClassification(t *testing.T) {
	cells := []struct {
		trend   MPITrend
		traffic TrafficClass
		want    Expectation
	}{
		{TrendGrows, TrafficLow, ExpectLikelyScalable},
		{TrendGrows, TrafficModerate, ExpectSlowdown},
		{TrendGrows, TrafficHeavy, ExpectSlowdownSevere},
		{TrendSimilar, TrafficLow, ExpectScalable},
		{TrendSimilar, TrafficModerate, ExpectSlowdown},
		{TrendSimilar, TrafficHeavy, ExpectSlowdownSevere},
		{TrendShrinks, TrafficLow, ExpectSuperlinear},
		{TrendShrinks, TrafficModerate, ExpectUnknown},
		{TrendShrinks, TrafficHeavy, ExpectUnknown},
	}
	for _, c := range cells {
		if got := Classify(c.trend, c.traffic); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.trend, c.traffic, got, c.want)
		}
	}
}

func TestClassifyTrafficThresholds(t *testing.T) {
	m := PaperModel() // floor 2000 MB/s
	mk := func(trafficMBps float64) counters.Sample {
		// traffic = D*64*hz/(T*1e6); pick T = hz cycles (1s) so
		// D = traffic*1e6/64.
		return counters.Sample{
			Instructions: 1 << 40,
			Cycles:       clock.Cycles(m.Hz),
			LLCMisses:    int64(trafficMBps * 1e6 / 64),
		}
	}
	if got := m.ClassifyTraffic(mk(500)); got != TrafficLow {
		t.Errorf("500 MB/s -> %v, want low", got)
	}
	if got := m.ClassifyTraffic(mk(3000)); got != TrafficModerate {
		t.Errorf("3000 MB/s -> %v, want moderate", got)
	}
	if got := m.ClassifyTraffic(mk(9000)); got != TrafficHeavy {
		t.Errorf("9000 MB/s -> %v, want heavy", got)
	}
}

func TestClassifySampleUsesSimilarRow(t *testing.T) {
	m := PaperModel()
	low := counters.Sample{Instructions: 1e9, Cycles: 1e9, LLCMisses: 10}
	if got := m.ClassifySample(low); got != ExpectScalable {
		t.Errorf("low-traffic sample -> %v, want scalable", got)
	}
	hot := heavyTrafficSample()
	if got := m.ClassifySample(hot); got == ExpectScalable {
		t.Errorf("heavy sample classified scalable")
	}
}

func TestClassificationStrings(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []string{
		TrendGrows.String(), TrendSimilar.String(), TrendShrinks.String(),
		TrafficLow.String(), TrafficModerate.String(), TrafficHeavy.String(),
		ExpectScalable.String(), ExpectLikelyScalable.String(), ExpectSlowdown.String(),
		ExpectSlowdownSevere.String(), ExpectSuperlinear.String(), ExpectUnknown.String(),
	} {
		if s == "?" || s == "" {
			t.Fatalf("unnamed enum value")
		}
		names[s] = true
	}
	if len(names) != 12 {
		t.Fatalf("duplicate names: %v", names)
	}
}
