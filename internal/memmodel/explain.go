package memmodel

import (
	"fmt"

	"prophet/internal/counters"
)

// Explanation exposes every intermediate quantity of the burden-factor
// computation (Eq. 1–5), so users can see *why* a section received its
// β_t — the transparency a first-order model owes its users.
type Explanation struct {
	Threads int
	// Inputs (from the section's counters).
	N   int64   // instructions
	T   int64   // cycles
	D   int64   // LLC misses
	MPI float64 // D/N
	// DeltaMBps is the serial DRAM traffic δ.
	DeltaMBps float64
	// Gate is non-empty when an assumption gate short-circuited the
	// model (β = 1), naming the §V assumption that fired.
	Gate string
	// Model terms (zero when gated).
	Omega      float64 // ω = Φ(δ): per-miss stall of the serial run
	CPICache   float64 // CPI$ from Eq. (1)
	DeltaT     float64 // δ_t = Ψ(δ): per-thread traffic under contention
	OmegaT     float64 // ω_t = Φ(δ_t)
	Burden     float64 // β_t from Eq. (3)
	MemoryTime float64 // fraction of T attributed to memory (ω·D/T)
}

// Explain computes the burden factor for (s, t) and returns every
// intermediate. Explain(s, t).Burden always equals Burden(s, t).
func (m *Model) Explain(s counters.Sample, t int) Explanation {
	e := Explanation{
		Threads:   t,
		N:         s.Instructions,
		T:         int64(s.Cycles),
		D:         s.LLCMisses,
		MPI:       s.MPI(),
		DeltaMBps: s.TrafficMBps(m.Hz),
		Burden:    1,
	}
	switch {
	case t <= 1:
		e.Gate = "single thread"
		return e
	case s.Instructions == 0 || s.Cycles == 0:
		e.Gate = "no profile data"
		return e
	case e.MPI < m.MinMPI:
		e.Gate = fmt.Sprintf("Assumption 5: MPI %.5f below %.5f", e.MPI, m.MinMPI)
		return e
	case e.DeltaMBps < m.MinTrafficMBps:
		e.Gate = fmt.Sprintf("traffic %.0f MB/s below Eq.(6/7) floor %.0f", e.DeltaMBps, m.MinTrafficMBps)
		return e
	}
	psi, ok := m.psiFor(t)
	if !ok {
		e.Gate = "no Psi calibration"
		return e
	}
	e.Omega = m.Omega(e.DeltaMBps)
	e.DeltaT = psi.Eval(e.DeltaMBps)
	e.OmegaT = m.Omega(e.DeltaT)
	if e.OmegaT < e.Omega {
		e.OmegaT = e.Omega
	}
	n := float64(s.Instructions)
	d := float64(s.LLCMisses)
	e.CPICache = (float64(s.Cycles) - e.Omega*d) / n
	if e.CPICache < 0 {
		e.CPICache = 0
	}
	e.Burden = (e.CPICache + e.MPI*e.OmegaT) / (e.CPICache + e.MPI*e.Omega)
	if e.Burden < 1 {
		e.Burden = 1
	}
	e.MemoryTime = e.Omega * d / float64(s.Cycles)
	return e
}

// String renders the explanation as a short multi-line report.
func (e Explanation) String() string {
	if e.Gate != "" {
		return fmt.Sprintf("t=%d: beta=1 (%s)", e.Threads, e.Gate)
	}
	return fmt.Sprintf(
		"t=%d: N=%d T=%d D=%d MPI=%.4f delta=%.0fMB/s\n"+
			"  omega=%.1f cyc/miss, CPI$=%.3f, delta_t=%.0fMB/s, omega_t=%.1f\n"+
			"  beta=%.3f (memory is %.0f%% of serial time)",
		e.Threads, e.N, e.T, e.D, e.MPI, e.DeltaMBps,
		e.Omega, e.CPICache, e.DeltaT, e.OmegaT,
		e.Burden, 100*e.MemoryTime)
}
