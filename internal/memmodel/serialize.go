package memmodel

import (
	"encoding/json"
	"fmt"
	"sort"

	"prophet/internal/fit"
)

// jsonModel is the stable wire form of a calibrated model, so a
// calibration can be saved once (cmd/calibrate -o) and reused across runs
// — the paper's Ψ/Φ constants were likewise measured once per machine.
type jsonModel struct {
	Hz             float64   `json:"hz"`
	MinMPI         float64   `json:"min_mpi"`
	MinTrafficMBps float64   `json:"min_traffic_mbps"`
	PhiA           float64   `json:"phi_a"`
	PhiB           float64   `json:"phi_b"`
	Psi            []jsonPsi `json:"psi"`
}

type jsonPsi struct {
	Threads int     `json:"threads"`
	Kind    string  `json:"kind"` // "linear" or "log"
	A       float64 `json:"a"`
	B       float64 `json:"b"`
}

// MarshalJSON encodes the model deterministically (ascending thread
// counts).
func (m *Model) MarshalJSON() ([]byte, error) {
	j := jsonModel{
		Hz:             m.Hz,
		MinMPI:         m.MinMPI,
		MinTrafficMBps: m.MinTrafficMBps,
		PhiA:           m.Phi.A,
		PhiB:           m.Phi.B,
	}
	ts := make([]int, 0, len(m.Psi))
	for t := range m.Psi {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	for _, t := range ts {
		p := m.Psi[t]
		kind := "linear"
		if p.Kind == PsiLog {
			kind = "log"
		}
		j.Psi = append(j.Psi, jsonPsi{Threads: t, Kind: kind, A: p.A, B: p.B})
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a model written by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var j jsonModel
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	m.Hz = j.Hz
	m.MinMPI = j.MinMPI
	m.MinTrafficMBps = j.MinTrafficMBps
	m.Phi = fit.Power{A: j.PhiA, B: j.PhiB}
	m.Psi = make(map[int]Psi, len(j.Psi))
	for _, p := range j.Psi {
		var kind PsiKind
		switch p.Kind {
		case "linear":
			kind = PsiLinear
		case "log":
			kind = PsiLog
		default:
			return fmt.Errorf("memmodel: unknown Psi kind %q", p.Kind)
		}
		m.Psi[p.Threads] = Psi{Kind: kind, A: p.A, B: p.B}
	}
	return nil
}
