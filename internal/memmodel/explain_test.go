package memmodel

import (
	"math"
	"strings"
	"testing"

	"prophet/internal/counters"
)

// TestExplainAgreesWithBurden: Explain must compute exactly Burden for
// any sample/thread combination.
func TestExplainAgreesWithBurden(t *testing.T) {
	m := PaperModel()
	samples := []counters.Sample{
		lowTrafficSample(),
		heavyTrafficSample(),
		{},
		{Instructions: 1000, Cycles: 1_000_000, LLCMisses: 900},
	}
	for _, s := range samples {
		for _, th := range []int{1, 2, 4, 6, 8, 12, 20} {
			want := m.Burden(s, th)
			got := m.Explain(s, th).Burden
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("Explain(%+v, %d).Burden = %g, Burden = %g", s, th, got, want)
			}
		}
	}
}

func TestExplainGates(t *testing.T) {
	m := PaperModel()
	if e := m.Explain(heavyTrafficSample(), 1); !strings.Contains(e.Gate, "single thread") {
		t.Errorf("gate = %q", e.Gate)
	}
	if e := m.Explain(counters.Sample{}, 4); !strings.Contains(e.Gate, "no profile") {
		t.Errorf("gate = %q", e.Gate)
	}
	if e := m.Explain(lowTrafficSample(), 4); !strings.Contains(e.Gate, "Assumption 5") {
		t.Errorf("gate = %q", e.Gate)
	}
	// Moderate MPI but low absolute traffic: the Eq. (6/7) floor.
	slow := counters.Sample{Instructions: 1_000, Cycles: 10_000_000, LLCMisses: 100}
	if e := m.Explain(slow, 4); !strings.Contains(e.Gate, "floor") {
		t.Errorf("gate = %q (delta=%g)", e.Gate, e.DeltaMBps)
	}
}

func TestExplainInternalsConsistent(t *testing.T) {
	m := PaperModel()
	e := m.Explain(heavyTrafficSample(), 12)
	if e.Gate != "" {
		t.Fatalf("unexpected gate %q", e.Gate)
	}
	if e.OmegaT < e.Omega {
		t.Error("omega_t below serial omega")
	}
	if e.DeltaT > e.DeltaMBps {
		t.Error("per-thread traffic above serial traffic")
	}
	if e.MemoryTime < 0 || e.MemoryTime > 1.5 {
		t.Errorf("memory time fraction %g implausible", e.MemoryTime)
	}
	// Eq. (3) recomputed from the exposed terms.
	beta := (e.CPICache + e.MPI*e.OmegaT) / (e.CPICache + e.MPI*e.Omega)
	if math.Abs(beta-e.Burden) > 1e-12 {
		t.Errorf("exposed terms do not reproduce beta: %g vs %g", beta, e.Burden)
	}
	s := e.String()
	for _, want := range []string{"beta=", "omega_t", "MB/s"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(m.Explain(lowTrafficSample(), 4).String(), "beta=1") {
		t.Error("gated String() should say beta=1")
	}
}
