package memmodel

import "prophet/internal/counters"

// This file implements Table IV of the paper: the expected-speedup
// classification based on memory behaviour. The rows are the trend of LLC
// misses per instruction from serial to parallel execution; the columns
// are the observed serial memory traffic. The lightweight tool only
// *predicts* within the middle row (Par ≅ Ser, Assumption 4); the other
// rows are reported as qualitative classes, exactly as the table does.

// MPITrend is the row of Table IV: how LLC misses per instruction change
// from serial to parallel execution.
type MPITrend uint8

// MPI trends.
const (
	// TrendGrows is "Par ≫ Ser": parallelization increases the miss
	// rate (e.g. cache thrashing between threads).
	TrendGrows MPITrend = iota
	// TrendSimilar is "Par ≅ Ser": the rate is roughly unchanged — the
	// only row the lightweight model quantifies (Assumption 4).
	TrendSimilar
	// TrendShrinks is "Par ≪ Ser": parallelization decreases the rate
	// (e.g. the working set now fits the combined caches).
	TrendShrinks
)

// String names the trend in the table's notation.
func (t MPITrend) String() string {
	switch t {
	case TrendGrows:
		return "Par >> Ser"
	case TrendSimilar:
		return "Par ~= Ser"
	case TrendShrinks:
		return "Par << Ser"
	}
	return "?"
}

// TrafficClass is the column of Table IV.
type TrafficClass uint8

// Traffic classes.
const (
	TrafficLow TrafficClass = iota
	TrafficModerate
	TrafficHeavy
)

// String names the class.
func (c TrafficClass) String() string {
	switch c {
	case TrafficLow:
		return "low"
	case TrafficModerate:
		return "moderate"
	case TrafficHeavy:
		return "heavy"
	}
	return "?"
}

// Expectation is a cell of Table IV.
type Expectation uint8

// Expected speedup classes, in the table's vocabulary.
const (
	// ExpectScalable: memory will not limit the speedup.
	ExpectScalable Expectation = iota
	// ExpectLikelyScalable: probably fine, but the growing miss rate
	// could start to hurt.
	ExpectLikelyScalable
	// ExpectSlowdown: memory contention will cost some speedup.
	ExpectSlowdown
	// ExpectSlowdownSevere: memory contention will dominate
	// ("Slowdown++" in the table).
	ExpectSlowdownSevere
	// ExpectSuperlinear: effective cache growth may push the speedup
	// past linear (the case Kismet models and this tool does not).
	ExpectSuperlinear
	// ExpectUnknown: the table leaves the cell blank.
	ExpectUnknown
)

// String names the expectation.
func (e Expectation) String() string {
	switch e {
	case ExpectScalable:
		return "scalable"
	case ExpectLikelyScalable:
		return "likely scalable"
	case ExpectSlowdown:
		return "slowdown"
	case ExpectSlowdownSevere:
		return "slowdown++"
	case ExpectSuperlinear:
		return "scalable or superlinear"
	case ExpectUnknown:
		return "-"
	}
	return "?"
}

// ClassifyTraffic maps a serial profile's traffic onto Table IV's columns
// using the model's calibrated floor: below MinTrafficMBps is low, beyond
// three times the floor is heavy.
func (m *Model) ClassifyTraffic(s counters.Sample) TrafficClass {
	d := s.TrafficMBps(m.Hz)
	switch {
	case d < m.MinTrafficMBps:
		return TrafficLow
	case d < 3*m.MinTrafficMBps:
		return TrafficModerate
	default:
		return TrafficHeavy
	}
}

// Classify returns the Table IV cell for an observed MPI trend and traffic
// class.
func Classify(trend MPITrend, traffic TrafficClass) Expectation {
	switch trend {
	case TrendGrows:
		switch traffic {
		case TrafficLow:
			return ExpectLikelyScalable
		case TrafficModerate:
			return ExpectSlowdown
		default:
			return ExpectSlowdownSevere
		}
	case TrendSimilar:
		switch traffic {
		case TrafficLow:
			return ExpectScalable
		case TrafficModerate:
			return ExpectSlowdown
		default:
			return ExpectSlowdownSevere
		}
	case TrendShrinks:
		if traffic == TrafficLow {
			return ExpectSuperlinear
		}
		return ExpectUnknown
	}
	return ExpectUnknown
}

// ClassifySample classifies a serial-profile sample under the tool's
// operating assumption (Assumption 4: the MPI trend is "similar"). This is
// the row of Table IV the paper's predictions live in.
func (m *Model) ClassifySample(s counters.Sample) Expectation {
	return Classify(TrendSimilar, m.ClassifyTraffic(s))
}
