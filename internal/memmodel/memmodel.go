// Package memmodel implements the paper's lightweight memory performance
// model (§V): burden factors β_t that dilate a section's computation when
// the parallelized program would saturate DRAM bandwidth.
//
// The model follows the paper's equations exactly:
//
//	T = CPI$·N + ω·D                        (Eq. 1)
//	β_t = (CPI$ + MPI·ω_t) / (CPI$ + MPI·ω)  (Eq. 3)
//	δ_t = Ψ(δ)                               (Eq. 4)
//	ω_t = Φ(δ_t)                             (Eq. 5)
//
// Ψ (per-thread achieved traffic as a function of serial traffic) and Φ
// (per-miss stall as a function of achieved traffic) are empirical: the
// paper measures them with a microbenchmark on its Westmere and fits
// Eq. (6)/(7); this reproduction runs the same microbenchmark against the
// simulated machine (Calibrate) and fits the same functional forms —
// linear for two threads, a·ln δ + b for four or more, and a power law for
// Φ. PaperModel returns the paper's literal coefficients for cross-checks.
package memmodel

import (
	"fmt"
	"sort"

	"prophet/internal/clock"
	"prophet/internal/counters"
	"prophet/internal/fit"
	"prophet/internal/tree"
)

// Defaults from §V: assumptions 4 and 5.
const (
	// DefaultMinMPI is the LLC-misses-per-instruction floor below which
	// β_t = 1 (Assumption 5: "less than 0.001").
	DefaultMinMPI = 0.001
	// DefaultMinTrafficMBps is Eq. (6)/(7)'s validity floor
	// ("only when δ ≥ 2000 MB/s").
	DefaultMinTrafficMBps = 2000
)

// PsiKind selects Ψ's functional form for one thread count.
type PsiKind uint8

// Ψ forms used by the paper's Eq. (6).
const (
	PsiLinear PsiKind = iota // δ_t = (A·δ + B)   (t = 2 in the paper)
	PsiLog                   // δ_t = A·ln δ + B  (t >= 4)
)

// Psi is the fitted per-thread traffic function for one thread count,
// already divided by t (the paper's right-hand sides carry the /t).
type Psi struct {
	Kind PsiKind
	A, B float64
}

// Eval returns the predicted per-thread achieved traffic (MB/s) when t
// threads each behave like the profiled serial program with traffic δ.
// The result is clamped to (0, δ]: contention never increases per-thread
// traffic.
func (p Psi) Eval(delta float64) float64 {
	var v float64
	switch p.Kind {
	case PsiLog:
		v = fit.LogLine{A: p.A, B: p.B}.Eval(delta)
	default:
		v = p.A*delta + p.B
	}
	if v > delta {
		v = delta
	}
	if v < 1 {
		v = 1
	}
	return v
}

// Model is a calibrated memory performance model.
type Model struct {
	// Hz converts cycles to seconds for MB/s traffic figures.
	Hz float64
	// MinMPI and MinTrafficMBps gate the model (Assumptions 4/5).
	MinMPI         float64
	MinTrafficMBps float64
	// Psi maps thread count to the fitted Ψ.
	Psi map[int]Psi
	// Phi is the fitted ω = A·δ^B power law (Eq. 7), δ in MB/s, ω in
	// cycles per miss.
	Phi fit.Power
}

// PaperModel returns the paper's literal Eq. (6)/(7) coefficients, fitted
// on their 12-core Westmere. Useful as a documented reference point and to
// unit-test the equation plumbing against numbers printed in the paper.
func PaperModel() *Model {
	return &Model{
		Hz:             clock.DefaultHz,
		MinMPI:         DefaultMinMPI,
		MinTrafficMBps: DefaultMinTrafficMBps,
		Psi: map[int]Psi{
			2:  {Kind: PsiLinear, A: 1.35 / 2, B: 1758.0 / 2},
			4:  {Kind: PsiLog, A: 5756.0 / 4, B: -38805.0 / 4},
			8:  {Kind: PsiLog, A: 6143.0 / 8, B: -39657.0 / 8},
			12: {Kind: PsiLog, A: 6314.0 / 12, B: -39621.0 / 12},
		},
		Phi: fit.Power{A: 101481, B: -0.964},
	}
}

// Omega returns Φ(δ): the modeled CPU stall per DRAM access at achieved
// traffic δ (MB/s).
func (m *Model) Omega(deltaMBps float64) float64 {
	if deltaMBps <= 0 {
		deltaMBps = 1
	}
	return m.Phi.Eval(deltaMBps)
}

// psiFor returns Ψ for thread count t, interpolating between calibrated
// thread counts when t itself was not calibrated.
func (m *Model) psiFor(t int) (Psi, bool) {
	if p, ok := m.Psi[t]; ok {
		return p, true
	}
	if len(m.Psi) == 0 {
		return Psi{}, false
	}
	ts := make([]int, 0, len(m.Psi))
	for k := range m.Psi {
		ts = append(ts, k)
	}
	sort.Ints(ts)
	if t <= ts[0] {
		return m.Psi[ts[0]], true
	}
	if t >= ts[len(ts)-1] {
		return m.Psi[ts[len(ts)-1]], true
	}
	// Between two calibrated counts: evaluate both and blend linearly at
	// Eval time. Encode by returning an interpolating closure-free form:
	// pick the nearer count (the paper only provides 2/4/8/12 and
	// interpolates the plots, so nearest is faithful enough for Ψ).
	lo, hi := ts[0], ts[len(ts)-1]
	for _, k := range ts {
		if k <= t {
			lo = k
		}
	}
	for i := len(ts) - 1; i >= 0; i-- {
		if ts[i] >= t {
			hi = ts[i]
		}
	}
	if t-lo <= hi-t {
		return m.Psi[lo], true
	}
	return m.Psi[hi], true
}

// Burden returns β_t for a section whose serial profile produced sample s,
// when parallelized on t threads (Eq. 3, with the Assumption-4/5 gates).
// The result is always >= 1.
func (m *Model) Burden(s counters.Sample, t int) float64 {
	if t <= 1 || s.Instructions == 0 || s.Cycles == 0 {
		return 1
	}
	mpi := s.MPI()
	if mpi < m.MinMPI {
		return 1 // Assumption 5: negligible memory traffic.
	}
	delta := s.TrafficMBps(m.Hz)
	if delta < m.MinTrafficMBps {
		return 1
	}
	psi, ok := m.psiFor(t)
	if !ok {
		return 1
	}
	omega := m.Omega(delta) // ω for the serial run
	deltaT := psi.Eval(delta)
	omegaT := m.Omega(deltaT) // ω_t under contention
	if omegaT < omega {
		omegaT = omega
	}
	// Eq. 1 gives CPI$ from the measured T, N, D and modeled ω.
	n := float64(s.Instructions)
	d := float64(s.LLCMisses)
	cpiC := (float64(s.Cycles) - omega*d) / n
	if cpiC < 0 {
		cpiC = 0
	}
	beta := (cpiC + mpi*omegaT) / (cpiC + mpi*omega)
	if beta < 1 {
		beta = 1
	}
	return beta
}

// AssignBurdens computes and stores β_t on every top-level section of the
// tree for each requested thread count (the numbers shown in Fig. 4's
// margin). Sections without counters get no burden (treated as 1).
func (m *Model) AssignBurdens(root *tree.Node, threadCounts []int) {
	for _, sec := range root.TopLevelSections() {
		if sec.Counters == nil {
			continue
		}
		if sec.Burden == nil {
			sec.Burden = make(map[int]float64, len(threadCounts))
		}
		for _, t := range threadCounts {
			sec.Burden[t] = m.Burden(*sec.Counters, t)
		}
	}
}

// AssignBurdensAveraged is the paper's exact §V policy: "Note that a
// burden factor is estimated for each top-level parallel section. If a
// top-level parallel section is executed multiple times, we take an
// average." Sections are grouped by annotation name (the static section),
// the per-execution burden factors are averaged (weighted by execution
// count for Repeat-compressed instances), and the average is assigned to
// every instance of that name.
//
// AssignBurdens (per dynamic execution) is strictly finer-grained; this
// variant exists for fidelity and for sections whose behaviour genuinely
// varies between executions, where the tool must commit to one factor.
func (m *Model) AssignBurdensAveraged(root *tree.Node, threadCounts []int) {
	type acc struct {
		sum    map[int]float64
		weight float64
		secs   []*tree.Node
	}
	groups := map[string]*acc{}
	var order []string
	for _, sec := range root.TopLevelSections() {
		if sec.Counters == nil {
			continue
		}
		g, ok := groups[sec.Name]
		if !ok {
			g = &acc{sum: make(map[int]float64, len(threadCounts))}
			groups[sec.Name] = g
			order = append(order, sec.Name)
		}
		w := float64(sec.Reps())
		for _, t := range threadCounts {
			g.sum[t] += m.Burden(*sec.Counters, t) * w
		}
		g.weight += w
		g.secs = append(g.secs, sec)
	}
	for _, name := range order {
		g := groups[name]
		if g.weight == 0 {
			continue
		}
		for _, sec := range g.secs {
			if sec.Burden == nil {
				sec.Burden = make(map[int]float64, len(threadCounts))
			}
			for _, t := range threadCounts {
				sec.Burden[t] = g.sum[t] / g.weight
			}
		}
	}
}

// String summarizes the model's fitted formulas in the style of Eq. (6)/(7).
func (m *Model) String() string {
	s := fmt.Sprintf("Phi: w = %.4g * d^%.4g\n", m.Phi.A, m.Phi.B)
	ts := make([]int, 0, len(m.Psi))
	for t := range m.Psi {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	for _, t := range ts {
		p := m.Psi[t]
		switch p.Kind {
		case PsiLog:
			s += fmt.Sprintf("Psi[%2d]: d%d = %.4g*ln(d) %+.4g\n", t, t, p.A, p.B)
		default:
			s += fmt.Sprintf("Psi[%2d]: d%d = %.4g*d %+.4g\n", t, t, p.A, p.B)
		}
	}
	return s
}
