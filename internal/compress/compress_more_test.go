package compress

import (
	"math/rand"
	"testing"

	"prophet/internal/clock"
	"prophet/internal/tree"
)

// randomTree builds a random valid program tree with locks and nested
// sections for property testing.
func randomTree(rng *rand.Rand, nTasks, maxDepth int) *tree.Node {
	var buildTask func(depth int) *tree.Node
	buildTask = func(depth int) *tree.Node {
		task := tree.NewTask("t")
		nSegs := 1 + rng.Intn(3)
		for s := 0; s < nSegs; s++ {
			switch {
			case depth > 0 && rng.Intn(4) == 0:
				inner := tree.NewSec("in")
				for k := 0; k < 1+rng.Intn(3); k++ {
					inner.Children = append(inner.Children, buildTask(depth-1))
				}
				task.Children = append(task.Children, inner)
			case rng.Intn(3) == 0:
				task.Children = append(task.Children, tree.NewL(1+rng.Intn(2), clock.Cycles(100+rng.Intn(200))))
			default:
				task.Children = append(task.Children, tree.NewU(clock.Cycles(100+rng.Intn(200))))
			}
		}
		return task
	}
	sec := tree.NewSec("s")
	for i := 0; i < nTasks; i++ {
		sec.Children = append(sec.Children, buildTask(maxDepth))
	}
	return tree.NewRoot(sec)
}

// TestCompressIdempotent: compressing twice changes nothing further.
func TestCompressIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		root := randomTree(rng, 30+rng.Intn(50), 2)
		Compress(root, Options{Tolerance: DefaultTolerance})
		n1 := UniqueNodes(root)
		l1 := root.TotalLen()
		st2 := Compress(root, Options{Tolerance: DefaultTolerance})
		if st2.NodesAfter != n1 {
			t.Fatalf("second pass changed nodes: %d -> %d", n1, st2.NodesAfter)
		}
		if root.TotalLen() != l1 {
			t.Fatalf("second pass changed length: %d -> %d", l1, root.TotalLen())
		}
	}
}

// TestCompressPreservesValidityAndLength on random lock/nested trees.
func TestCompressPreservesValidityAndLength(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		root := randomTree(rng, 20+rng.Intn(80), 2)
		before := root.TotalLen()
		_, logicalBefore := root.NodeCount()
		Compress(root, Options{Tolerance: DefaultTolerance})
		if err := root.Validate(); err != nil {
			t.Fatalf("trial %d: invalid after compress: %v", trial, err)
		}
		_, logicalAfter := root.NodeCount()
		if logicalAfter != logicalBefore {
			t.Fatalf("trial %d: logical nodes %d -> %d", trial, logicalBefore, logicalAfter)
		}
		diff := float64(root.TotalLen() - before)
		if diff < 0 {
			diff = -diff
		}
		if diff > DefaultTolerance*float64(before)+100 {
			t.Fatalf("trial %d: length drift %d -> %d", trial, before, root.TotalLen())
		}
	}
}

// TestLockNodesNeverMergeAcrossIDs: L nodes with different lock ids are
// semantically different and must not be merged even within tolerance.
func TestLockNodesNeverMergeAcrossIDs(t *testing.T) {
	sec := tree.NewSec("s",
		tree.NewTask("a", tree.NewL(1, 100)),
		tree.NewTask("b", tree.NewL(2, 100)),
		tree.NewTask("c", tree.NewL(1, 100)),
	)
	root := tree.NewRoot(sec)
	Compress(root, Options{Tolerance: 0.5})
	// Tasks a and b must stay separate (different lock).
	if len(sec.Children) < 2 {
		t.Fatalf("lock ids merged: %s", root)
	}
	ids := map[int]bool{}
	root.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.L {
			ids[n.LockID] = true
		}
		return true
	})
	if !ids[1] || !ids[2] {
		t.Fatalf("lock ids lost: %v", ids)
	}
}

// TestPipelineFlagBlocksMerging: a pipeline section and an identical
// ordinary section must not be deduplicated into one node.
func TestPipelineFlagBlocksMerging(t *testing.T) {
	mk := func(pipe bool) *tree.Node {
		s := tree.NewSec("s", tree.NewTask("t", tree.NewU(100), tree.NewU(100)))
		s.Pipeline = pipe
		return s
	}
	root := tree.NewRoot(mk(true), mk(false))
	Compress(root, Options{Tolerance: 0})
	secs := root.TopLevelSections()
	if len(secs) != 2 {
		t.Fatalf("pipeline/plain sections merged: %s", root)
	}
	if !secs[0].Pipeline || secs[1].Pipeline {
		t.Fatalf("pipeline flags scrambled")
	}
}

// TestDictionaryShareStability: dedup must not create cycles or break
// Walk (shared nodes appear once per reference).
func TestDictionaryShareStability(t *testing.T) {
	tasks := make([]*tree.Node, 40)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(clock.Cycles(100+(i%2)*50)))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	Compress(root, Options{Tolerance: 0})
	visits := 0
	root.Walk(func(n *tree.Node) bool {
		visits++
		if visits > 100_000 {
			t.Fatal("walk did not terminate (cycle?)")
		}
		return true
	})
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
}
