package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prophet/internal/clock"
	"prophet/internal/tree"
)

// uniformLoop builds a Sec with n identical iterations of the given length.
func uniformLoop(n int, length clock.Cycles) *tree.Node {
	tasks := make([]*tree.Node, n)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(length))
	}
	return tree.NewSec("loop", tasks...)
}

func TestRLEUniformLoop(t *testing.T) {
	root := tree.NewRoot(uniformLoop(1000, 100))
	before := root.TotalLen()
	st := Compress(root, Options{Tolerance: 0})
	if root.TotalLen() != before {
		t.Fatalf("TotalLen changed: %d -> %d", before, root.TotalLen())
	}
	sec := root.TopLevelSections()[0]
	if len(sec.Children) != 1 {
		t.Fatalf("uniform loop should RLE to 1 child, got %d", len(sec.Children))
	}
	if sec.Children[0].Reps() != 1000 {
		t.Fatalf("repeat = %d, want 1000", sec.Children[0].Reps())
	}
	if st.Reduction() < 0.99 {
		t.Errorf("reduction = %.3f, want > 0.99", st.Reduction())
	}
	if st.Lossy {
		t.Error("lossless pass flagged lossy")
	}
	if err := root.Validate(); err != nil {
		t.Fatalf("compressed tree invalid: %v", err)
	}
}

func TestRLEToleranceMergesNearEqual(t *testing.T) {
	// Iterations alternate 100 and 103 cycles: within 5%, mergeable.
	tasks := make([]*tree.Node, 100)
	for i := range tasks {
		l := clock.Cycles(100)
		if i%2 == 1 {
			l = 103
		}
		tasks[i] = tree.NewTask("t", tree.NewU(l))
	}
	root := tree.NewRoot(tree.NewSec("loop", tasks...))
	before := root.TotalLen()
	Compress(root, Options{Tolerance: DefaultTolerance})
	sec := root.TopLevelSections()[0]
	if len(sec.Children) != 1 {
		t.Fatalf("children after 5%% RLE = %d, want 1", len(sec.Children))
	}
	// Weighted-average merge keeps the total within rounding of the original.
	after := root.TotalLen()
	diff := after - before
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.01*float64(before) {
		t.Errorf("TotalLen drifted %d -> %d", before, after)
	}
}

func TestRLEExactToleranceKeepsDistinct(t *testing.T) {
	tasks := []*tree.Node{
		tree.NewTask("t", tree.NewU(100)),
		tree.NewTask("t", tree.NewU(200)),
		tree.NewTask("t", tree.NewU(100)),
	}
	root := tree.NewRoot(tree.NewSec("loop", tasks...))
	Compress(root, Options{Tolerance: 0, DisableDictionary: true})
	sec := root.TopLevelSections()[0]
	if len(sec.Children) != 3 {
		t.Fatalf("distinct iterations must survive exact RLE, got %d children", len(sec.Children))
	}
}

func TestDictionarySharesNonAdjacent(t *testing.T) {
	// Alternating 100/200 iterations: RLE cannot merge them, but the
	// dictionary should leave only two distinct Task subtrees.
	tasks := make([]*tree.Node, 200)
	for i := range tasks {
		l := clock.Cycles(100)
		if i%2 == 1 {
			l = 200
		}
		tasks[i] = tree.NewTask("t", tree.NewU(l))
	}
	root := tree.NewRoot(tree.NewSec("loop", tasks...))
	st := Compress(root, Options{Tolerance: 0})
	// Unique: root + sec + 2 tasks + 2 U = 6.
	if st.NodesAfter != 6 {
		t.Fatalf("unique nodes = %d, want 6 (%s)", st.NodesAfter, st)
	}
	if root.TotalLen() != 200*150 {
		t.Fatalf("TotalLen = %d, want %d", root.TotalLen(), 200*150)
	}
}

func TestDictionaryDisabled(t *testing.T) {
	tasks := make([]*tree.Node, 50)
	for i := range tasks {
		l := clock.Cycles(100)
		if i%2 == 1 {
			l = 200
		}
		tasks[i] = tree.NewTask("t", tree.NewU(l))
	}
	root := tree.NewRoot(tree.NewSec("loop", tasks...))
	st := Compress(root, Options{Tolerance: 0, DisableDictionary: true})
	if st.NodesAfter <= 6 {
		t.Fatalf("dictionary disabled but nodes = %d", st.NodesAfter)
	}
}

func TestLossyFallback(t *testing.T) {
	// Random lengths spread over a 3x range: lossless RLE cannot shrink
	// them, so the node budget forces the lossy fallback.
	rng := rand.New(rand.NewSource(7))
	tasks := make([]*tree.Node, 3000)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(clock.Cycles(1000+rng.Intn(9000))))
	}
	root := tree.NewRoot(tree.NewSec("loop", tasks...))
	st := Compress(root, Options{Tolerance: DefaultTolerance, MaxNodes: 20})
	if !st.Lossy {
		t.Fatalf("expected lossy fallback, stats: %s", st)
	}
	if st.NodesAfter > 3*20 {
		t.Errorf("fallback left %d nodes for budget 20", st.NodesAfter)
	}
	if st.FinalTolerance <= DefaultTolerance {
		t.Errorf("final tolerance %g not widened", st.FinalTolerance)
	}
}

func TestNestedTreeCompression(t *testing.T) {
	// Outer loop of 50 iterations, each containing an identical inner
	// section of 20 iterations — the deeply-nested case from §VI-B.
	outer := make([]*tree.Node, 50)
	for i := range outer {
		outer[i] = tree.NewTask("o", tree.NewU(10), uniformLoop(20, 7), tree.NewU(5))
	}
	root := tree.NewRoot(tree.NewSec("outer", outer...))
	before := root.TotalLen()
	_, logical := root.NodeCount()
	st := Compress(root, Options{Tolerance: DefaultTolerance})
	if root.TotalLen() != before {
		t.Fatalf("TotalLen changed %d -> %d", before, root.TotalLen())
	}
	if st.LogicalNodes != logical {
		t.Errorf("logical nodes %d, want %d", st.LogicalNodes, logical)
	}
	if st.NodesAfter > 10 {
		t.Errorf("nested uniform tree should collapse to <=10 unique nodes, got %d (%s)", st.NodesAfter, st)
	}
	// Logical expansion must be preserved.
	_, logicalAfter := root.NodeCount()
	if logicalAfter != logical {
		t.Errorf("logical count changed %d -> %d", logical, logicalAfter)
	}
}

func TestCompressionRatios(t *testing.T) {
	// §VI-B reports a 93% reduction for CG-like trees (many nearly
	// identical iterations). Verify our pipeline reaches >90% on such a
	// shape: 10k iterations whose lengths vary within +-2%.
	rng := rand.New(rand.NewSource(42))
	tasks := make([]*tree.Node, 10000)
	for i := range tasks {
		base := 1000.0
		l := clock.Cycles(base * (0.98 + 0.04*rng.Float64()))
		tasks[i] = tree.NewTask("t", tree.NewU(l))
	}
	root := tree.NewRoot(tree.NewSec("cg", tasks...))
	st := Compress(root, Options{Tolerance: DefaultTolerance})
	if st.Reduction() < 0.90 {
		t.Fatalf("CG-shaped reduction = %.1f%%, want >= 90%% (%s)", 100*st.Reduction(), st)
	}
}

// Property: compression never changes TotalLen by more than the tolerance,
// never increases node count, and always leaves a valid tree.
func TestCompressProperties(t *testing.T) {
	f := func(seed int64, nTasks uint8, spreadPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nTasks)%200 + 2
		spread := float64(spreadPct%30) / 100
		tasks := make([]*tree.Node, n)
		for i := range tasks {
			l := clock.Cycles(500 * (1 + spread*rng.Float64()))
			tasks[i] = tree.NewTask("t", tree.NewU(l))
		}
		root := tree.NewRoot(tree.NewSec("s", tasks...))
		before := root.TotalLen()
		nb := UniqueNodes(root)
		st := Compress(root, Options{Tolerance: DefaultTolerance})
		if root.Validate() != nil {
			return false
		}
		if st.NodesAfter > nb {
			return false
		}
		diff := float64(root.TotalLen() - before)
		if diff < 0 {
			diff = -diff
		}
		return diff <= DefaultTolerance*float64(before)+float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
