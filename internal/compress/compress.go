// Package compress shrinks program trees (§VI-B of the paper).
//
// Interval profiling records every loop iteration as a separate Task node,
// so a program tree can become enormous (the paper reports 13.5 GB for NPB
// CG before compression). Two techniques are applied, mirroring the paper:
//
//  1. Run-length encoding: consecutive sibling subtrees whose structure is
//     identical and whose leaf lengths agree within a relative tolerance
//     (the paper uses 5%) are merged into one node with Repeat set to the
//     run length. Leaf lengths of merged runs are length-preserving
//     weighted averages, so the tree's TotalLen is (almost) unchanged.
//  2. Dictionary sharing: identical non-adjacent subtrees are replaced by
//     pointers to a single representative, so each distinct shape is stored
//     once. Consumers treat trees as immutable, which makes the sharing
//     safe.
//
// If the lossless pass does not shrink the tree below a node budget, a lossy
// fallback re-runs RLE with progressively larger tolerances (the paper's
// "last resort"; it was never needed in their experiments and rarely in
// ours).
package compress

import (
	"fmt"
	"hash/fnv"
	"math"

	"prophet/internal/clock"
	"prophet/internal/tree"
)

// DefaultTolerance is the paper's 5% length-variation tolerance.
const DefaultTolerance = 0.05

// Options configures compression.
type Options struct {
	// Tolerance is the relative leaf-length tolerance for considering two
	// subtrees "the same". Negative disables merging; zero means exact.
	Tolerance float64
	// MaxNodes, when > 0, triggers the lossy fallback: if the lossless
	// pass leaves more than MaxNodes unique nodes, tolerance is doubled
	// (up to LossyMaxTolerance) and RLE re-applied.
	MaxNodes int64
	// LossyMaxTolerance bounds the fallback (default 0.5).
	LossyMaxTolerance float64
	// DisableDictionary turns off subtree sharing (used by the ablation
	// benchmarks to separate RLE and dictionary gains).
	DisableDictionary bool
	// Arena, when set, supplies the nodes RLE clones for merged-run
	// representatives, keeping an arena-backed tree fully inside its
	// arena. Nil (the default) clones on the heap.
	Arena *tree.Arena
}

// Stats reports the effect of one Compress call.
type Stats struct {
	// NodesBefore / NodesAfter are unique (stored) node counts.
	NodesBefore, NodesAfter int64
	// LogicalNodes is the fully expanded node count (unchanged by
	// compression).
	LogicalNodes int64
	// BytesBefore / BytesAfter estimate the in-memory footprint.
	BytesBefore, BytesAfter int64
	// FinalTolerance is the tolerance actually used (> Tolerance only if
	// the lossy fallback ran).
	FinalTolerance float64
	// Lossy reports whether the fallback widened the tolerance.
	Lossy bool
}

// Reduction returns the fractional node-count reduction, e.g. 0.93 for the
// paper's 93% CG result.
func (s Stats) Reduction() float64 {
	if s.NodesBefore == 0 {
		return 0
	}
	return 1 - float64(s.NodesAfter)/float64(s.NodesBefore)
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes %d -> %d (%.1f%% reduction, logical %d), bytes %d -> %d, tol %.2g lossy=%v",
		s.NodesBefore, s.NodesAfter, 100*s.Reduction(), s.LogicalNodes, s.BytesBefore, s.BytesAfter, s.FinalTolerance, s.Lossy)
}

// Compress compresses the tree rooted at root in place and returns stats.
func Compress(root *tree.Node, opts Options) Stats {
	if opts.LossyMaxTolerance <= 0 {
		opts.LossyMaxTolerance = 0.5
	}
	var st Stats
	st.NodesBefore = uniqueNodes(root)
	st.BytesBefore = root.ApproxBytes()
	_, st.LogicalNodes = root.NodeCount()

	tol := opts.Tolerance
	pass := func() {
		// Dictionary sharing can turn near-equal siblings into equal
		// pointers, enabling further RLE merges; iterate to a
		// fixpoint (bounded — each pass strictly reduces node count).
		for i := 0; i < 8; i++ {
			before := uniqueNodes(root)
			rle(root, tol, opts.Arena)
			if !opts.DisableDictionary {
				dedupe(root, tol)
			}
			if uniqueNodes(root) == before {
				break
			}
		}
	}
	pass()
	st.FinalTolerance = tol
	if opts.MaxNodes > 0 {
		for uniqueNodes(root) > opts.MaxNodes && tol < opts.LossyMaxTolerance {
			if tol <= 0 {
				tol = DefaultTolerance
			} else {
				tol *= 2
			}
			if tol > opts.LossyMaxTolerance {
				tol = opts.LossyMaxTolerance
			}
			pass()
			st.Lossy = true
			st.FinalTolerance = tol
		}
	}
	st.NodesAfter = uniqueNodes(root)
	st.BytesAfter = int64(float64(st.BytesBefore) * float64(st.NodesAfter) / float64(max64(st.NodesBefore, 1)))
	return st
}

// rle merges runs of equivalent consecutive siblings, recursively,
// bottom-up. Merged-run representatives are cloned from arena when one is
// supplied (nil falls back to the heap).
func rle(n *tree.Node, tol float64, arena *tree.Arena) {
	for _, c := range n.Children {
		rle(c, tol, arena)
	}
	if tol < 0 || len(n.Children) < 2 {
		return
	}
	out := n.Children[:0]
	i := 0
	for i < len(n.Children) {
		run := n.Children[i]
		j := i + 1
		for j < len(n.Children) && tree.Equal(run, n.Children[j], tol) {
			j++
		}
		if j > i+1 {
			merged := arena.Clone(run)
			weight := merged.Reps()
			for k := i + 1; k < j; k++ {
				mergeInto(merged, n.Children[k], weight, n.Children[k].Reps())
				weight += n.Children[k].Reps()
			}
			merged.Repeat = weight
			out = append(out, merged)
		} else {
			out = append(out, run)
		}
		i = j
	}
	n.Children = out
}

// mergeInto folds b's leaf lengths into a as a running weighted average, so
// the representative of a run keeps the mean length of its members. a and b
// are structurally equal (same shape), which rle guarantees.
func mergeInto(a, b *tree.Node, wa, wb int) {
	if a.Kind == tree.U || a.Kind == tree.L || a.Kind == tree.W {
		a.Len = clock.Cycles(math.Round((float64(a.Len)*float64(wa) + float64(b.Len)*float64(wb)) / float64(wa+wb)))
		a.Mem.Instructions = weightedAvg(a.Mem.Instructions, b.Mem.Instructions, wa, wb)
		a.Mem.LLCMisses = weightedAvg(a.Mem.LLCMisses, b.Mem.LLCMisses, wa, wb)
	}
	for i := range a.Children {
		if i < len(b.Children) {
			mergeInto(a.Children[i], b.Children[i], wa, wb)
		}
	}
}

func weightedAvg(a, b int64, wa, wb int) int64 {
	return int64(math.Round((float64(a)*float64(wa) + float64(b)*float64(wb)) / float64(wa+wb)))
}

// dedupe shares identical subtrees through a structural-hash dictionary.
// Two subtrees are shared only when tree.Equal within tol; the hash buckets
// candidates (quantized lengths) and Equal confirms.
func dedupe(n *tree.Node, tol float64) {
	dict := make(map[uint64][]*tree.Node)
	var visit func(node *tree.Node)
	visit = func(node *tree.Node) {
		for i, c := range node.Children {
			visit(c)
			h := structuralHash(c, tol)
			found := false
			for _, cand := range dict[h] {
				if cand != c && tree.Equal(cand, c, tol) && cand.Reps() == c.Reps() {
					node.Children[i] = cand
					found = true
					break
				}
			}
			if !found {
				dict[h] = append(dict[h], node.Children[i])
			}
		}
	}
	visit(n)
}

// structuralHash hashes a subtree's shape. Leaf lengths are quantized by the
// tolerance so near-equal subtrees collide and Equal can confirm.
func structuralHash(n *tree.Node, tol float64) uint64 {
	h := fnv.New64a()
	var write func(node *tree.Node)
	write = func(node *tree.Node) {
		var buf [8]byte
		buf[0] = byte(node.Kind)
		buf[1] = byte(node.Reps())
		buf[2] = byte(node.LockID)
		if node.NoWait {
			buf[3] = 1
		}
		q := int64(node.Len)
		if tol > 0 && node.Len > 0 {
			// Quantize to log-scale buckets of width ~tol.
			q = int64(math.Log(float64(node.Len)) / tol / 2)
		}
		for i := 0; i < 4; i++ {
			buf[4+i] = byte(q >> (8 * i))
		}
		h.Write(buf[:])
		for _, c := range node.Children {
			write(c)
		}
		h.Write([]byte{0xFF})
	}
	write(n)
	return h.Sum64()
}

// uniqueNodes counts distinct stored nodes (shared subtrees counted once).
func uniqueNodes(root *tree.Node) int64 {
	seen := make(map[*tree.Node]bool)
	var visit func(n *tree.Node)
	visit = func(n *tree.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.Children {
			visit(c)
		}
	}
	visit(root)
	return int64(len(seen))
}

// UniqueNodes exposes the unique-node count for reports and tests.
func UniqueNodes(root *tree.Node) int64 { return uniqueNodes(root) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
