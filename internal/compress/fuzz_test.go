package compress

import (
	"testing"

	"prophet/internal/clock"
	"prophet/internal/tree"
)

// buildFuzzTree decodes a byte string into a valid program tree: a Root
// holding sections of task runs whose U/L leaf lengths, lock IDs, run
// lengths and nesting come from the input bytes. The decoder only ever
// produces trees that pass Validate — the fuzz target probes compression
// itself, not tree construction.
func buildFuzzTree(data []byte) *tree.Node {
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return int(b)
	}
	nSecs := 1 + next()%4
	var secs []*tree.Node
	for s := 0; s < nSecs; s++ {
		nTasks := 1 + next()%32
		baseLen := 1 + next()*37
		jitter := next() % 16
		withLock := next()%3 == 0
		nested := next()%5 == 0
		var tasks []*tree.Node
		for i := 0; i < nTasks; i++ {
			l := clock.Cycles(baseLen + (i%(jitter+1))*next()%97)
			kids := []*tree.Node{tree.NewU(l)}
			if withLock {
				kids = append(kids, tree.NewL(1+next()%3, clock.Cycles(1+next())))
			}
			if nested {
				kids = append(kids, tree.NewSec("inner",
					tree.NewTask("it", tree.NewU(clock.Cycles(1+next()))),
					tree.NewTask("it", tree.NewU(clock.Cycles(1+next())))))
			}
			tasks = append(tasks, tree.NewTask("t", kids...))
		}
		secs = append(secs, tree.NewSec("loop", tasks...))
	}
	return tree.NewRoot(secs...)
}

// FuzzCompressRoundTrip feeds arbitrary generated node runs through
// Compress and checks the §VI-B contract: the compressed tree is still a
// valid program tree, its logical node count (Repeat runs expanded) is
// unchanged, and its total serial length is preserved within the merge
// tolerance. RLE representatives store length-preserving weighted
// averages (rounding noise only); dictionary sharing may substitute a
// representative whose leaves differ by up to the tolerance, so the
// drift budget scales with tol.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(5))
	f.Add([]byte{3, 7, 1, 0, 200, 9}, uint8(0))
	f.Add([]byte{1, 31, 2, 15, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(10))
	f.Add([]byte{2, 4, 250, 3, 1, 4, 99, 42, 42, 42}, uint8(50))
	f.Fuzz(func(t *testing.T, data []byte, tolByte uint8) {
		root := buildFuzzTree(data)
		if err := root.Validate(); err != nil {
			t.Fatalf("decoder produced invalid tree: %v", err)
		}
		// Fuzz over the contract-relevant range (the paper operates at
		// 5%; beyond ~10% repeated merge passes compound near-equal
		// substitutions and the length guarantee intentionally weakens
		// toward the lossy fallback regime).
		tol := float64(tolByte%11) / 100 // 0% .. 10%
		before := root.TotalLen()
		_, logicalBefore := root.NodeCount()

		st := Compress(root, Options{Tolerance: tol})

		if err := root.Validate(); err != nil {
			t.Fatalf("compressed tree invalid (tol %.2f): %v\n%s", tol, err, root)
		}
		if _, logicalAfter := root.NodeCount(); logicalAfter != logicalBefore {
			t.Fatalf("logical nodes changed %d -> %d (tol %.2f)", logicalBefore, logicalAfter, tol)
		}
		if st.NodesAfter > st.NodesBefore {
			t.Fatalf("compression grew the tree: %d -> %d", st.NodesBefore, st.NodesAfter)
		}
		after := root.TotalLen()
		drift := float64(after - before)
		if drift < 0 {
			drift = -drift
		}
		// Dictionary substitution drifts at most tol per affected leaf
		// (3x headroom for repeated passes), plus one cycle of rounding
		// per logical node for the RLE weighted averages.
		budget := 3*tol*float64(before) + float64(logicalBefore) + 1
		if drift > budget {
			t.Fatalf("TotalLen drifted %d -> %d (tol %.2f, budget %.0f)", before, after, tol, budget)
		}
	})
}
