// Package cilkrt is a Cilk-Plus-style work-stealing runtime for the
// simulated machine. The paper parallelizes its recursive benchmarks
// (FFT, QSort) with Cilk Plus because OpenMP 2.0's nested teams
// oversubscribe the machine (§III); the synthesizer likewise needs a real
// work-stealing substrate to run generated code against (§IV-E, Fig. 8).
//
// The scheduler is a child-stealing scheduler with per-worker deques:
// owners push and pop at the bottom (LIFO, locality), thieves steal from
// the top (FIFO, oldest/biggest subtrees first). Every Cilk function has an
// implicit sync at return, and For implements cilk_for by recursive
// interval splitting, as Cilk Plus does. The simulator engine serializes
// all workers, so the deques need no atomics and every run is
// deterministic.
package cilkrt

import (
	"prophet/internal/clock"
	"prophet/internal/sim"
)

// Overheads are the runtime's cost constants, in cycles.
type Overheads struct {
	// Spawn is paid by the spawning worker per spawned task (deque push
	// plus frame setup; Cilk spawns are a few tens of nanoseconds).
	Spawn clock.Cycles
	// StealScan is paid by a thief per scan over the victims' deques.
	StealScan clock.Cycles
	// RunTask is paid when a task is popped/stolen and started.
	RunTask clock.Cycles
}

// DefaultOverheads returns Cilk-Plus-range constants at 2.4 GHz: ~40 ns
// per spawn, ~400 ns per steal scan, ~20 ns task start.
func DefaultOverheads() Overheads {
	return Overheads{Spawn: 100, StealScan: 1000, RunTask: 50}
}

// Runtime is a work-stealing runtime bound to a worker count
// (__cilkrts_set_param("nworkers", n) in the paper's Fig. 8).
type Runtime struct {
	nworkers int
	ov       Overheads
}

// New returns a runtime with nworkers workers (minimum 1).
func New(nworkers int, ov Overheads) *Runtime {
	if nworkers < 1 {
		nworkers = 1
	}
	return &Runtime{nworkers: nworkers, ov: ov}
}

// Workers returns the worker count.
func (rt *Runtime) Workers() int { return rt.nworkers }

// Overheads returns the runtime's cost constants.
func (rt *Runtime) Overheads() Overheads { return rt.ov }

// frame tracks the outstanding children of one executing Cilk function.
type frame struct {
	pending int
	waiter  *worker // worker parked in Sync on this frame, if any
}

type task struct {
	fn     func(*Ctx)
	parent *frame
}

type worker struct {
	rs         *runState
	t          *sim.Thread
	idx        int
	deque      []*task
	idleParked bool
}

type runState struct {
	rt      *Runtime
	workers []*worker
	idle    []*worker
	done    bool
	steals  int64
	spawns  int64
}

// Stats reports scheduler activity for one Run.
type Stats struct {
	Spawns int64
	Steals int64
}

// Ctx is the execution context of a Cilk function on some worker. It is
// only valid on the worker that is running the function; the runtime hands
// each task a fresh Ctx.
type Ctx struct {
	w     *worker
	frame *frame
}

// Thread returns the simulator thread the context currently runs on, for
// Work/WorkMem/Lock calls inside task bodies.
func (c *Ctx) Thread() *sim.Thread { return c.w.t }

// Run executes root on a team of rt.Workers() workers; the calling thread
// becomes worker 0 and participates. Run returns after root and all of its
// descendants complete (implicit final sync) and all helper workers have
// shut down.
func (rt *Runtime) Run(t *sim.Thread, root func(*Ctx)) Stats {
	rs := &runState{rt: rt}
	w0 := &worker{rs: rs, t: t, idx: 0}
	rs.workers = []*worker{w0}
	helpers := make([]*sim.Thread, 0, rt.nworkers-1)
	for i := 1; i < rt.nworkers; i++ {
		w := &worker{rs: rs, idx: i}
		rs.workers = append(rs.workers, w)
		ht := t.Spawn(func(st *sim.Thread) {
			w.t = st
			w.loop()
		})
		helpers = append(helpers, ht)
	}
	ctx := &Ctx{w: w0, frame: &frame{}}
	root(ctx)
	ctx.Sync() // implicit sync at the end of the root function
	rs.done = true
	for _, w := range rs.idle {
		t.Unpark(w.t)
	}
	rs.idle = nil
	for _, h := range helpers {
		t.Join(h)
	}
	return Stats{Spawns: rs.spawns, Steals: rs.steals}
}

// Spawn schedules f to run as a child of the current function, possibly in
// parallel (cilk_spawn f()).
func (c *Ctx) Spawn(f func(*Ctx)) {
	w := c.w
	w.t.Work(w.rs.rt.ov.Spawn)
	w.rs.spawns++
	c.frame.pending++
	w.push(&task{fn: f, parent: c.frame})
	w.rs.wakeOne(w.t)
}

// Sync blocks until every child spawned by the current function has
// completed (cilk_sync). While waiting, the worker executes other tasks —
// its own first, then stolen ones.
//
// Virtual time passes inside the paid steal scan, so the frame state and
// the deques are re-checked with free (zero-time) operations immediately
// before parking; between those checks and Park no other thread can run,
// which rules out lost wakeups.
func (c *Ctx) Sync() {
	w := c.w
	for c.frame.pending > 0 {
		if tk := w.pop(); tk != nil {
			w.execute(tk)
			continue
		}
		if tk := w.steal(); tk != nil {
			w.execute(tk)
			continue
		}
		// The paid scan advanced time: re-check everything for free.
		if c.frame.pending == 0 {
			break
		}
		if tk := w.pop(); tk != nil {
			w.execute(tk)
			continue
		}
		if tk := w.scan(); tk != nil {
			w.execute(tk)
			continue
		}
		// Nothing runnable anywhere: sleep until the last child of
		// this frame completes.
		c.frame.waiter = w
		w.t.Park()
		c.frame.waiter = nil
	}
}

// For runs body(i) for i in [0, n) as a cilk_for: the range is split
// recursively into grain-sized leaves executed as spawned tasks, with an
// implicit sync at the end. grain <= 0 selects Cilk's default
// (~n / (8 · workers), at least 1).
func (c *Ctx) For(n, grain int, body func(*Ctx, int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n / (8 * c.w.rs.rt.nworkers)
		if grain < 1 {
			grain = 1
		}
	}
	sub := &Ctx{w: c.w, frame: &frame{}}
	var rec func(cc *Ctx, lo, hi int)
	rec = func(cc *Ctx, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			lo2, hi2 := mid, hi
			cc.Spawn(func(sc *Ctx) { rec(sc, lo2, hi2) })
			hi = mid
		}
		for i := lo; i < hi; i++ {
			body(cc, i)
		}
	}
	rec(sub, 0, n)
	sub.Sync()
}

// push adds a task at the bottom of the owner's deque.
func (w *worker) push(t *task) { w.deque = append(w.deque, t) }

// pop removes the newest task from the owner's deque (LIFO).
func (w *worker) pop() *task {
	n := len(w.deque)
	if n == 0 {
		return nil
	}
	t := w.deque[n-1]
	w.deque = w.deque[:n-1]
	return t
}

// steal pays the scan cost, then scans the other workers round-robin and
// takes the oldest task from the first non-empty deque.
func (w *worker) steal() *task {
	w.t.Work(w.rs.rt.ov.StealScan)
	return w.scan()
}

// scan is the zero-cost victim scan used both by steal and by the
// just-before-park re-checks.
func (w *worker) scan() *task {
	rs := w.rs
	n := len(rs.workers)
	for off := 1; off < n; off++ {
		v := rs.workers[(w.idx+off)%n]
		if len(v.deque) == 0 {
			continue
		}
		t := v.deque[0]
		v.deque = v.deque[1:]
		rs.steals++
		return t
	}
	return nil
}

// execute runs a task in a fresh frame with an implicit sync at return,
// then retires it against its parent frame, waking a parked syncer if this
// was the last outstanding child.
func (w *worker) execute(tk *task) {
	w.t.Work(w.rs.rt.ov.RunTask)
	ctx := &Ctx{w: w, frame: &frame{}}
	tk.fn(ctx)
	ctx.Sync()
	p := tk.parent
	p.pending--
	if p.pending == 0 && p.waiter != nil && p.waiter != w {
		w.t.Unpark(p.waiter.t)
	}
}

// wakeOne unparks one genuinely idle-parked worker, if any, after new work
// was pushed. Stale idle-list entries (workers that woke spuriously) are
// discarded.
func (rs *runState) wakeOne(from *sim.Thread) {
	for len(rs.idle) > 0 {
		w := rs.idle[0]
		rs.idle = rs.idle[1:]
		if w.idleParked {
			from.Unpark(w.t)
			return
		}
	}
}

// loop is the scheduling loop of the helper workers. As in Sync, a free
// re-scan guards the park against wakeups lost during the paid steal scan.
func (w *worker) loop() {
	rs := w.rs
	for {
		if tk := w.pop(); tk != nil {
			w.execute(tk)
			continue
		}
		if tk := w.steal(); tk != nil {
			w.execute(tk)
			continue
		}
		if rs.done {
			return
		}
		if tk := w.scan(); tk != nil {
			w.execute(tk)
			continue
		}
		w.idleParked = true
		rs.idle = append(rs.idle, w)
		w.t.Park()
		w.idleParked = false
	}
}
