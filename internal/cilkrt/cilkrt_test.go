package cilkrt

import (
	"testing"

	"prophet/internal/clock"
	"prophet/internal/sim"
)

var zeroOv = Overheads{}

func mcfg(cores int) sim.Config {
	return sim.Config{Cores: cores, Quantum: 10_000, ContextSwitch: -1}
}

func TestRunRootOnly(t *testing.T) {
	rt := New(4, zeroOv)
	end, _ := sim.Run(mcfg(4), func(th *sim.Thread) {
		rt.Run(th, func(c *Ctx) {
			c.Thread().Work(12_345)
		})
	})
	if end != 12_345 {
		t.Fatalf("makespan = %d, want 12345", end)
	}
}

func TestSpawnRunsInParallel(t *testing.T) {
	rt := New(2, zeroOv)
	end, st := sim.Run(mcfg(2), func(th *sim.Thread) {
		rt.Run(th, func(c *Ctx) {
			c.Spawn(func(cc *Ctx) { cc.Thread().Work(50_000) })
			c.Thread().Work(50_000)
			c.Sync()
		})
	})
	if end != 50_000 {
		t.Fatalf("makespan = %d, want 50000 (two tasks in parallel)", end)
	}
	_ = st
}

func TestSyncWaitsForChildren(t *testing.T) {
	rt := New(2, zeroOv)
	var childDone, syncSeen clock.Cycles
	sim.Run(mcfg(2), func(th *sim.Thread) {
		rt.Run(th, func(c *Ctx) {
			c.Spawn(func(cc *Ctx) {
				cc.Thread().Work(80_000)
				childDone = cc.Thread().Now()
			})
			c.Thread().Work(1_000)
			c.Sync()
			syncSeen = c.Thread().Now()
		})
	})
	if syncSeen < childDone {
		t.Fatalf("sync returned at %d before child finished at %d", syncSeen, childDone)
	}
}

func TestImplicitSyncAtTaskReturn(t *testing.T) {
	// A spawned task that itself spawns but never syncs: the implicit
	// sync at function return must still cover the grandchild.
	rt := New(2, zeroOv)
	var grandDone clock.Cycles
	end, _ := sim.Run(mcfg(2), func(th *sim.Thread) {
		rt.Run(th, func(c *Ctx) {
			c.Spawn(func(cc *Ctx) {
				cc.Spawn(func(g *Ctx) {
					g.Thread().Work(60_000)
					grandDone = g.Thread().Now()
				})
				// no explicit Sync here
			})
			c.Sync()
		})
	})
	if grandDone == 0 || end < grandDone {
		t.Fatalf("run ended at %d before grandchild at %d", end, grandDone)
	}
}

func TestForCoversAllIterations(t *testing.T) {
	rt := New(4, zeroOv)
	n := 103
	seen := make([]int, n)
	sim.Run(mcfg(4), func(th *sim.Thread) {
		rt.Run(th, func(c *Ctx) {
			c.For(n, 0, func(cc *Ctx, i int) {
				seen[i]++
				cc.Thread().Work(10)
			})
		})
	})
	for i, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("iteration %d ran %d times", i, cnt)
		}
	}
}

func TestForSpeedsUp(t *testing.T) {
	// 64 iterations of 10k cycles on 8 workers/8 cores: ideal 80k.
	// Work stealing should land within 30%.
	run := func(workers int) clock.Cycles {
		rt := New(workers, zeroOv)
		end, _ := sim.Run(mcfg(8), func(th *sim.Thread) {
			rt.Run(th, func(c *Ctx) {
				c.For(64, 1, func(cc *Ctx, i int) {
					cc.Thread().Work(10_000)
				})
			})
		})
		return end
	}
	t1 := run(1)
	t8 := run(8)
	if t1 != 640_000 {
		t.Fatalf("serial for = %d, want 640000", t1)
	}
	if t8 > 104_000 {
		t.Fatalf("8-worker for = %d, want <= 104000 (~80k ideal)", t8)
	}
}

func TestRecursiveDivideAndConquer(t *testing.T) {
	// FFT/QSort-shaped recursion: T(n) spawns T(n/2) twice down to
	// leaves. Total work 2^d leaves of 5000 cycles; with 4 workers the
	// speedup should approach 4 (the paper's Fig. 12(c)/(d) pattern).
	var build func(c *Ctx, depth int)
	build = func(c *Ctx, depth int) {
		if depth == 0 {
			c.Thread().Work(5_000)
			return
		}
		c.Spawn(func(cc *Ctx) { build(cc, depth-1) })
		build(c, depth-1)
		c.Sync()
	}
	run := func(workers int) clock.Cycles {
		rt := New(workers, zeroOv)
		end, _ := sim.Run(mcfg(workers), func(th *sim.Thread) {
			rt.Run(th, func(c *Ctx) { build(c, 7) }) // 128 leaves
		})
		return end
	}
	t1 := run(1)
	t4 := run(4)
	sp := float64(t1) / float64(t4)
	if t1 != 128*5_000 {
		t.Fatalf("serial recursion = %d, want 640000", t1)
	}
	if sp < 3.2 {
		t.Fatalf("4-worker recursive speedup = %.2f, want >= 3.2", sp)
	}
}

func TestStealsHappenAndAreCounted(t *testing.T) {
	rt := New(4, zeroOv)
	var st Stats
	sim.Run(mcfg(4), func(th *sim.Thread) {
		st = rt.Run(th, func(c *Ctx) {
			c.For(32, 1, func(cc *Ctx, i int) {
				cc.Thread().Work(20_000)
			})
		})
	})
	if st.Spawns == 0 {
		t.Fatal("no spawns recorded")
	}
	if st.Steals == 0 {
		t.Fatal("no steals recorded; helpers never picked up work")
	}
}

func TestOverheadsCharged(t *testing.T) {
	run := func(ov Overheads) clock.Cycles {
		rt := New(1, ov)
		end, _ := sim.Run(mcfg(1), func(th *sim.Thread) {
			rt.Run(th, func(c *Ctx) {
				for i := 0; i < 10; i++ {
					c.Spawn(func(cc *Ctx) { cc.Thread().Work(100) })
				}
				c.Sync()
			})
		})
		return end
	}
	plain := run(zeroOv)
	loaded := run(Overheads{Spawn: 500, RunTask: 200})
	if loaded-plain != 10*(500+200) {
		t.Fatalf("overhead delta = %d, want 7000", loaded-plain)
	}
}

func TestLocksInsideTasks(t *testing.T) {
	// L-node emulation: tasks serialize on a mutex via the sim thread.
	rt := New(4, zeroOv)
	end, _ := sim.Run(mcfg(4), func(th *sim.Thread) {
		rt.Run(th, func(c *Ctx) {
			c.For(4, 1, func(cc *Ctx, i int) {
				cc.Thread().Lock(9)
				cc.Thread().Work(10_000)
				cc.Thread().Unlock(9)
			})
		})
	})
	if end < 40_000 {
		t.Fatalf("locked sections overlapped: makespan %d < 40000", end)
	}
}

func TestDeterminism(t *testing.T) {
	prog := func(th *sim.Thread) {
		rt := New(3, DefaultOverheads())
		rt.Run(th, func(c *Ctx) {
			c.For(40, 2, func(cc *Ctx, i int) {
				cc.Thread().Work(clock.Cycles(1000 * (i%5 + 1)))
			})
		})
	}
	e1, _ := sim.Run(mcfg(3), prog)
	e2, _ := sim.Run(mcfg(3), prog)
	if e1 != e2 {
		t.Fatalf("nondeterministic: %d vs %d", e1, e2)
	}
}

func TestWorkersClampedToOne(t *testing.T) {
	rt := New(0, zeroOv)
	if rt.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", rt.Workers())
	}
}

func TestForZeroIterations(t *testing.T) {
	rt := New(2, zeroOv)
	end, _ := sim.Run(mcfg(2), func(th *sim.Thread) {
		rt.Run(th, func(c *Ctx) {
			c.For(0, 1, func(cc *Ctx, i int) { t.Error("body ran") })
		})
	})
	if end != 0 {
		t.Fatalf("makespan = %d, want 0", end)
	}
}
