package cilkrt

import (
	"math/rand"
	"testing"

	"prophet/internal/clock"
	"prophet/internal/sim"
)

// TestRandomSpawnDAGProperty: random recursive spawn trees must execute
// every task exactly once, conserve work, and finish within the serial
// bound — across worker counts and shapes.
func TestRandomSpawnDAGProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		workers := 1 + rng.Intn(6)
		maxDepth := 2 + rng.Intn(4)
		fanout := 1 + rng.Intn(3)
		leafWork := clock.Cycles(1_000 * (1 + rng.Intn(10)))

		var executed int
		var total clock.Cycles
		var build func(c *Ctx, depth int)
		build = func(c *Ctx, depth int) {
			executed++ // engine-serialized: safe
			c.Thread().Work(leafWork)
			total += leafWork
			if depth == 0 {
				return
			}
			for k := 0; k < fanout; k++ {
				c.Spawn(func(cc *Ctx) { build(cc, depth-1) })
			}
			c.Sync()
		}
		rt := New(workers, zeroOv)
		end, st := sim.Run(mcfg(workers), func(th *sim.Thread) {
			rt.Run(th, func(c *Ctx) { build(c, maxDepth) })
		})
		// Node count of a full fanout tree of height maxDepth.
		want := 0
		p := 1
		for d := 0; d <= maxDepth; d++ {
			want += p
			p *= fanout
		}
		if executed != want {
			t.Fatalf("trial %d: executed %d tasks, want %d", trial, executed, want)
		}
		if clock.Cycles(st.Instructions) != total {
			t.Fatalf("trial %d: work not conserved: %g vs %d", trial, st.Instructions, total)
		}
		if end > total {
			t.Fatalf("trial %d: makespan %d beyond serial %d", trial, end, total)
		}
		if end < total/clock.Cycles(workers) {
			t.Fatalf("trial %d: makespan %d below perfect bound", trial, end)
		}
	}
}

// TestDeepRecursionDoesNotOverflow: a deep spawn chain (each task spawning
// one child) exercises the sync/steal path thousands of frames deep.
func TestDeepRecursionDoesNotOverflow(t *testing.T) {
	const depth = 2_000
	rt := New(2, zeroOv)
	var reached bool
	sim.Run(mcfg(2), func(th *sim.Thread) {
		rt.Run(th, func(c *Ctx) {
			var rec func(cc *Ctx, d int)
			rec = func(cc *Ctx, d int) {
				if d == 0 {
					reached = true
					return
				}
				cc.Spawn(func(sc *Ctx) { rec(sc, d-1) })
				cc.Sync()
			}
			rec(c, depth)
		})
	})
	if !reached {
		t.Fatal("deep chain never bottomed out")
	}
}

// TestSequentialFallback: with one worker the runtime degenerates to exact
// serial execution.
func TestSequentialFallback(t *testing.T) {
	rt := New(1, zeroOv)
	end, _ := sim.Run(mcfg(1), func(th *sim.Thread) {
		rt.Run(th, func(c *Ctx) {
			c.For(25, 1, func(cc *Ctx, i int) {
				cc.Thread().Work(1_000)
			})
		})
	})
	if end != 25_000 {
		t.Fatalf("serial fallback makespan = %d, want 25000", end)
	}
}

// TestRunTwiceOnSameThread: a runtime instance can host several Run calls
// back to back.
func TestRunTwiceOnSameThread(t *testing.T) {
	rt := New(3, zeroOv)
	end, _ := sim.Run(mcfg(3), func(th *sim.Thread) {
		for r := 0; r < 2; r++ {
			rt.Run(th, func(c *Ctx) {
				c.For(12, 1, func(cc *Ctx, i int) {
					cc.Thread().Work(5_000)
				})
			})
		}
	})
	if end <= 0 || end > 2*12*5_000 {
		t.Fatalf("double run makespan = %d", end)
	}
}
