package surrogate

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"prophet/internal/obs"
)

// Config tunes a Predictor. The zero value selects sane defaults; zero
// Seed is a valid (deterministic) seed.
type Config struct {
	// Capacity bounds the per-partition training store; once full, new
	// samples displace old ones by seeded reservoir sampling (0 = 1024).
	Capacity int
	// K is the neighbor count of the k-NN head (0 = 8).
	K int
	// MaxRelErr is the confidence gate: a prediction is served only when
	// the cross-validated relative-error estimate of the queried feature
	// neighborhood is at or under this bound (0 = 0.05, the CI gate).
	MaxRelErr float64
	// MinSamples is the training-store size below which the surrogate
	// never answers (0 = 32).
	MinSamples int
	// RefitEvery is how many new observations accumulate between model
	// refits (0 = 64).
	RefitEvery int
	// ShadowEvery shadow-samples every Nth confident hit: the emulator
	// runs anyway, its exact result is served, and the surrogate-vs-
	// emulator error is recorded (0 = 8; negative disables shadowing).
	ShadowEvery int
	// Seed makes reservoir displacement deterministic across runs.
	Seed int64
	// Metrics receives the surrogate.* series (nil disables at no cost).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.K <= 0 {
		c.K = 8
	}
	if c.MaxRelErr <= 0 {
		c.MaxRelErr = 0.05
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.RefitEvery <= 0 {
		c.RefitEvery = 64
	}
	if c.ShadowEvery == 0 {
		c.ShadowEvery = 8
	}
	return c
}

// Predictor is the learned surrogate: per-partition bounded training
// stores (one partition per workload key), a k-NN head and a boosted-
// stumps head selected per partition by cross-validated error, and a
// confidence gate over the neighborhood's CV error. Predict is the hot
// path — it only reads an immutable fitted model snapshot, so concurrent
// predictions never contend with training.
type Predictor struct {
	cfg Config

	mu    sync.RWMutex
	parts map[string]*partition

	hits, fallbacks, observed, refits, shadowRuns *obs.Counter
	absErr, relErr, evalLat                       *obs.Histogram
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	return &Predictor{
		cfg:        cfg,
		parts:      make(map[string]*partition),
		hits:       reg.Counter(obs.MSurrogateHits),
		fallbacks:  reg.Counter(obs.MSurrogateFallbacks),
		observed:   reg.Counter(obs.MSurrogateSamples),
		refits:     reg.Counter(obs.MSurrogateRefits),
		shadowRuns: reg.Counter(obs.MSurrogateShadowRuns),
		absErr:     reg.Histogram(obs.MSurrogateShadowAbsErr),
		relErr:     reg.Histogram(obs.MSurrogateShadowRelErr),
		evalLat:    reg.Histogram(obs.MSurrogateEvalLatency),
	}
}

// sample is one training example: a feature vector and the emulator's
// answer for it.
type sample struct {
	vec    []float64
	target float64
}

// partition is one workload's training store and fitted model.
type partition struct {
	mu       sync.Mutex // guards samples/seen/sinceFit/rng (training side)
	rng      *rand.Rand
	seen     int64
	samples  []sample
	sinceFit int

	served atomic.Int64           // confident answers, for shadow cadence
	model  atomic.Pointer[fitted] // immutable snapshot read by Predict
}

// fitted is an immutable model snapshot: the normalizer, the normalized
// sample matrix, per-sample cross-validated error estimates, and the
// selected head.
type fitted struct {
	dim          int
	mean, invStd []float64
	flat         []float64 // n×dim, row-major, normalized
	targets      []float64
	cvRel        []float64 // per-sample CV relative error of the head
	useStumps    bool
	stumps       *stumpsModel
	k            int
}

func (p *Predictor) partition(key string, create bool) *partition {
	p.mu.RLock()
	part := p.parts[key]
	p.mu.RUnlock()
	if part != nil || !create {
		return part
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if part = p.parts[key]; part == nil {
		h := fnv.New64a()
		h.Write([]byte(key))
		part = &partition{rng: rand.New(rand.NewSource(p.cfg.Seed ^ int64(h.Sum64())))}
		p.parts[key] = part
	}
	return part
}

// Predict answers one request from the surrogate. ok reports whether the
// prediction cleared the confidence gate; when it did, shadow marks a
// shadow-sampled hit — the caller must run the emulator anyway, serve
// the exact result, and report the pair through RecordShadow.
func (p *Predictor) Predict(key string, vec []float64) (val float64, ok, shadow bool) {
	start := time.Now()
	part := p.partition(key, false)
	if part == nil {
		p.fallbacks.Inc()
		return 0, false, false
	}
	m := part.model.Load()
	if m == nil || len(vec) != m.dim {
		p.fallbacks.Inc()
		return 0, false, false
	}
	q := make([]float64, m.dim)
	for i, x := range vec {
		q[i] = (x - m.mean[i]) * m.invStd[i]
	}
	idx, dist := m.nearest(q, m.k)
	if len(idx) == 0 {
		p.fallbacks.Inc()
		return 0, false, false
	}
	// Neighborhood confidence: the distance-weighted mean of the
	// neighbors' cross-validated errors. An exact feature match is
	// memoization of a deterministic emulator — always confident.
	exact := dist[0] < 1e-18
	if !exact {
		var conf, wsum float64
		for j, i := range idx {
			w := 1 / (dist[j] + 1e-9)
			conf += w * m.cvRel[i]
			wsum += w
		}
		if conf/wsum > p.cfg.MaxRelErr {
			p.fallbacks.Inc()
			return 0, false, false
		}
	}
	if exact {
		val = m.targets[idx[0]]
	} else {
		var num, den float64
		for j, i := range idx {
			w := 1 / (dist[j] + 1e-9)
			num += w * m.targets[i]
			den += w
		}
		val = num / den
		if m.stumps != nil {
			// Ensemble agreement gate: the neighborhood CV check above is
			// an average over training points, which is blind to a query
			// that lands between them (a piecewise-constant stumps head can
			// ace grid CV and still step badly at midpoints). Both heads
			// evaluated at the actual query disagreeing beyond the bound is
			// direct evidence this point is not safe to serve.
			alt := m.stumps.predict(q)
			if math.Abs(val-alt) > p.cfg.MaxRelErr*relFloor(val) {
				p.fallbacks.Inc()
				return 0, false, false
			}
			// Agreeing heads are averaged: the k-NN interpolant and the
			// stumps fit err in different directions off the grid, so the
			// ensemble mean beats serving either head alone.
			val = (val + alt) / 2
		}
	}
	p.evalLat.ObserveDuration(time.Since(start))
	n := part.served.Add(1)
	if p.cfg.ShadowEvery > 0 && n%int64(p.cfg.ShadowEvery) == 0 {
		return val, true, true
	}
	p.hits.Inc()
	return val, true, false
}

// Observe feeds one real emulation result back into the training store
// and refits the partition's model on the configured cadence. The vector
// is copied; callers may reuse their buffer.
func (p *Predictor) Observe(key string, vec []float64, target float64) {
	if len(vec) == 0 || math.IsNaN(target) || math.IsInf(target, 0) {
		return
	}
	part := p.partition(key, true)
	part.mu.Lock()
	defer part.mu.Unlock()
	part.seen++
	s := sample{vec: append([]float64(nil), vec...), target: target}
	if len(part.samples) < p.cfg.Capacity {
		part.samples = append(part.samples, s)
	} else if j := part.rng.Int63n(part.seen); j < int64(p.cfg.Capacity) {
		part.samples[j] = s
	} else {
		return // reservoir declined the sample; nothing new to fit
	}
	p.observed.Inc()
	part.sinceFit++
	if n := len(part.samples); n >= p.cfg.MinSamples &&
		(part.model.Load() == nil || part.sinceFit >= p.cfg.RefitEvery) {
		part.model.Store(p.refit(part.samples))
		part.sinceFit = 0
		p.refits.Inc()
	}
}

// RecordShadow reports one shadow-sampled pair: the surrogate's
// prediction and the emulator's exact answer for the same request.
func (p *Predictor) RecordShadow(predicted, actual float64) {
	p.shadowRuns.Inc()
	diff := math.Abs(predicted - actual)
	p.absErr.Observe(int64(diff*1000 + 0.5))
	p.relErr.Observe(int64(diff/relFloor(actual)*10000 + 0.5))
}

// Samples returns the total training-store size across partitions (for
// tests and diagnostics).
func (p *Predictor) Samples() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, part := range p.parts {
		part.mu.Lock()
		n += len(part.samples)
		part.mu.Unlock()
	}
	return n
}

// maxCVPoints caps the leave-one-out evaluation subset: CV cost is
// O(|subset|·n·dim) per refit, so the subset is a deterministic stride
// over the store rather than the whole store.
const maxCVPoints = 256

// refit builds a fresh immutable model snapshot from the partition's
// samples: z-score normalizer, normalized matrix, leave-one-out k-NN CV,
// fold-out boosted-stumps CV, head selection by mean CV error, and the
// selected head's per-sample error estimates for the confidence gate.
func (p *Predictor) refit(samples []sample) *fitted {
	n := len(samples)
	dim := len(samples[0].vec)
	m := &fitted{dim: dim, k: p.cfg.K, mean: make([]float64, dim), invStd: make([]float64, dim)}
	for _, s := range samples {
		for i, x := range s.vec {
			m.mean[i] += x
		}
	}
	for i := range m.mean {
		m.mean[i] /= float64(n)
	}
	for _, s := range samples {
		for i, x := range s.vec {
			d := x - m.mean[i]
			m.invStd[i] += d * d
		}
	}
	for i, ss := range m.invStd {
		if sd := math.Sqrt(ss / float64(n)); sd > 1e-12 {
			m.invStd[i] = 1 / sd
		} else {
			m.invStd[i] = 0 // constant feature contributes nothing
		}
	}
	m.flat = make([]float64, n*dim)
	m.targets = make([]float64, n)
	for r, s := range samples {
		for i, x := range s.vec {
			m.flat[r*dim+i] = (x - m.mean[i]) * m.invStd[i]
		}
		m.targets[r] = s.target
	}

	// Leave-one-out k-NN error on a deterministic stride subset,
	// propagated to unevaluated samples from their nearest evaluated one.
	stride := (n + maxCVPoints - 1) / maxCVPoints
	evalIdx := make([]int, 0, maxCVPoints)
	for i := 0; i < n; i += stride {
		evalIdx = append(evalIdx, i)
	}
	knnErr := make([]float64, n)
	var knnMean float64
	for _, i := range evalIdx {
		pred := m.looKNN(i)
		knnErr[i] = math.Abs(pred-m.targets[i]) / relFloor(m.targets[i])
		knnMean += knnErr[i]
	}
	knnMean /= float64(len(evalIdx))
	if stride > 1 {
		for i := 0; i < n; i++ {
			if i%stride == 0 {
				continue
			}
			knnErr[i] = knnErr[m.nearestOf(i, evalIdx)]
		}
	}

	// Fold-out boosted-stumps error: each sample is held out exactly
	// once, so every sample gets a genuine out-of-fold error estimate.
	order := sortOrders(m.flat, dim, n)
	const folds = 4
	stumpsErr := make([]float64, n)
	var stumpsMean float64
	stumpsOK := n >= 2*folds
	if stumpsOK {
		include := make([]bool, n)
		for f := 0; f < folds && stumpsOK; f++ {
			for i := range include {
				include[i] = i%folds != f
			}
			sm := fitStumps(m.flat, dim, n, m.targets, include, order)
			if sm == nil {
				stumpsOK = false
				break
			}
			for i := f; i < n; i += folds {
				stumpsErr[i] = math.Abs(sm.predict(m.flat[i*dim:(i+1)*dim])-m.targets[i]) / relFloor(m.targets[i])
				stumpsMean += stumpsErr[i]
			}
		}
		stumpsMean /= float64(n)
	}
	// The full-fit stumps model is kept even when k-NN wins selection:
	// Predict cross-checks the two heads at every non-exact query (the
	// ensemble agreement gate), so both must be available.
	if stumpsOK {
		if sm := fitStumps(m.flat, dim, n, m.targets, nil, order); sm != nil {
			m.stumps = sm
			if stumpsMean < knnMean {
				m.useStumps, m.cvRel = true, stumpsErr
				return m
			}
		}
	}
	m.cvRel = knnErr
	return m
}

// looKNN predicts sample i from its K nearest other samples.
func (m *fitted) looKNN(i int) float64 {
	q := m.flat[i*m.dim : (i+1)*m.dim]
	idx, dist := m.nearestExcluding(q, m.k, i)
	var num, den float64
	for j, nb := range idx {
		w := 1 / (dist[j] + 1e-9)
		num += w * m.targets[nb]
		den += w
	}
	if den == 0 {
		return m.targets[i]
	}
	return num / den
}

// nearest returns the indices and squared distances of the k nearest
// training rows to the normalized query q, nearest first.
func (m *fitted) nearest(q []float64, k int) ([]int, []float64) {
	return m.nearestExcluding(q, k, -1)
}

func (m *fitted) nearestExcluding(q []float64, k, skip int) ([]int, []float64) {
	n := len(m.targets)
	if k > n {
		k = n
	}
	idx := make([]int, 0, k)
	dist := make([]float64, 0, k)
	worst := math.Inf(1)
	for r := 0; r < n; r++ {
		if r == skip {
			continue
		}
		row := m.flat[r*m.dim : (r+1)*m.dim]
		var d float64
		for i, x := range q {
			diff := x - row[i]
			d += diff * diff
			if d >= worst && len(idx) == k {
				break
			}
		}
		if len(idx) == k && d >= worst {
			continue
		}
		// Insertion sort into the fixed-size best list (k is small).
		pos := len(idx)
		for pos > 0 && dist[pos-1] > d {
			pos--
		}
		if len(idx) < k {
			idx = append(idx, 0)
			dist = append(dist, 0)
		}
		copy(idx[pos+1:], idx[pos:])
		copy(dist[pos+1:], dist[pos:])
		idx[pos], dist[pos] = r, d
		worst = dist[len(dist)-1]
	}
	return idx, dist
}

// nearestOf returns the member of candidates closest to row i.
func (m *fitted) nearestOf(i int, candidates []int) int {
	q := m.flat[i*m.dim : (i+1)*m.dim]
	best, bestD := candidates[0], math.Inf(1)
	for _, c := range candidates {
		row := m.flat[c*m.dim : (c+1)*m.dim]
		var d float64
		for j, x := range q {
			diff := x - row[j]
			d += diff * diff
			if d >= bestD {
				break
			}
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// relFloor is the denominator of relative errors: |target| floored so
// near-zero speedups do not blow the estimate up.
func relFloor(target float64) float64 {
	a := math.Abs(target)
	if a < 0.05 {
		return 0.05
	}
	return a
}
