// Package surrogate implements a learned surrogate predictor that sits
// in front of the emulators: a deterministic feature extractor over the
// program tree, the request and the target machine spec, plus a small
// pure-Go model — k-NN over normalized features with distance-weighted
// voting and gradient-boosted regression stumps as a second head,
// selected per workload by cross-validated error.
//
// The surrogate never invents answers it cannot defend: a prediction is
// served only when the cross-validated error estimate of the queried
// feature neighborhood is under a configurable bound (Config.MaxRelErr);
// everything else falls back to full emulation, whose result is fed back
// into the bounded, seeded-deterministic training store. A fraction of
// confident hits are shadow-sampled: the emulator runs anyway, the exact
// result is returned, and the surrogate-vs-emulator error is recorded in
// the obs registry — the accuracy claim stays continuously measured in
// production, not just in CI.
package surrogate

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"prophet/internal/counters"
	"prophet/internal/machine"
	"prophet/internal/tree"
)

// TreeStats is the request-independent part of a workload's feature
// vector, computed once per program tree and cached by callers. All
// counts use log1p so trees spanning many orders of magnitude normalize
// sensibly.
type TreeStats struct {
	// Shape: size, depth and fan-out of the program tree.
	LogSerialCycles float64 // log1p(total serial cycles)
	Depth           float64 // max node depth
	LogPhysNodes    float64 // log1p(stored nodes)
	LogLogicalNodes float64 // log1p(Repeat-expanded nodes)
	TopSections     float64 // top-level Sec count
	LogTasks        float64 // log1p(logical tasks under top-level Secs)
	LogMaxFanout    float64 // log1p(max logical Task count of any Sec)
	LogMeanTasks    float64 // log1p(mean logical Task count per Sec)

	// Serial/parallel balance and leaf-length distribution.
	SerialOutsideFrac float64 // serial-outside-sections cycles / total
	LockFrac          float64 // L-leaf cycles / total
	WaitFrac          float64 // W-leaf cycles / total
	LogULeaves        float64 // log1p(physical U leaves)
	LogLLeaves        float64 // log1p(physical L leaves)
	MeanLogLeafLen    float64 // mean of log1p(leaf Len)
	StdLogLeafLen     float64 // stddev of log1p(leaf Len)
	MaxLogLeafLen     float64 // max log1p(leaf Len)
	PipelineFrac      float64 // pipeline Secs / Secs
	NoWaitFrac        float64 // nowait Secs / Secs

	// Burden inputs: the paper's N, D, MPI and δ from the whole-run
	// counter sample.
	LogN     float64 // log1p(retired instructions)
	LogD     float64 // log1p(LLC misses)
	MPIMilli float64 // misses per kilo-instruction
	Delta    float64 // DRAM traffic, bytes/cycle

	// Fingerprint identifies the tree structure (FNV-1a over the
	// pre-order walk); callers use it to key per-workload partitions.
	Fingerprint uint64
}

// Stats extracts TreeStats from a program tree and its whole-run counter
// sample. It is deterministic: the same tree and counters always produce
// the same stats (and Fingerprint).
func Stats(root *tree.Node, total counters.Sample) TreeStats {
	var ts TreeStats
	h := fnv.New64a()
	var buf [8]byte
	hash64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}

	totalLen := float64(root.TotalLen())
	phys, logical := root.NodeCount()

	var (
		depth                   int
		secs, pipeSecs, nowSecs int
		uLeaves, lLeaves        int
		lockLen, waitLen        float64
		leafLogs                []float64
	)
	var walk func(n *tree.Node, d int, reps float64)
	walk = func(n *tree.Node, d int, reps float64) {
		if d > depth {
			depth = d
		}
		hash64(uint64(n.Kind)<<56 | uint64(n.Reps()))
		hash64(uint64(n.Len))
		hash64(uint64(n.LockID)<<2 | b2u(n.NoWait)<<1 | b2u(n.Pipeline))
		reps *= float64(n.Reps())
		switch n.Kind {
		case tree.Sec:
			secs++
			if n.Pipeline {
				pipeSecs++
			}
			if n.NoWait {
				nowSecs++
			}
		case tree.U:
			uLeaves++
			leafLogs = append(leafLogs, math.Log1p(float64(n.Len)))
		case tree.L:
			lLeaves++
			lockLen += float64(n.Len) * reps
			leafLogs = append(leafLogs, math.Log1p(float64(n.Len)))
		case tree.W:
			waitLen += float64(n.Len) * reps
			leafLogs = append(leafLogs, math.Log1p(float64(n.Len)))
		}
		for _, c := range n.Children {
			walk(c, d+1, reps)
		}
	}
	walk(root, 0, 1)

	top := root.TopLevelSections()
	var tasks, maxTasks int
	for _, sec := range top {
		t := sec.Tasks()
		tasks += t
		if t > maxTasks {
			maxTasks = t
		}
	}

	ts.LogSerialCycles = math.Log1p(totalLen)
	ts.Depth = float64(depth)
	ts.LogPhysNodes = math.Log1p(float64(phys))
	ts.LogLogicalNodes = math.Log1p(float64(logical))
	ts.TopSections = float64(len(top))
	ts.LogTasks = math.Log1p(float64(tasks))
	ts.LogMaxFanout = math.Log1p(float64(maxTasks))
	if len(top) > 0 {
		ts.LogMeanTasks = math.Log1p(float64(tasks) / float64(len(top)))
	}
	if totalLen > 0 {
		ts.SerialOutsideFrac = float64(root.SerialOutsideSections()) / totalLen
		ts.LockFrac = lockLen / totalLen
		ts.WaitFrac = waitLen / totalLen
	}
	ts.LogULeaves = math.Log1p(float64(uLeaves))
	ts.LogLLeaves = math.Log1p(float64(lLeaves))
	ts.MeanLogLeafLen, ts.StdLogLeafLen, ts.MaxLogLeafLen = meanStdMax(leafLogs)
	if secs > 0 {
		ts.PipelineFrac = float64(pipeSecs) / float64(secs)
		ts.NoWaitFrac = float64(nowSecs) / float64(secs)
	}

	ts.LogN = math.Log1p(float64(total.Instructions))
	ts.LogD = math.Log1p(float64(total.LLCMisses))
	ts.MPIMilli = total.MPI() * 1000
	ts.Delta = total.TrafficBytesPerCycle()

	ts.Fingerprint = h.Sum64()
	return ts
}

// RequestFeatures is the request-dependent part of the feature vector,
// expressed as plain scalars so the package depends on no public request
// types. Method/Paradigm/SchedKind take the uint8 values of the public
// enums.
type RequestFeatures struct {
	Method      uint8
	Threads     int
	Paradigm    uint8
	SchedKind   uint8
	SchedChunk  int
	MemoryModel bool
}

// Feature-vector layout: tree block, counter block, request block,
// machine block. NumFeatures is the total dimensionality; Vector always
// returns exactly this many values, in a fixed order.
const (
	numTreeFeatures    = 19
	numCounterFeatures = 4
	numMethodOneHot    = 5
	numSchedOneHot     = 4
	numRequestFeatures = numMethodOneHot + numSchedOneHot + 5
	numMachineFeatures = 11
	// NumFeatures is the dimensionality of Vector's output.
	NumFeatures = numTreeFeatures + numCounterFeatures + numRequestFeatures + numMachineFeatures
)

// Vector assembles the full feature vector for one request: the cached
// tree stats, the request scalars, and the target machine spec (nil
// falls back to the default preset). Append order is fixed; the k-NN
// normalizer makes the heterogeneous scales comparable.
func Vector(ts *TreeStats, rf RequestFeatures, spec *machine.Spec) []float64 {
	if spec == nil {
		spec = machine.Default()
	}
	v := make([]float64, 0, NumFeatures)
	// Tree block.
	v = append(v,
		ts.LogSerialCycles, ts.Depth, ts.LogPhysNodes, ts.LogLogicalNodes,
		ts.TopSections, ts.LogTasks, ts.LogMaxFanout, ts.LogMeanTasks,
		ts.SerialOutsideFrac, ts.LockFrac, ts.WaitFrac,
		ts.LogULeaves, ts.LogLLeaves,
		ts.MeanLogLeafLen, ts.StdLogLeafLen, ts.MaxLogLeafLen,
		ts.PipelineFrac, ts.NoWaitFrac,
		float64(ts.Fingerprint&1023), // cheap tree-identity separator within a mixed partition
	)
	// Counter block.
	v = append(v, ts.LogN, ts.LogD, ts.MPIMilli, ts.Delta)
	// Request block.
	for i := 0; i < numMethodOneHot; i++ {
		v = append(v, oneHot(int(rf.Method), i, numMethodOneHot))
	}
	for i := 0; i < numSchedOneHot; i++ {
		v = append(v, oneHot(int(rf.SchedKind), i, numSchedOneHot))
	}
	cores := spec.Cores()
	v = append(v,
		float64(rf.Threads),
		math.Log1p(float64(rf.Threads)),
		float64(rf.Threads)/float64(cores),
		math.Log1p(float64(rf.SchedChunk)),
		b2f(rf.MemoryModel),
	)
	// Machine block.
	minSpeed, maxSpeed, sumSpeed := math.Inf(1), 0.0, 0.0
	for _, g := range spec.CoreGroups {
		if g.Speed < minSpeed {
			minSpeed = g.Speed
		}
		if g.Speed > maxSpeed {
			maxSpeed = g.Speed
		}
		sumSpeed += g.Speed * float64(g.Count)
	}
	secondBW, secondFrac := 0.0, 0.0
	if d := spec.DRAM.SecondDomain; d != nil {
		secondBW = d.BandwidthBytesPerCycle
		secondFrac = float64(d.Cores) / float64(cores)
	}
	v = append(v,
		math.Log1p(float64(cores)),
		float64(len(spec.CoreGroups)),
		sumSpeed/float64(cores), // mean core speed
		maxSpeed/minSpeed,       // asymmetry ratio (1 = homogeneous)
		math.Log1p(float64(spec.LLC.SizeBytes)),
		float64(spec.LLC.Ways),
		math.Log1p(spec.DRAM.UnloadedLatency),
		math.Log1p(spec.DRAM.BandwidthBytesPerCycle+secondBW),
		spec.DRAM.Knee,
		secondFrac,
		math.Log1p(float64(spec.Quantum)),
	)
	return v
}

func oneHot(val, slot, n int) float64 {
	if val >= n {
		val = n - 1
	}
	if val == slot {
		return 1
	}
	return 0
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func meanStdMax(xs []float64) (mean, std, max float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	for _, x := range xs {
		mean += x
		if x > max {
			max = x
		}
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std, max
}
