package surrogate

import (
	"fmt"
	"math"
	"testing"

	"prophet/internal/counters"
	"prophet/internal/machine"
	"prophet/internal/obs"
	"prophet/internal/tree"
)

func sampleTree() *tree.Node {
	return tree.NewRoot(
		tree.NewU(1000),
		tree.NewSec("loop",
			&tree.Node{Kind: tree.Task, Repeat: 50, Children: []*tree.Node{
				tree.NewU(5000), tree.NewL(1, 200),
			}},
		),
		tree.NewU(500),
	)
}

func TestVectorDeterministicAndSized(t *testing.T) {
	ts := Stats(sampleTree(), counters.Sample{Instructions: 1e6, Cycles: 2e6, LLCMisses: 1e4})
	rf := RequestFeatures{Method: 0, Threads: 8, Paradigm: 0, SchedKind: 2, SchedChunk: 1, MemoryModel: true}
	a := Vector(&ts, rf, machine.Default())
	b := Vector(&ts, rf, machine.Default())
	if len(a) != NumFeatures {
		t.Fatalf("Vector returned %d features, want NumFeatures=%d", len(a), NumFeatures)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vector not deterministic at dim %d: %v vs %v", i, a[i], b[i])
		}
	}
	// The request must move the vector.
	rf2 := rf
	rf2.Threads = 12
	c := Vector(&ts, rf2, machine.Default())
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("changing Threads did not change the feature vector")
	}
}

func TestStatsFingerprintSeparatesTrees(t *testing.T) {
	a := Stats(sampleTree(), counters.Sample{})
	other := sampleTree()
	other.Children[0].Len = 1001
	b := Stats(other, counters.Sample{})
	if a.Fingerprint == b.Fingerprint {
		t.Fatal("different trees share a fingerprint")
	}
	if a.Fingerprint != Stats(sampleTree(), counters.Sample{}).Fingerprint {
		t.Fatal("fingerprint not deterministic")
	}
}

// vecAt builds a tiny synthetic feature vector.
func vecAt(x, y float64) []float64 { return []float64{x, y, 1} }

// trainSmooth feeds a smooth 2-D target function; k-NN should learn it.
func trainSmooth(p *Predictor, n int) {
	for i := 0; i < n; i++ {
		x := float64(i%16) / 4
		y := float64(i/16) / 4
		p.Observe("w", vecAt(x, y), 2+x+0.5*y)
	}
}

func TestPredictorServesConfidentNeighborhoods(t *testing.T) {
	p := New(Config{MinSamples: 16, RefitEvery: 16, ShadowEvery: -1, MaxRelErr: 0.10})
	trainSmooth(p, 256)
	val, ok, _ := p.Predict("w", vecAt(1.0, 1.0))
	if !ok {
		t.Fatal("expected a confident prediction inside the trained region")
	}
	want := 2 + 1.0 + 0.5
	if math.Abs(val-want)/want > 0.10 {
		t.Fatalf("prediction %v too far from %v", val, want)
	}
}

func TestExactMatchIsMemoized(t *testing.T) {
	p := New(Config{MinSamples: 16, RefitEvery: 16, ShadowEvery: -1, MaxRelErr: 0.05})
	trainSmooth(p, 256)
	// (2.0, 1.0) is a training point: x=8/4, y=4/4 → target 2+2+0.5=4.5.
	val, ok, _ := p.Predict("w", vecAt(2.0, 1.0))
	if !ok {
		t.Fatal("expected exact training point to be served")
	}
	if val != 4.5 {
		t.Fatalf("exact match returned %v, want the stored target 4.5", val)
	}
}

func TestUnknownPartitionAndFarQueriesFallBack(t *testing.T) {
	p := New(Config{MinSamples: 16, RefitEvery: 16, ShadowEvery: -1})
	if _, ok, _ := p.Predict("nope", vecAt(0, 0)); ok {
		t.Fatal("untrained partition must fall back")
	}
	// A jagged target (alternating ±) has high CV error everywhere: the
	// gate must refuse to serve even inside the sampled region.
	for i := 0; i < 256; i++ {
		x := float64(i%16) / 4
		y := float64(i/16) / 4
		sign := float64(1)
		if (i/16+i)%2 == 0 {
			sign = -1
		}
		p.Observe("jagged", vecAt(x, y), 10+sign*8)
	}
	if _, ok, _ := p.Predict("jagged", vecAt(1.01, 1.01)); ok {
		t.Fatal("confidence gate served a jagged (high-CV-error) neighborhood")
	}
}

func TestShadowCadence(t *testing.T) {
	p := New(Config{MinSamples: 16, RefitEvery: 16, ShadowEvery: 4, MaxRelErr: 0.10})
	trainSmooth(p, 256)
	shadows := 0
	for i := 0; i < 40; i++ {
		_, ok, shadow := p.Predict("w", vecAt(1.0, 1.0))
		if !ok {
			t.Fatal("expected confident predictions")
		}
		if shadow {
			shadows++
		}
	}
	if shadows != 10 {
		t.Fatalf("got %d shadow samples over 40 hits with ShadowEvery=4, want 10", shadows)
	}
}

func TestReservoirBoundedAndDeterministic(t *testing.T) {
	mk := func() *Predictor {
		p := New(Config{Capacity: 64, MinSamples: 16, RefitEvery: 32, ShadowEvery: -1, Seed: 7})
		for i := 0; i < 500; i++ {
			x := float64(i % 23)
			p.Observe("w", vecAt(x, x/2), 1+x)
		}
		return p
	}
	a, b := mk(), mk()
	if a.Samples() != 64 {
		t.Fatalf("store holds %d samples, want the 64 capacity", a.Samples())
	}
	for _, q := range [][]float64{vecAt(3, 1.5), vecAt(11, 5.5), vecAt(22, 11)} {
		av, aok, _ := a.Predict("w", q)
		bv, bok, _ := b.Predict("w", q)
		if av != bv || aok != bok {
			t.Fatalf("same seed diverged: (%v,%v) vs (%v,%v)", av, aok, bv, bok)
		}
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := &obs.Registry{}
	p := New(Config{MinSamples: 16, RefitEvery: 16, ShadowEvery: 2, MaxRelErr: 0.10, Metrics: reg})
	trainSmooth(p, 64)
	var served, shadows int
	for i := 0; i < 10; i++ {
		if val, ok, shadow := p.Predict("w", vecAt(1.0, 0.5)); ok {
			if shadow {
				shadows++
				p.RecordShadow(val, 3.25)
			} else {
				served++
			}
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.MSurrogateHits]; got != int64(served) {
		t.Fatalf("hits counter %d, want %d", got, served)
	}
	if got := snap.Counters[obs.MSurrogateShadowRuns]; got != int64(shadows) {
		t.Fatalf("shadow.runs counter %d, want %d", got, shadows)
	}
	if snap.Counters[obs.MSurrogateSamples] == 0 || snap.Counters[obs.MSurrogateRefits] == 0 {
		t.Fatal("train_samples / refits not recorded")
	}
	if snap.Histograms[obs.MSurrogateEvalLatency].Count == 0 {
		t.Fatal("eval latency histogram empty")
	}
	if snap.Histograms[obs.MSurrogateShadowRelErr].Count != int64(shadows) {
		t.Fatal("shadow rel-err histogram count mismatch")
	}
}

func TestStumpsLearnStepFunction(t *testing.T) {
	// A step function is what stumps represent exactly and k-NN blurs:
	// the head selection should converge and predict both plateaus.
	n, dim := 200, 3
	flat := make([]float64, n*dim)
	targets := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n)
		flat[i*dim] = x
		flat[i*dim+1] = math.Mod(float64(i)*0.37, 1)
		flat[i*dim+2] = 1
		if x < 0.5 {
			targets[i] = 2
		} else {
			targets[i] = 10
		}
	}
	m := fitStumps(flat, dim, n, targets, nil, sortOrders(flat, dim, n))
	if m == nil {
		t.Fatal("fitStumps returned nil on a splittable set")
	}
	lo := m.predict([]float64{0.2, 0.5, 1})
	hi := m.predict([]float64{0.8, 0.5, 1})
	if math.Abs(lo-2) > 0.5 || math.Abs(hi-10) > 0.5 {
		t.Fatalf("stumps predict lo=%v hi=%v, want ≈2 and ≈10", lo, hi)
	}
}

func TestObserveRejectsGarbage(t *testing.T) {
	p := New(Config{})
	p.Observe("w", nil, 1)
	p.Observe("w", vecAt(1, 1), math.NaN())
	p.Observe("w", vecAt(1, 1), math.Inf(1))
	if p.Samples() != 0 {
		t.Fatalf("garbage observations were stored: %d samples", p.Samples())
	}
}

func TestPartitionsAreIndependent(t *testing.T) {
	p := New(Config{MinSamples: 16, RefitEvery: 16, ShadowEvery: -1, MaxRelErr: 0.10})
	trainSmooth(p, 256)
	for i := 0; i < 64; i++ {
		p.Observe("other", vecAt(float64(i%8), 0), 100+float64(i%8))
	}
	v1, ok1, _ := p.Predict("w", vecAt(1, 1))
	v2, ok2, _ := p.Predict("other", vecAt(1, 0))
	if !ok1 || !ok2 {
		t.Fatalf("both partitions should answer (ok1=%v ok2=%v)", ok1, ok2)
	}
	if math.Abs(v1-3.5) > 1 || math.Abs(v2-101) > 2 {
		t.Fatalf("partition cross-talk: v1=%v (want ≈3.5) v2=%v (want ≈101)", v1, v2)
	}
}

func BenchmarkPredict(b *testing.B) {
	p := New(Config{MinSamples: 16, RefitEvery: 512, ShadowEvery: -1, MaxRelErr: 0.2, Capacity: 512})
	ts := Stats(sampleTree(), counters.Sample{Instructions: 1e6, Cycles: 2e6, LLCMisses: 1e4})
	for i := 0; i < 512; i++ {
		rf := RequestFeatures{Threads: 1 + i%24, SchedKind: uint8(i % 4), MemoryModel: i%2 == 0}
		p.Observe("w", Vector(&ts, rf, machine.Default()), 1+float64(i%24)/2)
	}
	q := Vector(&ts, RequestFeatures{Threads: 8, MemoryModel: true}, machine.Default())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict("w", q)
	}
}

func TestRefitHandlesTinyAndDuplicateStores(t *testing.T) {
	p := New(Config{MinSamples: 2, RefitEvery: 2, ShadowEvery: -1})
	for i := 0; i < 8; i++ {
		p.Observe("dup", vecAt(1, 1), 5) // all-identical samples
	}
	val, ok, _ := p.Predict("dup", vecAt(1, 1))
	if !ok || val != 5 {
		t.Fatalf("degenerate all-duplicate store: got (%v, %v), want (5, true)", val, ok)
	}
}

func ExampleStats() {
	ts := Stats(sampleTree(), counters.Sample{Instructions: 1000, Cycles: 2000, LLCMisses: 10})
	fmt.Println(len(Vector(&ts, RequestFeatures{Threads: 4}, nil)) == NumFeatures)
	// Output: true
}
