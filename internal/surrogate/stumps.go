package surrogate

import "sort"

// stumpsModel is the second prediction head: gradient-boosted regression
// stumps fit on the normalized feature matrix. Each round greedily picks
// the single (feature, threshold) split that best explains the current
// residuals and commits a learning-rate-damped two-leaf correction. The
// model is tiny (rounds × one split), evaluates in O(rounds), and — like
// everything in this package — needs no dependency beyond the standard
// library.
type stumpsModel struct {
	bias   float64
	stumps []stump
}

type stump struct {
	feat        int
	thresh      float64
	left, right float64
}

const (
	stumpRounds = 64
	stumpRate   = 0.3
)

// sortOrders pre-sorts each feature's sample order once over the full
// row-major matrix; boosting rounds (and every CV fold, via the include
// mask) reuse it instead of re-sorting.
func sortOrders(flat []float64, dim, n int) [][]int {
	order := make([][]int, dim)
	for f := 0; f < dim; f++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		f := f
		sort.Slice(idx, func(a, b int) bool {
			return flat[idx[a]*dim+f] < flat[idx[b]*dim+f]
		})
		order[f] = idx
	}
	return order
}

// fitStumps trains on the samples selected by include (nil = all) out of
// n rows of dim features stored row-major in flat. order must come from
// sortOrders over the same matrix. It returns nil when there is nothing
// to split.
func fitStumps(flat []float64, dim, n int, targets []float64, include []bool, order [][]int) *stumpsModel {
	m := &stumpsModel{}
	count := 0
	for i := 0; i < n; i++ {
		if include != nil && !include[i] {
			continue
		}
		m.bias += targets[i]
		count++
	}
	if count < 2 || dim == 0 {
		return nil
	}
	m.bias /= float64(count)

	res := make([]float64, n)
	for i := 0; i < n; i++ {
		if include == nil || include[i] {
			res[i] = targets[i] - m.bias
		}
	}
	for round := 0; round < stumpRounds; round++ {
		best, ok := bestSplit(flat, dim, count, res, include, order)
		if !ok {
			break
		}
		best.left *= stumpRate
		best.right *= stumpRate
		m.stumps = append(m.stumps, best)
		for i := 0; i < n; i++ {
			if include != nil && !include[i] {
				continue
			}
			if flat[i*dim+best.feat] <= best.thresh {
				res[i] -= best.left
			} else {
				res[i] -= best.right
			}
		}
	}
	if len(m.stumps) == 0 {
		return nil
	}
	return m
}

// bestSplit scans every feature's sorted order with prefix sums and
// returns the split maximizing the variance-reduction gain
// sumL²/nL + sumR²/nR. Leaf values are the residual means of each side.
func bestSplit(flat []float64, dim, count int, res []float64, include []bool, order [][]int) (stump, bool) {
	var total float64
	for i, r := range res {
		if include == nil || include[i] {
			total += r
		}
	}
	var best stump
	bestGain := total * total / float64(count) // gain of "no split"
	found := false
	for f := 0; f < dim; f++ {
		var sumL float64
		seen := 0
		prev := 0.0
		havePrev := false
		for _, i := range order[f] {
			if include != nil && !include[i] {
				continue
			}
			v := flat[i*dim+f]
			if havePrev && v > prev && seen < count {
				nL := float64(seen)
				nR := float64(count - seen)
				sumR := total - sumL
				gain := sumL*sumL/nL + sumR*sumR/nR
				if gain > bestGain+1e-12 {
					bestGain = gain
					best = stump{feat: f, thresh: (prev + v) / 2, left: sumL / nL, right: sumR / nR}
					found = true
				}
			}
			sumL += res[i]
			seen++
			prev, havePrev = v, true
		}
	}
	return best, found
}

// predict evaluates the model on one normalized feature vector.
func (m *stumpsModel) predict(vec []float64) float64 {
	out := m.bias
	for _, s := range m.stumps {
		if vec[s.feat] <= s.thresh {
			out += s.left
		} else {
			out += s.right
		}
	}
	return out
}
