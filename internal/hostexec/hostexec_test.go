package hostexec

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prophet/internal/clock"
	"prophet/internal/omprt"
	"prophet/internal/synth"
	"prophet/internal/tree"
)

// The host has an unknown core count (possibly 1), so these tests assert
// correctness — every iteration exactly once, mutual exclusion, ordering —
// not speedups.

func TestParallelForAllSchedules(t *testing.T) {
	for _, sched := range []omprt.Sched{
		omprt.SchedStatic, omprt.SchedStatic1, omprt.SchedDynamic1, omprt.SchedGuided,
		{Kind: omprt.Dynamic, Chunk: 7},
	} {
		n := 237
		counts := make([]int32, n)
		ParallelFor(4, n, sched, func(w, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("%v: iteration %d ran %d times", sched, i, c)
			}
		}
	}
}

func TestParallelForDegenerate(t *testing.T) {
	ran := false
	ParallelFor(0, 1, omprt.SchedStatic, func(w, i int) { ran = true })
	if !ran {
		t.Fatal("nthreads clamp failed")
	}
	ParallelFor(4, 0, omprt.SchedStatic, func(w, i int) { t.Fatal("body ran for n=0") })
}

func TestPoolSpawnSync(t *testing.T) {
	p := NewPool(4)
	var sum atomic.Int64
	p.Run(func(c *Ctx) {
		for i := 1; i <= 100; i++ {
			i := i
			c.Spawn(func(*Ctx) { sum.Add(int64(i)) })
		}
		c.Sync()
		if got := sum.Load(); got != 5050 {
			t.Errorf("after sync: sum = %d, want 5050", got)
		}
	})
}

func TestPoolImplicitSyncAtReturn(t *testing.T) {
	p := NewPool(2)
	var leaf atomic.Bool
	p.Run(func(c *Ctx) {
		c.Spawn(func(cc *Ctx) {
			cc.Spawn(func(*Ctx) {
				time.Sleep(time.Millisecond)
				leaf.Store(true)
			})
			// no explicit sync: implicit at return
		})
		c.Sync()
		if !leaf.Load() {
			t.Error("grandchild escaped the implicit sync")
		}
	})
}

func TestPoolForCoversRange(t *testing.T) {
	p := NewPool(3)
	n := 500
	counts := make([]int32, n)
	p.Run(func(c *Ctx) {
		c.For(n, 0, func(cc *Ctx, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
	})
	for i, cnt := range counts {
		if cnt != 1 {
			t.Fatalf("iteration %d ran %d times", i, cnt)
		}
	}
}

func TestPoolNestedFor(t *testing.T) {
	p := NewPool(4)
	var total atomic.Int64
	p.Run(func(c *Ctx) {
		c.For(10, 1, func(cc *Ctx, i int) {
			cc.For(10, 1, func(_ *Ctx, j int) {
				total.Add(1)
			})
		})
	})
	if total.Load() != 100 {
		t.Fatalf("nested for executed %d bodies, want 100", total.Load())
	}
}

func TestFakeDelayDuration(t *testing.T) {
	hz := clock.DefaultHz
	start := time.Now()
	FakeDelay(clock.Cycles(hz/100), hz) // 10 ms
	got := time.Since(start)
	if got < 9*time.Millisecond {
		t.Fatalf("FakeDelay returned after %v, want >= ~10ms", got)
	}
	if got > 200*time.Millisecond {
		t.Fatalf("FakeDelay took %v, far beyond 10ms", got)
	}
	// Degenerate inputs return immediately.
	start = time.Now()
	FakeDelay(0, hz)
	FakeDelay(-5, 0)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("degenerate FakeDelay spun")
	}
}

func TestHostSynthesizerMeasuresSection(t *testing.T) {
	// 8 tasks x ~2ms: measured time must be positive and bounded by the
	// serial time (plus generous scheduling slack).
	tasks := make([]*tree.Node, 8)
	perTask := clock.FromSeconds(0.002, clock.DefaultHz)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(perTask))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	s := &HostSynthesizer{Threads: 2, Sched: omprt.SchedDynamic1}
	got := s.PredictTime(root)
	serial := root.TotalLen()
	if got <= 0 {
		t.Fatal("no time measured")
	}
	if float64(got) > 3*float64(serial) {
		t.Fatalf("measured %d far beyond serial %d", got, serial)
	}
	if sp := s.Speedup(root); sp <= 0 {
		t.Fatalf("speedup %f", sp)
	}
}

func TestHostSynthesizerLocksExclusive(t *testing.T) {
	// Mutual exclusion through the emulated L nodes: run a section whose
	// tasks all hold lock 1 and assert no overlap via a guarded counter.
	var inCS atomic.Int32
	var violated atomic.Bool
	// Wrap FakeDelay-based emulation indirectly: use tiny L nodes and
	// hook exclusivity by wrapping the lock map — here we just verify
	// with a direct Pool + mutex scenario equivalent to runTask's path.
	s := &HostSynthesizer{Threads: 4}
	m := s.lock(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			if inCS.Add(1) > 1 {
				violated.Store(true)
			}
			time.Sleep(100 * time.Microsecond)
			inCS.Add(-1)
			m.Unlock()
		}()
	}
	wg.Wait()
	if violated.Load() {
		t.Fatal("critical sections overlapped")
	}
	// Same lock id returns the same mutex; different ids differ.
	if s.lock(1) != m || s.lock(2) == m {
		t.Fatal("lock identity broken")
	}
}

func TestHostSynthesizerCilkRecursion(t *testing.T) {
	inner := tree.NewSec("in",
		tree.NewTask("a", tree.NewU(clock.FromSeconds(0.001, clock.DefaultHz))),
		tree.NewTask("b", tree.NewU(clock.FromSeconds(0.001, clock.DefaultHz))),
	)
	root := tree.NewRoot(tree.NewSec("out",
		tree.NewTask("t", inner),
		tree.NewTask("u", tree.NewU(clock.FromSeconds(0.001, clock.DefaultHz))),
	))
	s := &HostSynthesizer{Threads: 2, Paradigm: synth.Cilk}
	if got := s.PredictTime(root); got <= 0 {
		t.Fatalf("recursive cilk measurement = %d", got)
	}
}

func TestHostSynthesizerBurden(t *testing.T) {
	sec := tree.NewSec("s", tree.NewTask("t", tree.NewU(clock.FromSeconds(0.004, clock.DefaultHz))))
	sec.Burden = map[int]float64{1: 2.0}
	root := tree.NewRoot(sec)
	plain := &HostSynthesizer{Threads: 1}
	loaded := &HostSynthesizer{Threads: 1, UseBurden: true}
	a := plain.PredictTime(root)
	b := loaded.PredictTime(root)
	if float64(b) < 1.5*float64(a) {
		t.Fatalf("burden not applied on host: %d vs %d", a, b)
	}
}

func TestRunPipelineExecutesAllStagesInOrder(t *testing.T) {
	const n = 20
	tasks := make([]*tree.Node, n)
	type key struct{ iter, stage int }
	idx := map[*tree.Node]int{}
	tasks2stage := map[*tree.Node]int{}
	for i := range tasks {
		s0 := tree.NewU(10)
		s1 := tree.NewU(10)
		s2 := tree.NewU(10)
		tasks[i] = tree.NewTask("it", s0, s1, s2)
		for s, seg := range []*tree.Node{s0, s1, s2} {
			idx[seg] = i
			tasks2stage[seg] = s
		}
	}
	sec := tree.NewSec("pipe", tasks...)
	sec.Pipeline = true

	var mu sync.Mutex
	seen := map[key]int{}
	order := map[int][]int{} // stage -> iteration order
	RunPipeline(sec, 3, func(seg *tree.Node) {
		mu.Lock()
		k := key{idx[seg], tasks2stage[seg]}
		seen[k]++
		order[k.stage] = append(order[k.stage], k.iter)
		mu.Unlock()
	})
	if len(seen) != 3*n {
		t.Fatalf("stage instances executed = %d, want %d", len(seen), 3*n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("stage %+v executed %d times", k, c)
		}
	}
	// Each stage processes iterations in order.
	for s, list := range order {
		for i := 1; i < len(list); i++ {
			if list[i] < list[i-1] {
				t.Fatalf("stage %d out of order: %v", s, list)
			}
		}
	}
}

func TestHostSynthesizerPipelineSection(t *testing.T) {
	per := clock.FromSeconds(0.0005, clock.DefaultHz)
	tasks := make([]*tree.Node, 8)
	for i := range tasks {
		tasks[i] = tree.NewTask("it", tree.NewU(per), tree.NewU(per))
	}
	sec := tree.NewSec("pipe", tasks...)
	sec.Pipeline = true
	root := tree.NewRoot(sec)
	s := &HostSynthesizer{Threads: 2}
	got := s.PredictTime(root)
	if got <= 0 || float64(got) > 3*float64(root.TotalLen()) {
		t.Fatalf("host pipeline measurement = %d vs serial %d", got, root.TotalLen())
	}
}

func TestRunPipelineEmpty(t *testing.T) {
	sec := tree.NewSec("pipe")
	sec.Pipeline = true
	RunPipeline(sec, 2, func(*tree.Node) { t.Fatal("exec ran on empty section") })
}
