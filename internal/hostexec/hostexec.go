// Package hostexec provides real-machine execution primitives: an
// OpenMP-style parallel-for and a Cilk-style work-stealing pool backed by
// goroutines, plus FakeDelay — a busy-wait that burns a given number of
// nominal cycles without touching memory (§IV-E).
//
// In the paper, the synthesizer runs its generated program on the machine
// the user will deploy on ("Programmers should run Parallel Prophet where
// they will run a parallelized code"). The simulated machine is this
// reproduction's primary target (deterministic, 12 cores regardless of the
// host), but hostexec implements the paper's original mode: on a real
// multicore host, HostSynthesizer measures actual parallel executions of
// the synthetic program. On a single-core host it still runs correctly —
// it simply measures speedups near 1.
package hostexec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prophet/internal/clock"
	"prophet/internal/omprt"
)

// FakeDelay spins for approximately c nominal cycles at hz without
// generating memory traffic (the loop touches only registers), mirroring
// Fig. 8's FakeDelay. Non-positive hz selects clock.DefaultHz.
func FakeDelay(c clock.Cycles, hz float64) {
	if c <= 0 {
		return
	}
	if hz <= 0 {
		hz = clock.DefaultHz
	}
	d := time.Duration(float64(c) / hz * float64(time.Second))
	start := time.Now()
	var sink uint64
	for {
		// Check the clock only every few iterations; the loop body
		// itself must stay memory-silent.
		for i := 0; i < 64; i++ {
			sink += uint64(i)
		}
		if time.Since(start) >= d {
			break
		}
	}
	spinSink.Add(sink)
}

// spinSink defeats dead-code elimination of FakeDelay's loop.
var spinSink atomic.Uint64

// ParallelFor executes body(worker, i) for every i in [0, n) on nthreads
// goroutines under the given OpenMP schedule. It returns after all
// iterations complete (the implicit barrier).
func ParallelFor(nthreads, n int, sched omprt.Sched, body func(worker, i int)) {
	if n <= 0 {
		return
	}
	if nthreads < 1 {
		nthreads = 1
	}
	if nthreads > n {
		nthreads = n
	}
	chunk := sched.Chunk
	if chunk < 1 {
		chunk = 1
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	run := func(w int) {
		defer wg.Done()
		switch sched.Kind {
		case omprt.Static:
			base := n / nthreads
			rem := n % nthreads
			lo := w*base + min(w, rem)
			hi := lo + base
			if w < rem {
				hi++
			}
			for i := lo; i < hi; i++ {
				body(w, i)
			}
		case omprt.StaticChunk:
			for lo := w * chunk; lo < n; lo += nthreads * chunk {
				hi := min(lo+chunk, n)
				for i := lo; i < hi; i++ {
					body(w, i)
				}
			}
		case omprt.Guided:
			for {
				remaining := n - int(next.Load())
				c := remaining / (2 * nthreads)
				if c < chunk {
					c = chunk
				}
				lo := int(next.Add(int64(c))) - c
				if lo >= n {
					return
				}
				hi := min(lo+c, n)
				for i := lo; i < hi; i++ {
					body(w, i)
				}
			}
		default: // Dynamic
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := min(lo+chunk, n)
				for i := lo; i < hi; i++ {
					body(w, i)
				}
			}
		}
	}
	wg.Add(nthreads)
	for w := 1; w < nthreads; w++ {
		go run(w)
	}
	run(0)
	wg.Wait()
}

// Pool is a Cilk-style task pool on goroutines: tasks are spawned into a
// shared LIFO, idle workers (and syncing tasks) execute pending work, and
// every function has an implicit sync at return.
type Pool struct {
	mu    sync.Mutex
	tasks []*hostTask
	n     int
}

type hostFrame struct {
	pending atomic.Int64
}

type hostTask struct {
	fn     func(*Ctx)
	parent *hostFrame
}

// Ctx is the execution context of a function running in the pool.
type Ctx struct {
	p     *Pool
	frame *hostFrame
}

// NewPool returns a pool with n workers (minimum 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{n: n}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.n }

func (p *Pool) push(t *hostTask) {
	p.mu.Lock()
	p.tasks = append(p.tasks, t)
	p.mu.Unlock()
}

func (p *Pool) pop() *hostTask {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.tasks) == 0 {
		return nil
	}
	t := p.tasks[len(p.tasks)-1]
	p.tasks = p.tasks[:len(p.tasks)-1]
	return t
}

func (p *Pool) exec(t *hostTask) {
	ctx := &Ctx{p: p, frame: &hostFrame{}}
	t.fn(ctx)
	ctx.Sync() // implicit sync at function return
	t.parent.pending.Add(-1)
}

// Spawn schedules fn as a child of the current function (cilk_spawn).
func (c *Ctx) Spawn(fn func(*Ctx)) {
	c.frame.pending.Add(1)
	c.p.push(&hostTask{fn: fn, parent: c.frame})
}

// Sync waits for all children of the current function, executing pending
// tasks while it waits (cilk_sync, help-first).
func (c *Ctx) Sync() {
	for c.frame.pending.Load() > 0 {
		if t := c.p.pop(); t != nil {
			c.p.exec(t)
		} else {
			runtime.Gosched()
		}
	}
}

// For runs body(i) for i in [0, n) as a cilk_for with the given grain
// (non-positive selects ~n / (8·workers)).
func (c *Ctx) For(n, grain int, body func(*Ctx, int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n / (8 * c.p.n)
		if grain < 1 {
			grain = 1
		}
	}
	sub := &Ctx{p: c.p, frame: &hostFrame{}}
	var rec func(cc *Ctx, lo, hi int)
	rec = func(cc *Ctx, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			lo2, hi2 := mid, hi
			cc.Spawn(func(sc *Ctx) { rec(sc, lo2, hi2) })
			hi = mid
		}
		for i := lo; i < hi; i++ {
			body(cc, i)
		}
	}
	rec(sub, 0, n)
	sub.Sync()
}

// Run executes root in the pool and blocks until it and all descendants
// finish. Helper workers exit when the run drains.
func (p *Pool) Run(root func(*Ctx)) {
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 1; w < p.n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if t := p.pop(); t != nil {
					p.exec(t)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	ctx := &Ctx{p: p, frame: &hostFrame{}}
	root(ctx)
	ctx.Sync()
	stop.Store(true)
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
