package hostexec

import (
	"sync"
	"time"

	"prophet/internal/clock"
	"prophet/internal/omprt"
	"prophet/internal/synth"
	"prophet/internal/tree"
)

// HostSynthesizer runs the program-synthesis emulation on the *host*
// machine with real goroutines, spin delays and sync.Mutex — the paper's
// original deployment mode of §IV-E: measure the generated program where
// the parallelized code will actually run.
type HostSynthesizer struct {
	// Threads is the worker count to emulate.
	Threads int
	// Paradigm selects OpenMP-style parallel-for or the Cilk-style pool.
	Paradigm synth.Paradigm
	// Sched is the OpenMP schedule.
	Sched omprt.Sched
	// UseBurden applies the memory model's burden factors.
	UseBurden bool
	// Hz is the nominal cycle rate for FakeDelay and the measurement
	// clock (non-positive selects clock.DefaultHz).
	Hz float64

	mu    sync.Mutex
	locks map[int]*sync.Mutex
}

func (s *HostSynthesizer) threads() int {
	if s.Threads < 1 {
		return 1
	}
	return s.Threads
}

func (s *HostSynthesizer) hz() float64 {
	if s.Hz > 0 {
		return s.Hz
	}
	return clock.DefaultHz
}

func (s *HostSynthesizer) lock(id int) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.locks == nil {
		s.locks = make(map[int]*sync.Mutex)
	}
	m := s.locks[id]
	if m == nil {
		m = &sync.Mutex{}
		s.locks[id] = m
	}
	return m
}

func (s *HostSynthesizer) scaled(l clock.Cycles, burden float64) clock.Cycles {
	if burden == 1 {
		return l
	}
	return clock.Cycles(float64(l)*burden + 0.5)
}

// PredictTime measures the synthetic program on the host and returns its
// duration in nominal cycles.
func (s *HostSynthesizer) PredictTime(root *tree.Node) clock.Cycles {
	total := root.SerialOutsideSections()
	for _, sec := range root.TopLevelSections() {
		total += s.EmulateTopLevelParSec(sec) * clock.Cycles(sec.Reps())
	}
	return total
}

// Speedup returns profiled serial time / measured synthetic time.
func (s *HostSynthesizer) Speedup(root *tree.Node) float64 {
	pred := s.PredictTime(root)
	if pred <= 0 {
		return 1
	}
	return float64(root.TotalLen()) / float64(pred)
}

// EmulateTopLevelParSec generates and times one parallel section on the
// host (Fig. 8's EmulTopLevelParSec with rdtsc replaced by the monotonic
// clock).
func (s *HostSynthesizer) EmulateTopLevelParSec(sec *tree.Node) clock.Cycles {
	burden := 1.0
	if s.UseBurden {
		burden = sec.BurdenFor(s.threads())
	}
	start := time.Now()
	switch {
	case sec.Pipeline:
		hz := s.hz()
		RunPipeline(sec, s.threads(), func(seg *tree.Node) {
			switch seg.Kind {
			case tree.L:
				m := s.lock(seg.LockID)
				m.Lock()
				FakeDelay(s.scaled(seg.Len, burden), hz)
				m.Unlock()
			case tree.W:
				time.Sleep(time.Duration(float64(seg.Len) / hz * float64(time.Second)))
			default:
				FakeDelay(s.scaled(seg.Len, burden), hz)
			}
		})
	case s.Paradigm == synth.Cilk:
		pool := NewPool(s.threads())
		pool.Run(func(c *Ctx) {
			s.runSecCilk(c, sec, burden)
		})
	default:
		s.runSecOMP(sec, burden)
	}
	elapsed := time.Since(start)
	return clock.Cycles(elapsed.Seconds() * s.hz())
}

// taskAt resolves logical iteration i of a (possibly Repeat-compressed)
// section.
func taskAt(sec *tree.Node, i int) *tree.Node {
	for _, c := range sec.Children {
		if c.Kind != tree.Task {
			continue
		}
		if i < c.Reps() {
			return c
		}
		i -= c.Reps()
	}
	return nil
}

func logicalTasks(sec *tree.Node) int {
	n := 0
	for _, c := range sec.Children {
		if c.Kind == tree.Task {
			n += c.Reps()
		}
	}
	return n
}

func (s *HostSynthesizer) runSecOMP(sec *tree.Node, burden float64) {
	n := logicalTasks(sec)
	ParallelFor(s.threads(), n, s.Sched, func(w, i int) {
		s.runTask(nil, taskAt(sec, i), burden)
	})
}

func (s *HostSynthesizer) runSecCilk(c *Ctx, sec *tree.Node, burden float64) {
	n := logicalTasks(sec)
	c.For(n, 1, func(cc *Ctx, i int) {
		s.runTask(cc, taskAt(sec, i), burden)
	})
}

// runTask walks a task's segments with FakeDelay computation and real
// mutexes; nested sections recurse through the active paradigm.
func (s *HostSynthesizer) runTask(cc *Ctx, task *tree.Node, burden float64) {
	if task == nil {
		return
	}
	hz := s.hz()
	for _, seg := range task.Children {
		for r := 0; r < seg.Reps(); r++ {
			switch seg.Kind {
			case tree.U:
				FakeDelay(s.scaled(seg.Len, burden), hz)
			case tree.W:
				// Real sleep: the OS thread is released, as the
				// annotated program's I/O would release it.
				time.Sleep(time.Duration(float64(seg.Len) / hz * float64(time.Second)))
			case tree.L:
				m := s.lock(seg.LockID)
				m.Lock()
				FakeDelay(s.scaled(seg.Len, burden), hz)
				m.Unlock()
			case tree.Sec:
				if cc != nil {
					s.runSecCilk(cc, seg, burden)
				} else {
					s.runSecOMP(seg, burden)
				}
			}
		}
	}
}
