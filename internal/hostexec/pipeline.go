package hostexec

import (
	"sync"

	"prophet/internal/pipesim"
	"prophet/internal/tree"
)

// RunPipeline executes a pipeline section on the host with real
// goroutines: stages are fused into contiguous weight-balanced groups (the
// same pipesim.PartitionStages assignment the simulator and the FF use),
// one goroutine per group, handing iterations downstream through buffered
// channels — classic decoupled software pipelining.
//
// exec runs one stage instance (a U or L leaf); implementations handle
// L-node locking themselves.
func RunPipeline(sec *tree.Node, threads int, exec func(seg *tree.Node)) {
	var iters []*tree.Node
	for _, c := range sec.Children {
		if c.Kind != tree.Task {
			continue
		}
		for r := 0; r < c.Reps(); r++ {
			iters = append(iters, c)
		}
	}
	depth := pipesim.Depth(sec)
	if len(iters) == 0 || depth == 0 {
		return
	}
	groups := pipesim.PartitionStages(sec, threads)
	nGroups := 0
	for _, g := range groups {
		if g+1 > nGroups {
			nGroups = g + 1
		}
	}

	// Stage-group workers chained by channels carrying iteration indexes.
	chans := make([]chan int, nGroups+1)
	for i := range chans {
		chans[i] = make(chan int, 64)
	}
	var wg sync.WaitGroup
	for g := 0; g < nGroups; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range chans[g] {
				slots := pipesim.StageSlots(iters[i])
				for s, seg := range slots {
					if s < len(groups) && groups[s] == g {
						exec(seg)
					}
				}
				chans[g+1] <- i
			}
			close(chans[g+1])
		}()
	}
	// Feed iterations in order; drain the tail.
	go func() {
		for i := range iters {
			chans[0] <- i
		}
		close(chans[0])
	}()
	done := 0
	for range chans[nGroups] {
		done++
	}
	wg.Wait()
	_ = done
}
