// Package fit provides the least-squares fits the memory performance model
// needs (§V of the paper): straight lines for Eq. (6)'s two-thread form,
// log-linear curves (a·ln x + b) for its four-plus-thread forms, and power
// laws (a·x^b) for Eq. (7).
package fit

import (
	"errors"
	"math"
)

// ErrDegenerate is returned when a fit has too few usable points or no
// variance in x.
var ErrDegenerate = errors.New("fit: degenerate input")

// Line is y = A·x + B.
type Line struct {
	A, B float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Eval evaluates the line at x.
func (l Line) Eval(x float64) float64 { return l.A*x + l.B }

// Linear fits y = a·x + b by ordinary least squares.
func Linear(xs, ys []float64) (Line, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Line{}, ErrDegenerate
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Line{}, ErrDegenerate
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n
	return Line{A: a, B: b, R2: r2(xs, ys, func(x float64) float64 { return a*x + b })}, nil
}

// LogLine is y = A·ln(x) + B.
type LogLine struct {
	A, B float64
	R2   float64
}

// Eval evaluates the curve at x (x must be positive; non-positive x yields
// the value at the smallest positive argument to stay finite).
func (l LogLine) Eval(x float64) float64 {
	if x <= 0 {
		x = math.SmallestNonzeroFloat64
	}
	return l.A*math.Log(x) + l.B
}

// LogLinear fits y = a·ln(x) + b. Points with non-positive x are skipped.
func LogLinear(xs, ys []float64) (LogLine, error) {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, ys[i])
		}
	}
	line, err := Linear(lx, ly)
	if err != nil {
		return LogLine{}, err
	}
	out := LogLine{A: line.A, B: line.B}
	out.R2 = r2(xs, ys, out.Eval)
	return out, nil
}

// Power is y = A·x^B.
type Power struct {
	A, B float64
	R2   float64
}

// Eval evaluates the power law at x (non-positive x yields +Inf or 0
// depending on the exponent's sign; callers clamp their domain).
func (p Power) Eval(x float64) float64 {
	return p.A * math.Pow(x, p.B)
}

// PowerLaw fits y = a·x^b via a linear fit in log-log space. Points with
// non-positive coordinates are skipped.
func PowerLaw(xs, ys []float64) (Power, error) {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	line, err := Linear(lx, ly)
	if err != nil {
		return Power{}, err
	}
	out := Power{A: math.Exp(line.B), B: line.A}
	out.R2 = r2(xs, ys, out.Eval)
	return out, nil
}

// r2 computes the coefficient of determination of model f on (xs, ys).
func r2(xs, ys []float64, f func(float64) float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range ys {
		d := ys[i] - f(xs[i])
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
