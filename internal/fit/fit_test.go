package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	l, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.A-3) > 1e-12 || math.Abs(l.B+7) > 1e-12 {
		t.Fatalf("fit = %+v, want A=3 B=-7", l)
	}
	if l.R2 < 0.999999 {
		t.Fatalf("R2 = %g, want ~1", l.R2)
	}
}

func TestLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 2*x+5+rng.NormFloat64())
	}
	l, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.A-2) > 0.01 || math.Abs(l.B-5) > 1 {
		t.Fatalf("noisy fit = %+v", l)
	}
}

func TestLinearDegenerate(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{2}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Linear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x-variance accepted")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLogLinearExact(t *testing.T) {
	// The paper's Eq. (6) shape: δ4 = (5756·ln δ − 38805)/4.
	a, b := 5756.0/4, -38805.0/4
	var xs, ys []float64
	for d := 2000.0; d <= 20000; d += 1500 {
		xs = append(xs, d)
		ys = append(ys, a*math.Log(d)+b)
	}
	l, err := LogLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.A-a)/a > 1e-9 || math.Abs(l.B-b)/(-b) > 1e-9 {
		t.Fatalf("fit = %+v, want A=%g B=%g", l, a, b)
	}
	if got := l.Eval(5000); math.Abs(got-(a*math.Log(5000)+b)) > 1e-6 {
		t.Fatalf("Eval mismatch: %g", got)
	}
}

func TestLogLinearSkipsNonPositiveX(t *testing.T) {
	xs := []float64{-1, 0, math.E, math.E * math.E}
	ys := []float64{99, 99, 1, 2}
	l, err := LogLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.A-1) > 1e-12 || math.Abs(l.B-0) > 1e-12 {
		t.Fatalf("fit = %+v, want y = ln x", l)
	}
}

func TestPowerLawExact(t *testing.T) {
	// The paper's Eq. (7): ω = 101481·δ^-0.964.
	a, b := 101481.0, -0.964
	var xs, ys []float64
	for d := 2000.0; d <= 16000; d += 1000 {
		xs = append(xs, d)
		ys = append(ys, a*math.Pow(d, b))
	}
	p, err := PowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.A-a)/a > 1e-9 || math.Abs(p.B-b) > 1e-9 {
		t.Fatalf("fit = %+v, want A=%g B=%g", p, a, b)
	}
	if p.R2 < 0.999999 {
		t.Fatalf("R2 = %g", p.R2)
	}
}

func TestPowerLawEvalDomain(t *testing.T) {
	p := Power{A: 2, B: -1}
	if got := p.Eval(4); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Eval(4) = %g, want 0.5", got)
	}
}

// Property: a linear fit on points generated from a line recovers the line,
// for any slope/intercept.
func TestLinearRecoveryProperty(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		xs := []float64{0, 1, 2, 3, 4, 5}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		l, err := Linear(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(l.A-a) < 1e-6 && math.Abs(l.B-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestR2DistinguishesGoodAndBadModels(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2, 4, 6, 8, 10, 12}
	good, _ := Linear(xs, ys)
	if good.R2 < 0.99 {
		t.Fatalf("good model R2 = %g", good.R2)
	}
	// Fit a power law to oscillating data: R2 should be clearly lower.
	bad, err := PowerLaw([]float64{1, 2, 3, 4, 5, 6}, []float64{5, 1, 5, 1, 5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if bad.R2 > 0.5 {
		t.Fatalf("bad model R2 = %g, want low", bad.R2)
	}
}
