// Package realrun produces the "Real" speedups of the paper's evaluation
// (Fig. 2, Fig. 11, Fig. 12): it executes a profiled program tree as an
// actually parallelized program on the simulated machine, through the
// OpenMP (internal/omprt) or Cilk (internal/cilkrt) runtime, with every
// node's *measured memory traits* replayed through the contended DRAM
// model.
//
// This is the reproduction's substitute for the paper's hand-parallelized
// benchmark runs on the Westmere testbed: the parallel code the authors
// wrote corresponds 1:1 to the annotated structure (that is the premise of
// annotation-based prediction), so replaying the tree through a real
// runtime on the machine model *is* running the parallelized program.
// Unlike the predictors, realrun reads the per-node MemTraits — the
// information barrier the paper's tool operates behind stays intact.
package realrun

import (
	"context"

	"prophet/internal/cilkrt"
	"prophet/internal/clock"
	"prophet/internal/obs"
	"prophet/internal/omprt"
	"prophet/internal/pipesim"
	"prophet/internal/sim"
	"prophet/internal/synth"
	"prophet/internal/tree"
)

// Config selects the machine, runtime and schedule for the ground truth.
type Config struct {
	// Machine is the simulated machine (zero = the 12-core default).
	Machine sim.Config
	// Threads is the team/worker count.
	Threads int
	// Paradigm is OpenMP or Cilk.
	Paradigm synth.Paradigm
	// Sched is the OpenMP schedule (ignored for Cilk).
	Sched omprt.Sched
	// OmpOv / CilkOv are the runtime overhead constants; zero values
	// select the calibrated defaults.
	OmpOv  *omprt.Overheads
	CilkOv *cilkrt.Overheads
	// Tracer, when set, receives the machine run's execution events
	// (internal/obs); nil disables tracing.
	Tracer obs.ExecTracer
	// Metrics, when set, aggregates the run's DES counters.
	Metrics *obs.Registry
}

func (c Config) threads() int {
	if c.Threads < 1 {
		return 1
	}
	return c.Threads
}

func (c Config) ompOv() omprt.Overheads {
	if c.OmpOv != nil {
		return *c.OmpOv
	}
	return omprt.DefaultOverheads()
}

func (c Config) cilkOv() cilkrt.Overheads {
	if c.CilkOv != nil {
		return *c.CilkOv
	}
	return cilkrt.DefaultOverheads()
}

// segWork replays one U/L leaf's computation on a sim thread: measured
// memory traits when the profiler recorded them, otherwise the profiled
// length as pure compute.
func segWork(w *sim.Thread, n *tree.Node) {
	if n.Kind == tree.W {
		// I/O wait: blocks without occupying a core.
		w.Sleep(n.Len)
		return
	}
	if n.Mem.Instructions > 0 || n.Mem.LLCMisses > 0 {
		w.WorkMem(clock.Cycles(n.Mem.Instructions), n.Mem.LLCMisses)
	} else {
		w.Work(n.Len)
	}
}

// Time runs the whole tree as a parallelized program and returns its
// makespan: top-level sections execute through the parallel runtime,
// top-level U nodes serially in between. It panics on simulation errors
// (legacy contract); error-tolerant callers use TimeCtx.
func Time(root *tree.Node, cfg Config) clock.Cycles {
	return TimeTraced(root, cfg, nil)
}

// TimeCtx is Time with cancellation and typed simulation errors.
func TimeCtx(ctx context.Context, root *tree.Node, cfg Config) (clock.Cycles, error) {
	return timeOpt(ctx, root, cfg, nil)
}

// TimeTraced is Time with an optional slice recorder attached, for
// rendering the execution as a per-core timeline (sim.Recorder.Gantt).
// It panics on simulation errors (legacy contract); error-tolerant
// callers use TimeTracedCtx.
func TimeTraced(root *tree.Node, cfg Config, rec *sim.Recorder) clock.Cycles {
	end, err := timeOpt(context.Background(), root, cfg, rec)
	if err != nil {
		panic(err)
	}
	return end
}

// TimeTracedCtx is TimeTraced with cancellation and typed simulation
// errors: a deadlocked or over-budget ground-truth run returns the error
// (with whatever the recorder captured up to the failure) instead of
// panicking.
func TimeTracedCtx(ctx context.Context, root *tree.Node, cfg Config, rec *sim.Recorder) (clock.Cycles, error) {
	return timeOpt(ctx, root, cfg, rec)
}

func timeOpt(ctx context.Context, root *tree.Node, cfg Config, rec *sim.Recorder) (clock.Cycles, error) {
	end, _, err := sim.RunOpt(cfg.Machine, sim.RunOpts{Ctx: ctx, Recorder: rec, Tracer: cfg.Tracer, Metrics: cfg.Metrics}, func(main *sim.Thread) {
		for _, c := range root.Children {
			switch c.Kind {
			case tree.U:
				for r := 0; r < c.Reps(); r++ {
					segWork(main, c)
				}
			case tree.Sec:
				// Compression can fold identical back-to-back
				// top-level sections into one node: execute it
				// once per repeat.
				for r := 0; r < c.Reps(); r++ {
					runSection(main, c, cfg)
				}
			}
		}
	})
	return end, err
}

// runSection executes one top-level section through the configured runtime.
func runSection(main *sim.Thread, sec *tree.Node, cfg Config) {
	if sec.Pipeline {
		pipesim.Run(main, sec, cfg.threads(), func(w *sim.Thread, seg *tree.Node) {
			if seg.Kind == tree.L {
				w.Lock(seg.LockID)
				segWork(w, seg)
				w.Unlock(seg.LockID)
				return
			}
			segWork(w, seg)
		})
		return
	}
	switch cfg.Paradigm {
	case synth.Cilk:
		rt := cilkrt.New(cfg.threads(), cfg.cilkOv())
		rt.Run(main, func(c *cilkrt.Ctx) {
			runSecCilk(c, sec)
		})
	default:
		rt := omprt.New(cfg.threads(), cfg.ompOv())
		runSecOMP(rt, main, sec, cfg.Sched)
	}
}

// taskIndex maps logical iteration numbers onto (possibly compressed) Task
// nodes, shared with the synthesizer's indexing strategy.
type taskIndex struct {
	nodes []*tree.Node
	cum   []int
	total int
}

func buildTaskIndex(sec *tree.Node) *taskIndex {
	ti := &taskIndex{}
	for _, c := range sec.Children {
		if c.Kind != tree.Task {
			continue
		}
		ti.nodes = append(ti.nodes, c)
		ti.cum = append(ti.cum, ti.total)
		ti.total += c.Reps()
	}
	return ti
}

func (ti *taskIndex) at(i int) *tree.Node {
	lo, hi := 0, len(ti.cum)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ti.cum[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return ti.nodes[lo]
}

func runSecOMP(rt *omprt.Runtime, t *sim.Thread, sec *tree.Node, sched omprt.Sched) {
	ti := buildTaskIndex(sec)
	rt.ParallelFor(t, ti.total, sched, func(w *sim.Thread, i int) {
		runTaskOMP(rt, w, ti.at(i), sched)
	})
}

func runTaskOMP(rt *omprt.Runtime, w *sim.Thread, task *tree.Node, sched omprt.Sched) {
	for _, seg := range task.Children {
		for r := 0; r < seg.Reps(); r++ {
			switch seg.Kind {
			case tree.U, tree.W:
				segWork(w, seg)
			case tree.L:
				rt.Critical(w, seg.LockID, func() { segWork(w, seg) })
			case tree.Sec:
				// Naive OpenMP 2.0 nesting: a fresh nested team.
				runSecOMP(rt, w, seg, sched)
			}
		}
	}
}

func runSecCilk(c *cilkrt.Ctx, sec *tree.Node) {
	ti := buildTaskIndex(sec)
	c.For(ti.total, 1, func(cc *cilkrt.Ctx, i int) {
		runTaskCilk(cc, ti.at(i))
	})
}

func runTaskCilk(c *cilkrt.Ctx, task *tree.Node) {
	for _, seg := range task.Children {
		for r := 0; r < seg.Reps(); r++ {
			switch seg.Kind {
			case tree.U, tree.W:
				segWork(c.Thread(), seg)
			case tree.L:
				c.Thread().Lock(seg.LockID)
				segWork(c.Thread(), seg)
				c.Thread().Unlock(seg.LockID)
			case tree.Sec:
				runSecCilk(c, seg)
			}
		}
	}
}

// SerialTime returns the baseline: the profiled serial length of the tree
// (the paper measures speedups against the serial run the profile came
// from).
func SerialTime(root *tree.Node) clock.Cycles {
	return root.TotalLen()
}

// Speedup returns SerialTime / Time for the given configuration. It panics
// on simulation errors (legacy contract); use SpeedupCtx for typed errors.
func Speedup(root *tree.Node, cfg Config) float64 {
	t := Time(root, cfg)
	if t <= 0 {
		return 1
	}
	return float64(SerialTime(root)) / float64(t)
}

// SpeedupCtx is Speedup with cancellation and typed simulation errors.
func SpeedupCtx(ctx context.Context, root *tree.Node, cfg Config) (float64, error) {
	t, err := TimeCtx(ctx, root, cfg)
	if err != nil {
		return 0, err
	}
	if t <= 0 {
		return 1, nil
	}
	return float64(SerialTime(root)) / float64(t), nil
}
