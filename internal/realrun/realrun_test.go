package realrun

import (
	"math"
	"testing"

	"prophet/internal/cilkrt"
	"prophet/internal/clock"
	"prophet/internal/omprt"
	"prophet/internal/sim"
	"prophet/internal/synth"
	"prophet/internal/tree"
)

func mcfg(cores int) sim.Config {
	return sim.Config{Cores: cores, Quantum: 10_000, ContextSwitch: -1}
}

var zeroOmp = &omprt.Overheads{}

func balanced(n int, l clock.Cycles) *tree.Node {
	tasks := make([]*tree.Node, n)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(l))
	}
	return tree.NewRoot(tree.NewSec("s", tasks...))
}

func TestBalancedSpeedup(t *testing.T) {
	root := balanced(24, 60_000)
	for _, p := range []int{1, 2, 4, 8, 12} {
		s := Speedup(root, Config{Machine: mcfg(12), Threads: p, Sched: omprt.SchedStatic, OmpOv: zeroOmp})
		if math.Abs(s-float64(p)) > 0.05*float64(p) {
			t.Errorf("p=%d speedup = %.2f", p, s)
		}
	}
}

func TestSerialPartsLimitSpeedup(t *testing.T) {
	root := tree.NewRoot(
		tree.NewU(120_000),
		balanced(12, 10_000).Children[0],
	)
	s := Speedup(root, Config{Machine: mcfg(12), Threads: 12, Sched: omprt.SchedStatic, OmpOv: zeroOmp})
	want := 240_000.0 / 130_000.0
	if math.Abs(s-want) > 0.1 {
		t.Fatalf("speedup = %.2f, want ~%.2f", s, want)
	}
}

func TestMemoryBoundSectionSaturates(t *testing.T) {
	// Tasks that are pure streaming: speedup must saturate near
	// B / b1 = 5 regardless of having 12 cores.
	tasks := make([]*tree.Node, 24)
	for i := range tasks {
		u := tree.NewU(0)
		u.Mem = tree.MemTraits{Instructions: 0, LLCMisses: 10_000}
		u.Len = 400_000 // profiled: 10k misses at ω0=40
		tasks[i] = tree.NewTask("t", u)
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	s12 := Speedup(root, Config{Machine: mcfg(12), Threads: 12, Sched: omprt.SchedStatic, OmpOv: zeroOmp})
	s2 := Speedup(root, Config{Machine: mcfg(12), Threads: 2, Sched: omprt.SchedStatic, OmpOv: zeroOmp})
	if s2 < 1.8 {
		t.Fatalf("2-thread memory speedup = %.2f, want ~2 (below saturation)", s2)
	}
	if s12 > 6.5 {
		t.Fatalf("12-thread memory speedup = %.2f, want saturated ~5", s12)
	}
	if s12 < 4 {
		t.Fatalf("12-thread memory speedup = %.2f, implausibly low", s12)
	}
}

func TestFigure7RealIsTwo(t *testing.T) {
	// The ground truth for Fig. 7: two-level nested loop on a dual-core
	// really achieves ~2.0 thanks to OS time slicing.
	scale := clock.Cycles(20_000)
	la := tree.NewSec("LoopA",
		tree.NewTask("a0", tree.NewU(10*scale)),
		tree.NewTask("a1", tree.NewU(5*scale)),
	)
	lb := tree.NewSec("LoopB",
		tree.NewTask("b0", tree.NewU(5*scale)),
		tree.NewTask("b1", tree.NewU(10*scale)),
	)
	root := tree.NewRoot(tree.NewSec("Loop1",
		tree.NewTask("t0", la),
		tree.NewTask("t1", lb),
	))
	s := Speedup(root, Config{Machine: mcfg(2), Threads: 2, Sched: omprt.SchedStatic1, OmpOv: zeroOmp})
	if s < 1.85 || s > 2.05 {
		t.Fatalf("real nested speedup = %.3f, want ~2.0", s)
	}
}

func TestCilkParadigm(t *testing.T) {
	root := balanced(32, 50_000)
	s := Speedup(root, Config{Machine: mcfg(8), Threads: 8, Paradigm: synth.Cilk})
	if s < 6.5 || s > 8.1 {
		t.Fatalf("cilk speedup = %.2f, want ~8", s)
	}
}

func TestLockedTreeSerializes(t *testing.T) {
	tasks := make([]*tree.Node, 8)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewL(1, 50_000))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	s := Speedup(root, Config{Machine: mcfg(8), Threads: 8, Sched: omprt.SchedStatic1, OmpOv: zeroOmp})
	if s > 1.05 {
		t.Fatalf("locked speedup = %.2f, want ~1", s)
	}
}

func TestCompressedTreeRunsIdentically(t *testing.T) {
	expanded := balanced(64, 20_000)
	ct := tree.NewTask("t", tree.NewU(20_000))
	ct.Repeat = 64
	compressed := tree.NewRoot(tree.NewSec("s", ct))
	cfg := Config{Machine: mcfg(4), Threads: 4, Sched: omprt.SchedDynamic1, OmpOv: zeroOmp}
	a := Time(expanded, cfg)
	b := Time(compressed, cfg)
	if a != b {
		t.Fatalf("compressed %d != expanded %d", b, a)
	}
}

func TestSpeedupDegenerate(t *testing.T) {
	if got := Speedup(tree.NewRoot(), Config{Machine: mcfg(2), Threads: 2}); got != 1 {
		t.Fatalf("empty tree speedup = %g", got)
	}
}

func TestNestedCilkSections(t *testing.T) {
	inner := tree.NewSec("in",
		tree.NewTask("a", tree.NewU(40_000)),
		tree.NewTask("b", tree.NewU(40_000)),
	)
	root := tree.NewRoot(tree.NewSec("out",
		tree.NewTask("t", inner, tree.NewU(10_000)),
		tree.NewTask("u", tree.NewU(50_000)),
	))
	s := Speedup(root, Config{Machine: mcfg(4), Threads: 4, Paradigm: synth.Cilk})
	if s < 1.5 || s > 3.0 {
		t.Fatalf("nested cilk speedup = %.2f", s)
	}
}

func TestCilkLockedSegments(t *testing.T) {
	tasks := make([]*tree.Node, 6)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewL(2, 30_000))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	end := Time(root, Config{Machine: mcfg(6), Threads: 6, Paradigm: synth.Cilk})
	if end < 180_000 {
		t.Fatalf("cilk locked sections overlapped: %d", end)
	}
}

func TestPipelineSectionGroundTruth(t *testing.T) {
	tasks := make([]*tree.Node, 16)
	for i := range tasks {
		tasks[i] = tree.NewTask("it", tree.NewU(10_000), tree.NewU(10_000))
	}
	sec := tree.NewSec("pipe", tasks...)
	sec.Pipeline = true
	root := tree.NewRoot(sec)
	end := Time(root, Config{Machine: mcfg(2), Threads: 2, OmpOv: zeroOmp})
	// Two balanced stages on two workers: ~17 stage-times.
	if end < 160_000 || end > 180_000 {
		t.Fatalf("pipeline ground truth = %d, want ~170000", end)
	}
}

func TestPipelineWithLockedStage(t *testing.T) {
	tasks := make([]*tree.Node, 8)
	for i := range tasks {
		tasks[i] = tree.NewTask("it", tree.NewU(5_000), tree.NewL(3, 5_000))
	}
	sec := tree.NewSec("pipe", tasks...)
	sec.Pipeline = true
	root := tree.NewRoot(sec)
	end := Time(root, Config{Machine: mcfg(2), Threads: 2, OmpOv: zeroOmp})
	if end <= 0 || end > 8*10_000+10_000 {
		t.Fatalf("locked pipeline = %d", end)
	}
}

func TestConfigOverrides(t *testing.T) {
	// Custom overheads flow through: a huge fork cost must slow things.
	root := balanced(8, 10_000)
	slowOv := omprt.DefaultOverheads()
	slowOv.ForkPerThread = 100_000
	fast := Time(root, Config{Machine: mcfg(4), Threads: 4, OmpOv: zeroOmp})
	slow := Time(root, Config{Machine: mcfg(4), Threads: 4, OmpOv: &slowOv})
	if slow <= fast {
		t.Fatalf("custom overheads ignored: %d vs %d", slow, fast)
	}
	// Nil overheads select calibrated defaults (non-zero).
	def := Time(root, Config{Machine: mcfg(4), Threads: 4})
	if def <= fast {
		t.Fatalf("default overheads missing: %d vs %d", def, fast)
	}
	// Cilk custom overheads.
	co := cilkrt.DefaultOverheads()
	co.StealScan = 50_000
	slowCilk := Time(root, Config{Machine: mcfg(4), Threads: 4, Paradigm: synth.Cilk, CilkOv: &co})
	fastCilk := Time(root, Config{Machine: mcfg(4), Threads: 4, Paradigm: synth.Cilk, CilkOv: &cilkrt.Overheads{}})
	if slowCilk <= fastCilk {
		t.Fatalf("cilk overheads ignored: %d vs %d", slowCilk, fastCilk)
	}
}

func TestThreadsDefaultToOne(t *testing.T) {
	root := balanced(4, 10_000)
	end := Time(root, Config{Machine: mcfg(4), OmpOv: zeroOmp}) // Threads: 0
	if end != 40_000 {
		t.Fatalf("unspecified threads = %d, want serial 40000", end)
	}
}
