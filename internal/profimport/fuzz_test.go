package profimport

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// The two decoders parse untrusted bytes; these fuzz targets assert
// that on ANY input they either fail with a typed profimport error or
// produce a valid, weight-conserving, deterministic tree. Seed corpora:
// the checked-in testdata fixtures plus hand-picked wire-format edge
// cases. CI runs each target with -fuzz for 30s (see ci.yml), not just
// seed replay.

func addFixtureSeeds(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob("testdata/*.pb.gz")
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

// checkImport applies the output invariants shared by both targets.
func checkImport(t *testing.T, res *Result, err error) {
	if err != nil {
		for _, sentinel := range []error{ErrCorrupt, ErrEmpty, ErrTooLarge, ErrSampleType} {
			if errors.Is(err, sentinel) {
				return
			}
		}
		t.Fatalf("untyped error escaped: %v", err)
	}
	if res == nil || res.Tree == nil {
		t.Fatal("nil result without error")
	}
	if verr := res.Tree.Validate(); verr != nil {
		t.Fatalf("invalid tree: %v", verr)
	}
	if got := int64(res.Tree.TotalLen()); got != res.Stats.TotalWeight {
		t.Fatalf("weight not conserved: TotalLen %d, sample weight %d", got, res.Stats.TotalWeight)
	}
	if res.Stats.Samples <= 0 || res.Stats.TotalWeight <= 0 {
		t.Fatalf("success with empty stats: %+v", res.Stats)
	}
}

func FuzzPprofDecode(f *testing.F) {
	addFixtureSeeds(f)
	f.Add(EncodePprof([]StackSample{{Frames: []string{"a", "b"}, Weight: 7}}, "cpu", "nanoseconds"))
	f.Add(EncodePprof(nil, "samples", "count"))
	f.Add([]byte{0x1f, 0x8b})             // bare gzip magic
	f.Add([]byte{0x0a, 0x00})             // empty sample_type message
	f.Add([]byte{0x12, 0x02, 0x12, 0x00}) // sample with empty packed values
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := FromPprof(data, nil)
		checkImport(t, res, err)
		if err == nil {
			// Determinism: a second pass over the same bytes yields the
			// same tree, byte for byte.
			res2, err2 := FromPprof(data, nil)
			if err2 != nil {
				t.Fatalf("second decode failed: %v", err2)
			}
			j1, _ := json.Marshal(res.Tree)
			j2, _ := json.Marshal(res2.Tree)
			if !bytes.Equal(j1, j2) {
				t.Fatalf("nondeterministic conversion:\n%s\nvs\n%s", j1, j2)
			}
		}
	})
}

func FuzzFoldedParse(f *testing.F) {
	if data, err := os.ReadFile("testdata/stacks.folded"); err == nil {
		f.Add(data)
	}
	f.Add([]byte("main;foo;bar 42\nmain 1\n"))
	f.Add([]byte("# comment only\n"))
	f.Add([]byte("a b c 5"))
	f.Add([]byte(";; 3\n"))
	f.Add([]byte("f 9223372036854775807\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := FromFolded(data, nil)
		checkImport(t, res, err)
		if err == nil {
			res2, err2 := FromFolded(data, nil)
			if err2 != nil {
				t.Fatalf("second parse failed: %v", err2)
			}
			j1, _ := json.Marshal(res.Tree)
			j2, _ := json.Marshal(res2.Tree)
			if !bytes.Equal(j1, j2) {
				t.Fatalf("nondeterministic conversion:\n%s\nvs\n%s", j1, j2)
			}
		}
	})
}
