package profimport

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden converted-tree files")

// TestGoldenTrees pins the exact converted tree (as stable-format JSON)
// for every checked-in fixture, at default options. Any change to the
// decoder, the grammar mapping, the child ordering or the collapse pass
// shows up as a golden diff — run with -update to accept intentional
// changes.
func TestGoldenTrees(t *testing.T) {
	cases := []struct {
		fixture string
		golden  string
		from    func([]byte, *Options) (*Result, error)
	}{
		{"small.pb.gz", "small.tree.json", FromPprof},
		{"cpu.pb.gz", "cpu.tree.json", FromPprof},
		{"stacks.folded", "stacks.tree.json", FromFolded},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			res, err := c.from(readFixture(t, c.fixture), nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(res.Tree, "", " ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			goldenPath := filepath.Join("testdata", "golden", c.golden)
			if *update {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/profimport -update` to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("converted tree for %s drifted from golden %s\ngot %d bytes, want %d; rerun with -update if intentional",
					c.fixture, c.golden, len(got), len(want))
			}
		})
	}
}
