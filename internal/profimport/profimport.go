// Package profimport ingests real execution profiles and converts them
// into program trees, breaking the closed world of the built-in
// benchmarks: any profiled binary becomes a prophet scenario.
//
// Two capture formats are supported, both decoded without external
// dependencies (the protobuf wire walk is hand-rolled, so the module
// stays dependency-free):
//
//   - Go's pprof protobuf format (the output of `go test -cpuprofile`,
//     runtime/pprof, or net/http/pprof), gzip-compressed or raw.
//   - Folded-stacks text (`perf script | stackcollapse-perf.pl` style):
//     one "frame;frame;frame weight" line per distinct stack.
//
// The converter turns sampled stacks into the paper's program-tree
// grammar (§IV-B): the stack trie's frames become nested Sec/Task
// levels — sibling frames become sibling Tasks of one Sec, i.e. the
// "what if calls at this level ran in parallel" reading of a call tree
// (after TASKPROF) — and each frame's self weight becomes a U leaf, so
// the tree's total length equals the profile's total sample weight
// exactly (weight conservation; property-tested). A configurable
// leaf-collapse threshold folds negligible subtrees into their parent's
// self time, keeping imported trees within compression budgets.
//
// Both decoders parse untrusted input; they are fuzzed (FuzzPprofDecode,
// FuzzFoldedParse) with checked-in seed corpora, bounded by explicit
// size/depth limits, and return only typed errors from the family below.
package profimport

import (
	"errors"
	"fmt"

	"prophet/internal/obs"
	"prophet/internal/tree"
)

// The profimport error family. Callers dispatch with errors.Is; the
// prophet root package re-exports these sentinels so CLI/server layers
// never import this package for error handling alone.
var (
	// ErrCorrupt: the input is not a decodable profile (bad protobuf
	// wire data, truncated gzip, malformed folded-stacks text).
	ErrCorrupt = errors.New("profimport: malformed profile")
	// ErrEmpty: the profile decoded but carries no samples with positive
	// weight — there is nothing to convert.
	ErrEmpty = errors.New("profimport: profile has no samples")
	// ErrTooLarge: the input exceeds Options.MaxBytes (raw or after
	// gzip expansion — the limit guards against decompression bombs).
	ErrTooLarge = errors.New("profimport: profile exceeds size limit")
	// ErrSampleType: Options.SampleType named a value column the
	// profile does not have.
	ErrSampleType = errors.New("profimport: requested sample type not in profile")
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxBytes bounds raw and decompressed input (64 MiB).
	DefaultMaxBytes = 64 << 20
	// DefaultMaxDepth bounds stack depth; deeper frames fold into the
	// deepest kept frame (weight is never dropped).
	DefaultMaxDepth = 128
	// DefaultCollapseFraction folds subtrees lighter than this fraction
	// of the total weight into their parent's self time.
	DefaultCollapseFraction = 0.001
	// DefaultSectionName names the top-level Sec of imported trees.
	DefaultSectionName = "imported"
)

// Options configures decoding and conversion. The zero value applies
// the defaults above.
type Options struct {
	// SampleType selects the pprof value column by type name (e.g.
	// "cpu", "samples", "alloc_space"). Empty prefers "cpu", then the
	// profile's default_sample_type, then the last column. Ignored for
	// folded stacks (which carry one weight per line).
	SampleType string
	// SectionName names the top-level Sec node (default "imported").
	SectionName string
	// CyclesPerUnit scales sample weight units to cycles (default 1:
	// one weight unit becomes one cycle, which conserves total weight
	// exactly; non-unit scales round per leaf).
	CyclesPerUnit float64
	// CollapseFraction is the leaf-collapse threshold: any stack-trie
	// subtree whose total weight is below CollapseFraction of the whole
	// profile folds into its parent's self time. 0 applies
	// DefaultCollapseFraction; negative disables collapsing.
	CollapseFraction float64
	// MaxDepth caps stack depth (default DefaultMaxDepth); excess
	// frames fold into the deepest kept frame.
	MaxDepth int
	// MaxBytes caps input size (default DefaultMaxBytes).
	MaxBytes int64
	// Metrics, when set, receives import counters (samples parsed,
	// frames kept/dropped).
	Metrics *obs.Registry
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.SectionName == "" {
		out.SectionName = DefaultSectionName
	}
	if out.CyclesPerUnit == 0 {
		out.CyclesPerUnit = 1
	}
	if out.CollapseFraction == 0 {
		out.CollapseFraction = DefaultCollapseFraction
	}
	if out.MaxDepth <= 0 {
		out.MaxDepth = DefaultMaxDepth
	}
	if out.MaxBytes <= 0 {
		out.MaxBytes = DefaultMaxBytes
	}
	return out
}

// StackSample is one sampled call stack: frames ordered root-first
// (outermost caller at index 0) and a non-negative weight in profile
// units (nanoseconds, sample counts, bytes — whatever the capture
// recorded).
type StackSample struct {
	Frames []string
	Weight int64
}

// Stats reports what one import did.
type Stats struct {
	// Samples is the number of decoded samples with positive weight.
	Samples int
	// TotalWeight is their summed weight in profile units. With
	// CyclesPerUnit == 1 the converted tree's TotalLen equals this
	// exactly.
	TotalWeight int64
	// Frames is the stack-trie node count before collapsing.
	Frames int
	// FramesKept / FramesDropped split Frames after the leaf-collapse
	// pass (dropped frames fold their weight into their parent).
	FramesKept, FramesDropped int
	// TruncatedStacks counts samples deeper than MaxDepth whose excess
	// frames were folded into the deepest kept frame.
	TruncatedStacks int
	// SampleType is the value column used, as "type/unit" (pprof only).
	SampleType string
}

// CollapseRatio is the fraction of trie frames removed by the
// leaf-collapse pass.
func (s Stats) CollapseRatio() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.FramesDropped) / float64(s.Frames)
}

func (s Stats) String() string {
	return fmt.Sprintf("%d samples (weight %d, %s), frames %d -> %d (%.1f%% collapsed)",
		s.Samples, s.TotalWeight, s.SampleType, s.Frames, s.FramesKept, 100*s.CollapseRatio())
}

// Result is an imported profile: the converted program tree (already
// valid per tree.Validate) and the import statistics.
type Result struct {
	Tree  *tree.Node
	Stats Stats
}

// FromPprof decodes a pprof protobuf profile (gzip-compressed or raw)
// and converts it to a program tree.
func FromPprof(data []byte, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	samples, sampleType, err := decodePprof(data, o)
	if err != nil {
		return nil, err
	}
	res, err := convert(samples, o)
	if err != nil {
		return nil, err
	}
	res.Stats.SampleType = sampleType
	return res, nil
}

// FromFolded parses folded-stacks text ("frame;frame weight" lines) and
// converts it to a program tree.
func FromFolded(data []byte, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	samples, err := parseFolded(data, o)
	if err != nil {
		return nil, err
	}
	res, err := convert(samples, o)
	if err != nil {
		return nil, err
	}
	res.Stats.SampleType = "folded/weight"
	return res, nil
}
