package profimport

import (
	"fmt"
	"math"
	"sort"

	"prophet/internal/clock"
	"prophet/internal/obs"
	"prophet/internal/tree"
)

// This file converts sampled stacks into the paper's program-tree
// grammar. The samples are first merged into a stack trie (one node per
// distinct call path, self weight = samples whose stack ends there),
// then mapped structurally:
//
//	trie root          -> Root, with one U for empty-stack weight and
//	                      one Sec (Options.SectionName) for the frames
//	frame              -> Task named after the frame, whose children are
//	                      a U leaf of the frame's self weight and, when
//	                      it has callees, a nested Sec of their Tasks
//
// Sibling frames therefore become sibling Tasks of one Sec: the
// imported tree answers "what if the calls at each level of this call
// tree ran in parallel", which is exactly the question the emulators,
// the region profile and the advisor explore. Child order is sorted by
// frame name, so conversion is deterministic for identical input
// regardless of sample order (property-tested).

// trieNode is one distinct call path.
type trieNode struct {
	name     string
	self     int64 // weight of samples ending at this frame
	children map[string]*trieNode
}

func (t *trieNode) child(name string) *trieNode {
	if t.children == nil {
		t.children = make(map[string]*trieNode)
	}
	c, ok := t.children[name]
	if !ok {
		c = &trieNode{name: name}
		t.children[name] = c
	}
	return c
}

// total is self plus all descendant weight.
func (t *trieNode) total() int64 {
	sum := t.self
	for _, c := range t.children {
		sum += c.total()
	}
	return sum
}

// count returns the number of frame nodes in the subtree (excluding a
// synthetic root, which callers never pass).
func (t *trieNode) count() int {
	n := 1
	for _, c := range t.children {
		n += c.count()
	}
	return n
}

// sortedChildren returns the children ordered by frame name.
func (t *trieNode) sortedChildren() []*trieNode {
	out := make([]*trieNode, 0, len(t.children))
	for _, c := range t.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// convert builds the program tree from samples under o's collapse and
// depth budgets.
func convert(samples []StackSample, o Options) (*Result, error) {
	root := &trieNode{}
	st := Stats{}
	for _, s := range samples {
		if s.Weight <= 0 {
			continue
		}
		st.Samples++
		st.TotalWeight += s.Weight
		frames := s.Frames
		if len(frames) > o.MaxDepth {
			// Fold the excess depth into the deepest kept frame: the
			// weight stays, only the refinement is lost.
			frames = frames[:o.MaxDepth]
			st.TruncatedStacks++
		}
		cur := root
		for _, f := range frames {
			cur = cur.child(f)
		}
		cur.self += s.Weight
	}
	if st.Samples == 0 {
		return nil, fmt.Errorf("%w: decoded 0 samples with positive weight", ErrEmpty)
	}

	for _, c := range root.children {
		st.Frames += c.count()
	}
	if o.CollapseFraction > 0 {
		// Absolute threshold in weight units; floor keeps tiny profiles
		// intact (threshold 0 collapses nothing).
		threshold := int64(o.CollapseFraction * float64(st.TotalWeight))
		st.FramesDropped = collapse(root, threshold)
	}
	st.FramesKept = st.Frames - st.FramesDropped

	scale := func(w int64) clock.Cycles {
		if o.CyclesPerUnit == 1 {
			return clock.Cycles(w)
		}
		return clock.Cycles(math.Round(float64(w) * o.CyclesPerUnit))
	}
	var rootChildren []*tree.Node
	if root.self > 0 {
		// Samples with empty stacks: serial time outside any section.
		rootChildren = append(rootChildren, tree.NewU(scale(root.self)))
	}
	if len(root.children) > 0 {
		sec := tree.NewSec(o.SectionName)
		for _, c := range root.sortedChildren() {
			sec.Children = append(sec.Children, frameTask(c, scale))
		}
		rootChildren = append(rootChildren, sec)
	}
	out := tree.NewRoot(rootChildren...)
	if err := out.Validate(); err != nil {
		// Unreachable by construction; kept as a hard backstop because
		// this tree flows into the emulators.
		return nil, fmt.Errorf("%w: converted tree invalid: %v", ErrCorrupt, err)
	}

	if m := o.Metrics; m != nil {
		m.Counter(obs.MImportRuns).Inc()
		m.Counter(obs.MImportSamples).Add(int64(st.Samples))
		m.Counter(obs.MImportFrames).Add(int64(st.FramesKept))
		m.Counter(obs.MImportFramesDropped).Add(int64(st.FramesDropped))
	}
	return &Result{Tree: out, Stats: st}, nil
}

// collapse folds every subtree whose total weight is <= threshold into
// its parent's self weight, returning the number of frames removed.
// Weight is conserved exactly: a dropped subtree's total moves to the
// parent's self time.
func collapse(t *trieNode, threshold int64) int {
	dropped := 0
	for name, c := range t.children {
		if ct := c.total(); ct <= threshold {
			t.self += ct
			dropped += c.count()
			delete(t.children, name)
			continue
		}
		dropped += collapse(c, threshold)
	}
	return dropped
}

// frameTask maps one trie frame to a Task node (see the file comment
// for the grammar mapping).
func frameTask(t *trieNode, scale func(int64) clock.Cycles) *tree.Node {
	task := tree.NewTask(t.name)
	if t.self > 0 || len(t.children) == 0 {
		task.Children = append(task.Children, tree.NewU(scale(t.self)))
	}
	if len(t.children) > 0 {
		sec := tree.NewSec(t.name)
		for _, c := range t.sortedChildren() {
			sec.Children = append(sec.Children, frameTask(c, scale))
		}
		task.Children = append(task.Children, sec)
	}
	return task
}
