package profimport

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/obs"
	"prophet/internal/tree"
)

func readFixture(t testing.TB, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFromPprofSynthetic pins the full decode+convert path on the
// synthetic fixture whose contents are known exactly.
func TestFromPprofSynthetic(t *testing.T) {
	res, err := FromPprof(readFixture(t, "small.pb.gz"), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Samples != 8 {
		t.Errorf("Samples = %d, want 8", st.Samples)
	}
	if st.TotalWeight != 10353 {
		t.Errorf("TotalWeight = %d, want 10353", st.TotalWeight)
	}
	if st.SampleType != "cpu/nanoseconds" {
		t.Errorf("SampleType = %q", st.SampleType)
	}
	// Weight conservation at the default 1:1 scale.
	if got := int64(res.Tree.TotalLen()); got != st.TotalWeight {
		t.Errorf("tree TotalLen = %d, want %d", got, st.TotalWeight)
	}
	// The "tiny" frame (weight 3 of 10353) is under the default 0.1%
	// collapse threshold and must fold into kernelA's self time.
	if strings.Contains(res.Tree.String(), "tiny") {
		t.Errorf("tiny frame survived collapse:\n%s", res.Tree)
	}
	// 8 distinct frames in the trie (main, compute, kernelA, kernelB,
	// io, read, runtime.gc, tiny); collapse removes tiny.
	if st.FramesDropped != 1 || st.FramesKept != 7 {
		t.Errorf("frames kept/dropped = %d/%d, want 7/1", st.FramesKept, st.FramesDropped)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFromPprofRealCapture: the checked-in capture of this repo's own
// tests (go test -cpuprofile) must decode, convert, validate and
// conserve weight — the decoder's contract against real runtime output.
func TestFromPprofRealCapture(t *testing.T) {
	res, err := FromPprof(readFixture(t, "cpu.pb.gz"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Samples == 0 || res.Stats.TotalWeight == 0 {
		t.Fatalf("empty stats from real capture: %+v", res.Stats)
	}
	if res.Stats.SampleType != "cpu/nanoseconds" {
		t.Errorf("SampleType = %q, want cpu/nanoseconds", res.Stats.SampleType)
	}
	if got := int64(res.Tree.TotalLen()); got != res.Stats.TotalWeight {
		t.Errorf("tree TotalLen = %d, want %d", got, res.Stats.TotalWeight)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// A real Go capture stacks through testing.tRunner; the frame names
	// must have survived symbolization.
	if !strings.Contains(res.Tree.String(), "prophet/internal/compress") {
		t.Errorf("expected compress frames in converted tree")
	}
}

// TestFromFoldedFixture pins the folded parser on the text fixture and
// the cross-format property: the folded fixture encodes the same call
// tree as small.pb.gz, so both formats must convert to equal trees.
func TestFromFoldedFixture(t *testing.T) {
	folded, err := FromFolded(readFixture(t, "stacks.folded"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if folded.Stats.Samples != 7 || folded.Stats.TotalWeight != 10353 {
		t.Errorf("stats = %+v", folded.Stats)
	}
	pprof, err := FromPprof(readFixture(t, "small.pb.gz"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(folded.Tree, pprof.Tree, 0) {
		t.Errorf("folded and pprof forms of the same profile disagree:\n%s\nvs\n%s", folded.Tree, pprof.Tree)
	}
}

// TestFoldedErrors is the folded parser's error table: every malformed
// line is an ErrCorrupt naming its line number.
func TestFoldedErrors(t *testing.T) {
	cases := []struct {
		name, in string
		wantLine string
	}{
		{"no weight", "mainonly\n", "line 1"},
		{"bad weight", "main;foo twelve\n", "line 1"},
		{"negative weight", "main;foo -4\n", "line 1"},
		{"empty stack", "ok;path 5\n;; 5\n", "line 2"},
		{"weight overflow", "main 99999999999999999999\n", "line 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := FromFolded([]byte(c.in), nil)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			if !strings.Contains(err.Error(), c.wantLine) {
				t.Errorf("err %q does not name %s", err, c.wantLine)
			}
		})
	}
	// Comments, blank lines and CRLF are tolerated.
	res, err := FromFolded([]byte("# header\r\n\r\nmain;f 7\r\n"), nil)
	if err != nil || res.Stats.TotalWeight != 7 {
		t.Fatalf("lenient parse: %v, %+v", err, res)
	}
}

// TestPprofErrors is the decoder's error table over hostile inputs.
func TestPprofErrors(t *testing.T) {
	valid := EncodePprof([]StackSample{{Frames: []string{"f"}, Weight: 1}}, "cpu", "nanoseconds")
	gz := GzipPprof(valid)
	cases := []struct {
		name string
		in   []byte
		opts *Options
		want error
	}{
		{"empty input", nil, nil, ErrEmpty},
		{"zero samples", EncodePprof(nil, "cpu", "nanoseconds"), nil, ErrEmpty},
		{"truncated gzip", gz[:len(gz)-6], nil, ErrCorrupt},
		{"gzip junk payload", GzipPprof([]byte("not a protobuf at all, definitely")), nil, ErrCorrupt},
		{"raw junk", []byte{0xff, 0xff, 0xff, 0xff}, nil, ErrCorrupt},
		{"raw over limit", valid, &Options{MaxBytes: 4}, ErrTooLarge},
		// A 1 MiB zero payload gzips to ~1 KiB: the raw size passes the
		// 64 KiB limit, the expansion must not.
		{"bomb over limit", GzipPprof(make([]byte, 1<<20)), &Options{MaxBytes: 64 << 10}, ErrTooLarge},
		{"unknown sample type", valid, &Options{SampleType: "alloc_space"}, ErrSampleType},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := FromPprof(c.in, c.opts)
			if !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

// TestSampleTypeSelection: multi-column profiles pick cpu by default
// and honour an explicit Options.SampleType.
func TestSampleTypeSelection(t *testing.T) {
	// Build a two-column profile by hand: [samples/count, cpu/nanoseconds].
	var body bytes.Buffer
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "f"}
	var vt1, vt2 bytes.Buffer
	pbVarintField(&vt1, 1, 1) // samples
	pbVarintField(&vt1, 2, 2) // count
	pbBytesField(&body, 1, vt1.Bytes())
	pbVarintField(&vt2, 1, 3) // cpu
	pbVarintField(&vt2, 2, 4) // nanoseconds
	pbBytesField(&body, 1, vt2.Bytes())
	var sm, ids, vals bytes.Buffer
	pbVarint(&ids, 1)
	pbBytesField(&sm, 1, ids.Bytes())
	pbVarint(&vals, 2)  // 2 samples
	pbVarint(&vals, 50) // 50 ns
	pbBytesField(&sm, 2, vals.Bytes())
	pbBytesField(&body, 2, sm.Bytes())
	var lm, ln, fm bytes.Buffer
	pbVarintField(&lm, 1, 1)
	pbVarintField(&ln, 1, 1)
	pbBytesField(&lm, 4, ln.Bytes())
	pbBytesField(&body, 4, lm.Bytes())
	pbVarintField(&fm, 1, 1)
	pbVarintField(&fm, 2, 5) // name "f"
	pbBytesField(&body, 5, fm.Bytes())
	for _, s := range strs {
		pbBytesField(&body, 6, []byte(s))
	}

	res, err := FromPprof(body.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SampleType != "cpu/nanoseconds" || res.Stats.TotalWeight != 50 {
		t.Errorf("default pick = %q weight %d, want cpu/nanoseconds 50", res.Stats.SampleType, res.Stats.TotalWeight)
	}
	res, err = FromPprof(body.Bytes(), &Options{SampleType: "samples"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SampleType != "samples/count" || res.Stats.TotalWeight != 2 {
		t.Errorf("explicit pick = %q weight %d, want samples/count 2", res.Stats.SampleType, res.Stats.TotalWeight)
	}
}

// TestDepthFold: stacks deeper than MaxDepth fold their excess into the
// deepest kept frame without losing weight.
func TestDepthFold(t *testing.T) {
	frames := make([]string, 20)
	for i := range frames {
		frames[i] = strings.Repeat("f", i+1)
	}
	raw := EncodePprof([]StackSample{{Frames: frames, Weight: 100}}, "cpu", "nanoseconds")
	res, err := FromPprof(raw, &Options{MaxDepth: 5, CollapseFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TruncatedStacks != 1 {
		t.Errorf("TruncatedStacks = %d, want 1", res.Stats.TruncatedStacks)
	}
	if got := int64(res.Tree.TotalLen()); got != 100 {
		t.Errorf("TotalLen = %d, want 100", got)
	}
	if res.Stats.FramesKept != 5 {
		t.Errorf("FramesKept = %d, want 5", res.Stats.FramesKept)
	}
}

// TestCollapseDisabled: negative CollapseFraction keeps every frame.
func TestCollapseDisabled(t *testing.T) {
	res, err := FromPprof(readFixture(t, "small.pb.gz"), &Options{CollapseFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FramesDropped != 0 || !strings.Contains(res.Tree.String(), "tiny") {
		t.Errorf("collapse ran when disabled: %+v\n%s", res.Stats, res.Tree)
	}
}

// TestImportMetrics: conversions feed the obs registry.
func TestImportMetrics(t *testing.T) {
	reg := &obs.Registry{}
	res, err := FromPprof(readFixture(t, "small.pb.gz"), &Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.MImportSamples).Value(); got != int64(res.Stats.Samples) {
		t.Errorf("%s = %d, want %d", obs.MImportSamples, got, res.Stats.Samples)
	}
	if got := reg.Counter(obs.MImportFramesDropped).Value(); got != int64(res.Stats.FramesDropped) {
		t.Errorf("%s = %d, want %d", obs.MImportFramesDropped, got, res.Stats.FramesDropped)
	}
	if got := reg.Counter(obs.MImportRuns).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MImportRuns, got)
	}
}

// TestCyclesPerUnitScale: non-unit scales multiply leaf lengths.
func TestCyclesPerUnitScale(t *testing.T) {
	raw := EncodePprof([]StackSample{{Frames: []string{"f"}, Weight: 10}}, "cpu", "nanoseconds")
	res, err := FromPprof(raw, &Options{CyclesPerUnit: 2.27})
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(res.Tree.TotalLen()); got != 23 { // round(10*2.27)
		t.Errorf("TotalLen = %d, want 23", got)
	}
}

// TestEmptyStacksBecomeSerialTime: samples with no frames land as a
// top-level U (serial computation outside any section).
func TestEmptyStacksBecomeSerialTime(t *testing.T) {
	raw := EncodePprof([]StackSample{
		{Frames: nil, Weight: 40},
		{Frames: []string{"f"}, Weight: 60},
	}, "cpu", "nanoseconds")
	res, err := FromPprof(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(res.Tree.SerialOutsideSections()); got != 40 {
		t.Errorf("SerialOutsideSections = %d, want 40", got)
	}
	if got := int64(res.Tree.TotalLen()); got != 100 {
		t.Errorf("TotalLen = %d, want 100", got)
	}
}
