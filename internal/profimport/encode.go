package profimport

import (
	"bytes"
	"compress/gzip"
)

// EncodePprof builds a minimal valid pprof protobuf profile (raw, not
// gzipped) carrying the given stacks with one value column named
// (sampleType, unit). It exists for fixtures, fuzz seed corpora and
// round-trip tests — a profile encoded here decodes back to the same
// root-first stacks — and intentionally emits only the messages
// decodePprof reads.
func EncodePprof(samples []StackSample, sampleType, unit string) []byte {
	strIdx := map[string]int64{"": 0}
	strtab := []string{""}
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strtab))
		strIdx[s] = i
		strtab = append(strtab, s)
		return i
	}
	funcID := map[string]uint64{}
	var funcs []string // creation order, for deterministic output
	type loc struct {
		id uint64
		fn uint64
	}
	locID := map[string]uint64{}
	var locs []loc
	locFor := func(frame string) uint64 {
		if id, ok := locID[frame]; ok {
			return id
		}
		fid, ok := funcID[frame]
		if !ok {
			fid = uint64(len(funcID) + 1)
			funcID[frame] = fid
			funcs = append(funcs, frame)
			intern(frame)
		}
		id := uint64(len(locs) + 1)
		locID[frame] = id
		locs = append(locs, loc{id: id, fn: fid})
		return id
	}

	var body bytes.Buffer
	// sample_type = 1
	var vt bytes.Buffer
	pbVarintField(&vt, 1, uint64(intern(sampleType)))
	pbVarintField(&vt, 2, uint64(intern(unit)))
	pbBytesField(&body, 1, vt.Bytes())
	// sample = 2 (location_id leaf-first, packed; value packed)
	for _, s := range samples {
		var sm bytes.Buffer
		var ids bytes.Buffer
		for i := len(s.Frames) - 1; i >= 0; i-- {
			pbVarint(&ids, locFor(s.Frames[i]))
		}
		if ids.Len() > 0 {
			pbBytesField(&sm, 1, ids.Bytes())
		}
		var vals bytes.Buffer
		pbVarint(&vals, uint64(s.Weight))
		pbBytesField(&sm, 2, vals.Bytes())
		pbBytesField(&body, 2, sm.Bytes())
	}
	// location = 4
	for _, l := range locs {
		var lm bytes.Buffer
		pbVarintField(&lm, 1, l.id)
		var ln bytes.Buffer
		pbVarintField(&ln, 1, l.fn)
		pbBytesField(&lm, 4, ln.Bytes())
		pbBytesField(&body, 4, lm.Bytes())
	}
	// function = 5
	for _, frame := range funcs {
		var fm bytes.Buffer
		pbVarintField(&fm, 1, funcID[frame])
		pbVarintField(&fm, 2, uint64(strIdx[frame]))
		pbBytesField(&body, 5, fm.Bytes())
	}
	// string_table = 6
	for _, s := range strtab {
		pbBytesField(&body, 6, []byte(s))
	}
	return body.Bytes()
}

// GzipPprof gzip-compresses an encoded profile, matching what Go's
// runtime/pprof writes to disk.
func GzipPprof(raw []byte) []byte {
	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	_, _ = zw.Write(raw)
	_ = zw.Close()
	return out.Bytes()
}

func pbVarint(b *bytes.Buffer, v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

func pbVarintField(b *bytes.Buffer, num int, v uint64) {
	pbVarint(b, uint64(num)<<3|0)
	pbVarint(b, v)
}

func pbBytesField(b *bytes.Buffer, num int, payload []byte) {
	pbVarint(b, uint64(num)<<3|2)
	pbVarint(b, uint64(len(payload)))
	b.Write(payload)
}
