package profimport

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// This file decodes the pprof protobuf format (profile.proto) with a
// hand-rolled wire-format walk: varints, the four wire types Go's
// runtime emits, packed and unpacked repeated fields, and unknown-field
// skipping. Rolling the ~200 lines ourselves keeps the module free of a
// protobuf dependency (see DESIGN.md) and gives the fuzzer a single
// bounded surface: every allocation below is capped by the input length
// and every error wraps ErrCorrupt/ErrTooLarge.
//
// Only the messages the converter needs are modeled:
//
//	Profile:  sample_type=1, sample=2, location=4, function=5,
//	          string_table=6, default_sample_type=14
//	ValueType: type=1, unit=2            (string-table indices)
//	Sample:   location_id=1, value=2     (packed or unpacked varints)
//	Location: id=1, address=3, line=4
//	Line:     function_id=1
//	Function: id=1, name=2               (string-table index)
//
// Mappings, labels, comments and the drop/keep regexes are skipped.

// pbuf walks one protobuf message payload.
type pbuf struct {
	b   []byte
	pos int
}

func (p *pbuf) done() bool { return p.pos >= len(p.b) }

func (p *pbuf) varint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		if p.pos >= len(p.b) {
			return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
		}
		c := p.b[p.pos]
		p.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, fmt.Errorf("%w: varint overflows 64 bits", ErrCorrupt)
}

// tag reads one field tag, returning field number and wire type.
func (p *pbuf) tag() (num int, wt int, err error) {
	v, err := p.varint()
	if err != nil {
		return 0, 0, err
	}
	if v>>3 == 0 || v>>3 > 1<<28 {
		return 0, 0, fmt.Errorf("%w: bad field number %d", ErrCorrupt, v>>3)
	}
	return int(v >> 3), int(v & 7), nil
}

// bytes reads one length-delimited payload.
func (p *pbuf) bytes() ([]byte, error) {
	n, err := p.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p.b)-p.pos) {
		return nil, fmt.Errorf("%w: length %d past end of message", ErrCorrupt, n)
	}
	out := p.b[p.pos : p.pos+int(n)]
	p.pos += int(n)
	return out, nil
}

// skip discards one field payload of the given wire type.
func (p *pbuf) skip(wt int) error {
	switch wt {
	case 0: // varint
		_, err := p.varint()
		return err
	case 1: // fixed64
		if len(p.b)-p.pos < 8 {
			return fmt.Errorf("%w: truncated fixed64", ErrCorrupt)
		}
		p.pos += 8
		return nil
	case 2: // length-delimited
		_, err := p.bytes()
		return err
	case 5: // fixed32
		if len(p.b)-p.pos < 4 {
			return fmt.Errorf("%w: truncated fixed32", ErrCorrupt)
		}
		p.pos += 4
		return nil
	default:
		return fmt.Errorf("%w: unsupported wire type %d", ErrCorrupt, wt)
	}
}

// varints reads a repeated varint field: packed (wire type 2) or one
// unpacked element (wire type 0), appending to dst.
func varints(p *pbuf, wt int, dst []uint64) ([]uint64, error) {
	if wt == 0 {
		v, err := p.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, v), nil
	}
	if wt != 2 {
		return nil, fmt.Errorf("%w: repeated varint with wire type %d", ErrCorrupt, wt)
	}
	payload, err := p.bytes()
	if err != nil {
		return nil, err
	}
	sub := pbuf{b: payload}
	for !sub.done() {
		v, err := sub.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

type rawValueType struct{ typ, unit int64 } // string-table indices

type rawSample struct {
	locIDs []uint64
	values []uint64
}

type rawLocation struct {
	id      uint64
	address uint64
	funcIDs []uint64 // line[i].function_id, innermost first
}

// decodePprof decodes data (gunzipping if needed) into root-first stack
// samples plus the "type/unit" name of the value column used.
func decodePprof(data []byte, o Options) ([]StackSample, string, error) {
	if int64(len(data)) > o.MaxBytes {
		return nil, "", fmt.Errorf("%w: %d raw bytes (limit %d)", ErrTooLarge, len(data), o.MaxBytes)
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, "", fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
		}
		// Read one byte past the limit so a bomb is detected rather
		// than silently truncated.
		raw, err := io.ReadAll(io.LimitReader(zr, o.MaxBytes+1))
		if err != nil {
			return nil, "", fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
		}
		if err := zr.Close(); err != nil {
			return nil, "", fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
		}
		if int64(len(raw)) > o.MaxBytes {
			return nil, "", fmt.Errorf("%w: decompresses past %d bytes", ErrTooLarge, o.MaxBytes)
		}
		data = raw
	}

	var (
		sampleTypes []rawValueType
		samples     []rawSample
		locs        []rawLocation
		funcName    = map[uint64]int64{} // function id -> name string index
		strtab      = []string{}
		defaultType int64
	)
	p := pbuf{b: data}
	for !p.done() {
		num, wt, err := p.tag()
		if err != nil {
			return nil, "", err
		}
		switch num {
		case 1: // sample_type
			payload, err := expectBytes(&p, wt, "sample_type")
			if err != nil {
				return nil, "", err
			}
			vt, err := decodeValueType(payload)
			if err != nil {
				return nil, "", err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			payload, err := expectBytes(&p, wt, "sample")
			if err != nil {
				return nil, "", err
			}
			s, err := decodeSample(payload)
			if err != nil {
				return nil, "", err
			}
			samples = append(samples, s)
		case 4: // location
			payload, err := expectBytes(&p, wt, "location")
			if err != nil {
				return nil, "", err
			}
			loc, err := decodeLocation(payload)
			if err != nil {
				return nil, "", err
			}
			locs = append(locs, loc)
		case 5: // function
			payload, err := expectBytes(&p, wt, "function")
			if err != nil {
				return nil, "", err
			}
			id, name, err := decodeFunction(payload)
			if err != nil {
				return nil, "", err
			}
			funcName[id] = name
		case 6: // string_table
			payload, err := expectBytes(&p, wt, "string_table")
			if err != nil {
				return nil, "", err
			}
			strtab = append(strtab, string(payload))
		case 14: // default_sample_type
			if wt != 0 {
				return nil, "", fmt.Errorf("%w: default_sample_type wire type %d", ErrCorrupt, wt)
			}
			v, err := p.varint()
			if err != nil {
				return nil, "", err
			}
			defaultType = int64(v)
		default:
			if err := p.skip(wt); err != nil {
				return nil, "", err
			}
		}
	}

	str := func(i int64) string {
		if i > 0 && i < int64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	idx, typeName, err := pickValueIndex(sampleTypes, str, str(defaultType), o.SampleType)
	if err != nil {
		return nil, "", err
	}

	locByID := make(map[uint64]*rawLocation, len(locs))
	for i := range locs {
		locByID[locs[i].id] = &locs[i]
	}

	out := make([]StackSample, 0, len(samples))
	for _, s := range samples {
		if idx >= len(s.values) {
			continue // sample lacks the selected column
		}
		w := int64(s.values[idx])
		if w <= 0 {
			continue
		}
		// location_id[0] is the leaf; build frames root-first. A
		// location expands to its inline frames, line[0] innermost, so
		// root-first order walks both lists backwards.
		var frames []string
		for i := len(s.locIDs) - 1; i >= 0; i-- {
			loc := locByID[s.locIDs[i]]
			if loc == nil {
				frames = append(frames, fmt.Sprintf("location#%d", s.locIDs[i]))
				continue
			}
			if len(loc.funcIDs) == 0 {
				frames = append(frames, locFallbackName(loc))
				continue
			}
			for j := len(loc.funcIDs) - 1; j >= 0; j-- {
				name := str(funcName[loc.funcIDs[j]])
				if name == "" {
					name = locFallbackName(loc)
				}
				frames = append(frames, name)
			}
		}
		out = append(out, StackSample{Frames: frames, Weight: w})
	}
	return out, typeName, nil
}

func locFallbackName(loc *rawLocation) string {
	if loc.address != 0 {
		return fmt.Sprintf("0x%x", loc.address)
	}
	return fmt.Sprintf("location#%d", loc.id)
}

func expectBytes(p *pbuf, wt int, field string) ([]byte, error) {
	if wt != 2 {
		return nil, fmt.Errorf("%w: %s has wire type %d, want 2", ErrCorrupt, field, wt)
	}
	return p.bytes()
}

func decodeValueType(payload []byte) (rawValueType, error) {
	var vt rawValueType
	p := pbuf{b: payload}
	for !p.done() {
		num, wt, err := p.tag()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1, 2:
			if wt != 0 {
				return vt, fmt.Errorf("%w: ValueType field %d wire type %d", ErrCorrupt, num, wt)
			}
			v, err := p.varint()
			if err != nil {
				return vt, err
			}
			if num == 1 {
				vt.typ = int64(v)
			} else {
				vt.unit = int64(v)
			}
		default:
			if err := p.skip(wt); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func decodeSample(payload []byte) (rawSample, error) {
	var s rawSample
	p := pbuf{b: payload}
	for !p.done() {
		num, wt, err := p.tag()
		if err != nil {
			return s, err
		}
		switch num {
		case 1:
			if s.locIDs, err = varints(&p, wt, s.locIDs); err != nil {
				return s, err
			}
		case 2:
			if s.values, err = varints(&p, wt, s.values); err != nil {
				return s, err
			}
		default:
			if err := p.skip(wt); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func decodeLocation(payload []byte) (rawLocation, error) {
	var loc rawLocation
	p := pbuf{b: payload}
	for !p.done() {
		num, wt, err := p.tag()
		if err != nil {
			return loc, err
		}
		switch num {
		case 1, 3:
			if wt != 0 {
				return loc, fmt.Errorf("%w: Location field %d wire type %d", ErrCorrupt, num, wt)
			}
			v, err := p.varint()
			if err != nil {
				return loc, err
			}
			if num == 1 {
				loc.id = v
			} else {
				loc.address = v
			}
		case 4: // line
			payload, err := expectBytes(&p, wt, "Location.line")
			if err != nil {
				return loc, err
			}
			fid, err := decodeLine(payload)
			if err != nil {
				return loc, err
			}
			loc.funcIDs = append(loc.funcIDs, fid)
		default:
			if err := p.skip(wt); err != nil {
				return loc, err
			}
		}
	}
	return loc, nil
}

func decodeLine(payload []byte) (uint64, error) {
	var fid uint64
	p := pbuf{b: payload}
	for !p.done() {
		num, wt, err := p.tag()
		if err != nil {
			return 0, err
		}
		if num == 1 && wt == 0 {
			if fid, err = p.varint(); err != nil {
				return 0, err
			}
			continue
		}
		if err := p.skip(wt); err != nil {
			return 0, err
		}
	}
	return fid, nil
}

func decodeFunction(payload []byte) (id uint64, name int64, err error) {
	p := pbuf{b: payload}
	for !p.done() {
		num, wt, err := p.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case 1, 2:
			if wt != 0 {
				return 0, 0, fmt.Errorf("%w: Function field %d wire type %d", ErrCorrupt, num, wt)
			}
			v, err := p.varint()
			if err != nil {
				return 0, 0, err
			}
			if num == 1 {
				id = v
			} else {
				name = int64(v)
			}
		default:
			if err := p.skip(wt); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, name, nil
}

// pickValueIndex chooses the sample value column: an explicit request
// by type name, else "cpu" (the column of CPU profiles' nanoseconds),
// else the profile's default_sample_type, else the last column (pprof's
// own UI default).
func pickValueIndex(types []rawValueType, str func(int64) string, defaultType, want string) (int, string, error) {
	if len(types) == 0 {
		// Profiles without sample_type still carry single-value
		// samples; use column 0 and an unnamed type.
		if want != "" {
			return 0, "", fmt.Errorf("%w: %q (profile declares no sample types)", ErrSampleType, want)
		}
		return 0, "unknown/unknown", nil
	}
	name := func(i int) string { return str(types[i].typ) + "/" + str(types[i].unit) }
	if want != "" {
		for i := range types {
			if str(types[i].typ) == want {
				return i, name(i), nil
			}
		}
		var have []string
		for i := range types {
			have = append(have, str(types[i].typ))
		}
		sort.Strings(have)
		return 0, "", fmt.Errorf("%w: %q (profile has %v)", ErrSampleType, want, have)
	}
	for i := range types {
		if str(types[i].typ) == "cpu" {
			return i, name(i), nil
		}
	}
	if defaultType != "" {
		for i := range types {
			if str(types[i].typ) == defaultType {
				return i, name(i), nil
			}
		}
	}
	return len(types) - 1, name(len(types) - 1), nil
}
