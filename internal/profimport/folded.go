package profimport

import (
	"fmt"
	"strconv"
	"strings"
)

// parseFolded parses folded-stacks text: one stack per line in the
// `stackcollapse-*.pl` output format,
//
//	frame;frame;...;frame <weight>
//
// where weight is a non-negative integer (sample count, microseconds —
// whatever the collapser summed). Blank lines and lines starting with
// '#' are ignored. Repeated stacks are legal; their weights accumulate
// in the trie.
func parseFolded(data []byte, o Options) ([]StackSample, error) {
	if int64(len(data)) > o.MaxBytes {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrTooLarge, len(data), o.MaxBytes)
	}
	var out []StackSample
	rest := string(data)
	for lineNo := 1; rest != ""; lineNo++ {
		var line string
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			line, rest = rest, ""
		}
		line = strings.TrimRight(line, " \t\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			return nil, fmt.Errorf("%w: line %d: no weight field (want \"frames... N\")", ErrCorrupt, lineNo)
		}
		weight, err := strconv.ParseInt(line[cut+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad weight %q", ErrCorrupt, lineNo, line[cut+1:])
		}
		if weight < 0 {
			return nil, fmt.Errorf("%w: line %d: negative weight %d", ErrCorrupt, lineNo, weight)
		}
		var frames []string
		for _, f := range strings.Split(line[:cut], ";") {
			if f = strings.TrimSpace(f); f != "" {
				frames = append(frames, f)
			}
		}
		if len(frames) == 0 {
			return nil, fmt.Errorf("%w: line %d: empty stack", ErrCorrupt, lineNo)
		}
		out = append(out, StackSample{Frames: frames, Weight: weight})
	}
	return out, nil
}
