package profimport

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkProfImport measures decode+convert throughput on the largest
// checked-in fixture (the real go test -cpuprofile capture), reporting
// samples/sec. Tracked in results/bench_baseline.json and run by the
// benchmark-smoke CI job.
func BenchmarkProfImport(b *testing.B) {
	data := readFixture(b, "cpu.pb.gz")
	var samples int
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := FromPprof(data, nil)
		if err != nil {
			b.Fatal(err)
		}
		samples = res.Stats.Samples
	}
	b.ReportMetric(float64(samples)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkProfImportFolded: parser+converter throughput on synthetic
// folded text scaled well past the fixtures (10k distinct stacks).
func BenchmarkProfImportFolded(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	var buf []byte
	for i := 0; i < 10000; i++ {
		depth := 1 + r.Intn(8)
		for j := 0; j < depth; j++ {
			if j > 0 {
				buf = append(buf, ';')
			}
			buf = append(buf, fmt.Sprintf("frame%03d", r.Intn(300))...)
		}
		buf = append(buf, fmt.Sprintf(" %d\n", 1+r.Intn(1000))...)
	}
	var samples int
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := FromFolded(buf, nil)
		if err != nil {
			b.Fatal(err)
		}
		samples = res.Stats.Samples
	}
	b.ReportMetric(float64(samples)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
}
