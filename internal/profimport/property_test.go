package profimport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"prophet/internal/tree"
)

// randomSamples generates a seeded random workload of stacks drawn from
// a small frame alphabet, so paths collide and the trie gets real
// sharing.
func randomSamples(r *rand.Rand, n int) []StackSample {
	alphabet := []string{"main", "run", "parse", "emit", "gc", "alloc", "hash", "walk"}
	out := make([]StackSample, n)
	for i := range out {
		depth := 1 + r.Intn(6)
		frames := make([]string, depth)
		for j := range frames {
			frames[j] = alphabet[r.Intn(len(alphabet))]
		}
		out[i] = StackSample{Frames: frames, Weight: 1 + int64(r.Intn(10000))}
	}
	return out
}

// TestPropertyWeightConservation: for random inputs at the default 1:1
// scale, the converted tree's total length equals the total sample
// weight — with and without collapsing, at any depth cap. Nothing the
// importer drops may lose weight.
func TestPropertyWeightConservation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		samples := randomSamples(r, 1+r.Intn(80))
		var want int64
		for _, s := range samples {
			want += s.Weight
		}
		opts := &Options{
			CollapseFraction: []float64{-1, 0.001, 0.05, 0.3}[r.Intn(4)],
			MaxDepth:         1 + r.Intn(8),
		}
		res, err := convert(samples, opts.withDefaults())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := int64(res.Tree.TotalLen()); got != want {
			t.Fatalf("trial %d (collapse=%g depth=%d): TotalLen = %d, want %d",
				trial, opts.CollapseFraction, opts.MaxDepth, got, want)
		}
		if err := res.Tree.Validate(); err != nil {
			t.Fatalf("trial %d: converted tree invalid: %v", trial, err)
		}
	}
}

// TestPropertyDeterministic: identical input converts to byte-identical
// JSON regardless of sample order (trie construction and child sorting
// must not leak map iteration order).
func TestPropertyDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		samples := randomSamples(r, 1+r.Intn(60))
		res1, err := convert(samples, (&Options{}).withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		shuffled := make([]StackSample, len(samples))
		copy(shuffled, samples)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		res2, err := convert(shuffled, (&Options{}).withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		j1, _ := json.Marshal(res1.Tree)
		j2, _ := json.Marshal(res2.Tree)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("trial %d: conversion depends on sample order:\n%s\nvs\n%s", trial, j1, j2)
		}
		if res1.Stats != res2.Stats {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, res1.Stats, res2.Stats)
		}
	}
}

// TestPropertyEncodeDecodeRoundTrip: EncodePprof and decodePprof are
// inverses over the stack/weight content (zero-weight samples excepted
// — the decoder drops them by contract).
func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		in := randomSamples(r, 1+r.Intn(40))
		for _, gzipped := range []bool{false, true} {
			raw := EncodePprof(in, "cpu", "nanoseconds")
			if gzipped {
				raw = GzipPprof(raw)
			}
			got, typ, err := decodePprof(raw, (&Options{}).withDefaults())
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if typ != "cpu/nanoseconds" {
				t.Fatalf("trial %d: type = %q", trial, typ)
			}
			if len(got) != len(in) {
				t.Fatalf("trial %d: %d samples back, want %d", trial, len(got), len(in))
			}
			for i := range in {
				if !reflect.DeepEqual(got[i].Frames, in[i].Frames) || got[i].Weight != in[i].Weight {
					t.Fatalf("trial %d sample %d: %+v != %+v", trial, i, got[i], in[i])
				}
			}
		}
	}
}

// TestPropertyFoldedPprofAgree: the same stacks expressed in both
// capture formats convert to structurally equal trees.
func TestPropertyFoldedPprofAgree(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		samples := randomSamples(r, 1+r.Intn(40))
		var folded bytes.Buffer
		for _, s := range samples {
			for i, f := range s.Frames {
				if i > 0 {
					folded.WriteByte(';')
				}
				folded.WriteString(f)
			}
			fmt.Fprintf(&folded, " %d\n", s.Weight)
		}
		fromFolded, err := FromFolded(folded.Bytes(), nil)
		if err != nil {
			t.Fatal(err)
		}
		fromPprof, err := FromPprof(EncodePprof(samples, "cpu", "nanoseconds"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(fromFolded.Tree, fromPprof.Tree, 0) {
			t.Fatalf("trial %d: formats disagree:\n%s\nvs\n%s", trial, fromFolded.Tree, fromPprof.Tree)
		}
	}
}
