package machine

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func validSpec() *Spec {
	return &Spec{
		Name:          "t-valid",
		CoreGroups:    []CoreGroup{{Count: 2, Speed: 1}, {Count: 2, Speed: 0.5}},
		Quantum:       50_000,
		ContextSwitch: 1_000,
		LLC:           LLCSpec{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64},
		DRAM:          DRAMSpec{UnloadedLatency: 40, BandwidthBytesPerCycle: 8, Knee: 0.75},
	}
}

// TestValidateTable drives every validation rule. Strictness is the
// point: a spec is never silently rewritten, so each bad field must be
// reported as a *SpecError wrapping ErrInvalidSpec and naming the field.
func TestValidateTable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		field  string // expected SpecError.Field; "" = spec must be valid
	}{
		{"valid", func(s *Spec) {}, ""},
		{"zero context switch is legitimately free", func(s *Spec) { s.ContextSwitch = 0 }, ""},
		{"absent second domain is legitimate", func(s *Spec) { s.DRAM.SecondDomain = nil }, ""},
		{"empty name", func(s *Spec) { s.Name = "" }, "name"},
		{"comma in name", func(s *Spec) { s.Name = "a,b" }, "name"},
		{"space in name", func(s *Spec) { s.Name = "a b" }, "name"},
		{"no core groups", func(s *Spec) { s.CoreGroups = nil }, "core_groups"},
		{"zero group count", func(s *Spec) { s.CoreGroups[1].Count = 0 }, "core_groups[1].count"},
		{"zero group speed", func(s *Spec) { s.CoreGroups[0].Speed = 0 }, "core_groups[0].speed"},
		{"negative group speed", func(s *Spec) { s.CoreGroups[0].Speed = -1 }, "core_groups[0].speed"},
		{"NaN group speed", func(s *Spec) { s.CoreGroups[0].Speed = nan() }, "core_groups[0].speed"},
		{"zero quantum", func(s *Spec) { s.Quantum = 0 }, "quantum"},
		{"negative context switch", func(s *Spec) { s.ContextSwitch = -1 }, "context_switch"},
		{"zero llc size", func(s *Spec) { s.LLC.SizeBytes = 0 }, "llc.size_bytes"},
		{"zero llc ways", func(s *Spec) { s.LLC.Ways = 0 }, "llc.ways"},
		{"non-power-of-two line", func(s *Spec) { s.LLC.LineBytes = 48 }, "llc.line_bytes"},
		{"zero dram latency", func(s *Spec) { s.DRAM.UnloadedLatency = 0 }, "dram.unloaded_latency"},
		{"zero dram bandwidth", func(s *Spec) { s.DRAM.BandwidthBytesPerCycle = 0 }, "dram.bandwidth_bytes_per_cycle"},
		{"zero knee", func(s *Spec) { s.DRAM.Knee = 0 }, "dram.knee"},
		{"knee above one not silently clamped", func(s *Spec) { s.DRAM.Knee = 1.5 }, "dram.knee"},
		{"second domain zero bandwidth", func(s *Spec) {
			s.DRAM.SecondDomain = &DRAMDomain{BandwidthBytesPerCycle: 0, Cores: 2}
		}, "dram.second_domain.bandwidth_bytes_per_cycle"},
		{"second domain zero cores", func(s *Spec) {
			s.DRAM.SecondDomain = &DRAMDomain{BandwidthBytesPerCycle: 4, Cores: 0}
		}, "dram.second_domain.cores"},
		{"second domain swallows machine", func(s *Spec) {
			s.DRAM.SecondDomain = &DRAMDomain{BandwidthBytesPerCycle: 4, Cores: 4}
		}, "dram.second_domain.cores"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error on %s", tc.field)
			}
			if !errors.Is(err, ErrInvalidSpec) {
				t.Errorf("error %v does not wrap ErrInvalidSpec", err)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *SpecError", err)
			}
			if se.Field != tc.field {
				t.Errorf("SpecError.Field = %q, want %q", se.Field, tc.field)
			}
		})
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestCoresAndSpeeds(t *testing.T) {
	s := validSpec()
	if got := s.Cores(); got != 4 {
		t.Fatalf("Cores() = %d, want 4", got)
	}
	wantSpeeds := []float64{1, 1, 0.5, 0.5}
	for i, want := range wantSpeeds {
		if got := s.SpeedOf(i); got != want {
			t.Errorf("SpeedOf(%d) = %v, want %v", i, got, want)
		}
	}
	if got := s.SpeedOf(99); got != 1 {
		t.Errorf("SpeedOf(out of range) = %v, want 1", got)
	}
	if s.Homogeneous() {
		t.Error("Homogeneous() = true for a 2-speed spec")
	}
	// Abstract CPUs beyond the physical count wrap around.
	if got := s.CoreSpeeds(6); !reflect.DeepEqual(got, []float64{1, 1, 0.5, 0.5, 1, 1}) {
		t.Errorf("CoreSpeeds(6) = %v", got)
	}
	if got := Default().CoreSpeeds(4); got != nil {
		t.Errorf("CoreSpeeds on homogeneous spec = %v, want nil", got)
	}
}

// TestRegistryRoundTrip is the ParseMethod-style contract: for every
// registered preset, ParseSpec(s.String()) returns the canonical pointer
// itself.
func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("Names() = %v, want at least westmere12, gracelike72, embedded4+4, hbm12", names)
	}
	if names[0] != DefaultName {
		t.Fatalf("Names()[0] = %q, want %q first", names[0], DefaultName)
	}
	for _, name := range names {
		s, err := ParseSpec(name)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", name, err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(String()): %v", err)
		}
		if back != s {
			t.Errorf("ParseSpec(%q.String()) returned a different pointer", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q does not validate: %v", name, err)
		}
	}
}

func TestParseSpecUnknown(t *testing.T) {
	_, err := ParseSpec("no-such-machine")
	if !errors.Is(err, ErrUnknownSpec) {
		t.Fatalf("ParseSpec(unknown) = %v, want ErrUnknownSpec", err)
	}
}

func TestRegisterRejectsDuplicateAndInvalid(t *testing.T) {
	if err := Register(Default()); err == nil {
		t.Error("Register(duplicate) succeeded")
	}
	bad := validSpec()
	bad.Name = ""
	if err := Register(bad); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("Register(invalid) = %v, want ErrInvalidSpec", err)
	}
}

// TestDefaultMatchesPaperMachine pins westmere12 to the historical
// sim/mem default values: the byte-identity of every pre-spec golden file
// depends on these exact numbers.
func TestDefaultMatchesPaperMachine(t *testing.T) {
	d := Default()
	if d.Cores() != 12 || !d.Homogeneous() {
		t.Errorf("default = %d cores homogeneous=%v, want 12 homogeneous", d.Cores(), d.Homogeneous())
	}
	if d.Quantum != 50_000 || d.ContextSwitch != 1_000 {
		t.Errorf("default quantum/cs = %d/%d, want 50000/1000", d.Quantum, d.ContextSwitch)
	}
	if d.LLC != (LLCSpec{SizeBytes: 12 << 20, Ways: 16, LineBytes: 64}) {
		t.Errorf("default LLC = %+v", d.LLC)
	}
	want := DRAMSpec{UnloadedLatency: 40, BandwidthBytesPerCycle: 8, Knee: 0.75}
	if d.DRAM != want {
		t.Errorf("default DRAM = %+v, want %+v", d.DRAM, want)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := validSpec()
	s.DRAM.SecondDomain = &DRAMDomain{BandwidthBytesPerCycle: 4, Cores: 2}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, s) {
		t.Errorf("JSON round trip: got %+v, want %+v", &back, s)
	}
	// A spec without a second domain must omit the field entirely.
	data, err = json.Marshal(Default())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "second_domain") {
		t.Errorf("default spec JSON leaks second_domain: %s", data)
	}
}
