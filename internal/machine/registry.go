package machine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"prophet/internal/counters"
)

// DefaultName is the registry name of the paper machine — the spec every
// request without an explicit machine runs against.
const DefaultName = "westmere12"

// ErrDuplicateSpec is the sentinel for Register calls whose name is
// already taken: specs are immutable after publication, so a name can
// never be rebound (the server maps this to HTTP 409).
var ErrDuplicateSpec = errors.New("machine: spec already registered")

// The preset registry. Lookup hands out the registered pointer itself:
// specs are immutable after registration, so one canonical *Spec per name
// is shared by every caller — which also makes pointer-keyed caches
// (sim.Config in the calibration cache) collapse equal machines to one
// entry.
var registry = struct {
	mu    sync.RWMutex
	specs map[string]*Spec
}{specs: make(map[string]*Spec)}

// Register validates the spec and adds it to the registry. It fails on an
// invalid spec or a duplicate name. The caller must not mutate the spec
// after registration.
func Register(s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.specs[s.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateSpec, s.Name)
	}
	registry.specs[s.Name] = s
	return nil
}

// ParseSpec resolves a registered spec name to its canonical pointer.
// ParseSpec(s.String()) returns s itself for any registered spec. Unknown
// names fail with an error wrapping ErrUnknownSpec that lists the
// registered names.
func ParseSpec(name string) (*Spec, error) {
	registry.mu.RLock()
	s := registry.specs[name]
	registry.mu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("%w %q (known: %s)", ErrUnknownSpec, name, strings.Join(Names(), " | "))
	}
	return s, nil
}

// Names returns the registered spec names, sorted, with the default spec
// first.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.specs))
	for n := range registry.specs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if (names[i] == DefaultName) != (names[j] == DefaultName) {
			return names[i] == DefaultName
		}
		return names[i] < names[j]
	})
	return names
}

// Presets returns every registered spec in Names() order.
func Presets() []*Spec {
	out := make([]*Spec, 0)
	for _, n := range Names() {
		s, _ := ParseSpec(n)
		out = append(out, s)
	}
	return out
}

// Default returns the canonical paper-machine spec (westmere12).
func Default() *Spec {
	s, err := ParseSpec(DefaultName)
	if err != nil {
		panic(err) // registered in init; unreachable
	}
	return s
}

func mustRegister(s *Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

func init() {
	// westmere12 is the paper's testbed and the system-wide default. Its
	// parameters are byte-for-byte the historical defaults of
	// sim.DefaultConfig / mem.DefaultDRAM / mem.DefaultLLC, so every
	// pre-spec golden output reproduces exactly.
	mustRegister(&Spec{
		Name:          DefaultName,
		Desc:          "12-core two-socket Westmere-class machine, the paper's testbed (default)",
		CoreGroups:    []CoreGroup{{Count: 12, Speed: 1}},
		Quantum:       50_000,
		ContextSwitch: 1_000,
		LLC:           LLCSpec{SizeBytes: 12 << 20, Ways: 16, LineBytes: counters.LineSize},
		DRAM:          DRAMSpec{UnloadedLatency: 40, BandwidthBytesPerCycle: 8, Knee: 0.75},
	})
	// gracelike72: a modern large server — many homogeneous cores, a big
	// LLC, lots of bandwidth split across two NUMA-ish domains of 36
	// cores each.
	mustRegister(&Spec{
		Name:          "gracelike72",
		Desc:          "72-core Grace-like server: 96 MiB LLC, two 36-core bandwidth domains at 32 B/cycle each",
		CoreGroups:    []CoreGroup{{Count: 72, Speed: 1}},
		Quantum:       50_000,
		ContextSwitch: 1_000,
		LLC:           LLCSpec{SizeBytes: 96 << 20, Ways: 16, LineBytes: counters.LineSize},
		DRAM: DRAMSpec{
			UnloadedLatency:        36,
			BandwidthBytesPerCycle: 32,
			Knee:                   0.8,
			SecondDomain:           &DRAMDomain{BandwidthBytesPerCycle: 32, Cores: 36},
		},
	})
	// embedded4+4: an asymmetric big.LITTLE part — four full-rate
	// performance cores plus four half-rate efficiency cores in front of
	// a narrow memory system.
	mustRegister(&Spec{
		Name:          "embedded4+4",
		Desc:          "asymmetric embedded 4+4 big.LITTLE: 4 cores at 1.0x + 4 at 0.5x, 2 MiB LLC, 2 B/cycle DRAM",
		CoreGroups:    []CoreGroup{{Count: 4, Speed: 1}, {Count: 4, Speed: 0.5}},
		Quantum:       50_000,
		ContextSwitch: 1_000,
		LLC:           LLCSpec{SizeBytes: 2 << 20, Ways: 8, LineBytes: counters.LineSize},
		DRAM:          DRAMSpec{UnloadedLatency: 60, BandwidthBytesPerCycle: 2, Knee: 0.7},
	})
	// hbm12: the memory-variant what-if — the paper machine's cores in
	// front of an HBM-like stack (PROFET's question: same code, novel
	// memory system). 4x the bandwidth and a later knee move the
	// saturation point past 12 streaming threads.
	mustRegister(&Spec{
		Name:          "hbm12",
		Desc:          "paper machine's 12 cores with HBM-like memory: 32 B/cycle, knee 0.9",
		CoreGroups:    []CoreGroup{{Count: 12, Speed: 1}},
		Quantum:       50_000,
		ContextSwitch: 1_000,
		LLC:           LLCSpec{SizeBytes: 12 << 20, Ways: 16, LineBytes: counters.LineSize},
		DRAM:          DRAMSpec{UnloadedLatency: 40, BandwidthBytesPerCycle: 32, Knee: 0.9},
	})
}
