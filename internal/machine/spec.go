// Package machine defines the immutable specification of a simulated
// target machine: core groups (with per-group speed ratios for asymmetric
// big.LITTLE-style designs), the last-level cache, and the DRAM bandwidth
// model (with an optional second NUMA-ish bandwidth domain), plus a
// registry of named presets.
//
// A Spec is the single source of machine truth for the rest of the
// system: internal/sim and internal/mem derive their runtime
// configuration from it, the prediction API selects one per request by
// name, and the estimate-cache/cluster-routing keys incorporate the name.
// The split between the validated, immutable Spec and the pooled mutable
// machine instance (sim.Machine, mem.DRAM) is what lets one spec be
// shared by every concurrent run without copying or locking.
//
// Specs are validated strictly: Validate never rewrites a field. A zero
// field that would be meaningless (no cores, zero quantum) is an error,
// while a zero field with a legitimate meaning (ContextSwitch: 0 — free
// context switches; SecondDomain: nil — a single bandwidth domain) is
// kept exactly as written. This is deliberately different from the legacy
// knob structs (sim.Config, mem.DRAMConfig), whose zero values silently
// fall back to paper-machine defaults for compatibility.
package machine

import (
	"errors"
	"fmt"
	"strings"

	"prophet/internal/clock"
)

// ErrInvalidSpec is the family sentinel for machine-spec validation
// errors: every error Validate returns wraps it (via *SpecError).
var ErrInvalidSpec = errors.New("machine: invalid spec")

// ErrUnknownSpec is the sentinel for ParseSpec lookups of names not in
// the registry.
var ErrUnknownSpec = errors.New("machine: unknown spec")

// SpecError reports one failed validation rule. It unwraps to
// ErrInvalidSpec so callers can errors.Is against the sentinel.
type SpecError struct {
	// Spec is the Name of the offending spec ("" when unnamed).
	Spec string
	// Field names the offending field ("core_groups[1].speed").
	Field string
	// Reason explains the violated rule.
	Reason string
}

func (e *SpecError) Error() string {
	name := e.Spec
	if name == "" {
		name = "<unnamed>"
	}
	return fmt.Sprintf("machine: invalid spec %s: %s: %s", name, e.Field, e.Reason)
}

func (e *SpecError) Unwrap() error { return ErrInvalidSpec }

// CoreGroup is a homogeneous group of cores within a machine. Asymmetric
// machines (big.LITTLE) are several groups with different speeds.
type CoreGroup struct {
	// Count is the number of cores in the group.
	Count int `json:"count"`
	// Speed is the group's clock ratio relative to the machine's nominal
	// cycle: a core with Speed 2 retires instruction work twice per
	// nominal cycle; Speed 0.5 is a half-rate efficiency core. Memory
	// stalls are not scaled — DRAM runs on the nominal clock.
	Speed float64 `json:"speed"`
}

// LLCSpec sizes the shared last-level cache.
type LLCSpec struct {
	// SizeBytes is the total capacity.
	SizeBytes int64 `json:"size_bytes"`
	// Ways is the associativity.
	Ways int `json:"ways"`
	// LineBytes is the cache-line size (power of two).
	LineBytes int `json:"line_bytes"`
}

// DRAMDomain is the optional second bandwidth domain of a two-domain
// (NUMA-ish) memory system: the highest-numbered Cores cores of the
// machine issue their traffic against this domain's bandwidth instead of
// the primary one. Latency (UnloadedLatency) and the saturation knee are
// shared with the primary domain.
type DRAMDomain struct {
	// BandwidthBytesPerCycle is the domain's sustainable bandwidth.
	BandwidthBytesPerCycle float64 `json:"bandwidth_bytes_per_cycle"`
	// Cores is how many (highest-numbered) cores belong to the domain;
	// it must leave at least one core on the primary domain.
	Cores int `json:"cores"`
}

// DRAMSpec describes the DRAM bandwidth/saturation model.
type DRAMSpec struct {
	// UnloadedLatency ω₀ is the effective per-miss CPU stall in nominal
	// cycles when the bus is idle.
	UnloadedLatency float64 `json:"unloaded_latency"`
	// BandwidthBytesPerCycle is the sustainable bandwidth of the primary
	// domain in bytes per nominal cycle.
	BandwidthBytesPerCycle float64 `json:"bandwidth_bytes_per_cycle"`
	// Knee is the utilization fraction where queueing starts to stretch
	// latency (0 < Knee <= 1).
	Knee float64 `json:"knee"`
	// SecondDomain, when non-nil, splits the machine into two bandwidth
	// domains. Nil means one shared bus (the paper machine).
	SecondDomain *DRAMDomain `json:"second_domain,omitempty"`
}

// Spec is an immutable, validated machine specification. Construct one as
// a literal and call Validate (or register it, which validates), then
// treat it as read-only: registry lookups hand out shared pointers, and
// the simulator, the calibration cache and the server all rely on a
// *Spec never changing after publication.
type Spec struct {
	// Name identifies the spec in flags, JSON requests and cache keys.
	Name string `json:"name"`
	// Desc is a one-line human description.
	Desc string `json:"desc,omitempty"`
	// CoreGroups lays out the cores, fastest-first by convention. Core
	// index i belongs to the group covering i in cumulative Count order.
	CoreGroups []CoreGroup `json:"core_groups"`
	// Quantum is the OS scheduling time slice in nominal cycles.
	Quantum clock.Cycles `json:"quantum"`
	// ContextSwitch is the cost of switching a core between threads, in
	// nominal cycles. Zero means genuinely free — unlike the legacy
	// sim.Config knob, it is never rewritten to a default.
	ContextSwitch clock.Cycles `json:"context_switch"`
	// LLC sizes the shared last-level cache.
	LLC LLCSpec `json:"llc"`
	// DRAM describes the memory system.
	DRAM DRAMSpec `json:"dram"`
}

// String returns the spec's name, so a registered spec round-trips
// through ParseSpec(s.String()) exactly (same pointer).
func (s *Spec) String() string { return s.Name }

// Cores returns the total core count.
func (s *Spec) Cores() int {
	n := 0
	for _, g := range s.CoreGroups {
		n += g.Count
	}
	return n
}

// SpeedOf returns the speed ratio of core i (1 for out-of-range indices,
// so oversubscribed abstract CPU numbering degrades gracefully).
func (s *Spec) SpeedOf(i int) float64 {
	for _, g := range s.CoreGroups {
		if i < g.Count {
			return g.Speed
		}
		i -= g.Count
	}
	return 1
}

// Homogeneous reports whether every core runs at speed 1 — the case the
// simulator's byte-identical legacy fast path covers.
func (s *Spec) Homogeneous() bool {
	for _, g := range s.CoreGroups {
		if g.Speed != 1 {
			return false
		}
	}
	return true
}

// CoreSpeeds returns the per-core speed ratios for n abstract CPUs,
// mapping CPU i to physical core i mod Cores(). It returns nil when the
// speeds are all 1 (callers treat nil as the homogeneous fast path).
func (s *Spec) CoreSpeeds(n int) []float64 {
	if s.Homogeneous() {
		return nil
	}
	cores := s.Cores()
	out := make([]float64, n)
	for i := range out {
		out[i] = s.SpeedOf(i % cores)
	}
	return out
}

func (s *Spec) bad(field, format string, args ...any) error {
	return &SpecError{Spec: s.Name, Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks every field strictly and never rewrites any. All
// returned errors are *SpecError values wrapping ErrInvalidSpec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return s.bad("name", "must be non-empty")
	}
	if strings.ContainsAny(s.Name, ", \t\n\x00") {
		return s.bad("name", "%q contains a comma, whitespace or NUL (names must be flag- and key-safe)", s.Name)
	}
	if len(s.CoreGroups) == 0 {
		return s.bad("core_groups", "need at least one group")
	}
	for i, g := range s.CoreGroups {
		if g.Count <= 0 {
			return s.bad(fmt.Sprintf("core_groups[%d].count", i), "must be positive, got %d", g.Count)
		}
		if !(g.Speed > 0) || g.Speed > 64 {
			return s.bad(fmt.Sprintf("core_groups[%d].speed", i), "must be in (0, 64], got %v", g.Speed)
		}
	}
	if s.Quantum <= 0 {
		return s.bad("quantum", "must be positive, got %d", s.Quantum)
	}
	if s.ContextSwitch < 0 {
		return s.bad("context_switch", "must be >= 0, got %d (0 already means free)", s.ContextSwitch)
	}
	if s.LLC.SizeBytes <= 0 {
		return s.bad("llc.size_bytes", "must be positive, got %d", s.LLC.SizeBytes)
	}
	if s.LLC.Ways <= 0 {
		return s.bad("llc.ways", "must be positive, got %d", s.LLC.Ways)
	}
	if lb := s.LLC.LineBytes; lb <= 0 || lb&(lb-1) != 0 {
		return s.bad("llc.line_bytes", "must be a positive power of two, got %d", lb)
	}
	if !(s.DRAM.UnloadedLatency > 0) {
		return s.bad("dram.unloaded_latency", "must be positive, got %v", s.DRAM.UnloadedLatency)
	}
	if !(s.DRAM.BandwidthBytesPerCycle > 0) {
		return s.bad("dram.bandwidth_bytes_per_cycle", "must be positive, got %v", s.DRAM.BandwidthBytesPerCycle)
	}
	if !(s.DRAM.Knee > 0) || s.DRAM.Knee > 1 {
		return s.bad("dram.knee", "must be in (0, 1], got %v", s.DRAM.Knee)
	}
	if d := s.DRAM.SecondDomain; d != nil {
		if !(d.BandwidthBytesPerCycle > 0) {
			return s.bad("dram.second_domain.bandwidth_bytes_per_cycle", "must be positive, got %v", d.BandwidthBytesPerCycle)
		}
		if d.Cores <= 0 {
			return s.bad("dram.second_domain.cores", "must be positive, got %d", d.Cores)
		}
		if d.Cores >= s.Cores() {
			return s.bad("dram.second_domain.cores", "%d cores leaves none on the primary domain (machine has %d)", d.Cores, s.Cores())
		}
	}
	return nil
}
