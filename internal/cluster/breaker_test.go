package cluster

import (
	"testing"
	"time"

	"prophet/internal/obs"
)

// fakeClock is a hand-advanced clock for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time { return f.t }

func TestBreakerLifecycle(t *testing.T) {
	reg := &obs.Registry{}
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now, reg)

	// Closed passes traffic; failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.onFailure()
	}
	if s := b.currentState(); s != breakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", s)
	}
	// Third consecutive failure trips it.
	b.allow()
	b.onFailure()
	if s := b.currentState(); s != breakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", s)
	}
	if b.allow() {
		t.Fatal("open breaker allowed traffic before the cooldown")
	}

	// After the cooldown the next caller is the half-open trial; a
	// second concurrent caller is refused.
	clk.t = clk.t.Add(time.Second + time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker refused the half-open trial after the cooldown")
	}
	if s := b.currentState(); s != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", s)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	// Trial fails: straight back to open, cooldown restarted.
	b.onFailure()
	if s := b.currentState(); s != breakerOpen {
		t.Fatalf("state after failed trial = %v, want open", s)
	}
	if b.allow() {
		t.Fatal("re-opened breaker allowed traffic immediately")
	}

	// Second trial succeeds: closed, traffic flows again.
	clk.t = clk.t.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("breaker refused the second trial")
	}
	b.onSuccess()
	if s := b.currentState(); s != breakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", s)
	}
	if !b.allow() {
		t.Fatal("closed breaker refused traffic")
	}
	b.onSuccess()

	// A success between failures resets the consecutive count.
	b.onFailure()
	b.onFailure()
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if s := b.currentState(); s != breakerClosed {
		t.Fatalf("state = %v, want closed (success reset the failure run)", s)
	}

	snap := reg.Snapshot()
	if snap.Counters[obs.MClusterBreakerOpened] != 2 {
		t.Errorf("%s = %d, want 2", obs.MClusterBreakerOpened, snap.Counters[obs.MClusterBreakerOpened])
	}
	if snap.Counters[obs.MClusterBreakerHalfOpen] != 2 {
		t.Errorf("%s = %d, want 2", obs.MClusterBreakerHalfOpen, snap.Counters[obs.MClusterBreakerHalfOpen])
	}
	if snap.Counters[obs.MClusterBreakerClosed] != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterBreakerClosed, snap.Counters[obs.MClusterBreakerClosed])
	}
}

// TestBreakerProbeRecovery: a probe success while the circuit is open
// closes it directly (the self-healing path: the prober notices the
// replica is back before any live request is risked).
func TestBreakerProbeRecovery(t *testing.T) {
	clk := &fakeClock{t: time.Unix(100, 0)}
	b := newBreaker(1, time.Hour, clk.now, &obs.Registry{})
	b.onFailure()
	if b.currentState() != breakerOpen || b.allow() {
		t.Fatal("breaker should be open and refusing")
	}
	b.onSuccess() // probe saw /readyz 200
	if b.currentState() != breakerClosed || !b.allow() {
		t.Fatal("probe success should close the breaker immediately")
	}
}
