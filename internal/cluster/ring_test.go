package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnersDistinctAndDeterministic(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(peers, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("cell-%d", i)
		owners := r.owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("owners(%q) = %v, want 2 distinct peers", key, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("owners(%q) repeated a peer: %v", key, owners)
		}
		again := r.owners(key, 2)
		if owners[0] != again[0] || owners[1] != again[1] {
			t.Fatalf("owners(%q) not deterministic: %v vs %v", key, owners, again)
		}
	}
	// n beyond the peer count clamps.
	if got := r.owners("k", 99); len(got) != 3 {
		t.Errorf("owners clamp: got %d peers, want 3", len(got))
	}
}

// TestRingSpreadsAndBalances checks that a ring with enough virtual
// nodes gives every peer a meaningful share of primaries — the property
// that makes a scattered sweep actually use the fleet.
func TestRingSpreadsAndBalances(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(peers, 64)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.owners(fmt.Sprintf("cell-%d", i), 1)[0]]++
	}
	for _, p := range peers {
		if counts[p] < n/10 {
			t.Errorf("peer %s owns only %d/%d primaries — ring badly unbalanced", p, counts[p], n)
		}
	}
}

// TestRingMinimalDisruption: removing one peer must only remap keys that
// peer owned; every other key keeps its primary. This is the property
// that keeps the surviving replicas' caches hot through a crash.
func TestRingMinimalDisruption(t *testing.T) {
	full := newRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)
	without := newRing([]string{"http://a:1", "http://c:1"}, 64)
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("cell-%d", i)
		before := full.owners(key, 1)[0]
		after := without.owners(key, 1)[0]
		if before == "http://b:1" {
			moved++
			continue // had to move
		}
		if before != after {
			t.Fatalf("key %q moved from %s to %s although its owner survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Error("no key was owned by the removed peer — ring test is vacuous")
	}
}

func TestRingOrderIndependent(t *testing.T) {
	a := newRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 32)
	b := newRing([]string{"http://c:1", "http://a:1", "http://b:1", "http://a:1"}, 32)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("cell-%d", i)
		if a.owners(key, 2)[0] != b.owners(key, 2)[0] {
			t.Fatalf("rings built from permuted peer lists disagree on %q", key)
		}
	}
}

func TestNormalizeAddr(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8057":         "http://127.0.0.1:8057",
		"http://host:1/":         "http://host:1",
		" https://host:2/base/ ": "https://host:2/base",
		"":                       "",
	}
	for in, want := range cases {
		if got := NormalizeAddr(in); got != want {
			t.Errorf("NormalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}
