// Package cluster turns one prophetd into a fleet. A Client owns the
// replica topology: a consistent-hash ring routes each prediction cell
// to the replica whose LRU and singleflight group are hot for it, and a
// resilience stack — per-peer circuit breakers fed by a background
// health prober, retries with exponential backoff and jitter, request
// hedging to the next ring owner when the primary exceeds its latency
// budget, and graceful degradation to local computation or stale-cache
// serving — keeps cells answering while replicas crash, drain, or limp.
//
// The cell identity handed to Route is the same key the serving layer
// caches on (workload, compressed-tree hash, canonical request), so a
// cell lands on the same replica for every coordinator in the fleet and
// repeats hit that replica's warm cache. Because the sweep merge
// contract (PR 1) orders outcomes by cell index, a coordinator can
// scatter a grid across the ring, lose replicas mid-sweep, re-route the
// orphaned cells, and still merge byte-identical output.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// ring is an immutable consistent-hash ring: each peer contributes
// vnodes points, and a key is owned by the first peers clockwise from
// its hash. Immutability keeps lookups lock-free; membership in this
// design is static per process (the breakers, not the ring, track which
// peers are currently usable).
type ring struct {
	points []ringPoint // sorted by hash
	peers  []string
}

type ringPoint struct {
	hash uint64
	peer string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newRing builds a ring over peers (deduplicated, order-independent)
// with vnodes virtual points per peer.
func newRing(peers []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	seen := map[string]bool{}
	r := &ring{}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on peer name so the walk order is deterministic even
		// in the (vanishingly unlikely) event of a hash collision.
		return r.points[i].peer < r.points[j].peer
	})
	sort.Strings(r.peers)
	return r
}

// owners returns up to n distinct peers in ring order starting at the
// key's position — the primary first, then the failover/hedge targets.
func (r *ring) owners(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// NormalizeAddr canonicalizes a peer address for ring identity: scheme
// defaulted to http, trailing slashes stripped. Two spellings of the
// same replica must normalize identically or the fleet's rings disagree.
func NormalizeAddr(addr string) string {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}
