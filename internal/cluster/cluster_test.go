package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prophet"
	"prophet/internal/obs"
)

// stubPeer is a fake replica: it answers /v1/predict with a canned
// speedup derived from the request (so tests can tell who answered) and
// /readyz with 200, with optional per-request behaviour overrides.
type stubPeer struct {
	ts       *httptest.Server
	calls    atomic.Int64
	behavior atomic.Pointer[func(w http.ResponseWriter, r *http.Request) bool] // true = handled
	speedup  float64
}

func newStubPeer(t *testing.T, speedup float64) *stubPeer {
	t.Helper()
	p := &stubPeer{speedup: speedup}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		p.calls.Add(1)
		if r.Header.Get(ForwardedHeader) == "" {
			t.Errorf("forwarded cell missing %s header", ForwardedHeader)
		}
		if b := p.behavior.Load(); b != nil && (*b)(w, r) {
			return
		}
		var body predictBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		est := prophet.Estimate{Request: body.Request, Speedup: p.speedup, Time: 1000}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(est)
	})
	p.ts = httptest.NewServer(mux)
	t.Cleanup(p.ts.Close)
	return p
}

func (p *stubPeer) url() string { return p.ts.URL }

// newTestClient builds a client with fast knobs, no prober (tests drive
// breakers synchronously), and an optional local fallback.
func newTestClient(t *testing.T, cfg Config) (*Client, *obs.Registry) {
	t.Helper()
	reg := &obs.Registry{}
	cfg.Metrics = reg
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = -1 // off unless the test asks for it
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 2 * time.Millisecond
	}
	c := New(cfg)
	t.Cleanup(c.Close)
	return c, reg
}

// keyFor finds a cell key whose primary owner is the wanted peer, so
// routing in tests is deterministic by construction.
func keyFor(t *testing.T, c *Client, primary string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("workload\x00hash\x00cell-%d", i)
		if c.ring.owners(key, 1)[0] == NormalizeAddr(primary) {
			return key
		}
	}
	t.Fatal("no key found for wanted primary")
	return ""
}

func TestClientLocalShardServedLocally(t *testing.T) {
	peer := newStubPeer(t, 2)
	self := "http://self.invalid:1"
	var localCalls atomic.Int64
	c, reg := newTestClient(t, Config{
		Self:  self,
		Peers: []string{self, peer.url()},
		Local: func(_ context.Context, workload string, req prophet.Request) (prophet.Estimate, error) {
			localCalls.Add(1)
			return prophet.Estimate{Request: req, Speedup: 7}, nil
		},
	})
	key := keyFor(t, c, self)
	est, err := c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 4})
	if err != nil || est.Speedup != 7 {
		t.Fatalf("local-shard cell: est=%+v err=%v", est, err)
	}
	if localCalls.Load() != 1 || peer.calls.Load() != 0 {
		t.Errorf("local=%d peer=%d, want 1/0", localCalls.Load(), peer.calls.Load())
	}
	if n := reg.Snapshot().Counters[obs.MClusterCellsLocal]; n != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterCellsLocal, n)
	}
}

func TestClientForwardsRemoteShard(t *testing.T) {
	peer := newStubPeer(t, 3)
	self := "http://self.invalid:1"
	c, reg := newTestClient(t, Config{
		Self:  self,
		Peers: []string{self, peer.url()},
		Local: func(_ context.Context, _ string, req prophet.Request) (prophet.Estimate, error) {
			t.Error("remote-shard cell computed locally")
			return prophet.Estimate{Request: req}, nil
		},
	})
	key := keyFor(t, c, peer.url())
	est, err := c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2})
	if err != nil || est.Speedup != 3 {
		t.Fatalf("remote cell: est=%+v err=%v", est, err)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MClusterCellsRemote] != 1 || snap.Counters[obs.MClusterForwards] != 1 {
		t.Errorf("remote=%d forwards=%d, want 1/1", snap.Counters[obs.MClusterCellsRemote], snap.Counters[obs.MClusterForwards])
	}
	if snap.Histograms[obs.MClusterForwardLatency].Count != 1 {
		t.Errorf("forward latency histogram count = %d, want 1", snap.Histograms[obs.MClusterForwardLatency].Count)
	}
}

// TestClientRetryThenFailover: the primary answers 500 twice (initial +
// one retry), so the call fails over to the secondary owner.
func TestClientRetryThenFailover(t *testing.T) {
	primary := newStubPeer(t, 1)
	secondary := newStubPeer(t, 5)
	fail := func(w http.ResponseWriter, _ *http.Request) bool {
		http.Error(w, "boom", http.StatusInternalServerError)
		return true
	}
	primary.behavior.Store(&fail)

	c, reg := newTestClient(t, Config{
		Self:    "http://self.invalid:1",
		Peers:   []string{"http://self.invalid:1", primary.url(), secondary.url()},
		Retries: 1,
	})
	// A key whose first two owners are primary, then secondary (self is
	// filtered out of candidates anyway, so any primary-owned key works).
	key := keyFor(t, c, primary.url())
	// Make sure the secondary is among the owners for this key.
	owners := c.ring.owners(key, c.cfg.OwnersPerCell)
	hasSecondary := false
	for _, o := range owners {
		if o == NormalizeAddr(secondary.url()) {
			hasSecondary = true
		}
	}
	if !hasSecondary {
		// With 3 peers and OwnersPerCell=2 the second owner might be
		// self; widen to 3 owners via a fresh client for determinism.
		c, reg = newTestClient(t, Config{
			Self:          "http://self.invalid:1",
			Peers:         []string{"http://self.invalid:1", primary.url(), secondary.url()},
			Retries:       1,
			OwnersPerCell: 3,
		})
		key = keyFor(t, c, primary.url())
	}

	est, err := c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2})
	if err != nil || est.Speedup != 5 {
		t.Fatalf("failover: est=%+v err=%v", est, err)
	}
	if primary.calls.Load() != 2 {
		t.Errorf("primary saw %d calls, want 2 (initial + 1 retry)", primary.calls.Load())
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MClusterRetries] != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterRetries, snap.Counters[obs.MClusterRetries])
	}
	if snap.Counters[obs.MClusterFailovers] != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterFailovers, snap.Counters[obs.MClusterFailovers])
	}
	if snap.Counters[obs.MClusterForwardErrors] != 2 {
		t.Errorf("%s = %d, want 2", obs.MClusterForwardErrors, snap.Counters[obs.MClusterForwardErrors])
	}
}

// TestClientHedgesSlowPrimary: a primary that stalls past HedgeAfter
// loses the race to the hedge on the next owner.
func TestClientHedgesSlowPrimary(t *testing.T) {
	slow := newStubPeer(t, 1)
	fast := newStubPeer(t, 9)
	stall := func(w http.ResponseWriter, r *http.Request) bool {
		select {
		case <-r.Context().Done(): // canceled by the losing side
		case <-time.After(2 * time.Second):
		}
		http.Error(w, "too late", http.StatusServiceUnavailable)
		return true
	}
	slow.behavior.Store(&stall)

	c, reg := newTestClient(t, Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{"http://self.invalid:1", slow.url(), fast.url()},
		OwnersPerCell: 3,
		HedgeAfter:    5 * time.Millisecond,
	})
	key := keyFor(t, c, slow.url())
	start := time.Now()
	est, err := c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2})
	if err != nil || est.Speedup != 9 {
		t.Fatalf("hedged cell: est=%+v err=%v", est, err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("hedged call took %v — waited out the slow primary instead of hedging", d)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MClusterHedgesFired] != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterHedgesFired, snap.Counters[obs.MClusterHedgesFired])
	}
	if snap.Counters[obs.MClusterHedgesWon] != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterHedgesWon, snap.Counters[obs.MClusterHedgesWon])
	}
}

// TestClientDegradesToLocalThenStale: with every remote owner down the
// cell is computed locally; when local computation fails too, the last
// known-good result is served.
func TestClientDegradesToLocalThenStale(t *testing.T) {
	peer := newStubPeer(t, 4)
	self := "http://self.invalid:1"
	localErr := errors.New("pool on fire")
	var localFail atomic.Bool
	c, reg := newTestClient(t, Config{
		Self:    self,
		Peers:   []string{self, peer.url()},
		Retries: 0,
		Local: func(_ context.Context, _ string, req prophet.Request) (prophet.Estimate, error) {
			if localFail.Load() {
				return prophet.Estimate{Request: req, Err: localErr}, localErr
			}
			return prophet.Estimate{Request: req, Speedup: 2}, nil
		},
	})
	key := keyFor(t, c, peer.url())

	// Healthy: remote answers; the result is recorded as last-known-good.
	est, err := c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2})
	if err != nil || est.Speedup != 4 {
		t.Fatalf("healthy remote: est=%+v err=%v", est, err)
	}

	// Kill the peer: degradation to local computation.
	peer.ts.Close()
	est, err = c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2})
	if err != nil || est.Speedup != 2 {
		t.Fatalf("degraded local: est=%+v err=%v", est, err)
	}
	if n := reg.Snapshot().Counters[obs.MClusterDegradedLocal]; n != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterDegradedLocal, n)
	}

	// Local fails too: the stale last-known-good result is served.
	localFail.Store(true)
	est, err = c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2})
	if err != nil || est.Speedup != 4 {
		t.Fatalf("stale serve: est=%+v err=%v", est, err)
	}
	if n := reg.Snapshot().Counters[obs.MClusterStaleServes]; n != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterStaleServes, n)
	}

	// A cell with no stale entry surfaces the local error.
	otherKey := key + "-never-seen"
	if c.ring.owners(otherKey, 1)[0] == NormalizeAddr(self) {
		otherKey += "-x" // make sure it is remote-owned; both spellings miss the stale cache
	}
	_, err = c.Estimate(context.Background(), otherKey, "W", prophet.Request{Threads: 2})
	if err == nil {
		t.Fatal("cell with no stale fallback should fail")
	}
}

// TestClientBreakerStopsHammeringDeadPeer: after the failure threshold
// the dead peer's circuit opens and later cells skip it without a
// network attempt.
func TestClientBreakerStopsHammeringDeadPeer(t *testing.T) {
	peer := newStubPeer(t, 4)
	self := "http://self.invalid:1"
	var localCalls atomic.Int64
	c, reg := newTestClient(t, Config{
		Self:            self,
		Peers:           []string{self, peer.url()},
		Retries:         0,
		BreakerFailures: 2,
		BreakerCooldown: time.Hour,
		Local: func(_ context.Context, _ string, req prophet.Request) (prophet.Estimate, error) {
			localCalls.Add(1)
			return prophet.Estimate{Request: req, Speedup: 2}, nil
		},
	})
	key := keyFor(t, c, peer.url())
	peer.ts.Close()

	for i := 0; i < 5; i++ {
		est, err := c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2})
		if err != nil || est.Speedup != 2 {
			t.Fatalf("cell %d: est=%+v err=%v (degradation must hide the dead peer)", i, est, err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.MClusterForwards]; got != 2 {
		t.Errorf("%s = %d, want 2 (breaker must cut attempts at the threshold)", obs.MClusterForwards, got)
	}
	if got := snap.Counters[obs.MClusterBreakerOpened]; got != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterBreakerOpened, got)
	}
	if localCalls.Load() != 5 {
		t.Errorf("local fallback served %d cells, want 5", localCalls.Load())
	}
}

// TestClientProberHealsBreaker: the background prober closes an open
// circuit once the peer's /readyz answers again.
func TestClientProberHealsBreaker(t *testing.T) {
	peer := newStubPeer(t, 4)
	var down atomic.Bool
	gate := func(w http.ResponseWriter, _ *http.Request) bool {
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return true
		}
		return false
	}
	peer.behavior.Store(&gate)
	// /readyz must honour the same gate: wrap the test server's handler.
	inner := peer.ts.Config.Handler
	peer.ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() && strings.HasPrefix(r.URL.Path, "/readyz") {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})

	self := "http://self.invalid:1"
	c, reg := newTestClient(t, Config{
		Self:            self,
		Peers:           []string{self, peer.url()},
		Retries:         0,
		BreakerFailures: 1,
		BreakerCooldown: time.Hour, // only the prober can heal it
		ProbeInterval:   5 * time.Millisecond,
		Local: func(_ context.Context, _ string, req prophet.Request) (prophet.Estimate, error) {
			return prophet.Estimate{Request: req, Speedup: 2}, nil
		},
	})
	key := keyFor(t, c, peer.url())

	down.Store(true)
	if est, err := c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2}); err != nil || est.Speedup != 2 {
		t.Fatalf("down peer: est=%+v err=%v", est, err)
	}
	br := c.breakers[NormalizeAddr(peer.url())]
	if br.currentState() != breakerOpen {
		t.Fatal("breaker should be open after the 503")
	}

	down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for br.currentState() != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatal("prober never closed the breaker after recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if est, err := c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2}); err != nil || est.Speedup != 4 {
		t.Fatalf("recovered peer: est=%+v err=%v", est, err)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MClusterProbes] == 0 {
		t.Errorf("%s = 0, want > 0", obs.MClusterProbes)
	}

	// Every cluster metric this exercise emitted is a declared name.
	counters, hists := snap.Names()
	for _, name := range append(counters, hists...) {
		if !obs.Declared(name) {
			t.Errorf("emitted metric %q is not declared in obs/names.go", name)
		}
	}
}
