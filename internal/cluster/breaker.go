package cluster

import (
	"sync"
	"time"

	"prophet/internal/obs"
)

// breakerState is the classic three-state circuit: closed passes
// traffic, open refuses it, half-open admits one trial request whose
// outcome decides between the two.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is the per-peer circuit breaker. Request attempts and health
// probes both feed it: failures accumulate while closed and trip it
// open at the threshold; after the cooldown the next caller is admitted
// as the half-open trial, and its outcome either closes the circuit or
// re-opens it for another cooldown.
type breaker struct {
	mu          sync.Mutex
	state       breakerState
	consecFails int
	openedAt    time.Time
	trialBusy   bool // half-open: one trial in flight at a time

	threshold int
	cooldown  time.Duration
	now       func() time.Time

	opened, halfOpened, closed *obs.Counter
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time, reg *obs.Registry) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{
		threshold:  threshold,
		cooldown:   cooldown,
		now:        now,
		opened:     reg.Counter(obs.MClusterBreakerOpened),
		halfOpened: reg.Counter(obs.MClusterBreakerHalfOpen),
		closed:     reg.Counter(obs.MClusterBreakerClosed),
	}
}

// allow reports whether a request may be sent to the peer now. In the
// half-open state only one trial is admitted; callers refused here
// should fail over to the next ring owner.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.trialBusy = true
		b.halfOpened.Inc()
		return true
	default: // half-open
		if b.trialBusy {
			return false
		}
		b.trialBusy = true
		return true
	}
}

// onSuccess records a successful attempt: a half-open trial (or any
// success while open, e.g. a probe racing the cooldown) closes the
// circuit; successes while closed reset the failure run.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.closed.Inc()
	}
	b.consecFails = 0
	b.trialBusy = false
}

// onFailure records a failed attempt: a half-open trial re-opens the
// circuit immediately, and a run of threshold failures trips a closed
// one.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trialBusy = false
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.opened.Inc()
	case breakerClosed:
		b.consecFails++
		if b.consecFails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.opened.Inc()
		}
	case breakerOpen:
		// Already open: push the cooldown out so a flapping peer does
		// not get a trial on every failure.
		b.openedAt = b.now()
	}
}

// currentState returns the state for tests and status reporting.
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
