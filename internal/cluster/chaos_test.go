package cluster

import (
	"context"
	"net/url"
	"testing"
	"time"

	"prophet"
	"prophet/internal/faults"
	"prophet/internal/obs"
)

// TestClientSurvivesChaoticPrimary drives the cluster client through the
// faults.ChaosProxy: the primary owner sits behind a proxy that drops
// every connection, so each forward attempt dies at the transport layer
// and the client must retry, trip the move to the secondary owner, and
// still return the right answer with zero caller-visible errors.
func TestClientSurvivesChaoticPrimary(t *testing.T) {
	primary := newStubPeer(t, 1)
	secondary := newStubPeer(t, 6)

	host := func(raw string) string {
		u, err := url.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		return u.Host
	}
	proxy, err := faults.NewChaosProxy(host(primary.url()), faults.NetConfig{Seed: 42, DropEveryN: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	chaoticPrimary := "http://" + proxy.Addr()

	c, reg := newTestClient(t, Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{"http://self.invalid:1", chaoticPrimary, secondary.url()},
		OwnersPerCell: 3,
		Retries:       1,
		RetryBase:     time.Millisecond,
		RetryMax:      2 * time.Millisecond,
	})
	key := keyFor(t, c, chaoticPrimary)

	est, err := c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2})
	if err != nil || est.Speedup != 6 {
		t.Fatalf("cell behind chaotic primary: est=%+v err=%v", est, err)
	}
	if s := proxy.Stats(); s.Conns == 0 || s.Dropped != s.Conns {
		t.Errorf("proxy stats = %+v, want every connection dropped", s)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MClusterRetries] == 0 {
		t.Errorf("%s = 0, want retries against the dropping proxy", obs.MClusterRetries)
	}
	if snap.Counters[obs.MClusterFailovers] != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterFailovers, snap.Counters[obs.MClusterFailovers])
	}
	if primary.calls.Load() != 0 {
		t.Errorf("primary behind the proxy saw %d calls, want 0 (all dropped)", primary.calls.Load())
	}
}

// TestClientTruncatedBodyIsTransient: a response cut mid-body decodes
// badly and must be treated as a transient transport failure (retry /
// failover), never surfaced as a success or a peer-refusal.
func TestClientTruncatedBodyIsTransient(t *testing.T) {
	primary := newStubPeer(t, 1)
	secondary := newStubPeer(t, 8)

	u, err := url.Parse(primary.url())
	if err != nil {
		t.Fatal(err)
	}
	// Let the HTTP headers (plus a sliver of body) through, then cut: the
	// client sees status 200 with a JSON document that ends mid-token.
	proxy, err := faults.NewChaosProxy(u.Host, faults.NetConfig{Seed: 9, TruncateEveryN: 1, FaultAfterBytes: 140})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	chaotic := "http://" + proxy.Addr()

	c, reg := newTestClient(t, Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{"http://self.invalid:1", chaotic, secondary.url()},
		OwnersPerCell: 3,
		Retries:       0,
	})
	key := keyFor(t, c, chaotic)

	est, err := c.Estimate(context.Background(), key, "W", prophet.Request{Threads: 2})
	if err != nil || est.Speedup != 8 {
		t.Fatalf("cell behind truncating proxy: est=%+v err=%v", est, err)
	}
	if s := proxy.Stats(); s.Truncated == 0 {
		t.Fatalf("proxy stats = %+v, want at least one truncation", s)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MClusterForwardErrors] == 0 {
		t.Errorf("%s = 0, want the truncated body counted as a forward error", obs.MClusterForwardErrors)
	}
	if snap.Counters[obs.MClusterFailovers] != 1 {
		t.Errorf("%s = %d, want 1", obs.MClusterFailovers, snap.Counters[obs.MClusterFailovers])
	}
}
