package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"prophet"
	"prophet/internal/obs"
)

// ForwardedHeader marks a request as an already-routed cell. A replica
// receiving it serves the cell from its local stack and never re-routes
// — forwarding terminates after one hop, so a stale or disagreeing ring
// can cost an extra hop's latency but never a loop.
const ForwardedHeader = "X-Prophet-Cluster-Cell"

// LocalFunc computes one cell on this replica's own estimate stack; the
// serving layer provides it so the client can serve local-shard cells
// and degrade to local computation when a shard's peers are all down.
type LocalFunc func(ctx context.Context, workload string, req prophet.Request) (prophet.Estimate, error)

// Config tunes a cluster client. Peers and Local are required; every
// other zero value selects the documented default.
type Config struct {
	// Self is this replica's own advertised address; cells the ring
	// assigns to Self are served locally. Empty means "pure coordinator":
	// every cell is remote.
	Self string
	// Peers are the advertised addresses of every replica in the fleet
	// (including Self). Addresses are normalized with NormalizeAddr; the
	// fleet must agree on the list or rings diverge.
	Peers []string

	// OwnersPerCell is how many ring successors may serve a cell: the
	// primary plus failover/hedge targets (default 2, clamped to the
	// peer count).
	OwnersPerCell int
	// VirtualNodes is the ring points per peer (default 64).
	VirtualNodes int

	// HedgeAfter is the latency budget before a hedge fires to the next
	// ring owner (default 30ms; negative disables hedging).
	HedgeAfter time.Duration
	// Retries is how many times a transient failure against one peer is
	// retried before failing over (default 1; negative disables).
	Retries int
	// RetryBase/RetryMax bound the exponential backoff between retries
	// (defaults 10ms/250ms); jitter draws each wait from [½d, d].
	RetryBase time.Duration
	RetryMax  time.Duration

	// BreakerFailures is the consecutive-failure threshold that opens a
	// peer's circuit (default 3). BreakerCooldown is how long an open
	// circuit waits before admitting a half-open trial (default 2s).
	BreakerFailures int
	BreakerCooldown time.Duration

	// ProbeInterval is the background health-probe period (default 1s;
	// negative disables probing). Probes hit GET /readyz and feed the
	// breakers, so a recovered replica is rediscovered within one
	// interval without risking live traffic.
	ProbeInterval time.Duration

	// StaleCap bounds the last-known-good cache used when a shard's
	// peers are all down and local computation fails too (default 4096;
	// negative disables stale serving).
	StaleCap int

	// Seed feeds the backoff jitter stream (default 1, so tests are
	// reproducible by default).
	Seed int64

	// Local serves cells owned by Self and is the degradation target
	// when remote owners are exhausted. nil turns both into errors.
	Local LocalFunc

	// Transport overrides the HTTP transport (tests, chaos proxies).
	Transport http.RoundTripper
	// Metrics receives the cluster.* series (nil = metrics off).
	Metrics *obs.Registry

	// now overrides the clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	norm := make([]string, 0, len(c.Peers))
	for _, p := range c.Peers {
		if n := NormalizeAddr(p); n != "" {
			norm = append(norm, n)
		}
	}
	c.Peers = norm
	c.Self = NormalizeAddr(c.Self)
	if c.OwnersPerCell == 0 {
		c.OwnersPerCell = 2
	}
	if c.VirtualNodes == 0 {
		c.VirtualNodes = 64
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 30 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.StaleCap == 0 {
		c.StaleCap = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Client routes cells across the fleet. Safe for concurrent use.
type Client struct {
	cfg      Config
	ring     *ring
	http     *http.Client
	breakers map[string]*breaker // keyed by normalized peer, immutable map
	stale    *staleCache

	jitterMu sync.Mutex
	jitter   *rand.Rand

	stopProbe chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once

	cellsLocal, cellsRemote, degradedLocal, staleServes *obs.Counter
	forwards, forwardErrors, retries, failovers         *obs.Counter
	hedgesFired, hedgesWon                              *obs.Counter
	probes, probeFailures                               *obs.Counter
	forwardLat                                          *obs.Histogram
}

// New builds a client over cfg.Peers and starts the health prober.
// Callers must Close it to stop the prober.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	c := &Client{
		cfg:           cfg,
		ring:          newRing(cfg.Peers, cfg.VirtualNodes),
		breakers:      make(map[string]*breaker),
		stale:         newStaleCache(cfg.StaleCap),
		jitter:        rand.New(rand.NewSource(cfg.Seed)),
		stopProbe:     make(chan struct{}),
		probeDone:     make(chan struct{}),
		cellsLocal:    reg.Counter(obs.MClusterCellsLocal),
		cellsRemote:   reg.Counter(obs.MClusterCellsRemote),
		degradedLocal: reg.Counter(obs.MClusterDegradedLocal),
		staleServes:   reg.Counter(obs.MClusterStaleServes),
		forwards:      reg.Counter(obs.MClusterForwards),
		forwardErrors: reg.Counter(obs.MClusterForwardErrors),
		retries:       reg.Counter(obs.MClusterRetries),
		failovers:     reg.Counter(obs.MClusterFailovers),
		hedgesFired:   reg.Counter(obs.MClusterHedgesFired),
		hedgesWon:     reg.Counter(obs.MClusterHedgesWon),
		probes:        reg.Counter(obs.MClusterProbes),
		probeFailures: reg.Counter(obs.MClusterProbeFailures),
		forwardLat:    reg.Histogram(obs.MClusterForwardLatency),
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{MaxIdleConnsPerHost: 64, IdleConnTimeout: 30 * time.Second}
	}
	c.http = &http.Client{Transport: transport}
	for _, p := range c.ring.peers {
		c.breakers[p] = newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown, cfg.now, reg)
	}
	if cfg.ProbeInterval > 0 {
		go c.probeLoop()
	} else {
		close(c.probeDone)
	}
	return c
}

// Close stops the health prober. In-flight Estimate calls finish.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.stopProbe)
		<-c.probeDone
	})
}

// Peers returns the normalized fleet membership (sorted).
func (c *Client) Peers() []string { return append([]string(nil), c.ring.peers...) }

// Owners returns the replicas the ring assigns to cellKey, primary
// first — the routing decision Estimate makes, exposed for tests and
// operational tooling (answering "where does this cell live?").
func (c *Client) Owners(cellKey string) []string {
	return c.ring.owners(cellKey, c.cfg.OwnersPerCell)
}

// errPeersExhausted reports that every eligible remote owner of a cell
// refused or failed it.
var errPeersExhausted = errors.New("cluster: all remote owners failed")

// errBreakerOpen reports a peer skipped because its circuit is open.
var errBreakerOpen = errors.New("cluster: peer circuit open")

// Estimate serves one cell through the cluster: local stack if the ring
// assigns the cell to Self, otherwise forwarded to the owning peers with
// retries, hedging and failover, degrading to local computation and
// then to the last known-good result when every owner is down. cellKey
// must be the serving layer's cache key for the cell so routing and
// caching agree.
func (c *Client) Estimate(ctx context.Context, cellKey, workload string, req prophet.Request) (prophet.Estimate, error) {
	owners := c.ring.owners(cellKey, c.cfg.OwnersPerCell)
	if len(owners) == 0 || owners[0] == c.cfg.Self {
		c.cellsLocal.Inc()
		return c.local(ctx, workload, req)
	}
	candidates := make([]string, 0, len(owners))
	for _, p := range owners {
		if p != c.cfg.Self {
			candidates = append(candidates, p)
		}
	}
	c.cellsRemote.Inc()
	est, err := c.forwardHedged(ctx, candidates, workload, req)
	if err == nil {
		if est.Err == nil {
			c.stale.put(cellKey, est)
		}
		return est, nil
	}
	if ctx.Err() != nil {
		return prophet.Estimate{Request: req, Err: ctx.Err()}, ctx.Err()
	}
	// Every remote owner is down or refusing: degrade to computing the
	// cell here, and to the last known-good result if that fails too.
	c.degradedLocal.Inc()
	est, lerr := c.local(ctx, workload, req)
	if lerr == nil {
		return est, nil
	}
	if ctx.Err() == nil {
		if stale, ok := c.stale.get(cellKey); ok {
			c.staleServes.Inc()
			return stale, nil
		}
	}
	return est, lerr
}

func (c *Client) local(ctx context.Context, workload string, req prophet.Request) (prophet.Estimate, error) {
	if c.cfg.Local == nil {
		err := fmt.Errorf("cluster: no local estimator for workload %s", workload)
		return prophet.Estimate{Request: req, Err: err}, err
	}
	return c.cfg.Local(ctx, workload, req)
}

// forwardResult is one racer's outcome in the hedged forward.
type forwardResult struct {
	est       prophet.Estimate
	hedge     bool
	exhausted bool
}

// forwardHedged races up to two workers over the candidate list: the
// primary starts immediately; if it has not answered within HedgeAfter,
// a hedge starts on the next untried candidate. Workers claim
// candidates from a shared cursor (never duplicating one), retry
// transient failures with backoff, and fail over down the list. First
// successful response wins and cancels the loser.
func (c *Client) forwardHedged(ctx context.Context, candidates []string, workload string, req prophet.Request) (prophet.Estimate, error) {
	if len(candidates) == 0 {
		return prophet.Estimate{}, errPeersExhausted
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var cursor atomic.Int64
	results := make(chan forwardResult, 2)
	worker := func(hedge bool) {
		claimed := 0
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(candidates) {
				results <- forwardResult{exhausted: true, hedge: hedge}
				return
			}
			if claimed > 0 {
				// This worker moved on after a failed peer.
				c.failovers.Inc()
			}
			claimed++
			est, err := c.callPeerWithRetry(cctx, candidates[i], workload, req)
			if err == nil {
				results <- forwardResult{est: est, hedge: hedge}
				return
			}
			if cctx.Err() != nil {
				results <- forwardResult{exhausted: true, hedge: hedge}
				return
			}
		}
	}
	go worker(false)

	launched := 1
	finished := 0
	hedgeTimer := time.NewTimer(c.hedgeDelay())
	defer hedgeTimer.Stop()
	for {
		select {
		case r := <-results:
			if !r.exhausted {
				if r.hedge {
					c.hedgesWon.Inc()
				}
				cancel() // the loser stops at its next context check
				return r.est, nil
			}
			finished++
			if finished == launched {
				return prophet.Estimate{}, errPeersExhausted
			}
		case <-hedgeTimer.C:
			if launched == 1 && int(cursor.Load()) < len(candidates) {
				c.hedgesFired.Inc()
				launched++
				go worker(true)
			}
		case <-cctx.Done():
			return prophet.Estimate{}, cctx.Err()
		}
	}
}

// hedgeDelay returns the hedge budget; a negative config means "never"
// (a timer far beyond any request deadline).
func (c *Client) hedgeDelay() time.Duration {
	if c.cfg.HedgeAfter < 0 {
		return 24 * time.Hour
	}
	return c.cfg.HedgeAfter
}

// attempt classification: how one peer call ended.
type callClass int

const (
	callOK        callClass = iota
	callTransient           // transport error, 5xx, truncated body: retry, then fail over; feeds the breaker
	callRefused             // 4xx: the peer is healthy but will not serve this cell; fail over without penalty
)

// callPeerWithRetry runs one peer's attempts: breaker gate, call, and
// exponential backoff with jitter between transient failures.
func (c *Client) callPeerWithRetry(ctx context.Context, peer, workload string, req prophet.Request) (prophet.Estimate, error) {
	br := c.breakers[peer]
	for attempt := 0; ; attempt++ {
		if br != nil && !br.allow() {
			return prophet.Estimate{}, fmt.Errorf("%w: %s", errBreakerOpen, peer)
		}
		est, cls, err := c.callPeer(ctx, peer, workload, req)
		switch cls {
		case callOK:
			br.onSuccess()
			return est, nil
		case callRefused:
			// The peer answered coherently (overloaded or missing the
			// workload); that is not evidence it is down.
			br.onSuccess()
			return prophet.Estimate{}, err
		}
		br.onFailure()
		if attempt >= c.cfg.Retries || ctx.Err() != nil {
			return prophet.Estimate{}, err
		}
		c.retries.Inc()
		select {
		case <-time.After(c.backoff(attempt)):
		case <-ctx.Done():
			return prophet.Estimate{}, ctx.Err()
		}
	}
}

// backoff returns the wait before retry #attempt+1: exponential from
// RetryBase, capped at RetryMax, jittered into [½d, d] so synchronized
// coordinators do not retry in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	c.jitterMu.Lock()
	f := 0.5 + 0.5*c.jitter.Float64()
	c.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// predictBody mirrors the serving layer's /v1/predict request body.
type predictBody struct {
	Workload  string          `json:"workload"`
	Request   prophet.Request `json:"request"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
}

// maxForwardBody caps a forwarded response read; estimates are tiny, so
// anything larger is a corrupt or hostile peer.
const maxForwardBody = 1 << 20

// callPeer forwards one cell to peer as POST /v1/predict and decodes
// the estimate. The returned class tells the retry/failover policy how
// the attempt ended.
func (c *Client) callPeer(ctx context.Context, peer, workload string, req prophet.Request) (prophet.Estimate, callClass, error) {
	c.forwards.Inc()
	body := predictBody{Workload: workload, Request: req}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			body.TimeoutMS = ms
		}
	}
	data, err := json.Marshal(body)
	if err != nil {
		return prophet.Estimate{}, callRefused, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/predict", bytes.NewReader(data))
	if err != nil {
		return prophet.Estimate{}, callRefused, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ForwardedHeader, "1")
	start := c.cfg.now()
	resp, err := c.http.Do(hreq)
	if err != nil {
		c.forwardErrors.Inc()
		return prophet.Estimate{}, callTransient, fmt.Errorf("cluster: forward to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		// Mid-body connection loss (resets, truncation) lands here.
		c.forwardErrors.Inc()
		return prophet.Estimate{}, callTransient, fmt.Errorf("cluster: read from %s: %w", peer, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var est prophet.Estimate
		if err := json.Unmarshal(raw, &est); err != nil {
			c.forwardErrors.Inc()
			return prophet.Estimate{}, callTransient, fmt.Errorf("cluster: bad estimate from %s: %w", peer, err)
		}
		c.forwardLat.ObserveDuration(c.cfg.now().Sub(start))
		return est, callOK, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		c.forwardErrors.Inc()
		return prophet.Estimate{}, callRefused, fmt.Errorf("cluster: peer %s refused cell: HTTP %d", peer, resp.StatusCode)
	default:
		c.forwardErrors.Inc()
		return prophet.Estimate{}, callTransient, fmt.Errorf("cluster: peer %s failed cell: HTTP %d", peer, resp.StatusCode)
	}
}

// probeLoop is the self-healing half of the breakers: it probes every
// peer's /readyz each interval, so a crashed replica's circuit stays
// open without burning live requests on it, and a recovered replica is
// closed back into rotation within one interval.
func (c *Client) probeLoop() {
	defer close(c.probeDone)
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopProbe:
			return
		case <-ticker.C:
		}
		for _, peer := range c.ring.peers {
			if peer == c.cfg.Self {
				continue
			}
			select {
			case <-c.stopProbe:
				return
			default:
			}
			c.probeOne(peer)
		}
	}
}

func (c *Client) probeOne(peer string) {
	c.probes.Inc()
	timeout := c.cfg.ProbeInterval
	if timeout > time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/readyz", nil)
	if err != nil {
		return
	}
	br := c.breakers[peer]
	resp, err := c.http.Do(req)
	if err != nil {
		c.probeFailures.Inc()
		br.onFailure()
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		br.onSuccess()
		return
	}
	// A non-ready peer (loading, draining) must not receive cells.
	c.probeFailures.Inc()
	br.onFailure()
}

// staleCache is the bounded last-known-good store behind stale serving:
// newest successful remote result per cell, FIFO-evicted at capacity.
type staleCache struct {
	mu    sync.Mutex
	m     map[string]prophet.Estimate
	order []string
	cap   int
}

func newStaleCache(capacity int) *staleCache {
	if capacity <= 0 {
		return &staleCache{cap: 0}
	}
	return &staleCache{m: make(map[string]prophet.Estimate, capacity), cap: capacity}
}

func (s *staleCache) put(key string, est prophet.Estimate) {
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		s.order = append(s.order, key)
		if len(s.order) > s.cap {
			delete(s.m, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.m[key] = est
}

func (s *staleCache) get(key string) (prophet.Estimate, bool) {
	if s.cap <= 0 {
		return prophet.Estimate{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	est, ok := s.m[key]
	return est, ok
}
