//go:build !race

package sim

import (
	"testing"

	"prophet/internal/machine"
)

// TestSimStepZeroAlloc is the allocation gate for the engine hot path:
// with observability disabled, processing an event (work slice start/end,
// preemption, heap push/pop, DRAM register/unregister) must not allocate.
// Rather than asserting an absolute number — goroutine stacks and spawn
// closures legitimately allocate per thread — it runs the same workload
// shape at two very different step counts and requires the totals to
// match: any per-step allocation would show up thousands of times over.
//
// Excluded under the race detector, which instruments allocations and
// channel operations enough to perturb the count.
func TestSimStepZeroAlloc(t *testing.T) {
	cfg := Config{Cores: 4, Quantum: 10_000, ContextSwitch: -1}
	run := func(steps int) {
		_, _, err := RunOpt(cfg, RunOpts{}, func(m *Thread) {
			ws := make([]*Thread, 0, 8)
			for k := 0; k < 8; k++ {
				ws = append(ws, m.Spawn(func(w *Thread) {
					for i := 0; i < steps; i++ {
						w.Work(5_000)
					}
				}))
			}
			for _, w := range ws {
				m.Join(w)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run(16) // warm the machine pool to steady state
	}
	small := testing.AllocsPerRun(10, func() { run(16) })
	large := testing.AllocsPerRun(10, func() { run(4096) })
	// 4080 extra steps × 8 threads ≈ 65k extra events. The slack absorbs
	// incidental noise (a GC clearing the machine pool mid-measurement);
	// even a single alloc per event would overshoot it by three orders
	// of magnitude.
	if large > small+64 {
		t.Errorf("sim step path allocates: %.1f allocs at 16 steps vs %.1f at 4096 steps", small, large)
	}
}

// TestSimSpecStepZeroAlloc is the same gate for spec-built machines: the
// immutable-spec/pooled-instance split must keep the hot path at the same
// allocs/op — a pooled machine reset against a spec (including an
// asymmetric one, which takes the scaled slice path) derives speeds and
// domains into retained storage, never fresh allocations.
func TestSimSpecStepZeroAlloc(t *testing.T) {
	spec := &machine.Spec{
		Name:       "t-allocgate",
		CoreGroups: []machine.CoreGroup{{Count: 2, Speed: 1}, {Count: 2, Speed: 0.5}},
		Quantum:    10_000,
		// ContextSwitch 0 in a spec is literal (free switches), matching
		// the flat gate's ContextSwitch: -1.
		ContextSwitch: 0,
		LLC:           machine.LLCSpec{SizeBytes: 12 << 20, Ways: 16, LineBytes: 64},
		DRAM:          machine.DRAMSpec{UnloadedLatency: 40, BandwidthBytesPerCycle: 8, Knee: 0.75},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: spec}
	run := func(steps int) {
		_, _, err := RunOpt(cfg, RunOpts{}, func(m *Thread) {
			ws := make([]*Thread, 0, 8)
			for k := 0; k < 8; k++ {
				ws = append(ws, m.Spawn(func(w *Thread) {
					for i := 0; i < steps; i++ {
						w.WorkMem(5_000, 20)
					}
				}))
			}
			for _, w := range ws {
				m.Join(w)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run(16)
	}
	small := testing.AllocsPerRun(10, func() { run(16) })
	large := testing.AllocsPerRun(10, func() { run(4096) })
	if large > small+64 {
		t.Errorf("spec-machine step path allocates: %.1f allocs at 16 steps vs %.1f at 4096 steps", small, large)
	}
}
