package sim

import (
	"context"
	"errors"

	"prophet/internal/clock"
)

// errAbortRun is the private panic value used to unwind thread goroutines
// when a run fails; it never escapes the package.
var errAbortRun = errors.New("sim: run aborted")

// FaultHooks are the no-op-by-default scheduler/memory perturbation points
// used by deterministic fault injection (internal/faults). Hooks are
// called from the engine goroutine only, so implementations need no
// locking but must be deterministic for reproducible runs.
type FaultHooks struct {
	// Quantum, when set, returns the (possibly jittered) scheduling
	// quantum for a fresh slice on the given core; non-positive returns
	// fall back to the configured quantum.
	Quantum func(core int, quantum clock.Cycles) clock.Cycles
	// DRAMBandwidth, when set, rescales the DRAM bandwidth seen by the
	// contention model (bytes/cycle); non-positive returns fall back to
	// the configured bandwidth.
	DRAMBandwidth func(base float64) float64
}

// RunOpts bundles the optional knobs of a machine run.
type RunOpts struct {
	// Ctx cancels the run: the engine polls it and fails with an error
	// wrapping ctx.Err(). Nil means context.Background().
	Ctx context.Context
	// Recorder captures executed work slices for timeline rendering.
	Recorder *Recorder
	// Faults installs deterministic perturbation hooks.
	Faults *FaultHooks
}

// RunOpt executes main as thread 0 with the given options and returns the
// makespan, run stats, and a typed error on failure: *DeadlockError,
// *LockMisuseError, *BudgetError, *InternalError (a recovered thread
// panic), or a cancellation error wrapping ctx.Err(). On failure every
// thread goroutine is unwound before RunOpt returns — a failed run leaks
// nothing, whatever state the workload was in.
func RunOpt(cfg Config, o RunOpts, main func(*Thread)) (clock.Cycles, Stats, error) {
	m := New(cfg)
	if o.Ctx != nil {
		m.ctx = o.Ctx
	}
	m.recorder = o.Recorder
	if o.Faults != nil {
		m.faults = o.Faults
		if o.Faults.DRAMBandwidth != nil {
			m.dram.SetBandwidthHook(o.Faults.DRAMBandwidth)
		}
	}
	t := m.newThread(main)
	m.makeReady(t)
	return m.run()
}

// RunCtx is RunOpt with only a cancellation context.
func RunCtx(ctx context.Context, cfg Config, main func(*Thread)) (clock.Cycles, Stats, error) {
	return RunOpt(cfg, RunOpts{Ctx: ctx}, main)
}
