package sim

import (
	"context"
	"errors"
	"sync"

	"prophet/internal/clock"
	"prophet/internal/obs"
)

// errAbortRun is the private panic value used to unwind thread goroutines
// when a run fails; it never escapes the package.
var errAbortRun = errors.New("sim: run aborted")

// FaultHooks are the no-op-by-default scheduler/memory perturbation points
// used by deterministic fault injection (internal/faults). Hooks are
// called from the engine goroutine only, so implementations need no
// locking but must be deterministic for reproducible runs.
type FaultHooks struct {
	// Quantum, when set, returns the (possibly jittered) scheduling
	// quantum for a fresh slice on the given core; non-positive returns
	// fall back to the configured quantum.
	Quantum func(core int, quantum clock.Cycles) clock.Cycles
	// DRAMBandwidth, when set, rescales the DRAM bandwidth seen by the
	// contention model (bytes/cycle); non-positive returns fall back to
	// the configured bandwidth.
	DRAMBandwidth func(base float64) float64
}

// RunOpts bundles the optional knobs of a machine run.
type RunOpts struct {
	// Ctx cancels the run: the engine polls it and fails with an error
	// wrapping ctx.Err(). Nil means context.Background().
	Ctx context.Context
	// Recorder captures executed work slices for timeline rendering.
	//
	// Deprecated: Recorder only sees work slices and cannot report
	// errors to render-time consumers. New code should attach a Tracer
	// (e.g. an *obs.TraceBuffer), which receives the full event stream —
	// schedule, preempt, block/unblock, lock and slice events — and
	// exports Chrome trace JSON. Recorder remains supported for the
	// text-Gantt path.
	Recorder *Recorder
	// Tracer receives execution events (schedule/preempt/block/unblock/
	// lock/slice) with virtual timestamps; nil disables tracing at the
	// cost of one branch per site (see internal/obs).
	Tracer obs.ExecTracer
	// Metrics, when set, aggregates run-level counters (sim.runs,
	// sim.events, sim.preemptions, watchdog headroom) into the registry
	// when the run ends.
	Metrics *obs.Registry
	// Faults installs deterministic perturbation hooks.
	Faults *FaultHooks
}

// RunOpt executes main as thread 0 with the given options and returns the
// makespan, run stats, and a typed error on failure: *DeadlockError,
// *LockMisuseError, *BudgetError, *InternalError (a recovered thread
// panic), or a cancellation error wrapping ctx.Err(). On failure every
// thread goroutine is unwound before RunOpt returns — a failed run leaks
// nothing, whatever state the workload was in.
func RunOpt(cfg Config, o RunOpts, main func(*Thread)) (clock.Cycles, Stats, error) {
	m := getMachine(cfg)
	if o.Ctx != nil {
		m.ctx = o.Ctx
	}
	m.recorder = o.Recorder
	m.tracer = o.Tracer
	m.metrics = o.Metrics
	if o.Faults != nil {
		m.faults = o.Faults
		if o.Faults.DRAMBandwidth != nil {
			m.dram.SetBandwidthHook(o.Faults.DRAMBandwidth)
		}
	}
	t := m.newThread(main)
	m.makeReady(t)
	end, stats, err := m.run()
	releaseMachine(m)
	return end, stats, err
}

// machinePool recycles machines between RunOpt calls: the event heap, core
// and ready arrays, lock states and thread slots (with their semaphore
// channels) all reach a steady state where a sweep cell's runs allocate
// almost nothing beyond the goroutine stacks.
var machinePool sync.Pool

func getMachine(cfg Config) *Machine {
	if v := machinePool.Get(); v != nil {
		m := v.(*Machine)
		m.reset(cfg)
		return m
	}
	return New(cfg)
}

// releaseMachine drops the external references a finished run may hold
// (observers, hooks, the failure value) and returns the machine to the
// pool. Safe because run() waits for every thread goroutine to unwind.
func releaseMachine(m *Machine) {
	m.ctx = context.Background()
	m.recorder = nil
	m.tracer = nil
	m.metrics = nil
	m.faults = nil
	m.err = nil
	m.dram.SetBandwidthHook(nil)
	machinePool.Put(m)
}

// RunCtx is RunOpt with only a cancellation context.
func RunCtx(ctx context.Context, cfg Config, main func(*Thread)) (clock.Cycles, Stats, error) {
	return RunOpt(cfg, RunOpts{Ctx: ctx}, main)
}
