package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"prophet/internal/clock"
)

// Sentinel errors of the simulated machine. Structured errors returned by
// RunCtx/RunOpt unwrap to one of these, so callers classify failures with
// errors.Is without depending on the concrete diagnostic types.
var (
	// ErrDeadlock is wrapped by *DeadlockError: every live thread is
	// blocked and no event can wake any of them.
	ErrDeadlock = errors.New("sim: deadlock")
	// ErrLockMisuse is wrapped by *LockMisuseError: a thread released a
	// lock it does not own (including double unlock).
	ErrLockMisuse = errors.New("sim: lock misuse")
	// ErrBudgetExceeded is wrapped by *BudgetError: the run outlived its
	// event-count or virtual-time watchdog budget.
	ErrBudgetExceeded = errors.New("sim: budget exceeded")
)

// ThreadDiag is one thread's row in a deadlock wait graph: what it holds,
// what it waits for, and its scheduler state at the time of the failure.
type ThreadDiag struct {
	// ID is the thread's creation-ordered identifier (main is 0).
	ID int
	// State is the scheduler state ("ready", "running", "blocked",
	// "exited").
	State string
	// Holds lists the lock IDs the thread currently owns, ascending.
	Holds []int
	// WaitsLock is the lock ID the thread is queued on, or -1.
	WaitsLock int
	// WaitsJoin is the ID of the thread being joined, or -1.
	WaitsJoin int
	// Parked reports a thread blocked in Park with no Unpark pending.
	Parked bool
}

func (d ThreadDiag) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "thread %d: %s", d.ID, d.State)
	if len(d.Holds) > 0 {
		fmt.Fprintf(&b, ", holds %v", d.Holds)
	}
	switch {
	case d.WaitsLock >= 0:
		fmt.Fprintf(&b, ", waits for lock %d", d.WaitsLock)
	case d.WaitsJoin >= 0:
		fmt.Fprintf(&b, ", waits for thread %d to exit", d.WaitsJoin)
	case d.Parked:
		b.WriteString(", parked (no unpark pending)")
	}
	return b.String()
}

// DeadlockError reports a deadlocked simulation: at virtual time Time,
// Live threads were alive and none runnable. Threads carries the wait
// graph — which threads hold which locks and what each is blocked on — so
// a user can see the lock cycle in their annotated program instead of a
// hung process.
type DeadlockError struct {
	// Time is the virtual time at which the machine stalled.
	Time clock.Cycles
	// Live is the number of live (non-exited) threads.
	Live int
	// Threads is the per-thread wait graph, in thread-ID order.
	Threads []ThreadDiag
	// LockOwners maps each held lock ID to its owning thread.
	LockOwners map[int]int
}

// Error renders the one-line summary plus the wait graph.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%d: %d live threads, none runnable\n%s",
		e.Time, e.Live, e.WaitGraph())
}

// Unwrap makes errors.Is(err, ErrDeadlock) true.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// WaitGraph renders the hold/wait relation, one indented line per thread:
//
//	thread 1: blocked, holds [1], waits for lock 2 (held by thread 2)
//	thread 2: blocked, holds [2], waits for lock 1 (held by thread 1)
func (e *DeadlockError) WaitGraph() string {
	var b strings.Builder
	for i, d := range e.Threads {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString("  ")
		b.WriteString(d.describe())
		if d.WaitsLock >= 0 {
			if owner, ok := e.LockOwners[d.WaitsLock]; ok {
				fmt.Fprintf(&b, " (held by thread %d)", owner)
			}
		}
	}
	return b.String()
}

// LockMisuseError reports a thread releasing a lock it does not own — a
// double unlock or an unlock-without-lock in the annotated program or a
// runtime layer. It aborts the run instead of crashing the host process.
type LockMisuseError struct {
	// Time is the virtual time of the bad release.
	Time clock.Cycles
	// Thread is the offending thread's ID.
	Thread int
	// Lock is the lock being released.
	Lock int
	// Owner is the actual owner's thread ID, or -1 when the lock is
	// free (double unlock).
	Owner int
}

func (e *LockMisuseError) Error() string {
	owner := "nobody"
	if e.Owner >= 0 {
		owner = fmt.Sprintf("thread %d", e.Owner)
	}
	return fmt.Sprintf("sim: lock misuse at t=%d: thread %d unlocks lock %d owned by %s",
		e.Time, e.Thread, e.Lock, owner)
}

// Unwrap makes errors.Is(err, ErrLockMisuse) true.
func (e *LockMisuseError) Unwrap() error { return ErrLockMisuse }

// BudgetError reports a run that exceeded its watchdog budget
// (Config.MaxEvents / Config.MaxVirtualTime) — the typed outcome for
// runaway or livelocked simulations that would otherwise spin forever.
type BudgetError struct {
	// Time is the virtual time when the watchdog fired.
	Time clock.Cycles
	// Events is the number of simulator events processed so far.
	Events int64
	// MaxEvents / MaxTime echo the configured budgets (0 = unlimited).
	MaxEvents int64
	MaxTime   clock.Cycles
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: budget exceeded at t=%d after %d events (max events %d, max time %d)",
		e.Time, e.Events, e.MaxEvents, e.MaxTime)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) true.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// InternalError is a panic recovered from a thread function (a bug in the
// runtime layer or workload under test), converted into an error so a
// library caller's process survives.
type InternalError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at the point of the panic.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("sim: thread panic: %v", e.Value)
}

// deadlockError snapshots the machine's wait graph for the error report.
func (m *Machine) deadlockError() *DeadlockError {
	e := &DeadlockError{Time: m.now, Live: m.live, LockOwners: map[int]int{}}

	waitsLock := map[int]int{} // thread ID -> lock ID
	holds := map[int][]int{}   // thread ID -> lock IDs
	lockIDs := make([]int, 0, len(m.locks))
	for id := range m.locks {
		lockIDs = append(lockIDs, id)
	}
	sort.Ints(lockIDs)
	for _, id := range lockIDs {
		l := m.locks[id]
		if l.owner != nil {
			holds[l.owner.id] = append(holds[l.owner.id], id)
			e.LockOwners[id] = l.owner.id
		}
		for _, w := range l.waiters {
			waitsLock[w.id] = id
		}
	}
	waitsJoin := map[int]int{} // thread ID -> joined thread ID
	for _, t := range m.threads[:m.nextID] {
		for _, j := range t.joiners {
			waitsJoin[j.id] = t.id
		}
	}

	for _, t := range m.threads[:m.nextID] {
		if t.state == stateExited {
			continue
		}
		d := ThreadDiag{ID: t.id, State: stateName(t.state), Holds: holds[t.id], WaitsLock: -1, WaitsJoin: -1}
		if id, ok := waitsLock[t.id]; ok {
			d.WaitsLock = id
		} else if id, ok := waitsJoin[t.id]; ok {
			d.WaitsJoin = id
		} else if t.inPark {
			d.Parked = true
		}
		e.Threads = append(e.Threads, d)
	}
	return e
}

func stateName(s tstate) string {
	switch s {
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateExited:
		return "exited"
	}
	return "unknown"
}
