package sim

import (
	"testing"

	"prophet/internal/clock"
)

// TestPinKeepsThreadOnCore: a pinned thread's slices all land on its core
// (verified through the trace recorder).
func TestPinKeepsThreadOnCore(t *testing.T) {
	rec := &Recorder{}
	var pinnedID int
	RunTraced(cfg(4), rec, func(th *Thread) {
		w := th.Spawn(func(w *Thread) {
			pinnedID = w.ID()
			w.Pin(2)
			for i := 0; i < 10; i++ {
				w.Work(20_000) // cross quantum boundaries
				w.Yield()
			}
		})
		// Load the machine so migration would otherwise happen.
		others := []*Thread{}
		for i := 0; i < 6; i++ {
			others = append(others, th.Spawn(func(o *Thread) { o.Work(120_000) }))
		}
		th.Join(w)
		for _, o := range others {
			th.Join(o)
		}
	})
	sawPinned := false
	for _, iv := range rec.Intervals {
		if iv.Thread != pinnedID {
			continue
		}
		// The very first slice may predate the Pin call; everything
		// after the first yield is pinned. Allow core !=2 only before
		// any core-2 slice was seen.
		if iv.Core == 2 {
			sawPinned = true
		} else if sawPinned {
			t.Fatalf("pinned thread ran on core %d after pinning: %+v", iv.Core, iv)
		}
	}
	if !sawPinned {
		t.Fatal("pinned thread never ran on its core")
	}
}

// TestTwoThreadsPinnedToSameCoreSerialize: affinity turns parallelism off.
func TestTwoThreadsPinnedToSameCoreSerialize(t *testing.T) {
	end, _ := Run(cfg(4), func(th *Thread) {
		mk := func() *Thread {
			return th.Spawn(func(w *Thread) {
				w.Pin(1)
				w.Yield() // reschedule onto the pinned core
				w.Work(100_000)
			})
		}
		a, b := mk(), mk()
		th.Join(a)
		th.Join(b)
	})
	if end < 200_000 {
		t.Fatalf("same-core pinned threads overlapped: %d", end)
	}
}

// TestPinnedThreadWaitsForItsCore: an unpinned thread can overtake a
// pinned one whose core is busy.
func TestPinnedThreadWaitsForItsCore(t *testing.T) {
	c := cfg(2)
	c.Quantum = 1_000_000 // no preemption: the hog keeps core 0
	var freeDone, pinnedDone clock.Cycles
	Run(c, func(th *Thread) {
		th.Pin(0)
		th.Yield() // main now owns core 0
		hogEnd := clock.Cycles(300_000)
		pinned := th.Spawn(func(w *Thread) {
			w.Pin(0)
			w.Yield()
			w.Work(10_000)
			pinnedDone = w.Now()
		})
		free := th.Spawn(func(w *Thread) {
			w.Work(10_000)
			freeDone = w.Now()
		})
		th.Work(hogEnd) // hog core 0 while the others sort themselves out
		th.Join(free)
		th.Join(pinned)
	})
	if freeDone > 50_000 {
		t.Fatalf("free thread should run immediately on core 1, done at %d", freeDone)
	}
	if pinnedDone < 300_000 {
		t.Fatalf("pinned thread ran before its core freed: done at %d", pinnedDone)
	}
}

// TestPinClamping: out-of-range pins clamp instead of wedging the
// scheduler.
func TestPinClamping(t *testing.T) {
	Run(cfg(2), func(th *Thread) {
		th.Pin(99)
		if th.Pinned() != 1 {
			t.Errorf("Pin(99) -> %d, want clamp to 1", th.Pinned())
		}
		th.Pin(-5)
		if th.Pinned() != -1 {
			t.Errorf("Pin(-5) -> %d, want -1", th.Pinned())
		}
		th.Work(1_000)
	})
}
