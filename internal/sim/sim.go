// Package sim implements the simulated multicore machine that stands in for
// the paper's 12-core Westmere testbed.
//
// It is a deterministic discrete-event simulator with:
//
//   - P cores and a preemptive round-robin OS scheduler with a time quantum
//     and a global ready queue, so oversubscription (more threads than
//     cores, §IV-D / Fig. 7 of the paper) behaves like a real OS;
//   - virtual threads backed by goroutines but serialized by the engine:
//     exactly one thread goroutine executes at a time, so runtime layers
//     (internal/omprt, internal/cilkrt) are written in plain direct style
//     with ordinary data structures and remain fully deterministic;
//   - FIFO locks with direct handoff, park/unpark, spawn/join;
//   - a bandwidth-shared DRAM (internal/mem): work segments carry an LLC
//     miss count, and when the aggregate miss traffic of the running
//     threads exceeds the DRAM bandwidth, their memory time stretches —
//     this produces the speedup saturation the paper's memory model
//     predicts (Fig. 2, Fig. 12).
//
// Virtual time is in cycles. A thread advances time only through engine
// calls (Work, WorkMem, Lock, ...); code between calls is free, and
// runtimes model their own overheads with explicit Work calls.
//
// # Engine execution model
//
// There is no dedicated engine goroutine. The engine is a flat state
// machine (advance) run by whichever goroutine currently holds the baton:
// initially the Run caller, afterwards the thread goroutines themselves.
// An engine call from a thread invokes handle directly — when the thread
// keeps running (lock acquired uncontended, token consumed, spawn, ...)
// the call returns with zero goroutine switches. When the thread parks,
// the same goroutine drives advance to the next thread to resume and
// hands the baton over through that thread's one-slot semaphore channel
// (at most one switch, against two for the classic request/resume
// rendezvous — and zero when advance resumes the calling thread itself).
// The baton discipline is what makes the engine state safe without locks:
// exactly one goroutine runs engine code at any time, and every transfer
// happens through a channel operation, which carries the happens-before
// edge.
package sim

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"prophet/internal/clock"
	"prophet/internal/eventq"
	"prophet/internal/machine"
	"prophet/internal/mem"
	"prophet/internal/obs"
)

// Config describes the simulated machine.
//
// The machine itself is described by Spec; the Cores/Quantum/
// ContextSwitch/DRAM knobs are the legacy flat form, kept working as a
// thin wrapper (zero values fall back to the paper-machine defaults,
// exactly as before specs existed). When Spec is set it is the single
// source of machine truth and the flat knobs are derived from it — with
// one exception: ContextSwitch < 0 still disables the switch cost, the
// run-mode override calibration and exact-makespan tests rely on.
// MaxEvents and MaxVirtualTime are run budgets, not machine properties,
// and always come from the Config.
type Config struct {
	// Spec, when non-nil, is the validated machine specification
	// (immutable; use machine.ParseSpec or the registry presets). It
	// defines the core layout — including per-group speed ratios for
	// asymmetric machines — the scheduling quantum, the context-switch
	// cost, and the DRAM model including an optional second bandwidth
	// domain.
	Spec *machine.Spec
	// Cores is the number of processors (default 12, the paper machine).
	// Ignored when Spec is set.
	Cores int
	// Quantum is the OS scheduling time slice in cycles (default 50k).
	// Ignored when Spec is set.
	Quantum clock.Cycles
	// ContextSwitch is the overhead added when a core switches between
	// threads. Zero selects the default (1000 cycles); a negative value
	// disables the cost entirely (used by tests that assert exact
	// makespans, and honoured even when Spec is set).
	ContextSwitch clock.Cycles
	// DRAM configures the memory system (defaults from mem.DefaultDRAM).
	// Ignored when Spec is set.
	DRAM mem.DRAMConfig
	// MaxEvents is the watchdog budget on processed simulator events;
	// a run that exceeds it fails with *BudgetError instead of spinning
	// forever on a livelocked or runaway workload. Zero means unlimited.
	MaxEvents int64
	// MaxVirtualTime is the watchdog budget on virtual time (cycles);
	// zero means unlimited.
	MaxVirtualTime clock.Cycles
}

// DefaultConfig returns the paper-machine configuration: 12 cores, 50k-cycle
// quantum, Westmere-class DRAM.
func DefaultConfig() Config {
	return Config{Cores: 12, Quantum: 50_000, ContextSwitch: 1_000, DRAM: mem.DefaultDRAM()}
}

// Normalized returns the configuration with all defaults applied — the
// exact values a machine built from c would use.
func (c Config) Normalized() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if s := c.Spec; s != nil {
		// The spec is the source of truth: derive the flat knobs from it
		// verbatim (specs are validated, never rewritten). Only the
		// ContextSwitch < 0 run-mode override survives.
		c.Cores = s.Cores()
		c.Quantum = s.Quantum
		if c.ContextSwitch < 0 {
			c.ContextSwitch = 0
		} else {
			c.ContextSwitch = s.ContextSwitch
		}
		c.DRAM = mem.ConfigFromSpec(s.DRAM)
		return c
	}
	d := DefaultConfig()
	if c.Cores <= 0 {
		c.Cores = d.Cores
	}
	if c.Quantum <= 0 {
		c.Quantum = d.Quantum
	}
	switch {
	case c.ContextSwitch == 0:
		c.ContextSwitch = d.ContextSwitch
	case c.ContextSwitch < 0:
		c.ContextSwitch = 0
	}
	// Normalize the DRAM config the same way the model itself would, so
	// the engine's timing math sees the defaulted values.
	c.DRAM = mem.NewDRAM(c.DRAM).Config()
	return c
}

// Stats aggregates machine-level activity over a run.
type Stats struct {
	// Instructions is the total executed instruction-cycles.
	Instructions float64
	// Misses is the total LLC misses serviced.
	Misses float64
	// BusyCycles is the total core-busy time (for utilization).
	BusyCycles clock.Cycles
	// Preemptions counts involuntary context switches.
	Preemptions int64
	// Events counts processed simulator events (for performance
	// ablations).
	Events int64
}

type tstate uint8

const (
	stateReady tstate = iota
	stateRunning
	stateBlocked
	stateExited
)

// Thread is a virtual thread of the simulated machine. All methods must be
// called from the thread's own function (the engine enforces the
// one-at-a-time discipline).
//
// Thread objects are pooled: they are only valid while the run that
// created them is in progress.
type Thread struct {
	id int
	m  *Machine
	// sem is the thread's one-slot baton semaphore: a token arrives when
	// the engine resumes the thread (or when a failed run unwinds it).
	sem   chan struct{}
	state tstate
	core  int // core index while running, -1 otherwise

	// Pending work request.
	instrLeft  float64
	missesLeft float64
	demand     float64 // registered DRAM demand while a slice is active
	sliceWork  clock.Cycles
	sliceDur   clock.Cycles

	joiners   []*Thread
	parkToken bool
	inPark    bool
	spawned   *Thread
	now       clock.Cycles
	// pinned restricts the thread to one core (-1 = any), like
	// sched_setaffinity; the paper pins its tracer thread (§VI-A).
	pinned int
}

// ID returns the thread's creation-ordered identifier (main is 0).
func (t *Thread) ID() int { return t.id }

// Now returns the thread's current virtual time. Time is frozen while the
// thread's code runs; it advances only across engine calls.
func (t *Thread) Now() clock.Cycles { return t.now }

// Machine returns the machine the thread runs on.
func (t *Thread) Machine() *Machine { return t.m }

type opKind uint8

const (
	opWork opKind = iota
	opLock
	opUnlock
	opSpawn
	opJoin
	opPark
	opUnpark
	opYield
	opSleep
	opExit
	opPanic
)

type request struct {
	t      *Thread
	kind   opKind
	instr  float64
	misses float64
	lock   int
	other  *Thread
	fn     func(*Thread)
	// panicVal/stack carry a recovered thread panic (opPanic).
	panicVal any
	stack    []byte
}

type lockState struct {
	owner   *Thread
	waiters []*Thread
}

type event struct {
	time clock.Cycles
	seq  uint64
	core int
	gen  uint64
	// wake, when non-nil, marks a sleep-expiry event for that thread
	// instead of a core slice end.
	wake *Thread
}

// Less orders events by time, with the monotonic sequence number breaking
// ties so pop order is deterministic (eventq requires caller tie-breaks).
func (a event) Less(b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

type coreState struct {
	running     *Thread
	gen         uint64
	quantumLeft clock.Cycles
	lastThread  *Thread
	// speed is the core's clock ratio from the machine spec (1 on
	// homogeneous machines, which take the exact legacy timing path).
	speed float64
	// dom is the core's DRAM bandwidth domain (0 unless the spec has a
	// second domain).
	dom uint8
}

// enginePhase is the resumable position inside the engine state machine.
// The classic engine was a nested loop (scheduling fixpoint inside the
// event loop) that called blocked-thread code synchronously; flattening it
// into explicit phases lets any goroutine resume the engine exactly where
// the previous baton holder left off, preserving the original decision
// order (and therefore byte-identical output).
type enginePhase uint8

const (
	// phTop is the top of the event loop: liveness check, then a fresh
	// scheduling fixpoint.
	phTop enginePhase = iota
	// phAssign is mid-pass through the cores of the scheduling fixpoint;
	// assignIdx/assignPlaced carry the continuation.
	phAssign
	// phEvents pops and applies the next slice-end/wake event.
	phEvents
)

// Machine is the simulated multicore machine.
type Machine struct {
	cfg   Config
	ctx   context.Context
	dram  *mem.DRAM
	now   clock.Cycles
	ready []*Thread
	cores []coreState
	// events is the monomorphic min-heap of slice-end and wake events —
	// no interface{} boxing, backing array reused across pooled runs.
	events eventq.Heap[event]
	seq    uint64
	live   int
	nextID int
	locks  map[int]*lockState
	// lockFree recycles lockState structs across pooled runs.
	lockFree []*lockState
	// threads holds every thread slot ever created on this machine;
	// only threads[:nextID] belong to the current run, later slots are
	// retained for reuse (their goroutines have exited, their semaphore
	// channels are empty).
	threads []*Thread
	stats   Stats
	end     clock.Cycles

	// Engine continuation (see enginePhase).
	phase        enginePhase
	assignIdx    int
	assignPlaced bool

	// Last-segment demand memo: threads running identical work segments
	// (the common case in data-parallel loops) reuse the previous
	// UnconstrainedDemand result. Keyed on the exact float pair, so the
	// cached value is bit-identical to a recomputation.
	demandInstr  float64
	demandMisses float64
	demandVal    float64
	demandOK     bool

	// err is the first failure (deadlock, misuse, budget, panic,
	// cancellation); once set the engine unwinds instead of continuing.
	err error
	// aborted tells woken threads the run is unwinding; it is always
	// published before the wake token, so the channel receive carries
	// the happens-before edge.
	aborted bool
	// done receives one token when the run finishes (buffered so the
	// finishing thread never blocks on the driver).
	done chan struct{}
	wg   sync.WaitGroup
	// faults, when set, perturbs scheduling (see FaultHooks in run.go).
	faults *FaultHooks
	// recorder, when set, captures executed work slices (see trace.go).
	recorder *Recorder
	// tracer, when set, receives schedule/preempt/block/unblock/lock and
	// work-slice events with virtual timestamps (internal/obs). Nil (the
	// default) costs one predictable branch per emission site.
	tracer obs.ExecTracer
	// metrics, when set, aggregates run-level counters (event count,
	// preemptions, watchdog headroom) at the end of the run.
	metrics *obs.Registry
}

// New creates a machine. Most callers use Run instead.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg:   cfg,
		ctx:   context.Background(),
		dram:  mem.NewDRAM(cfg.DRAM),
		cores: make([]coreState, cfg.Cores),
		locks: make(map[int]*lockState),
		done:  make(chan struct{}, 1),
	}
	if cfg.Spec != nil {
		m.dram.ResetSpec(cfg.Spec.DRAM)
	}
	for i := range m.cores {
		m.cores[i].quantumLeft = cfg.Quantum
	}
	m.applyCoreSpec(cfg.Spec)
	return m
}

// applyCoreSpec stamps each core's speed ratio and DRAM bandwidth domain
// from the spec. A nil spec (legacy flat config) is a homogeneous
// single-domain machine: every core at speed 1 on domain 0, the exact
// pre-spec timing path.
func (m *Machine) applyCoreSpec(spec *machine.Spec) {
	dom2 := 0
	if spec != nil && spec.DRAM.SecondDomain != nil {
		dom2 = spec.DRAM.SecondDomain.Cores
	}
	n := len(m.cores)
	for i := range m.cores {
		c := &m.cores[i]
		c.speed = 1
		if spec != nil {
			c.speed = spec.SpeedOf(i)
		}
		c.dom = 0
		if dom2 > 0 && i >= n-dom2 {
			c.dom = 1
		}
	}
}

// reset prepares a pooled machine for a fresh run. Heap, core, ready and
// thread storage (including the per-thread semaphore channels) is retained,
// so a warmed machine starts a run with near-zero allocation.
func (m *Machine) reset(cfg Config) {
	cfg = cfg.withDefaults()
	m.cfg = cfg
	m.ctx = context.Background()
	// The reset is keyed on the spec: a pooled machine re-derives its
	// DRAM domains and per-core speeds from whatever spec (or legacy
	// flat config) the next run carries, reusing all storage.
	if cfg.Spec != nil {
		m.dram.ResetSpec(cfg.Spec.DRAM)
	} else {
		m.dram.Reset(cfg.DRAM)
	}
	m.now = 0
	m.ready = m.ready[:0]
	if cap(m.cores) >= cfg.Cores {
		m.cores = m.cores[:cfg.Cores]
	} else {
		m.cores = make([]coreState, cfg.Cores)
	}
	for i := range m.cores {
		m.cores[i] = coreState{quantumLeft: cfg.Quantum}
	}
	m.applyCoreSpec(cfg.Spec)
	m.events.Reset()
	m.seq = 0
	m.live = 0
	m.nextID = 0
	for id, l := range m.locks {
		l.owner = nil
		l.waiters = l.waiters[:0]
		m.lockFree = append(m.lockFree, l)
		delete(m.locks, id)
	}
	m.stats = Stats{}
	m.end = 0
	m.phase = phTop
	m.assignIdx = 0
	m.assignPlaced = false
	m.demandInstr = 0
	m.demandMisses = 0
	m.demandVal = 0
	m.demandOK = false
	m.err = nil
	m.aborted = false
	m.faults = nil
	m.recorder = nil
	m.tracer = nil
	m.metrics = nil
}

// Run executes main as thread 0 of a machine with the given configuration
// and returns the makespan (the time the last thread exited) and run stats.
// Run panics on any simulation error (deadlock, lock misuse, thread
// panic), which indicates a bug in the runtime layer under test — library
// code that must survive buggy workloads uses RunCtx/RunOpt instead.
func Run(cfg Config, main func(*Thread)) (clock.Cycles, Stats) {
	end, stats, err := RunOpt(cfg, RunOpts{}, main)
	if err != nil {
		panic(err)
	}
	return end, stats
}

// fail records the first error; later failures are dropped.
func (m *Machine) fail(err error) {
	if m.err == nil && err != nil {
		m.err = err
	}
}

// run drives the engine to completion or failure, then waits for every
// thread goroutine to unwind so a finished run leaks nothing.
func (m *Machine) run() (clock.Cycles, Stats, error) {
	if next := m.advance(); next != nil {
		next.now = m.now
		next.sem <- struct{}{}
	} else {
		// No thread to start (cannot happen with a ready main thread,
		// kept for protocol completeness).
		m.finish(nil)
	}
	<-m.done
	m.wg.Wait()
	if m.metrics != nil {
		m.metrics.Counter(obs.MSimRuns).Inc()
		m.metrics.Counter(obs.MSimEvents).Add(m.stats.Events)
		m.metrics.Counter(obs.MSimPreemptions).Add(m.stats.Preemptions)
		if m.cfg.MaxEvents > 0 {
			m.metrics.Histogram(obs.MSimHeadroom).Observe(m.cfg.MaxEvents - m.stats.Events)
		}
	}
	return m.end, m.stats, m.err
}

// Config returns the (defaulted) machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Time returns the machine's current virtual time.
func (m *Machine) Time() clock.Cycles { return m.now }

// DRAM exposes the memory model (used by calibration benchmarks).
func (m *Machine) DRAM() *mem.DRAM { return m.dram }

func (m *Machine) newThread(f func(*Thread)) *Thread {
	var t *Thread
	if m.nextID < len(m.threads) {
		// Reuse the pooled slot: its goroutine has exited and every
		// semaphore token ever sent to it was consumed, so the channel
		// can be carried over empty.
		t = m.threads[m.nextID]
		joiners := t.joiners[:0]
		sem := t.sem
		*t = Thread{id: m.nextID, m: m, sem: sem, core: -1, state: stateReady, pinned: -1}
		t.joiners = joiners
	} else {
		t = &Thread{id: m.nextID, m: m, sem: make(chan struct{}, 1), core: -1, state: stateReady, pinned: -1}
		m.threads = append(m.threads, t)
	}
	m.nextID++
	m.live++
	m.wg.Add(1)
	go m.threadBody(t, f)
	return t
}

// threadBody is the goroutine behind one virtual thread. A named method
// (rather than a closure in newThread) keeps the per-spawn allocation
// profile flat.
func (m *Machine) threadBody(t *Thread, f func(*Thread)) {
	defer m.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if r == errAbortRun {
				return // engine-initiated unwind
			}
			// A bug in the thread function: panics can only happen
			// while the thread's code runs, so this goroutine still
			// holds the baton — report the failure as a typed error
			// and drive the engine into its unwind directly.
			m.handle(request{t: t, kind: opPanic, panicVal: r, stack: debug.Stack()})
			m.exitHandoff(t)
		}
	}()
	<-t.sem
	if m.aborted {
		return
	}
	f(t)
	m.handle(request{t: t, kind: opExit})
	m.exitHandoff(t)
}

// handoff is called by t's goroutine after a handled request parked,
// blocked or preempted t: it drives the engine to the next runnable
// thread, passes the baton, and waits to be resumed. When the engine
// immediately reselects t, the call returns without any goroutine switch.
func (m *Machine) handoff(t *Thread) {
	next := m.advance()
	if next == t {
		t.now = m.now
		return
	}
	if next != nil {
		next.now = m.now
		next.sem <- struct{}{}
	} else {
		// The run is over while t is still live, which only happens on
		// failure: publish the unwind and abandon t's own code.
		m.finish(t)
		panic(errAbortRun)
	}
	<-t.sem
	if m.aborted {
		panic(errAbortRun)
	}
}

// exitHandoff passes the baton onward after t exited (or panicked): drive
// the engine to the next thread, or finish the run. The calling goroutine
// returns instead of waiting — an exited thread is never resumed.
func (m *Machine) exitHandoff(t *Thread) {
	if next := m.advance(); next != nil {
		next.now = m.now
		next.sem <- struct{}{}
		return
	}
	m.finish(t)
}

// finish ends the run: it publishes the aborted flag, wakes every
// still-parked thread goroutine so it can unwind, and signals the driver.
// Only the baton holder calls finish, so every live thread other than self
// is parked on its empty semaphore.
func (m *Machine) finish(self *Thread) {
	m.aborted = true
	for _, t := range m.threads[:m.nextID] {
		if t == self || t.state == stateExited {
			continue
		}
		t.sem <- struct{}{}
	}
	m.done <- struct{}{}
}

func (m *Machine) makeReady(t *Thread) {
	if m.tracer != nil && t.state == stateBlocked {
		m.tracer.Exec(obs.ExecEvent{Kind: obs.KUnblock, Time: m.now, Core: -1, Thread: t.id, Lock: -1})
	}
	t.state = stateReady
	t.inPark = false
	t.core = -1
	m.ready = append(m.ready, t)
}

// advance is the engine: it assigns ready threads to idle cores, pops the
// next slice-end event, and advances virtual time until a thread must
// resume its code (returned) or the run is over (nil: every thread exited,
// or err is set). It resumes from the phase where the previous baton
// holder suspended, replicating the exact decision order of the original
// nested loop so emitted results are byte-identical.
func (m *Machine) advance() *Thread {
	for {
		switch m.phase {
		case phTop:
			if m.live == 0 || m.err != nil {
				return nil
			}
			m.assignPlaced = false
			m.assignIdx = 0
			m.phase = phAssign

		case phAssign:
			// One pass over the cores, resumable at assignIdx:
			// starting a thread can run its code synchronously, which
			// may free the core again or wake further threads, so
			// passes repeat until a fixpoint.
			for i := m.assignIdx; i < len(m.cores); i++ {
				if m.err != nil {
					break
				}
				if m.cores[i].running != nil || len(m.ready) == 0 {
					continue
				}
				// First ready thread compatible with this core (FIFO
				// among compatible threads; pinned threads wait for
				// their core).
				picked := -1
				for k, t := range m.ready {
					if t.pinned == -1 || t.pinned == i {
						picked = k
						break
					}
				}
				if picked < 0 {
					continue
				}
				t := m.ready[picked]
				m.ready = append(m.ready[:picked], m.ready[picked+1:]...)
				m.assignPlaced = true
				if next := m.startOn(i, t); next != nil {
					m.assignIdx = i + 1
					return next
				}
			}
			if m.assignPlaced && m.err == nil {
				m.assignPlaced = false
				m.assignIdx = 0
				continue
			}
			m.phase = phEvents

		case phEvents:
			if m.live == 0 || m.err != nil {
				return nil
			}
			if m.events.Len() == 0 {
				if m.anyRunnable() {
					m.phase = phTop
					continue
				}
				m.fail(m.deadlockError())
				return nil
			}
			if max := m.cfg.MaxEvents; max > 0 && m.stats.Events >= max {
				m.fail(&BudgetError{Time: m.now, Events: m.stats.Events, MaxEvents: max, MaxTime: m.cfg.MaxVirtualTime})
				return nil
			}
			if maxT := m.cfg.MaxVirtualTime; maxT > 0 && m.now >= maxT {
				m.fail(&BudgetError{Time: m.now, Events: m.stats.Events, MaxEvents: m.cfg.MaxEvents, MaxTime: maxT})
				return nil
			}
			// Poll the context every 4096 events: often enough to meet a
			// deadline, rare enough to stay off the hot path.
			if m.stats.Events&0xfff == 0 {
				if err := m.ctx.Err(); err != nil {
					m.fail(fmt.Errorf("sim: run aborted at t=%d after %d events: %w", m.now, m.stats.Events, err))
					return nil
				}
			}
			e := m.events.Pop()
			m.stats.Events++
			m.phase = phTop
			if e.wake != nil {
				if e.time > m.now {
					m.now = e.time
				}
				m.makeReady(e.wake)
				continue
			}
			c := &m.cores[e.core]
			if c.gen != e.gen || c.running == nil {
				continue // stale event from a cancelled slice
			}
			if e.time > m.now {
				m.now = e.time
			}
			if next := m.sliceEnd(e.core); next != nil {
				return next
			}
		}
	}
}

func (m *Machine) anyRunnable() bool {
	return len(m.ready) > 0
}

// quantumFor yields the scheduling quantum for a fresh slice on core i,
// applying the fault-injection jitter hook when installed.
func (m *Machine) quantumFor(i int) clock.Cycles {
	q := m.cfg.Quantum
	if m.faults != nil && m.faults.Quantum != nil {
		if jq := m.faults.Quantum(i, q); jq > 0 {
			q = jq
		}
	}
	return q
}

// startOn places thread t on core i with a fresh quantum and either starts
// its pending work slice (nil return) or asks the caller to resume its
// code (t returned).
func (m *Machine) startOn(i int, t *Thread) *Thread {
	if m.tracer != nil {
		m.tracer.Exec(obs.ExecEvent{Kind: obs.KSchedule, Time: m.now, Core: i, Thread: t.id, Lock: -1})
	}
	c := &m.cores[i]
	c.running = t
	c.quantumLeft = m.quantumFor(i)
	t.state = stateRunning
	t.core = i
	t.now = m.now
	var overhead clock.Cycles
	if c.lastThread != t && c.lastThread != nil {
		overhead = m.cfg.ContextSwitch
	}
	c.lastThread = t
	if t.instrLeft > 0 || t.missesLeft > 0 {
		m.startSlice(i, overhead)
		return nil
	}
	if overhead > 0 {
		// Pay the switch cost before the thread continues.
		t.instrLeft = 0
		m.scheduleSlice(i, overhead, 0)
		return nil
	}
	return t
}

// startSlice begins (or continues) the thread's current work request on
// core i, computing the slice duration under the current DRAM contention.
func (m *Machine) startSlice(i int, overhead clock.Cycles) {
	c := &m.cores[i]
	t := c.running
	if c.speed != 1 {
		// Asymmetric machines take a separate path so the speed-1 math
		// below stays literally the pre-spec code (byte-identical
		// timing on every homogeneous machine, westmere12 included).
		m.startSliceScaled(i, overhead)
		return
	}
	stretch := 1.0
	if t.missesLeft > 0 {
		if m.demandOK && t.instrLeft == m.demandInstr && t.missesLeft == m.demandMisses {
			t.demand = m.demandVal
		} else {
			t.demand = m.cfg.DRAM.UnconstrainedDemand(t.instrLeft, t.missesLeft)
			m.demandInstr, m.demandMisses, m.demandVal, m.demandOK = t.instrLeft, t.missesLeft, t.demand, true
		}
		m.dram.RegisterDom(int(c.dom), t.demand)
		stretch = m.dram.StretchDom(int(c.dom))
	}
	total := t.instrLeft + t.missesLeft*m.cfg.DRAM.UnloadedLatency*stretch
	dur := clock.Cycles(total + 0.5)
	if dur < 1 {
		dur = 1
	}
	work := dur
	if q := c.quantumLeft; work > q {
		work = q
	}
	m.scheduleSlice(i, overhead, work)
	t.sliceWork = work
	t.sliceDur = dur
}

// startSliceScaled is startSlice for a core whose speed ratio is not 1:
// the instruction portion of the segment retires speed× faster (so a
// half-rate efficiency core takes twice the cycles), while memory stalls
// stay on the nominal clock — which also raises (or lowers) the
// unconstrained DRAM demand the segment generates. The demand memo is
// bypassed: it is keyed on the segment alone and would alias segments
// running on cores of different speeds.
func (m *Machine) startSliceScaled(i int, overhead clock.Cycles) {
	c := &m.cores[i]
	t := c.running
	sp := c.speed
	stretch := 1.0
	if t.missesLeft > 0 {
		t.demand = m.cfg.DRAM.UnconstrainedDemand(t.instrLeft/sp, t.missesLeft)
		m.dram.RegisterDom(int(c.dom), t.demand)
		stretch = m.dram.StretchDom(int(c.dom))
	}
	total := t.instrLeft/sp + t.missesLeft*m.cfg.DRAM.UnloadedLatency*stretch
	dur := clock.Cycles(total + 0.5)
	if dur < 1 {
		dur = 1
	}
	work := dur
	if q := c.quantumLeft; work > q {
		work = q
	}
	m.scheduleSlice(i, overhead, work)
	t.sliceWork = work
	t.sliceDur = dur
}

// scheduleSlice arms the slice-end event for core i after overhead+work
// cycles.
func (m *Machine) scheduleSlice(i int, overhead, work clock.Cycles) {
	c := &m.cores[i]
	c.gen++
	m.seq++
	m.events.Push(event{time: m.now + overhead + work, seq: m.seq, core: i, gen: c.gen})
}

// sliceEnd handles the expiry of core i's current slice: work progress is
// booked, and the thread either continues, is preempted, or — when t is
// returned — must resume its code.
func (m *Machine) sliceEnd(i int) *Thread {
	c := &m.cores[i]
	t := c.running
	if t.demand > 0 {
		m.dram.UnregisterDom(int(c.dom), t.demand)
		t.demand = 0
	}
	work := t.sliceWork
	t.sliceWork = 0
	m.stats.BusyCycles += work
	if m.recorder != nil {
		m.recorder.record(i, t.id, m.now-work, m.now)
	}
	if m.tracer != nil && work > 0 {
		m.tracer.Exec(obs.ExecEvent{Kind: obs.KSlice, Time: m.now - work, End: m.now, Core: i, Thread: t.id, Lock: -1})
	}
	c.quantumLeft -= work
	if t.sliceDur > 0 && work > 0 {
		frac := float64(work) / float64(t.sliceDur)
		if frac > 1 {
			frac = 1
		}
		di := t.instrLeft * frac
		dm := t.missesLeft * frac
		t.instrLeft -= di
		t.missesLeft -= dm
		m.stats.Instructions += di
		m.stats.Misses += dm
	}
	t.sliceDur = 0
	t.now = m.now
	const eps = 0.5
	if t.instrLeft < eps && t.missesLeft < eps {
		t.instrLeft, t.missesLeft = 0, 0
		return t
	}
	if c.quantumLeft <= 0 {
		if len(m.ready) > 0 {
			// Preempt: back of the ready queue.
			m.stats.Preemptions++
			if m.tracer != nil {
				m.tracer.Exec(obs.ExecEvent{Kind: obs.KPreempt, Time: m.now, Core: i, Thread: t.id, Lock: -1})
			}
			c.running = nil
			m.makeReady(t)
			return nil
		}
		c.quantumLeft = m.quantumFor(i)
	}
	m.startSlice(i, 0)
	return nil
}

// handle processes one request; it returns true when the requesting thread
// no longer runs synchronously (parked, working, or exited).
func (m *Machine) handle(req request) bool {
	t := req.t
	switch req.kind {
	case opWork:
		if req.instr <= 0 && req.misses <= 0 {
			return false
		}
		t.instrLeft = req.instr
		t.missesLeft = req.misses
		m.startSlice(t.core, 0)
		return true

	case opLock:
		l := m.lock(req.lock)
		if l.owner == nil {
			l.owner = t
			if m.tracer != nil {
				m.tracer.Exec(obs.ExecEvent{Kind: obs.KLockAcquire, Time: m.now, Core: t.core, Thread: t.id, Lock: req.lock})
			}
			return false
		}
		if m.tracer != nil {
			m.tracer.Exec(obs.ExecEvent{Kind: obs.KLockBlocked, Time: m.now, Core: t.core, Thread: t.id, Lock: req.lock})
		}
		l.waiters = append(l.waiters, t)
		m.block(t)
		return true

	case opUnlock:
		l := m.lock(req.lock)
		if l.owner != t {
			// Double unlock / unlock-without-lock: a buggy annotated
			// program must never crash the host process — abort the
			// run with the same typed error path as deadlock.
			m.fail(&LockMisuseError{Time: m.now, Thread: t.id, Lock: req.lock, Owner: ownerID(l.owner)})
			return true
		}
		if m.tracer != nil {
			m.tracer.Exec(obs.ExecEvent{Kind: obs.KLockRelease, Time: m.now, Core: t.core, Thread: t.id, Lock: req.lock})
		}
		if len(l.waiters) > 0 {
			next := l.waiters[0]
			l.waiters = l.waiters[1:]
			l.owner = next
			if m.tracer != nil {
				// Direct handoff: the waiter owns the lock from now on,
				// though it resumes on a core later.
				m.tracer.Exec(obs.ExecEvent{Kind: obs.KLockAcquire, Time: m.now, Core: -1, Thread: next.id, Lock: req.lock})
			}
			m.makeReady(next)
		} else {
			l.owner = nil
		}
		return false

	case opSpawn:
		nt := m.newThread(req.fn)
		if m.tracer != nil {
			m.tracer.Exec(obs.ExecEvent{Kind: obs.KSpawn, Time: m.now, Core: t.core, Thread: nt.id, Lock: -1})
		}
		m.makeReady(nt)
		t.spawned = nt
		return false

	case opJoin:
		o := req.other
		if o.state == stateExited {
			return false
		}
		o.joiners = append(o.joiners, t)
		m.block(t)
		return true

	case opPark:
		if t.parkToken {
			t.parkToken = false
			return false
		}
		m.block(t)
		t.inPark = true
		return true

	case opUnpark:
		o := req.other
		if o.state == stateBlocked && o.blockedInPark() {
			m.makeReady(o)
		} else {
			o.parkToken = true
		}
		return false

	case opYield:
		if len(m.ready) == 0 {
			return false
		}
		c := &m.cores[t.core]
		c.running = nil
		m.makeReady(t)
		return true

	case opSleep:
		// Timed block without a core (I/O wait): wake at now + d.
		d := clock.Cycles(req.instr)
		if d <= 0 {
			return false
		}
		m.block(t)
		m.seq++
		m.events.Push(event{time: m.now + d, seq: m.seq, wake: t})
		return true

	case opExit:
		if m.tracer != nil {
			m.tracer.Exec(obs.ExecEvent{Kind: obs.KExit, Time: m.now, Core: t.core, Thread: t.id, Lock: -1})
		}
		t.state = stateExited
		m.live--
		if m.now > m.end {
			m.end = m.now
		}
		for _, j := range t.joiners {
			m.makeReady(j)
		}
		t.joiners = t.joiners[:0]
		m.cores[t.core].running = nil
		return true

	case opPanic:
		// A thread function panicked: surface it as an error and stop.
		m.fail(&InternalError{Value: req.panicVal, Stack: req.stack})
		t.state = stateExited
		m.live--
		if t.core >= 0 {
			m.cores[t.core].running = nil
		}
		return true
	}
	panic("sim: unknown request kind")
}

// block removes t from its core and marks it blocked.
func (m *Machine) block(t *Thread) {
	if m.tracer != nil {
		m.tracer.Exec(obs.ExecEvent{Kind: obs.KBlock, Time: m.now, Core: t.core, Thread: t.id, Lock: -1})
	}
	m.cores[t.core].running = nil
	t.state = stateBlocked
	t.core = -1
}

func (m *Machine) lock(id int) *lockState {
	l := m.locks[id]
	if l == nil {
		if n := len(m.lockFree); n > 0 {
			l = m.lockFree[n-1]
			m.lockFree = m.lockFree[:n-1]
		} else {
			l = &lockState{}
		}
		m.locks[id] = l
	}
	return l
}

func ownerID(t *Thread) int {
	if t == nil {
		return -1
	}
	return t.id
}

// blockedInPark distinguishes a parked thread from one blocked on a lock or
// join. A thread blocked on a lock is woken by direct handoff, never by
// Unpark, so the distinction only needs to be "not in any wait list". The
// engine keeps it simple: lock/join waiters are recorded in those
// structures, and Unpark consults this flag set by opPark.
func (t *Thread) blockedInPark() bool { return t.inPark }
