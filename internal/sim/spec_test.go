package sim

import (
	"testing"

	"prophet/internal/clock"
	"prophet/internal/machine"
	"prophet/internal/mem"
)

// specFor builds a validated homogeneous spec mirroring the flat config
// the legacy tests use.
func specFor(t *testing.T, name string, groups []machine.CoreGroup, dram machine.DRAMSpec) *machine.Spec {
	t.Helper()
	s := &machine.Spec{
		Name:          name,
		CoreGroups:    groups,
		Quantum:       50_000,
		ContextSwitch: 1_000,
		LLC:           machine.LLCSpec{SizeBytes: 12 << 20, Ways: 16, LineBytes: 64},
		DRAM:          dram,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// memWorkload spawns n threads mixing compute, memory traffic and lock
// traffic — enough machinery (preemption, DRAM contention, FIFO handoff)
// to distinguish machines that differ in any dimension.
func memWorkload(n int) func(*Thread) {
	return func(m *Thread) {
		ws := make([]*Thread, 0, n)
		for k := 0; k < n; k++ {
			ws = append(ws, m.Spawn(func(w *Thread) {
				for i := 0; i < 40; i++ {
					w.WorkMem(20_000, 300)
					w.Lock(1)
					w.Work(500)
					w.Unlock(1)
				}
			}))
		}
		for _, w := range ws {
			m.Join(w)
		}
	}
}

// TestSpecVsFlatConfigIdentity is the wrapper-vs-spec contract: a run
// against Config{Spec: westmere12} must be byte-identical (makespan and
// every stat) to the same run against the legacy flat default config —
// the flat knobs are now a wrapper over the spec, not a second truth.
func TestSpecVsFlatConfigIdentity(t *testing.T) {
	flat := Config{} // all defaults: the historical paper machine
	spec := Config{Spec: machine.Default()}

	fe, fs, err := RunOpt(flat, RunOpts{}, memWorkload(16))
	if err != nil {
		t.Fatal(err)
	}
	se, ss, err := RunOpt(spec, RunOpts{}, memWorkload(16))
	if err != nil {
		t.Fatal(err)
	}
	if fe != se {
		t.Errorf("makespan differs: flat %d vs spec %d", fe, se)
	}
	if fs != ss {
		t.Errorf("stats differ: flat %+v vs spec %+v", fs, ss)
	}

	// The normalized views agree on every derived knob.
	nf, ns := flat.Normalized(), spec.Normalized()
	if nf.Cores != ns.Cores || nf.Quantum != ns.Quantum || nf.ContextSwitch != ns.ContextSwitch || nf.DRAM != ns.DRAM {
		t.Errorf("Normalized differs: flat %+v vs spec %+v", nf, ns)
	}
}

// TestSpecContextSwitchZeroNotRewritten: a spec with ContextSwitch 0
// means genuinely free switches — unlike the legacy flat config, where 0
// selects the 1000-cycle default. This is the default-coupling fix: spec
// fields are never silently rewritten.
func TestSpecContextSwitchZeroNotRewritten(t *testing.T) {
	s := specFor(t, "t-freecs",
		[]machine.CoreGroup{{Count: 2, Speed: 1}},
		machine.DRAMSpec{UnloadedLatency: 40, BandwidthBytesPerCycle: 8, Knee: 0.75})
	s.ContextSwitch = 0
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	n := Config{Spec: s}.Normalized()
	if n.ContextSwitch != 0 {
		t.Fatalf("spec ContextSwitch 0 normalized to %d, want 0 (not rewritten)", n.ContextSwitch)
	}
	if legacy := (Config{}).Normalized(); legacy.ContextSwitch != 1_000 {
		t.Fatalf("legacy zero ContextSwitch = %d, want the 1000-cycle default", legacy.ContextSwitch)
	}
	// And the run-mode override still works on top of a spec.
	if n := (Config{Spec: machine.Default(), ContextSwitch: -1}).Normalized(); n.ContextSwitch != 0 {
		t.Fatalf("ContextSwitch -1 with spec = %d, want 0 (disabled)", n.ContextSwitch)
	}
}

// TestAsymmetricCoreSpeeds: on a big.LITTLE machine, the same serial work
// takes 1/speed as long on a fast core and speed× longer on a slow one.
func TestAsymmetricCoreSpeeds(t *testing.T) {
	s := specFor(t, "t-biglittle",
		[]machine.CoreGroup{{Count: 1, Speed: 2}, {Count: 1, Speed: 0.5}},
		machine.DRAMSpec{UnloadedLatency: 40, BandwidthBytesPerCycle: 8, Knee: 0.75})
	s.ContextSwitch = 0

	// Placement is deterministic: main starts on core 0 (the 2x core),
	// so the spawned worker lands on core 1 (the 0.5x core). 100k of
	// work takes 50k cycles at speed 2 and 200k at speed 0.5.
	var fastEnd, slowEnd clock.Cycles
	end, _, err := RunOpt(Config{Spec: s}, RunOpts{}, func(m *Thread) {
		slow := m.Spawn(func(w *Thread) { w.Work(100_000); slowEnd = w.Now() })
		m.Work(100_000)
		fastEnd = m.Now()
		m.Join(slow)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fastEnd != 50_000 {
		t.Errorf("fast-core 100k work finished at %d, want 50000", fastEnd)
	}
	if slowEnd != 200_000 {
		t.Errorf("slow-core 100k work finished at %d, want 200000", slowEnd)
	}
	if end != 200_000 {
		t.Errorf("makespan = %d, want 200000 (bounded by the slow core)", end)
	}
}

// TestAsymmetricDeterminism: asymmetric runs are as deterministic as
// homogeneous ones.
func TestAsymmetricDeterminism(t *testing.T) {
	s := specFor(t, "t-asymdet",
		[]machine.CoreGroup{{Count: 2, Speed: 1}, {Count: 2, Speed: 0.5}},
		machine.DRAMSpec{UnloadedLatency: 40, BandwidthBytesPerCycle: 4, Knee: 0.75})
	var ends []clock.Cycles
	var stats []Stats
	for i := 0; i < 3; i++ {
		e, st, err := RunOpt(Config{Spec: s}, RunOpts{}, memWorkload(8))
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, e)
		stats = append(stats, st)
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] != ends[0] || stats[i] != stats[0] {
			t.Fatalf("run %d differs: end %d vs %d, stats %+v vs %+v", i, ends[i], ends[0], stats[i], stats[0])
		}
	}
}

// TestSecondDomainIsolatesBandwidth: with the machine split into two
// bandwidth domains, streaming threads in one domain do not stretch the
// other; on the equivalent single-bus machine with the same per-domain
// bandwidth, they do.
func TestSecondDomainIsolatesBandwidth(t *testing.T) {
	stream := func(w *Thread) {
		for i := 0; i < 50; i++ {
			w.WorkMem(1_000, 2_000) // far past saturation of a 4 B/cycle bus
		}
	}
	run := func(dram machine.DRAMSpec) clock.Cycles {
		s := specFor(t, "t-numa", []machine.CoreGroup{{Count: 4, Speed: 1}}, dram)
		s.ContextSwitch = 0
		end, _, err := RunOpt(Config{Spec: s}, RunOpts{}, func(m *Thread) {
			var ws []*Thread
			for k := 0; k < 4; k++ {
				k := k
				ws = append(ws, m.Spawn(func(w *Thread) { w.Pin(k); stream(w) }))
			}
			for _, w := range ws {
				m.Join(w)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}

	single := run(machine.DRAMSpec{UnloadedLatency: 40, BandwidthBytesPerCycle: 4, Knee: 0.75})
	split := run(machine.DRAMSpec{
		UnloadedLatency: 40, BandwidthBytesPerCycle: 4, Knee: 0.75,
		SecondDomain: &machine.DRAMDomain{BandwidthBytesPerCycle: 4, Cores: 2},
	})
	if split >= single {
		t.Errorf("two-domain makespan %d not faster than single 4 B/cycle bus %d", split, single)
	}

	// Doubling the single bus to the split machine's aggregate bandwidth
	// should recover (roughly) the same makespan: all four streamers are
	// identical, so the halves are symmetric.
	wide := run(machine.DRAMSpec{UnloadedLatency: 40, BandwidthBytesPerCycle: 8, Knee: 0.75})
	ratio := float64(split) / float64(wide)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("split-domain makespan %d vs aggregate-bandwidth bus %d (ratio %.3f), want within 10%%", split, wide, ratio)
	}
}

// TestSpecPooledReset: a pooled machine reused across runs with different
// specs re-derives speeds and domains each time — the embedded result
// must not depend on a westmere run having warmed the pool first.
func TestSpecPooledReset(t *testing.T) {
	little := specFor(t, "t-little",
		[]machine.CoreGroup{{Count: 2, Speed: 1}, {Count: 2, Speed: 0.5}},
		machine.DRAMSpec{UnloadedLatency: 60, BandwidthBytesPerCycle: 2, Knee: 0.7})

	coldEnd, coldStats, err := RunOpt(Config{Spec: little}, RunOpts{}, memWorkload(8))
	if err != nil {
		t.Fatal(err)
	}
	// Interleave runs on other machines so the pooled instance is reset
	// across specs, then repeat the little run on the warmed pool.
	for i := 0; i < 3; i++ {
		if _, _, err := RunOpt(Config{Spec: machine.Default()}, RunOpts{}, memWorkload(8)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := RunOpt(Config{Cores: 3, DRAM: mem.DefaultDRAM()}, RunOpts{}, memWorkload(4)); err != nil {
			t.Fatal(err)
		}
		warmEnd, warmStats, err := RunOpt(Config{Spec: little}, RunOpts{}, memWorkload(8))
		if err != nil {
			t.Fatal(err)
		}
		if warmEnd != coldEnd || warmStats != coldStats {
			t.Fatalf("pooled reset leaked machine state: cold (%d, %+v) vs warm (%d, %+v)",
				coldEnd, coldStats, warmEnd, warmStats)
		}
	}
}
