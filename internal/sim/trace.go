package sim

import (
	"fmt"
	"io"
	"sort"

	"prophet/internal/clock"
)

// Recorder captures per-core execution intervals of a machine run, for
// debugging schedules and rendering timelines (the view Fig. 5's boxes and
// Fig. 7's CPU lanes draw by hand).
//
// Deprecated: Recorder is the write-only legacy capture path — it sees
// work slices but not scheduling or lock events, and offers no machine-
// readable export. New code should attach an obs.ExecTracer (e.g.
// *obs.TraceBuffer, exportable as Chrome trace JSON) via RunOpts.Tracer.
// Recorder remains supported as the backend of the text Gantt rendering.
type Recorder struct {
	// Intervals are work slices in completion order.
	Intervals []Interval
}

// Interval is one executed work slice.
type Interval struct {
	Core   int
	Thread int
	Start  clock.Cycles
	End    clock.Cycles
}

// record appends one slice (called by the engine at slice end).
func (r *Recorder) record(core, thread int, start, end clock.Cycles) {
	if end <= start {
		return
	}
	r.Intervals = append(r.Intervals, Interval{Core: core, Thread: thread, Start: start, End: end})
}

// BusyCycles sums the recorded slice durations.
func (r *Recorder) BusyCycles() clock.Cycles {
	var total clock.Cycles
	for _, iv := range r.Intervals {
		total += iv.End - iv.Start
	}
	return total
}

// Makespan returns the latest recorded end time.
func (r *Recorder) Makespan() clock.Cycles {
	var end clock.Cycles
	for _, iv := range r.Intervals {
		if iv.End > end {
			end = iv.End
		}
	}
	return end
}

// Utilization returns each core's busy fraction of the makespan (0 when
// nothing was recorded) — the machine-level view behind speedup numbers:
// a saturated memory-bound run shows high busy fractions with low speedup,
// an I/O-bound run the opposite.
func (r *Recorder) Utilization() map[int]float64 {
	span := r.Makespan()
	out := map[int]float64{}
	if span == 0 {
		return out
	}
	for _, iv := range r.Intervals {
		out[iv.Core] += float64(iv.End-iv.Start) / float64(span)
	}
	return out
}

// PerCore groups intervals by core, each sorted by start time.
func (r *Recorder) PerCore() map[int][]Interval {
	out := map[int][]Interval{}
	for _, iv := range r.Intervals {
		out[iv.Core] = append(out[iv.Core], iv)
	}
	for _, list := range out {
		sort.Slice(list, func(i, j int) bool { return list[i].Start < list[j].Start })
	}
	return out
}

// Gantt renders a text timeline, one row per core, width columns wide.
// Each cell shows the thread (0-9, then a-z, then '#') that occupied the
// core for the majority of that time bucket; '.' is idle.
func (r *Recorder) Gantt(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	span := r.Makespan()
	if span == 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	perCore := r.PerCore()
	cores := make([]int, 0, len(perCore))
	for c := range perCore {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	if _, err := fmt.Fprintf(w, "timeline: %d cycles, %d cores, '.'=idle\n", span, len(cores)); err != nil {
		return err
	}
	for _, c := range cores {
		row := make([]byte, width)
		occupancy := make([]clock.Cycles, width)
		owner := make([]int, width)
		for i := range row {
			row[i] = '.'
			owner[i] = -1
		}
		bucket := float64(span) / float64(width)
		for _, iv := range perCore[c] {
			lo := int(float64(iv.Start) / bucket)
			hi := int(float64(iv.End) / bucket)
			if hi >= width {
				hi = width - 1
			}
			for b := lo; b <= hi; b++ {
				bLo := clock.Cycles(float64(b) * bucket)
				bHi := clock.Cycles(float64(b+1) * bucket)
				ov := minC(iv.End, bHi) - maxC(iv.Start, bLo)
				if ov > occupancy[b] {
					occupancy[b] = ov
					owner[b] = iv.Thread
				}
			}
		}
		for i, o := range owner {
			if o >= 0 {
				row[i] = threadGlyph(o)
			}
		}
		if _, err := fmt.Fprintf(w, "core %2d |%s|\n", c, row); err != nil {
			return err
		}
	}
	return nil
}

func threadGlyph(id int) byte {
	switch {
	case id < 10:
		return byte('0' + id)
	case id < 36:
		return byte('a' + id - 10)
	default:
		return '#'
	}
}

func minC(a, b clock.Cycles) clock.Cycles {
	if a < b {
		return a
	}
	return b
}

func maxC(a, b clock.Cycles) clock.Cycles {
	if a > b {
		return a
	}
	return b
}

// RunTraced is Run with a Recorder attached: every executed work slice is
// captured for later rendering. Like Run, it panics on simulation errors;
// error-tolerant callers use RunOpt with a Recorder.
func RunTraced(cfg Config, rec *Recorder, main func(*Thread)) (clock.Cycles, Stats) {
	end, stats, err := RunOpt(cfg, RunOpts{Recorder: rec}, main)
	if err != nil {
		panic(err)
	}
	return end, stats
}
