package sim

import "prophet/internal/clock"

// The methods in this file form the API that code running *inside* a
// virtual thread uses. Each call hands control to the engine, which may
// advance virtual time, preempt the thread, or block it; the call returns
// when the engine schedules the thread again.

// call hands one request to the engine. The calling goroutine holds the
// baton, so the request is handled inline: when the thread keeps running
// the call returns immediately (no goroutine switch at all), otherwise the
// goroutine drives the engine onward and parks until resumed (see
// Machine.handoff). When the engine aborts the run (deadlock, misuse,
// budget, cancellation), call unwinds the thread goroutine with a private
// panic that the wrapper installed by newThread recovers.
func (t *Thread) call(req request) {
	req.t = t
	if t.m.handle(req) {
		t.m.handoff(t)
	}
}

// Work consumes c cycles of pure computation (no memory traffic). It is the
// simulator's FakeDelay: time passes, caches and DRAM are untouched
// (§IV-E). The work is preemptible at quantum boundaries.
func (t *Thread) Work(c clock.Cycles) {
	if c <= 0 {
		return
	}
	t.call(request{kind: opWork, instr: float64(c)})
}

// WorkMem consumes instrCycles cycles of computation interleaved with
// misses LLC misses. The memory portion dilates under DRAM contention, so
// the elapsed virtual time is at least instrCycles + misses·ω₀ and grows
// when other threads are streaming (§V's ground truth).
func (t *Thread) WorkMem(instrCycles clock.Cycles, misses int64) {
	if instrCycles <= 0 && misses <= 0 {
		return
	}
	t.call(request{kind: opWork, instr: float64(instrCycles), misses: float64(misses)})
}

// Lock acquires the FIFO mutex id, blocking (and freeing the core) while
// another thread holds it. Handoff is direct: the longest waiter becomes
// the owner the moment the lock is released.
func (t *Thread) Lock(id int) {
	t.call(request{kind: opLock, lock: id})
}

// Unlock releases the mutex id. Unlocking a mutex the thread does not own
// panics (a bug in the runtime layer).
func (t *Thread) Unlock(id int) {
	t.call(request{kind: opUnlock, lock: id})
}

// Spawn creates a new thread running f and returns it. The new thread is
// ready immediately and will run as soon as a core is free (or at the next
// quantum boundary under oversubscription).
func (t *Thread) Spawn(f func(*Thread)) *Thread {
	t.call(request{kind: opSpawn, fn: f})
	nt := t.spawned
	t.spawned = nil
	return nt
}

// Join blocks until o has exited. Joining an already-exited thread returns
// immediately.
func (t *Thread) Join(o *Thread) {
	t.call(request{kind: opJoin, other: o})
}

// Park blocks the thread until another thread calls Unpark on it. A pending
// Unpark delivered before Park consumes the token and returns immediately
// (the usual one-token semantics, so wakeups are never lost).
func (t *Thread) Park() {
	t.call(request{kind: opPark})
}

// Unpark wakes o from Park, or banks a token if o is not parked.
func (t *Thread) Unpark(o *Thread) {
	t.call(request{kind: opUnpark, other: o})
}

// Yield gives up the core to the next ready thread, if any, and re-enters
// the tail of the ready queue.
func (t *Thread) Yield() {
	t.call(request{kind: opYield})
}

// Sleep blocks the thread for d cycles WITHOUT occupying a core — the
// machine-level primitive behind I/O waits (tree.W nodes): other threads
// run while this one sleeps. Sleep(0) and negative durations return
// immediately.
func (t *Thread) Sleep(d clock.Cycles) {
	t.call(request{kind: opSleep, instr: float64(d)})
}

// Pin restricts the thread to one core (sched_setaffinity; the paper pins
// its tracer thread to stabilize rdtsc, §VI-A). It takes effect at the
// next scheduling decision: a running thread finishes its current slice
// where it is, then only ever runs on the pinned core. Pin(-1) clears the
// affinity. Out-of-range cores are clamped. The field is only read by the
// engine while this thread is suspended, so no engine round trip is
// needed.
func (t *Thread) Pin(core int) {
	if core >= len(t.m.cores) {
		core = len(t.m.cores) - 1
	}
	if core < -1 {
		core = -1
	}
	t.pinned = core
}

// Pinned returns the core this thread is pinned to, or -1.
func (t *Thread) Pinned() int { return t.pinned }
