package sim

import (
	"math/rand"
	"testing"

	"prophet/internal/clock"
)

// TestWorkMemSplitsAcrossQuanta: a memory segment longer than the quantum
// must be chunked, with contention re-evaluated per chunk — total misses
// are conserved either way.
func TestWorkMemSplitsAcrossQuanta(t *testing.T) {
	c := cfg(1)
	c.Quantum = 1_000 // tiny quantum: many chunks
	end, st := Run(c, func(th *Thread) {
		th.WorkMem(10_000, 500)
	})
	want := clock.Cycles(10_000 + 500*40)
	// Chunked rounding may add a cycle per chunk.
	if end < want || end > want+clock.Cycles(end/1_000)+50 {
		t.Fatalf("chunked WorkMem = %d, want ~%d", end, want)
	}
	if st.Misses < 499.5 || st.Misses > 500.5 {
		t.Fatalf("misses not conserved: %g", st.Misses)
	}
}

// TestPreemptedMemWorkReleasesBandwidth: while a memory-bound thread is
// preempted it must not count toward DRAM demand; a compute thread
// time-sharing the core doesn't change the streamer's total memory time.
func TestPreemptedMemWorkReleasesBandwidth(t *testing.T) {
	c := cfg(1)
	end, _ := Run(c, func(th *Thread) {
		w := th.Spawn(func(w *Thread) { w.WorkMem(0, 5_000) }) // 200k cycles of misses
		th.Work(100_000)
		th.Join(w)
	})
	// Serialized on one core: 100k + 200k = 300k (no self-contention).
	if end < 300_000 || end > 302_000 {
		t.Fatalf("makespan = %d, want ~300000", end)
	}
}

// TestLockChain: a chain of threads each holding two locks in order must
// serialize correctly without deadlock (same acquisition order).
func TestLockChain(t *testing.T) {
	end, _ := Run(cfg(4), func(th *Thread) {
		var ws []*Thread
		for i := 0; i < 4; i++ {
			ws = append(ws, th.Spawn(func(w *Thread) {
				w.Lock(1)
				w.Work(1_000)
				w.Lock(2)
				w.Work(1_000)
				w.Unlock(2)
				w.Unlock(1)
			}))
		}
		for _, w := range ws {
			th.Join(w)
		}
	})
	// Lock 1 serializes everything: 4 * 2000.
	if end != 8_000 {
		t.Fatalf("makespan = %d, want 8000", end)
	}
}

// TestStatsFields: busy cycles and events are populated and consistent.
func TestStatsFields(t *testing.T) {
	_, st := Run(cfg(2), func(th *Thread) {
		w := th.Spawn(func(w *Thread) { w.Work(30_000) })
		th.Work(30_000)
		th.Join(w)
	})
	if st.BusyCycles != 60_000 {
		t.Fatalf("busy = %d, want 60000", st.BusyCycles)
	}
	if st.Events == 0 {
		t.Fatal("no events recorded")
	}
}

// TestQuantumRefreshWithoutWaiters: a lone thread must not be preempted.
func TestQuantumRefreshWithoutWaiters(t *testing.T) {
	c := cfg(1)
	c.Quantum = 100
	_, st := Run(c, func(th *Thread) { th.Work(1_000_000) })
	if st.Preemptions != 0 {
		t.Fatalf("lone thread preempted %d times", st.Preemptions)
	}
}

// Property: for pure-compute fork/join programs, total/P <= makespan <=
// total, and instructions are conserved, across random shapes.
func TestMakespanBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		cores := 1 + rng.Intn(8)
		n := 1 + rng.Intn(20)
		var total clock.Cycles
		lens := make([]clock.Cycles, n)
		for i := range lens {
			lens[i] = clock.Cycles(1_000 * (1 + rng.Intn(50)))
			total += lens[i]
		}
		end, st := Run(cfg(cores), func(th *Thread) {
			var ws []*Thread
			for _, l := range lens {
				l := l
				ws = append(ws, th.Spawn(func(w *Thread) { w.Work(l) }))
			}
			for _, w := range ws {
				th.Join(w)
			}
		})
		lower := total / clock.Cycles(cores)
		if end < lower {
			t.Fatalf("cores=%d: makespan %d < lower bound %d", cores, end, lower)
		}
		if end > total {
			t.Fatalf("cores=%d: makespan %d > serial %d", cores, end, total)
		}
		if clock.Cycles(st.Instructions) != total {
			t.Fatalf("instructions %g != total %d", st.Instructions, total)
		}
	}
}

// TestJoinMultipleWaiters: several threads joining the same target all
// wake.
func TestJoinMultipleWaiters(t *testing.T) {
	end, _ := Run(cfg(4), func(th *Thread) {
		target := th.Spawn(func(w *Thread) { w.Work(50_000) })
		var ws []*Thread
		for i := 0; i < 3; i++ {
			ws = append(ws, th.Spawn(func(w *Thread) {
				w.Join(target)
				w.Work(10_000)
			}))
		}
		for _, w := range ws {
			th.Join(w)
		}
	})
	// All three waiters run their 10k after the 50k target, in parallel.
	if end != 60_000 {
		t.Fatalf("makespan = %d, want 60000", end)
	}
}

// TestYieldNoReadyIsNoop: yielding with an empty ready queue keeps running.
func TestYieldNoReadyIsNoop(t *testing.T) {
	end, _ := Run(cfg(2), func(th *Thread) {
		th.Yield()
		th.Work(100)
	})
	if end != 100 {
		t.Fatalf("makespan = %d", end)
	}
}

// TestManyLocksIndependent: different lock ids never interfere. (9 cores:
// 8 workers plus the spawning main thread, so nobody time-slices.)
func TestManyLocksIndependent(t *testing.T) {
	end, _ := Run(cfg(9), func(th *Thread) {
		var ws []*Thread
		for i := 0; i < 8; i++ {
			id := i
			ws = append(ws, th.Spawn(func(w *Thread) {
				w.Lock(id)
				w.Work(20_000)
				w.Unlock(id)
			}))
		}
		for _, w := range ws {
			th.Join(w)
		}
	})
	if end != 20_000 {
		t.Fatalf("independent locks serialized: %d", end)
	}
}

// TestNormalizedConfig exposes the defaulted view used by callers.
func TestNormalizedConfig(t *testing.T) {
	n := (Config{}).Normalized()
	if n.Cores != 12 || n.Quantum != 50_000 || n.DRAM.UnloadedLatency != 40 {
		t.Fatalf("normalized = %+v", n)
	}
	n2 := (Config{ContextSwitch: -1}).Normalized()
	if n2.ContextSwitch != 0 {
		t.Fatalf("negative context switch not zeroed: %+v", n2)
	}
}

// TestSleepReleasesCore: a sleeping thread frees its core for others.
func TestSleepReleasesCore(t *testing.T) {
	end, st := Run(cfg(1), func(th *Thread) {
		w := th.Spawn(func(w *Thread) { w.Work(50_000) })
		th.Sleep(50_000) // core 0 free for w while main sleeps
		th.Join(w)
	})
	if end != 50_000 {
		t.Fatalf("makespan = %d, want 50000 (sleep overlapped work)", end)
	}
	if st.BusyCycles != 50_000 {
		t.Fatalf("busy = %d; sleep must not count as busy", st.BusyCycles)
	}
}

// TestSleepZeroNoop and ordering with events.
func TestSleepZeroNoop(t *testing.T) {
	end, _ := Run(cfg(1), func(th *Thread) {
		th.Sleep(0)
		th.Sleep(-10)
		th.Work(100)
		th.Sleep(900)
	})
	if end != 1_000 {
		t.Fatalf("makespan = %d, want 1000", end)
	}
}

// TestManySleepersWakeInOrder: staggered sleeps complete at their own
// deadlines.
func TestManySleepersWakeInOrder(t *testing.T) {
	var wakes []clock.Cycles
	Run(cfg(2), func(th *Thread) {
		var ws []*Thread
		for i := 3; i >= 1; i-- {
			d := clock.Cycles(i * 10_000)
			ws = append(ws, th.Spawn(func(w *Thread) {
				w.Sleep(d)
				wakes = append(wakes, w.Now()) // engine-serialized
			}))
		}
		for _, w := range ws {
			th.Join(w)
		}
	})
	if len(wakes) != 3 {
		t.Fatalf("wakes = %v", wakes)
	}
	for i := 1; i < len(wakes); i++ {
		if wakes[i] < wakes[i-1] {
			t.Fatalf("wake order wrong: %v", wakes)
		}
	}
	if wakes[0] != 10_000 || wakes[2] != 30_000 {
		t.Fatalf("wake times = %v", wakes)
	}
}
