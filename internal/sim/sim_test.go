package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"prophet/internal/clock"
	"prophet/internal/mem"
)

// cfg returns a test machine: cores as given, no context-switch cost so
// makespans are exact, quantum 10k cycles.
func cfg(cores int) Config {
	return Config{Cores: cores, Quantum: 10_000, ContextSwitch: -1, DRAM: mem.DefaultDRAM()}
}

func TestSingleThreadWork(t *testing.T) {
	end, st := Run(cfg(1), func(th *Thread) {
		th.Work(123_456)
	})
	if end != 123_456 {
		t.Fatalf("makespan = %d, want 123456", end)
	}
	if st.Instructions != 123_456 {
		t.Fatalf("instructions = %g, want 123456", st.Instructions)
	}
}

func TestWorkZeroIsNoop(t *testing.T) {
	end, _ := Run(cfg(1), func(th *Thread) {
		th.Work(0)
		th.Work(-5)
		th.WorkMem(0, 0)
	})
	if end != 0 {
		t.Fatalf("makespan = %d, want 0", end)
	}
}

func TestTwoThreadsTwoCoresParallel(t *testing.T) {
	end, _ := Run(cfg(2), func(th *Thread) {
		w := th.Spawn(func(w *Thread) { w.Work(80_000) })
		th.Work(50_000)
		th.Join(w)
	})
	if end != 80_000 {
		t.Fatalf("makespan = %d, want 80000 (parallel)", end)
	}
}

func TestOversubscriptionSerializes(t *testing.T) {
	end, st := Run(cfg(1), func(th *Thread) {
		w := th.Spawn(func(w *Thread) { w.Work(60_000) })
		th.Work(60_000)
		th.Join(w)
	})
	if end != 120_000 {
		t.Fatalf("makespan = %d, want 120000 (serialized)", end)
	}
	if st.Preemptions == 0 {
		t.Error("expected preemptions under oversubscription")
	}
}

func TestPreemptionInterleavesFairly(t *testing.T) {
	// Two 100k threads on one core with a 10k quantum: the FIRST to
	// finish must finish near 190k (fair slicing), not at 100k (FIFO
	// run-to-completion).
	var firstDone clock.Cycles
	Run(cfg(1), func(th *Thread) {
		w := th.Spawn(func(w *Thread) {
			w.Work(100_000)
			if firstDone == 0 {
				firstDone = w.Now()
			}
		})
		th.Work(100_000)
		if firstDone == 0 {
			firstDone = th.Now()
		}
		th.Join(w)
	})
	if firstDone < 180_000 {
		t.Fatalf("first thread finished at %d; want >= 180000 (time slicing)", firstDone)
	}
}

func TestNowAdvancesAcrossWork(t *testing.T) {
	Run(cfg(1), func(th *Thread) {
		if th.Now() != 0 {
			t.Errorf("initial Now = %d", th.Now())
		}
		th.Work(500)
		if th.Now() != 500 {
			t.Errorf("Now after Work(500) = %d", th.Now())
		}
	})
}

func TestLockMutualExclusionAndFIFO(t *testing.T) {
	// Three threads on three cores contend for one lock; critical
	// sections must serialize, and waiters acquire in arrival order.
	var order []int
	end, _ := Run(cfg(3), func(th *Thread) {
		mk := func(id int, arrive clock.Cycles) func(*Thread) {
			return func(w *Thread) {
				w.Work(arrive)
				w.Lock(1)
				order = append(order, id)
				w.Work(10_000)
				w.Unlock(1)
			}
		}
		a := th.Spawn(mk(1, 100))
		b := th.Spawn(mk(2, 200))
		c := th.Spawn(mk(3, 300))
		th.Join(a)
		th.Join(b)
		th.Join(c)
	})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("acquisition order = %v, want [1 2 3]", order)
	}
	// Serialized critical sections: 100 + 3*10000 = 30100.
	if end != 30_100 {
		t.Fatalf("makespan = %d, want 30100", end)
	}
}

func TestUnlockNotOwnerReturnsTypedError(t *testing.T) {
	_, _, err := RunCtx(context.Background(), cfg(1), func(th *Thread) {
		th.Unlock(7)
	})
	if !errors.Is(err, ErrLockMisuse) {
		t.Fatalf("expected ErrLockMisuse, got %v", err)
	}
	var me *LockMisuseError
	if !errors.As(err, &me) {
		t.Fatalf("expected *LockMisuseError, got %T", err)
	}
	if me.Lock != 7 || me.Thread != 0 || me.Owner != -1 {
		t.Fatalf("misuse diagnostic = %+v, want lock 7, thread 0, owner -1", me)
	}
	if !strings.Contains(err.Error(), "unlocks lock") {
		t.Fatalf("error text %q lacks the unlock description", err)
	}
}

func TestDoubleUnlockReturnsTypedError(t *testing.T) {
	_, _, err := RunCtx(context.Background(), cfg(1), func(th *Thread) {
		th.Lock(3)
		th.Unlock(3)
		th.Unlock(3) // double unlock: typed error, not a crash
	})
	if !errors.Is(err, ErrLockMisuse) {
		t.Fatalf("expected ErrLockMisuse, got %v", err)
	}
}

// RunLegacyPanicsOnError: the convenience Run keeps its panic contract for
// runtime-layer tests; library paths use RunCtx/RunOpt.
func TestRunLegacyPanicsOnError(t *testing.T) {
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrLockMisuse) {
			t.Fatalf("expected panic with ErrLockMisuse, got %v", r)
		}
	}()
	Run(cfg(1), func(th *Thread) { th.Unlock(7) })
}

func TestJoinAlreadyExited(t *testing.T) {
	end, _ := Run(cfg(2), func(th *Thread) {
		w := th.Spawn(func(w *Thread) { w.Work(10) })
		th.Work(50_000) // ensure w is long gone
		th.Join(w)      // must not block forever
	})
	if end != 50_000 {
		t.Fatalf("makespan = %d, want 50000", end)
	}
}

func TestParkUnparkToken(t *testing.T) {
	// Unpark before Park banks a token; Park then returns immediately.
	end, _ := Run(cfg(2), func(th *Thread) {
		var w *Thread
		w = th.Spawn(func(w2 *Thread) {
			w2.Work(10_000)
			w2.Park() // token already banked: no block
		})
		th.Unpark(w) // delivered long before the Park
		th.Join(w)
	})
	if end != 10_000 {
		t.Fatalf("makespan = %d, want 10000 (token consumed)", end)
	}
}

func TestParkBlocksUntilUnpark(t *testing.T) {
	end, _ := Run(cfg(2), func(th *Thread) {
		w := th.Spawn(func(w *Thread) {
			w.Park()
			w.Work(1_000)
		})
		th.Work(40_000)
		th.Unpark(w)
		th.Join(w)
	})
	if end != 41_000 {
		t.Fatalf("makespan = %d, want 41000", end)
	}
}

func TestDeadlockReturnsTypedError(t *testing.T) {
	// Classic two-thread lock cycle (A: 1 then 2, B: 2 then 1), run under a
	// 1s wall-clock deadline: the engine must detect the cycle, unwind, and
	// return a typed error with a wait graph — well before the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	_, _, err := RunCtx(ctx, cfg(2), func(th *Thread) {
		a := th.Spawn(func(w *Thread) {
			w.Lock(1)
			w.Work(10_000)
			w.Lock(2)
			w.Unlock(2)
			w.Unlock(1)
		})
		b := th.Spawn(func(w *Thread) {
			w.Lock(2)
			w.Work(10_000)
			w.Lock(1)
			w.Unlock(1)
			w.Unlock(2)
		})
		th.Join(a)
		th.Join(b)
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected *DeadlockError, got %T", err)
	}
	if de.Live < 2 {
		t.Fatalf("deadlock diagnostic live = %d, want >= 2", de.Live)
	}
	wg := de.WaitGraph()
	if !strings.Contains(wg, "held by thread") || !strings.Contains(wg, "lock 1") || !strings.Contains(wg, "lock 2") {
		t.Fatalf("wait graph lacks holder/waiter edges:\n%s", wg)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadlock detection took %v, want well under the 1s deadline", elapsed)
	}
	if ctx.Err() != nil {
		t.Fatal("deadline expired before the deadlock was reported")
	}
}

func TestParkedForeverIsDeadlock(t *testing.T) {
	_, _, err := RunCtx(context.Background(), cfg(1), func(th *Thread) {
		th.Park() // nobody will unpark
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) || !strings.Contains(de.WaitGraph(), "parked") {
		t.Fatalf("wait graph should name the parked thread, got %v", err)
	}
}

func TestMaxEventsBudgetExceeded(t *testing.T) {
	c := cfg(1)
	c.MaxEvents = 1_000
	_, _, err := RunCtx(context.Background(), c, func(th *Thread) {
		for { // runaway loop: never exits on its own
			th.Work(1)
		}
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expected ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Events < 1_000 {
		t.Fatalf("budget diagnostic = %v", err)
	}
}

func TestMaxVirtualTimeBudgetExceeded(t *testing.T) {
	c := cfg(1)
	c.MaxVirtualTime = 50_000
	_, _, err := RunCtx(context.Background(), c, func(th *Thread) {
		for {
			th.Work(30_000)
		}
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expected ErrBudgetExceeded, got %v", err)
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the engine must notice at its next poll
	_, _, err := RunCtx(ctx, cfg(2), func(th *Thread) {
		for {
			th.Work(1)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

func TestThreadPanicBecomesInternalError(t *testing.T) {
	_, _, err := RunCtx(context.Background(), cfg(2), func(th *Thread) {
		w := th.Spawn(func(w *Thread) {
			w.Work(100)
			panic("workload bug")
		})
		th.Join(w)
	})
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("expected *InternalError, got %v", err)
	}
	if ie.Value != "workload bug" || len(ie.Stack) == 0 {
		t.Fatalf("internal error diagnostic = %+v", ie)
	}
}

func TestErrorRunLeaksNoGoroutines(t *testing.T) {
	// After a failed run every virtual-thread goroutine must be unwound;
	// run many failing sims and check determinism of the typed result
	// rather than goroutine counts (the WaitGroup in run() guarantees the
	// drain — this exercises it under spawn-heavy workloads).
	for i := 0; i < 50; i++ {
		_, _, err := RunCtx(context.Background(), cfg(2), func(th *Thread) {
			var ws []*Thread
			for j := 0; j < 8; j++ {
				ws = append(ws, th.Spawn(func(w *Thread) {
					w.Lock(1)
					w.Work(1_000)
					// never unlocks: everyone else deadlocks
					w.Park()
				}))
			}
			for _, w := range ws {
				th.Join(w)
			}
		})
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("iter %d: expected ErrDeadlock, got %v", i, err)
		}
	}
}

func TestQuantumFaultHookJittersSlices(t *testing.T) {
	// A deterministic jitter hook must keep the run deterministic and
	// still complete all work.
	prog := func(th *Thread) {
		a := th.Spawn(func(w *Thread) { w.Work(100_000) })
		th.Work(100_000)
		th.Join(a)
	}
	hook := &FaultHooks{Quantum: func(core int, q clock.Cycles) clock.Cycles {
		return q - q/4
	}}
	e1, s1, err1 := RunOpt(cfg(1), RunOpts{Faults: hook}, prog)
	e2, s2, err2 := RunOpt(cfg(1), RunOpts{Faults: hook}, prog)
	if err1 != nil || err2 != nil {
		t.Fatalf("jittered runs failed: %v / %v", err1, err2)
	}
	if e1 != e2 || s1 != s2 {
		t.Fatalf("jittered run nondeterministic: %d vs %d", e1, e2)
	}
	if e1 != 200_000 {
		t.Fatalf("makespan = %d, want 200000 (work conserved under jitter)", e1)
	}
}

func TestYield(t *testing.T) {
	// A yielding thread lets the other make progress without waiting for
	// quantum expiry.
	var woke bool
	Run(cfg(1), func(th *Thread) {
		w := th.Spawn(func(w *Thread) { woke = true; w.Work(10) })
		th.Yield() // w runs first now
		if !woke {
			t.Error("yield did not run the ready thread")
		}
		th.Join(w)
	})
}

func TestWorkMemUnloadedLatency(t *testing.T) {
	c := cfg(1)
	// 1000 instruction-cycles + 10 misses at ω0=40 => 1400 cycles.
	end, st := Run(c, func(th *Thread) {
		th.WorkMem(1000, 10)
	})
	if end != 1400 {
		t.Fatalf("makespan = %d, want 1400", end)
	}
	if st.Misses != 10 {
		t.Fatalf("misses = %g, want 10", st.Misses)
	}
}

func TestDRAMContentionStretchesMemoryTime(t *testing.T) {
	// k pure-streaming threads, each generating 1.6 B/cyc unconstrained.
	// With B = 8 B/cyc, 2 threads fit (stretch 1) but 8 threads demand
	// 12.8 B/cyc and must stretch by ~1.6x.
	run := func(k int) clock.Cycles {
		end, _ := Run(cfg(12), func(th *Thread) {
			var ws []*Thread
			for i := 0; i < k; i++ {
				ws = append(ws, th.Spawn(func(w *Thread) {
					w.WorkMem(0, 50_000) // 2M cycles of pure misses
				}))
			}
			for _, w := range ws {
				th.Join(w)
			}
		})
		return end
	}
	t1 := run(1)
	t2 := run(2)
	t8 := run(8)
	if t1 != 2_000_000 {
		t.Fatalf("single stream = %d, want 2000000", t1)
	}
	if d := float64(t2-t1) / float64(t1); d > 0.05 {
		t.Errorf("2 streams stretched by %.2f%%; bus not saturated yet", 100*d)
	}
	ratio := float64(t8) / float64(t1)
	if ratio < 1.4 || ratio > 1.9 {
		t.Errorf("8-stream stretch = %.2fx, want ~1.6x", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	prog := func(th *Thread) {
		var ws []*Thread
		for i := 0; i < 7; i++ {
			n := clock.Cycles(10_000 * (i + 1))
			ws = append(ws, th.Spawn(func(w *Thread) {
				w.Work(n)
				w.Lock(3)
				w.WorkMem(5_000, 100)
				w.Unlock(3)
				w.Work(n / 2)
			}))
		}
		for _, w := range ws {
			th.Join(w)
		}
	}
	e1, s1 := Run(cfg(3), prog)
	e2, s2 := Run(cfg(3), prog)
	if e1 != e2 || s1 != s2 {
		t.Fatalf("nondeterministic run: %d/%+v vs %d/%+v", e1, s1, e2, s2)
	}
}

func TestContextSwitchCost(t *testing.T) {
	c := Config{Cores: 1, Quantum: 10_000, ContextSwitch: 500}
	end, _ := Run(c, func(th *Thread) {
		w := th.Spawn(func(w *Thread) { w.Work(10_000) })
		th.Work(10_000)
		th.Join(w)
	})
	// Two 10k jobs serialized plus at least one 500-cycle switch.
	if end < 20_500 {
		t.Fatalf("makespan = %d, want >= 20500 with switch cost", end)
	}
}

func TestConfigDefaults(t *testing.T) {
	m := New(Config{})
	c := m.Config()
	if c.Cores != 12 || c.Quantum != 50_000 || c.ContextSwitch != 1_000 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if m.Time() != 0 {
		t.Fatalf("fresh machine time = %d", m.Time())
	}
	if m.DRAM() == nil {
		t.Fatal("DRAM not initialized")
	}
}

func TestManyThreadsManyCores(t *testing.T) {
	// 64 threads, 12 cores, mixed work: sanity that everything drains and
	// busy cycles are conserved (total work == sum of Work requests).
	const n = 64
	var total clock.Cycles
	end, st := Run(cfg(12), func(th *Thread) {
		var ws []*Thread
		for i := 0; i < n; i++ {
			w := clock.Cycles(1_000 * (i%9 + 1))
			total += w
			ws = append(ws, th.Spawn(func(wt *Thread) { wt.Work(w) }))
		}
		for _, w := range ws {
			th.Join(w)
		}
	})
	if st.Instructions < float64(total)*0.999 || st.Instructions > float64(total)*1.001 {
		t.Fatalf("instruction conservation: got %g, want %d", st.Instructions, total)
	}
	if end < total/12 {
		t.Fatalf("makespan %d below perfect-parallel bound %d", end, total/12)
	}
	if end > total {
		t.Fatalf("makespan %d above serial bound %d", end, total)
	}
}
