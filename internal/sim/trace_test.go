package sim

import (
	"sort"
	"strings"
	"testing"

	"prophet/internal/clock"
)

func TestRecorderCapturesSlices(t *testing.T) {
	rec := &Recorder{}
	end, st := RunTraced(cfg(2), rec, func(th *Thread) {
		w := th.Spawn(func(w *Thread) { w.Work(40_000) })
		th.Work(20_000)
		th.Join(w)
	})
	if len(rec.Intervals) == 0 {
		t.Fatal("no intervals recorded")
	}
	if rec.BusyCycles() != st.BusyCycles {
		t.Fatalf("recorder busy %d != stats busy %d", rec.BusyCycles(), st.BusyCycles)
	}
	if rec.Makespan() != end {
		t.Fatalf("recorder makespan %d != run end %d", rec.Makespan(), end)
	}
}

// TestRecorderIntervalsDisjointPerCore: a core never runs two slices at
// once.
func TestRecorderIntervalsDisjointPerCore(t *testing.T) {
	rec := &Recorder{}
	RunTraced(cfg(2), rec, func(th *Thread) {
		var ws []*Thread
		for i := 0; i < 6; i++ {
			n := clock.Cycles(15_000 + 5_000*i)
			ws = append(ws, th.Spawn(func(w *Thread) { w.Work(n) }))
		}
		for _, w := range ws {
			th.Join(w)
		}
	})
	for core, list := range rec.PerCore() {
		sorted := sort.SliceIsSorted(list, func(i, j int) bool { return list[i].Start < list[j].Start })
		if !sorted {
			t.Fatalf("core %d: PerCore not sorted", core)
		}
		for i := 1; i < len(list); i++ {
			if list[i].Start < list[i-1].End {
				t.Fatalf("core %d: overlapping slices %+v and %+v", core, list[i-1], list[i])
			}
		}
	}
}

func TestGanttRendering(t *testing.T) {
	rec := &Recorder{}
	RunTraced(cfg(2), rec, func(th *Thread) {
		w := th.Spawn(func(w *Thread) { w.Work(50_000) })
		th.Work(50_000)
		th.Join(w)
	})
	var b strings.Builder
	if err := rec.Gantt(&b, 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "core  0") || !strings.Contains(out, "core  1") {
		t.Fatalf("missing core rows:\n%s", out)
	}
	// Both threads appear; no idle-only rows for a fully busy run.
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Fatalf("thread glyphs missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 cores:\n%s", len(lines), out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var b strings.Builder
	if err := (&Recorder{}).Gantt(&b, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Fatalf("empty timeline output: %q", b.String())
	}
}

func TestThreadGlyphs(t *testing.T) {
	if threadGlyph(3) != '3' || threadGlyph(10) != 'a' || threadGlyph(35) != 'z' || threadGlyph(99) != '#' {
		t.Fatal("glyph mapping wrong")
	}
}

func TestUtilization(t *testing.T) {
	rec := &Recorder{}
	RunTraced(cfg(2), rec, func(th *Thread) {
		w := th.Spawn(func(w *Thread) { w.Work(50_000) })
		th.Work(100_000) // core 0 fully busy; core 1 half busy
		th.Join(w)
	})
	u := rec.Utilization()
	if u[0] < 0.99 {
		t.Fatalf("core 0 utilization = %.2f, want ~1", u[0])
	}
	if u[1] < 0.45 || u[1] > 0.55 {
		t.Fatalf("core 1 utilization = %.2f, want ~0.5", u[1])
	}
	if len((&Recorder{}).Utilization()) != 0 {
		t.Fatal("empty recorder should have no utilization")
	}
}
