package sim

import (
	"testing"

	"prophet/internal/obs"
)

// lockProgram exercises scheduling, preemption, locks and joins on a
// 2-core machine: four workers each take a lock and work past a quantum.
func lockProgram(th *Thread) {
	var ws []*Thread
	for i := 0; i < 4; i++ {
		ws = append(ws, th.Spawn(func(w *Thread) {
			w.Work(5_000)
			w.Lock(1)
			w.Work(15_000) // longer than one quantum: forces preemption races
			w.Unlock(1)
			w.Work(5_000)
		}))
	}
	for _, w := range ws {
		th.Join(w)
	}
}

// TestTracerMatchesRecorder pins the tracer's KSlice stream to the legacy
// Recorder: both observe the same run, so the slice intervals must agree
// exactly (the tracer is a superset — it additionally sees scheduling and
// lock events).
func TestTracerMatchesRecorder(t *testing.T) {
	rec := &Recorder{}
	buf := &obs.TraceBuffer{}
	_, _, err := RunOpt(cfg(2), RunOpts{Recorder: rec, Tracer: buf}, lockProgram)
	if err != nil {
		t.Fatal(err)
	}
	var slices []Interval
	for _, ev := range buf.Events() {
		if ev.Kind == obs.KSlice {
			slices = append(slices, Interval{Core: ev.Core, Thread: ev.Thread, Start: ev.Time, End: ev.End})
		}
	}
	if len(slices) == 0 || len(rec.Intervals) == 0 {
		t.Fatalf("no slices captured (tracer %d, recorder %d)", len(slices), len(rec.Intervals))
	}
	if len(slices) != len(rec.Intervals) {
		t.Fatalf("tracer saw %d slices, recorder %d", len(slices), len(rec.Intervals))
	}
	for i := range slices {
		if slices[i] != rec.Intervals[i] {
			t.Errorf("slice %d: tracer %+v != recorder %+v", i, slices[i], rec.Intervals[i])
		}
	}
}

// TestTracerEventInvariants checks the stream's structural invariants:
// lock events carry lock ids, instants have no End, slices have
// End > Time, and every schedule lands on a valid core.
func TestTracerEventInvariants(t *testing.T) {
	buf := &obs.TraceBuffer{}
	_, _, err := RunOpt(cfg(2), RunOpts{Tracer: buf}, lockProgram)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[obs.ExecKind]int{}
	for _, ev := range buf.Events() {
		counts[ev.Kind]++
		switch ev.Kind {
		case obs.KSlice:
			if ev.End <= ev.Time {
				t.Errorf("slice with End %d <= Time %d", ev.End, ev.Time)
			}
			if ev.Core < 0 || ev.Core >= 2 {
				t.Errorf("slice on core %d", ev.Core)
			}
		case obs.KLockAcquire, obs.KLockBlocked, obs.KLockRelease:
			if ev.Lock != 1 {
				t.Errorf("%v with lock %d, want 1", ev.Kind, ev.Lock)
			}
		case obs.KSchedule:
			if ev.Core < 0 || ev.Core >= 2 {
				t.Errorf("schedule on core %d", ev.Core)
			}
		}
	}
	for _, k := range []obs.ExecKind{obs.KSlice, obs.KSchedule, obs.KSpawn, obs.KExit, obs.KLockAcquire, obs.KLockRelease, obs.KBlock, obs.KUnblock} {
		if counts[k] == 0 {
			t.Errorf("no %v events in a spawn/lock/join workload (counts: %v)", k, counts)
		}
	}
	if counts[obs.KSpawn] != 4 || counts[obs.KExit] != 5 {
		t.Errorf("spawn/exit = %d/%d, want 4/5", counts[obs.KSpawn], counts[obs.KExit])
	}
	// 4 acquisitions, 4 releases of the single contended lock.
	if counts[obs.KLockAcquire] != 4 || counts[obs.KLockRelease] != 4 {
		t.Errorf("lock acquire/release = %d/%d, want 4/4", counts[obs.KLockAcquire], counts[obs.KLockRelease])
	}
}

// TestRunMetrics checks the registry counters recorded by a machine run.
func TestRunMetrics(t *testing.T) {
	reg := &obs.Registry{}
	c := cfg(2)
	c.MaxEvents = 1_000_000
	_, st, err := RunOpt(c, RunOpts{Metrics: reg}, lockProgram)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MSimRuns] != 1 {
		t.Errorf("runs = %d, want 1", snap.Counters[obs.MSimRuns])
	}
	if snap.Counters[obs.MSimEvents] != int64(st.Events) {
		t.Errorf("events counter %d != stats %d", snap.Counters[obs.MSimEvents], st.Events)
	}
	h := snap.Histograms[obs.MSimHeadroom]
	if h.Count != 1 {
		t.Fatalf("headroom observations = %d, want 1", h.Count)
	}
	if want := 1_000_000 - int64(st.Events); h.Min != want {
		t.Errorf("headroom = %d, want %d", h.Min, want)
	}
}
