package synth

import (
	"math"
	"testing"

	"prophet/internal/clock"
	"prophet/internal/ff"
	"prophet/internal/omprt"
	"prophet/internal/sim"
	"prophet/internal/tree"
)

func mcfg(cores int) sim.Config {
	return sim.Config{Cores: cores, Quantum: 10_000, ContextSwitch: -1}
}

// newSyn returns a synthesizer with zero runtime overheads and minimal
// traversal cost, for exact-ish assertions.
func newSyn(threads, cores int) *Synthesizer {
	return &Synthesizer{
		Threads:       threads,
		Machine:       mcfg(cores),
		AccessNode:    1,
		RecursiveCall: 1,
	}
}

func balancedLoop(nTasks int, l clock.Cycles) *tree.Node {
	tasks := make([]*tree.Node, nTasks)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(l))
	}
	return tree.NewRoot(tree.NewSec("s", tasks...))
}

func TestBalancedLoopScalesOMP(t *testing.T) {
	root := balancedLoop(48, 100_000)
	for _, p := range []int{1, 2, 4, 8, 12} {
		s := newSyn(p, 12)
		s.Sched = omprt.SchedStatic
		got := s.Speedup(root)
		if got < 0.93*float64(p) || got > float64(p)*1.01 {
			t.Errorf("p=%d: speedup = %.2f, want ~%d", p, got, p)
		}
	}
}

func TestBalancedLoopScalesCilk(t *testing.T) {
	root := balancedLoop(48, 100_000)
	for _, p := range []int{1, 4, 8} {
		s := newSyn(p, 12)
		s.Paradigm = Cilk
		got := s.Speedup(root)
		if got < 0.90*float64(p) || got > float64(p)*1.01 {
			t.Errorf("cilk p=%d: speedup = %.2f, want ~%d", p, got, p)
		}
	}
}

// figure7 is the same nested tree as in internal/ff's tests, scaled so
// tasks are large relative to the OS quantum.
func figure7(scale clock.Cycles) *tree.Node {
	la := tree.NewSec("LoopA",
		tree.NewTask("a0", tree.NewU(10*scale)),
		tree.NewTask("a1", tree.NewU(5*scale)),
	)
	lb := tree.NewSec("LoopB",
		tree.NewTask("b0", tree.NewU(5*scale)),
		tree.NewTask("b1", tree.NewU(10*scale)),
	)
	return tree.NewRoot(tree.NewSec("Loop1",
		tree.NewTask("t0", la),
		tree.NewTask("t1", lb),
	))
}

// TestFigure7SynthesizerFixesFF is the paper's headline §IV-D/E story: the
// FF predicts 1.5x for the two-level nested loop, the synthesizer —
// because the (simulated) OS preemptively time-slices the oversubscribed
// nested teams — predicts ~2.0x.
func TestFigure7SynthesizerFixesFF(t *testing.T) {
	root := figure7(20_000) // tasks of 200k/100k cycles, quantum 10k

	ffPred := (&ff.Emulator{Threads: 2, Sched: omprt.SchedStatic1}).Speedup(root)
	if math.Abs(ffPred-1.5) > 1e-9 {
		t.Fatalf("FF speedup = %g, want exactly 1.5", ffPred)
	}

	s := newSyn(2, 2)
	s.Sched = omprt.SchedStatic1
	got := s.Speedup(root)
	if got < 1.8 || got > 2.05 {
		t.Fatalf("synthesizer speedup = %.3f, want ~2.0 (paper Fig. 7)", got)
	}
}

func TestLockContentionEmulated(t *testing.T) {
	// Tasks that are 100% critical section: no speedup possible.
	tasks := make([]*tree.Node, 8)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewL(1, 50_000))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	s := newSyn(4, 4)
	s.Sched = omprt.SchedStatic1
	got := s.Speedup(root)
	if got > 1.1 {
		t.Fatalf("fully locked loop speedup = %.2f, want ~1", got)
	}
}

func TestImbalanceScheduleSensitivity(t *testing.T) {
	// Triangular workload: dynamic,1 must beat (static).
	tasks := make([]*tree.Node, 16)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(clock.Cycles((i+1)*20_000)))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	st := newSyn(4, 4)
	st.Sched = omprt.SchedStatic
	dy := newSyn(4, 4)
	dy.Sched = omprt.SchedDynamic1
	sStatic := st.Speedup(root)
	sDyn := dy.Speedup(root)
	if sDyn <= sStatic {
		t.Fatalf("dynamic (%.2f) should beat static (%.2f) on triangular work", sDyn, sStatic)
	}
}

func TestBurdenFactorApplied(t *testing.T) {
	root := balancedLoop(8, 100_000)
	sec := root.TopLevelSections()[0]
	sec.Burden = map[int]float64{4: 1.5}
	plain := newSyn(4, 4)
	plain.Sched = omprt.SchedStatic
	withB := newSyn(4, 4)
	withB.Sched = omprt.SchedStatic
	withB.UseBurden = true
	sp := plain.Speedup(root)
	sb := withB.Speedup(root)
	if ratio := sp / sb; math.Abs(ratio-1.5) > 0.1 {
		t.Fatalf("burden did not scale prediction: plain %.2f vs burdened %.2f", sp, sb)
	}
}

func TestSerialRegionsIncluded(t *testing.T) {
	root := tree.NewRoot(
		tree.NewU(100_000),
		tree.NewSec("s",
			tree.NewTask("t", tree.NewU(50_000)),
			tree.NewTask("t", tree.NewU(50_000)),
		),
	)
	s := newSyn(2, 2)
	s.Sched = omprt.SchedStatic
	got := s.Speedup(root)
	want := 200_000.0 / 150_000.0
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("speedup = %.3f, want ~%.3f (Amdahl with serial part)", got, want)
	}
}

func TestTraversalOverheadSubtracted(t *testing.T) {
	// Huge per-node overhead with tiny tasks: without subtraction the
	// prediction would collapse; with subtraction it must stay sane.
	root := balancedLoop(64, 10_000)
	heavy := &Synthesizer{
		Threads:    4,
		Machine:    mcfg(4),
		Sched:      omprt.SchedStatic,
		AccessNode: 5_000, // half a task per node visit
	}
	light := newSyn(4, 4)
	light.Sched = omprt.SchedStatic
	sH := heavy.Speedup(root)
	sL := light.Speedup(root)
	if sH < 0.7*sL {
		t.Fatalf("overhead subtraction failed: heavy %.2f vs light %.2f", sH, sL)
	}
}

func TestRepeatCompressedEquivalence(t *testing.T) {
	expanded := balancedLoop(60, 30_000)
	ctask := tree.NewTask("t", tree.NewU(30_000))
	ctask.Repeat = 60
	compressed := tree.NewRoot(tree.NewSec("s", ctask))
	a := newSyn(6, 12)
	a.Sched = omprt.SchedDynamic1
	b := newSyn(6, 12)
	b.Sched = omprt.SchedDynamic1
	sa := a.Speedup(expanded)
	sb := b.Speedup(compressed)
	if math.Abs(sa-sb)/sa > 0.02 {
		t.Fatalf("compressed tree emulates differently: %.3f vs %.3f", sa, sb)
	}
}

func TestEmptyTree(t *testing.T) {
	root := tree.NewRoot()
	s := newSyn(4, 4)
	if got := s.PredictTime(root); got != 0 {
		t.Fatalf("empty tree predicted %d", got)
	}
	if got := s.Speedup(root); got != 1 {
		t.Fatalf("empty tree speedup %g", got)
	}
}

func TestParadigmString(t *testing.T) {
	if OpenMP.String() != "openmp" || Cilk.String() != "cilk" {
		t.Fatal("paradigm names wrong")
	}
}

func TestRecursiveTreeCilk(t *testing.T) {
	// FFT-like recursion depth 4: each level spawns two nested sections.
	var build func(depth int) *tree.Node
	build = func(depth int) *tree.Node {
		if depth == 0 {
			return tree.NewTask("leaf", tree.NewU(40_000))
		}
		return tree.NewTask("rec",
			tree.NewSec("inner", build(depth-1), build(depth-1)),
			tree.NewU(5_000),
		)
	}
	root := tree.NewRoot(tree.NewSec("top", build(4)))
	s := newSyn(4, 4)
	s.Paradigm = Cilk
	got := s.Speedup(root)
	if got < 2.4 {
		t.Fatalf("recursive cilk speedup = %.2f, want >= 2.4", got)
	}
	if got > 4.01 {
		t.Fatalf("speedup %.2f exceeds core count", got)
	}
}
