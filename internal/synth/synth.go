// Package synth implements Parallel Prophet's program-synthesis-based
// emulation (the synthesizer, §IV-E / Fig. 8 of the paper).
//
// Instead of fast-forwarding an abstract clock, the synthesizer *generates
// a parallel program* from the program tree — FakeDelay spins for U nodes,
// real mutexes for L nodes, recursive parallel loops for nested Sec nodes —
// and runs it through a real parallel runtime on the target machine. All
// scheduling, oversubscription and OS effects are therefore modeled
// implicitly and exactly ("the parallel library and operating system will
// automatically handle them"), which is what fixes the FF's nested-loop
// misprediction (Fig. 7).
//
// In the paper the target is the real testbed; in this reproduction it is
// the simulated machine (internal/sim) with the OpenMP (internal/omprt) or
// Cilk (internal/cilkrt) runtime on top. The tree-traversal overhead —
// OVERHEAD_ACCESS_NODE per node and OVERHEAD_RECURSIVE_CALL per nested
// section — is charged while running and the longest per-worker total is
// subtracted from the gross time, exactly as Fig. 8's OverheadManager does.
package synth

import (
	"context"
	"sort"

	"prophet/internal/cilkrt"
	"prophet/internal/clock"
	"prophet/internal/obs"
	"prophet/internal/omprt"
	"prophet/internal/pipesim"
	"prophet/internal/sim"
	"prophet/internal/tree"
)

// Paradigm selects the threading runtime the synthetic program uses.
type Paradigm uint8

// Supported paradigms.
const (
	// OpenMP runs sections as parallel-for loops with the configured
	// schedule; nested sections spawn nested teams (OpenMP 2.0 style).
	OpenMP Paradigm = iota
	// Cilk runs sections as cilk_for loops on a work-stealing runtime;
	// nested sections become nested cilk_for calls.
	Cilk
)

// String names the paradigm.
func (p Paradigm) String() string {
	if p == Cilk {
		return "cilk"
	}
	return "openmp"
}

// Synthesizer predicts parallel execution time by running generated code on
// the simulated target machine.
type Synthesizer struct {
	// Threads is the number of runtime threads/workers to emulate
	// (the paper's __cilkrts_set_param("nworkers", t)).
	Threads int
	// Paradigm selects OpenMP or Cilk.
	Paradigm Paradigm
	// Sched is the OpenMP schedule (ignored for Cilk).
	Sched omprt.Sched
	// UseBurden applies the memory model's burden factors (PredM).
	UseBurden bool
	// Machine is the target machine configuration; zero values default
	// to the paper's 12-core machine.
	Machine sim.Config
	// OmpOv / CilkOv are the runtime overhead constants.
	OmpOv  omprt.Overheads
	CilkOv cilkrt.Overheads
	// AccessNode is OVERHEAD_ACCESS_NODE: the cost of visiting one tree
	// node while emulating (~50 cycles on the paper's machine).
	AccessNode clock.Cycles
	// RecursiveCall is OVERHEAD_RECURSIVE_CALL, charged per nested
	// section entry.
	RecursiveCall clock.Cycles
	// Tracer, when set, is attached to the simulated machine runs: the
	// synthesized program's schedule/lock/slice events stream out with
	// virtual timestamps (internal/obs). Nil disables tracing.
	Tracer obs.ExecTracer
	// Metrics, when set, aggregates the machine runs' DES counters.
	Metrics *obs.Registry
}

// Default traversal-overhead constants (the paper measured ~50 cycles for
// both units on its machine).
const (
	DefaultAccessNode    clock.Cycles = 50
	DefaultRecursiveCall clock.Cycles = 50
)

func (s *Synthesizer) threads() int {
	if s.Threads < 1 {
		return 1
	}
	return s.Threads
}

// PredictTime returns the synthesized-program execution time for the whole
// program tree: emulated top-level sections plus untouched serial regions
// (§IV-E's overall formula).
func (s *Synthesizer) PredictTime(root *tree.Node) clock.Cycles {
	t, err := s.PredictTimeCtx(context.Background(), root)
	if err != nil {
		panic(err)
	}
	return t
}

// PredictTimeCtx is PredictTime with cancellation and typed errors: the
// underlying machine runs are cancelable through ctx, and simulation
// failures (deadlock, budget, internal error) return instead of panicking.
func (s *Synthesizer) PredictTimeCtx(ctx context.Context, root *tree.Node) (clock.Cycles, error) {
	total := root.SerialOutsideSections()
	for _, sec := range root.TopLevelSections() {
		// A Repeat-compressed top-level section ran Reps times
		// back-to-back in the serial program; one emulation per
		// repeat would waste time, so multiply.
		d, err := s.emulateTopLevelParSec(ctx, sec)
		if err != nil {
			return 0, err
		}
		total += d * clock.Cycles(sec.Reps())
	}
	return total, nil
}

// Speedup returns serial time / predicted time. It panics on simulation
// errors (legacy contract); error-tolerant callers use SpeedupCtx.
func (s *Synthesizer) Speedup(root *tree.Node) float64 {
	sp, err := s.SpeedupCtx(context.Background(), root)
	if err != nil {
		panic(err)
	}
	return sp
}

// SpeedupCtx is Speedup with cancellation and typed errors.
func (s *Synthesizer) SpeedupCtx(ctx context.Context, root *tree.Node) (float64, error) {
	serial := root.TotalLen()
	pred, err := s.PredictTimeCtx(ctx, root)
	if err != nil {
		return 0, err
	}
	if pred <= 0 {
		return 1, nil
	}
	return float64(serial) / float64(pred), nil
}

// overheadMgr accumulates per-worker tree-traversal overhead; the engine
// serializes sim threads, so a plain map is safe.
type overheadMgr struct {
	perThread map[int]clock.Cycles
}

func newOverheadMgr() *overheadMgr {
	return &overheadMgr{perThread: make(map[int]clock.Cycles)}
}

func (o *overheadMgr) charge(t *sim.Thread, c clock.Cycles) {
	t.Work(c)
	o.perThread[t.ID()] += c
}

// longest returns the largest per-worker overhead (Fig. 8's
// GetLongestOverhead).
func (o *overheadMgr) longest() clock.Cycles {
	var best clock.Cycles
	for _, v := range o.perThread {
		if v > best {
			best = v
		}
	}
	return best
}

// EmulateTopLevelParSec synthesizes and runs one top-level section and
// returns its net duration (gross minus the longest traversal overhead).
// It panics on simulation errors (legacy contract).
func (s *Synthesizer) EmulateTopLevelParSec(sec *tree.Node) clock.Cycles {
	d, err := s.emulateTopLevelParSec(context.Background(), sec)
	if err != nil {
		panic(err)
	}
	return d
}

func (s *Synthesizer) emulateTopLevelParSec(ctx context.Context, sec *tree.Node) (clock.Cycles, error) {
	burden := 1.0
	if s.UseBurden {
		burden = sec.BurdenFor(s.threads())
	}
	om := newOverheadMgr()
	gross, _, err := sim.RunOpt(s.Machine, sim.RunOpts{Ctx: ctx, Tracer: s.Tracer, Metrics: s.Metrics}, func(main *sim.Thread) {
		if sec.Pipeline {
			pipesim.Run(main, sec, s.threads(), func(w *sim.Thread, seg *tree.Node) {
				om.charge(w, s.accessNode())
				switch seg.Kind {
				case tree.L:
					w.Lock(seg.LockID)
					w.Work(s.scaled(seg.Len, burden))
					w.Unlock(seg.LockID)
				case tree.W:
					w.Sleep(seg.Len)
				default:
					w.Work(s.scaled(seg.Len, burden))
				}
			})
			return
		}
		switch s.Paradigm {
		case Cilk:
			rt := cilkrt.New(s.threads(), s.CilkOv)
			rt.Run(main, func(c *cilkrt.Ctx) {
				s.runSecCilk(c, sec, burden, om)
			})
		default:
			rt := omprt.New(s.threads(), s.OmpOv)
			s.runSecOMP(rt, main, sec, burden, om)
		}
	})
	if err != nil {
		return 0, err
	}
	net := gross - om.longest()
	if net < 0 {
		net = 0
	}
	return net, nil
}

func (s *Synthesizer) scaled(l clock.Cycles, burden float64) clock.Cycles {
	if burden == 1 {
		return l
	}
	return clock.Cycles(float64(l)*burden + 0.5)
}

func (s *Synthesizer) accessNode() clock.Cycles {
	if s.AccessNode > 0 {
		return s.AccessNode
	}
	return DefaultAccessNode
}

func (s *Synthesizer) recursiveCall() clock.Cycles {
	if s.RecursiveCall > 0 {
		return s.RecursiveCall
	}
	return DefaultRecursiveCall
}

// taskIndex maps a logical iteration number to its (possibly
// Repeat-compressed) Task node without expanding the tree.
type taskIndex struct {
	nodes []*tree.Node
	cum   []int // cum[i] = logical tasks before nodes[i]
	total int
}

func buildTaskIndex(sec *tree.Node) *taskIndex {
	ti := &taskIndex{}
	for _, c := range sec.Children {
		if c.Kind != tree.Task {
			continue
		}
		ti.nodes = append(ti.nodes, c)
		ti.cum = append(ti.cum, ti.total)
		ti.total += c.Reps()
	}
	return ti
}

func (ti *taskIndex) at(i int) *tree.Node {
	k := sort.Search(len(ti.cum), func(j int) bool { return ti.cum[j] > i }) - 1
	return ti.nodes[k]
}

// runSecOMP emulates a section with the OpenMP runtime: a parallel-for over
// its logical tasks. Nested sections recurse with a fresh nested team
// (EmulWorker's 'Sec' case in Fig. 8, OpenMP flavour).
func (s *Synthesizer) runSecOMP(rt *omprt.Runtime, t *sim.Thread, sec *tree.Node, burden float64, om *overheadMgr) {
	ti := buildTaskIndex(sec)
	rt.ParallelFor(t, ti.total, s.Sched, func(w *sim.Thread, i int) {
		s.runTask(rtExec{omp: rt}, w, nil, ti.at(i), burden, om)
	})
}

// runSecCilk emulates a section with the Cilk runtime: a cilk_for over its
// logical tasks (grain 1: each profiled task is one emulated task).
func (s *Synthesizer) runSecCilk(c *cilkrt.Ctx, sec *tree.Node, burden float64, om *overheadMgr) {
	ti := buildTaskIndex(sec)
	c.For(ti.total, 1, func(cc *cilkrt.Ctx, i int) {
		s.runTask(rtExec{}, cc.Thread(), cc, ti.at(i), burden, om)
	})
}

// rtExec carries the OpenMP runtime when emulating under OpenMP; for Cilk
// the context itself is passed along.
type rtExec struct {
	omp *omprt.Runtime
}

// runTask walks one task's segments, emulating computation with FakeDelay
// (Work), locks with real machine mutexes, and nested sections with
// recursive parallel loops — the body of EmulWorker in Fig. 8.
func (s *Synthesizer) runTask(ex rtExec, w *sim.Thread, cc *cilkrt.Ctx, task *tree.Node, burden float64, om *overheadMgr) {
	for _, seg := range task.Children {
		for r := 0; r < seg.Reps(); r++ {
			om.charge(w, s.accessNode())
			switch seg.Kind {
			case tree.U:
				w.Work(s.scaled(seg.Len, burden))
			case tree.W:
				// I/O waits release the core: other workers run.
				w.Sleep(seg.Len)
			case tree.L:
				w.Lock(seg.LockID)
				w.Work(s.scaled(seg.Len, burden))
				w.Unlock(seg.LockID)
			case tree.Sec:
				om.charge(w, s.recursiveCall())
				if cc != nil {
					s.runSecCilk(cc, seg, burden, om)
				} else {
					s.runSecOMP(ex.omp, w, seg, burden, om)
				}
			}
		}
	}
}
