package synth

import "fmt"

// ParseParadigm parses a paradigm name: "openmp" (or "omp") and "cilk",
// matching String() exactly, so ParseParadigm(p.String()) round-trips.
func ParseParadigm(s string) (Paradigm, error) {
	switch s {
	case "openmp", "omp":
		return OpenMP, nil
	case "cilk":
		return Cilk, nil
	}
	return 0, fmt.Errorf("synth: unknown paradigm %q (want openmp | cilk)", s)
}

// MarshalText encodes the paradigm as its String() name, so Paradigm
// fields marshal to stable JSON strings.
func (p Paradigm) MarshalText() ([]byte, error) {
	return []byte(p.String()), nil
}

// UnmarshalText parses any spelling ParseParadigm accepts.
func (p *Paradigm) UnmarshalText(text []byte) error {
	parsed, err := ParseParadigm(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}
