// Package pprofutil wires the conventional -cpuprofile/-memprofile flags
// into the repo's commands, so hot-path work (the DES engine, the FF
// emulator, compression) can be profiled straight from a paper-scale run:
//
//	ppexp -fig 12 -cpuprofile cpu.pprof && go tool pprof cpu.pprof
package pprofutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for a heap profile
// at memPath; either may be empty to skip that profile. The returned stop
// function finishes the CPU profile and writes the heap profile; it is
// idempotent, so callers can both defer it and invoke it explicitly on
// early-exit paths. Profile-writing errors at stop time are reported to
// stderr rather than returned — by then the command's real output is
// already produced and a broken profile should not fail the run.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle live heap so the profile shows retained objects
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
