package mem

import (
	"prophet/internal/counters"
	"prophet/internal/machine"
)

// Cache is a set-associative LRU last-level cache simulator. The paper's
// tool reads LLC-miss counters instead of simulating (for speed); this
// reproduction uses the simulator only *offline*, when deriving the
// per-segment miss counts of the benchmark cost models from their access
// patterns (internal/workloads). It is not on the profiling fast path, so
// the paper's overhead story is preserved.
type Cache struct {
	sets     int
	ways     int
	lineBits uint
	// lines[set][way] holds the tag; lru[set][way] the recency stamp.
	lines [][]uint64
	lru   [][]uint64
	tick  uint64

	accesses int64
	misses   int64
}

// CacheConfig sizes a cache.
//
// CacheConfig is the legacy knob form, kept as a thin wrapper over
// machine.LLCSpec: zero-valued fields fall back to the DefaultLLC
// (paper-machine) values in NewCache. New code should size caches from a
// validated machine.Spec via ConfigFromLLC, which applies no fallbacks.
type CacheConfig struct {
	// SizeBytes is the total capacity (default 12 MiB, the Westmere L3
	// used in the paper).
	SizeBytes int64
	// Ways is the associativity (default 16).
	Ways int
	// LineBytes is the line size (default counters.LineSize).
	LineBytes int
}

// DefaultLLC returns the paper machine's 12 MB 16-way L3.
func DefaultLLC() CacheConfig {
	return CacheConfig{SizeBytes: 12 << 20, Ways: 16, LineBytes: counters.LineSize}
}

// ConfigFromLLC converts a validated machine-spec LLC to the knob form.
// The spec is taken as-is: validation already rejected the zero values
// NewCache would otherwise rewrite.
func ConfigFromLLC(s machine.LLCSpec) CacheConfig {
	return CacheConfig{SizeBytes: s.SizeBytes, Ways: s.Ways, LineBytes: s.LineBytes}
}

// NewCache builds a cache simulator. Zero-valued config fields take the
// DefaultLLC values.
func NewCache(cfg CacheConfig) *Cache {
	def := DefaultLLC()
	if cfg.SizeBytes <= 0 {
		cfg.SizeBytes = def.SizeBytes
	}
	if cfg.Ways <= 0 {
		cfg.Ways = def.Ways
	}
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = def.LineBytes
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	sets := int(cfg.SizeBytes / int64(cfg.Ways) / int64(cfg.LineBytes))
	if sets < 1 {
		sets = 1
	}
	c := &Cache{sets: sets, ways: cfg.Ways, lineBits: lineBits}
	c.lines = make([][]uint64, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.lines {
		c.lines[i] = make([]uint64, cfg.Ways)
		c.lru[i] = make([]uint64, cfg.Ways)
		for w := range c.lines[i] {
			c.lines[i][w] = ^uint64(0) // invalid
		}
	}
	return c
}

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return c.sets }

// Access touches the byte address and returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	c.tick++
	line := addr >> c.lineBits
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	ways := c.lines[set]
	for w, t := range ways {
		if t == tag {
			c.lru[set][w] = c.tick
			return true
		}
	}
	c.misses++
	// Evict LRU.
	victim := 0
	oldest := c.lru[set][0]
	for w := 1; w < c.ways; w++ {
		if c.lru[set][w] < oldest {
			oldest = c.lru[set][w]
			victim = w
		}
	}
	ways[victim] = tag
	c.lru[set][victim] = c.tick
	return false
}

// Stats returns (accesses, misses) so far.
func (c *Cache) Stats() (accesses, misses int64) { return c.accesses, c.misses }

// MissRate returns misses/accesses (0 when no accesses yet).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears statistics but keeps cache contents (for warm-up protocols).
func (c *Cache) Reset() { c.accesses, c.misses = 0, 0 }

// StreamMissRate estimates the steady-state LLC miss rate of a repeated
// sequential sweep over footprintBytes with the given byte stride. This is
// the offline helper the benchmark cost models use: it warms the cache with
// one sweep and measures a second.
func StreamMissRate(cfg CacheConfig, footprintBytes int64, stride int) float64 {
	if stride <= 0 {
		stride = 8
	}
	if footprintBytes <= 0 {
		return 0
	}
	c := NewCache(cfg)
	sweep := func() {
		for a := int64(0); a < footprintBytes; a += int64(stride) {
			c.Access(uint64(a))
		}
	}
	sweep() // warm
	c.Reset()
	sweep() // measure
	return c.MissRate()
}
