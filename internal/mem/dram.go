// Package mem models the memory system of the simulated machine: a
// last-level cache (cache.go) and a bandwidth-shared DRAM (this file).
//
// The paper's memory performance model (§V) rests on one physical effect:
// when several cores stream misses to DRAM at once, the bus saturates and
// the per-miss stall ω grows. The paper measures this on real hardware with
// a microbenchmark and fits Eq. (6)/(7). This package provides the
// *machine-side ground truth* for the same effect: a fluid
// bandwidth-sharing model in which each memory-active thread registers its
// unconstrained demand and, whenever aggregate demand exceeds the DRAM
// bandwidth, every active thread's memory time stretches by the
// oversubscription ratio. The Ψ/Φ calibration in internal/memmodel re-runs
// the paper's microbenchmark against this model.
package mem

import (
	"prophet/internal/counters"
	"prophet/internal/machine"
)

// DRAMConfig describes the DRAM of the simulated machine.
//
// DRAMConfig is the legacy knob form, kept as a thin wrapper over
// machine.DRAMSpec: zero-valued fields fall back to the DefaultDRAM
// (paper-machine) values, and it cannot express a second bandwidth
// domain. New code should construct a validated machine.Spec and use
// NewDRAMSpec / (*DRAM).ResetSpec (or go through sim.Config.Spec, which
// does so automatically); the wrapper exists so pre-spec callers keep
// byte-identical behaviour.
type DRAMConfig struct {
	// UnloadedLatency ω₀ is the effective per-miss CPU stall in cycles
	// when the bus is idle (MLP-adjusted: overlapping misses make this
	// much smaller than the raw DRAM round trip).
	UnloadedLatency float64
	// BandwidthBytesPerCycle is the total sustainable DRAM bandwidth in
	// bytes per core cycle, shared by all cores.
	BandwidthBytesPerCycle float64
	// Knee is the utilization fraction at which queueing starts to add
	// latency even before full saturation (0 < Knee <= 1). Above the
	// knee, latency rises smoothly toward the fluid-sharing limit.
	Knee float64
}

// DefaultDRAM models a two-socket Westmere-class memory system at a 2.4 GHz
// core clock: ω₀ = 40 cycles/miss gives a single-thread streaming bandwidth
// of 64/40 = 1.6 B/cycle (~3.8 GB/s), and the shared bus sustains
// 8 B/cycle (~19 GB/s), so bandwidth saturates around five streaming
// threads — matching the speedup-saturation points the paper observes on
// 12 cores (Fig. 2, Fig. 12).
func DefaultDRAM() DRAMConfig {
	return DRAMConfig{
		UnloadedLatency:        40,
		BandwidthBytesPerCycle: 8,
		Knee:                   0.75,
	}
}

// SingleThreadBandwidth returns the maximum traffic one thread can generate
// (bytes/cycle): one line per ω₀ cycles.
func (c DRAMConfig) SingleThreadBandwidth() float64 {
	if c.UnloadedLatency <= 0 {
		return c.BandwidthBytesPerCycle
	}
	return counters.LineSize / c.UnloadedLatency
}

// DRAM tracks the set of currently memory-active threads and computes the
// latency stretch they experience. It is used by the simulator engine,
// which serializes all accesses, so no locking is needed.
type DRAM struct {
	cfg    DRAMConfig
	demand float64 // sum of registered unconstrained demands (B/cycle)
	active int
	// Stretch memo: the fluid-model curve only depends on the aggregate
	// demand, which changes far less often than Stretch is called (the
	// engine re-evaluates it at every slice start). Keyed on the exact
	// demand value, so the cached result is bit-identical to a
	// recomputation. Bypassed while bwHook is installed, since a hook may
	// legitimately vary between calls.
	stretchDemand float64
	stretchVal    float64
	stretchOK     bool
	// bwHook, when set, rescales the effective bandwidth (fault
	// injection: internal/faults models DRAM degradation through it).
	// No-op by default. The hook applies to both domains.
	bwHook func(base float64) float64

	// Second bandwidth domain (machine.DRAMSpec.SecondDomain). The
	// domains share ω₀ and the knee but accumulate demand separately:
	// traffic in one NUMA-ish domain does not stretch the other. All
	// fields stay zero for single-domain machines, whose code path is
	// byte-identical to the pre-domain model.
	hasDom2     bool
	cfg2        DRAMConfig // cfg with the second domain's bandwidth
	demand2     float64
	active2     int
	stretchDem2 float64
	stretchVal2 float64
	stretchOK2  bool
}

// normalized fills zero-value fields with DefaultDRAM values.
func (c DRAMConfig) normalized() DRAMConfig {
	def := DefaultDRAM()
	if c.UnloadedLatency <= 0 {
		c.UnloadedLatency = def.UnloadedLatency
	}
	if c.BandwidthBytesPerCycle <= 0 {
		c.BandwidthBytesPerCycle = def.BandwidthBytesPerCycle
	}
	if c.Knee <= 0 || c.Knee > 1 {
		c.Knee = def.Knee
	}
	return c
}

// ConfigFromSpec converts validated machine-spec DRAM parameters to the
// knob form (primary-domain bandwidth; the second domain, if any, is
// carried by ResetSpec). The spec is taken as-is — validation already
// rejected the zero values the legacy normalization would rewrite.
func ConfigFromSpec(s machine.DRAMSpec) DRAMConfig {
	return DRAMConfig{
		UnloadedLatency:        s.UnloadedLatency,
		BandwidthBytesPerCycle: s.BandwidthBytesPerCycle,
		Knee:                   s.Knee,
	}
}

// NewDRAM returns a DRAM model with the given configuration. Zero-value
// fields fall back to DefaultDRAM values.
func NewDRAM(cfg DRAMConfig) *DRAM {
	return &DRAM{cfg: cfg.normalized()}
}

// NewDRAMSpec returns a DRAM model for a validated machine spec,
// including its optional second bandwidth domain.
func NewDRAMSpec(s machine.DRAMSpec) *DRAM {
	d := &DRAM{}
	d.ResetSpec(s)
	return d
}

// Reset reinitializes the model in place for a fresh run with the given
// configuration — the pooled-machine equivalent of NewDRAM.
func (d *DRAM) Reset(cfg DRAMConfig) {
	*d = DRAM{cfg: cfg.normalized()}
}

// ResetSpec is Reset for a validated machine spec: no field fallbacks,
// and the spec's second bandwidth domain (when present) is installed.
func (d *DRAM) ResetSpec(s machine.DRAMSpec) {
	cfg := ConfigFromSpec(s)
	*d = DRAM{cfg: cfg}
	if sd := s.SecondDomain; sd != nil {
		d.hasDom2 = true
		d.cfg2 = cfg
		d.cfg2.BandwidthBytesPerCycle = sd.BandwidthBytesPerCycle
	}
}

// Config returns the model's configuration.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// Register adds a thread's unconstrained demand (bytes/cycle) to the active
// set. It returns a handle value to pass to Unregister.
func (d *DRAM) Register(demand float64) float64 {
	if demand < 0 {
		demand = 0
	}
	d.demand += demand
	d.active++
	return demand
}

// Unregister removes a previously registered demand.
func (d *DRAM) Unregister(demand float64) {
	d.demand -= demand
	d.active--
	if d.demand < 0 {
		d.demand = 0
	}
	if d.active < 0 {
		d.active = 0
	}
}

// ActiveDemand returns the current aggregate unconstrained demand in
// bytes/cycle.
func (d *DRAM) ActiveDemand() float64 { return d.demand }

// ActiveThreads returns the number of registered memory-active threads.
func (d *DRAM) ActiveThreads() int { return d.active }

// SetBandwidthHook installs (or, with nil, removes) a bandwidth
// perturbation: Stretch computes contention against hook(configured
// bandwidth) instead of the configured value. The hook runs on the engine
// goroutine and must be deterministic; non-positive returns are ignored.
func (d *DRAM) SetBandwidthHook(hook func(base float64) float64) {
	d.bwHook = hook
}

// Stretch returns the factor by which the memory portion of the active
// threads' work is dilated under the current aggregate demand.
//
// Below Knee·B the bus is effectively uncontended (stretch 1). Between the
// knee and saturation, queueing grows latency linearly; past saturation the
// fluid-sharing limit applies: every byte takes demand/B times longer.
func (d *DRAM) Stretch() float64 {
	if d.bwHook != nil {
		cfg := d.cfg
		if b := d.bwHook(cfg.BandwidthBytesPerCycle); b > 0 {
			cfg.BandwidthBytesPerCycle = b
		}
		return cfg.StretchAt(d.demand)
	}
	if d.stretchOK && d.demand == d.stretchDemand {
		return d.stretchVal
	}
	v := d.cfg.StretchAt(d.demand)
	d.stretchDemand, d.stretchVal, d.stretchOK = d.demand, v, true
	return v
}

// HasSecondDomain reports whether a second bandwidth domain is installed.
func (d *DRAM) HasSecondDomain() bool { return d.hasDom2 }

// RegisterDom is Register for a specific bandwidth domain (0 = primary).
// On single-domain machines only domain 0 exists and RegisterDom(0, ·) is
// exactly Register.
func (d *DRAM) RegisterDom(dom int, demand float64) float64 {
	if dom == 0 {
		return d.Register(demand)
	}
	if demand < 0 {
		demand = 0
	}
	d.demand2 += demand
	d.active2++
	return demand
}

// UnregisterDom removes a demand previously registered on the domain.
func (d *DRAM) UnregisterDom(dom int, demand float64) {
	if dom == 0 {
		d.Unregister(demand)
		return
	}
	d.demand2 -= demand
	d.active2--
	if d.demand2 < 0 {
		d.demand2 = 0
	}
	if d.active2 < 0 {
		d.active2 = 0
	}
}

// StretchDom is Stretch for a specific bandwidth domain: each domain's
// stretch depends only on its own aggregate demand.
func (d *DRAM) StretchDom(dom int) float64 {
	if dom == 0 {
		return d.Stretch()
	}
	if d.bwHook != nil {
		cfg := d.cfg2
		if b := d.bwHook(cfg.BandwidthBytesPerCycle); b > 0 {
			cfg.BandwidthBytesPerCycle = b
		}
		return cfg.StretchAt(d.demand2)
	}
	if d.stretchOK2 && d.demand2 == d.stretchDem2 {
		return d.stretchVal2
	}
	v := d.cfg2.StretchAt(d.demand2)
	d.stretchDem2, d.stretchVal2, d.stretchOK2 = d.demand2, v, true
	return v
}

// StretchAt computes the stretch for an arbitrary aggregate demand. Exposed
// so tests and the ω-model can evaluate the curve directly.
func (c DRAMConfig) StretchAt(demand float64) float64 {
	b := c.BandwidthBytesPerCycle
	knee := c.Knee * b
	switch {
	case demand <= knee:
		return 1
	case demand >= b:
		return demand / b
	default:
		// Smooth ramp from 1 at the knee to 1 at saturation boundary
		// (the fluid term takes over at demand == b where demand/b == 1,
		// so interpolate the queueing penalty up to that point).
		frac := (demand - knee) / (b - knee)
		// Queueing adds up to 15% latency just below saturation,
		// mimicking the measured soft knee of real memory systems.
		return 1 + 0.15*frac*frac
	}
}

// Omega returns the effective per-miss stall in cycles at the given
// aggregate demand: ω = ω₀ · stretch.
func (c DRAMConfig) Omega(demand float64) float64 {
	return c.UnloadedLatency * c.StretchAt(demand)
}

// UnconstrainedDemand returns the demand (bytes/cycle) a work segment of
// instrCycles CPU cycles and misses LLC misses generates when the bus is
// idle: misses·LineSize / (instrCycles + misses·ω₀).
func (c DRAMConfig) UnconstrainedDemand(instrCycles float64, misses float64) float64 {
	if misses <= 0 {
		return 0
	}
	t := instrCycles + misses*c.UnloadedLatency
	if t <= 0 {
		return c.SingleThreadBandwidth()
	}
	return misses * counters.LineSize / t
}
