package mem

import (
	"math"
	"testing"
	"testing/quick"

	"prophet/internal/counters"
)

func TestDRAMDefaults(t *testing.T) {
	d := NewDRAM(DRAMConfig{})
	cfg := d.Config()
	def := DefaultDRAM()
	if cfg != def {
		t.Fatalf("zero config not defaulted: %+v vs %+v", cfg, def)
	}
	if got := cfg.SingleThreadBandwidth(); math.Abs(got-64.0/40) > 1e-12 {
		t.Fatalf("single-thread bandwidth = %g, want 1.6", got)
	}
}

func TestStretchRegions(t *testing.T) {
	cfg := DefaultDRAM() // B=8, knee at 6
	if got := cfg.StretchAt(0); got != 1 {
		t.Errorf("stretch(0) = %g, want 1", got)
	}
	if got := cfg.StretchAt(5.9); got != 1 {
		t.Errorf("stretch below knee = %g, want 1", got)
	}
	mid := cfg.StretchAt(7)
	if mid <= 1 || mid >= 1.2 {
		t.Errorf("stretch in knee region = %g, want (1, 1.2)", mid)
	}
	if got := cfg.StretchAt(16); got != 2 {
		t.Errorf("stretch at 2x saturation = %g, want 2", got)
	}
}

// Property: stretch is monotone non-decreasing in demand and >= 1.
func TestStretchMonotoneProperty(t *testing.T) {
	cfg := DefaultDRAM()
	f := func(a, b uint16) bool {
		da := float64(a) / 1000
		db := float64(b) / 1000
		if da > db {
			da, db = db, da
		}
		sa, sb := cfg.StretchAt(da), cfg.StretchAt(db)
		return sa >= 1 && sb >= sa-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterUnregisterBalance(t *testing.T) {
	d := NewDRAM(DRAMConfig{})
	h1 := d.Register(1.5)
	h2 := d.Register(2.0)
	if d.ActiveThreads() != 2 || math.Abs(d.ActiveDemand()-3.5) > 1e-12 {
		t.Fatalf("after register: threads=%d demand=%g", d.ActiveThreads(), d.ActiveDemand())
	}
	d.Unregister(h1)
	d.Unregister(h2)
	if d.ActiveThreads() != 0 || d.ActiveDemand() != 0 {
		t.Fatalf("after unregister: threads=%d demand=%g", d.ActiveThreads(), d.ActiveDemand())
	}
	// Extra unregisters clamp at zero instead of going negative.
	d.Unregister(1)
	if d.ActiveDemand() != 0 || d.ActiveThreads() != 0 {
		t.Fatal("unregister underflow not clamped")
	}
}

func TestUnconstrainedDemand(t *testing.T) {
	cfg := DefaultDRAM()
	// Pure streaming: instr=0 => demand equals single-thread bandwidth.
	if got, want := cfg.UnconstrainedDemand(0, 1000), cfg.SingleThreadBandwidth(); math.Abs(got-want) > 1e-12 {
		t.Errorf("pure stream demand = %g, want %g", got, want)
	}
	// No misses: zero demand.
	if got := cfg.UnconstrainedDemand(1e6, 0); got != 0 {
		t.Errorf("no-miss demand = %g, want 0", got)
	}
	// Compute-heavy: demand shrinks as instruction work grows.
	d1 := cfg.UnconstrainedDemand(1000, 10)
	d2 := cfg.UnconstrainedDemand(100000, 10)
	if !(d2 < d1 && d1 > 0) {
		t.Errorf("demand not decreasing with compute: %g vs %g", d1, d2)
	}
}

func TestOmegaGrowsPastSaturation(t *testing.T) {
	cfg := DefaultDRAM()
	if got := cfg.Omega(0); got != cfg.UnloadedLatency {
		t.Errorf("omega unloaded = %g, want %g", got, cfg.UnloadedLatency)
	}
	if got := cfg.Omega(3 * cfg.BandwidthBytesPerCycle); math.Abs(got-3*cfg.UnloadedLatency) > 1e-9 {
		t.Errorf("omega at 3x = %g, want %g", got, 3*cfg.UnloadedLatency)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1 << 12, Ways: 2, LineBytes: 64}) // 4KB, 32 sets
	if c.Sets() != 32 {
		t.Fatalf("sets = %d, want 32", c.Sets())
	}
	if c.Access(0) {
		t.Error("first access should miss")
	}
	if !c.Access(0) {
		t.Error("second access to same line should hit")
	}
	if !c.Access(63) {
		t.Error("same line (byte 63) should hit")
	}
	if c.Access(64) {
		t.Error("next line should miss")
	}
	acc, miss := c.Stats()
	if acc != 4 || miss != 2 {
		t.Fatalf("stats = (%d, %d), want (4, 2)", acc, miss)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache with 1 set: capacity 2 lines.
	c := NewCache(CacheConfig{SizeBytes: 128, Ways: 2, LineBytes: 64})
	if c.Sets() != 1 {
		t.Fatalf("sets = %d, want 1", c.Sets())
	}
	c.Access(0)   // miss, load A
	c.Access(64)  // miss, load B
	c.Access(0)   // hit A (B is now LRU)
	c.Access(128) // miss, evicts B
	if !c.Access(0) {
		t.Error("A should still be resident")
	}
	if c.Access(64) {
		t.Error("B should have been evicted (LRU)")
	}
}

func TestStreamMissRateRegimes(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 1 << 16, Ways: 8, LineBytes: 64} // 64 KB
	// Footprint fits: steady-state sweep should hit almost always.
	small := StreamMissRate(cfg, 1<<14, 8)
	if small > 0.01 {
		t.Errorf("in-cache sweep miss rate = %g, want ~0", small)
	}
	// Footprint 16x the cache: every line access misses; with stride 8
	// there are 8 accesses per 64-byte line, so miss rate ~ 1/8.
	big := StreamMissRate(cfg, 1<<20, 8)
	if math.Abs(big-0.125) > 0.02 {
		t.Errorf("streaming miss rate = %g, want ~0.125", big)
	}
	// Stride >= line size: every access a new line, miss rate ~ 1.
	stride64 := StreamMissRate(cfg, 1<<20, 64)
	if stride64 < 0.95 {
		t.Errorf("line-stride miss rate = %g, want ~1", stride64)
	}
}

func TestStreamMissRateDegenerate(t *testing.T) {
	if got := StreamMissRate(DefaultLLC(), 0, 8); got != 0 {
		t.Errorf("zero footprint miss rate = %g, want 0", got)
	}
	// Non-positive stride defaults rather than looping forever.
	if got := StreamMissRate(CacheConfig{SizeBytes: 1 << 12}, 1<<10, 0); got < 0 {
		t.Errorf("negative miss rate %g", got)
	}
}

func TestLineSizeConstantConsistent(t *testing.T) {
	if counters.LineSize != 64 {
		t.Fatalf("LineSize = %d; DRAM/cache models assume 64", counters.LineSize)
	}
}
