package clock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualZeroValue(t *testing.T) {
	var v Virtual
	if got := v.Now(); got != 0 {
		t.Fatalf("zero Virtual.Now() = %d, want 0", got)
	}
}

func TestVirtualAdvance(t *testing.T) {
	var v Virtual
	v.Advance(100)
	v.Advance(23)
	if got := v.Now(); got != 123 {
		t.Fatalf("Now() = %d, want 123", got)
	}
}

func TestVirtualAdvanceNegativeIgnored(t *testing.T) {
	var v Virtual
	v.Advance(50)
	v.Advance(-10)
	if got := v.Now(); got != 50 {
		t.Fatalf("Now() after negative advance = %d, want 50", got)
	}
}

func TestVirtualSetMonotone(t *testing.T) {
	var v Virtual
	v.Set(200)
	v.Set(100) // must be ignored
	if got := v.Now(); got != 200 {
		t.Fatalf("Now() = %d, want 200", got)
	}
	v.Set(300)
	if got := v.Now(); got != 300 {
		t.Fatalf("Now() = %d, want 300", got)
	}
}

// Property: any sequence of Advance/Set calls keeps the clock monotone.
func TestVirtualMonotoneProperty(t *testing.T) {
	f := func(ops []int32) bool {
		var v Virtual
		prev := v.Now()
		for i, op := range ops {
			if i%2 == 0 {
				v.Advance(Cycles(op))
			} else {
				v.Set(Cycles(op))
			}
			if v.Now() < prev {
				return false
			}
			prev = v.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHostMonotone(t *testing.T) {
	h := NewHost(0)
	if h.Hz() != DefaultHz {
		t.Fatalf("Hz() = %g, want default %g", h.Hz(), DefaultHz)
	}
	a := h.Now()
	time.Sleep(2 * time.Millisecond)
	b := h.Now()
	if b <= a {
		t.Fatalf("host clock not advancing: %d then %d", a, b)
	}
	// 2ms at 2.4GHz is 4.8M cycles; allow wide slack for scheduling noise.
	if d := b - a; d < FromSeconds(0.001, DefaultHz) {
		t.Fatalf("host clock advanced only %d cycles over 2ms", d)
	}
}

func TestConversionsRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		s := float64(ms) / 1000
		c := FromSeconds(s, DefaultHz)
		back := ToSeconds(c, DefaultHz)
		diff := back - s
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConversionsDefaultHz(t *testing.T) {
	if got := ToSeconds(Cycles(DefaultHz), 0); got != 1 {
		t.Fatalf("ToSeconds(DefaultHz cycles) = %g, want 1", got)
	}
	if got := FromSeconds(1, 0); got != Cycles(DefaultHz) {
		t.Fatalf("FromSeconds(1s) = %d, want %d", got, Cycles(DefaultHz))
	}
}
