// Package clock provides the cycle clocks used by interval profiling and the
// simulated machine.
//
// The paper reads the x86 time-stamp counter (rdtsc) for high-resolution
// interval profiling (§VI-A). This reproduction offers two clocks behind one
// interface: a Virtual clock driven by the discrete-event machine (exact,
// deterministic, free of the cross-core rdtsc skew the paper works around)
// and a Host clock that converts the monotonic wall clock of the machine the
// profiler runs on into nominal cycles.
package clock

import "time"

// Cycles is a count of CPU cycles. All lengths in the program tree, all
// virtual times in the simulator, and all emulator outputs are expressed in
// Cycles.
type Cycles int64

// Clock yields a monotonically non-decreasing cycle stamp.
type Clock interface {
	// Now returns the current cycle stamp.
	Now() Cycles
}

// DefaultHz is the nominal core frequency used to convert between cycles and
// seconds (and to express DRAM traffic in MB/s, as the paper's Eq. 6/7 do).
// It approximates the 2.4 GHz Westmere parts used in the paper.
const DefaultHz = 2.4e9

// Virtual is a manually advanced clock. The zero value reads 0 cycles.
type Virtual struct {
	t Cycles
}

// Now returns the current virtual time.
func (v *Virtual) Now() Cycles { return v.t }

// Advance moves the clock forward by d cycles. Negative advances are ignored
// so a buggy caller cannot make time run backwards.
func (v *Virtual) Advance(d Cycles) {
	if d > 0 {
		v.t += d
	}
}

// Set jumps the clock to t if t is in the future; earlier stamps are ignored
// to preserve monotonicity.
func (v *Virtual) Set(t Cycles) {
	if t > v.t {
		v.t = t
	}
}

// Skewed wraps a base clock and perturbs each reading through Skew — the
// cross-core rdtsc drift the paper's tool has to survive on real hardware
// (§VI-A). internal/faults drives it with a seeded offset; the zero Skew
// is pass-through. Monotonicity is enforced: a skew that would make time
// run backwards is clamped to the previous reading, exactly as a
// monotone-filtered rdtsc would behave.
type Skewed struct {
	// Base is the underlying clock.
	Base Clock
	// Skew returns the offset (positive or negative cycles) to add to
	// the given base reading. It runs on the reading goroutine and must
	// be deterministic for reproducible runs.
	Skew func(base Cycles) Cycles

	last Cycles
}

// Now returns the skewed, monotonicity-clamped cycle stamp.
func (s *Skewed) Now() Cycles {
	t := s.Base.Now()
	if s.Skew != nil {
		t += s.Skew(t)
	}
	if t < s.last {
		t = s.last
	}
	s.last = t
	return t
}

// Host converts the Go monotonic clock into nominal cycles at Hz. It stands
// in for rdtsc: monotone, cheap, and good enough for interval profiling on a
// real machine.
type Host struct {
	hz    float64
	start time.Time
}

// NewHost returns a host clock ticking at hz cycles per second. A
// non-positive hz selects DefaultHz.
func NewHost(hz float64) *Host {
	if hz <= 0 {
		hz = DefaultHz
	}
	return &Host{hz: hz, start: time.Now()}
}

// Now returns the cycles elapsed since the clock was created.
func (h *Host) Now() Cycles {
	return Cycles(float64(time.Since(h.start)) * h.hz / float64(time.Second))
}

// Hz reports the nominal frequency of the host clock.
func (h *Host) Hz() float64 { return h.hz }

// ToSeconds converts a cycle count to seconds at the given frequency.
func ToSeconds(c Cycles, hz float64) float64 {
	if hz <= 0 {
		hz = DefaultHz
	}
	return float64(c) / hz
}

// FromSeconds converts seconds to cycles at the given frequency.
func FromSeconds(s, hz float64) Cycles {
	if hz <= 0 {
		hz = DefaultHz
	}
	return Cycles(s * hz)
}
