package sweep

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunOrderedResults(t *testing.T) {
	// The same grid must produce the same indexed results at every pool
	// size — the determinism contract the harness's byte-identical
	// output rests on.
	cell := func(i int) (int, error) { return i*i + 7, nil }
	want := Run(Engine{Workers: 1}, 100, cell)
	for _, workers := range []int{2, 3, 8, 16, 100} {
		got := Run(Engine{Workers: workers}, 100, cell)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Index != i || got[i].Value != want[i].Value || got[i].Err != nil {
				t.Fatalf("workers=%d cell %d: got %+v want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunZeroCells(t *testing.T) {
	out := Run(Engine{}, 0, func(i int) (int, error) { t.Fatal("cell called"); return 0, nil })
	if len(out) != 0 {
		t.Fatalf("outcomes = %d, want 0", len(out))
	}
}

func TestRunErrorsStayPerCell(t *testing.T) {
	boom := errors.New("boom")
	out := Run(Engine{Workers: 4}, 10, func(i int) (int, error) {
		if i%3 == 0 {
			return 0, boom
		}
		return i, nil
	})
	for i, o := range out {
		if i%3 == 0 {
			if !errors.Is(o.Err, boom) {
				t.Errorf("cell %d: err = %v, want boom", i, o.Err)
			}
		} else if o.Err != nil || o.Value != i {
			t.Errorf("cell %d: (%d, %v), want (%d, nil)", i, o.Value, o.Err, i)
		}
	}
}

func TestRunPanicIsolation(t *testing.T) {
	// A worker panic becomes that cell's *PanicError; every other cell
	// completes normally.
	for _, workers := range []int{1, 4} {
		out := Run(Engine{Workers: workers}, 20, func(i int) (string, error) {
			if i == 7 {
				panic("cell exploded")
			}
			return fmt.Sprintf("ok-%d", i), nil
		})
		for i, o := range out {
			if i == 7 {
				var pe *PanicError
				if !errors.As(o.Err, &pe) {
					t.Fatalf("workers=%d: cell 7 err = %v, want PanicError", workers, o.Err)
				}
				if pe.Cell != 7 || pe.Value != "cell exploded" || len(pe.Stack) == 0 {
					t.Errorf("workers=%d: PanicError = cell %d value %v stack %d bytes",
						workers, pe.Cell, pe.Value, len(pe.Stack))
				}
				continue
			}
			if o.Err != nil || o.Value != fmt.Sprintf("ok-%d", i) {
				t.Errorf("workers=%d cell %d: (%q, %v)", workers, i, o.Value, o.Err)
			}
		}
	}
}

func TestWorkerCountDefaults(t *testing.T) {
	if got := (Engine{}).WorkerCount(); got < 1 {
		t.Errorf("default WorkerCount = %d, want >= 1", got)
	}
	if got := (Engine{Workers: -3}).WorkerCount(); got < 1 {
		t.Errorf("negative WorkerCount = %d, want >= 1", got)
	}
	if got := (Engine{Workers: 5}).WorkerCount(); got != 5 {
		t.Errorf("WorkerCount = %d, want 5", got)
	}
}

func TestCacheSingleflight(t *testing.T) {
	var c Cache[string, int]
	var computes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Get("k", func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if v != 42 || err != nil {
				t.Errorf("Get = (%d, %v), want (42, nil)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 31 {
		t.Errorf("stats = %d hits / %d misses, want 31/1", hits, misses)
	}
}

func TestCacheErrorsAndPanicsAreCached(t *testing.T) {
	var c Cache[int, int]
	boom := errors.New("boom")
	var computes atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := c.Get(1, func() (int, error) { computes.Add(1); return 0, boom }); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("error compute ran %d times, want 1", n)
	}
	_, err := c.Get(2, func() (int, error) { panic("compute exploded") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "compute exploded" {
		t.Fatalf("err = %v, want PanicError(compute exploded)", err)
	}
	// Waiters arriving after the panic share the cached failure.
	if _, err2 := c.Get(2, func() (int, error) { t.Fatal("recomputed"); return 0, nil }); !errors.As(err2, &pe) {
		t.Fatalf("second err = %v, want cached PanicError", err2)
	}
}

// TestRunCacheRaceStress drives many cells through a shared cache at
// once. It exists for `go test -race -short`: the race detector must see
// the pool and cache as clean under heavy key contention.
func TestRunCacheRaceStress(t *testing.T) {
	var c Cache[int, []int]
	out := Run(Engine{Workers: 8}, 200, func(i int) (int, error) {
		key := i % 9 // heavy sharing across cells
		v, err := c.Get(key, func() ([]int, error) {
			s := make([]int, 64)
			for j := range s {
				s[j] = key * j
			}
			return s, nil
		})
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, x := range v {
			sum += x
		}
		return sum, nil
	})
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("cell %d: %v", i, o.Err)
		}
		want := (i % 9) * (63 * 64 / 2)
		if o.Value != want {
			t.Errorf("cell %d = %d, want %d", i, o.Value, want)
		}
	}
	if c.Len() != 9 {
		t.Errorf("cache keys = %d, want 9", c.Len())
	}
}
