package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunCtxPreCanceledSkipsAllCells: a context canceled before the sweep
// starts must claim no cells — every outcome comes back Skipped with an
// Err wrapping the cancellation cause.
func TestRunCtxPreCanceledSkipsAllCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	out := RunCtx(ctx, Engine{Workers: 4}, 20, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d cells ran under a pre-canceled context, want 0", n)
	}
	if len(out) != 20 {
		t.Fatalf("%d outcomes, want 20", len(out))
	}
	for i, o := range out {
		if !o.Skipped {
			t.Errorf("cell %d not marked Skipped", i)
		}
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("cell %d Err = %v, want wrapped context.Canceled", i, o.Err)
		}
		if o.Index != i {
			t.Errorf("cell %d Index = %d", i, o.Index)
		}
	}
}

// TestRunCtxMidSweepCancelKeepsPartialResults: canceling mid-sweep stops
// new cells from starting, lets in-flight cells drain, and marks the rest
// Skipped — no outcome is ever silently missing.
func TestRunCtxMidSweepCancelKeepsPartialResults(t *testing.T) {
	const n = 50
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var started atomic.Int64
	out := RunCtx(ctx, Engine{Workers: 4}, n, func(cellCtx context.Context, i int) (int, error) {
		if started.Add(1) == 8 {
			cancel() // fire mid-sweep from inside a cell
		}
		// In-flight cells observe the cancellation through their ctx and
		// may finish early — but they still return a real outcome.
		select {
		case <-cellCtx.Done():
		case <-time.After(time.Millisecond):
		}
		return i * i, nil
	})

	var real, skipped int
	for i, o := range out {
		switch {
		case o.Skipped:
			skipped++
			if !errors.Is(o.Err, context.Canceled) {
				t.Errorf("skipped cell %d Err = %v, want wrapped context.Canceled", i, o.Err)
			}
		default:
			real++
			if o.Err != nil {
				t.Errorf("cell %d Err = %v", i, o.Err)
			}
			if o.Value != i*i {
				t.Errorf("cell %d Value = %d, want %d", i, o.Value, i*i)
			}
		}
	}
	if real+skipped != n {
		t.Fatalf("real %d + skipped %d != %d cells", real, skipped, n)
	}
	if real == 0 {
		t.Error("no cell completed before the cancel — in-flight cells should drain to real outcomes")
	}
	if skipped == 0 {
		t.Error("no cell was skipped after the cancel")
	}
}

// TestRunCtxFailFastCancelsRemainingCells: with Engine.FailFast, the
// first cell error cancels the remainder of the sweep; unclaimed cells
// come back Skipped instead of running.
func TestRunCtxFailFastCancelsRemainingCells(t *testing.T) {
	boom := errors.New("cell exploded")
	const n = 200
	var ran atomic.Int64
	// Workers: 1 makes the serial path deterministic: cell 3 fails, and
	// every later cell must be skipped without running.
	out := RunCtx(context.Background(), Engine{Workers: 1, FailFast: true}, n,
		func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
	if got := ran.Load(); got != 4 {
		t.Fatalf("%d cells ran, want 4 (0..3)", got)
	}
	if !errors.Is(out[3].Err, boom) || out[3].Skipped {
		t.Fatalf("cell 3 = %+v, want the original error, not skipped", out[3])
	}
	for i := 4; i < n; i++ {
		if !out[i].Skipped {
			t.Fatalf("cell %d ran after FailFast error", i)
		}
		if !errors.Is(out[i].Err, context.Canceled) {
			t.Fatalf("cell %d Err = %v, want wrapped context.Canceled", i, out[i].Err)
		}
	}
}

// TestRunCtxFailFastParallelStops: FailFast on the pooled path — after an
// early error, far fewer than n cells run. (The exact count is racy; the
// invariant is that the sweep stops claiming cells soon after the error
// and that all skipped cells are marked.)
func TestRunCtxFailFastParallelStops(t *testing.T) {
	boom := errors.New("first cell fails")
	const n = 1000
	var ran atomic.Int64
	out := RunCtx(context.Background(), Engine{Workers: 4, FailFast: true}, n,
		func(cellCtx context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, boom
			}
			// Simulate work that honours cancellation.
			select {
			case <-cellCtx.Done():
			case <-time.After(100 * time.Microsecond):
			}
			return i, nil
		})
	if got := ran.Load(); got == n {
		t.Fatalf("all %d cells ran despite FailFast error in cell 0", n)
	}
	var skipped int
	for i, o := range out {
		if o.Skipped {
			skipped++
			if !errors.Is(o.Err, context.Canceled) {
				t.Errorf("cell %d Err = %v, want wrapped context.Canceled", i, o.Err)
			}
		}
	}
	if skipped == 0 {
		t.Error("no cells skipped after FailFast error")
	}
	if int(ran.Load())+skipped != n {
		t.Errorf("ran %d + skipped %d != %d", ran.Load(), skipped, n)
	}
}

// TestRunCtxErrorWithoutFailFastContinues: without FailFast a cell error
// stays per-cell — the rest of the sweep runs to completion (the legacy
// Run contract, preserved under RunCtx).
func TestRunCtxErrorWithoutFailFastContinues(t *testing.T) {
	boom := errors.New("boom")
	out := RunCtx(context.Background(), Engine{Workers: 2}, 30,
		func(_ context.Context, i int) (int, error) {
			if i == 0 {
				return 0, boom
			}
			return i, nil
		})
	for i := 1; i < 30; i++ {
		if out[i].Err != nil || out[i].Skipped {
			t.Fatalf("cell %d = %+v, want clean run despite cell 0 error", i, out[i])
		}
	}
	if !errors.Is(out[0].Err, boom) {
		t.Fatalf("cell 0 Err = %v", out[0].Err)
	}
}

// TestCacheLeaderCancelPanicDoesNotPoison: a leader canceled via context
// must not install the cancellation as the cached value for later
// waiters — including when the cancellation escapes the compute as a
// panic (the legacy panicking paths the public API still unwraps with
// recoverToError). Pre-fix, such a panic was memoized as a *PanicError,
// poisoning the key forever.
func TestCacheLeaderCancelPanicDoesNotPoison(t *testing.T) {
	var c Cache[string, int]
	ctx, cancel := context.WithCancel(context.Background())

	// Leader: a waiter deduplicates onto the flight, then the leader is
	// canceled and aborts by panicking with the context error.
	leaderIn := make(chan struct{})
	waiterIn := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		<-leaderIn // leader's compute is running
		go func() {
			close(waiterIn)
			_, err := c.Get("k", func() (int, error) {
				t.Error("waiter recomputed while the leader's flight was live")
				return 0, nil
			})
			waiterErr <- err
		}()
		<-waiterIn
		time.Sleep(time.Millisecond) // let the waiter park on the flight
		cancel()
	}()
	_, err := c.Get("k", func() (int, error) {
		close(leaderIn)
		<-ctx.Done()
		panic(ctx.Err()) // legacy cancellation-by-panic
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want the flight's cancellation", err)
	}

	// The key must not be poisoned: a fresh Get recomputes and succeeds.
	v, err := c.Get("k", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("fresh Get = %d, %v; want 42 after canceled leader", v, err)
	}
}

// TestCacheWrappedCancellationPanicNotMemoized: cancellations that arrive
// wrapped (fmt.Errorf %w chains) behave the same whether returned or
// panicked.
func TestCacheWrappedCancellationPanicNotMemoized(t *testing.T) {
	var c Cache[string, int]
	_, err := c.Get("k", func() (int, error) {
		panic(fmt.Errorf("calibrate: %w", context.DeadlineExceeded))
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("first Get err = %v, want wrapped DeadlineExceeded", err)
	}
	v, err := c.Get("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("recompute = %d, %v; want 7", v, err)
	}
	// Non-cancellation panics still cache (the documented contract).
	_, err = c.Get("boom", func() (int, error) { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic err = %v, want *PanicError", err)
	}
	_, err2 := c.Get("boom", func() (int, error) { return 0, nil })
	if !errors.As(err2, &pe) {
		t.Fatalf("cached panic err = %v, want the memoized *PanicError", err2)
	}
}

// TestCacheDoesNotMemoizeCancellation: a cache compute that fails with a
// cancellation error must not poison the key — a later Get recomputes and
// can succeed. (Real errors and panics stay cached; see
// TestCacheErrorsAndPanicsAreCached.)
func TestCacheDoesNotMemoizeCancellation(t *testing.T) {
	var c Cache[string, int]
	_, err := c.Get("k", func() (int, error) { return 0, context.Canceled })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first Get err = %v", err)
	}
	_, err = c.Get("k", func() (int, error) { return 0, context.DeadlineExceeded })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second Get err = %v, want recompute (DeadlineExceeded)", err)
	}
	v, err := c.Get("k", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("third Get = %d, %v; want 42 after cancellation retries", v, err)
	}
	// Now memoized for real.
	v, err = c.Get("k", func() (int, error) { return 0, errors.New("must not run") })
	if err != nil || v != 42 {
		t.Fatalf("fourth Get = %d, %v; want cached 42", v, err)
	}
}
