package sweep

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"prophet/internal/obs"
)

// Cache memoizes expensive deterministic computations by key with
// singleflight semantics: concurrent Gets for the same key run the
// compute function exactly once and share its result. The experiment
// harness uses it so figures that share samples (Fig. 11's six panels
// reuse the same random trees; Fig. 12 / Table III reuse benchmark
// profiles) profile each input once no matter how many cells need it.
//
// The zero value is ready to use. Compute functions must be
// deterministic for the cache to preserve the harness's determinism
// guarantee; errors (including recovered panics) are cached like values,
// EXCEPT cancellation errors (context.Canceled / DeadlineExceeded), which
// are returned to the waiters of that flight but never memoized — a later
// Get with a live context recomputes instead of replaying the stale
// cancellation.
type Cache[K comparable, V any] struct {
	mu     sync.Mutex
	m      map[K]*cacheEntry[V]
	hits   atomic.Int64
	misses atomic.Int64
	dedups atomic.Int64
	ctrs   CacheCounters
}

// CacheCounters are optional external metric handles for a cache; nil
// members are no-ops, so a zero value disables instrumentation.
type CacheCounters struct {
	// Hits counts Gets that found the key present (completed or still
	// in flight).
	Hits *obs.Counter
	// Misses counts Gets that ran the compute function.
	Misses *obs.Counter
	// Dedups counts singleflight deduplications: Gets that found the
	// key's compute still in flight and waited for it instead of
	// recomputing.
	Dedups *obs.Counter
}

// Instrument attaches metric counters (typically from an obs.Registry)
// that mirror the cache's internal hit/miss/dedup statistics from this
// point on. Safe only before the cache is shared across goroutines.
func (c *Cache[K, V]) Instrument(ctrs CacheCounters) {
	c.ctrs = ctrs
}

type cacheEntry[V any] struct {
	ready chan struct{} // closed when v/err are final for this flight
	v     V
	err   error
}

// Get returns the cached value for key, computing it with compute on
// first use. Concurrent callers of the same key block until the single
// compute finishes. A panic inside compute is recovered into a
// *PanicError (Cell -1) shared by all waiters.
func (c *Cache[K, V]) Get(key K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry[V]{ready: make(chan struct{})}
		c.m[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		c.ctrs.Hits.Inc()
		select {
		case <-e.ready:
			// Completed flight: a plain hit.
		default:
			// Still computing: this Get deduplicates onto the flight.
			c.dedups.Add(1)
			c.ctrs.Dedups.Inc()
		}
		<-e.ready
		return e.v, e.err
	}
	c.misses.Add(1)
	c.ctrs.Misses.Inc()
	func() {
		defer func() {
			if r := recover(); r != nil {
				var zero V
				e.v = zero
				// A legacy panicking cancellation path (a compute layer that
				// still signals ctx expiry by panicking with the context
				// error) must stay a cancellation: wrapped in a *PanicError
				// it would no longer satisfy isCancellation and the flight's
				// abort would be memoized for every later Get of the key.
				if err, ok := r.(error); ok && isCancellation(err) {
					e.err = err
					return
				}
				e.err = &PanicError{Cell: -1, Value: r, Stack: debug.Stack()}
			}
		}()
		e.v, e.err = compute()
	}()
	if isCancellation(e.err) {
		// Drop the entry before releasing the waiters: this flight's
		// cancellation must not answer future Gets.
		c.mu.Lock()
		if c.m[key] == e {
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.v, e.err
}

// isCancellation reports whether err stems from a canceled or expired
// caller context rather than from the computation itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Len returns the number of cached keys.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the hit/miss counters (a "hit" is any Get that found the
// key already present, even if the compute was still in flight).
func (c *Cache[K, V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Dedups returns the number of singleflight deduplications: hits that
// arrived while the key's compute was still in flight and shared its
// result.
func (c *Cache[K, V]) Dedups() int64 {
	return c.dedups.Load()
}
