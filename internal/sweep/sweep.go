// Package sweep runs grids of independent experiment cells on a bounded
// worker pool.
//
// The evaluation harness (internal/experiments) is an embarrassingly
// parallel grid: every (workload, seed, cores, schedule) cell is one
// deterministic profile→emulate pipeline with no shared mutable state.
// Run shards such a grid over a GOMAXPROCS-sized pool and returns the
// results indexed by cell, so callers merge them in deterministic cell
// order and produce output that is byte-identical to a serial run
// regardless of worker count.
//
// Cells are isolated: a panic inside one cell is recovered and reported
// as that cell's *PanicError instead of killing the whole sweep.
package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"prophet/internal/obs"
)

// Engine bounds the worker pool used by Run.
type Engine struct {
	// Workers is the maximum number of concurrent cells. Zero (or
	// negative) selects GOMAXPROCS; 1 runs the sweep serially on the
	// calling goroutine.
	Workers int
	// FailFast cancels the rest of the sweep when any cell returns an
	// error (RunCtx only): in-flight cells drain, cells not yet claimed
	// are marked Skipped.
	FailFast bool
	// Metrics, when set, counts per-cell outcomes (obs.MSweepCellsOK /
	// Failed / Skipped) across every sweep run on this engine.
	Metrics *obs.Registry
}

// WorkerCount resolves the effective pool size.
func (e Engine) WorkerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError reports a panic recovered inside a sweep cell (or a cache
// compute function, where Cell is -1).
type PanicError struct {
	// Cell is the index of the failed cell (-1 for cache computes).
	Cell int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at the point of the panic.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("sweep: cell %d panicked: %v", p.Cell, p.Value)
}

// Outcome is the result of one cell. It marshals to JSON with stable
// field names (index/value/err/skipped), Err as its string message, so
// sweep results share one vocabulary with traces and metrics snapshots.
type Outcome[T any] struct {
	// Index is the cell index (Outcome i of Run is always cell i; the
	// field exists so outcomes can be filtered and still traced back).
	Index int `json:"index"`
	// Value is the cell's result (zero if Err != nil).
	Value T `json:"value"`
	// Err is the cell's error; a recovered panic surfaces as *PanicError.
	Err error `json:"-"`
	// Skipped marks a cell that never ran: the sweep's context was
	// canceled (or a FailFast sweep had already failed) before the cell
	// was claimed. Err wraps the cancellation cause.
	Skipped bool `json:"skipped,omitempty"`
}

// outcomeJSON is the stable wire form of Outcome.
type outcomeJSON[T any] struct {
	Index   int    `json:"index"`
	Value   T      `json:"value"`
	Err     string `json:"err,omitempty"`
	Skipped bool   `json:"skipped,omitempty"`
}

// MarshalJSON writes the outcome with Err flattened to its message.
func (o Outcome[T]) MarshalJSON() ([]byte, error) {
	w := outcomeJSON[T]{Index: o.Index, Value: o.Value, Skipped: o.Skipped}
	if o.Err != nil {
		w.Err = o.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores an outcome; a non-empty err string becomes an
// opaque error carrying the same message (the concrete type is not
// preserved across the wire).
func (o *Outcome[T]) UnmarshalJSON(data []byte) error {
	var w outcomeJSON[T]
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	o.Index, o.Value, o.Skipped, o.Err = w.Index, w.Value, w.Skipped, nil
	if w.Err != "" {
		o.Err = errors.New(w.Err)
	}
	return nil
}

// Run evaluates cells 0..n-1 with fn on e's worker pool and returns one
// Outcome per cell, indexed by cell. Cells are claimed dynamically (an
// atomic cursor, so imbalanced cells load-balance), but the returned
// slice is ordered by cell index: merging outcomes front to back yields
// the same result order as a serial loop, whatever the worker count.
func Run[T any](e Engine, n int, fn func(i int) (T, error)) []Outcome[T] {
	return RunCtx(context.Background(), e, n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// RunCtx is Run with cancellation: once ctx fires, no new cell starts —
// in-flight cells drain (fn observes the cancellation through its ctx
// argument and may return early), and every cell not yet claimed comes
// back with Skipped set and an Err wrapping the cancellation. Partial
// results already computed are kept, so a canceled sweep still merges
// deterministically: every cell is either a real outcome or marked
// skipped, never silently missing.
//
// With e.FailFast, the first cell error cancels the rest of the sweep the
// same way.
func RunCtx[T any](ctx context.Context, e Engine, n int, fn func(ctx context.Context, i int) (T, error)) []Outcome[T] {
	out := make([]Outcome[T], n)
	if n == 0 {
		return out
	}
	cellCtx := ctx
	cancel := context.CancelFunc(func() {})
	if e.FailFast {
		cellCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	// Outcome counters: nil (no-op) handles when e.Metrics is unset.
	cellsOK := e.Metrics.Counter(obs.MSweepCellsOK)
	cellsFailed := e.Metrics.Counter(obs.MSweepCellsFailed)
	cellsSkipped := e.Metrics.Counter(obs.MSweepCellsSkipped)
	step := func(i int) {
		if err := cellCtx.Err(); err != nil {
			cellsSkipped.Inc()
			out[i] = Outcome[T]{
				Index:   i,
				Err:     fmt.Errorf("sweep: cell %d skipped: %w", i, err),
				Skipped: true,
			}
			return
		}
		out[i] = runCell(cellCtx, i, fn)
		if out[i].Err != nil {
			cellsFailed.Inc()
			cancel() // no-op unless FailFast
		} else {
			cellsOK.Inc()
		}
	}
	workers := e.WorkerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			step(i)
		}
		return out
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				step(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// runCell evaluates one cell with panic isolation.
func runCell[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (o Outcome[T]) {
	o.Index = i
	defer func() {
		if r := recover(); r != nil {
			var zero T
			o.Value = zero
			o.Err = &PanicError{Cell: i, Value: r, Stack: debug.Stack()}
		}
	}()
	o.Value, o.Err = fn(ctx, i)
	return o
}
