package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"testing"

	"prophet/internal/obs"
)

func TestOutcomeJSONRoundTrip(t *testing.T) {
	outs := []Outcome[string]{
		{Index: 0, Value: "ok"},
		{Index: 1, Err: errors.New("cell exploded")},
		{Index: 2, Err: errors.New("skipped: context canceled"), Skipped: true},
	}
	data, err := json.Marshal(outs)
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"index":0,"value":"ok"},{"index":1,"value":"","err":"cell exploded"},{"index":2,"value":"","err":"skipped: context canceled","skipped":true}]`
	if string(data) != want {
		t.Fatalf("JSON = %s\nwant   %s", data, want)
	}
	var back []Outcome[string]
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if back[i].Index != outs[i].Index || back[i].Value != outs[i].Value || back[i].Skipped != outs[i].Skipped {
			t.Errorf("[%d] round-trip = %+v, want %+v", i, back[i], outs[i])
		}
		switch {
		case outs[i].Err == nil && back[i].Err != nil:
			t.Errorf("[%d] spurious err %v", i, back[i].Err)
		case outs[i].Err != nil && (back[i].Err == nil || back[i].Err.Error() != outs[i].Err.Error()):
			t.Errorf("[%d] err = %v, want %v", i, back[i].Err, outs[i].Err)
		}
	}
}

func TestSweepOutcomeCounters(t *testing.T) {
	reg := &obs.Registry{}
	e := Engine{Workers: 2, Metrics: reg}
	boom := errors.New("boom")
	RunCtx(context.Background(), e, 6, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	snap := reg.Snapshot()
	if snap.Counters[obs.MSweepCellsOK] != 5 {
		t.Errorf("ok = %d, want 5", snap.Counters[obs.MSweepCellsOK])
	}
	if snap.Counters[obs.MSweepCellsFailed] != 1 {
		t.Errorf("failed = %d, want 1", snap.Counters[obs.MSweepCellsFailed])
	}

	// A canceled sweep counts every unclaimed cell as skipped.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	RunCtx(ctx, e, 4, func(_ context.Context, i int) (int, error) { return i, nil })
	if got := reg.Counter(obs.MSweepCellsSkipped).Value(); got != 4 {
		t.Errorf("skipped = %d, want 4", got)
	}
}

func TestCacheDedupCounting(t *testing.T) {
	var c Cache[int, int]
	reg := &obs.Registry{}
	c.Instrument(CacheCounters{
		Hits:   reg.Counter(obs.MCacheHits),
		Misses: reg.Counter(obs.MCacheMisses),
		Dedups: reg.Counter(obs.MCacheDedups),
	})

	const waiters = 4
	computing := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Get(1, func() (int, error) {
			close(computing) // flight is now in progress
			<-release
			return 42, nil
		})
	}()
	<-computing
	wg.Add(waiters)
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], _ = c.Get(1, func() (int, error) {
				t.Error("deduplicated Get recomputed")
				return 0, nil
			})
		}(i)
	}
	// The waiters' hit/dedup counts are registered before they block on
	// the flight, so waiting for them avoids racing the assertion.
	for c.Dedups() < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i, v := range results {
		if v != 42 {
			t.Errorf("waiter %d got %d, want 42", i, v)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != waiters {
		t.Errorf("stats = %d hits / %d misses, want %d/1", hits, misses, waiters)
	}
	if c.Dedups() != waiters {
		t.Errorf("dedups = %d, want %d", c.Dedups(), waiters)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MCacheHits] != waiters ||
		snap.Counters[obs.MCacheMisses] != 1 ||
		snap.Counters[obs.MCacheDedups] != waiters {
		t.Errorf("registry counters = %v", snap.Counters)
	}

	// A post-completion Get is a plain hit, not a dedup.
	if v, _ := c.Get(1, nil); v != 42 {
		t.Errorf("completed hit = %d", v)
	}
	if c.Dedups() != waiters {
		t.Errorf("completed hit counted as dedup")
	}
}
