package omprt

import (
	"testing"

	"prophet/internal/clock"
	"prophet/internal/sim"
)

// zeroOv removes all runtime overheads so tests can assert exact makespans.
var zeroOv = Overheads{}

func mcfg(cores int) sim.Config {
	return sim.Config{Cores: cores, Quantum: 10_000, ContextSwitch: -1}
}

// runFor executes one parallel-for on a fresh machine and returns makespan.
func runFor(cores, threads, n int, sched Sched, iter func(i int) clock.Cycles) clock.Cycles {
	rt := New(threads, zeroOv)
	end, _ := sim.Run(mcfg(cores), func(t *sim.Thread) {
		rt.ParallelFor(t, n, sched, func(w *sim.Thread, i int) {
			w.Work(iter(i))
		})
	})
	return end
}

func TestSchedStrings(t *testing.T) {
	cases := map[string]Sched{
		"(static)":    SchedStatic,
		"(static,1)":  SchedStatic1,
		"(dynamic,1)": SchedDynamic1,
		"(guided)":    SchedGuided,
		"(dynamic,4)": {Kind: Dynamic, Chunk: 4},
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestAllIterationsRunExactlyOnce(t *testing.T) {
	for _, sched := range []Sched{SchedStatic, SchedStatic1, SchedDynamic1, SchedGuided, {Kind: StaticChunk, Chunk: 3}, {Kind: Dynamic, Chunk: 5}} {
		n := 97
		seen := make([]int, n)
		rt := New(4, zeroOv)
		sim.Run(mcfg(4), func(t *sim.Thread) {
			rt.ParallelFor(t, n, sched, func(w *sim.Thread, i int) {
				seen[i]++
				w.Work(10)
			})
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("%v: iteration %d ran %d times", sched, i, c)
			}
		}
	}
}

func TestStaticBlockPartition(t *testing.T) {
	// 4 threads, 8 equal iterations of 1000: static gives each thread a
	// contiguous pair; makespan 2000.
	end := runFor(4, 4, 8, SchedStatic, func(int) clock.Cycles { return 1000 })
	if end != 2000 {
		t.Fatalf("makespan = %d, want 2000", end)
	}
}

func TestStaticImbalanceTriangular(t *testing.T) {
	// Triangular work: iteration i costs (i+1)*100, n=8, 2 threads.
	// static: T0 gets 0..3 (1000), T1 gets 4..7 (2600) -> 2600.
	// static,1: T0 gets evens (1600), T1 odds (2000) -> 2000.
	iter := func(i int) clock.Cycles { return clock.Cycles((i + 1) * 100) }
	if end := runFor(2, 2, 8, SchedStatic, iter); end != 2600 {
		t.Fatalf("(static) makespan = %d, want 2600", end)
	}
	if end := runFor(2, 2, 8, SchedStatic1, iter); end != 2000 {
		t.Fatalf("(static,1) makespan = %d, want 2000", end)
	}
}

func TestDynamicAdaptsToImbalance(t *testing.T) {
	// One giant iteration plus many small ones: dynamic keeps the other
	// thread busy, static,1 may stack smalls behind the giant's partner.
	iter := func(i int) clock.Cycles {
		if i == 0 {
			return 10_000
		}
		return 1_000
	}
	// n=11: dynamic: T0 takes i0 (10000); T1 does the ten smalls
	// (10000); makespan ~10000.
	end := runFor(2, 2, 11, SchedDynamic1, iter)
	if end != 10_000 {
		t.Fatalf("(dynamic,1) makespan = %d, want 10000", end)
	}
}

func TestGuidedCoversAndBalances(t *testing.T) {
	end := runFor(4, 4, 1000, SchedGuided, func(int) clock.Cycles { return 100 })
	// Perfect would be 25000; guided should be within 25%.
	if end < 25_000 || end > 31_250 {
		t.Fatalf("(guided) makespan = %d, want within [25000, 31250]", end)
	}
}

func TestTeamLargerThanLoopClamped(t *testing.T) {
	// 8 threads but only 3 iterations: must not spawn idle threads that
	// would add join overhead; exact makespan = 1 iteration since 3 run
	// in parallel.
	end := runFor(8, 8, 3, SchedStatic, func(int) clock.Cycles { return 5000 })
	if end != 5000 {
		t.Fatalf("makespan = %d, want 5000", end)
	}
}

func TestSingleThreadRuntime(t *testing.T) {
	end := runFor(4, 1, 5, SchedDynamic1, func(int) clock.Cycles { return 100 })
	if end != 500 {
		t.Fatalf("single-thread makespan = %d, want 500", end)
	}
}

func TestForkJoinOverheadsCharged(t *testing.T) {
	ov := Overheads{ForkPerThread: 1000, JoinBarrier: 2000, WorkerInit: 100}
	rt := New(4, ov)
	end, _ := sim.Run(mcfg(4), func(t *sim.Thread) {
		rt.ParallelFor(t, 4, SchedStatic, func(w *sim.Thread, i int) {
			w.Work(10_000)
		})
	})
	// Master: 3*1000 fork + init 100 + 10000 + join(workers started
	// 3000 late, each +100 init) ... lower bound: 3000+100+10000+2000.
	if end < 15_100 {
		t.Fatalf("makespan = %d, want >= 15100 with overheads", end)
	}
	rt0 := New(4, zeroOv)
	end0, _ := sim.Run(mcfg(4), func(t *sim.Thread) {
		rt0.ParallelFor(t, 4, SchedStatic, func(w *sim.Thread, i int) {
			w.Work(10_000)
		})
	})
	if end0 >= end {
		t.Fatalf("overheads had no effect: %d vs %d", end0, end)
	}
}

func TestDispatchOverheadPerChunk(t *testing.T) {
	ov := Overheads{Dispatch: 500}
	rt := New(1, ov)
	end, _ := sim.Run(mcfg(1), func(t *sim.Thread) {
		rt.ParallelFor(t, 10, SchedDynamic1, func(w *sim.Thread, i int) {
			w.Work(100)
		})
	})
	// 10 fetches + 1 empty fetch = 11 dispatches of 500, plus 1000 work.
	if end != 11*500+10*100 {
		t.Fatalf("makespan = %d, want %d", end, 11*500+10*100)
	}
}

func TestCriticalSerializes(t *testing.T) {
	rt := New(4, zeroOv)
	var inCS, maxCS int
	end, _ := sim.Run(mcfg(4), func(t *sim.Thread) {
		rt.ParallelFor(t, 4, SchedStatic1, func(w *sim.Thread, i int) {
			rt.Critical(w, 1, func() {
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				w.Work(1000)
				inCS--
			})
		})
	})
	if maxCS != 1 {
		t.Fatalf("critical sections overlapped: max concurrency %d", maxCS)
	}
	if end != 4000 {
		t.Fatalf("makespan = %d, want 4000 (fully serialized)", end)
	}
}

func TestNestedParallelOversubscribes(t *testing.T) {
	// Outer loop of 2 on 2 cores; each iteration runs an inner parallel
	// loop with 2 threads -> 4 threads on 2 cores. With preemptive
	// slicing, total work 4*30000 on 2 cores = 60000 ideal; naive
	// nesting should land within ~25% of that, NOT serialize to 120000.
	rtOuter := New(2, zeroOv)
	rtInner := New(2, zeroOv)
	end, _ := sim.Run(mcfg(2), func(t *sim.Thread) {
		rtOuter.ParallelFor(t, 2, SchedStatic1, func(w *sim.Thread, i int) {
			rtInner.ParallelFor(w, 2, SchedStatic1, func(w2 *sim.Thread, j int) {
				w2.Work(30_000)
			})
		})
	})
	if end < 60_000 || end > 75_000 {
		t.Fatalf("nested makespan = %d, want [60000, 75000]", end)
	}
}

func TestZeroIterations(t *testing.T) {
	end := runFor(2, 2, 0, SchedStatic, func(int) clock.Cycles { return 1 })
	if end != 0 {
		t.Fatalf("empty loop makespan = %d, want 0", end)
	}
}

func TestRuntimeAccessors(t *testing.T) {
	rt := New(0, DefaultOverheads())
	if rt.Threads() != 1 {
		t.Fatalf("Threads() = %d, want clamp to 1", rt.Threads())
	}
	if rt.Overheads() != DefaultOverheads() {
		t.Fatal("Overheads() mismatch")
	}
}
