package omprt

import (
	"testing"

	"prophet/internal/clock"
	"prophet/internal/sim"
)

// assignmentMap records which worker ran each iteration.
func assignmentMap(threads, n int, sched Sched) []int {
	owner := make([]int, n)
	rt := New(threads, zeroOv)
	sim.Run(mcfg(threads+1), func(t *sim.Thread) {
		rt.ParallelFor(t, n, sched, func(w *sim.Thread, i int) {
			owner[i] = w.ID() // engine-serialized: safe
			w.Work(10)
		})
	})
	// Normalize worker identities to ranks by first appearance.
	rank := map[int]int{}
	out := make([]int, n)
	for i, id := range owner {
		r, ok := rank[id]
		if !ok {
			r = len(rank)
			rank[id] = r
		}
		out[i] = r
	}
	return out
}

// TestStaticAssignmentConformance: schedule(static) deals contiguous
// blocks with the remainder spread over the first threads, per the
// OpenMP spec's common implementation.
func TestStaticAssignmentConformance(t *testing.T) {
	owner := assignmentMap(4, 10, SchedStatic)
	// 10 = 3+3+2+2: blocks [0..2][3..5][6..7][8..9].
	blocks := map[int]int{}
	for i := 1; i < len(owner); i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("static blocks not contiguous: %v", owner)
		}
	}
	for _, o := range owner {
		blocks[o]++
	}
	if blocks[0] != 3 || blocks[1] != 3 || blocks[2] != 2 || blocks[3] != 2 {
		t.Fatalf("static block sizes = %v, want 3/3/2/2", blocks)
	}
}

// TestStaticChunkAssignmentConformance: schedule(static,c) deals chunks
// round-robin, so iteration i belongs to worker (i/c) mod nt.
func TestStaticChunkAssignmentConformance(t *testing.T) {
	const nt, n, c = 3, 17, 2
	owner := assignmentMap(nt, n, Sched{Kind: StaticChunk, Chunk: c})
	for i, o := range owner {
		if want := (i / c) % nt; o != want {
			t.Fatalf("iteration %d on worker %d, want %d (%v)", i, o, want, owner)
		}
	}
}

// TestDynamicMonotonePerWorker: under dynamic scheduling each worker's
// iterations are increasing (the shared counter only moves forward).
func TestDynamicMonotonePerWorker(t *testing.T) {
	const nt, n = 4, 50
	var perWorker [nt][]int
	rt := New(nt, zeroOv)
	sim.Run(mcfg(nt+1), func(th *sim.Thread) {
		ids := map[int]int{}
		rt.ParallelFor(th, n, SchedDynamic1, func(w *sim.Thread, i int) {
			r, ok := ids[w.ID()]
			if !ok {
				r = len(ids)
				ids[w.ID()] = r
			}
			perWorker[r] = append(perWorker[r], i)
			w.Work(clock.Cycles(100 * (i%7 + 1)))
		})
	})
	for r, list := range perWorker {
		for k := 1; k < len(list); k++ {
			if list[k] <= list[k-1] {
				t.Fatalf("worker %d fetched out of order: %v", r, list)
			}
		}
	}
}

// TestBarrierHoldsMaster: the master cannot pass ParallelFor until the
// slowest worker finishes (implicit barrier).
func TestBarrierHoldsMaster(t *testing.T) {
	rt := New(4, zeroOv)
	var after clock.Cycles
	sim.Run(mcfg(5), func(th *sim.Thread) {
		rt.ParallelFor(th, 4, SchedStatic1, func(w *sim.Thread, i int) {
			w.Work(clock.Cycles(10_000 * (i + 1))) // slowest: 40k
		})
		after = th.Now()
	})
	if after < 40_000 {
		t.Fatalf("master passed the barrier at %d, slowest worker ends at 40000", after)
	}
}

// TestGuidedChunkCount: guided's exponentially shrinking chunks mean a
// single worker fetches ~log(n) times, far fewer than dynamic,1's n
// fetches but more than static's one. Count fetches via the dispatch
// overhead they cost.
func TestGuidedChunkCount(t *testing.T) {
	const n = 100
	run := func(sched Sched) clock.Cycles {
		rt := New(1, Overheads{Dispatch: 1_000})
		end, _ := sim.Run(mcfg(1), func(th *sim.Thread) {
			rt.ParallelFor(th, n, sched, func(w *sim.Thread, i int) {
				w.Work(1)
			})
		})
		return end
	}
	guided := run(SchedGuided)
	dynamic := run(SchedDynamic1)
	// dynamic,1: n+1 fetches. guided for n=100, nt=1: chunks
	// 50,25,12,6,3,1,1,1,1,1 plus the final empty fetch: ~11 fetches.
	gFetches := (guided - n) / 1_000
	dFetches := (dynamic - n) / 1_000
	if dFetches != n+1 {
		t.Fatalf("dynamic fetches = %d, want %d", dFetches, n+1)
	}
	if gFetches < 8 || gFetches > 15 {
		t.Fatalf("guided fetches = %d, want ~11 (log-shrinking chunks)", gFetches)
	}
}

// TestCriticalOverheadCharged: LockEnter/LockExit appear in the makespan.
func TestCriticalOverheadCharged(t *testing.T) {
	ov := Overheads{LockEnter: 300, LockExit: 200}
	rt := New(1, ov)
	end, _ := sim.Run(mcfg(1), func(th *sim.Thread) {
		rt.ParallelFor(th, 2, SchedStatic, func(w *sim.Thread, i int) {
			rt.Critical(w, 5, func() { w.Work(1_000) })
		})
	})
	if end != 2*(300+1_000+200) {
		t.Fatalf("makespan = %d, want 3000 per critical section", end)
	}
}
