package omprt

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSched parses an OpenMP schedule spelling. It accepts the exact
// String() forms — "(static)", "(static,4)", "(dynamic,1)", "(guided)" —
// and the bare CLI spellings without parentheses: "static", "static,4",
// "static1" (shorthand for "(static,1)"), "dynamic" / "dynamic1" /
// "dynamic,4", and "guided". ParseSched(s.String()) round-trips for every
// valid Sched.
func ParseSched(s string) (Sched, error) {
	orig := s
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		s = s[1 : len(s)-1]
	}
	kind := s
	chunkStr := ""
	if i := strings.IndexByte(s, ','); i >= 0 {
		kind, chunkStr = s[:i], strings.TrimSpace(s[i+1:])
	}
	chunk := 0
	if chunkStr != "" {
		v, err := strconv.Atoi(chunkStr)
		if err != nil || v < 1 {
			return Sched{}, fmt.Errorf("omprt: bad schedule chunk %q in %q", chunkStr, orig)
		}
		chunk = v
	}
	switch strings.TrimSpace(kind) {
	case "static":
		if chunk > 0 {
			return Sched{Kind: StaticChunk, Chunk: chunk}, nil
		}
		return SchedStatic, nil
	case "static1":
		if chunk > 0 {
			break
		}
		return SchedStatic1, nil
	case "dynamic":
		if chunk == 0 {
			chunk = 1
		}
		return Sched{Kind: Dynamic, Chunk: chunk}, nil
	case "dynamic1":
		if chunk > 0 {
			break
		}
		return SchedDynamic1, nil
	case "guided":
		if chunk > 0 {
			break
		}
		return SchedGuided, nil
	}
	return Sched{}, fmt.Errorf("omprt: unknown schedule %q (want static | static,N | static1 | dynamic,N | dynamic1 | guided)", orig)
}

// MarshalText encodes the schedule as its String() spelling, so Sched
// fields marshal to stable JSON strings like "(dynamic,1)".
func (s Sched) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// UnmarshalText parses any spelling ParseSched accepts.
func (s *Sched) UnmarshalText(text []byte) error {
	parsed, err := ParseSched(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}
