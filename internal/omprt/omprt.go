// Package omprt is an OpenMP-style runtime for the simulated machine
// (internal/sim). It provides parallel-for with the schedules the paper
// models — (static), (static,c), (dynamic,c) and (guided) — plus critical
// sections, and reproduces OpenMP 2.0's naive nested behaviour: every
// parallel region, nested or not, spawns a fresh team of physical threads,
// which oversubscribes the machine exactly the way the paper describes
// (§III "Nested and recursive parallelism", §IV-D).
//
// Runtime overheads (fork, join, chunk dispatch, lock enter/exit) are paid
// as explicit Work cycles. The default constants are in the range reported
// by the EPCC OpenMP microbenchmarks the paper cites [6, 8]; the FF
// emulator uses the same constants, and internal/ff's calibration test
// cross-checks them against this runtime.
package omprt

import (
	"prophet/internal/clock"
	"prophet/internal/sim"
)

// ScheduleKind enumerates OpenMP loop schedules.
type ScheduleKind uint8

// Supported schedules.
const (
	// Static divides the iteration space into one contiguous block per
	// thread — OpenMP's schedule(static).
	Static ScheduleKind = iota
	// StaticChunk deals chunks of Chunk iterations round-robin —
	// schedule(static,c).
	StaticChunk
	// Dynamic hands out chunks of Chunk iterations first-come
	// first-served — schedule(dynamic,c).
	Dynamic
	// Guided hands out exponentially shrinking chunks —
	// schedule(guided).
	Guided
)

// Sched is a schedule kind plus its chunk size.
type Sched struct {
	Kind  ScheduleKind
	Chunk int
}

// Common schedules, named as the paper writes them.
var (
	// SchedStatic is schedule(static).
	SchedStatic = Sched{Kind: Static}
	// SchedStatic1 is schedule(static,1).
	SchedStatic1 = Sched{Kind: StaticChunk, Chunk: 1}
	// SchedDynamic1 is schedule(dynamic,1).
	SchedDynamic1 = Sched{Kind: Dynamic, Chunk: 1}
	// SchedGuided is schedule(guided).
	SchedGuided = Sched{Kind: Guided, Chunk: 1}
)

// String returns the OpenMP clause spelling, e.g. "(dynamic,1)".
func (s Sched) String() string {
	switch s.Kind {
	case Static:
		return "(static)"
	case StaticChunk:
		return "(static," + itoa(s.Chunk) + ")"
	case Dynamic:
		return "(dynamic," + itoa(s.Chunk) + ")"
	case Guided:
		return "(guided)"
	}
	return "(?)"
}

func itoa(n int) string {
	if n <= 0 {
		n = 1
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Overheads are the runtime's parallel-overhead constants, in cycles.
type Overheads struct {
	// ForkPerThread is paid by the master for each thread it spawns when
	// a parallel region starts.
	ForkPerThread clock.Cycles
	// WorkerInit is paid by each team member before its first iteration.
	WorkerInit clock.Cycles
	// JoinBarrier is paid by the master after the team joins (the
	// implicit barrier cost).
	JoinBarrier clock.Cycles
	// Dispatch is paid per chunk fetch under dynamic/guided scheduling.
	Dispatch clock.Cycles
	// StaticDispatch is paid per chunk under static schedules (cheaper:
	// no shared counter).
	StaticDispatch clock.Cycles
	// LockEnter / LockExit are paid inside a critical section on entry
	// and before exit.
	LockEnter, LockExit clock.Cycles
}

// DefaultOverheads returns EPCC-range constants for a Westmere-class
// machine at 2.4 GHz: forking a thread ~0.6 µs, joining ~1 µs, a dynamic
// chunk fetch ~60 ns, a critical section ~40 ns each way.
func DefaultOverheads() Overheads {
	return Overheads{
		ForkPerThread:  1500,
		WorkerInit:     300,
		JoinBarrier:    2500,
		Dispatch:       150,
		StaticDispatch: 20,
		LockEnter:      100,
		LockExit:       100,
	}
}

// Runtime is an OpenMP-style runtime bound to a thread count.
type Runtime struct {
	nthreads int
	ov       Overheads
}

// New returns a runtime that runs parallel regions on teams of nthreads
// (minimum 1) with the given overhead constants.
func New(nthreads int, ov Overheads) *Runtime {
	if nthreads < 1 {
		nthreads = 1
	}
	return &Runtime{nthreads: nthreads, ov: ov}
}

// Threads returns the team size.
func (rt *Runtime) Threads() int { return rt.nthreads }

// Overheads returns the runtime's overhead constants.
func (rt *Runtime) Overheads() Overheads { return rt.ov }

// ParallelFor executes body(w, i) for every i in [0, n) on a team of
// rt.Threads() threads: the calling thread becomes the master and
// participates, and rt.Threads()-1 workers are spawned (OpenMP 2.0
// behaviour — fresh physical threads per region, nested regions included).
// The call returns after the implicit end-of-loop barrier.
func (rt *Runtime) ParallelFor(t *sim.Thread, n int, sched Sched, body func(w *sim.Thread, i int)) {
	if n <= 0 {
		return
	}
	nt := rt.nthreads
	if nt > n {
		nt = n
	}
	if nt == 1 {
		rt.runWorker(t, 0, 1, n, sched, body, &counter{n: n})
		return
	}
	// Shared dynamic-dispatch state; safe without locks because the
	// engine runs one thread at a time and mutations happen between
	// engine calls.
	ctr := &counter{next: 0, n: n}
	t.Work(rt.ov.ForkPerThread * clock.Cycles(nt-1))
	team := make([]*sim.Thread, 0, nt-1)
	for k := 1; k < nt; k++ {
		k := k
		team = append(team, t.Spawn(func(w *sim.Thread) {
			rt.runWorker(w, k, nt, n, sched, body, ctr)
		}))
	}
	rt.runWorker(t, 0, nt, n, sched, body, ctr)
	for _, w := range team {
		t.Join(w)
	}
	t.Work(rt.ov.JoinBarrier)
}

type counter struct {
	next int
	n    int
}

// take grabs up to chunk iterations, returning [lo, hi) or ok=false.
func (c *counter) take(chunk int) (lo, hi int, ok bool) {
	if c.next >= c.n {
		return 0, 0, false
	}
	lo = c.next
	hi = lo + chunk
	if hi > c.n {
		hi = c.n
	}
	c.next = hi
	return lo, hi, true
}

func (rt *Runtime) runWorker(w *sim.Thread, k, nt, n int, sched Sched, body func(*sim.Thread, int), ctr *counter) {
	w.Work(rt.ov.WorkerInit)
	chunk := sched.Chunk
	if chunk < 1 {
		chunk = 1
	}
	switch sched.Kind {
	case Static:
		// One contiguous block per thread, remainder spread over the
		// first threads (the usual static partition).
		base := n / nt
		rem := n % nt
		lo := k*base + min(k, rem)
		hi := lo + base
		if k < rem {
			hi++
		}
		if lo < hi {
			w.Work(rt.ov.StaticDispatch)
			for i := lo; i < hi; i++ {
				body(w, i)
			}
		}
	case StaticChunk:
		for lo := k * chunk; lo < n; lo += nt * chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			w.Work(rt.ov.StaticDispatch)
			for i := lo; i < hi; i++ {
				body(w, i)
			}
		}
	case Dynamic:
		for {
			w.Work(rt.ov.Dispatch)
			lo, hi, ok := ctr.take(chunk)
			if !ok {
				break
			}
			for i := lo; i < hi; i++ {
				body(w, i)
			}
		}
	case Guided:
		for {
			w.Work(rt.ov.Dispatch)
			remaining := ctr.n - ctr.next
			c := remaining / (2 * nt)
			if c < chunk {
				c = chunk
			}
			lo, hi, ok := ctr.take(c)
			if !ok {
				break
			}
			for i := lo; i < hi; i++ {
				body(w, i)
			}
		}
	}
}

// Critical runs f while holding lock id, paying the critical-section
// overheads (#pragma omp critical with a named lock, or an omp_lock).
func (rt *Runtime) Critical(t *sim.Thread, id int, f func()) {
	t.Lock(id)
	t.Work(rt.ov.LockEnter)
	f()
	t.Work(rt.ov.LockExit)
	t.Unlock(id)
}
