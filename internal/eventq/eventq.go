// Package eventq provides the monomorphic binary min-heap shared by the
// discrete-event simulator (internal/sim) and the fast-forwarding emulator
// (internal/ff).
//
// The standard container/heap forces every element through interface{}:
// each Push boxes the element (one heap allocation on the hot path) and
// every comparison goes through two interface method calls. For a DES that
// pushes one event per executed slice, that boxing dominated the engine's
// allocation profile. This heap is generic over the element type, so
// elements are stored inline in a flat slice — no boxing, no per-Push
// allocation once capacity is warm — and the sift routines are plain loops
// the compiler can inline.
//
// The backing array is retained across Reset calls, so a pooled owner (a
// recycled sim.Machine, an ff emulation scratch) reaches a steady state of
// zero allocations per run.
//
// Ordering contract: Less must be a strict weak ordering. Ties must be
// broken by the caller (sim and ff both carry a monotonic sequence number)
// — the heap itself is not stable.
package eventq

// Ordered constrains heap elements: x.Less(y) reports whether x sorts
// strictly before y.
type Ordered[T any] interface {
	Less(T) bool
}

// Heap is a binary min-heap over T. The zero value is an empty heap ready
// for use.
type Heap[T Ordered[T]] struct {
	s []T
}

// Len returns the number of queued elements.
func (h *Heap[T]) Len() int { return len(h.s) }

// Reset empties the heap, retaining the backing array for reuse. Elements
// are zeroed so pooled heaps do not pin pointers from previous runs.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.s {
		h.s[i] = zero
	}
	h.s = h.s[:0]
}

// Grow ensures capacity for at least n total elements.
func (h *Heap[T]) Grow(n int) {
	if cap(h.s) < n {
		s := make([]T, len(h.s), n)
		copy(s, h.s)
		h.s = s
	}
}

// Push inserts x.
func (h *Heap[T]) Push(x T) {
	h.s = append(h.s, x)
	h.up(len(h.s) - 1)
}

// Peek returns the minimum element without removing it. It panics on an
// empty heap, like indexing an empty slice.
func (h *Heap[T]) Peek() T { return h.s[0] }

// Pop removes and returns the minimum element. It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	top := h.s[0]
	n := len(h.s) - 1
	h.s[0] = h.s[n]
	var zero T
	h.s[n] = zero // do not pin pointers held by popped elements
	h.s = h.s[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}

// FixTop restores the heap order after the caller mutated the minimum
// element in place (the ff emulator advances the front worker's clock and
// re-sifts it, container/heap's Fix(h, 0)).
func (h *Heap[T]) FixTop() {
	if len(h.s) > 1 {
		h.down(0)
	}
}

// Init heapifies the current contents in O(n); used after bulk-loading the
// backing slice through Push-without-order via Append.
func (h *Heap[T]) Init() {
	for i := len(h.s)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// Append adds x without restoring heap order; call Init once after the
// last Append. This is the O(n) bulk-load path.
func (h *Heap[T]) Append(x T) { h.s = append(h.s, x) }

func (h *Heap[T]) up(i int) {
	s := h.s
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].Less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	s := h.s
	n := len(s)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && s[r].Less(s[l]) {
			min = r
		}
		if !s[min].Less(s[i]) {
			return
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}
