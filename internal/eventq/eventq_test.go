package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

// item mirrors the (time, seq) ordering both engine heaps use: time is the
// priority, seq the tie-break that makes pop order deterministic.
type item struct {
	time int64
	seq  uint64
}

func (a item) Less(b item) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func sortedCopy(items []item) []item {
	out := append([]item(nil), items...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func drain(h *Heap[item]) []item {
	var out []item
	for h.Len() > 0 {
		out = append(out, h.Pop())
	}
	return out
}

// TestPopOrderIsSortedOrder is the heap's core property: popping
// everything yields exactly the slice-sorted order, including seq
// tie-breaks among equal times.
func TestPopOrderIsSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		items := make([]item, n)
		for i := range items {
			// Small time range forces many ties so the seq
			// tie-break is actually exercised.
			items[i] = item{time: int64(rng.Intn(8)), seq: uint64(i)}
		}
		var h Heap[item]
		for _, it := range items {
			h.Push(it)
		}
		got := drain(&h)
		want := sortedCopy(items)
		if len(got) != len(want) {
			t.Fatalf("trial %d: drained %d items, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestBulkLoadInit checks the Append+Init bulk-load path against Push.
func TestBulkLoadInit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := make([]item, 100)
	for i := range items {
		items[i] = item{time: int64(rng.Intn(10)), seq: uint64(i)}
	}
	var h Heap[item]
	for _, it := range items {
		h.Append(it)
	}
	h.Init()
	got := drain(&h)
	want := sortedCopy(items)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestFixTop mirrors the ff emulator's use: mutate the minimum in place,
// FixTop, and expect the same pop sequence as a fresh heap would give.
func TestFixTop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Heap[item]
	live := make(map[uint64]int64)
	for i := 0; i < 32; i++ {
		it := item{time: int64(rng.Intn(50)), seq: uint64(i)}
		h.Push(it)
		live[it.seq] = it.time
	}
	for step := 0; step < 500 && h.Len() > 0; step++ {
		top := h.Peek()
		if want := live[top.seq]; top.time != want {
			t.Fatalf("step %d: peeked stale element %v, want time %d", step, top, want)
		}
		// The front element must be the global minimum.
		for seq, tm := range live {
			if tm < top.time || (tm == top.time && seq < top.seq) {
				t.Fatalf("step %d: top %v but live (%d,%d) sorts earlier", step, top, tm, seq)
			}
		}
		if rng.Intn(4) == 0 {
			h.Pop()
			delete(live, top.seq)
			continue
		}
		adv := item{time: top.time + int64(rng.Intn(20)), seq: top.seq}
		h.s[0] = adv
		h.FixTop()
		live[adv.seq] = adv.time
	}
}

// TestResetKeepsCapacity pins the pooled-owner contract: after Reset the
// backing array is reused, so a warm heap pushes without allocating.
func TestResetKeepsCapacity(t *testing.T) {
	var h Heap[item]
	for i := 0; i < 256; i++ {
		h.Push(item{time: int64(i % 7), seq: uint64(i)})
	}
	c := cap(h.s)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	if cap(h.s) != c {
		t.Fatalf("Reset dropped capacity: %d -> %d", c, cap(h.s))
	}
	allocs := testing.AllocsPerRun(10, func() {
		h.Reset()
		for i := 0; i < 256; i++ {
			h.Push(item{time: int64(i % 7), seq: uint64(i)})
		}
	})
	if allocs != 0 {
		t.Fatalf("warm push allocates %.1f allocs/run, want 0", allocs)
	}
}

// FuzzHeapPopOrder mirrors the tree fuzzers: arbitrary byte-derived
// workloads of pushes and pops must always drain in sorted order with
// stable seq tie-breaks.
func FuzzHeapPopOrder(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{255, 1, 255, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Heap[item]
		var seq uint64
		var pending []item
		var popped []item
		for _, b := range data {
			if b&0x80 != 0 && h.Len() > 0 {
				popped = append(popped, h.Pop())
				continue
			}
			it := item{time: int64(b & 0x7f), seq: seq}
			seq++
			h.Push(it)
			pending = append(pending, it)
		}
		popped = append(popped, drain(&h)...)
		if len(popped) != len(pending) {
			t.Fatalf("popped %d of %d pushed", len(popped), len(pending))
		}
		// Every element must come out exactly once; the final drain
		// must be sorted (interleaved pops may legitimately emit an
		// element before a later, smaller push).
		seen := make(map[uint64]bool, len(popped))
		for _, it := range popped {
			if seen[it.seq] {
				t.Fatalf("element %v popped twice", it)
			}
			seen[it.seq] = true
		}
		// Replay the same operations against sort-based reference:
		// at each pop, the reference removes its current minimum; the
		// heap must agree.
		var ref []item
		var rh Heap[item]
		_ = rh
		i := 0
		seq = 0
		var refPopped []item
		for _, b := range data {
			if b&0x80 != 0 && len(ref) > 0 {
				min := 0
				for k := 1; k < len(ref); k++ {
					if ref[k].Less(ref[min]) {
						min = k
					}
				}
				refPopped = append(refPopped, ref[min])
				ref = append(ref[:min], ref[min+1:]...)
				continue
			}
			it := item{time: int64(b & 0x7f), seq: seq}
			seq++
			ref = append(ref, it)
		}
		refPopped = append(refPopped, sortedCopy(ref)...)
		for i = range refPopped {
			if popped[i] != refPopped[i] {
				t.Fatalf("op %d: heap popped %v, reference %v", i, popped[i], refPopped[i])
			}
		}
	})
}
