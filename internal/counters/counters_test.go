package counters

import (
	"math"
	"testing"
	"testing/quick"

	"prophet/internal/clock"
)

func TestZeroSample(t *testing.T) {
	var s Sample
	if !s.IsZero() {
		t.Fatal("zero sample should report IsZero")
	}
	if s.MPI() != 0 || s.CPI() != 0 || s.TrafficBytesPerCycle() != 0 {
		t.Fatal("zero sample should have zero derived metrics")
	}
}

func TestDerivedMetrics(t *testing.T) {
	s := Sample{Instructions: 1000, Cycles: 2500, LLCMisses: 10}
	if got, want := s.MPI(), 0.01; got != want {
		t.Errorf("MPI = %g, want %g", got, want)
	}
	if got, want := s.CPI(), 2.5; got != want {
		t.Errorf("CPI = %g, want %g", got, want)
	}
	if got, want := s.TrafficBytesPerCycle(), 10.0*64/2500; got != want {
		t.Errorf("traffic = %g B/cyc, want %g", got, want)
	}
}

func TestTrafficMBps(t *testing.T) {
	// 1 miss per cycle at 1e6 Hz => 64e6 B/s == 64 MB/s.
	s := Sample{Cycles: 100, LLCMisses: 100}
	if got := s.TrafficMBps(1e6); math.Abs(got-64) > 1e-9 {
		t.Fatalf("TrafficMBps = %g, want 64", got)
	}
	// Non-positive hz falls back to the default frequency.
	if got := s.TrafficMBps(0); got <= 0 {
		t.Fatalf("TrafficMBps(0) = %g, want > 0", got)
	}
}

func TestAddAccumulates(t *testing.T) {
	a := Sample{Instructions: 10, Cycles: 20, LLCMisses: 3}
	b := Sample{Instructions: 5, Cycles: 7, LLCMisses: 1}
	a.Add(b)
	want := Sample{Instructions: 15, Cycles: 27, LLCMisses: 4}
	if a != want {
		t.Fatalf("Add: got %+v, want %+v", a, want)
	}
}

// Property: Add is commutative and derived metrics stay finite/non-negative
// for non-negative inputs.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(ai, ac, ad, bi, bc, bd uint16) bool {
		a := Sample{Instructions: int64(ai), Cycles: clock.Cycles(ac) + 1, LLCMisses: int64(ad)}
		b := Sample{Instructions: int64(bi), Cycles: clock.Cycles(bc) + 1, LLCMisses: int64(bd)}
		x, y := a, b
		x.Add(b)
		y.Add(a)
		if x != y {
			return false
		}
		return x.MPI() >= 0 && x.CPI() >= 0 && x.TrafficBytesPerCycle() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
