// Package counters defines the hardware-performance-counter sample the
// memory model consumes (§V of the paper).
//
// The paper reads PAPI counters (retired instructions, LLC misses, cycles)
// around each top-level parallel section. This reproduction collects the
// same quantities from the simulated cache/DRAM system; the memory model is
// agnostic to where the numbers came from.
package counters

import "prophet/internal/clock"

// LineSize is the cache-line size in bytes; one LLC miss moves one line.
const LineSize = 64

// Sample holds the counter values observed over one profiled interval
// (typically one dynamic execution of a top-level parallel section).
type Sample struct {
	// Instructions is N in the paper's Eq. (1): retired instructions.
	Instructions int64
	// Cycles is T: elapsed cycles over the interval.
	Cycles clock.Cycles
	// LLCMisses is D: last-level-cache misses (== DRAM accesses under the
	// paper's Assumption 3).
	LLCMisses int64
}

// Add accumulates another sample into s (used when a top-level section
// executes multiple times; the model then averages, per §V).
func (s *Sample) Add(o Sample) {
	s.Instructions += o.Instructions
	s.Cycles += o.Cycles
	s.LLCMisses += o.LLCMisses
}

// MPI returns the LLC misses per instruction (D/N). Zero instructions give 0.
func (s Sample) MPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(s.Instructions)
}

// CPI returns cycles per instruction (T/N). Zero instructions give 0.
func (s Sample) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// TrafficBytesPerCycle returns the DRAM traffic generated over the interval
// in bytes per cycle (D · LineSize / T).
func (s Sample) TrafficBytesPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.LLCMisses) * LineSize / float64(s.Cycles)
}

// TrafficMBps returns the DRAM traffic in MB/s assuming the core runs at hz
// cycles per second. This is δ in the paper's Eq. (4)–(7), which are stated
// in MB/s.
func (s Sample) TrafficMBps(hz float64) float64 {
	if hz <= 0 {
		hz = clock.DefaultHz
	}
	return s.TrafficBytesPerCycle() * hz / 1e6
}

// IsZero reports whether no events were recorded.
func (s Sample) IsZero() bool {
	return s.Instructions == 0 && s.Cycles == 0 && s.LLCMisses == 0
}
