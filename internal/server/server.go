// Package server is the prediction service behind cmd/prophetd: a
// long-lived HTTP JSON API that loads registered workload profiles once
// and serves speedup predictions over them — the paper's tool turned
// into a daemon, so the profiles, the calibrated memory model and the
// caches built in earlier PRs outlive a single invocation.
//
// Request admission is layered:
//
//  1. An in-flight limit refuses excess concurrent requests with
//     429 + Retry-After (backpressure, not queue collapse).
//  2. A sharded LRU over completed estimates, keyed on
//     (workload, compressed-tree hash, request), answers repeats
//     without touching the pool.
//  3. An optional learned surrogate (Config.Surrogate) answers cells
//     whose feature neighborhood it predicts within a cross-validated
//     error bound — in microseconds, before the batcher's coalescing
//     window. Misses fall through and the emulated result trains it.
//  4. In cluster mode, the consistent-hash fleet routes the cell to
//     its owning replica.
//  5. A singleflight group deduplicates identical concurrent cells.
//  6. A batcher coalesces the remaining cells — across requests — into
//     sweep.RunCtx batches on one bounded worker pool.
//
// Endpoints: POST /v1/predict, POST /v1/sweep, POST /v1/advise (causal
// region advisor), GET /v1/workloads,
// POST /v1/workloads (upload an execution profile as a new workload),
// GET /v1/machines, POST /v1/machines (register a custom machine
// spec), GET /healthz, GET /readyz, GET /metrics.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prophet"
	"prophet/internal/cluster"
	"prophet/internal/obs"
	"prophet/internal/sweep"
	"prophet/internal/workloads"
)

// Config tunes the service. The zero value serves every registered
// benchmark with library defaults.
type Config struct {
	// Workloads names the benchmarks to register (nil = all of
	// workloads.Names()).
	Workloads []string
	// Cores are the thread counts profiles calibrate burden factors for
	// (nil = prophet.DefaultThreadCounts()). Also the default sweep axis.
	Cores []int
	// DisableMemoryModel skips calibration (and burden factors) — every
	// estimate behaves as MemoryModel: false. Meant for tests.
	DisableMemoryModel bool

	// Workers bounds the emulation worker pool (0 = GOMAXPROCS).
	Workers int
	// MaxInFlight is the admitted-request limit; excess requests get
	// 429 + Retry-After. 0 selects 4×GOMAXPROCS.
	MaxInFlight int
	// RetryAfter is the advisory Retry-After on 429 (default 1s).
	RetryAfter time.Duration

	// CacheSize is the total estimate-LRU capacity (0 = 4096; negative
	// disables caching). CacheShards is the shard count (0 = 16).
	CacheSize   int
	CacheShards int

	// BatchWindow is how long the dispatcher lingers to coalesce
	// concurrent cells into one batch (0 = 500µs). MaxBatch caps cells
	// per batch (0 = 64).
	BatchWindow time.Duration
	MaxBatch    int

	// RequestTimeout caps the per-request deadline (0 = 30s; negative
	// means no server-imposed deadline). A request's timeout_ms can only
	// shorten it.
	RequestTimeout time.Duration

	// MaxImportBytes caps the request body of POST /v1/workloads —
	// both the upload itself and the gzip-expanded profile inside it
	// (0 = 8 MiB; negative disables profile uploads entirely).
	MaxImportBytes int64

	// Cluster, when non-nil, serves cells through a replica fleet: each
	// uncached cell is routed by consistent hash to the replica whose
	// caches are hot for it, with retries, hedging, breakers and
	// degradation per the cluster package. The server fills in the
	// Local estimator and (if unset) the Metrics registry.
	Cluster *cluster.Config

	// Surrogate, when non-nil, arms the learned surrogate predictor in
	// front of the emulation stack: uncached cells whose cross-validated
	// confidence clears the configured bound are answered from the model
	// (marked "source":"surrogate" on the wire) and every emulated
	// result feeds the training store. The config's Metrics defaults to
	// the server registry. nil serves every cell exactly as before.
	Surrogate *prophet.SurrogateConfig

	// Metrics receives server and pipeline metrics (nil = a fresh
	// registry, exposed at /metrics either way).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if len(c.Workloads) == 0 {
		c.Workloads = workloads.Names()
	}
	if len(c.Cores) == 0 {
		c.Cores = prophet.DefaultThreadCounts()
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.CacheShards == 0 {
		c.CacheShards = 16
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 500 * time.Microsecond
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxImportBytes == 0 {
		c.MaxImportBytes = 8 << 20
	}
	if c.Metrics == nil {
		c.Metrics = &obs.Registry{}
	}
	return c
}

// workloadEntry is one registered workload: its profile, loaded once.
type workloadEntry struct {
	name         string
	desc         string
	prof         *prophet.Profile
	treeHash     string
	paradigm     prophet.Paradigm
	sched        prophet.Sched
	threadCounts []int

	// serialMu guards serials: per-machine serial-cycle baselines the
	// surrogate fast path needs to report time_cycles. The profile's own
	// machine is known up front; variant machines are learned from the
	// first emulated result (serial = time × speedup, the emulator's own
	// arithmetic inverted).
	serialMu sync.Mutex
	serials  map[string]float64
}

// Server is the prediction service. Create with New, load profiles with
// Load, mount Handler on an http.Server (or use ListenAndServe), and
// stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *obs.Registry
	mux     *http.ServeMux

	// entriesMu guards entries and imported: Load writes the configured
	// set before the server goes ready, but POST /v1/workloads mutates
	// both while traffic is live.
	entriesMu sync.RWMutex
	entries   map[string]*workloadEntry
	imported  []string // names registered via POST, in arrival order

	readyMu sync.RWMutex
	ready   bool
	closing bool

	inflight chan struct{} // admission semaphore
	cache    *estimateCache
	flights  *flightGroup
	batch    *batcher
	cluster  *cluster.Client    // nil outside cluster mode
	surr     *prophet.Surrogate // nil unless Config.Surrogate set

	baseCtx    context.Context
	baseCancel context.CancelFunc
	reqWG      sync.WaitGroup // admitted requests, for the drain
	stopOnce   sync.Once      // makes Shutdown idempotent

	httpSrv *http.Server

	predicts, sweeps, advises, rejected, badReqs, imports *obs.Counter
	predictLat, sweepLat, adviseLat                       *obs.Histogram

	// testHook, when set, runs after admission and before the estimate
	// (tests use it to hold requests in flight deterministically).
	testHook atomic.Pointer[func()]
}

// New builds a server; call Load before serving traffic (endpoints
// answer 503 until it completes).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, baseCancel := context.WithCancel(context.Background())
	reg := cfg.Metrics
	s := &Server{
		cfg:        cfg,
		metrics:    reg,
		entries:    make(map[string]*workloadEntry),
		inflight:   make(chan struct{}, cfg.MaxInFlight),
		cache:      newEstimateCache(cfg.CacheSize, cfg.CacheShards, reg),
		flights:    newFlightGroup(reg),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		predicts:   reg.Counter(obs.MServerPredicts),
		sweeps:     reg.Counter(obs.MServerSweeps),
		advises:    reg.Counter(obs.MServerAdvises),
		rejected:   reg.Counter(obs.MServerRejected),
		badReqs:    reg.Counter(obs.MServerBadRequests),
		imports:    reg.Counter(obs.MServerImports),
		predictLat: reg.Histogram(obs.MServerPredictLatency),
		sweepLat:   reg.Histogram(obs.MServerSweepLatency),
		adviseLat:  reg.Histogram(obs.MServerAdviseLatency),
	}
	s.batch = newBatcher(baseCtx, sweep.Engine{Workers: cfg.Workers, Metrics: reg}, cfg.BatchWindow, cfg.MaxBatch, reg)
	if cfg.Surrogate != nil {
		scfg := *cfg.Surrogate
		if scfg.Metrics == nil {
			scfg.Metrics = reg
		}
		s.surr = prophet.NewSurrogate(scfg)
	}
	if cfg.Cluster != nil {
		ccfg := *cfg.Cluster
		ccfg.Local = s.localEstimate
		if ccfg.Metrics == nil {
			ccfg.Metrics = reg
		}
		s.cluster = cluster.New(ccfg)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("/v1/machines", s.handleMachines)
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/advise", s.handleAdvise)
	return s
}

// Load profiles every configured workload (serially — profiles share one
// calibration through the library's singleflight cache) and flips the
// server ready. It is the expensive startup step the daemon pays once.
func (s *Server) Load(ctx context.Context) error {
	for _, name := range s.cfg.Workloads {
		w, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		prof, err := prophet.ProfileProgramCtx(ctx, w.Program, &prophet.Options{
			ThreadCounts:       s.cfg.Cores,
			DisableMemoryModel: s.cfg.DisableMemoryModel,
			Observer:           prophet.Observer{Metrics: s.metrics},
		})
		if err != nil {
			return fmt.Errorf("server: load %s: %w", name, err)
		}
		hash, err := hashTree(prof.Tree)
		if err != nil {
			return fmt.Errorf("server: hash %s tree: %w", name, err)
		}
		s.entriesMu.Lock()
		s.entries[name] = &workloadEntry{
			name:         name,
			desc:         w.Desc,
			prof:         prof,
			treeHash:     hash,
			paradigm:     w.Paradigm,
			sched:        w.Sched,
			threadCounts: s.cfg.Cores,
		}
		s.entriesMu.Unlock()
	}
	s.readyMu.Lock()
	s.ready = true
	s.readyMu.Unlock()
	return nil
}

// Handler returns the HTTP handler (for tests and custom servers).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.httpSrv = &http.Server{Addr: addr, Handler: s.mux}
	err := s.httpSrv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains gracefully: stop admitting, wait (up to ctx) for
// in-flight predictions to finish, then stop the batcher and cancel
// whatever remains. It returns ctx.Err() if the drain deadline fired.
func (s *Server) Shutdown(ctx context.Context) error {
	s.readyMu.Lock()
	s.closing = true
	s.readyMu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Cancel stragglers (no-op after a clean drain) and stop the
	// dispatcher; the in-flight batch finishes or aborts via baseCtx.
	s.stopOnce.Do(func() {
		if s.cluster != nil {
			s.cluster.Close()
		}
		s.baseCancel()
		s.batch.close()
	})
	if s.httpSrv != nil {
		if herr := s.httpSrv.Shutdown(ctx); err == nil && !errors.Is(herr, context.DeadlineExceeded) && !errors.Is(herr, context.Canceled) {
			err = herr
		}
	}
	return err
}

// admit implements the backpressure gate. It returns false after
// writing the 429/503 when the request cannot be served now.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	s.readyMu.RLock()
	ready, closing := s.ready, s.closing
	s.readyMu.RUnlock()
	if closing {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return nil, false
	}
	if !ready {
		writeError(w, http.StatusServiceUnavailable, "server is still loading workload profiles")
		return nil, false
	}
	select {
	case s.inflight <- struct{}{}:
	default:
		// Full house: refuse now instead of queueing without bound.
		s.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
		return nil, false
	}
	s.reqWG.Add(1)
	return func() {
		<-s.inflight
		s.reqWG.Done()
	}, true
}

// requestCtx derives the per-request context: the client disconnect
// (r.Context()), the server-configured deadline cap, and the request's
// own timeout_ms, whichever is tightest.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	limit := s.cfg.RequestTimeout
	if limit < 0 {
		limit = 0
	}
	if timeoutMS > 0 {
		t := time.Duration(timeoutMS) * time.Millisecond
		if limit == 0 || t < limit {
			limit = t
		}
	}
	if limit > 0 {
		return context.WithTimeout(ctx, limit)
	}
	return context.WithCancel(ctx)
}

// estimate computes one cell: LRU, then the surrogate fast path, then —
// in cluster mode, for cells that did not already arrive routed — the
// consistent-hash fleet, and otherwise the local singleflight → batcher
// stack. cached reports whether the LRU answered. forwarded marks a
// cell another replica already routed here; it must be served locally
// (one-hop contract) — the surrogate may still answer it, since this
// replica's store is the warm one for cells it owns.
func (s *Server) estimate(ctx context.Context, entry *workloadEntry, req prophet.Request, forwarded bool) (est prophet.Estimate, cached bool, err error) {
	// Normalize Threads the way the library does, so "threads":0 and an
	// explicit machine core count share a cache line.
	if req.Threads == 0 {
		req.Threads = defaultThreads(req)
	}
	key := cellKey(entry, req)
	if est, ok := s.cache.Get(key); ok {
		// The key canonicalizes the machine name, so a hit may have been
		// computed under the other spelling (explicit default name vs
		// empty); echo the spelling of this request.
		est.Machine = req.Machine
		return est, true, nil
	}
	// Surrogate fast path: answer from the model before the cluster hop
	// and the batcher's coalescing window. Needs both a confident
	// neighborhood and a serial-cycle baseline for the target machine
	// (to report time_cycles); shadow-sampled hits fall through to
	// emulation so the accuracy claim stays measured.
	var sgVec []float64
	var sgShadow bool
	var sgPred float64
	if s.surr != nil {
		sgVec = entry.prof.SurrogateFeatures(req)
		if serial, known := s.serialFor(entry, machineOf(entry, req)); known {
			if val, ok, shadow := s.surr.Predict(surrKey(entry), sgVec); ok {
				if !shadow {
					return surrogateWireEstimate(req, val, serial), false, nil
				}
				sgShadow, sgPred = true, val
			}
		}
	}
	if s.cluster != nil && !forwarded {
		est, err := s.cluster.Estimate(ctx, key, entry.name, req)
		if err == nil && est.Err == nil && est.Source == "" {
			s.cache.Put(key, est)
		}
		s.surrFeedback(entry, req, sgVec, sgShadow, sgPred, est, err)
		return est, false, err
	}
	est, cached, err = s.localCell(ctx, entry, key, req)
	s.surrFeedback(entry, req, sgVec, sgShadow, sgPred, est, err)
	return est, cached, err
}

// surrKey is the surrogate partition of one workload: name plus tree
// hash, so a re-registered workload with a different tree trains a
// fresh partition instead of inheriting stale targets. Machine variants
// share the partition — the feature vector's machine block separates
// them.
func surrKey(entry *workloadEntry) string {
	return entry.name + "\x00" + entry.treeHash
}

// surrogateWireEstimate wraps a surrogate speedup in the wire format,
// deriving time_cycles from the machine's serial baseline exactly as
// the emulator does (serial / speedup, rounded).
func surrogateWireEstimate(req prophet.Request, speedup, serial float64) prophet.Estimate {
	est := prophet.Estimate{Request: req, Speedup: speedup, Source: prophet.SourceSurrogate}
	if speedup > 0 {
		est.Time = prophet.Cycles(serial/speedup + 0.5)
	}
	return est
}

// surrFeedback trains the surrogate with one emulated result and closes
// the shadow-sampling loop. Results that were themselves served by a
// surrogate (a cluster peer's) are never training data.
func (s *Server) surrFeedback(entry *workloadEntry, req prophet.Request, vec []float64, shadow bool, pred float64, est prophet.Estimate, err error) {
	if s.surr == nil || vec == nil || err != nil || est.Err != nil || est.Source != "" {
		return
	}
	if shadow {
		s.surr.RecordShadow(pred, est.Speedup)
	}
	s.noteSerial(entry, machineOf(entry, req), est)
	s.surr.Observe(surrKey(entry), vec, est.Speedup)
}

// serialFor returns the serial-cycle baseline of machine for entry: the
// profile's own count for its own machine, otherwise what noteSerial
// learned from emulated results. No baseline yet means the surrogate
// cannot fill in time_cycles, so the cell emulates (which learns it).
func (s *Server) serialFor(entry *workloadEntry, machineName string) (float64, bool) {
	if machineName == entry.prof.MachineName() {
		return float64(entry.prof.SerialCycles), true
	}
	entry.serialMu.Lock()
	defer entry.serialMu.Unlock()
	serial, ok := entry.serials[machineName]
	return serial, ok
}

// noteSerial records a variant machine's serial baseline from an
// emulated estimate: time = serial/speedup rounded, so time × speedup
// recovers serial to within half a speedup unit — negligible against
// profile-scale cycle counts.
func (s *Server) noteSerial(entry *workloadEntry, machineName string, est prophet.Estimate) {
	if machineName == entry.prof.MachineName() || est.Speedup <= 0 || est.Time <= 0 {
		return
	}
	entry.serialMu.Lock()
	if entry.serials == nil {
		entry.serials = make(map[string]float64)
	}
	if _, ok := entry.serials[machineName]; !ok {
		entry.serials[machineName] = float64(est.Time) * est.Speedup
	}
	entry.serialMu.Unlock()
}

// localCell runs one cell through the singleflight → batcher stack on
// this replica's own pool.
func (s *Server) localCell(ctx context.Context, entry *workloadEntry, key string, req prophet.Request) (est prophet.Estimate, cached bool, err error) {
	return s.cellOn(ctx, entry.prof, key, req)
}

// cellOn runs one cell against an explicit profile through the
// singleflight → batcher stack. The registered workload profiles and the
// advisor's synthesized region variants both funnel through here, so
// every emulated cell — whatever tree it runs on — coalesces in the same
// batches and deduplicates on its key.
func (s *Server) cellOn(ctx context.Context, prof *prophet.Profile, key string, req prophet.Request) (est prophet.Estimate, cached bool, err error) {
	res, err := s.flights.do(ctx, s.baseCtx, key, func(fctx context.Context, finish func(cellResult)) {
		j := &cellJob{
			ctx: fctx,
			run: func(ctx context.Context) (prophet.Estimate, error) {
				return prof.EstimateCtx(ctx, req)
			},
			res: make(chan cellResult, 1),
		}
		go func() {
			s.batch.submit(j)
			r := <-j.res
			if r.err == nil && r.est.Err == nil && r.est.Source == "" {
				s.cache.Put(key, r.est)
			}
			finish(r)
		}()
	})
	if err != nil {
		return prophet.Estimate{Request: req, Err: err}, false, err
	}
	return res.est, false, res.err
}

// localEstimate is the cluster client's view of this replica's estimate
// stack: the Local serving path for self-owned cells and the
// degradation target when a shard's peers are all down.
func (s *Server) localEstimate(ctx context.Context, workload string, req prophet.Request) (prophet.Estimate, error) {
	s.entriesMu.RLock()
	entry, ok := s.entries[workload]
	s.entriesMu.RUnlock()
	if !ok {
		err := fmt.Errorf("unknown workload %q", workload)
		return prophet.Estimate{Request: req, Err: err}, err
	}
	if req.Threads == 0 {
		req.Threads = defaultThreads(req)
	}
	key := cellKey(entry, req)
	if est, ok := s.cache.Get(key); ok {
		est.Machine = req.Machine
		return est, nil
	}
	est, _, err := s.localCell(ctx, entry, key, req)
	return est, err
}

// defaultThreads resolves "threads":0 — the requested machine's core
// count, falling back to the default machine for unnamed (or not yet
// validated) machines.
func defaultThreads(req prophet.Request) int {
	if req.Machine != "" {
		if spec, err := prophet.ParseMachineSpec(req.Machine); err == nil {
			return spec.Cores()
		}
	}
	return prophet.DefaultMachine().Normalized().Cores
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var pr predictRequest
	if !s.decodeBody(w, r, &pr) {
		return
	}
	entry, ok := s.lookup(w, pr.Workload)
	if !ok {
		return
	}
	if err := validateRequest(pr.Request); err != nil {
		s.clientError(w, err)
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	s.predicts.Inc()
	defer func(start time.Time) { s.predictLat.ObserveDuration(time.Since(start)) }(time.Now())

	ctx, cancel := s.requestCtx(r, pr.TimeoutMS)
	defer cancel()
	if hook := s.testHook.Load(); hook != nil {
		(*hook)()
	}
	est, cached, err := s.estimate(ctx, entry, pr.Request, isForwarded(r))
	if isCancellation(err) {
		writeError(w, http.StatusGatewayTimeout, fmt.Sprintf("prediction canceled: %v", err))
		return
	}
	// Name the tier that answered, so clients (loadgen's per-source
	// latency streams) can split their measurements without parsing the
	// body.
	source := sourceEmulated
	switch {
	case cached:
		source = sourceCache
	case est.Source != "":
		source = est.Source
	}
	w.Header().Set(SourceHeader, source)
	// Failed predictions (deadlock, budget, malformed tree) are valid
	// results in the wire format: the estimate carries its err field,
	// exactly as the CLIs and sweep outcomes report it.
	writeJSON(w, http.StatusOK, est)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var sr sweepRequest
	if !s.decodeBody(w, r, &sr) {
		return
	}
	entry, ok := s.lookup(w, sr.Workload)
	if !ok {
		return
	}
	grid, err := expandGrid(sr, entry)
	if err != nil {
		s.clientError(w, err)
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	s.sweeps.Inc()
	defer func(start time.Time) { s.sweepLat.ObserveDuration(time.Since(start)) }(time.Now())

	ctx, cancel := s.requestCtx(r, sr.TimeoutMS)
	defer cancel()
	if hook := s.testHook.Load(); hook != nil {
		(*hook)()
	}

	// Fan the grid's cells through the shared estimate stack. Cached
	// cells answer inline; the rest coalesce in the batcher with every
	// other in-flight request's cells. Per-cell failures stay per-cell
	// (Outcome.Err), like a library sweep without FailFast.
	resp := sweepResponse{
		Workload: entry.name,
		Cells:    len(grid),
		Outcomes: make([]sweep.Outcome[prophet.Estimate], len(grid)),
	}
	var wg sync.WaitGroup
	var cachedCount int64
	var mu sync.Mutex
	forwarded := isForwarded(r)
	for i, req := range grid {
		i, req := i, req
		wg.Add(1)
		go func() {
			defer wg.Done()
			est, cached, err := s.estimate(ctx, entry, req, forwarded)
			o := sweep.Outcome[prophet.Estimate]{Index: i, Value: est, Err: err}
			if err == nil && est.Err != nil {
				o.Err = est.Err
			}
			if isCancellation(err) {
				o.Skipped = true
			}
			mu.Lock()
			if cached {
				cachedCount++
			}
			resp.Outcomes[i] = o
			mu.Unlock()
		}()
	}
	wg.Wait()
	resp.Cached = int(cachedCount)
	writeJSON(w, http.StatusOK, resp)
}

// handleAdvise runs the causal advisor over one workload: the library's
// AdviseCtx composes the configuration sweep and the per-region
// experiments, and this server supplies the estimator — so its results
// byte-agree with `prophet -advise` while every cell fans through the
// LRU → singleflight → batcher tiers. Baseline cells share their cache
// lines with /v1/predict; region-variant cells (synthesized trees) live
// under their own advise-scoped keys and are always served locally —
// variant trees exist only inside this request, so neither the surrogate
// nor the cluster ring can own them.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var ar adviseRequest
	if !s.decodeBody(w, r, &ar) {
		return
	}
	entry, ok := s.lookup(w, ar.Workload)
	if !ok {
		return
	}
	cores := ar.Cores
	if len(cores) == 0 {
		cores = entry.threadCounts
	}
	cores, err := normalizeCores(cores)
	if err != nil {
		s.clientError(w, err)
		return
	}
	if len(cores) == 0 {
		s.clientError(w, badRequestf("empty cores axis"))
		return
	}
	// Empty method selects the advisor's documented default, Synthesizer
	// — the same default prophet -advise applies when -method is unset.
	method := prophet.Synthesizer
	if ar.Method != "" {
		method, err = prophet.ParseMethod(strings.TrimSpace(ar.Method))
		if err != nil {
			s.clientError(w, badRequestf("%v", err))
			return
		}
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	s.advises.Inc()
	defer func(start time.Time) { s.adviseLat.ObserveDuration(time.Since(start)) }(time.Now())

	ctx, cancel := s.requestCtx(r, ar.TimeoutMS)
	defer cancel()
	if hook := s.testHook.Load(); hook != nil {
		(*hook)()
	}
	adv, aerr := entry.prof.AdviseCtx(ctx, &prophet.AdviseOptions{
		Threads:   cores,
		Method:    method,
		Workers:   s.cfg.Workers,
		Estimator: s.adviseEstimator(entry),
	})
	if isCancellation(aerr) {
		writeError(w, http.StatusGatewayTimeout, fmt.Sprintf("advise canceled: %v", aerr))
		return
	}
	// A fully-failed sweep is still a valid wire result: the advice
	// carries its err field, exactly as estimates do.
	writeJSON(w, http.StatusOK, adviseResponse{Workload: entry.name, Advice: adv})
}

// adviseEstimator adapts the server's cache hierarchy to the advisor's
// cell interface. Baseline cells (scope "") go through the full estimate
// stack — LRU, surrogate, cluster, singleflight, batcher — keyed exactly
// like /v1/predict cells. Region-variant cells run against the
// synthesized profile under an advise-scoped key: LRU and singleflight
// still apply (a repeated /v1/advise answers from cache), but the
// surrogate and the cluster are skipped — the variant tree is not the
// registered workload, so a learned model or a peer replica would answer
// for the wrong tree.
func (s *Server) adviseEstimator(entry *workloadEntry) prophet.AdviseEstimator {
	return func(ctx context.Context, scope string, prof *prophet.Profile, req prophet.Request) (prophet.Estimate, error) {
		if req.Threads == 0 {
			req.Threads = defaultThreads(req)
		}
		if scope == "" {
			est, _, err := s.estimate(ctx, entry, req, false)
			if err == nil && est.Err != nil {
				err = est.Err
			}
			return est, err
		}
		key := "advise\x00" + scope + "\x00" + cellKey(entry, req)
		if est, ok := s.cache.Get(key); ok {
			est.Machine = req.Machine
			return est, nil
		}
		est, _, err := s.cellOn(ctx, prof, key, req)
		if err == nil && est.Err != nil {
			err = est.Err
		}
		return est, err
	}
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleWorkloadImport(w, r)
		return
	case http.MethodGet:
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET to list workloads or POST to import a profile")
		return
	}
	s.readyMu.RLock()
	ready := s.ready
	s.readyMu.RUnlock()
	if !ready {
		writeError(w, http.StatusServiceUnavailable, "server is still loading workload profiles")
		return
	}
	// Configured workloads first, in config order; imported ones after,
	// sorted by name so the listing is deterministic.
	s.entriesMu.RLock()
	out := make([]workloadInfo, 0, len(s.entries))
	for _, name := range s.cfg.Workloads {
		out = append(out, infoFor(s.entries[name]))
	}
	imported := append([]string(nil), s.imported...)
	sort.Strings(imported)
	for _, name := range imported {
		out = append(out, infoFor(s.entries[name]))
	}
	s.entriesMu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// handleMachines lists the machine presets a request's machine field (or
// a sweep's machines axis) can name, and accepts POSTed custom specs.
// The registry is cheap and process-global, so both verbs are served
// without readiness or admission gating.
func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleMachineRegister(w, r)
		return
	case http.MethodGet:
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET to list machine specs or POST to register one")
		return
	}
	specs := prophet.MachinePresets()
	out := make([]machineInfo, 0, len(specs))
	for _, spec := range specs {
		out = append(out, machineInfo{
			Name:    spec.Name,
			Desc:    spec.Desc,
			Cores:   spec.Cores(),
			Default: spec.Name == prophet.DefaultMachineName,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMachineRegister registers a custom machine spec uploaded as
// JSON (the MachineSpec wire format). The spec must validate — 400,
// with the offending field named — and its name must be free — 409,
// since specs are immutable after publication and a name can never be
// rebound. On success the name is immediately usable in machine fields
// and machines sweep axes.
func (s *Server) handleMachineRegister(w http.ResponseWriter, r *http.Request) {
	spec := new(prophet.MachineSpec)
	if !s.decodeBody(w, r, spec) {
		return
	}
	if err := prophet.RegisterMachineSpec(spec); err != nil {
		if errors.Is(err, prophet.ErrDuplicateMachineSpec) {
			s.badReqs.Inc()
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		s.clientError(w, err) // validation failure
		return
	}
	writeJSON(w, http.StatusCreated, machineInfo{
		Name:  spec.Name,
		Desc:  spec.Desc,
		Cores: spec.Cores(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.readyMu.RLock()
	ready, closing := s.ready, s.closing
	s.readyMu.RUnlock()
	switch {
	case closing:
		writeError(w, http.StatusServiceUnavailable, "shutting down")
	case !ready:
		writeError(w, http.StatusServiceUnavailable, "loading workload profiles")
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"status":"ready"}`)
	}
}

// handleMetrics serves the JSON snapshot of the obs registry: server
// request/latency series, estimate-cache and batch traffic, and the
// pipeline metrics (stage timers, DES counters, sweep cells) aggregated
// from every profile and emulation the daemon has run.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := s.metrics.Snapshot().WriteJSON(w); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// ---- plumbing ----

func (s *Server) lookup(w http.ResponseWriter, name string) (*workloadEntry, bool) {
	s.readyMu.RLock()
	ready := s.ready
	s.readyMu.RUnlock()
	if !ready {
		writeError(w, http.StatusServiceUnavailable, "server is still loading workload profiles")
		return nil, false
	}
	s.entriesMu.RLock()
	entry, ok := s.entries[name]
	s.entriesMu.RUnlock()
	if !ok {
		s.badReqs.Inc()
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown workload %q (GET /v1/workloads lists them)", name))
		return nil, false
	}
	return entry, true
}

// decodeBody parses a JSON request body strictly: unknown fields are a
// client error (they are always a typo against this API), and bodies are
// capped at 1 MiB.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.badReqs.Inc()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func (s *Server) clientError(w http.ResponseWriter, err error) {
	s.badReqs.Inc()
	writeError(w, http.StatusBadRequest, err.Error())
}

// isForwarded reports whether a request is an already-routed cluster
// cell: it is served locally, never re-routed, so forwarding terminates
// after one hop.
func isForwarded(r *http.Request) bool {
	return r.Header.Get(cluster.ForwardedHeader) != ""
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client hung up; nothing left to report to it
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

func isCancellation(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}
