package server

import (
	"fmt"
	"testing"

	"prophet"
	"prophet/internal/obs"
)

func est(speedup float64) prophet.Estimate {
	return prophet.Estimate{Speedup: speedup}
}

func TestEstimateCacheEvictsLRU(t *testing.T) {
	reg := &obs.Registry{}
	c := newEstimateCache(3, 1, reg) // one shard so the LRU order is total

	c.Put("a", est(1))
	c.Put("b", est(2))
	c.Put("c", est(3))
	if _, ok := c.Get("a"); !ok { // promote a: LRU order is now b, c, a
		t.Fatal("a missing")
	}
	c.Put("d", est(4)) // evicts b, the least recently used

	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction, want it dropped as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
	if n := reg.Snapshot().Counters[obs.MServerCacheEvictions]; n != 1 {
		t.Errorf("evictions = %d, want 1", n)
	}
}

func TestEstimateCacheUpdateExisting(t *testing.T) {
	c := newEstimateCache(2, 1, &obs.Registry{})
	c.Put("k", est(1))
	c.Put("k", est(9))
	got, ok := c.Get("k")
	if !ok || got.Speedup != 9 {
		t.Fatalf("Get(k) = %+v, %v, want speedup 9", got, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (update must not duplicate)", c.Len())
	}
}

func TestEstimateCacheDisabled(t *testing.T) {
	c := newEstimateCache(-1, 4, &obs.Registry{})
	c.Put("k", est(1))
	if _, ok := c.Get("k"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestEstimateCacheShardsIndependent(t *testing.T) {
	reg := &obs.Registry{}
	c := newEstimateCache(64, 8, reg)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%d", i)
		c.Put(k, est(float64(i)))
	}
	hits := 0
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%d", i)
		if got, ok := c.Get(k); ok {
			hits++
			if got.Speedup != float64(i) {
				t.Errorf("Get(%s) = %v, want %d", k, got.Speedup, i)
			}
		}
	}
	// Shard capacity is ceil(64/8) = 8 per shard; uneven hashing may evict
	// a few, but the vast majority must survive and none may be corrupted.
	if hits < 48 {
		t.Errorf("only %d/64 keys survived across shards", hits)
	}
	if c.Len() != hits {
		t.Errorf("Len = %d, want %d", c.Len(), hits)
	}
}
