package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"prophet"
	"prophet/internal/obs"
	"prophet/internal/workloads"
)

// TestAdviseMatchesDirectAdvice pins the acceptance criterion that the
// daemon and the CLI produce byte-identical advice: the /v1/advise body
// must equal the library AdviseCtx result serialized with the same
// encoder, because all composition lives in the library and the server
// only supplies the estimator. Also checks that cores arrive
// unnormalized and that a repeated advise is answered from cache with
// the same bytes.
func TestAdviseMatchesDirectAdvice(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	w, err := workloads.ByName("NPB-EP")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := prophet.ProfileProgramCtx(context.Background(), w.Program, &prophet.Options{
		ThreadCounts: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	adv, aerr := prof.AdviseCtx(context.Background(), &prophet.AdviseOptions{
		Threads: []int{2, 4},
		Method:  prophet.FastForward,
	})
	if aerr != nil {
		t.Fatalf("direct AdviseCtx: %v", aerr)
	}
	want, err := json.MarshalIndent(adviseResponse{Workload: "NPB-EP", Advice: adv}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')

	// Unnormalized cores on purpose: the handler must dedupe + sort, so
	// {4, 2, 4} advises the same grid as the direct {2, 4} call.
	body := adviseRequest{Workload: "NPB-EP", Cores: []int{4, 2, 4}, Method: "ff"}
	status, raw1 := postJSON(t, ts.URL+"/v1/advise", body)
	if status != http.StatusOK {
		t.Fatalf("advise: status %d: %s", status, raw1)
	}
	if !bytes.Equal(raw1, want) {
		t.Errorf("/v1/advise body differs from direct AdviseCtx:\n got: %s\nwant: %s", raw1, want)
	}

	status, raw2 := postJSON(t, ts.URL+"/v1/advise", body)
	if status != http.StatusOK {
		t.Fatalf("repeat advise: status %d", status)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("cached advise differs from computed advise:\n%s\n%s", raw1, raw2)
	}

	if n := counterValue(t, s, obs.MServerAdvises); n != 2 {
		t.Errorf("%s = %d, want 2", obs.MServerAdvises, n)
	}
	if n := counterValue(t, s, obs.MAdviseRuns); n != 2 {
		t.Errorf("%s = %d, want 2", obs.MAdviseRuns, n)
	}
	if n := counterValue(t, s, obs.MAdviseRegions); n < 1 {
		t.Errorf("%s = %d, want >= 1", obs.MAdviseRegions, n)
	}
	// The repeat run's cells (baseline and advise-scoped variants alike)
	// must have come from the LRU.
	if hits := counterValue(t, s, obs.MServerCacheHits); hits < 1 {
		t.Errorf("%s = %d, want >= 1", obs.MServerCacheHits, hits)
	}
}

// TestAdviseDefaultsToSynthesizer pins the documented default: an empty
// method field selects the synthesizer, matching prophet -advise when
// -method is unset, and empty cores fall back to the loaded axis.
func TestAdviseDefaultsToSynthesizer(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, raw := postJSON(t, ts.URL+"/v1/advise", adviseRequest{Workload: "NPB-EP"})
	if status != http.StatusOK {
		t.Fatalf("advise: status %d: %s", status, raw)
	}
	var resp adviseResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("advise response: %v", err)
	}
	if len(resp.Advice.Sweep) == 0 {
		t.Fatal("advice has no sweep")
	}
	for _, e := range resp.Advice.Sweep {
		if e.Request.Method != prophet.Synthesizer {
			t.Fatalf("sweep cell method = %s, want %s (the default)", e.Request.Method, prophet.Synthesizer)
		}
	}
	if resp.Advice.TargetThreads != 4 {
		t.Errorf("target threads = %d, want 4 (largest loaded core count)", resp.Advice.TargetThreads)
	}
}

// TestAdviseBadRequests covers the rejection paths: wrong verb, unknown
// workload, invalid method, and invalid cores.
func TestAdviseBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/advise")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/advise status = %d, want 405", resp.StatusCode)
	}

	cases := []struct {
		name string
		body adviseRequest
		want int
	}{
		{"unknown workload", adviseRequest{Workload: "nope"}, http.StatusNotFound},
		{"bad method", adviseRequest{Workload: "NPB-EP", Method: "quantum"}, http.StatusBadRequest},
		{"bad cores", adviseRequest{Workload: "NPB-EP", Cores: []int{0}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		status, body := postJSON(t, ts.URL+"/v1/advise", c.body)
		if status != c.want {
			t.Errorf("%s: status = %d, want %d (body %s)", c.name, status, c.want, body)
		}
		var eresp errorResponse
		if err := json.Unmarshal(body, &eresp); err != nil || eresp.Error == "" {
			t.Errorf("%s: body not an error response: %s", c.name, body)
		}
	}
}

// TestAdviseTimeoutReturns504 checks that a request-scoped deadline that
// expires mid-advise maps to 504, like the other estimate endpoints.
func TestAdviseTimeoutReturns504(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	hook := func() { time.Sleep(50 * time.Millisecond) }
	s.testHook.Store(&hook)

	status, body := postJSON(t, ts.URL+"/v1/advise", adviseRequest{
		Workload:  "NPB-EP",
		Method:    "ff",
		TimeoutMS: 1,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", status, body)
	}
}
