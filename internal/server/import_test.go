package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"prophet"
	"prophet/internal/obs"
	"prophet/internal/profimport"
)

func readProfileFixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "profimport", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// postProfile uploads raw profile bytes to POST /v1/workloads.
func postProfile(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// tinyProfile builds a small valid gzipped pprof profile.
func tinyProfile() []byte {
	return profimport.GzipPprof(profimport.EncodePprof([]profimport.StackSample{
		{Frames: []string{"main", "work"}, Weight: 700},
		{Frames: []string{"main", "io"}, Weight: 300},
	}, "cpu", "nanoseconds"))
}

// TestImportWorkloadEndToEnd is the acceptance path: the checked-in
// pprof fixture uploads via POST /v1/workloads, converts to the SAME
// tree the CLI import path produces (pinned through the stable-JSON
// tree hash), and the registered workload then serves /v1/predict and
// /v1/sweep like a built-in.
func TestImportWorkloadEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableMemoryModel: true})
	data := readProfileFixture(t, "cpu.pb.gz")

	// The workload name doubles as the tree's section name; "imported"
	// is profimport's default, so the CLI path (which passes no name)
	// must produce a byte-identical tree.
	status, body := postProfile(t, ts.URL+"/v1/workloads?name=imported", data)
	if status != http.StatusCreated {
		t.Fatalf("import: status %d: %s", status, body)
	}
	var ir importResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("import response: %v\n%s", err, body)
	}
	if ir.Name != "imported" || ir.TreeHash == "" {
		t.Errorf("import response missing identity: %+v", ir)
	}
	if ir.Stats.Samples == 0 || ir.Stats.TotalWeight == 0 || ir.Stats.SampleType == "" {
		t.Errorf("import stats empty: %+v", ir.Stats)
	}

	// Replay the CLI import path (defaults only) and profile identically:
	// the hashes agree iff the trees' stable JSON forms are byte-equal.
	res, err := profimport.FromPprof(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Samples != ir.Stats.Samples {
		t.Errorf("server imported %d samples, CLI path %d", ir.Stats.Samples, res.Stats.Samples)
	}
	prof, err := prophet.ProfileTreeCtx(context.Background(), res.Tree, &prophet.Options{
		ThreadCounts:       []int{2, 4},
		DisableMemoryModel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantHash, err := hashTree(prof.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if ir.TreeHash != wantHash {
		t.Errorf("server tree hash %s != CLI-path tree hash %s (trees not byte-identical)", ir.TreeHash, wantHash)
	}

	// The imported workload serves predictions.
	status, body = postJSON(t, ts.URL+"/v1/predict", predictRequest{
		Workload: "imported",
		Request:  prophet.Request{Method: prophet.FastForward, Threads: 4, Paradigm: prophet.OpenMP, Sched: prophet.Static},
	})
	if status != http.StatusOK {
		t.Fatalf("predict on imported: status %d: %s", status, body)
	}
	var est prophet.Estimate
	if err := json.Unmarshal(body, &est); err != nil {
		t.Fatal(err)
	}
	if est.Err != nil || est.Speedup <= 0 {
		t.Errorf("predict on imported: speedup %v err %v", est.Speedup, est.Err)
	}

	// And sweeps, through the same grid machinery.
	status, body = postJSON(t, ts.URL+"/v1/sweep", sweepRequest{Workload: "imported", Cores: []int{2, 4}})
	if status != http.StatusOK {
		t.Fatalf("sweep on imported: status %d: %s", status, body)
	}
	var sr sweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cells != 2 || len(sr.Outcomes) != 2 {
		t.Fatalf("sweep on imported: %d cells, %d outcomes", sr.Cells, len(sr.Outcomes))
	}
	for _, o := range sr.Outcomes {
		if o.Err != nil || o.Value.Err != nil {
			t.Errorf("sweep outcome %d failed: %v %v", o.Index, o.Err, o.Value.Err)
		}
	}

	// GET lists configured workloads first, imported after.
	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []workloadInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Name != "NPB-EP" || list[1].Name != "imported" {
		t.Errorf("workload list = %+v", list)
	}
	if got := counterValue(t, s, obs.MServerImports); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MServerImports, got)
	}
}

// TestImportWorkloadErrors drives every rejection path of the upload
// endpoint and checks each is a structured 4xx (never a 500), that the
// bad-request counter moves, and that error handling leaks no
// goroutines.
func TestImportWorkloadErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableMemoryModel: true, MaxImportBytes: 64 << 10})

	// Occupy a name for the duplicate cases.
	if status, body := postProfile(t, ts.URL+"/v1/workloads?name=taken", tinyProfile()); status != http.StatusCreated {
		t.Fatalf("seed import: status %d: %s", status, body)
	}

	truncated := readProfileFixture(t, "cpu.pb.gz")[:40]
	cases := []struct {
		name       string
		query      string
		body       []byte
		wantStatus int
		wantMsg    string
	}{
		{"missing name", "", tinyProfile(), http.StatusBadRequest, "name"},
		{"invalid name", "?name=no/slashes", tinyProfile(), http.StatusBadRequest, "name"},
		{"overlong name", "?name=" + strings.Repeat("x", 65), tinyProfile(), http.StatusBadRequest, "name"},
		{"bad format", "?name=w1&format=perf", tinyProfile(), http.StatusBadRequest, "format"},
		{"bad collapse", "?name=w1&collapse=1.5", tinyProfile(), http.StatusBadRequest, "collapse"},
		{"duplicate of configured workload", "?name=NPB-EP", tinyProfile(), http.StatusConflict, "already exists"},
		{"duplicate of imported workload", "?name=taken", tinyProfile(), http.StatusConflict, "already exists"},
		{"oversized upload", "?name=w1", make([]byte, 128<<10), http.StatusRequestEntityTooLarge, "upload limit"},
		{"gzip bomb over expansion limit", "?name=w1", profimport.GzipPprof(make([]byte, 1<<20)), http.StatusRequestEntityTooLarge, "size limit"},
		{"truncated gzip", "?name=w1", truncated, http.StatusBadRequest, "malformed profile"},
		{"non-protobuf junk as pprof", "?name=w1&format=pprof", []byte{0x01, 0x02, 0xff, 0xfe}, http.StatusBadRequest, "malformed profile"},
		{"folded junk", "?name=w1&format=folded", []byte("stack;frames notanumber\n"), http.StatusBadRequest, "malformed profile"},
		{"empty profile", "?name=w1", profimport.GzipPprof(profimport.EncodePprof(nil, "cpu", "nanoseconds")), http.StatusBadRequest, "no samples"},
		{"unknown sample type", "?name=w1&sample_type=alloc_space", tinyProfile(), http.StatusBadRequest, "sample type"},
	}

	before := runtime.NumGoroutine()
	badBefore := counterValue(t, s, obs.MServerBadRequests)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := postProfile(t, ts.URL+"/v1/workloads"+c.query, c.body)
			if status != c.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s", status, c.wantStatus, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body not structured JSON: %v\n%s", err, body)
			}
			if !strings.Contains(er.Error, c.wantMsg) {
				t.Errorf("error %q does not mention %q", er.Error, c.wantMsg)
			}
		})
	}
	if badAfter := counterValue(t, s, obs.MServerBadRequests); badAfter-badBefore != int64(len(cases)) {
		t.Errorf("%s moved by %d, want %d", obs.MServerBadRequests, badAfter-badBefore, len(cases))
	}
	if got := counterValue(t, s, obs.MServerImports); got != 1 {
		t.Errorf("%s = %d after error storm, want 1 (the seed)", obs.MServerImports, got)
	}

	// None of the rejected uploads may leave a goroutine behind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines grew %d -> %d after error paths\n%s",
				before, after, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A method other than GET/POST is a 405 with Allow.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workloads", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") == "" {
		t.Errorf("DELETE: status %d Allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// TestImportDisabled pins the negative MaxImportBytes contract.
func TestImportDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableMemoryModel: true, MaxImportBytes: -1})
	status, body := postProfile(t, ts.URL+"/v1/workloads?name=w1", tinyProfile())
	if status != http.StatusForbidden {
		t.Fatalf("status = %d, want 403; body: %s", status, body)
	}
	// GET still works with uploads disabled.
	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET with uploads disabled: status %d", resp.StatusCode)
	}
}

// TestImportFoldedAutoDetect checks the format sniffer: the same stacks
// uploaded as folded text (no format param) and as pprof protobuf
// register trees with the same hash.
func TestImportFoldedAutoDetect(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableMemoryModel: true})
	samples := []profimport.StackSample{
		{Frames: []string{"main", "work"}, Weight: 700},
		{Frames: []string{"main", "io"}, Weight: 300},
	}
	var folded bytes.Buffer
	for _, smp := range samples {
		fmt.Fprintf(&folded, "%s %d\n", strings.Join(smp.Frames, ";"), smp.Weight)
	}

	status, body := postProfile(t, ts.URL+"/v1/workloads?name=as.folded", folded.Bytes())
	if status != http.StatusCreated {
		t.Fatalf("folded import: status %d: %s", status, body)
	}
	var foldedResp importResponse
	if err := json.Unmarshal(body, &foldedResp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(foldedResp.Desc, "folded") {
		t.Errorf("folded upload not sniffed as folded: %q", foldedResp.Desc)
	}

	status, body = postProfile(t, ts.URL+"/v1/workloads?name=as.pprof",
		profimport.GzipPprof(profimport.EncodePprof(samples, "cpu", "nanoseconds")))
	if status != http.StatusCreated {
		t.Fatalf("pprof import: status %d: %s", status, body)
	}
	var pprofResp importResponse
	if err := json.Unmarshal(body, &pprofResp); err != nil {
		t.Fatal(err)
	}

	// Different section names (the workload names) mean different trees;
	// compare the stats instead, which identify the same sample set.
	if foldedResp.Stats.TotalWeight != pprofResp.Stats.TotalWeight ||
		foldedResp.Stats.Samples != pprofResp.Stats.Samples {
		t.Errorf("folded stats %+v != pprof stats %+v", foldedResp.Stats, pprofResp.Stats)
	}
}
