package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"prophet"
)

// TestReadyzFlipsTheMomentShutdownStops is the load-balancer contract:
// /readyz must answer 503 as soon as Shutdown stops admitting — while
// the drain of in-flight requests is still in progress, not after it
// finishes — so an LB pulls the replica before its refusals are visible
// to clients. A cluster prober leans on the same signal to open the
// draining peer's circuit.
func TestReadyzFlipsTheMomentShutdownStops(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Park one request in flight so the drain cannot complete.
	entered := make(chan struct{})
	release := make(chan struct{})
	hook := func() {
		close(entered)
		<-release
	}
	s.testHook.Store(&hook)
	predictDone := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, ts.URL+"/v1/predict", predictRequest{
			Workload: "NPB-EP",
			Request:  prophet.Request{Threads: 2},
		})
		predictDone <- code
	}()
	<-entered
	var noop func()
	s.testHook.Store(&noop) // later requests must not block

	// Shutdown with a generous deadline: it will sit in the drain until
	// the parked request is released.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// While the drain is pending, readiness must already be gone and new
	// work refused — poll briefly for the closing flag to be observable.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz still %d mid-drain, want 503", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was still in flight", err)
	default:
	}
	if code, _ := postJSON(t, ts.URL+"/v1/predict", predictRequest{
		Workload: "NPB-EP",
		Request:  prophet.Request{Threads: 2},
	}); code != http.StatusServiceUnavailable {
		t.Errorf("predict during drain: %d, want 503", code)
	}
	// /healthz keeps answering 200 throughout: the process is alive, it
	// is the *readiness* that flipped.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: %d, want 200", resp.StatusCode)
	}

	// The parked request finishes normally: draining never cancels work
	// that was already admitted.
	close(release)
	if code := <-predictDone; code != http.StatusOK {
		t.Errorf("in-flight predict finished with %d, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown after clean drain: %v", err)
	}
}
