package server

import (
	"container/list"
	"hash/fnv"
	"sync"

	"prophet"
	"prophet/internal/obs"
)

// estimateCache is a sharded LRU over completed estimates, keyed on
// (workload, compressed-tree hash, request). It sits in front of the
// library's singleflight calibration cache: the calibration cache saves
// the expensive per-machine microbenchmark sweep, this cache saves the
// per-request emulation. Sharding keeps the lock a per-shard mutex so
// the hot path (a hammered daemon serving repeated sweeps) does not
// serialize on one cache lock.
//
// Only successful estimates (Err == nil) are stored; see Server.estimate.
type estimateCache struct {
	shards []*cacheShard
	// per-shard capacity; <= 0 disables the cache entirely.
	perShard int

	hits, misses, evictions *obs.Counter
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*list.Element
	ll *list.List // front = most recently used
}

type cacheItem struct {
	key string
	est prophet.Estimate
}

// newEstimateCache builds a cache of about `capacity` total entries over
// `shards` shards. capacity <= 0 disables caching (every Get misses);
// shards is clamped to at least 1.
func newEstimateCache(capacity, shards int, reg *obs.Registry) *estimateCache {
	if shards < 1 {
		shards = 1
	}
	perShard := 0
	if capacity > 0 {
		perShard = (capacity + shards - 1) / shards
	}
	c := &estimateCache{
		perShard:  perShard,
		hits:      reg.Counter(obs.MServerCacheHits),
		misses:    reg.Counter(obs.MServerCacheMisses),
		evictions: reg.Counter(obs.MServerCacheEvictions),
	}
	c.shards = make([]*cacheShard, shards)
	for i := range c.shards {
		c.shards[i] = &cacheShard{m: make(map[string]*list.Element), ll: list.New()}
	}
	return c
}

func (c *estimateCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns the cached estimate for key and promotes it to most
// recently used.
func (c *estimateCache) Get(key string) (prophet.Estimate, bool) {
	if c.perShard <= 0 {
		c.misses.Inc()
		return prophet.Estimate{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		c.misses.Inc()
		return prophet.Estimate{}, false
	}
	s.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheItem).est, true
}

// Put stores est under key, evicting the least recently used entry of
// the shard when it is full.
func (c *estimateCache) Put(key string, est prophet.Estimate) {
	if c.perShard <= 0 {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheItem).est = est
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&cacheItem{key: key, est: est})
	if s.ll.Len() > c.perShard {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.m, back.Value.(*cacheItem).key)
		c.evictions.Inc()
	}
}

// Len returns the total number of cached entries across shards.
func (c *estimateCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
