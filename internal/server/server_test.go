package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"prophet"
	"prophet/internal/obs"
	"prophet/internal/sweep"
	"prophet/internal/workloads"
)

// newTestServer builds a loaded server plus an httptest front end. The
// default workload is NPB-EP (the fastest to profile and estimate) over
// a two-point cores axis; tests override via cfg.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []string{"NPB-EP"}
	}
	if len(cfg.Cores) == 0 {
		cfg.Cores = []int{2, 4}
	}
	s := New(cfg)
	if err := s.Load(context.Background()); err != nil {
		t.Fatalf("Load: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func counterValue(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	return s.metrics.Snapshot().Counters[name]
}

// TestPredictMatchesDirectEstimate pins the acceptance criterion that the
// daemon and the single-shot CLI path produce byte-identical estimates:
// the /v1/predict body must equal the library Estimate serialized with
// the same encoder, for every method.
func TestPredictMatchesDirectEstimate(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_ = s

	w, err := workloads.ByName("NPB-EP")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := prophet.ProfileProgramCtx(context.Background(), w.Program, &prophet.Options{
		ThreadCounts: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	reqs := []prophet.Request{
		{Method: prophet.FastForward, Threads: 4, Paradigm: w.Paradigm, Sched: w.Sched, MemoryModel: true},
		{Method: prophet.AmdahlLaw, Threads: 2, Paradigm: w.Paradigm, Sched: w.Sched},
		{Method: prophet.CriticalPathBound, Threads: 4, Paradigm: w.Paradigm, Sched: w.Sched},
		{Method: prophet.Synthesizer, Threads: 2, Paradigm: w.Paradigm, Sched: prophet.Dynamic1, MemoryModel: true},
	}
	for _, req := range reqs {
		want, err := prof.EstimateCtx(context.Background(), req)
		if err != nil {
			t.Fatalf("direct EstimateCtx(%v): %v", req, err)
		}
		wantJSON, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		wantJSON = append(wantJSON, '\n')

		status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Workload: "NPB-EP", Request: req})
		if status != http.StatusOK {
			t.Fatalf("predict %v: status %d: %s", req, status, body)
		}
		if !bytes.Equal(body, wantJSON) {
			t.Errorf("predict %v body differs from direct estimate:\n got: %s\nwant: %s", req, body, wantJSON)
		}
	}
}

// TestSweepGridOrderAndCache checks the deterministic grid order
// (methods → paradigms → scheds → cores, cores innermost), that a
// repeated sweep is answered from the estimate cache with identical
// bytes, and that the hits show up in /metrics.
func TestSweepGridOrderAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	body := sweepRequest{
		Workload: "NPB-EP",
		Methods:  []string{"ff", "amdahl"},
		Scheds:   []string{"(static)", "(dynamic,1)"},
		Cores:    []int{4, 2, 4}, // unnormalized on purpose: dedupe + sort
	}
	status, raw1 := postJSON(t, ts.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", status, raw1)
	}
	var resp1 sweepResponse
	if err := json.Unmarshal(raw1, &resp1); err != nil {
		t.Fatalf("sweep response: %v", err)
	}
	if resp1.Cells != 8 || len(resp1.Outcomes) != 8 {
		t.Fatalf("cells = %d, outcomes = %d, want 8 (2 methods × 2 scheds × 2 cores)", resp1.Cells, len(resp1.Outcomes))
	}
	wantOrder := []struct {
		method  prophet.Method
		sched   string
		threads int
	}{
		{prophet.FastForward, "(static)", 2}, {prophet.FastForward, "(static)", 4},
		{prophet.FastForward, "(dynamic,1)", 2}, {prophet.FastForward, "(dynamic,1)", 4},
		{prophet.AmdahlLaw, "(static)", 2}, {prophet.AmdahlLaw, "(static)", 4},
		{prophet.AmdahlLaw, "(dynamic,1)", 2}, {prophet.AmdahlLaw, "(dynamic,1)", 4},
	}
	for i, o := range resp1.Outcomes {
		if o.Index != i {
			t.Errorf("outcome[%d].Index = %d", i, o.Index)
		}
		if o.Err != nil {
			t.Errorf("outcome[%d] failed: %v", i, o.Err)
		}
		r := o.Value.Request
		w := wantOrder[i]
		if r.Method != w.method || r.Sched.String() != w.sched || r.Threads != w.threads {
			t.Errorf("outcome[%d] request = %s/%s/%d, want %s/%s/%d",
				i, r.Method, r.Sched, r.Threads, w.method, w.sched, w.threads)
		}
		if !r.MemoryModel {
			t.Errorf("outcome[%d] lost the memory_model default", i)
		}
	}

	status, raw2 := postJSON(t, ts.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("repeat sweep: status %d", status)
	}
	var resp2 sweepResponse
	if err := json.Unmarshal(raw2, &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Cached != 8 {
		t.Errorf("repeat sweep Cached = %d, want 8", resp2.Cached)
	}
	o1, _ := json.Marshal(resp1.Outcomes)
	o2, _ := json.Marshal(resp2.Outcomes)
	if !bytes.Equal(o1, o2) {
		t.Errorf("cached sweep differs from computed sweep:\n%s\n%s", o1, o2)
	}

	if hits := counterValue(t, s, obs.MServerCacheHits); hits < 8 {
		t.Errorf("%s = %d, want >= 8", obs.MServerCacheHits, hits)
	}

	// The /metrics endpoint must expose the same counters as JSON.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	for _, name := range []string{obs.MServerSweeps, obs.MServerCacheHits, obs.MServerBatches} {
		if snap.Counters[name] < 1 {
			t.Errorf("/metrics counter %s = %d, want >= 1", name, snap.Counters[name])
		}
	}
}

// TestGoldenWireRoundTrip pins the HTTP wire format to the PR 3 golden
// file: the server's encoder over the golden estimates reproduces
// results/golden/estimates.json byte for byte, and live /v1/predict and
// /v1/sweep bodies survive a decode → re-encode round trip unchanged
// (so the HTTP layer adds no renamed or re-encoded fields).
func TestGoldenWireRoundTrip(t *testing.T) {
	goldenPath := filepath.Join("..", "..", "results", "golden", "estimates.json")
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	var ests []prophet.Estimate
	if err := json.Unmarshal(golden, &ests); err != nil {
		t.Fatalf("golden does not decode as []prophet.Estimate: %v", err)
	}
	re, err := json.MarshalIndent(ests, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	re = append(re, '\n')
	if !bytes.Equal(re, golden) {
		t.Fatalf("estimate encoder drifted from golden file:\ngot:\n%s\nwant:\n%s", re, golden)
	}

	_, ts := newTestServer(t, Config{})

	// Live /v1/predict: body == Estimate == re-encoded body.
	status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{
		Workload: "NPB-EP",
		Request:  prophet.Request{Method: prophet.FastForward, Threads: 4, MemoryModel: true},
	})
	if status != http.StatusOK {
		t.Fatalf("predict: status %d: %s", status, body)
	}
	var est prophet.Estimate
	if err := json.Unmarshal(body, &est); err != nil {
		t.Fatalf("predict body is not a prophet.Estimate: %v", err)
	}
	re, err = json.MarshalIndent(est, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	re = append(re, '\n')
	if !bytes.Equal(re, body) {
		t.Errorf("predict body does not round-trip through prophet.Estimate:\n got: %s\nre-encoded: %s", body, re)
	}

	// Live /v1/sweep: every outcome == sweep.Outcome[prophet.Estimate].
	status, body = postJSON(t, ts.URL+"/v1/sweep", sweepRequest{
		Workload: "NPB-EP",
		Methods:  []string{"ff", "amdahl"},
		Cores:    []int{2, 4},
	})
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", status, body)
	}
	var rawResp struct {
		Outcomes []json.RawMessage `json:"outcomes"`
	}
	if err := json.Unmarshal(body, &rawResp); err != nil {
		t.Fatal(err)
	}
	if len(rawResp.Outcomes) != 4 {
		t.Fatalf("outcomes = %d, want 4", len(rawResp.Outcomes))
	}
	for i, raw := range rawResp.Outcomes {
		var o sweep.Outcome[prophet.Estimate]
		if err := json.Unmarshal(raw, &o); err != nil {
			t.Fatalf("outcome[%d] is not a sweep.Outcome[prophet.Estimate]: %v", i, err)
		}
		re, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := json.Compact(&buf, raw); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, buf.Bytes()) {
			t.Errorf("outcome[%d] does not round-trip:\n got: %s\nre-encoded: %s", i, buf.Bytes(), re)
		}
	}
}

// TestOverloadReturns429 fills the single admission slot with a blocked
// request and checks that the next one is refused immediately with 429
// and a Retry-After header — backpressure, not queueing.
func TestOverloadReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	hook := func() {
		entered <- struct{}{}
		<-release
	}
	s.testHook.Store(&hook)

	first := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts.URL+"/v1/predict", predictRequest{
			Workload: "NPB-EP",
			Request:  prophet.Request{Method: prophet.FastForward, Threads: 2},
		})
		first <- status
	}()
	<-entered // the slot is held

	data, _ := json.Marshal(predictRequest{Workload: "NPB-EP", Request: prophet.Request{Method: prophet.FastForward, Threads: 4}})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var eresp errorResponse
	if err := json.Unmarshal(body, &eresp); err != nil || eresp.Error == "" {
		t.Errorf("429 body not an error response: %s", body)
	}
	if n := counterValue(t, s, obs.MServerRejected); n < 1 {
		t.Errorf("%s = %d, want >= 1", obs.MServerRejected, n)
	}

	close(release)
	if status := <-first; status != http.StatusOK {
		t.Fatalf("held request finished with %d, want 200", status)
	}
}

// TestShutdownDrains checks graceful shutdown: in-flight requests
// complete, new requests are refused with 503, and Shutdown returns nil
// once the drain finishes.
func TestShutdownDrains(t *testing.T) {
	cfg := Config{Workloads: []string{"NPB-EP"}, Cores: []int{2, 4}}
	s := New(cfg)
	if err := s.Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	hook := func() {
		entered <- struct{}{}
		<-release
	}
	s.testHook.Store(&hook)

	first := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts.URL+"/v1/predict", predictRequest{
			Workload: "NPB-EP",
			Request:  prophet.Request{Method: prophet.FastForward, Threads: 2},
		})
		first <- status
	}()
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Shutdown flips closing before waiting on the drain; poll until the
	// refusal is visible, then check new traffic is turned away.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported shutting down")
		}
		time.Sleep(time.Millisecond)
	}
	status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{
		Workload: "NPB-EP",
		Request:  prophet.Request{Method: prophet.FastForward, Threads: 4},
	})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d (%s), want 503", status, body)
	}

	close(release) // let the held request finish
	if got := <-first; got != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", got)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestRequestDeadline checks the per-request timeout_ms wiring into the
// PR 2 cancellation paths: an expired predict answers 504, and expired
// sweep cells come back Skipped rather than failing the whole response.
func TestRequestDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// The hook runs after the request context is armed; sleeping past the
	// 1ms deadline guarantees the estimate sees an expired context.
	hook := func() { time.Sleep(30 * time.Millisecond) }
	s.testHook.Store(&hook)

	status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{
		Workload:  "NPB-EP",
		Request:   prophet.Request{Method: prophet.FastForward, Threads: 2},
		TimeoutMS: 1,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("expired predict: status %d (%s), want 504", status, body)
	}

	status, body = postJSON(t, ts.URL+"/v1/sweep", sweepRequest{
		Workload:  "NPB-EP",
		Cores:     []int{2, 4},
		TimeoutMS: 1,
	})
	if status != http.StatusOK {
		t.Fatalf("expired sweep: status %d (%s), want 200 with skipped cells", status, body)
	}
	var resp sweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for i, o := range resp.Outcomes {
		if !o.Skipped || o.Err == nil {
			t.Errorf("outcome[%d] = {skipped:%v err:%v}, want skipped with a cancellation", i, o.Skipped, o.Err)
		}
	}
	s.testHook.Store(nil)
}

// TestBadInputs sweeps the validation surface: wrong method, malformed
// body, unknown fields/workloads, and out-of-range requests.
func TestBadInputs(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	get, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed || get.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET /v1/predict: status %d Allow %q, want 405 with Allow: POST", get.StatusCode, get.Header.Get("Allow"))
	}

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed json", "/v1/predict", `{`, http.StatusBadRequest},
		{"unknown field", "/v1/predict", `{"workload":"NPB-EP","bogus":1}`, http.StatusBadRequest},
		{"unknown workload", "/v1/predict", `{"workload":"nope","request":{"method":"ff","threads":2}}`, http.StatusNotFound},
		{"negative threads", "/v1/predict", `{"workload":"NPB-EP","request":{"method":"ff","threads":-1}}`, http.StatusBadRequest},
		{"absurd threads", "/v1/predict", `{"workload":"NPB-EP","request":{"method":"ff","threads":100000}}`, http.StatusBadRequest},
		{"bad method", "/v1/sweep", `{"workload":"NPB-EP","methods":["simulated-annealing"]}`, http.StatusBadRequest},
		{"bad sched", "/v1/sweep", `{"workload":"NPB-EP","scheds":["whenever"]}`, http.StatusBadRequest},
		{"zero core", "/v1/sweep", `{"workload":"NPB-EP","cores":[0]}`, http.StatusBadRequest},
		{"negative core", "/v1/sweep", `{"workload":"NPB-EP","cores":[4,-2]}`, http.StatusBadRequest},
	}
	before := counterValue(t, s, obs.MServerBadRequests)
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
		var eresp errorResponse
		if err := json.Unmarshal(body, &eresp); err != nil || eresp.Error == "" {
			t.Errorf("%s: body is not an error response: %s", c.name, body)
		}
	}
	if after := counterValue(t, s, obs.MServerBadRequests); after-before != int64(len(cases)) {
		t.Errorf("%s advanced by %d, want %d", obs.MServerBadRequests, after-before, len(cases))
	}
}

// TestReadyzLifecycle checks the not-yet-loaded refusals: /readyz and the
// prediction endpoints answer 503 before Load, /healthz answers 200
// throughout (liveness, not readiness).
func TestReadyzLifecycle(t *testing.T) {
	s := New(Config{Workloads: []string{"NPB-EP"}, Cores: []int{2}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	for _, path := range []string{"/readyz", "/v1/workloads"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s before Load: status %d, want 503", path, resp.StatusCode)
		}
	}
	status, _ := postJSON(t, ts.URL+"/v1/predict", predictRequest{Workload: "NPB-EP"})
	if status != http.StatusServiceUnavailable {
		t.Errorf("predict before Load: status %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d, want 200", resp.StatusCode)
	}

	if err := s.Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz after Load: status %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var infos []workloadInfo
	err = json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "NPB-EP" || len(infos[0].TreeHash) != 16 {
		t.Errorf("workloads = %+v, want one NPB-EP entry with a 16-hex tree hash", infos)
	}
}

// TestMixedHammer is the integration stress test: concurrent clients
// firing a mix of cached and uncached predicts and sweeps against two
// workloads. Run under -race it exercises the full admission stack —
// semaphore, LRU, singleflight, batcher — at once.
func TestMixedHammer(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workloads:   []string{"NPB-EP", "MD-OMP"},
		Cores:       []int{2, 4},
		Workers:     4,
		MaxInFlight: 64, // the hammer tests throughput, not backpressure
	})

	names := []string{"NPB-EP", "MD-OMP"}
	methods := []prophet.Method{prophet.FastForward, prophet.AmdahlLaw}
	const clients = 8
	const perClient = 20

	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				name := names[(c+i)%len(names)]
				if i%4 == 3 {
					status, body := postJSON(t, ts.URL+"/v1/sweep", sweepRequest{
						Workload: name,
						Methods:  []string{"ff"},
						Cores:    []int{2, 4},
					})
					if status != http.StatusOK {
						errs <- fmt.Errorf("sweep %s: status %d (%s)", name, status, body)
						continue
					}
					var resp sweepResponse
					if err := json.Unmarshal(body, &resp); err != nil {
						errs <- fmt.Errorf("sweep %s: %v", name, err)
						continue
					}
					for _, o := range resp.Outcomes {
						if o.Err != nil || o.Value.Speedup <= 0 {
							errs <- fmt.Errorf("sweep %s outcome %d: err=%v speedup=%v", name, o.Index, o.Err, o.Value.Speedup)
						}
					}
				} else {
					req := prophet.Request{
						Method:      methods[i%len(methods)],
						Threads:     2 + 2*((c+i)%2),
						MemoryModel: i%2 == 0,
					}
					status, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Workload: name, Request: req})
					if status != http.StatusOK {
						errs <- fmt.Errorf("predict %s %v: status %d (%s)", name, req, status, body)
						continue
					}
					var est prophet.Estimate
					if err := json.Unmarshal(body, &est); err != nil {
						errs <- fmt.Errorf("predict %s: %v", name, err)
						continue
					}
					if est.Err != nil || est.Speedup <= 0 {
						errs <- fmt.Errorf("predict %s %v: err=%v speedup=%v", name, req, est.Err, est.Speedup)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := s.metrics.Snapshot()
	total := snap.Counters[obs.MServerPredicts] + snap.Counters[obs.MServerSweeps]
	if total != clients*perClient {
		t.Errorf("predicts+sweeps = %d, want %d", total, clients*perClient)
	}
	if snap.Counters[obs.MServerCacheHits] == 0 {
		t.Error("hammer produced no estimate-cache hits")
	}
	if snap.Counters[obs.MServerBatches] == 0 {
		t.Error("hammer dispatched no batches")
	}
	if snap.Counters[obs.MServerRejected] != 0 {
		t.Errorf("hammer saw %d rejections with default MaxInFlight", snap.Counters[obs.MServerRejected])
	}
}
