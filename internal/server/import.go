package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"

	"prophet"
	"prophet/internal/profimport"
)

// POST /v1/workloads ingests a captured execution profile — a pprof
// protobuf (gzipped or raw) or folded-stacks text — converts it to a
// program tree with internal/profimport, profiles that tree like Load
// profiles a registered benchmark, and registers the result as a new
// named workload. From then on /v1/predict and /v1/sweep serve it
// exactly like a built-in: same cache, same batcher, same wire format.
//
// Query parameters:
//
//	name         required; ^[A-Za-z0-9._-]{1,64}$, must not collide
//	format       pprof | folded (default: sniffed from the body)
//	sample_type  pprof value column to import (default: cpu)
//	collapse     leaf-collapse fraction (default profimport's)
//
// The body is the profile, raw. Errors are structured client errors:
// 400 for undecodable/empty profiles and bad parameters, 409 for a
// duplicate name, 413 for oversized bodies.

// importNameRE validates uploaded workload names: short, path- and
// shell-safe, usable verbatim in cache keys and CLI examples.
var importNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

func (s *Server) handleWorkloadImport(w http.ResponseWriter, r *http.Request) {
	if s.cfg.MaxImportBytes < 0 {
		writeError(w, http.StatusForbidden, "profile uploads are disabled on this server")
		return
	}
	name := r.URL.Query().Get("name")
	if !importNameRE.MatchString(name) {
		s.clientError(w, badRequestf("name %q must match %s", name, importNameRE))
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "pprof", "folded":
	default:
		s.clientError(w, badRequestf("format %q must be pprof or folded", format))
		return
	}
	collapse := profimport.DefaultCollapseFraction
	if c := r.URL.Query().Get("collapse"); c != "" {
		f, err := strconv.ParseFloat(c, 64)
		if err != nil || f < 0 || f >= 1 {
			s.clientError(w, badRequestf("collapse %q must be a fraction in [0, 1)", c))
			return
		}
		collapse = f
	}

	// Fast-fail duplicates before reading the body or profiling; the
	// registration below re-checks under the same lock for races.
	s.entriesMu.RLock()
	_, taken := s.entries[name]
	s.entriesMu.RUnlock()
	if taken {
		s.badReqs.Inc()
		writeError(w, http.StatusConflict, fmt.Sprintf("workload %q already exists", name))
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxImportBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.badReqs.Inc()
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("profile exceeds the %d-byte upload limit", s.cfg.MaxImportBytes))
			return
		}
		s.clientError(w, badRequestf("reading profile body: %v", err))
		return
	}

	opts := &profimport.Options{
		SampleType:       r.URL.Query().Get("sample_type"),
		SectionName:      name,
		CollapseFraction: collapse,
		MaxBytes:         s.cfg.MaxImportBytes,
		Metrics:          s.metrics,
	}
	convert, formatName := profimport.FromPprof, "pprof"
	if format == "folded" || (format == "" && looksFolded(data)) {
		convert, formatName = profimport.FromFolded, "folded"
	}
	res, err := convert(data, opts)
	if err != nil {
		s.badReqs.Inc()
		status := http.StatusBadRequest
		if errors.Is(err, profimport.ErrTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err.Error())
		return
	}

	// Profiling an imported tree is the expensive step (emulation plus,
	// unless disabled, memory-model calibration) — it goes through the
	// same admission gate as predictions so uploads cannot starve them.
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	prof, err := prophet.ProfileTreeCtx(ctx, res.Tree, &prophet.Options{
		ThreadCounts:       s.cfg.Cores,
		DisableMemoryModel: s.cfg.DisableMemoryModel,
		Observer:           prophet.Observer{Metrics: s.metrics},
	})
	if isCancellation(err) {
		writeError(w, http.StatusGatewayTimeout, fmt.Sprintf("profiling canceled: %v", err))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("profiling imported tree: %v", err))
		return
	}
	hash, err := hashTree(prof.Tree)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("hashing imported tree: %v", err))
		return
	}

	entry := &workloadEntry{
		name: name,
		desc: fmt.Sprintf("imported %s profile (%d samples of %s)",
			formatName, res.Stats.Samples, res.Stats.SampleType),
		prof:         prof,
		treeHash:     hash,
		paradigm:     prophet.OpenMP,
		sched:        prophet.Static,
		threadCounts: s.cfg.Cores,
	}
	s.entriesMu.Lock()
	if _, taken := s.entries[name]; taken {
		s.entriesMu.Unlock()
		s.badReqs.Inc()
		writeError(w, http.StatusConflict, fmt.Sprintf("workload %q already exists", name))
		return
	}
	s.entries[name] = entry
	s.imported = append(s.imported, name)
	s.entriesMu.Unlock()
	s.imports.Inc()

	writeJSON(w, http.StatusCreated, importResponse{
		workloadInfo: infoFor(entry),
		Stats: importStats{
			Samples:         res.Stats.Samples,
			TotalWeight:     res.Stats.TotalWeight,
			Frames:          res.Stats.Frames,
			FramesKept:      res.Stats.FramesKept,
			FramesDropped:   res.Stats.FramesDropped,
			TruncatedStacks: res.Stats.TruncatedStacks,
			SampleType:      res.Stats.SampleType,
			CollapseRatio:   res.Stats.CollapseRatio(),
		},
	})
}

// looksFolded sniffs the upload format when the client does not say:
// gzip or bytes outside the printable-text range mean pprof protobuf
// (a gzipped profile starts 0x1f 0x8b; a raw one is full of low field
// tags), anything that reads as plain text is folded stacks.
func looksFolded(data []byte) bool {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		return false
	}
	n := len(data)
	if n > 512 {
		n = 512
	}
	for _, b := range data[:n] {
		if b < 0x09 || (b > 0x0d && b < 0x20) || b == 0x7f {
			return false
		}
	}
	return true
}

// hashTree is the workload identity used in cache keys: the first 8
// bytes of the SHA-256 of the tree's stable JSON form, hex-encoded.
func hashTree(t *prophet.Tree) (string, error) {
	treeJSON, err := json.Marshal(t)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(treeJSON)
	return hex.EncodeToString(sum[:8]), nil
}

func infoFor(e *workloadEntry) workloadInfo {
	return workloadInfo{
		Name:     e.name,
		Desc:     e.desc,
		Paradigm: e.paradigm.String(),
		Sched:    e.sched.String(),
		TreeHash: e.treeHash,
	}
}
