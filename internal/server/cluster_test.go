package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"prophet"
	"prophet/internal/cluster"
	"prophet/internal/obs"
)

// clusterFleet is a set of replicas sharing one ring, each behind a real
// TCP listener (so a replica can be killed mid-request like a crashed
// process, not politely drained).
type clusterFleet struct {
	servers []*Server
	https   []*http.Server
	urls    []string
	regs    []*obs.Registry
}

// newClusterFleet starts n loaded replicas on real listeners. The
// listeners are created before the servers so every replica knows the
// full peer list up front, the way a static fleet config would.
func newClusterFleet(t *testing.T, n int, mutate func(i int, cfg *Config)) *clusterFleet {
	t.Helper()
	f := &clusterFleet{}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		f.urls = append(f.urls, "http://"+ln.Addr().String())
	}
	for i := range lns {
		reg := &obs.Registry{}
		cfg := Config{
			Workloads:          []string{"NPB-EP"},
			Cores:              []int{2, 4},
			DisableMemoryModel: true,
			Metrics:            reg,
			Cluster: &cluster.Config{
				Self:          f.urls[i],
				Peers:         f.urls,
				OwnersPerCell: 3,
				HedgeAfter:    10 * time.Millisecond,
				Retries:       1,
				RetryBase:     time.Millisecond,
				RetryMax:      2 * time.Millisecond,
				// A threshold no test reaches: breaker state must not
				// leak nondeterminism into retry/failover assertions.
				BreakerFailures: 1 << 20,
				ProbeInterval:   -1,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv := New(cfg)
		if err := srv.Load(context.Background()); err != nil {
			t.Fatalf("replica %d Load: %v", i, err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		f.servers = append(f.servers, srv)
		f.https = append(f.https, hs)
		f.regs = append(f.regs, reg)
	}
	t.Cleanup(func() {
		for i := range f.servers {
			f.https[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			f.servers[i].Shutdown(ctx)
			cancel()
		}
	})
	return f
}

// rawOutcomes extracts the outcomes array of a sweep response verbatim —
// the envelope's cached count legitimately differs between a cluster and
// a single node, the outcomes must not.
func rawOutcomes(t *testing.T, body []byte) []byte {
	t.Helper()
	var resp struct {
		Outcomes json.RawMessage `json:"outcomes"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("sweep response: %v\n%s", err, body)
	}
	return resp.Outcomes
}

func decodeOutcomes(t *testing.T, body []byte) (outs []struct {
	Err     string `json:"err,omitempty"`
	Skipped bool   `json:"skipped,omitempty"`
}) {
	t.Helper()
	var resp struct {
		Outcomes []struct {
			Err     string `json:"err,omitempty"`
			Skipped bool   `json:"skipped,omitempty"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Outcomes
}

var fleetSweep = map[string]any{
	"workload": "NPB-EP",
	"cores":    []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
}

// TestClusterSweepMatchesSingleNode: a sweep served by a healthy fleet is
// byte-identical — outcome array for outcome array — to the same sweep on
// a single node. Routing, forwarding and remote decode/re-encode must be
// invisible in the payload.
func TestClusterSweepMatchesSingleNode(t *testing.T) {
	_, single := newTestServer(t, Config{Cores: []int{2, 4}})
	code, refBody := postJSON(t, single.URL+"/v1/sweep", fleetSweep)
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: HTTP %d: %s", code, refBody)
	}

	f := newClusterFleet(t, 3, nil)
	code, gotBody := postJSON(t, f.urls[0]+"/v1/sweep", fleetSweep)
	if code != http.StatusOK {
		t.Fatalf("cluster sweep: HTTP %d: %s", code, gotBody)
	}
	if ref, got := rawOutcomes(t, refBody), rawOutcomes(t, gotBody); string(ref) != string(got) {
		t.Errorf("cluster outcomes differ from single node\nsingle: %s\ncluster: %s", ref, got)
	}
	// The fleet actually served remotely: this was not 12 local cells.
	snap := f.regs[0].Snapshot()
	if snap.Counters[obs.MClusterCellsRemote] == 0 {
		t.Error("coordinator forwarded nothing — every cell landed local, the test is vacuous")
	}
}

// TestClusterSweepKillReplicaByteIdentical is the acceptance chaos test:
// one replica is SIGKILL-shaped away (listener and connections severed,
// no drain) while it holds forwarded cells mid-flight. The sweep must
// still return zero client-visible errors and an outcomes array
// byte-identical to a single node's, with the recovery visible in the
// coordinator's hedge/retry/failover metrics.
func TestClusterSweepKillReplicaByteIdentical(t *testing.T) {
	_, single := newTestServer(t, Config{Cores: []int{2, 4}})
	code, refBody := postJSON(t, single.URL+"/v1/sweep", fleetSweep)
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: HTTP %d: %s", code, refBody)
	}

	// The victim is whichever non-coordinator replica receives the first
	// forwarded cell (ring placement depends on ephemeral ports, so it
	// cannot be pinned ahead of time). Its hook then holds every request
	// it has admitted hostage until the kill, so the coordinator's view
	// is a replica that goes silent mid-request — the crash shape.
	var (
		victimMu sync.Mutex
		victim   = -1
		reached  = make(chan int, 1)
		release  = make(chan struct{})
	)
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()

	f := newClusterFleet(t, 3, nil)
	for i := 1; i < 3; i++ {
		i := i
		hook := func() {
			victimMu.Lock()
			if victim == -1 {
				victim = i
				reached <- i
			}
			v := victim
			victimMu.Unlock()
			if v == i {
				<-release
			}
		}
		f.servers[i].testHook.Store(&hook)
	}

	type sweepOut struct {
		code int
		body []byte
	}
	sweepDone := make(chan sweepOut, 1)
	go func() {
		code, body := postJSON(t, f.urls[0]+"/v1/sweep", fleetSweep)
		sweepDone <- sweepOut{code, body}
	}()

	var v int
	select {
	case v = <-reached:
	case <-time.After(30 * time.Second):
		t.Fatal("no replica ever received a forwarded cell")
	}
	// Let the coordinator's hedge fire against the silent replica before
	// pulling the plug — the kill must catch requests it is holding.
	hedgeDeadline := time.Now().Add(10 * time.Second)
	for f.regs[0].Snapshot().Counters[obs.MClusterHedgesFired] == 0 {
		if time.Now().After(hedgeDeadline) {
			t.Fatal("hedge never fired against the blocked replica")
		}
		time.Sleep(time.Millisecond)
	}
	// Kill: sever the listener and every established connection at once.
	f.https[v].Close()
	releaseOnce()

	var out sweepOut
	select {
	case out = <-sweepDone:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep never completed after the kill")
	}
	if out.code != http.StatusOK {
		t.Fatalf("sweep after kill: HTTP %d: %s", out.code, out.body)
	}
	for i, o := range decodeOutcomes(t, out.body) {
		if o.Err != "" || o.Skipped {
			t.Errorf("outcome %d: err=%q skipped=%v — the kill leaked to the client", i, o.Err, o.Skipped)
		}
	}
	if ref, got := rawOutcomes(t, refBody), rawOutcomes(t, out.body); string(ref) != string(got) {
		t.Errorf("outcomes with a killed replica differ from single node\nsingle: %s\ncluster: %s", ref, got)
	}

	// The blocked-then-killed replica forced hedges; they won.
	snap := f.regs[0].Snapshot()
	if snap.Counters[obs.MClusterHedgesFired] == 0 {
		t.Errorf("%s = 0, want hedges against the silent replica", obs.MClusterHedgesFired)
	}
	if snap.Counters[obs.MClusterHedgesWon] == 0 {
		t.Errorf("%s = 0, want the hedge to win", obs.MClusterHedgesWon)
	}

	// Post-kill, a fresh cell owned by the dead replica exercises the
	// refused-connection path deterministically: retry with backoff, then
	// failover — still zero client-visible errors, still byte-identical
	// to the single node.
	coord := f.servers[0]
	coord.entriesMu.RLock()
	entry := coord.entries["NPB-EP"]
	coord.entriesMu.RUnlock()
	var probe *prophet.Request
	for threads := 13; threads < 200; threads++ {
		req := prophet.Request{Threads: threads}
		if coord.cluster.Owners(cellKey(entry, req))[0] == f.urls[v] {
			probe = &req
			break
		}
	}
	if probe == nil {
		t.Fatal("no probe cell owned by the dead replica")
	}
	preRetries := snap.Counters[obs.MClusterRetries]
	body := map[string]any{"workload": "NPB-EP", "request": map[string]any{"threads": probe.Threads}}
	code, got := postJSON(t, f.urls[0]+"/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("predict for dead-owned cell: HTTP %d: %s", code, got)
	}
	codeRef, ref := postJSON(t, single.URL+"/v1/predict", body)
	if codeRef != http.StatusOK || string(got) != string(ref) {
		t.Errorf("dead-owned predict differs from single node\nsingle: %s\ncluster: %s", ref, got)
	}
	snap = f.regs[0].Snapshot()
	if snap.Counters[obs.MClusterRetries] <= preRetries {
		t.Errorf("%s did not move serving a dead-owned cell", obs.MClusterRetries)
	}
	if snap.Counters[obs.MClusterFailovers] == 0 {
		t.Errorf("%s = 0, want failover off the dead replica", obs.MClusterFailovers)
	}
}

// TestClusterForwardedCellServedLocally pins the one-hop contract at the
// HTTP layer: a request carrying the cluster routing header is served by
// the receiving replica even when the ring assigns the cell elsewhere.
func TestClusterForwardedCellServedLocally(t *testing.T) {
	f := newClusterFleet(t, 3, nil)
	// Find a cell replica 1 does NOT own.
	srv := f.servers[1]
	srv.entriesMu.RLock()
	entry := srv.entries["NPB-EP"]
	srv.entriesMu.RUnlock()
	var req *prophet.Request
	for threads := 1; threads < 200; threads++ {
		r := prophet.Request{Threads: threads}
		if srv.cluster.Owners(cellKey(entry, r))[0] != f.urls[1] {
			req = &r
			break
		}
	}
	if req == nil {
		t.Fatal("replica 1 owns every probed cell")
	}

	data, _ := json.Marshal(map[string]any{"workload": "NPB-EP", "request": map[string]any{"threads": req.Threads}})
	hreq, err := http.NewRequest(http.MethodPost, f.urls[1]+"/v1/predict", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(cluster.ForwardedHeader, "1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded predict: HTTP %d", resp.StatusCode)
	}
	snap := f.regs[1].Snapshot()
	if snap.Counters[obs.MClusterForwards] != 0 {
		t.Errorf("replica re-forwarded an already-routed cell (%s = %d) — one-hop contract broken",
			obs.MClusterForwards, snap.Counters[obs.MClusterForwards])
	}
	if snap.Counters[obs.MClusterCellsLocal]+snap.Counters[obs.MClusterCellsRemote] != 0 {
		t.Errorf("forwarded cell went back through the router: %+v", snap.Counters)
	}
}
