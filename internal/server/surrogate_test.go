package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"prophet"
	"prophet/internal/obs"
)

// surrogateTestConfig arms a server with a surrogate tuned for tiny
// test stores: it refits early and (by default) never shadow-samples,
// so tests are deterministic.
func surrogateTestConfig(shadowEvery int) *prophet.SurrogateConfig {
	return &prophet.SurrogateConfig{
		MinSamples:  8,
		RefitEvery:  4,
		ShadowEvery: shadowEvery,
		MaxRelErr:   0.5,
		Seed:        1,
	}
}

// warmupSweep emulates a cores axis once so every cell feeds the
// surrogate's training store.
func warmupSweep(t *testing.T, url string, cores []int) {
	t.Helper()
	code, body := postJSON(t, url+"/v1/sweep", sweepRequest{
		Workload: "NPB-EP",
		Cores:    cores,
	})
	if code != http.StatusOK {
		t.Fatalf("warmup sweep: %d %s", code, body)
	}
}

func predictOnce(t *testing.T, url string, threads int) (prophet.Estimate, string) {
	t.Helper()
	data, err := json.Marshal(predictRequest{
		Workload: "NPB-EP",
		Request:  prophet.Request{Method: prophet.FastForward, Threads: threads},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var est prophet.Estimate
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d", resp.StatusCode)
	}
	return est, resp.Header.Get(SourceHeader)
}

// TestServerSurrogateServesTrainedCells: with the LRU disabled, a cell
// the warmup sweep emulated is re-served by the surrogate (an exact
// feature match is a memoized emulation), marked via the source field
// and the X-Prophet-Source header, with the emulated speedup and a
// consistent time_cycles.
func TestServerSurrogateServesTrainedCells(t *testing.T) {
	_, ts := newTestServer(t, Config{
		DisableMemoryModel: true,
		CacheSize:          -1,
		Surrogate:          surrogateTestConfig(-1),
	})
	cores := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	warmupSweep(t, ts.URL, cores)

	emulated, src := predictOnceMachine(t, ts.URL, 8, "")
	_ = src // cache disabled; this may be surrogate or emulated depending on confidence
	est, source := predictOnce(t, ts.URL, 8)
	if source != prophet.SourceSurrogate {
		t.Fatalf("X-Prophet-Source = %q, want %q after warmup", source, prophet.SourceSurrogate)
	}
	if est.Source != prophet.SourceSurrogate {
		t.Fatalf("body source = %q, want %q", est.Source, prophet.SourceSurrogate)
	}
	if est.Speedup != emulated.Speedup {
		t.Fatalf("exact-match surrogate speedup %v differs from emulated %v", est.Speedup, emulated.Speedup)
	}
	if est.Time <= 0 {
		t.Fatalf("surrogate estimate carries no time_cycles: %+v", est)
	}
}

// TestServerSurrogateHitsAreNeverCached: surrogate answers must not
// poison the LRU — re-asking an uncached cell keeps answering from the
// surrogate, and an LRU hit never claims to be one.
func TestServerSurrogateHitsAreNeverCached(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DisableMemoryModel: true,
		CacheSize:          -1,
		Surrogate:          surrogateTestConfig(-1),
	})
	warmupSweep(t, ts.URL, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	for i := 0; i < 3; i++ {
		if _, source := predictOnce(t, ts.URL, 6); source != prophet.SourceSurrogate {
			t.Fatalf("repeat %d: source %q, want surrogate every time (nothing cached)", i, source)
		}
	}
	if hits := counterValue(t, s, obs.MSurrogateHits); hits < 3 {
		t.Fatalf("surrogate.hits = %d, want >= 3", hits)
	}
}

// TestServerSurrogateShadowSampling: with ShadowEvery=1 every confident
// hit is shadowed — the emulator still runs, the exact result is served
// (no source mark), and the shadow comparison lands in the metrics.
func TestServerSurrogateShadowSampling(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DisableMemoryModel: true,
		CacheSize:          -1,
		Surrogate:          surrogateTestConfig(1),
	})
	warmupSweep(t, ts.URL, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	est, source := predictOnce(t, ts.URL, 8)
	if source != sourceEmulated || est.Source != "" {
		t.Fatalf("shadowed hit must serve the emulated result unmarked, got header %q source %q", source, est.Source)
	}
	if runs := counterValue(t, s, obs.MSurrogateShadowRuns); runs < 1 {
		t.Fatalf("surrogate.shadow.runs = %d, want >= 1", runs)
	}
	snap := s.metrics.Snapshot()
	if snap.Histograms[obs.MSurrogateShadowRelErr].Count < 1 {
		t.Fatal("shadow rel-err histogram empty after a shadowed hit")
	}
}

// TestServerSurrogateDisabledBytesIdentical: without Config.Surrogate
// the wire bytes are exactly what an armed server emits for cells the
// surrogate did not answer — the source field only exists on surrogate
// hits, so disabling the feature (or missing the model) changes nothing.
func TestServerSurrogateDisabledBytesIdentical(t *testing.T) {
	_, plain := newTestServer(t, Config{DisableMemoryModel: true})
	_, armed := newTestServer(t, Config{DisableMemoryModel: true, Surrogate: surrogateTestConfig(-1)})
	req := predictRequest{
		Workload: "NPB-EP",
		Request:  prophet.Request{Method: prophet.FastForward, Threads: 4},
	}
	codeA, bodyA := postJSON(t, plain.URL+"/v1/predict", req)
	codeB, bodyB := postJSON(t, armed.URL+"/v1/predict", req)
	if codeA != http.StatusOK || codeB != http.StatusOK {
		t.Fatalf("status %d / %d", codeA, codeB)
	}
	if string(bodyA) != string(bodyB) {
		t.Fatalf("emulated responses diverge with the surrogate armed:\n%s\nvs\n%s", bodyA, bodyB)
	}
}

// TestServerSurrogateVariantMachineNeedsBaseline: a variant machine has
// no serial baseline until its first emulation, so the very first cell
// on it is emulated even when the neighborhood looks confident; once a
// result teaches the baseline, the surrogate may serve that machine
// with a positive time_cycles.
func TestServerSurrogateVariantMachineNeedsBaseline(t *testing.T) {
	_, ts := newTestServer(t, Config{
		DisableMemoryModel: true,
		CacheSize:          -1,
		Surrogate:          surrogateTestConfig(-1),
	})
	cores := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	code, body := postJSON(t, ts.URL+"/v1/sweep", sweepRequest{
		Workload: "NPB-EP", Cores: cores, Machines: []string{"hbm12"},
	})
	if code != http.StatusOK {
		t.Fatalf("variant sweep: %d %s", code, body)
	}
	est, source := predictOnceMachine(t, ts.URL, 8, "hbm12")
	if source != prophet.SourceSurrogate {
		t.Fatalf("variant source %q, want surrogate after its cells emulated once", source)
	}
	if est.Time <= 0 {
		t.Fatalf("variant surrogate hit has no time_cycles: %+v", est)
	}
}

func predictOnceMachine(t *testing.T, url string, threads int, machine string) (prophet.Estimate, string) {
	t.Helper()
	data, err := json.Marshal(predictRequest{
		Workload: "NPB-EP",
		Request:  prophet.Request{Method: prophet.FastForward, Threads: threads, Machine: machine},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d", resp.StatusCode)
	}
	var est prophet.Estimate
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	return est, resp.Header.Get(SourceHeader)
}
