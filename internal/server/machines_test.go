package server

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"prophet"
	"prophet/internal/sweep"
)

// TestMachinesEndpoint: GET /v1/machines lists the preset registry with
// the default flagged, and rejects other verbs.
func TestMachinesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableMemoryModel: true})
	resp, err := http.Get(ts.URL + "/v1/machines")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/machines: %d %s", resp.StatusCode, body)
	}
	var out []machineInfo
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if len(out) < 3 {
		t.Fatalf("only %d machines listed: %s", len(out), body)
	}
	if out[0].Name != prophet.DefaultMachineName || !out[0].Default {
		t.Errorf("first entry %+v, want the default preset flagged", out[0])
	}
	names := map[string]int{}
	for _, m := range out {
		names[m.Name] = m.Cores
		if m.Name != prophet.DefaultMachineName && m.Default {
			t.Errorf("%s flagged default", m.Name)
		}
	}
	if names["embedded4+4"] != 8 {
		t.Errorf("embedded4+4 cores = %d, want 8", names["embedded4+4"])
	}

	// POST is the register verb now; an empty body is a client error,
	// not a method error.
	post, err := http.Post(ts.URL+"/v1/machines", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusBadRequest {
		t.Errorf("POST /v1/machines with no body: %d, want 400", post.StatusCode)
	}
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/machines", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /v1/machines: %d, want 405", delResp.StatusCode)
	}
}

// TestPredictMachineVariants: the machine field selects the prediction
// target; distinct presets give distinct speedups, the default name is
// the no-field identity, and unknown names are client errors.
func TestPredictMachineVariants(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableMemoryModel: true})
	predict := func(machine string) prophet.Estimate {
		t.Helper()
		code, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{
			Workload: "NPB-EP",
			Request:  prophet.Request{Method: prophet.FastForward, Threads: 8, Machine: machine},
		})
		if code != http.StatusOK {
			t.Fatalf("machine %q: %d %s", machine, code, body)
		}
		var est prophet.Estimate
		if err := json.Unmarshal(body, &est); err != nil {
			t.Fatal(err)
		}
		if est.Err != nil {
			t.Fatalf("machine %q: estimate error %v", machine, est.Err)
		}
		return est
	}

	def := predict("")
	if named := predict(prophet.DefaultMachineName); named.Speedup != def.Speedup || named.Time != def.Time {
		t.Errorf("explicit default machine %+v differs from implicit %+v", named, def)
	}
	emb := predict("embedded4+4")
	if emb.Machine != "embedded4+4" {
		t.Errorf("estimate echoes machine %q", emb.Machine)
	}
	if emb.Speedup == def.Speedup {
		t.Errorf("embedded4+4 speedup %.3f identical to default", emb.Speedup)
	}

	code, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{
		Workload: "NPB-EP",
		Request:  prophet.Request{Machine: "bogus"},
	})
	if code != http.StatusBadRequest {
		t.Errorf("unknown machine: %d %s, want 400", code, body)
	}
}

// TestSweepMachinesAxis: the machines axis is the outermost grid
// dimension and each machine's cells carry its name.
func TestSweepMachinesAxis(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableMemoryModel: true})
	code, body := postJSON(t, ts.URL+"/v1/sweep", sweepRequest{
		Workload: "NPB-EP",
		Machines: []string{"westmere12", "embedded4+4"},
		Cores:    []int{2, 8},
	})
	if code != http.StatusOK {
		t.Fatalf("sweep: %d %s", code, body)
	}
	var sr sweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cells != 4 || len(sr.Outcomes) != 4 {
		t.Fatalf("cells = %d, outcomes = %d, want 4", sr.Cells, len(sr.Outcomes))
	}
	wantMachines := []string{"westmere12", "westmere12", "embedded4+4", "embedded4+4"}
	for i, o := range sr.Outcomes {
		if o.Err != nil || o.Value.Err != nil {
			t.Fatalf("outcome %d failed: %v %v", i, o.Err, o.Value.Err)
		}
		if o.Value.Machine != wantMachines[i] {
			t.Errorf("outcome %d machine %q, want %q", i, o.Value.Machine, wantMachines[i])
		}
	}
	// Same cores column, different machines: distinct speedups.
	if sr.Outcomes[1].Value.Speedup == sr.Outcomes[3].Value.Speedup {
		t.Errorf("machines axis produced identical speedups %.3f", sr.Outcomes[1].Value.Speedup)
	}

	// The axis is validated before admission.
	code, body = postJSON(t, ts.URL+"/v1/sweep", sweepRequest{
		Workload: "NPB-EP",
		Machines: []string{"bogus"},
	})
	if code != http.StatusBadRequest {
		t.Errorf("unknown machine axis: %d %s, want 400", code, body)
	}
	_ = sweep.Outcome[prophet.Estimate]{}
}
