package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"prophet"
)

// registrableSpec builds a valid custom spec under the given name. The
// machine registry is process-global, so every test registers unique
// names.
func registrableSpec(name string) *prophet.MachineSpec {
	return &prophet.MachineSpec{
		Name:          name,
		Desc:          "six-core test rig",
		CoreGroups:    []prophet.CoreGroup{{Count: 6, Speed: 1}},
		Quantum:       50_000,
		ContextSwitch: 1_000,
		LLC:           prophet.LLCSpec{SizeBytes: 4 << 20, Ways: 8, LineBytes: 64},
		DRAM:          prophet.DRAMSpec{UnloadedLatency: 50, BandwidthBytesPerCycle: 4, Knee: 0.75},
	}
}

// TestMachineRegisterValidation: every Validate rule surfaces as a 400
// whose body names the offending field — the ErrInvalidMachineSpec
// diagnosis crosses the wire intact.
func TestMachineRegisterValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableMemoryModel: true})
	cases := []struct {
		name    string
		mutate  func(*prophet.MachineSpec)
		wantMsg string
	}{
		{"empty name", func(s *prophet.MachineSpec) { s.Name = "" }, "name"},
		{"unsafe name", func(s *prophet.MachineSpec) { s.Name = "a b" }, "name"},
		{"no core groups", func(s *prophet.MachineSpec) { s.CoreGroups = nil }, "core_groups"},
		{"zero count", func(s *prophet.MachineSpec) { s.CoreGroups[0].Count = 0 }, "count"},
		{"bad speed", func(s *prophet.MachineSpec) { s.CoreGroups[0].Speed = -1 }, "speed"},
		{"zero quantum", func(s *prophet.MachineSpec) { s.Quantum = 0 }, "quantum"},
		{"negative context switch", func(s *prophet.MachineSpec) { s.ContextSwitch = -1 }, "context_switch"},
		{"zero llc", func(s *prophet.MachineSpec) { s.LLC.SizeBytes = 0 }, "llc.size_bytes"},
		{"bad line bytes", func(s *prophet.MachineSpec) { s.LLC.LineBytes = 48 }, "line_bytes"},
		{"zero bandwidth", func(s *prophet.MachineSpec) { s.DRAM.BandwidthBytesPerCycle = 0 }, "bandwidth"},
		{"knee out of range", func(s *prophet.MachineSpec) { s.DRAM.Knee = 1.5 }, "knee"},
		{"second domain eats all cores", func(s *prophet.MachineSpec) {
			s.DRAM.SecondDomain = &prophet.DRAMDomain{BandwidthBytesPerCycle: 4, Cores: 6}
		}, "second_domain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := registrableSpec("t-reg-invalid")
			tc.mutate(spec)
			code, body := postJSON(t, ts.URL+"/v1/machines", spec)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", code, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("bad error body %s: %v", body, err)
			}
			if !strings.Contains(er.Error, "invalid spec") || !strings.Contains(er.Error, tc.wantMsg) {
				t.Fatalf("error %q does not name the violated rule %q", er.Error, tc.wantMsg)
			}
		})
	}
	// Unknown JSON fields are a client error (strict decode), like every
	// other endpoint.
	code, body := postJSON(t, ts.URL+"/v1/machines", map[string]any{"name": "t-reg-x", "bogus": 1})
	if code != http.StatusBadRequest || !strings.Contains(string(body), "bogus") {
		t.Fatalf("unknown field: %d %s, want 400 naming it", code, body)
	}
}

// TestMachineRegisterDuplicateAndListing: a successful POST answers 201
// with the machineInfo body, the name shows up in GET /v1/machines, and
// re-registering it is a 409 (specs are immutable after publication).
func TestMachineRegisterDuplicateAndListing(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableMemoryModel: true})
	spec := registrableSpec("t-reg-dup")

	code, body := postJSON(t, ts.URL+"/v1/machines", spec)
	if code != http.StatusCreated {
		t.Fatalf("register: %d %s, want 201", code, body)
	}
	var info machineInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "t-reg-dup" || info.Cores != 6 || info.Default {
		t.Fatalf("201 body %+v, want name/cores echoed and no default flag", info)
	}

	code, body = postJSON(t, ts.URL+"/v1/machines", spec)
	if code != http.StatusConflict {
		t.Fatalf("duplicate register: %d %s, want 409", code, body)
	}
	if !strings.Contains(string(body), "already registered") {
		t.Fatalf("409 body %s does not explain the conflict", body)
	}

	resp, err := http.Get(ts.URL + "/v1/machines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing []machineInfo
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range listing {
		found = found || m.Name == "t-reg-dup"
	}
	if !found {
		t.Fatal("registered spec missing from GET /v1/machines")
	}
}

// TestRegisteredMachineIsServable: a spec registered over the wire is
// immediately usable as a predict machine field and a sweep machines
// axis entry, like any built-in preset.
func TestRegisteredMachineIsServable(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableMemoryModel: true})
	spec := registrableSpec("t-reg-use")
	if code, body := postJSON(t, ts.URL+"/v1/machines", spec); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}

	code, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{
		Workload: "NPB-EP",
		Request:  prophet.Request{Method: prophet.FastForward, Threads: 4, Machine: "t-reg-use"},
	})
	if code != http.StatusOK {
		t.Fatalf("predict on registered machine: %d %s", code, body)
	}
	var est prophet.Estimate
	if err := json.Unmarshal(body, &est); err != nil {
		t.Fatal(err)
	}
	if est.Machine != "t-reg-use" || est.Err != nil || est.Speedup <= 0 {
		t.Fatalf("estimate %+v, want a successful run on the custom machine", est)
	}

	code, body = postJSON(t, ts.URL+"/v1/sweep", sweepRequest{
		Workload: "NPB-EP",
		Machines: []string{prophet.DefaultMachineName, "t-reg-use"},
		Cores:    []int{2, 4},
	})
	if code != http.StatusOK {
		t.Fatalf("sweep over registered machine: %d %s", code, body)
	}
	var sr sweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cells != 4 {
		t.Fatalf("sweep cells = %d, want 4 (2 machines × 2 cores)", sr.Cells)
	}
	for _, o := range sr.Outcomes {
		if o.Err != nil || o.Value.Speedup <= 0 {
			t.Fatalf("sweep outcome %+v failed on the machines axis", o)
		}
	}
}
