package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"prophet"
	"prophet/internal/obs"
	"prophet/internal/sweep"
)

// The batching admission layer. Handlers never run emulations on their
// own goroutines: every uncached prediction — a single /v1/predict or
// one cell of a /v1/sweep grid — becomes a cellJob submitted to the
// server's one batcher. The dispatcher coalesces jobs that arrive close
// together (across requests) into one sweep.RunCtx call on a bounded
// worker pool and runs batches strictly one at a time, so the pool size
// — not the request count — bounds the emulation concurrency, and jobs
// arriving while a batch runs pile up into the next batch instead of
// spawning goroutines. Identical concurrent cells are deduplicated in
// front of the batcher by flightGroup, so a cell is emulated once no
// matter how many requests need it.

// cellResult is the outcome of one cell job.
type cellResult struct {
	est prophet.Estimate
	err error
}

// cellJob is one prediction unit flowing through the batcher.
type cellJob struct {
	// ctx is the originating request's context: the cell observes its
	// deadline/cancellation through it (the PR 2 cancellation paths).
	ctx context.Context
	// run computes the estimate (typically Profile.EstimateCtx).
	run func(ctx context.Context) (prophet.Estimate, error)
	// res receives the result exactly once (buffered, capacity 1).
	res chan cellResult

	delivered atomic.Bool
}

// deliver sends r unless a result was already delivered (the normal path
// delivers from inside the batch; the post-batch scan covers cells that
// panicked or were skipped by a canceled batch).
func (j *cellJob) deliver(r cellResult) {
	if j.delivered.CompareAndSwap(false, true) {
		j.res <- r
	}
}

// batcher coalesces concurrent cell jobs into sweep.RunCtx batches.
type batcher struct {
	ch   chan *cellJob
	stop chan struct{}
	done chan struct{}

	// baseCtx gates every batch: it is the server's lifetime context, so
	// killing the server (after the drain) aborts in-flight batches.
	baseCtx context.Context
	engine  sweep.Engine
	window  time.Duration
	maxSize int

	batches   *obs.Counter
	cells     *obs.Counter
	batchSize *obs.Histogram
}

func newBatcher(baseCtx context.Context, engine sweep.Engine, window time.Duration, maxSize int, reg *obs.Registry) *batcher {
	if maxSize < 1 {
		maxSize = 1
	}
	b := &batcher{
		ch:        make(chan *cellJob, 2*maxSize),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		baseCtx:   baseCtx,
		engine:    engine,
		window:    window,
		maxSize:   maxSize,
		batches:   reg.Counter(obs.MServerBatches),
		cells:     reg.Counter(obs.MServerBatchCells),
		batchSize: reg.Histogram(obs.MServerBatchSize),
	}
	go b.dispatch()
	return b
}

// submit enqueues j, failing over to the job's own context so a caller
// whose deadline fires while the queue is full is not stuck.
func (b *batcher) submit(j *cellJob) {
	select {
	case b.ch <- j:
	case <-j.ctx.Done():
		j.deliver(cellResult{est: prophet.Estimate{Err: j.ctx.Err()}, err: j.ctx.Err()})
	case <-b.stop:
		j.deliver(cellResult{est: prophet.Estimate{Err: context.Canceled}, err: context.Canceled})
	}
}

// dispatch is the single dispatcher goroutine: collect a batch, run it,
// repeat. Running batches sequentially is what makes the worker pool a
// real global bound — jobs arriving mid-batch coalesce into the next one.
func (b *batcher) dispatch() {
	defer close(b.done)
	for {
		var first *cellJob
		select {
		case first = <-b.ch:
		case <-b.stop:
			b.drainQueue()
			return
		}
		batch := []*cellJob{first}
		timer := time.NewTimer(b.window)
	collect:
		for len(batch) < b.maxSize {
			select {
			case j := <-b.ch:
				batch = append(batch, j)
			case <-timer.C:
				break collect
			case <-b.stop:
				break collect
			}
		}
		timer.Stop()
		b.runBatch(batch)
	}
}

// runBatch executes one coalesced batch through sweep.RunCtx on the
// bounded pool. Each cell honours its own request context; the batch as
// a whole is gated by the server's lifetime context.
func (b *batcher) runBatch(batch []*cellJob) {
	b.batches.Inc()
	b.cells.Add(int64(len(batch)))
	b.batchSize.Observe(int64(len(batch)))
	out := sweep.RunCtx(b.baseCtx, b.engine, len(batch), func(_ context.Context, i int) (prophet.Estimate, error) {
		j := batch[i]
		if err := j.ctx.Err(); err != nil {
			// The request died in the queue; don't burn pool time on it.
			return prophet.Estimate{Err: err}, err
		}
		est, err := j.run(j.ctx)
		j.deliver(cellResult{est: est, err: err})
		return est, err
	})
	// Cells that never reached deliver — a panic contained by RunCtx, or
	// cells skipped because the server's context fired — resolve here, so
	// no waiter is ever left hanging.
	for i, o := range out {
		est := o.Value
		if o.Err != nil && est.Err == nil {
			est.Err = o.Err
		}
		batch[i].deliver(cellResult{est: est, err: o.Err})
	}
}

// drainQueue resolves jobs still queued at shutdown with a cancellation.
func (b *batcher) drainQueue() {
	for {
		select {
		case j := <-b.ch:
			j.deliver(cellResult{est: prophet.Estimate{Err: context.Canceled}, err: context.Canceled})
		default:
			return
		}
	}
}

// close stops the dispatcher and waits for the in-flight batch to finish.
func (b *batcher) close() {
	close(b.stop)
	<-b.done
}

// flightGroup deduplicates identical concurrent cells: the first caller
// of a key becomes the leader and submits the cell to the batcher; later
// callers wait for the leader's result. Entries are removed as soon as
// the flight completes — completed values live in the LRU, not here — so
// a canceled leader can never poison later requests (the same contract
// the sweep singleflight cache keeps for calibration).
//
// The computation does not run under the leader's request context: it
// runs under a per-flight context derived from the server's lifetime
// context, canceled only when *every* waiter has abandoned the flight.
// A leader whose request dies mid-flight therefore cannot starve the
// followers that joined it — the cell keeps computing on their behalf —
// while a cell nobody is waiting for is still canceled promptly.
type flightGroup struct {
	mu     sync.Mutex
	m      map[string]*flight
	dedups *obs.Counter
}

type flight struct {
	done    chan struct{}
	res     cellResult
	cancel  context.CancelFunc
	waiters int // guarded by the group mutex
}

func newFlightGroup(reg *obs.Registry) *flightGroup {
	return &flightGroup{m: make(map[string]*flight), dedups: reg.Counter(obs.MServerFlightDedups)}
}

// do returns the result for key, computing it via lead exactly once per
// flight. lead is called with the flight's computation context and a
// completion callback it must invoke exactly once. A waiter whose ctx
// fires returns the cancellation; the flight itself is only canceled
// when the last waiter leaves.
func (g *flightGroup) do(ctx, base context.Context, key string, lead func(fctx context.Context, finish func(cellResult))) (cellResult, error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		f.waiters++
		g.mu.Unlock()
		g.dedups.Inc()
		return g.wait(ctx, f)
	}
	fctx, cancel := context.WithCancel(base)
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.m[key] = f
	g.mu.Unlock()
	lead(fctx, func(r cellResult) {
		f.res = r
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
		cancel()
	})
	return g.wait(ctx, f)
}

// wait parks one waiter on the flight. Leaving early (own ctx fired)
// decrements the waiter count; the last one out cancels the flight's
// computation — nobody is listening for the result anymore.
func (g *flightGroup) wait(ctx context.Context, f *flight) (cellResult, error) {
	select {
	case <-f.done:
		return f.res, nil
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return cellResult{}, ctx.Err()
	}
}
