package server

import (
	"fmt"
	"sort"
	"strings"

	"prophet"
	"prophet/internal/sweep"
)

// The HTTP wire format. Request and estimate bodies reuse the stable
// JSON vocabulary pinned in PR 3 (results/golden/estimates.json): a
// /v1/predict response body IS a prophet.Estimate, and each /v1/sweep
// outcome IS a sweep.Outcome[prophet.Estimate] — the HTTP layer adds
// envelope fields but never renames or re-encodes the library's types,
// so serving and the single-shot CLIs cannot drift apart.

// predictRequest is the body of POST /v1/predict.
type predictRequest struct {
	// Workload names a registered benchmark (see GET /v1/workloads).
	Workload string `json:"workload"`
	// Request is the prediction to run, in the library wire format.
	Request prophet.Request `json:"request"`
	// TimeoutMS optionally tightens the per-request deadline; it can
	// only shorten the server's configured limit, never extend it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// sweepRequest is the body of POST /v1/sweep: a cores × paradigm ×
// sched (× method) grid over one workload, the request shape of the
// paper's Fig. 11/12 sweeps.
type sweepRequest struct {
	Workload string `json:"workload"`
	// Methods, Paradigms, Scheds are parsed with the prophet.Parse*
	// vocabulary. Empty lists default to ["ff"], the workload's
	// paradigm, and the workload's schedule.
	Methods   []string `json:"methods,omitempty"`
	Paradigms []string `json:"paradigms,omitempty"`
	Scheds    []string `json:"scheds,omitempty"`
	// Cores is the thread-count axis; empty defaults to the profile's
	// calibrated thread counts. Entries are normalized (deduplicated,
	// ascending) exactly like prophet.ParseCores.
	Cores []int `json:"cores,omitempty"`
	// MemoryModel toggles burden factors (default true: the paper's
	// PredM series).
	MemoryModel *bool `json:"memory_model,omitempty"`
	// Machines is the machine-preset axis (GET /v1/machines lists the
	// vocabulary). Empty sweeps the workload's own machine; entries are
	// deduplicated but keep their given order, like the -machines flag.
	Machines  []string `json:"machines,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// adviseRequest is the body of POST /v1/advise: run the causal advisor
// (prophet.AdviseCtx) over one workload — sweep configurations, then
// rank candidate regions by marginal speedup at the largest requested
// core count. The response's advice byte-agrees with `prophet -advise`
// on the same workload, cores and method: the composition logic lives
// entirely in the library, the server only supplies its cache hierarchy
// as the estimator.
type adviseRequest struct {
	Workload string `json:"workload"`
	// Cores is the thread-count axis (normalized like prophet.ParseCores;
	// empty defaults to the profile's calibrated thread counts). The
	// region experiments run at the largest count.
	Cores []int `json:"cores,omitempty"`
	// Method is the prediction engine (prophet.ParseMethod vocabulary).
	// Empty selects the advisor's default, Synthesizer — the same default
	// prophet -advise applies when -method is not given.
	Method    string `json:"method,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// adviseResponse is the body of a /v1/advise reply.
type adviseResponse struct {
	Workload string         `json:"workload"`
	Advice   prophet.Advice `json:"advice"`
}

// sweepResponse is the body of a /v1/sweep reply. Outcomes are indexed
// in deterministic grid order: machines, then methods, then paradigms,
// then schedules, then cores (machines outermost — a variant machine
// recalibrates, so its cells group together; cores innermost —
// consecutive outcomes trace one curve of a Fig. 12 panel).
type sweepResponse struct {
	Workload string                            `json:"workload"`
	Cells    int                               `json:"cells"`
	Cached   int                               `json:"cached"`
	Outcomes []sweep.Outcome[prophet.Estimate] `json:"outcomes"`
}

// errorResponse is the body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// SourceHeader names the tier that answered a /v1/predict: "cache",
// "surrogate" or "emulated". Clients that bucket latency per tier
// (prophetd loadgen) read it instead of parsing the body.
const SourceHeader = "X-Prophet-Source"

const (
	sourceCache    = "cache"
	sourceEmulated = "emulated"
)

// workloadInfo is one entry of GET /v1/workloads.
type workloadInfo struct {
	Name     string `json:"name"`
	Desc     string `json:"desc"`
	Paradigm string `json:"paradigm"`
	Sched    string `json:"sched"`
	TreeHash string `json:"tree_hash"`
}

// machineInfo is one entry of GET /v1/machines.
type machineInfo struct {
	Name    string `json:"name"`
	Desc    string `json:"desc"`
	Cores   int    `json:"cores"`
	Default bool   `json:"default,omitempty"`
}

// importStats is the conversion accounting of one profile upload, the
// wire form of profimport.Stats.
type importStats struct {
	Samples         int     `json:"samples"`
	TotalWeight     int64   `json:"total_weight"`
	Frames          int     `json:"frames"`
	FramesKept      int     `json:"frames_kept"`
	FramesDropped   int     `json:"frames_dropped"`
	TruncatedStacks int     `json:"truncated_stacks"`
	SampleType      string  `json:"sample_type"`
	CollapseRatio   float64 `json:"collapse_ratio"`
}

// importResponse is the 201 body of POST /v1/workloads: the registered
// workload exactly as GET /v1/workloads will list it, plus what the
// converter did to the samples.
type importResponse struct {
	workloadInfo
	Stats importStats `json:"import"`
}

// Grid construction limits: a request can ask for a big sweep, not an
// unbounded one — the admission layer protects the pool, these protect
// the expander.
const (
	maxThreads   = 1024
	maxAxisLen   = 64
	maxGridCells = 4096
)

// badRequestError marks a client error (HTTP 400).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// validateRequest sanity-checks one prediction request before it reaches
// the emulators: negative thread counts and absurd oversubscription are
// client errors, not simulation inputs.
func validateRequest(req prophet.Request) error {
	if req.Threads < 0 {
		return badRequestf("threads must be >= 0 (0 selects the machine core count), got %d", req.Threads)
	}
	if req.Threads > maxThreads {
		return badRequestf("threads %d exceeds the limit %d", req.Threads, maxThreads)
	}
	if req.Sched.Chunk < 0 {
		return badRequestf("schedule chunk must be >= 0, got %d", req.Sched.Chunk)
	}
	if req.Machine != "" {
		if _, err := prophet.ParseMachineSpec(req.Machine); err != nil {
			return badRequestf("%v (GET /v1/machines lists them)", err)
		}
	}
	return nil
}

// normalizeMachines validates and deduplicates a machines axis,
// preserving the given order. Empty means "the workload's own machine",
// represented as the single empty name.
func normalizeMachines(machines []string) ([]string, error) {
	if len(machines) == 0 {
		return []string{""}, nil
	}
	if len(machines) > maxAxisLen {
		return nil, badRequestf("machines axis has %d entries, limit %d", len(machines), maxAxisLen)
	}
	seen := make(map[string]bool, len(machines))
	out := make([]string, 0, len(machines))
	for _, m := range machines {
		spec, err := prophet.ParseMachineSpec(strings.TrimSpace(m))
		if err != nil {
			return nil, badRequestf("%v (GET /v1/machines lists them)", err)
		}
		if seen[spec.Name] {
			continue
		}
		seen[spec.Name] = true
		out = append(out, spec.Name)
	}
	return out, nil
}

// normalizeCores validates and normalizes a cores axis: every entry a
// positive integer, duplicates collapsed, ascending order (the same
// normalization prophet.ParseCores applies to its text form).
func normalizeCores(cores []int) ([]int, error) {
	if len(cores) > maxAxisLen {
		return nil, badRequestf("cores axis has %d entries, limit %d", len(cores), maxAxisLen)
	}
	seen := make(map[int]bool, len(cores))
	out := make([]int, 0, len(cores))
	for _, c := range cores {
		if c < 1 {
			return nil, badRequestf("bad core count %d (must be a positive integer)", c)
		}
		if c > maxThreads {
			return nil, badRequestf("core count %d exceeds the limit %d", c, maxThreads)
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	sort.Ints(out)
	return out, nil
}

// expandGrid turns a sweep request into the deterministic cell order:
// machines → methods → paradigms → scheds → cores, cores innermost.
func expandGrid(sr sweepRequest, entry *workloadEntry) ([]prophet.Request, error) {
	machines, err := normalizeMachines(sr.Machines)
	if err != nil {
		return nil, err
	}
	methods := sr.Methods
	if len(methods) == 0 {
		methods = []string{"ff"}
	}
	paradigms := sr.Paradigms
	if len(paradigms) == 0 {
		paradigms = []string{entry.paradigm.String()}
	}
	scheds := sr.Scheds
	if len(scheds) == 0 {
		scheds = []string{entry.sched.String()}
	}
	if len(methods) > maxAxisLen || len(paradigms) > maxAxisLen || len(scheds) > maxAxisLen {
		return nil, badRequestf("axis longer than the limit %d", maxAxisLen)
	}
	cores := sr.Cores
	if len(cores) == 0 {
		cores = entry.threadCounts
	}
	cores, err = normalizeCores(cores)
	if err != nil {
		return nil, err
	}
	if len(cores) == 0 {
		return nil, badRequestf("empty cores axis")
	}
	useMem := true
	if sr.MemoryModel != nil {
		useMem = *sr.MemoryModel
	}

	ms := make([]prophet.Method, 0, len(methods))
	for _, m := range methods {
		parsed, err := prophet.ParseMethod(strings.TrimSpace(m))
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		ms = append(ms, parsed)
	}
	ps := make([]prophet.Paradigm, 0, len(paradigms))
	for _, p := range paradigms {
		parsed, err := prophet.ParseParadigm(strings.TrimSpace(p))
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		ps = append(ps, parsed)
	}
	ss := make([]prophet.Sched, 0, len(scheds))
	for _, s := range scheds {
		parsed, err := prophet.ParseSched(strings.TrimSpace(s))
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		ss = append(ss, parsed)
	}

	n := len(machines) * len(ms) * len(ps) * len(ss) * len(cores)
	if n > maxGridCells {
		return nil, badRequestf("sweep grid has %d cells, limit %d", n, maxGridCells)
	}
	grid := make([]prophet.Request, 0, n)
	for _, mach := range machines {
		for _, m := range ms {
			for _, p := range ps {
				for _, sc := range ss {
					for _, c := range cores {
						req := prophet.Request{Method: m, Threads: c, Paradigm: p, Sched: sc, MemoryModel: useMem, Machine: mach}
						if err := validateRequest(req); err != nil {
							return nil, err
						}
						grid = append(grid, req)
					}
				}
			}
		}
	}
	return grid, nil
}

// machineOf canonicalizes a request's machine for caching and routing:
// an empty field means the workload profile's own machine, so an
// explicit request for that machine shares the cache line (and, in
// cluster mode, the owning replica) with the implicit default.
func machineOf(entry *workloadEntry, req prophet.Request) string {
	if req.Machine != "" {
		return req.Machine
	}
	return entry.prof.MachineName()
}

// cellKey is the cache/singleflight key of one prediction: the workload,
// the hash of its compressed program tree (so a re-registered workload
// with a different tree never collides with stale entries), the
// canonical machine name, and the request in its canonical String()
// spellings. The machine participates in the key, so in cluster mode a
// given (workload, machine) pair's variant profile and calibration warm
// up on its owning replica only.
func cellKey(entry *workloadEntry, req prophet.Request) string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00%s|%d|%s|%s|%t",
		entry.name, entry.treeHash, machineOf(entry, req),
		req.Method, req.Threads, req.Paradigm, req.Sched, req.MemoryModel)
}
