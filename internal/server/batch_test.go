package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prophet"
	"prophet/internal/obs"
	"prophet/internal/sweep"
)

func newTestBatcher(t *testing.T, engine sweep.Engine, window time.Duration, maxSize int) (*batcher, *obs.Registry) {
	t.Helper()
	reg := &obs.Registry{}
	b := newBatcher(context.Background(), engine, window, maxSize, reg)
	t.Cleanup(b.close)
	return b, reg
}

func newJob(ctx context.Context, run func(context.Context) (prophet.Estimate, error)) *cellJob {
	return &cellJob{ctx: ctx, run: run, res: make(chan cellResult, 1)}
}

// TestBatcherCoalesces checks that jobs submitted together run as one
// sweep.RunCtx batch, not one batch per job. maxSize equals the job
// count so the collect loop fills deterministically without waiting out
// the window.
func TestBatcherCoalesces(t *testing.T) {
	const n = 10
	b, reg := newTestBatcher(t, sweep.Engine{Workers: 4}, time.Second, n)

	jobs := make([]*cellJob, n)
	for i := range jobs {
		i := i
		jobs[i] = newJob(context.Background(), func(context.Context) (prophet.Estimate, error) {
			return est(float64(i)), nil
		})
	}
	// The channel holds 2*maxSize, so sequential submits cannot block; the
	// dispatcher takes the first job and collects the rest inside maxSize.
	for _, j := range jobs {
		b.submit(j)
	}
	for i, j := range jobs {
		r := <-j.res
		if r.err != nil || r.est.Speedup != float64(i) {
			t.Errorf("job %d: %+v, %v", i, r.est, r.err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.MServerBatchCells]; got != n {
		t.Errorf("batch cells = %d, want %d", got, n)
	}
	if got := snap.Counters[obs.MServerBatches]; got < 1 || got > 2 {
		t.Errorf("batches = %d, want 1 (2 tolerated for a slow dispatcher wakeup)", got)
	}
}

// TestBatcherPanicIsolated: a panicking cell must not take down the
// dispatcher or its batchmates — it resolves via the post-batch scan with
// the contained panic error, the others with their values.
func TestBatcherPanicIsolated(t *testing.T) {
	b, _ := newTestBatcher(t, sweep.Engine{Workers: 2}, 100*time.Millisecond, 2)

	bad := newJob(context.Background(), func(context.Context) (prophet.Estimate, error) {
		panic("cell exploded")
	})
	good := newJob(context.Background(), func(context.Context) (prophet.Estimate, error) {
		return est(2), nil
	})
	b.submit(bad)
	b.submit(good)

	r := <-bad.res
	if r.err == nil {
		t.Error("panicking cell resolved without error")
	}
	var pe *sweep.PanicError
	if !errors.As(r.err, &pe) {
		t.Errorf("panicking cell err = %v, want a *sweep.PanicError", r.err)
	}
	if r2 := <-good.res; r2.err != nil || r2.est.Speedup != 2 {
		t.Errorf("batchmate of panicking cell: %+v, %v", r2.est, r2.err)
	}

	// The dispatcher must still be alive for the next batch.
	after := newJob(context.Background(), func(context.Context) (prophet.Estimate, error) {
		return est(7), nil
	})
	b.submit(after)
	if r3 := <-after.res; r3.err != nil || r3.est.Speedup != 7 {
		t.Errorf("post-panic job: %+v, %v", r3.est, r3.err)
	}
}

// TestBatcherExpiredJobSkipped: a job whose request context is already
// dead resolves with the cancellation without burning pool time.
func TestBatcherExpiredJobSkipped(t *testing.T) {
	b, _ := newTestBatcher(t, sweep.Engine{Workers: 2}, time.Millisecond, 4)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	j := newJob(ctx, func(context.Context) (prophet.Estimate, error) {
		ran.Store(true)
		return est(1), nil
	})
	b.submit(j)
	r := <-j.res
	if !errors.Is(r.err, context.Canceled) {
		t.Errorf("expired job err = %v, want context.Canceled", r.err)
	}
	if ran.Load() {
		t.Error("expired job's run executed")
	}
}

// TestBatcherShutdownResolvesQueued: jobs queued when the batcher closes
// are resolved with a cancellation, never abandoned.
func TestBatcherShutdownResolvesQueued(t *testing.T) {
	reg := &obs.Registry{}
	// A window long enough that the queued jobs are still collecting when
	// close fires.
	b := newBatcher(context.Background(), sweep.Engine{Workers: 1}, time.Minute, 64, reg)
	jobs := make([]*cellJob, 4)
	for i := range jobs {
		jobs[i] = newJob(context.Background(), func(context.Context) (prophet.Estimate, error) {
			return est(1), nil
		})
		b.submit(jobs[i])
	}
	b.close()
	for i, j := range jobs {
		select {
		case r := <-j.res:
			// Either computed (it made the final batch) or canceled — but
			// always resolved.
			if r.err != nil && !errors.Is(r.err, context.Canceled) {
				t.Errorf("job %d: unexpected err %v", i, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("job %d never resolved after close", i)
		}
	}
}

// TestFlightGroupDedup: concurrent callers of one key produce exactly one
// leader; waiters get the leader's result.
func TestFlightGroupDedup(t *testing.T) {
	reg := &obs.Registry{}
	g := newFlightGroup(reg)

	var leads atomic.Int64
	started := make(chan struct{})
	unblock := make(chan struct{})
	lead := func(_ context.Context, finish func(cellResult)) {
		leads.Add(1)
		go func() {
			close(started)
			<-unblock
			finish(cellResult{est: est(42)})
		}()
	}

	const waiters = 4
	var wg sync.WaitGroup
	results := make([]cellResult, waiters)
	errsOut := make([]error, waiters)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errsOut[0] = g.do(context.Background(), context.Background(), "k", lead)
	}()
	<-started // the leader exists; everyone else dedups onto its flight
	for i := 1; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errsOut[i] = g.do(context.Background(), context.Background(), "k", func(context.Context, func(cellResult)) {
				t.Error("second leader elected for an in-flight key")
			})
		}()
	}
	// Let the waiters park on the flight before releasing the leader.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters[obs.MServerFlightDedups] < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(unblock)
	wg.Wait()

	if n := leads.Load(); n != 1 {
		t.Fatalf("lead ran %d times, want 1", n)
	}
	for i := range results {
		if errsOut[i] != nil || results[i].est.Speedup != 42 {
			t.Errorf("caller %d: %+v, %v", i, results[i].est, errsOut[i])
		}
	}
	if n := reg.Snapshot().Counters[obs.MServerFlightDedups]; n != waiters-1 {
		t.Errorf("dedups = %d, want %d", n, waiters-1)
	}
}

// TestFlightGroupLeaderCancelDoesNotPoison is the server-side twin of the
// sweep.Cache leader-cancellation audit: a leader whose request dies
// abandons the wait, but the flight still completes and is removed, so
// later callers compute fresh instead of inheriting the cancellation.
func TestFlightGroupLeaderCancelDoesNotPoison(t *testing.T) {
	g := newFlightGroup(&obs.Registry{})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	finishCh := make(chan func(cellResult), 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := g.do(leaderCtx, context.Background(), "k", func(_ context.Context, finish func(cellResult)) {
			finishCh <- finish
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled leader err = %v, want context.Canceled", err)
		}
	}()
	finish := <-finishCh
	cancelLeader()
	<-done

	// The flight is still open (finish not called); a waiter with a live
	// context gets the real result once the compute lands.
	waiterRes := make(chan cellResult, 1)
	go func() {
		r, err := g.do(context.Background(), context.Background(), "k", func(context.Context, func(cellResult)) {
			t.Error("waiter became leader while the flight was open")
		})
		if err != nil {
			t.Errorf("waiter err: %v", err)
		}
		waiterRes <- r
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park on the flight
	finish(cellResult{est: est(7)})
	if r := <-waiterRes; r.est.Speedup != 7 {
		t.Errorf("waiter got %+v, want the completed estimate", r.est)
	}

	// The completed flight is gone: the next caller is a fresh leader.
	var ledAgain atomic.Bool
	r, err := g.do(context.Background(), context.Background(), "k", func(_ context.Context, finish func(cellResult)) {
		ledAgain.Store(true)
		finish(cellResult{est: est(9)})
	})
	if err != nil || !ledAgain.Load() || r.est.Speedup != 9 {
		t.Errorf("fresh leader: led=%v r=%+v err=%v", ledAgain.Load(), r.est, err)
	}
}
