package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRelErr(t *testing.T) {
	if got := RelErr(1.1, 1.0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelErr = %g", got)
	}
	if got := RelErr(0.9, 1.0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelErr symmetric low = %g", got)
	}
	if RelErr(0, 0) != 0 || RelErr(1, 0) != 1 {
		t.Fatal("zero-real handling wrong")
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator(true)
	a.Add(1.0, 1.0) // 0%
	a.Add(1.2, 1.0) // 20%
	a.Add(2.0, 1.0) // 100%
	if a.N() != 3 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.AvgErr()-0.4) > 1e-12 {
		t.Fatalf("avg = %g, want 0.4", a.AvgErr())
	}
	if a.MaxErr() != 1.0 {
		t.Fatalf("max = %g", a.MaxErr())
	}
	if got := a.FracWithin(0.25); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("within 25%% = %g", got)
	}
	if len(a.Pairs()) != 3 {
		t.Fatal("pairs not kept")
	}
	if !strings.Contains(a.String(), "n=3") {
		t.Fatalf("String: %s", a)
	}
}

func TestAccumulatorNoData(t *testing.T) {
	a := NewAccumulator(false)
	if a.AvgErr() != 0 || a.FracWithin(1) != 0 {
		t.Fatal("empty accumulator not zero")
	}
	a.Add(1, 2)
	if a.Pairs() != nil {
		t.Fatal("pairs kept despite keepData=false")
	}
}

// Property: AvgErr <= MaxErr, both non-negative.
func TestAccumulatorInvariants(t *testing.T) {
	f := func(preds []float64) bool {
		a := NewAccumulator(false)
		for _, p := range preds {
			// Map into a sane prediction range; astronomically
			// large inputs would overflow the error sum.
			v := math.Mod(math.Abs(p), 100)
			a.Add(v, 1.0)
		}
		return a.AvgErr() >= 0 && a.AvgErr() <= a.MaxErr()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
