// Package stats computes the error statistics the paper reports for its
// validation experiments (§VII-B: average and maximum error ratios,
// fractions within an error bound).
package stats

import (
	"fmt"
	"math"
)

// RelErr returns |pred-real| / real (0 when real is 0 and pred is 0, 1
// when real is 0 and pred is not).
func RelErr(pred, real float64) float64 {
	if real == 0 {
		if pred == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(pred-real) / math.Abs(real)
}

// Accumulator aggregates prediction-vs-reality pairs.
type Accumulator struct {
	n        int
	sumErr   float64
	maxErr   float64
	pairs    [][2]float64
	keepData bool
}

// NewAccumulator returns an accumulator; keepData retains the raw pairs
// (needed to regenerate scatter plots like Fig. 11).
func NewAccumulator(keepData bool) *Accumulator {
	return &Accumulator{keepData: keepData}
}

// Add records one (predicted, real) pair.
func (a *Accumulator) Add(pred, real float64) {
	e := RelErr(pred, real)
	a.n++
	a.sumErr += e
	if e > a.maxErr {
		a.maxErr = e
	}
	if a.keepData {
		a.pairs = append(a.pairs, [2]float64{pred, real})
	}
}

// N returns the number of pairs recorded.
func (a *Accumulator) N() int { return a.n }

// AvgErr returns the mean relative error.
func (a *Accumulator) AvgErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumErr / float64(a.n)
}

// MaxErr returns the worst relative error.
func (a *Accumulator) MaxErr() float64 { return a.maxErr }

// FracWithin returns the fraction of pairs whose relative error is at most
// tol (requires keepData).
func (a *Accumulator) FracWithin(tol float64) float64 {
	if len(a.pairs) == 0 {
		return 0
	}
	in := 0
	for _, p := range a.pairs {
		if RelErr(p[0], p[1]) <= tol {
			in++
		}
	}
	return float64(in) / float64(len(a.pairs))
}

// Pairs returns the recorded (pred, real) pairs (nil unless keepData).
func (a *Accumulator) Pairs() [][2]float64 { return a.pairs }

// String summarizes like the paper: "avg 4.0% max 23.0% (n=300)".
func (a *Accumulator) String() string {
	return fmt.Sprintf("avg %.1f%% max %.1f%% (n=%d)", 100*a.AvgErr(), 100*a.MaxErr(), a.n)
}
