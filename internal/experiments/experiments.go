// Package experiments regenerates every table and figure of the paper's
// evaluation (§III, §VII) from this reproduction's components. cmd/ppexp
// renders them to the terminal / CSV; the top-level benchmarks time them.
//
// The experiment grids run on the internal/sweep worker pool (see
// Harness): cells execute concurrently, results merge in deterministic
// cell order, so every table and CSV is byte-identical to a serial run
// at any worker count.
//
// Absolute numbers differ from the paper's (the substrate is a simulated
// machine, not their Westmere testbed — see DESIGN.md); the assertions and
// EXPERIMENTS.md track the *shape*: who wins, by what factor, and where
// speedups saturate.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"prophet"
	"prophet/internal/clock"
	"prophet/internal/ff"
	"prophet/internal/memmodel"
	"prophet/internal/obs"
	"prophet/internal/report"
	"prophet/internal/sim"
	"prophet/internal/stats"
	"prophet/internal/sweep"
	"prophet/internal/trace"
	"prophet/internal/tree"
	"prophet/internal/workloads"
)

// Config parameterizes the harness.
type Config struct {
	// Machine is the simulated machine (zero = the paper's 12-core).
	Machine sim.Config
	// Cores is the thread-count sweep (default 2..12 step 2).
	Cores []int
	// Samples is the number of random Test1/Test2 programs for the
	// Fig. 11 validation (the paper uses 300 per case).
	Samples int
	// Seed drives sample generation.
	Seed int64
	// Workers bounds the sweep worker pool: 0 selects GOMAXPROCS, 1
	// runs serially. Output is identical at every setting.
	Workers int
	// FailFast cancels the remainder of a sweep when any cell errors:
	// in-flight cells drain, unclaimed cells are marked Skipped.
	FailFast bool
	// Metrics, when set, aggregates observability across the harness:
	// pipeline stage wall times (stage.*), DES counters from every
	// machine run (sim.*), profile-cache traffic (cache.*) and sweep
	// cell outcomes (sweep.*). Nil disables metrics at no cost.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Cores == nil {
		c.Cores = prophet.DefaultThreadCounts()
	}
	if c.Samples <= 0 {
		c.Samples = 300
	}
	if c.Seed == 0 {
		c.Seed = 20120521 // IPDPS'12 started May 21, 2012
	}
	return c
}

// Fig4 returns the program tree of the paper's running example (§IV-A)
// rendered as text, profiled from the annotated code of Fig. 4.
func Fig4() string {
	prog := func(ctx trace.Context) {
		ctx.SecBegin("loop1")
		ctx.TaskBegin("t1")
		ctx.Compute(10, 0)
		ctx.LockBegin(1)
		ctx.Compute(20, 0)
		ctx.LockEnd(1)
		ctx.Compute(20, 0)
		ctx.TaskEnd()
		ctx.TaskBegin("t1")
		ctx.Compute(25, 0)
		ctx.LockBegin(1)
		ctx.Compute(25, 0)
		ctx.LockEnd(1)
		ctx.SecBegin("loop2")
		for _, c := range []int64{50, 50, 50, 40} {
			ctx.TaskBegin("t2")
			ctx.Compute(c, 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(true)
		ctx.Compute(10, 0)
		ctx.TaskEnd()
		ctx.SecEnd(true)
	}
	p, err := prophet.ProfileProgram(prog, &prophet.Options{
		CompressTolerance:  -1,
		DisableMemoryModel: true,
	})
	if err != nil {
		return "error: " + err.Error()
	}
	return p.Tree.String()
}

// figure5Tree is the Fig. 5 example loop.
func figure5Tree() *tree.Node {
	i0 := tree.NewTask("i0", tree.NewU(150), tree.NewL(1, 450), tree.NewU(50))
	i1 := tree.NewTask("i1", tree.NewU(100), tree.NewL(1, 300), tree.NewU(200))
	i2 := tree.NewTask("i2", tree.NewU(150), tree.NewU(50), tree.NewU(50))
	return tree.NewRoot(tree.NewSec("loop", i0, i1, i2))
}

// Fig5 reproduces the Fig. 5 walkthrough: three schedules on a dual-core,
// FF-predicted makespans and speedups with zero parallel overhead.
func Fig5() *report.Table {
	root := figure5Tree()
	p, _ := prophet.ProfileTree(root, &prophet.Options{DisableMemoryModel: true, CompressTolerance: -1})
	t := report.NewTable("Fig. 5 — FF schedule walkthrough (3 iterations + lock, 2 cores)",
		"schedule", "emulated cycles", "speedup", "paper")
	paper := map[string]string{"(static,1)": "1.30", "(static)": "1.20", "(dynamic,1)": "1.58 (incl. overhead ε)"}
	for _, sched := range []prophet.Sched{prophet.Static1, prophet.Static, prophet.Dynamic1} {
		est := zeroOverheadFF(p.Tree, 2, sched)
		t.AddRow(sched.String(),
			fmt.Sprintf("%d", est.time),
			fmt.Sprintf("%.2f", est.speedup),
			paper[sched.String()])
	}
	return t
}

// Fig7 reproduces the §IV-D limitation story: the two-level nested loop
// where the FF and Suitability predict 1.5x, the synthesizer and the real
// run give 2.0x.
func Fig7(cfg Config) *report.Table {
	cfg = cfg.withDefaults()
	scale := clock.Cycles(20_000)
	la := tree.NewSec("LoopA",
		tree.NewTask("a0", tree.NewU(10*scale)),
		tree.NewTask("a1", tree.NewU(5*scale)))
	lb := tree.NewSec("LoopB",
		tree.NewTask("b0", tree.NewU(5*scale)),
		tree.NewTask("b1", tree.NewU(10*scale)))
	root := tree.NewRoot(tree.NewSec("Loop1",
		tree.NewTask("t0", la), tree.NewTask("t1", lb)))

	mc := cfg.Machine
	mc.Cores = 2
	p, _ := prophet.ProfileTree(root, &prophet.Options{
		Machine: mc, DisableMemoryModel: true, CompressTolerance: -1,
	})
	req := prophet.Request{Threads: 2, Sched: prophet.Static1}
	ffEst := p.Estimate(prophet.Request{Method: prophet.FastForward, Threads: 2, Sched: prophet.Static1})
	synEst := p.Estimate(prophet.Request{Method: prophet.Synthesizer, Threads: 2, Sched: prophet.Static1})
	suitEst := p.Estimate(prophet.Request{Method: prophet.Suitability, Threads: 2})
	real := p.RealSpeedup(req)

	t := report.NewTable("Fig. 7 — two-level nested loop, dual core (paper: real 2.0, FF/Suitability 1.5)",
		"method", "speedup")
	t.AddRow("Real (machine)", fmt.Sprintf("%.2f", real))
	t.AddRow("FF", fmt.Sprintf("%.2f", ffEst.Speedup))
	t.AddRow("Suitability", fmt.Sprintf("%.2f", suitEst.Speedup))
	t.AddRow("Synthesizer", fmt.Sprintf("%.2f", synEst.Speedup))
	return t
}

// zeroOverheadFF runs the FF with ε = 0 (for the hand-computed Fig. 5
// numbers).
type ffOut struct {
	time    clock.Cycles
	speedup float64
}

func zeroOverheadFF(root *tree.Node, threads int, sched prophet.Sched) ffOut {
	e := &ff.Emulator{Threads: threads, Sched: sched}
	return ffOut{time: e.PredictTime(root), speedup: e.Speedup(root)}
}

// Fig11Case is one validation panel of Fig. 11.
type Fig11Case struct {
	Name    string // e.g. "Test1, 8 core, FF"
	Acc     map[string]*stats.Accumulator
	Scatter *report.Scatter
}

// Fig11Result bundles the validation output.
type Fig11Result struct {
	Summary *report.Table
	Cases   []*Fig11Case
	// Failed counts samples whose cell failed (a worker panic is
	// isolated to its cell and reported here instead of killing the
	// sweep).
	Failed int
	// Skipped counts samples whose cell never ran because the harness
	// context was canceled (or a FailFast sweep had already failed). A
	// nonzero count marks the result as partial.
	Skipped int
}

var fig11Scheds = []prophet.Sched{prophet.Static1, prophet.Static, prophet.Dynamic1}

// fig11Panels are the paper's six validation panel configurations.
var fig11Panels = []struct {
	name   string
	test2  bool
	cores  int
	method prophet.Method
}{
	{"Test1, 8-core, FF", false, 8, prophet.FastForward},
	{"Test1, 12-core, FF", false, 12, prophet.FastForward},
	{"Test2, 8-core, FF", true, 8, prophet.FastForward},
	{"Test2, 12-core, FF", true, 12, prophet.FastForward},
	{"Test2, 12-core, SYN", true, 12, prophet.Synthesizer},
	{"Test2, 4-core, Suitability", true, 4, prophet.Suitability},
}

// Fig11 is the package-level convenience wrapper around Harness.Fig11.
func Fig11(cfg Config) Fig11Result { return New(cfg).Fig11() }

// Fig11 reproduces the §VII-B validation: random Test1/Test2 samples,
// FF/synthesizer/Suitability predictions versus real machine runs, per
// schedule, at the paper's panel configurations:
//
//	(a) Test1 8-core FF    (b) Test1 12-core FF
//	(c) Test2 8-core FF    (d) Test2 12-core FF
//	(e) Test2 12-core SYN  (f) Test2 4-core Suitability
//
// Sample parameters are drawn serially from cfg.Seed (so the sample set
// is identical at every worker count); each sample's profile→emulate
// pipeline then runs as one sweep cell, and results merge in sample
// order.
func (h *Harness) Fig11() Fig11Result {
	cfg := h.cfg

	rng := rand.New(rand.NewSource(cfg.Seed))
	type samplePair struct {
		t1 workloads.Test1Params
		t2 workloads.Test2Params
	}
	pairs := make([]samplePair, cfg.Samples)
	for s := range pairs {
		pairs[s].t1 = workloads.RandomTest1(rng)
		pairs[s].t2 = workloads.RandomTest2(rng)
	}

	cases := make([]*Fig11Case, len(fig11Panels))
	labels := make([]string, len(fig11Scheds))
	for i, s := range fig11Scheds {
		labels[i] = s.String()
	}
	for i, pn := range fig11Panels {
		cases[i] = &Fig11Case{
			Name:    pn.name,
			Acc:     map[string]*stats.Accumulator{},
			Scatter: report.NewScatter(pn.name, labels...),
		}
		for _, l := range labels {
			cases[i].Acc[l] = stats.NewAccumulator(true)
		}
	}

	type point struct{ pred, real float64 }
	type sampleOut struct {
		ok   bool
		vals [][]point // [panel][schedule]
	}
	outs := sweep.RunCtx(h.ctx, h.eng, len(pairs), func(ctx context.Context, s int) (sampleOut, error) {
		var out sampleOut
		prof1, err1 := h.profileTest1(ctx, pairs[s].t1)
		prof2, err2 := h.profileTest2(ctx, pairs[s].t2)
		if err := ctx.Err(); err != nil {
			return out, err // canceled mid-cell: report, don't silently skip
		}
		if err1 != nil || err2 != nil {
			return out, nil // sample skipped, as in the serial harness
		}
		out.ok = true
		out.vals = make([][]point, len(fig11Panels))
		for i, pn := range fig11Panels {
			prof := prof1
			if pn.test2 {
				prof = prof2
			}
			out.vals[i] = make([]point, len(fig11Scheds))
			for si, sched := range fig11Scheds {
				real, err := prof.RealSpeedupCtx(ctx, prophet.Request{Threads: pn.cores, Sched: sched})
				if err != nil {
					return sampleOut{}, err
				}
				est, err := prof.EstimateCtx(ctx, prophet.Request{
					Method: pn.method, Threads: pn.cores, Sched: sched,
				})
				if err != nil {
					return sampleOut{}, err
				}
				out.vals[i][si] = point{est.Speedup, real}
			}
		}
		return out, nil
	})

	failed, skipped := 0, 0
	for _, o := range outs {
		if o.Skipped {
			skipped++
			continue
		}
		if o.Err != nil {
			failed++
			continue
		}
		if !o.Value.ok {
			continue
		}
		for i := range fig11Panels {
			for si, sched := range fig11Scheds {
				pt := o.Value.vals[i][si]
				cases[i].Acc[sched.String()].Add(pt.pred, pt.real)
				cases[i].Scatter.Add(si, pt.pred, pt.real)
			}
		}
	}

	sum := report.NewTable(
		fmt.Sprintf("Fig. 11 — Test1/Test2 validation, %d random samples per case", cfg.Samples),
		"case", "schedule", "avg err", "max err", "within 20%")
	for _, c := range cases {
		for _, l := range labels {
			a := c.Acc[l]
			sum.AddRow(c.Name, l,
				fmt.Sprintf("%.1f%%", 100*a.AvgErr()),
				fmt.Sprintf("%.1f%%", 100*a.MaxErr()),
				fmt.Sprintf("%.0f%%", 100*a.FracWithin(0.20)))
		}
	}
	return Fig11Result{Summary: sum, Cases: cases, Failed: failed, Skipped: skipped}
}

// Fig12 is the package-level convenience wrapper around Harness.Fig12.
func Fig12(cfg Config, names []string) []*report.Series { return New(cfg).Fig12(names) }

// Fig12 reproduces the benchmark predictions (Fig. 12; the NPB-FT panel is
// also the paper's Fig. 2): for each benchmark and core count, Real, Pred
// (synthesizer without memory model), PredM (with), and Suit.
//
// The (benchmark, cores) grid is sharded across the worker pool; the
// per-benchmark profile is computed once through the harness cache,
// whichever cell reaches it first, and the series are assembled in
// benchmark-then-cores order.
func (h *Harness) Fig12(names []string) []*report.Series {
	cfg := h.cfg
	if names == nil {
		names = workloads.Names()
	}
	var ws []*workloads.Workload
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			continue
		}
		ws = append(ws, w)
	}

	type cellID struct{ w, c int }
	grid := make([]cellID, 0, len(ws)*len(cfg.Cores))
	for wi := range ws {
		for ci := range cfg.Cores {
			grid = append(grid, cellID{wi, ci})
		}
	}
	type cellOut struct {
		ok                      bool
		real, pred, predM, suit float64
	}
	outs := sweep.RunCtx(h.ctx, h.eng, len(grid), func(ctx context.Context, i int) (cellOut, error) {
		id := grid[i]
		w := ws[id.w]
		prof, err := h.profileBench(ctx, w)
		if err := ctx.Err(); err != nil {
			return cellOut{}, err
		}
		if err != nil {
			return cellOut{}, nil // benchmark skipped, as in the serial harness
		}
		cores := cfg.Cores[id.c]
		base := prophet.Request{Threads: cores, Paradigm: w.Paradigm, Sched: w.Sched}
		real, err := prof.RealSpeedupCtx(ctx, base)
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{
			ok:    true,
			real:  real,
			pred:  prof.Estimate(withMethod(base, prophet.Synthesizer, false)).Speedup,
			predM: prof.Estimate(withMethod(base, prophet.Synthesizer, true)).Speedup,
			suit:  prof.Estimate(withMethod(base, prophet.Suitability, false)).Speedup,
		}, nil
	})

	var out []*report.Series
	for wi, w := range ws {
		s := report.NewSeries(fmt.Sprintf("%s — %s", w.Name, w.Desc), "cores",
			"Real", "Pred", "PredM", "Suit")
		for ci, cores := range cfg.Cores {
			o := outs[wi*len(cfg.Cores)+ci]
			if o.Err != nil || !o.Value.ok {
				continue
			}
			s.AddPoint(float64(cores), o.Value.real, o.Value.pred, o.Value.predM, o.Value.suit)
		}
		if len(s.X) > 0 {
			out = append(out, s)
		}
	}
	return out
}

func withMethod(r prophet.Request, m prophet.Method, mem bool) prophet.Request {
	r.Method = m
	r.MemoryModel = mem
	return r
}

// Table1 renders the qualitative tool-comparison matrix of Table I.
func Table1() *report.Table {
	t := report.NewTable("Table I — dynamic tools for speedup prediction",
		"tool", "input", "simple loops/locks", "imbalance", "inner-loop", "recursive", "memory-limited", "overhead")
	t.AddRow("Cilkview", "parallelized code", "yes", "yes", "yes", "yes", "no", "moderate")
	t.AddRow("Kismet", "unmodified serial", "yes", "limited", "limited", "limited", "limited (superlinear only)", "huge")
	t.AddRow("Suitability", "annotated serial", "yes", "limited", "limited", "limited", "no", "small")
	t.AddRow("Parallel Prophet", "annotated serial", "yes", "yes", "yes", "yes", "limited (contention only)", "small")
	return t
}

// Table3 is the package-level convenience wrapper around Harness.Table3.
func Table3(cfg Config, names []string) *report.Table { return New(cfg).Table3(names) }

// Table3 measures the FF-versus-synthesizer trade-off of Table III on the
// real benchmarks: wall-clock cost per estimate and agreement with the
// machine ground truth at 8 threads. Benchmarks run as parallel cells
// (profiles come from the shared cache); the per-estimate wall-clock
// columns are measurements, so — unlike the speedup columns — they vary
// run to run.
func (h *Harness) Table3(names []string) *report.Table {
	if names == nil {
		names = []string{"MD-OMP", "NPB-EP", "NPB-CG"}
	}
	type row struct {
		ok    bool
		cells []string
	}
	outs := sweep.RunCtx(h.ctx, h.eng, len(names), func(ctx context.Context, i int) (row, error) {
		w, err := workloads.ByName(names[i])
		if err != nil {
			return row{}, nil
		}
		prof, err := h.profileBench(ctx, w)
		if cerr := ctx.Err(); cerr != nil {
			return row{}, cerr
		}
		if err != nil {
			return row{}, nil
		}
		base := prophet.Request{Threads: 8, Paradigm: w.Paradigm, Sched: w.Sched, MemoryModel: true}
		real := prof.RealSpeedup(base)

		start := time.Now()
		ffS := prof.Estimate(withMethod(base, prophet.FastForward, true)).Speedup
		ffMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		synS := prof.Estimate(withMethod(base, prophet.Synthesizer, true)).Speedup
		synMS := float64(time.Since(start).Microseconds()) / 1000

		return row{ok: true, cells: []string{
			w.Name,
			fmt.Sprintf("%.2f", ffMS),
			fmt.Sprintf("%.2f", synMS),
			fmt.Sprintf("%.1f%%", 100*stats.RelErr(ffS, real)),
			fmt.Sprintf("%.1f%%", 100*stats.RelErr(synS, real)),
		}}, nil
	})
	t := report.NewTable("Table III — FF vs synthesizer (8 threads)",
		"benchmark", "FF ms/estimate", "SYN ms/estimate", "FF err", "SYN err")
	for _, o := range outs {
		if o.Err == nil && o.Value.ok {
			t.AddRow(o.Value.cells...)
		}
	}
	return t
}

// OverheadTable is the package-level wrapper around Harness.OverheadTable.
func OverheadTable(cfg Config, names []string) *report.Table { return New(cfg).OverheadTable(names) }

// OverheadTable reports the §VI-B / §VII-D profiling costs: wall time,
// tree sizes before/after compression, and the hottest section's burden
// factor at 12 threads. Because the table *times profiling itself*, it
// bypasses the harness profile cache — every row is a fresh profile run
// (in its own sweep cell, so rows still progress concurrently).
func (h *Harness) OverheadTable(names []string) *report.Table {
	if names == nil {
		// NPB-IS joins the overhead table: §VI-B calls it out as the
		// compression stress case (10 GB tree before compression).
		names = append(workloads.Names(), "NPB-IS")
	}
	type row struct {
		ok    bool
		cells []string
	}
	outs := sweep.RunCtx(h.ctx, h.eng, len(names), func(ctx context.Context, i int) (row, error) {
		w, err := workloads.ByName(names[i])
		if err != nil {
			return row{}, nil
		}
		start := time.Now()
		prof, err := prophet.ProfileProgramCtx(ctx, w.Program, h.benchOpts())
		if cerr := ctx.Err(); cerr != nil {
			return row{}, cerr
		}
		if err != nil {
			return row{}, nil
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		beta := 1.0
		for _, sec := range prof.Tree.TopLevelSections() {
			if b := sec.BurdenFor(12); b > beta {
				beta = b
			}
		}
		return row{ok: true, cells: []string{
			w.Name,
			fmt.Sprintf("%.1f", ms),
			fmt.Sprintf("%d", prof.Compression.NodesBefore),
			fmt.Sprintf("%d", prof.Compression.NodesAfter),
			fmt.Sprintf("%.1f%%", 100*prof.Compression.Reduction()),
			fmt.Sprintf("%d", prof.Compression.BytesAfter),
			fmt.Sprintf("%.2f", beta),
		}}, nil
	})
	t := report.NewTable("Profiling & compression overhead (§VI-B, §VII-D)",
		"benchmark", "profile ms", "nodes before", "nodes after", "reduction", "~bytes", "β12 (hottest)")
	for _, o := range outs {
		if o.Err == nil && o.Value.ok {
			t.AddRow(o.Value.cells...)
		}
	}
	return t
}

// Calibration reproduces Eq. (6)/(7): it calibrates Ψ and Φ against the
// simulated machine and returns the fitted formulas plus the raw
// measurement series.
func Calibration(cfg Config) (string, []*report.Series) {
	cfg = cfg.withDefaults()
	m, data, err := memmodel.Calibrate(cfg.Machine, cfg.Cores)
	if err != nil {
		return "calibration failed: " + err.Error(), nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fitted against the simulated machine (paper Eq. 6/7 on Westmere):\n%s\n", m)
	fmt.Fprintf(&b, "Paper's Eq. (7) for reference: w = 101481 * d^-0.964\n")

	byThreads := map[int]*report.Series{}
	var order []int
	for _, p := range data.Points {
		s, ok := byThreads[p.Threads]
		if !ok {
			s = report.NewSeries(fmt.Sprintf("calibration t=%d", p.Threads),
				"serial MB/s", "per-thread MB/s", "omega cyc/miss")
			byThreads[p.Threads] = s
			order = append(order, p.Threads)
		}
		s.AddPoint(math.Round(p.SerialDelta), p.PerThreadDelta, p.Omega)
	}
	out := make([]*report.Series, 0, len(order))
	for _, t := range order {
		out = append(out, byThreads[t])
	}
	return b.String(), out
}
