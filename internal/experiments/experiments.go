// Package experiments regenerates every table and figure of the paper's
// evaluation (§III, §VII) from this reproduction's components. cmd/ppexp
// renders them to the terminal / CSV; the top-level benchmarks time them.
//
// Absolute numbers differ from the paper's (the substrate is a simulated
// machine, not their Westmere testbed — see DESIGN.md); the assertions and
// EXPERIMENTS.md track the *shape*: who wins, by what factor, and where
// speedups saturate.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"prophet"
	"prophet/internal/clock"
	"prophet/internal/ff"
	"prophet/internal/memmodel"
	"prophet/internal/report"
	"prophet/internal/sim"
	"prophet/internal/stats"
	"prophet/internal/trace"
	"prophet/internal/tree"
	"prophet/internal/workloads"
)

// Config parameterizes the harness.
type Config struct {
	// Machine is the simulated machine (zero = the paper's 12-core).
	Machine sim.Config
	// Cores is the thread-count sweep (default 2..12 step 2).
	Cores []int
	// Samples is the number of random Test1/Test2 programs for the
	// Fig. 11 validation (the paper uses 300 per case).
	Samples int
	// Seed drives sample generation.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Cores == nil {
		c.Cores = prophet.DefaultThreadCounts()
	}
	if c.Samples <= 0 {
		c.Samples = 300
	}
	if c.Seed == 0 {
		c.Seed = 20120521 // IPDPS'12 started May 21, 2012
	}
	return c
}

// Fig4 returns the program tree of the paper's running example (§IV-A)
// rendered as text, profiled from the annotated code of Fig. 4.
func Fig4() string {
	prog := func(ctx trace.Context) {
		ctx.SecBegin("loop1")
		ctx.TaskBegin("t1")
		ctx.Compute(10, 0)
		ctx.LockBegin(1)
		ctx.Compute(20, 0)
		ctx.LockEnd(1)
		ctx.Compute(20, 0)
		ctx.TaskEnd()
		ctx.TaskBegin("t1")
		ctx.Compute(25, 0)
		ctx.LockBegin(1)
		ctx.Compute(25, 0)
		ctx.LockEnd(1)
		ctx.SecBegin("loop2")
		for _, c := range []int64{50, 50, 50, 40} {
			ctx.TaskBegin("t2")
			ctx.Compute(c, 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(true)
		ctx.Compute(10, 0)
		ctx.TaskEnd()
		ctx.SecEnd(true)
	}
	p, err := prophet.ProfileProgram(prog, &prophet.Options{
		CompressTolerance:  -1,
		DisableMemoryModel: true,
	})
	if err != nil {
		return "error: " + err.Error()
	}
	return p.Tree.String()
}

// figure5Tree is the Fig. 5 example loop.
func figure5Tree() *tree.Node {
	i0 := tree.NewTask("i0", tree.NewU(150), tree.NewL(1, 450), tree.NewU(50))
	i1 := tree.NewTask("i1", tree.NewU(100), tree.NewL(1, 300), tree.NewU(200))
	i2 := tree.NewTask("i2", tree.NewU(150), tree.NewU(50), tree.NewU(50))
	return tree.NewRoot(tree.NewSec("loop", i0, i1, i2))
}

// Fig5 reproduces the Fig. 5 walkthrough: three schedules on a dual-core,
// FF-predicted makespans and speedups with zero parallel overhead.
func Fig5() *report.Table {
	root := figure5Tree()
	p, _ := prophet.ProfileTree(root, &prophet.Options{DisableMemoryModel: true, CompressTolerance: -1})
	t := report.NewTable("Fig. 5 — FF schedule walkthrough (3 iterations + lock, 2 cores)",
		"schedule", "emulated cycles", "speedup", "paper")
	paper := map[string]string{"(static,1)": "1.30", "(static)": "1.20", "(dynamic,1)": "1.58 (incl. overhead ε)"}
	for _, sched := range []prophet.Sched{prophet.Static1, prophet.Static, prophet.Dynamic1} {
		est := zeroOverheadFF(p.Tree, 2, sched)
		t.AddRow(sched.String(),
			fmt.Sprintf("%d", est.time),
			fmt.Sprintf("%.2f", est.speedup),
			paper[sched.String()])
	}
	return t
}

// Fig7 reproduces the §IV-D limitation story: the two-level nested loop
// where the FF and Suitability predict 1.5x, the synthesizer and the real
// run give 2.0x.
func Fig7(cfg Config) *report.Table {
	cfg = cfg.withDefaults()
	scale := clock.Cycles(20_000)
	la := tree.NewSec("LoopA",
		tree.NewTask("a0", tree.NewU(10*scale)),
		tree.NewTask("a1", tree.NewU(5*scale)))
	lb := tree.NewSec("LoopB",
		tree.NewTask("b0", tree.NewU(5*scale)),
		tree.NewTask("b1", tree.NewU(10*scale)))
	root := tree.NewRoot(tree.NewSec("Loop1",
		tree.NewTask("t0", la), tree.NewTask("t1", lb)))

	mc := cfg.Machine
	mc.Cores = 2
	p, _ := prophet.ProfileTree(root, &prophet.Options{
		Machine: mc, DisableMemoryModel: true, CompressTolerance: -1,
	})
	req := prophet.Request{Threads: 2, Sched: prophet.Static1}
	ffEst := p.Estimate(prophet.Request{Method: prophet.FastForward, Threads: 2, Sched: prophet.Static1})
	synEst := p.Estimate(prophet.Request{Method: prophet.Synthesizer, Threads: 2, Sched: prophet.Static1})
	suitEst := p.Estimate(prophet.Request{Method: prophet.Suitability, Threads: 2})
	real := p.RealSpeedup(req)

	t := report.NewTable("Fig. 7 — two-level nested loop, dual core (paper: real 2.0, FF/Suitability 1.5)",
		"method", "speedup")
	t.AddRow("Real (machine)", fmt.Sprintf("%.2f", real))
	t.AddRow("FF", fmt.Sprintf("%.2f", ffEst.Speedup))
	t.AddRow("Suitability", fmt.Sprintf("%.2f", suitEst.Speedup))
	t.AddRow("Synthesizer", fmt.Sprintf("%.2f", synEst.Speedup))
	return t
}

// zeroOverheadFF runs the FF with ε = 0 (for the hand-computed Fig. 5
// numbers).
type ffOut struct {
	time    clock.Cycles
	speedup float64
}

func zeroOverheadFF(root *tree.Node, threads int, sched prophet.Sched) ffOut {
	e := &ff.Emulator{Threads: threads, Sched: sched}
	return ffOut{time: e.PredictTime(root), speedup: e.Speedup(root)}
}

// Fig11Case is one validation panel of Fig. 11.
type Fig11Case struct {
	Name    string // e.g. "Test1, 8 core, FF"
	Acc     map[string]*stats.Accumulator
	Scatter *report.Scatter
}

// Fig11Result bundles the validation output.
type Fig11Result struct {
	Summary *report.Table
	Cases   []*Fig11Case
}

var fig11Scheds = []prophet.Sched{prophet.Static1, prophet.Static, prophet.Dynamic1}

// Fig11 reproduces the §VII-B validation: random Test1/Test2 samples,
// FF/synthesizer/Suitability predictions versus real machine runs, per
// schedule, at the paper's panel configurations:
//
//	(a) Test1 8-core FF    (b) Test1 12-core FF
//	(c) Test2 8-core FF    (d) Test2 12-core FF
//	(e) Test2 12-core SYN  (f) Test2 4-core Suitability
func Fig11(cfg Config) Fig11Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	panels := []struct {
		name   string
		test2  bool
		cores  int
		method prophet.Method
	}{
		{"Test1, 8-core, FF", false, 8, prophet.FastForward},
		{"Test1, 12-core, FF", false, 12, prophet.FastForward},
		{"Test2, 8-core, FF", true, 8, prophet.FastForward},
		{"Test2, 12-core, FF", true, 12, prophet.FastForward},
		{"Test2, 12-core, SYN", true, 12, prophet.Synthesizer},
		{"Test2, 4-core, Suitability", true, 4, prophet.Suitability},
	}
	cases := make([]*Fig11Case, len(panels))
	labels := make([]string, len(fig11Scheds))
	for i, s := range fig11Scheds {
		labels[i] = s.String()
	}
	for i, pn := range panels {
		cases[i] = &Fig11Case{
			Name:    pn.name,
			Acc:     map[string]*stats.Accumulator{},
			Scatter: report.NewScatter(pn.name, labels...),
		}
		for _, l := range labels {
			cases[i].Acc[l] = stats.NewAccumulator(true)
		}
	}

	opts := &prophet.Options{Machine: cfg.Machine, DisableMemoryModel: true}
	for s := 0; s < cfg.Samples; s++ {
		p1 := workloads.RandomTest1(rng).Program()
		p2 := workloads.RandomTest2(rng).Program()
		prof1, err1 := prophet.ProfileProgram(p1, opts)
		prof2, err2 := prophet.ProfileProgram(p2, opts)
		if err1 != nil || err2 != nil {
			continue
		}
		for i, pn := range panels {
			prof := prof1
			if pn.test2 {
				prof = prof2
			}
			for si, sched := range fig11Scheds {
				real := prof.RealSpeedup(prophet.Request{Threads: pn.cores, Sched: sched})
				pred := prof.Estimate(prophet.Request{
					Method: pn.method, Threads: pn.cores, Sched: sched,
				}).Speedup
				cases[i].Acc[sched.String()].Add(pred, real)
				cases[i].Scatter.Add(si, pred, real)
			}
		}
	}

	sum := report.NewTable(
		fmt.Sprintf("Fig. 11 — Test1/Test2 validation, %d random samples per case", cfg.Samples),
		"case", "schedule", "avg err", "max err", "within 20%")
	for _, c := range cases {
		for _, l := range labels {
			a := c.Acc[l]
			sum.AddRow(c.Name, l,
				fmt.Sprintf("%.1f%%", 100*a.AvgErr()),
				fmt.Sprintf("%.1f%%", 100*a.MaxErr()),
				fmt.Sprintf("%.0f%%", 100*a.FracWithin(0.20)))
		}
	}
	return Fig11Result{Summary: sum, Cases: cases}
}

// Fig12 reproduces the benchmark predictions (Fig. 12; the NPB-FT panel is
// also the paper's Fig. 2): for each benchmark and core count, Real, Pred
// (synthesizer without memory model), PredM (with), and Suit.
func Fig12(cfg Config, names []string) []*report.Series {
	cfg = cfg.withDefaults()
	if names == nil {
		names = workloads.Names()
	}
	var out []*report.Series
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			continue
		}
		prof, err := prophet.ProfileProgram(w.Program, &prophet.Options{
			Machine:      cfg.Machine,
			ThreadCounts: cfg.Cores,
		})
		if err != nil {
			continue
		}
		s := report.NewSeries(fmt.Sprintf("%s — %s", w.Name, w.Desc), "cores",
			"Real", "Pred", "PredM", "Suit")
		for _, cores := range cfg.Cores {
			base := prophet.Request{Threads: cores, Paradigm: w.Paradigm, Sched: w.Sched}
			real := prof.RealSpeedup(base)
			pred := prof.Estimate(withMethod(base, prophet.Synthesizer, false)).Speedup
			predM := prof.Estimate(withMethod(base, prophet.Synthesizer, true)).Speedup
			suit := prof.Estimate(withMethod(base, prophet.Suitability, false)).Speedup
			s.AddPoint(float64(cores), real, pred, predM, suit)
		}
		out = append(out, s)
	}
	return out
}

func withMethod(r prophet.Request, m prophet.Method, mem bool) prophet.Request {
	r.Method = m
	r.MemoryModel = mem
	return r
}

// Table1 renders the qualitative tool-comparison matrix of Table I.
func Table1() *report.Table {
	t := report.NewTable("Table I — dynamic tools for speedup prediction",
		"tool", "input", "simple loops/locks", "imbalance", "inner-loop", "recursive", "memory-limited", "overhead")
	t.AddRow("Cilkview", "parallelized code", "yes", "yes", "yes", "yes", "no", "moderate")
	t.AddRow("Kismet", "unmodified serial", "yes", "limited", "limited", "limited", "limited (superlinear only)", "huge")
	t.AddRow("Suitability", "annotated serial", "yes", "limited", "limited", "limited", "no", "small")
	t.AddRow("Parallel Prophet", "annotated serial", "yes", "yes", "yes", "yes", "limited (contention only)", "small")
	return t
}

// Table3 measures the FF-versus-synthesizer trade-off of Table III on the
// real benchmarks: wall-clock cost per estimate and agreement with the
// machine ground truth at 8 threads.
func Table3(cfg Config, names []string) *report.Table {
	cfg = cfg.withDefaults()
	if names == nil {
		names = []string{"MD-OMP", "NPB-EP", "NPB-CG"}
	}
	t := report.NewTable("Table III — FF vs synthesizer (8 threads)",
		"benchmark", "FF ms/estimate", "SYN ms/estimate", "FF err", "SYN err")
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			continue
		}
		prof, err := prophet.ProfileProgram(w.Program, &prophet.Options{
			Machine: cfg.Machine, ThreadCounts: cfg.Cores,
		})
		if err != nil {
			continue
		}
		base := prophet.Request{Threads: 8, Paradigm: w.Paradigm, Sched: w.Sched, MemoryModel: true}
		real := prof.RealSpeedup(base)

		start := time.Now()
		ffS := prof.Estimate(withMethod(base, prophet.FastForward, true)).Speedup
		ffMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		synS := prof.Estimate(withMethod(base, prophet.Synthesizer, true)).Speedup
		synMS := float64(time.Since(start).Microseconds()) / 1000

		t.AddRow(name,
			fmt.Sprintf("%.2f", ffMS),
			fmt.Sprintf("%.2f", synMS),
			fmt.Sprintf("%.1f%%", 100*stats.RelErr(ffS, real)),
			fmt.Sprintf("%.1f%%", 100*stats.RelErr(synS, real)))
	}
	return t
}

// OverheadTable reports the §VI-B / §VII-D profiling costs: wall time,
// tree sizes before/after compression, and the hottest section's burden
// factor at 12 threads.
func OverheadTable(cfg Config, names []string) *report.Table {
	cfg = cfg.withDefaults()
	if names == nil {
		// NPB-IS joins the overhead table: §VI-B calls it out as the
		// compression stress case (10 GB tree before compression).
		names = append(workloads.Names(), "NPB-IS")
	}
	t := report.NewTable("Profiling & compression overhead (§VI-B, §VII-D)",
		"benchmark", "profile ms", "nodes before", "nodes after", "reduction", "~bytes", "β12 (hottest)")
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			continue
		}
		start := time.Now()
		prof, err := prophet.ProfileProgram(w.Program, &prophet.Options{
			Machine: cfg.Machine, ThreadCounts: cfg.Cores,
		})
		if err != nil {
			continue
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		beta := 1.0
		for _, sec := range prof.Tree.TopLevelSections() {
			if b := sec.BurdenFor(12); b > beta {
				beta = b
			}
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f", ms),
			fmt.Sprintf("%d", prof.Compression.NodesBefore),
			fmt.Sprintf("%d", prof.Compression.NodesAfter),
			fmt.Sprintf("%.1f%%", 100*prof.Compression.Reduction()),
			fmt.Sprintf("%d", prof.Compression.BytesAfter),
			fmt.Sprintf("%.2f", beta))
	}
	return t
}

// Calibration reproduces Eq. (6)/(7): it calibrates Ψ and Φ against the
// simulated machine and returns the fitted formulas plus the raw
// measurement series.
func Calibration(cfg Config) (string, []*report.Series) {
	cfg = cfg.withDefaults()
	m, data, err := memmodel.Calibrate(cfg.Machine, cfg.Cores)
	if err != nil {
		return "calibration failed: " + err.Error(), nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fitted against the simulated machine (paper Eq. 6/7 on Westmere):\n%s\n", m)
	fmt.Fprintf(&b, "Paper's Eq. (7) for reference: w = 101481 * d^-0.964\n")

	byThreads := map[int]*report.Series{}
	var order []int
	for _, p := range data.Points {
		s, ok := byThreads[p.Threads]
		if !ok {
			s = report.NewSeries(fmt.Sprintf("calibration t=%d", p.Threads),
				"serial MB/s", "per-thread MB/s", "omega cyc/miss")
			byThreads[p.Threads] = s
			order = append(order, p.Threads)
		}
		s.AddPoint(math.Round(p.SerialDelta), p.PerThreadDelta, p.Omega)
	}
	out := make([]*report.Series, 0, len(order))
	for _, t := range order {
		out = append(out, byThreads[t])
	}
	return b.String(), out
}
