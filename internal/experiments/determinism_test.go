package experiments

import (
	"strings"
	"testing"
)

// renderFig11 renders everything Fig11 emits — the summary table plus
// every scatter CSV — so the comparison covers both terminal and CSV
// output paths.
func renderFig11(t *testing.T, workers int) string {
	t.Helper()
	res := New(Config{Machine: fastMachine(), Samples: 6, Seed: 7, Workers: workers}).Fig11()
	if res.Failed != 0 {
		t.Fatalf("workers=%d: %d failed cells", workers, res.Failed)
	}
	var b strings.Builder
	b.WriteString(res.Summary.String())
	for _, c := range res.Cases {
		if err := c.Scatter.WriteCSV(&b); err != nil {
			t.Fatalf("scatter CSV: %v", err)
		}
	}
	return b.String()
}

func renderFig12(t *testing.T, workers int) string {
	t.Helper()
	series := New(Config{Machine: fastMachine(), Cores: []int{2, 8}, Workers: workers}).
		Fig12([]string{"NPB-EP", "MD-OMP"})
	var b strings.Builder
	for _, s := range series {
		b.WriteString(s.Table().String())
		if err := s.WriteCSV(&b); err != nil {
			t.Fatalf("series CSV: %v", err)
		}
	}
	return b.String()
}

// TestFig11DeterministicAcrossWorkers is the tentpole's determinism
// guarantee: the rendered Fig. 11 report (summary table + scatter CSVs)
// is byte-identical between a serial run and an 8-worker run. It also
// doubles as the worker-pool exercise for `go test -race -short`.
func TestFig11DeterministicAcrossWorkers(t *testing.T) {
	serial := renderFig11(t, 1)
	parallel := renderFig11(t, 8)
	if serial != parallel {
		t.Errorf("Fig11 output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			serial, parallel)
	}
}

// TestFig12DeterministicAcrossWorkers: same guarantee for the benchmark
// grid (tables + CSV series).
func TestFig12DeterministicAcrossWorkers(t *testing.T) {
	serial := renderFig12(t, 1)
	parallel := renderFig12(t, 8)
	if serial != parallel {
		t.Errorf("Fig12 output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			serial, parallel)
	}
}

// TestRankingDeterministicAcrossWorkers covers the third harness sweep.
func TestRankingDeterministicAcrossWorkers(t *testing.T) {
	serial := New(Config{Machine: fastMachine(), Samples: 5, Seed: 13, Workers: 1}).ScheduleRanking().String()
	parallel := New(Config{Machine: fastMachine(), Samples: 5, Seed: 13, Workers: 8}).ScheduleRanking().String()
	if serial != parallel {
		t.Errorf("ranking differs between workers=1 and workers=8:\n%s\nvs\n%s", serial, parallel)
	}
}

// TestFixedCellRepeatable runs one fixed-seed sample cell three times on
// fresh harnesses (so the profile cache cannot short-circuit the
// repeats) and asserts identical estimates — this is the canary for
// hidden shared mutable state in workloads / sim / emulators.
func TestFixedCellRepeatable(t *testing.T) {
	var first string
	for trial := 0; trial < 3; trial++ {
		got := renderFig11(t, 4)
		if trial == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("trial %d produced different output:\n%s\nvs\n%s", trial, got, first)
		}
	}
}
