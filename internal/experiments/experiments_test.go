package experiments

import (
	"fmt"
	"strings"
	"testing"

	"prophet/internal/sim"
	"prophet/internal/stats"
)

// fastMachine keeps experiment tests quick and exact.
func fastMachine() sim.Config {
	return sim.Config{Cores: 12, Quantum: 10_000, ContextSwitch: -1}
}

func TestFig4TreeDump(t *testing.T) {
	s := Fig4()
	for _, want := range []string{"Sec \"loop1\" total=300", "Sec \"loop2\" total=190", "L 25 lock=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig4 output missing %q:\n%s", want, s)
		}
	}
}

func TestFig5PaperNumbers(t *testing.T) {
	tb := Fig5()
	out := tb.String()
	// The three emulated makespans from the paper's walkthrough (ε=0).
	for _, want := range []string{"1150", "1250", "900"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 missing makespan %s:\n%s", want, out)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	tb := Fig7(Config{Machine: fastMachine()})
	out := tb.String()
	if !strings.Contains(out, "FF") || !strings.Contains(out, "Synthesizer") {
		t.Fatalf("Fig7 table incomplete:\n%s", out)
	}
	// With calibrated overheads the FF lands near the paper's idealized
	// 1.5 while real and synthesizer reach ~2.
	var ffS, synS, realS float64
	for _, row := range tb.Rows {
		var v float64
		fmt.Sscanf(row[1], "%f", &v)
		switch row[0] {
		case "FF":
			ffS = v
		case "Synthesizer":
			synS = v
		case "Real (machine)":
			realS = v
		}
	}
	if ffS < 1.35 || ffS > 1.6 {
		t.Errorf("Fig7 FF prediction %.2f, want ~1.5:\n%s", ffS, out)
	}
	if realS < 1.85 || synS < 1.85 {
		t.Errorf("Fig7 real %.2f / synthesizer %.2f, want ~2.0:\n%s", realS, synS, out)
	}
}

// TestFig11SmallSample runs the validation with a reduced sample count and
// checks the paper's qualitative claims: the FF is accurate on Test1, the
// synthesizer is accurate on Test2, and Suitability is visibly worse on
// Test2 than the synthesizer.
func TestFig11SmallSample(t *testing.T) {
	if testing.Short() {
		t.Skip("validation sweep is slow")
	}
	res := Fig11(Config{Machine: fastMachine(), Samples: 12, Seed: 7})
	get := func(name string) map[string]*stats.Accumulator {
		for _, c := range res.Cases {
			if c.Name == name {
				return c.Acc
			}
		}
		t.Fatalf("case %q missing", name)
		return nil
	}
	t1ff := get("Test1, 8-core, FF")
	for sched, acc := range t1ff {
		if acc.N() == 0 {
			t.Fatalf("no samples for %s", sched)
		}
		if acc.AvgErr() > 0.10 {
			t.Errorf("Test1 FF %s avg err %.1f%%, paper reports <4%%", sched, 100*acc.AvgErr())
		}
	}
	syn := get("Test2, 12-core, SYN")
	suit := get("Test2, 4-core, Suitability")
	var synAvg, suitAvg float64
	for _, acc := range syn {
		synAvg += acc.AvgErr()
	}
	for _, acc := range suit {
		suitAvg += acc.AvgErr()
	}
	synAvg /= float64(len(syn))
	suitAvg /= float64(len(suit))
	if synAvg > 0.12 {
		t.Errorf("Test2 synthesizer avg err %.1f%%, paper reports ~3%%", 100*synAvg)
	}
	if suitAvg <= synAvg {
		t.Errorf("Suitability (%.1f%%) should be worse than synthesizer (%.1f%%) on Test2",
			100*suitAvg, 100*synAvg)
	}
	// Scatter data present for every case.
	for _, c := range res.Cases {
		pts := 0
		for _, class := range c.Scatter.Points {
			pts += len(class)
		}
		if pts == 0 {
			t.Errorf("%s: empty scatter", c.Name)
		}
	}
	if res.Summary == nil || len(res.Summary.Rows) != 18 {
		t.Errorf("summary rows = %d, want 18 (6 cases x 3 schedules)", len(res.Summary.Rows))
	}
}

// TestFig12ShapeEPvsFT checks the headline memory-model result on the two
// extreme benchmarks: EP scales linearly and Pred≈PredM≈Real; FT saturates
// and PredM tracks Real while Pred overestimates (the paper's Fig. 2).
func TestFig12ShapeEPvsFT(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark sweep is slow")
	}
	series := Fig12(Config{Machine: fastMachine(), Cores: []int{2, 12}}, []string{"NPB-EP", "NPB-FT"})
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	col := func(s int, name string) []float64 {
		for j, c := range series[s].Cols {
			if c == name {
				out := make([]float64, len(series[s].Y))
				for i := range series[s].Y {
					out[i] = series[s].Y[i][j]
				}
				return out
			}
		}
		t.Fatalf("column %s missing", name)
		return nil
	}
	// EP at 12 cores: everything near 12.
	epReal := col(0, "Real")
	epPredM := col(0, "PredM")
	if epReal[1] < 10.5 || epPredM[1] < 10.5 {
		t.Errorf("EP not scaling: real %.1f predM %.1f", epReal[1], epPredM[1])
	}
	// FT at 12 cores: real saturates well below 12; PredM within 30% of
	// real; Pred overestimates real.
	ftReal := col(1, "Real")
	ftPred := col(1, "Pred")
	ftPredM := col(1, "PredM")
	if ftReal[1] > 8 {
		t.Errorf("FT real speedup %.1f did not saturate", ftReal[1])
	}
	if ftPred[1] <= ftReal[1] {
		t.Errorf("FT Pred %.1f should overestimate real %.1f (paper Fig. 2)", ftPred[1], ftReal[1])
	}
	if e := stats.RelErr(ftPredM[1], ftReal[1]); e > 0.30 {
		t.Errorf("FT PredM %.1f vs real %.1f: err %.0f%% (paper: within ~30%%)", ftPredM[1], ftReal[1], 100*e)
	}
}

func TestTable1Static(t *testing.T) {
	out := Table1().String()
	for _, tool := range []string{"Cilkview", "Kismet", "Suitability", "Parallel Prophet"} {
		if !strings.Contains(out, tool) {
			t.Errorf("Table I missing %s", tool)
		}
	}
}

func TestTable3AndOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	t3 := Table3(Config{Machine: fastMachine()}, []string{"NPB-EP"})
	if len(t3.Rows) != 1 {
		t.Fatalf("Table3 rows = %d", len(t3.Rows))
	}
	ov := OverheadTable(Config{Machine: fastMachine()}, []string{"NPB-EP", "NPB-FT"})
	if len(ov.Rows) != 2 {
		t.Fatalf("overhead rows = %d", len(ov.Rows))
	}
	out := ov.String()
	if !strings.Contains(out, "%") {
		t.Errorf("overhead table missing reductions:\n%s", out)
	}
}

func TestCalibrationReport(t *testing.T) {
	text, series := Calibration(Config{Machine: fastMachine(), Cores: []int{2, 4, 8, 12}})
	if !strings.Contains(text, "Phi") || !strings.Contains(text, "101481") {
		t.Errorf("calibration text incomplete:\n%s", text)
	}
	if len(series) < 4 {
		t.Errorf("calibration series = %d", len(series))
	}
}

// TestScheduleRanking: the tool's interactive use case — picking the right
// schedule. The FF must identify the (near-)best schedule for the vast
// majority of Test1 programs.
func TestScheduleRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := ScheduleRanking(Config{Machine: fastMachine(), Samples: 25, Seed: 13})
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var pct float64
		fmt.Sscanf(row[1], "%f%%", &pct)
		if pct < 85 {
			t.Errorf("cores=%s: best-schedule accuracy %.0f%%, want >= 85%%", row[0], pct)
		}
	}
}

// TestMachineMatrix checks the machine-preset matrix on a memory-bound
// benchmark: the asymmetric preset (half the cores at half speed) lands
// below westmere12 at full thread count, the HBM preset above it, and
// every cell is a parseable speedup.
func TestMachineMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark sweep is slow")
	}
	h := New(Config{Machine: fastMachine(), Cores: []int{8}})
	tab := h.MachineMatrix([]string{"NPB-CG"}, []string{"westmere12", "embedded4+4", "hbm12"})
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tab.Rows))
	}
	row := tab.Rows[0]
	if len(row) != 5 {
		t.Fatalf("row width = %d, want benchmark+cores+3 machines: %v", len(row), row)
	}
	sp := make([]float64, 3)
	for i := range sp {
		if _, err := fmt.Sscanf(row[2+i], "%f", &sp[i]); err != nil || sp[i] <= 1 {
			t.Fatalf("cell %q is not a speedup > 1: %v", row[2+i], err)
		}
	}
	west, emb, hbm := sp[0], sp[1], sp[2]
	if emb >= west {
		t.Errorf("embedded4+4 %.2f should trail westmere12 %.2f at 8 threads", emb, west)
	}
	if hbm <= west {
		t.Errorf("hbm12 %.2f should beat westmere12 %.2f on a bandwidth-bound benchmark", hbm, west)
	}
}
