package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"prophet"
	"prophet/internal/report"
	"prophet/internal/sweep"
	"prophet/internal/workloads"
)

// ScheduleRanking is the package-level wrapper around
// Harness.ScheduleRanking.
func ScheduleRanking(cfg Config) *report.Table { return New(cfg).ScheduleRanking() }

// ScheduleRanking measures what a programmer actually uses the tool for
// (§I: "programmers can interactively use the tool to modify their source
// code"): given a program, does the predictor pick the *right schedule*
// and rank the alternatives correctly — even when absolute speedups are
// off?
//
// For each random Test1 sample, the FF predicts the speedup of every
// schedule; the result counts how often the predicted-best schedule is
// truly best (within a tie tolerance) and how often the full ranking
// matches the machine's. Samples run as sweep cells; Test1 profiles come
// from the harness cache shared with Fig. 11.
func (h *Harness) ScheduleRanking() *report.Table {
	cfg := h.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))

	params := make([]workloads.Test1Params, cfg.Samples)
	for s := range params {
		params[s] = workloads.RandomTest1(rng)
	}

	coresUnder := []int{4, 8, 12}
	type tally struct{ bestHits, fullHits, n int }
	tallies := make([]tally, len(coresUnder))

	const tieTol = 0.03 // 3%: schedules this close count as tied

	type sampleOut struct {
		ok         bool
		best, full []bool // per coresUnder entry
	}
	outs := sweep.RunCtx(h.ctx, h.eng, len(params), func(ctx context.Context, s int) (sampleOut, error) {
		var out sampleOut
		prof, err := h.profileTest1(ctx, params[s])
		if cerr := ctx.Err(); cerr != nil {
			return out, cerr
		}
		if err != nil {
			return out, nil
		}
		out.ok = true
		out.best = make([]bool, len(coresUnder))
		out.full = make([]bool, len(coresUnder))
		for ci, cores := range coresUnder {
			var pred, real [3]float64
			for si, sched := range fig11Scheds {
				pred[si] = prof.Estimate(prophet.Request{
					Method: prophet.FastForward, Threads: cores, Sched: sched,
				}).Speedup
				real[si] = prof.RealSpeedup(prophet.Request{Threads: cores, Sched: sched})
			}
			pb, rb := argmax(pred[:]), argmax(real[:])
			// Best-pick hit: the predicted winner is truly best, or
			// within the tie tolerance of the true best.
			out.best[ci] = pb == rb || real[pb] >= real[rb]*(1-tieTol)
			out.full[ci] = sameOrder(pred[:], real[:], tieTol)
		}
		return out, nil
	})
	for _, o := range outs {
		if o.Err != nil || !o.Value.ok {
			continue
		}
		for ci := range coresUnder {
			if o.Value.best[ci] {
				tallies[ci].bestHits++
			}
			if o.Value.full[ci] {
				tallies[ci].fullHits++
			}
			tallies[ci].n++
		}
	}

	t := report.NewTable(
		fmt.Sprintf("Schedule-choice accuracy (FF, %d Test1 samples): does the tool pick the right schedule?", cfg.Samples),
		"cores", "best schedule correct", "full ranking correct")
	for ci, cores := range coresUnder {
		ta := tallies[ci]
		if ta.n == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", cores),
			fmt.Sprintf("%.0f%%", 100*float64(ta.bestHits)/float64(ta.n)),
			fmt.Sprintf("%.0f%%", 100*float64(ta.fullHits)/float64(ta.n)))
	}
	return t
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
		_ = i
	}
	return best
}

// sameOrder reports whether pred ranks the schedules in the same order as
// real, treating real values within tol of each other as interchangeable.
func sameOrder(pred, real []float64, tol float64) bool {
	n := len(pred)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// If reality clearly separates i and j, the prediction
			// must order them the same way.
			if real[i] > real[j]*(1+tol) && pred[i] < pred[j] {
				return false
			}
			if real[j] > real[i]*(1+tol) && pred[j] < pred[i] {
				return false
			}
		}
	}
	return true
}
