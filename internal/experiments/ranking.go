package experiments

import (
	"fmt"
	"math/rand"

	"prophet"
	"prophet/internal/report"
	"prophet/internal/workloads"
)

// ScheduleRanking measures what a programmer actually uses the tool for
// (§I: "programmers can interactively use the tool to modify their source
// code"): given a program, does the predictor pick the *right schedule*
// and rank the alternatives correctly — even when absolute speedups are
// off?
//
// For each random Test1 sample, the FF predicts the speedup of every
// schedule; the result counts how often the predicted-best schedule is
// truly best (within a tie tolerance) and how often the full ranking
// matches the machine's.
func ScheduleRanking(cfg Config) *report.Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	coresUnder := []int{4, 8, 12}
	type tally struct{ bestHits, fullHits, n int }
	tallies := make([]tally, len(coresUnder))

	const tieTol = 0.03 // 3%: schedules this close count as tied

	for s := 0; s < cfg.Samples; s++ {
		prog := workloads.RandomTest1(rng).Program()
		prof, err := prophet.ProfileProgram(prog, &prophet.Options{
			Machine: cfg.Machine, DisableMemoryModel: true,
		})
		if err != nil {
			continue
		}
		for ci, cores := range coresUnder {
			var pred, real [3]float64
			for si, sched := range fig11Scheds {
				pred[si] = prof.Estimate(prophet.Request{
					Method: prophet.FastForward, Threads: cores, Sched: sched,
				}).Speedup
				real[si] = prof.RealSpeedup(prophet.Request{Threads: cores, Sched: sched})
			}
			pb, rb := argmax(pred[:]), argmax(real[:])
			// Best-pick hit: the predicted winner is truly best, or
			// within the tie tolerance of the true best.
			if pb == rb || real[pb] >= real[rb]*(1-tieTol) {
				tallies[ci].bestHits++
			}
			if sameOrder(pred[:], real[:], tieTol) {
				tallies[ci].fullHits++
			}
			tallies[ci].n++
		}
	}

	t := report.NewTable(
		fmt.Sprintf("Schedule-choice accuracy (FF, %d Test1 samples): does the tool pick the right schedule?", cfg.Samples),
		"cores", "best schedule correct", "full ranking correct")
	for ci, cores := range coresUnder {
		ta := tallies[ci]
		if ta.n == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", cores),
			fmt.Sprintf("%.0f%%", 100*float64(ta.bestHits)/float64(ta.n)),
			fmt.Sprintf("%.0f%%", 100*float64(ta.fullHits)/float64(ta.n)))
	}
	return t
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
		_ = i
	}
	return best
}

// sameOrder reports whether pred ranks the schedules in the same order as
// real, treating real values within tol of each other as interchangeable.
func sameOrder(pred, real []float64, tol float64) bool {
	n := len(pred)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// If reality clearly separates i and j, the prediction
			// must order them the same way.
			if real[i] > real[j]*(1+tol) && pred[i] < pred[j] {
				return false
			}
			if real[j] > real[i]*(1+tol) && pred[j] < pred[i] {
				return false
			}
		}
	}
	return true
}
